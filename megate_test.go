package megate

import (
	"encoding/json"
	"net"
	"testing"

	"megate/internal/controlplane"
)

func TestQuickstartFlow(t *testing.T) {
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 10)
	tm := GenerateTraffic(topo, TrafficOptions{Seed: 1})
	solver := NewSolver(topo, SolverOptions{SplitQoS: true})
	res, err := solver.Solve(tm)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedFraction() <= 0 {
		t.Fatal("nothing satisfied")
	}
}

func TestTopologyNames(t *testing.T) {
	names := TopologyNames()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		topo := BuildTopology(n)
		if topo.NumSites() == 0 {
			t.Errorf("%s has no sites", n)
		}
	}
}

func TestSchemesList(t *testing.T) {
	schemes := Schemes()
	if len(schemes) != 4 {
		t.Fatalf("schemes = %d", len(schemes))
	}
	want := map[string]bool{"MegaTE": true, "LP-all": true, "NCFlow": true, "TEAL": true}
	for _, s := range schemes {
		if !want[s.Name()] {
			t.Errorf("unexpected scheme %q", s.Name())
		}
	}
}

func TestAttachEndpointsWeibull(t *testing.T) {
	topo := BuildTopology("B4*")
	n := AttachEndpoints(topo, 50, 0.7, 1)
	if n < 12 {
		t.Fatalf("attached %d", n)
	}
}

func TestEndToEndControlLoopFacade(t *testing.T) {
	// The full public-API loop: topology -> traffic -> controller ->
	// database server -> remote agent -> host path_map.
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 2)
	tm := GenerateTraffic(topo, TrafficOptions{Seed: 2})

	db := NewTEDatabase(2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTEDatabase(l, db)
	defer srv.Close()

	ctrl := NewController(NewSolver(topo, SolverOptions{}), db)
	res, n, err := ctrl.RunInterval(tm)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || res.SatisfiedFraction() <= 0 {
		t.Fatalf("interval: n=%d", n)
	}

	// Find an instance with a config and poll for it remotely.
	var instance string
	for i, tn := range res.FlowTunnel {
		if tn != nil {
			instance = topo.Endpoints[tm.Flows[i].Src].Instance
			break
		}
	}
	host := NewHost("h1", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := NewRemoteAgent(instance, &TEDatabaseClient{Addr: srv.Addr()}, host)
	updated, err := agent.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !updated || host.PathMap.Len() == 0 {
		t.Fatal("agent did not install paths via the facade")
	}
}

func TestRunProductionComparisonFacade(t *testing.T) {
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 10)
	tm := GenerateTraffic(topo, TrafficOptions{Seed: 3, Apps: ProductionApps})
	conv, mega, err := RunProductionComparison(topo, tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv) == 0 || len(mega) == 0 {
		t.Fatal("empty metrics")
	}
}

func TestRunFailureFacade(t *testing.T) {
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 5)
	tm := GenerateTraffic(topo, TrafficOptions{Seed: 4})
	out, err := RunFailure(topo, tm, Schemes()[0], FailureScenario{FailLinks: []LinkID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if out.EffectiveSatisfied <= 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestEnableSnapshotSyncFacade(t *testing.T) {
	// Snapshot+delta sync through the facade: boot costs one snapshot, an
	// update rides one delta, and both the in-process and remote readers
	// support the protocol.
	db := NewTEDatabase(2)
	db.EnableDeltaLog(8)
	put := func(version uint64, hops []uint32) {
		cfg, err := json.Marshal(InstanceConfig{
			Instance: "ins-x", Version: version,
			Paths: []controlplane.PathEntry{{DstSite: 3, Hops: hops}},
		})
		if err != nil {
			t.Fatal(err)
		}
		db.Put("te/cfg/ins-x", cfg)
		db.Publish(version)
	}
	put(1, []uint32{0, 3})

	host := NewHost("h-snap", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := NewAgent("ins-x", db, host)
	if !EnableSnapshotSync(agent) {
		t.Fatal("in-process reader must support snapshot sync")
	}
	if applied, err := agent.Poll(); err != nil || !applied {
		t.Fatalf("cold poll: applied=%v err=%v", applied, err)
	}
	put(2, []uint32{0, 1, 3})
	if applied, err := agent.Poll(); err != nil || !applied {
		t.Fatalf("update poll: applied=%v err=%v", applied, err)
	}
	if snaps, deltas := agent.SyncStats(); snaps != 1 || deltas != 1 {
		t.Fatalf("snapshots=%d deltas=%d, want 1/1 (boot snapshot, update delta)", snaps, deltas)
	}
	if host.PathMap.Len() == 0 {
		t.Fatal("no paths installed via snapshot sync")
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTEDatabase(l, db)
	defer srv.Close()
	remote := NewRemoteAgent("ins-x", &TEDatabaseClient{Addr: srv.Addr()}, nil)
	if !EnableSnapshotSync(remote) {
		t.Fatal("remote reader must support snapshot sync")
	}
	if applied, err := remote.Poll(); err != nil || !applied {
		t.Fatalf("remote cold poll: applied=%v err=%v", applied, err)
	}
	if snaps, _ := remote.SyncStats(); snaps != 1 {
		t.Fatalf("remote snapshots=%d, want 1", snaps)
	}
}
