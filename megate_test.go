package megate

import (
	"net"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 10)
	tm := GenerateTraffic(topo, TrafficOptions{Seed: 1})
	solver := NewSolver(topo, SolverOptions{SplitQoS: true})
	res, err := solver.Solve(tm)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedFraction() <= 0 {
		t.Fatal("nothing satisfied")
	}
}

func TestTopologyNames(t *testing.T) {
	names := TopologyNames()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		topo := BuildTopology(n)
		if topo.NumSites() == 0 {
			t.Errorf("%s has no sites", n)
		}
	}
}

func TestSchemesList(t *testing.T) {
	schemes := Schemes()
	if len(schemes) != 4 {
		t.Fatalf("schemes = %d", len(schemes))
	}
	want := map[string]bool{"MegaTE": true, "LP-all": true, "NCFlow": true, "TEAL": true}
	for _, s := range schemes {
		if !want[s.Name()] {
			t.Errorf("unexpected scheme %q", s.Name())
		}
	}
}

func TestAttachEndpointsWeibull(t *testing.T) {
	topo := BuildTopology("B4*")
	n := AttachEndpoints(topo, 50, 0.7, 1)
	if n < 12 {
		t.Fatalf("attached %d", n)
	}
}

func TestEndToEndControlLoopFacade(t *testing.T) {
	// The full public-API loop: topology -> traffic -> controller ->
	// database server -> remote agent -> host path_map.
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 2)
	tm := GenerateTraffic(topo, TrafficOptions{Seed: 2})

	db := NewTEDatabase(2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTEDatabase(l, db)
	defer srv.Close()

	ctrl := NewController(NewSolver(topo, SolverOptions{}), db)
	res, n, err := ctrl.RunInterval(tm)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || res.SatisfiedFraction() <= 0 {
		t.Fatalf("interval: n=%d", n)
	}

	// Find an instance with a config and poll for it remotely.
	var instance string
	for i, tn := range res.FlowTunnel {
		if tn != nil {
			instance = topo.Endpoints[tm.Flows[i].Src].Instance
			break
		}
	}
	host := NewHost("h1", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := NewRemoteAgent(instance, &TEDatabaseClient{Addr: srv.Addr()}, host)
	updated, err := agent.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !updated || host.PathMap.Len() == 0 {
		t.Fatal("agent did not install paths via the facade")
	}
}

func TestRunProductionComparisonFacade(t *testing.T) {
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 10)
	tm := GenerateTraffic(topo, TrafficOptions{Seed: 3, Apps: ProductionApps})
	conv, mega, err := RunProductionComparison(topo, tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv) == 0 || len(mega) == 0 {
		t.Fatal("empty metrics")
	}
}

func TestRunFailureFacade(t *testing.T) {
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 5)
	tm := GenerateTraffic(topo, TrafficOptions{Seed: 4})
	out, err := RunFailure(topo, tm, Schemes()[0], FailureScenario{FailLinks: []LinkID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if out.EffectiveSatisfied <= 0 {
		t.Fatalf("outcome = %+v", out)
	}
}
