#!/bin/sh
# Full verification: formatting, vet, domain lints, build, tests, and
# race-check the packages with concurrency or cross-interval caching.
# Same entry point as `make verify`.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
# Full lint suite with the stale-suppression audit, under a wall-clock
# budget: the whole-tree run (type-check included) must stay under 30s so
# the lint gate never becomes the slow step. The binary is built first so
# the budget measures analysis, not compilation.
go build -o /tmp/megate-lint ./cmd/megate-lint
lint_start=$(date +%s)
/tmp/megate-lint -strict-ignores ./...
lint_elapsed=$(($(date +%s) - lint_start))
test "$lint_elapsed" -lt 30
go test ./...
go test -race ./internal/core/ ./internal/kvstore/ ./internal/controlplane/ ./internal/faultnet/ ./internal/telemetry/ ./internal/cluster/
# Regression gates for the atomic-discipline invariants the atomiccheck
# lint pass guards: counter accessors hammered while writer goroutines
# mutate them (agent stats, top-down heartbeats/configs, telemetry
# instruments).
go test -race -run 'TestAgentStatsUnderRun|TestTopDownCountersUnderLoadRace' ./internal/controlplane/
go test -race -run 'TestReadersDuringWritesRace' ./internal/telemetry/
# Short-mode chaos pass under the race detector: the full control loop
# (controller, replicated servers, agent fleet) under the fault timeline —
# TestChaos matches the shard-loss scenario (TestChaosShardLoss) too.
go test -race -short -run TestChaos .
# Exporter smoke: controller with -telemetry-addr scraped over real HTTP.
go test -run TestMetricsSmoke .
# Certificate-gated fast-path gate: duality-certificate soundness, drift
# bit-stability and the solver's hit/fallback routing, race-checked with
# deterministic seeds.
make fastpath
# Megascale pipeline gate: truncated flow sweep through the streamed
# interval plus the stage-2 zero-alloc benchmark assertion.
make megascale-short
# Fleet robustness gate: deterministic 10k-agent storm with per-shard
# admission control; exits non-zero on any invariant violation.
make fleet-short
# Multi-domain federation gate: gateway protocol + tier-policy tests and the
# inter-domain partition chaos scenario, race-checked with fixed seeds.
make federation
