#!/bin/sh
# Full verification: formatting, vet, domain lints, build, tests, and
# race-check the packages with concurrency or cross-interval caching.
# Same entry point as `make verify`.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go run ./cmd/megate-lint ./...
go test ./...
go test -race ./internal/core/ ./internal/kvstore/ ./internal/controlplane/ ./internal/faultnet/ ./internal/telemetry/ ./internal/cluster/
# Regression gate for the agent stats data race: accessors hammered while
# Run's poll goroutine mutates the counters.
go test -race -run TestAgentStatsUnderRun ./internal/controlplane/
# Short-mode chaos pass under the race detector: the full control loop
# (controller, replicated servers, agent fleet) under the fault timeline —
# TestChaos matches the shard-loss scenario (TestChaosShardLoss) too.
go test -race -short -run TestChaos .
# Exporter smoke: controller with -telemetry-addr scraped over real HTTP.
go test -run TestMetricsSmoke .
# Megascale pipeline gate: truncated flow sweep through the streamed
# interval plus the stage-2 zero-alloc benchmark assertion.
make megascale-short
