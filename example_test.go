package megate_test

import (
	"fmt"

	"megate"
)

// The shortest path from nothing to a TE allocation: build a topology,
// generate traffic, solve, inspect per-flow pinning.
func Example() {
	topo := megate.BuildTopology("B4*")
	megate.AttachEndpointsExact(topo, 5)
	tm := megate.GenerateTraffic(topo, megate.TrafficOptions{Seed: 1, MeanDemandMbps: 20})

	solver := megate.NewSolver(topo, megate.SolverOptions{})
	res, err := solver.Solve(tm)
	if err != nil {
		panic(err)
	}
	fmt.Printf("satisfied %.0f%% of %d flows\n", res.SatisfiedFraction()*100, tm.NumFlows())
	// Output: satisfied 100% of 60 flows
}

// Building a custom topology and pinning one time-sensitive flow.
func Example_customTopology() {
	topo := megate.NewTopology("duo")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 600, 0)
	c := topo.AddSite("c", 300, 400)
	topo.AddBidiLink(a, b, 10_000, 3, 0.9999, 8) // fast direct
	topo.AddBidiLink(a, c, 10_000, 4, 0.999, 2)
	topo.AddBidiLink(c, b, 10_000, 4, 0.999, 2) // slow detour
	src := topo.AddEndpoint(a, "tenant-1")
	dst := topo.AddEndpoint(b, "tenant-2")

	tm := megate.NewTrafficMatrix([]megate.Flow{{
		ID: 0, Src: src, Dst: dst,
		Pair:       megate.SitePair{Src: a, Dst: b},
		DemandMbps: 100,
		Class:      megate.QoS1,
	}})
	res, err := megate.NewSolver(topo, megate.SolverOptions{SplitQoS: true}).Solve(tm)
	if err != nil {
		panic(err)
	}
	fmt.Println("pinned to", res.FlowTunnel[0])
	// Output: pinned to 0->1 (3.0ms)
}

// The bottom-up control loop in-process: controller publishes versioned
// configs to the TE database; an agent pulls them into a host's path_map.
func ExampleController() {
	topo := megate.BuildTopology("B4*")
	megate.AttachEndpointsExact(topo, 1)
	tm := megate.GenerateTraffic(topo, megate.TrafficOptions{Seed: 3, MeanDemandMbps: 10})

	db := megate.NewTEDatabase(2)
	ctrl := megate.NewController(megate.NewSolver(topo, megate.SolverOptions{}), db)
	if _, _, err := ctrl.RunInterval(tm); err != nil {
		panic(err)
	}

	host := megate.NewHost("host-0", 1500, nil)
	defer host.Close()
	agent := megate.NewAgent(topo.Endpoints[0].Instance, db, host)
	updated, err := agent.Poll()
	if err != nil {
		panic(err)
	}
	fmt.Printf("version %d applied: %v\n", agent.LastVersion(), updated)
	// Output: version 1 applied: true
}

// Planning §8 hybrid synchronization from measured per-instance volumes.
func ExamplePlanHybrid() {
	volumes := map[string]float64{
		"whale-1": 900, "whale-2": 800,
		"minnow-1": 10, "minnow-2": 10, "minnow-3": 10,
	}
	plan := megate.PlanHybrid(volumes, 0.9)
	fmt.Println("persistent:", plan.Persistent)
	fmt.Println("polling instances:", len(plan.Polling))
	// Output:
	// persistent: [whale-1 whale-2]
	// polling instances: 3
}
