package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"megate/internal/topology"
)

func testTopo(t *testing.T, perSite int) *topology.Topology {
	t.Helper()
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, perSite)
	return topo
}

func TestGenerateBasics(t *testing.T) {
	topo := testTopo(t, 20)
	m := Generate(topo, GenOptions{Seed: 1})
	if m.NumFlows() == 0 {
		t.Fatal("no flows generated")
	}
	for i := range m.Flows {
		f := &m.Flows[i]
		if f.DemandMbps <= 0 {
			t.Fatalf("flow %d has demand %v", f.ID, f.DemandMbps)
		}
		if f.Pair.Src == f.Pair.Dst {
			t.Fatalf("flow %d is intra-site", f.ID)
		}
		if topo.Endpoints[f.Src].Site != f.Pair.Src || topo.Endpoints[f.Dst].Site != f.Pair.Dst {
			t.Fatalf("flow %d pair inconsistent with endpoints", f.ID)
		}
		if f.Class < Class1 || f.Class > Class3 {
			t.Fatalf("flow %d has class %v", f.ID, f.Class)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	topo := testTopo(t, 10)
	a := Generate(topo, GenOptions{Seed: 7})
	b := Generate(topo, GenOptions{Seed: 7})
	if a.NumFlows() != b.NumFlows() {
		t.Fatal("flow count differs across runs")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
	c := Generate(topo, GenOptions{Seed: 8})
	same := a.NumFlows() == c.NumFlows()
	if same {
		identical := true
		for i := range a.Flows {
			if a.Flows[i] != c.Flows[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical matrices")
		}
	}
}

func TestGenerateFlowsPerEndpointScales(t *testing.T) {
	topo := testTopo(t, 50)
	m1 := Generate(topo, GenOptions{FlowsPerEndpoint: 1, Seed: 3})
	m2 := Generate(topo, GenOptions{FlowsPerEndpoint: 2, Seed: 3})
	ratio := float64(m2.NumFlows()) / float64(m1.NumFlows())
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("flow ratio = %v, want ~2", ratio)
	}
}

func TestGenerateClassMix(t *testing.T) {
	topo := testTopo(t, 100)
	m := Generate(topo, GenOptions{Seed: 5, ClassMix: [3]float64{0.5, 0.5, 0}})
	counts := map[Class]int{}
	for i := range m.Flows {
		counts[m.Flows[i].Class]++
	}
	if counts[Class3] != 0 {
		t.Errorf("class 3 should be absent, got %d flows", counts[Class3])
	}
	frac1 := float64(counts[Class1]) / float64(m.NumFlows())
	if frac1 < 0.4 || frac1 > 0.6 {
		t.Errorf("class-1 fraction = %v, want ~0.5", frac1)
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	topo := testTopo(t, 200)
	m := Generate(topo, GenOptions{Seed: 9, MeanDemandMbps: 10})
	var xs []float64
	for i := range m.Flows {
		xs = append(xs, m.Flows[i].DemandMbps)
	}
	// Heavy tail: top 10% of flows should carry a large share of demand.
	total := 0.0
	for _, x := range xs {
		total += x
	}
	// Partial sort: count share above the 90th percentile threshold.
	thresh := percentile(xs, 0.9)
	top := 0.0
	for _, x := range xs {
		if x >= thresh {
			top += x
		}
	}
	if top/total < 0.3 {
		t.Errorf("top decile carries %v of demand, want >= 0.3 (heavy tail)", top/total)
	}
}

func percentile(xs []float64, q float64) float64 {
	cp := append([]float64(nil), xs...)
	// simple selection: sort
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

func TestMatrixPairsSortedAndIndexed(t *testing.T) {
	topo := testTopo(t, 10)
	m := Generate(topo, GenOptions{Seed: 2})
	pairs := m.Pairs()
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst >= b.Dst) {
			t.Fatal("pairs not sorted")
		}
	}
	n := 0
	for _, p := range pairs {
		for _, idx := range m.FlowsFor(p) {
			if m.Flows[idx].Pair != p {
				t.Fatal("index maps flow to wrong pair")
			}
			n++
		}
	}
	if n != m.NumFlows() {
		t.Fatalf("index covers %d flows, want %d", n, m.NumFlows())
	}
}

func TestDemandForMatchesSum(t *testing.T) {
	topo := testTopo(t, 10)
	m := Generate(topo, GenOptions{Seed: 4})
	total := 0.0
	for _, p := range m.Pairs() {
		total += m.DemandFor(p)
	}
	if math.Abs(total-m.TotalDemandMbps()) > 1e-6 {
		t.Errorf("per-pair sum %v != total %v", total, m.TotalDemandMbps())
	}
}

func TestClassSubset(t *testing.T) {
	topo := testTopo(t, 50)
	m := Generate(topo, GenOptions{Seed: 6})
	n := 0
	for _, c := range Classes {
		sub := m.ClassSubset(c)
		for i := range sub.Flows {
			if sub.Flows[i].Class != c {
				t.Fatal("wrong class in subset")
			}
		}
		n += sub.NumFlows()
	}
	if n != m.NumFlows() {
		t.Fatalf("subsets cover %d flows, want %d", n, m.NumFlows())
	}
}

func TestGenerateWithApps(t *testing.T) {
	topo := testTopo(t, 100)
	m := Generate(topo, GenOptions{Seed: 10, Apps: ProductionApps})
	appSeen := map[string]Class{}
	for i := range m.Flows {
		f := &m.Flows[i]
		if f.App == "" {
			t.Fatal("flow without app tag")
		}
		appSeen[f.App] = f.Class
	}
	if len(appSeen) < 5 {
		t.Errorf("only %d distinct apps tagged", len(appSeen))
	}
	// App class tags must agree with the profile table.
	for _, p := range ProductionApps {
		if c, ok := appSeen[p.Name]; ok && c != p.Class {
			t.Errorf("app %s tagged class %v, profile says %v", p.Name, c, p.Class)
		}
	}
}

func TestGenerateTraceDiurnal(t *testing.T) {
	topo := testTopo(t, 20)
	tr := GenerateTrace(topo, 24, GenOptions{Seed: 11})
	if len(tr.Intervals) != 24 {
		t.Fatalf("intervals = %d", len(tr.Intervals))
	}
	// Same flow IDs across intervals.
	if tr.Intervals[0].NumFlows() != tr.Intervals[12].NumFlows() {
		t.Fatal("flow population changed across intervals")
	}
	// Peak (mid-day) should exceed trough.
	trough := tr.Intervals[0].TotalDemandMbps()
	peak := tr.Intervals[12].TotalDemandMbps()
	if peak <= trough {
		t.Errorf("peak %v <= trough %v", peak, trough)
	}
}

func TestSubsample(t *testing.T) {
	topo := testTopo(t, 100)
	m := Generate(topo, GenOptions{Seed: 12})
	half := m.Subsample(0.5)
	frac := float64(half.NumFlows()) / float64(m.NumFlows())
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("subsample frac = %v, want ~0.5", frac)
	}
	if m.Subsample(1.0) != m {
		t.Error("frac >= 1 should return the same matrix")
	}
	for i := range half.Flows {
		if half.Flows[i].DemandMbps <= 0 {
			t.Fatal("bad flow in subsample")
		}
	}
}

func TestGenerateEmptyTopology(t *testing.T) {
	topo := topology.New("empty")
	m := Generate(topo, GenOptions{Seed: 1})
	if m.NumFlows() != 0 {
		t.Fatal("flows from empty topology")
	}
	if m.TotalDemandMbps() != 0 {
		t.Fatal("demand from empty topology")
	}
}

func TestClassString(t *testing.T) {
	if Class1.String() != "QoS1" {
		t.Errorf("got %q", Class1.String())
	}
}

// Property: pareto demand is always >= xm and the sample mean is near the
// target mean for a large sample.
func TestParetoDemandProperty(t *testing.T) {
	f := func(u float64) bool {
		u = math.Abs(math.Mod(u, 1))
		d := paretoDemand(u, 10, 1.8)
		return d >= 10*(1.8-1)/1.8-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPickClassBounds(t *testing.T) {
	mix := [3]float64{0.2, 0.3, 0.5}
	if pickClass(0, mix) != Class1 {
		t.Error("u=0 should give class 1")
	}
	if pickClass(0.9999, mix) != Class3 {
		t.Error("u~1 should give class 3")
	}
}

func TestPickAppNoneForClass(t *testing.T) {
	apps := []AppProfile{{Name: "x", Class: Class1, Share: 1}}
	if _, ok := pickApp(apps, Class3, 0.5); ok {
		t.Error("no class-3 apps, want ok=false")
	}
}

func TestMatrixScale(t *testing.T) {
	topo := testTopo(t, 10)
	m := Generate(topo, GenOptions{Seed: 13})
	scaled := m.Scale(2.5)
	if scaled.NumFlows() != m.NumFlows() {
		t.Fatal("flow count changed")
	}
	if math.Abs(scaled.TotalDemandMbps()-2.5*m.TotalDemandMbps()) > 1e-6 {
		t.Errorf("total = %v, want %v", scaled.TotalDemandMbps(), 2.5*m.TotalDemandMbps())
	}
	// The original must be untouched and non-demand fields preserved.
	for i := range m.Flows {
		if scaled.Flows[i].Src != m.Flows[i].Src || scaled.Flows[i].Class != m.Flows[i].Class {
			t.Fatal("identity fields changed")
		}
	}
	m2 := m.Scale(1)
	for i := range m.Flows {
		if m2.Flows[i] != m.Flows[i] {
			t.Fatal("scale by 1 changed flows")
		}
	}
}

func TestGenerateDemandScale(t *testing.T) {
	topo := testTopo(t, 20)
	base := Generate(topo, GenOptions{Seed: 14})
	big := Generate(topo, GenOptions{Seed: 14, DemandScale: 7})
	if math.Abs(big.TotalDemandMbps()-7*base.TotalDemandMbps()) > 1e-6 {
		t.Errorf("DemandScale: %v vs %v", big.TotalDemandMbps(), 7*base.TotalDemandMbps())
	}
}
