package traffic

import "testing"

func testFlows() []Flow {
	return []Flow{
		{ID: 0, Pair: SitePair{Src: 0, Dst: 1}, DemandMbps: 10, Class: Class2, App: "financial-payment"},
		{ID: 1, Pair: SitePair{Src: 0, Dst: 1}, DemandMbps: 20, Class: Class3, App: "bulk-transfer"},
		{ID: 2, Pair: SitePair{Src: 1, Dst: 0}, DemandMbps: 5, Class: Class2, App: ""},
		{ID: 3, Pair: SitePair{Src: 1, Dst: 0}, DemandMbps: 7, Class: Class3, App: "log-shipping"},
	}
}

func TestPolicyApplyClassAndFloor(t *testing.T) {
	m := NewMatrix(testFlows())
	pt := NewPolicyTable()
	pt.Set("financial-payment", ServicePolicy{Class: Class1, Tier: 0})
	pt.Set("log-shipping", ServicePolicy{MinPrio: Class2, Tier: -1})

	out := pt.Apply(m)
	if out.Policies != pt {
		t.Fatalf("Apply must attach the table")
	}
	if got := out.Flows[0].Class; got != Class1 {
		t.Errorf("payment class = %v, want Class1", got)
	}
	if got := out.Flows[1].Class; got != Class3 {
		t.Errorf("unannotated bulk-transfer class changed to %v", got)
	}
	if got := out.Flows[3].Class; got != Class2 {
		t.Errorf("MinPrio floor: log-shipping class = %v, want Class2", got)
	}
	// Original untouched.
	if m.Flows[0].Class != Class2 || m.Policies != nil {
		t.Errorf("Apply mutated the source matrix")
	}
}

func TestPolicyTierBound(t *testing.T) {
	pt := NewPolicyTable()
	pt.Set("financial-payment", ServicePolicy{Class: Class1, Tier: 0})
	pt.Set("realtime-message", ServicePolicy{Tier: 1})
	pt.Set("bulk-transfer", ServicePolicy{Tier: -1, MinPrio: Class3})

	if k, ok := pt.TierBound("financial-payment"); !ok || k != 0 {
		t.Errorf("TierBound(payment) = %d,%v, want 0,true", k, ok)
	}
	if k, ok := pt.TierBound("realtime-message"); !ok || k != 1 {
		t.Errorf("TierBound(realtime) = %d,%v, want 1,true", k, ok)
	}
	if _, ok := pt.TierBound("bulk-transfer"); ok {
		t.Errorf("unrestricted policy must not report a tier bound")
	}
	if _, ok := pt.TierBound("unknown"); ok {
		t.Errorf("unannotated app must not report a tier bound")
	}
	if !pt.HasTierBounds() {
		t.Errorf("table with restrictions must report HasTierBounds")
	}

	var nilPT *PolicyTable
	if nilPT.HasTierBounds() || nilPT.Len() != 0 {
		t.Errorf("nil table must behave as empty")
	}
	if _, ok := nilPT.TierBound("x"); ok {
		t.Errorf("nil table must not report bounds")
	}
}

func TestPolicyPropagation(t *testing.T) {
	pt := NewPolicyTable()
	pt.Set("financial-payment", ServicePolicy{Tier: 0})
	m := pt.Apply(NewMatrix(testFlows()))

	if sub := m.ClassSubset(Class2); sub.Policies != pt {
		t.Errorf("ClassSubset dropped Policies")
	}
	if s := m.Scale(2); s.Policies != pt {
		t.Errorf("Scale dropped Policies")
	}
	if s := m.Subsample(0.5); s.Policies != pt {
		t.Errorf("Subsample dropped Policies")
	}
}
