// Package traffic generates instance-level traffic matrices: the set of
// endpoint-pair demands d_k^i (Table 1) that drive the MegaTE optimizer.
//
// The generator follows §6.1 of the paper: site-level volumes follow a
// gravity model weighted by endpoint counts, per-endpoint-pair demands are
// heavy-tailed, and each flow carries one of three QoS classes (§4.1). A
// diurnal Trace stretches a base matrix across the TE intervals of a day.
package traffic

import (
	"fmt"
	"math"
	"sort"

	"megate/internal/stats"
	"megate/internal/topology"
)

// Class is a QoS service class (§4.1). Class 1 is the highest priority
// (network control, cloud gaming); class 2 is ordinary user/application
// traffic; class 3 is heavy bulk transfer such as logs.
type Class int

const (
	Class1 Class = 1
	Class2 Class = 2
	Class3 Class = 3
)

// Classes lists all QoS classes in allocation order (highest priority
// first), the order MaxAllFlow is invoked per class (§4.1).
var Classes = []Class{Class1, Class2, Class3}

// String names the class ("QoS1".."QoS3").
func (c Class) String() string { return fmt.Sprintf("QoS%d", int(c)) }

// SitePair identifies an ordered pair of router sites (the k index of
// Table 1).
type SitePair struct {
	Src, Dst topology.SiteID
}

// Flow is a single endpoint-pair demand: the i-th member of I_k with demand
// d_k^i. The flow is indivisible — the optimizer must place all of it on one
// tunnel or reject it (constraint 1b/1c).
type Flow struct {
	ID         int
	Src, Dst   topology.EndpointID
	Pair       SitePair
	DemandMbps float64
	Class      Class
	// App labels the application for the production-style experiments
	// (Figures 15–17); empty for generic traffic.
	App string
}

// Matrix is one TE interval's demand set.
type Matrix struct {
	Flows  []Flow
	byPair map[SitePair][]int
	// Policies, when non-nil, carries the service-policy table whose tier
	// bounds the solver and config builder enforce. Nil means no policies —
	// the default path is untouched.
	Policies *PolicyTable
}

// NewMatrix builds a Matrix from flows, indexing them by site pair.
func NewMatrix(flows []Flow) *Matrix {
	m := &Matrix{Flows: flows, byPair: make(map[SitePair][]int)}
	for i := range flows {
		m.byPair[flows[i].Pair] = append(m.byPair[flows[i].Pair], i)
	}
	return m
}

// Pairs returns all site pairs with at least one flow, in deterministic
// order.
func (m *Matrix) Pairs() []SitePair {
	pairs := make([]SitePair, 0, len(m.byPair))
	for p := range m.byPair {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	return pairs
}

// FlowsFor returns the indices into Flows of the flows on site pair p.
func (m *Matrix) FlowsFor(p SitePair) []int { return m.byPair[p] }

// TotalDemandMbps sums all flow demands.
func (m *Matrix) TotalDemandMbps() float64 {
	total := 0.0
	for i := range m.Flows {
		total += m.Flows[i].DemandMbps
	}
	return total
}

// DemandFor sums the demand on a site pair — D_k of Algorithm 1's SiteMerge.
func (m *Matrix) DemandFor(p SitePair) float64 {
	total := 0.0
	for _, i := range m.byPair[p] {
		total += m.Flows[i].DemandMbps
	}
	return total
}

// ClassSubset returns a new Matrix containing only flows of class c,
// preserving flow IDs.
func (m *Matrix) ClassSubset(c Class) *Matrix {
	var flows []Flow
	for i := range m.Flows {
		if m.Flows[i].Class == c {
			flows = append(flows, m.Flows[i])
		}
	}
	sub := NewMatrix(flows)
	sub.Policies = m.Policies
	return sub
}

// NumFlows returns the number of endpoint-pair demands.
func (m *Matrix) NumFlows() int { return len(m.Flows) }

// AppProfile describes an application used in the production experiments
// (§7). The five time-sensitive apps of Figure 15 are class 1 or 2;
// Figures 16–17 contrast class 1 and class 3 apps.
type AppProfile struct {
	Name  string
	Class Class
	// Share is the fraction of flows tagged with this app within its class.
	Share float64
	// MeanMbps overrides the generator's demand mean for this app when > 0.
	MeanMbps float64
}

// ProductionApps mirrors the applications named in §7 of the paper.
var ProductionApps = []AppProfile{
	{Name: "video-streaming", Class: Class1, Share: 0.2, MeanMbps: 40},
	{Name: "live-streaming", Class: Class1, Share: 0.2, MeanMbps: 60},
	{Name: "realtime-message", Class: Class1, Share: 0.2, MeanMbps: 5},
	{Name: "financial-payment", Class: Class1, Share: 0.15, MeanMbps: 2},
	{Name: "online-gaming", Class: Class1, Share: 0.25, MeanMbps: 10},
	{Name: "user-traffic", Class: Class2, Share: 1.0, MeanMbps: 20},
	{Name: "bulk-transfer", Class: Class3, Share: 0.7, MeanMbps: 200},
	{Name: "log-shipping", Class: Class3, Share: 0.3, MeanMbps: 150},
}

// GenOptions parameterizes the matrix generator.
type GenOptions struct {
	// FlowsPerEndpoint is the expected number of demands each endpoint
	// originates per TE interval. Default 1.
	FlowsPerEndpoint float64
	// MeanDemandMbps is the mean of the heavy-tailed per-flow demand.
	// Default 10 Mbps.
	MeanDemandMbps float64
	// ParetoAlpha shapes the demand tail; must be > 1. Default 1.8 (heavy
	// but finite-mean, matching the paper's "a small part of the flows
	// account for most of the network traffic", §8).
	ParetoAlpha float64
	// ClassMix gives the probability of classes 1..3. Defaults to
	// {0.1, 0.65, 0.25}.
	ClassMix [3]float64
	// Apps, when non-nil, tags each flow with an application drawn from the
	// profiles of its class and uses the app's MeanMbps.
	Apps []AppProfile
	// DemandScale multiplies every generated demand (after app means are
	// applied); 0 means 1. Use it to sweep load intensity.
	DemandScale float64
	// Seed makes generation reproducible.
	Seed int64
}

func (o *GenOptions) withDefaults() GenOptions {
	out := *o
	if out.FlowsPerEndpoint == 0 {
		out.FlowsPerEndpoint = 1
	}
	if out.MeanDemandMbps == 0 {
		out.MeanDemandMbps = 10
	}
	if out.ParetoAlpha <= 1 {
		out.ParetoAlpha = 1.8
	}
	if out.ClassMix == [3]float64{} {
		out.ClassMix = [3]float64{0.1, 0.65, 0.25}
	}
	return out
}

// Generate produces one TE interval's traffic matrix over the topology's
// endpoints. Destination sites are drawn from a gravity model (probability
// proportional to destination endpoint count); destination endpoints are
// chosen uniformly within the site.
func Generate(t *topology.Topology, opts GenOptions) *Matrix {
	o := opts.withDefaults()
	r := stats.NewRand(o.Seed)

	// Gravity weights: endpoint count per site.
	counts := t.EndpointCountsBySite()
	cum := make([]float64, len(counts))
	total := 0.0
	for i, c := range counts {
		total += float64(c)
		cum[i] = total
	}
	if total == 0 {
		return NewMatrix(nil)
	}

	pickSite := func() topology.SiteID {
		x := r.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		return topology.SiteID(i)
	}

	var flows []Flow
	id := 0
	for _, ep := range t.Endpoints {
		n := poissonLike(r.Float64(), o.FlowsPerEndpoint)
		for f := 0; f < n; f++ {
			// Pick a destination site different from the source site.
			var dstSite topology.SiteID
			for tries := 0; ; tries++ {
				dstSite = pickSite()
				if dstSite != ep.Site || tries > 20 {
					break
				}
			}
			if dstSite == ep.Site {
				continue
			}
			dsts := t.EndpointsAt(dstSite)
			if len(dsts) == 0 {
				continue
			}
			dst := dsts[r.Intn(len(dsts))]

			class := pickClass(r.Float64(), o.ClassMix)
			app := ""
			mean := o.MeanDemandMbps
			if o.Apps != nil {
				if p, ok := pickApp(o.Apps, class, r.Float64()); ok {
					app = p.Name
					if p.MeanMbps > 0 {
						mean = p.MeanMbps
					}
				}
			}
			demand := paretoDemand(r.Float64(), mean, o.ParetoAlpha)
			if o.DemandScale > 0 {
				demand *= o.DemandScale
			}

			flows = append(flows, Flow{
				ID:  id,
				Src: ep.ID, Dst: dst,
				Pair:       SitePair{Src: ep.Site, Dst: dstSite},
				DemandMbps: demand,
				Class:      class,
				App:        app,
			})
			id++
		}
	}
	return NewMatrix(flows)
}

// poissonLike returns a small nonnegative integer with the given mean. A
// full Poisson sampler is unnecessary; for means <= 2 a two-point mixture is
// adequate and much cheaper at millions of endpoints.
func poissonLike(u, mean float64) int {
	base := int(mean)
	frac := mean - float64(base)
	if u < frac {
		base++
	}
	return base
}

func pickClass(u float64, mix [3]float64) Class {
	sum := mix[0] + mix[1] + mix[2]
	u *= sum
	if u < mix[0] {
		return Class1
	}
	if u < mix[0]+mix[1] {
		return Class2
	}
	return Class3
}

func pickApp(apps []AppProfile, c Class, u float64) (AppProfile, bool) {
	total := 0.0
	for _, a := range apps {
		if a.Class == c {
			total += a.Share
		}
	}
	if total == 0 {
		return AppProfile{}, false
	}
	u *= total
	acc := 0.0
	for _, a := range apps {
		if a.Class != c {
			continue
		}
		acc += a.Share
		if u < acc {
			return a, true
		}
	}
	return AppProfile{}, false
}

// paretoDemand draws from a Pareto distribution with the given mean and
// shape alpha (> 1): xm = mean * (alpha-1)/alpha.
func paretoDemand(u, mean, alpha float64) float64 {
	xm := mean * (alpha - 1) / alpha
	if u <= 0 {
		u = 1e-12
	}
	return xm / math.Pow(u, 1/alpha)
}

// Trace is a day-long sequence of matrices, one per TE interval.
type Trace struct {
	Intervals []*Matrix
}

// GenerateTrace builds a diurnal trace of n intervals: the base matrix's
// demands are modulated by a sinusoidal day curve with multiplicative noise,
// mimicking the "typical day" trace collected from TWAN (§6.1). Flow
// identities (endpoints, class, app) stay fixed across intervals so per-flow
// latency/availability can be followed through the day.
func GenerateTrace(t *topology.Topology, n int, opts GenOptions) *Trace {
	base := Generate(t, opts)
	r := stats.NewRand(opts.Seed + 1)
	tr := &Trace{}
	for i := 0; i < n; i++ {
		phase := 2 * math.Pi * float64(i) / float64(n)
		day := 0.75 + 0.25*math.Sin(phase-math.Pi/2) // trough at interval 0
		flows := make([]Flow, len(base.Flows))
		copy(flows, base.Flows)
		for j := range flows {
			noise := 0.8 + 0.4*r.Float64()
			flows[j].DemandMbps *= day * noise
		}
		tr.Intervals = append(tr.Intervals, NewMatrix(flows))
	}
	return tr
}

// Scale returns a copy of the matrix with every demand multiplied by
// factor, used to calibrate workloads to a target utilization.
func (m *Matrix) Scale(factor float64) *Matrix {
	flows := make([]Flow, len(m.Flows))
	copy(flows, m.Flows)
	for i := range flows {
		flows[i].DemandMbps *= factor
	}
	out := NewMatrix(flows)
	out.Policies = m.Policies
	return out
}

// Subsample returns a matrix keeping approximately frac of the flows
// (deterministically by flow ID), used to sweep endpoint scale as in §6.1:
// "we randomly select the traffic demands from endpoint pairs connecting to
// the same site pair".
func (m *Matrix) Subsample(frac float64) *Matrix {
	if frac >= 1 {
		return m
	}
	stride := int(math.Round(1 / frac))
	if stride < 1 {
		stride = 1
	}
	var flows []Flow
	for i := range m.Flows {
		if m.Flows[i].ID%stride == 0 {
			flows = append(flows, m.Flows[i])
		}
	}
	out := NewMatrix(flows)
	out.Policies = m.Policies
	return out
}
