package traffic

// ServicePolicy annotates one application's flows with path requirements —
// the per-service policy layer of the federation work: mc-wan-style
// interconnects map services to traffic classes, and production MegaTE pins
// critical services (payment.secure, realtime control) to the most reliable
// tunnel tier of every site pair.
type ServicePolicy struct {
	// Class, when non-zero, overrides the QoS class of the app's flows: a
	// payment service stays Class1 no matter what mix the demand estimator
	// drew for it.
	Class Class
	// Tier is the lowest-availability tunnel tier the app's flows may ride.
	// Tunnel tiers rank each site pair's tunnel set by availability (tier 0
	// is the most reliable tunnel); a policy with Tier = 0 pins the app to
	// each pair's tier-0 tunnel, Tier = k admits tiers 0..k. Negative means
	// unrestricted (class/priority annotation only).
	Tier int
	// MinPrio is a priority floor: flows whose class is numerically above it
	// (lower priority) are raised to MinPrio. Zero leaves the class alone.
	// Class and MinPrio compose — Class rewrites first, then the floor
	// applies.
	MinPrio Class
}

// Restricted reports whether the policy constrains tunnel tiers.
func (p ServicePolicy) Restricted() bool { return p.Tier >= 0 }

// PolicyTable maps application names to their service policies. The zero
// value is unusable; use NewPolicyTable. A nil *PolicyTable behaves as "no
// policies" everywhere.
type PolicyTable struct {
	byApp map[string]ServicePolicy
}

// NewPolicyTable builds an empty policy table.
func NewPolicyTable() *PolicyTable {
	return &PolicyTable{byApp: make(map[string]ServicePolicy)}
}

// Set installs (or replaces) the policy for an application.
func (pt *PolicyTable) Set(app string, p ServicePolicy) { pt.byApp[app] = p }

// Get returns the policy for an application. Nil-safe.
func (pt *PolicyTable) Get(app string) (ServicePolicy, bool) {
	if pt == nil || app == "" {
		return ServicePolicy{}, false
	}
	p, ok := pt.byApp[app]
	return p, ok
}

// TierBound returns the tunnel-tier bound for an application, or ok=false
// when the app is unannotated or its policy leaves tiers unrestricted.
// Nil-safe.
func (pt *PolicyTable) TierBound(app string) (int, bool) {
	p, ok := pt.Get(app)
	if !ok || !p.Restricted() {
		return 0, false
	}
	return p.Tier, true
}

// HasTierBounds reports whether any policy in the table restricts tunnel
// tiers — the solver's cue to compute tier-filtered candidate sets at all.
// Nil-safe.
func (pt *PolicyTable) HasTierBounds() bool {
	if pt == nil {
		return false
	}
	for _, p := range pt.byApp {
		if p.Restricted() {
			return true
		}
	}
	return false
}

// Len returns the number of annotated applications. Nil-safe.
func (pt *PolicyTable) Len() int {
	if pt == nil {
		return 0
	}
	return len(pt.byApp)
}

// Apply returns a copy of the matrix with the table's class annotations
// folded in (Class rewrites, then the MinPrio floor) and the table attached
// as m.Policies so the solver and config builder see the tier bounds. The
// original matrix is untouched; an empty or nil table returns a copy with
// classes unchanged.
func (pt *PolicyTable) Apply(m *Matrix) *Matrix {
	flows := make([]Flow, len(m.Flows))
	copy(flows, m.Flows)
	if pt != nil {
		for i := range flows {
			p, ok := pt.byApp[flows[i].App]
			if !ok {
				continue
			}
			if p.Class != 0 {
				flows[i].Class = p.Class
			}
			if p.MinPrio != 0 && flows[i].Class > p.MinPrio {
				flows[i].Class = p.MinPrio
			}
		}
	}
	out := NewMatrix(flows)
	out.Policies = pt
	return out
}
