package flowsim

import (
	"math"
	"testing"
	"time"

	"megate/internal/baselines"
	"megate/internal/topology"
	"megate/internal/traffic"
)

func prodTopo(t *testing.T, perSite int) (*topology.Topology, *traffic.Matrix) {
	t.Helper()
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, perSite)
	m := traffic.Generate(topo, traffic.GenOptions{
		Seed: 5, Apps: traffic.ProductionApps, DemandScale: 10,
	})
	return topo, m
}

func TestRunFailureMegaTE(t *testing.T) {
	topo, m := prodTopo(t, 10)
	scen := FailureScenario{FailLinks: []topology.LinkID{0, 4}, TEInterval: time.Minute}
	out, err := RunFailure(topo, m, &baselines.MegaTE{}, scen)
	if err != nil {
		t.Fatal(err)
	}
	if out.PreSatisfied <= 0 || out.PostSatisfied <= 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if out.EffectiveSatisfied > out.PreSatisfied+1e-9 {
		t.Error("effective satisfied above pre-failure level")
	}
	if out.EffectiveSatisfied <= 0 || out.EffectiveSatisfied > 1 {
		t.Errorf("effective = %v", out.EffectiveSatisfied)
	}
	// Topology must be restored.
	for _, l := range topo.Links {
		if l.Down {
			t.Fatal("link left failed after RunFailure")
		}
	}
}

func TestRunFailureRecomputeOverridePenalizes(t *testing.T) {
	topo, m := prodTopo(t, 10)
	scen := FailureScenario{FailLinks: []topology.LinkID{0}, TEInterval: time.Minute}
	fast, err := RunFailure(topo, m, &baselines.MegaTE{}, scen)
	if err != nil {
		t.Fatal(err)
	}
	scen.RecomputeOverride = 30 * time.Second // half the interval lost
	slow, err := RunFailure(topo, m, &baselines.MegaTE{}, scen)
	if err != nil {
		t.Fatal(err)
	}
	if slow.EffectiveSatisfied >= fast.EffectiveSatisfied {
		// Only fails if stranding was zero; require some stranding for the
		// comparison to be meaningful.
		if slow.StrandedFraction > 0.01 {
			t.Errorf("slow recompute %.4f should trail fast %.4f",
				slow.EffectiveSatisfied, fast.EffectiveSatisfied)
		}
	}
}

func TestFailureGapMegaTEVsNCFlow(t *testing.T) {
	// Figure 12's mechanism: with equal workloads, a scheme that recomputes
	// slower loses more demand. Use the override to model NCFlow's ~100 s
	// recompute vs MegaTE's sub-second one.
	topo, m := prodTopo(t, 20)
	scen := FailureScenario{FailLinks: []topology.LinkID{0, 2, 8}, TEInterval: 5 * time.Minute}

	mega, err := RunFailure(topo, m, &baselines.MegaTE{}, scen)
	if err != nil {
		t.Fatal(err)
	}
	scenNC := scen
	scenNC.RecomputeOverride = 100 * time.Second
	nc, err := RunFailure(topo, m, &baselines.NCFlow{}, scenNC)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MegaTE effective=%.4f stranded=%.4f recompute=%v", mega.EffectiveSatisfied, mega.StrandedFraction, mega.Recompute)
	t.Logf("NCFlow effective=%.4f stranded=%.4f recompute=%v", nc.EffectiveSatisfied, nc.StrandedFraction, nc.Recompute)
	if nc.EffectiveSatisfied >= mega.EffectiveSatisfied {
		t.Errorf("NCFlow %.4f should trail MegaTE %.4f under failures", nc.EffectiveSatisfied, mega.EffectiveSatisfied)
	}
}

func TestRunMegaTEProductionMetrics(t *testing.T) {
	topo, m := prodTopo(t, 20)
	apps, err := RunMegaTE(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) < 5 {
		t.Fatalf("apps = %d", len(apps))
	}
	for name, a := range apps {
		if a.SatisfiedFraction <= 0 || a.SatisfiedFraction > 1+1e-9 {
			t.Errorf("%s satisfied = %v", name, a.SatisfiedFraction)
		}
		if !math.IsNaN(a.MeanLatencyMs) && a.MeanLatencyMs <= 0 {
			t.Errorf("%s latency = %v", name, a.MeanLatencyMs)
		}
		if !math.IsNaN(a.Availability) && (a.Availability <= 0.9 || a.Availability > 1) {
			t.Errorf("%s availability = %v", name, a.Availability)
		}
	}
}

func TestProductionComparisonShapes(t *testing.T) {
	// The three §7 claims, on one workload:
	//  - class-1 apps see lower latency under MegaTE (Fig 15);
	//  - the class-1 app's availability is at least as good (Fig 16);
	//  - the bulk app's cost drops substantially (Fig 17).
	topo, m := prodTopo(t, 40)
	conv, err := RunConventional(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	mega, err := RunMegaTE(topo, m)
	if err != nil {
		t.Fatal(err)
	}

	for _, app := range []string{"online-gaming", "financial-payment", "realtime-message"} {
		red := LatencyReduction(conv[app], mega[app])
		if math.IsNaN(red) {
			t.Errorf("%s: no latency data", app)
			continue
		}
		t.Logf("%s latency reduction: %.1f%%", app, red*100)
		if red < -0.05 {
			t.Errorf("%s latency got worse by %.1f%%", app, -red*100)
		}
	}

	bulkRed := CostReduction(conv["bulk-transfer"], mega["bulk-transfer"])
	t.Logf("bulk-transfer cost reduction: %.1f%%", bulkRed*100)
	if math.IsNaN(bulkRed) || bulkRed < 0.1 {
		t.Errorf("bulk cost reduction = %v, want >= 10%%", bulkRed)
	}

	if mega["online-gaming"] != nil && conv["online-gaming"] != nil {
		if mega["online-gaming"].Availability < conv["online-gaming"].Availability-0.001 {
			t.Errorf("class-1 availability regressed: %v -> %v",
				conv["online-gaming"].Availability, mega["online-gaming"].Availability)
		}
	}
}

func TestMonthlyAvailabilitySeries(t *testing.T) {
	conv := &AppMetrics{Availability: 0.9990}
	mega := &AppMetrics{Availability: 0.99995}
	series := MonthlyAvailability(conv, mega, 12, 6, 1)
	if len(series) != 12 {
		t.Fatal("series length")
	}
	for i, v := range series {
		if v <= 0 || v > 1 {
			t.Fatalf("month %d availability %v", i, v)
		}
	}
	// Post-deployment months should beat pre-deployment months.
	preMax, postMin := 0.0, 1.0
	for i, v := range series {
		if i < 6 && v > preMax {
			preMax = v
		}
		if i >= 6 && v < postMin {
			postMin = v
		}
	}
	if postMin <= preMax {
		t.Errorf("post-deploy min %v should exceed pre-deploy max %v", postMin, preMax)
	}
}

func TestReductionEdgeCases(t *testing.T) {
	if !math.IsNaN(LatencyReduction(nil, &AppMetrics{})) {
		t.Error("nil conv should be NaN")
	}
	if !math.IsNaN(CostReduction(&AppMetrics{CostPerGbps: 0}, &AppMetrics{})) {
		t.Error("zero conv cost should be NaN")
	}
}

func TestMergeAppMetrics(t *testing.T) {
	topo, _ := prodTopo(t, 10)
	trace := traffic.GenerateTrace(topo, 4, traffic.GenOptions{Seed: 9, Apps: traffic.ProductionApps})
	var intervals []map[string]*AppMetrics
	for _, m := range trace.Intervals {
		apps, err := RunMegaTE(topo, m)
		if err != nil {
			t.Fatal(err)
		}
		intervals = append(intervals, apps)
	}
	merged := MergeAppMetrics(intervals)
	if len(merged) == 0 {
		t.Fatal("nothing merged")
	}
	for name, a := range merged {
		if a.SatisfiedFraction < 0 || a.SatisfiedFraction > 1+1e-9 {
			t.Errorf("%s satisfied = %v", name, a.SatisfiedFraction)
		}
		if !math.IsNaN(a.MeanLatencyMs) && a.MeanLatencyMs <= 0 {
			t.Errorf("%s latency = %v", name, a.MeanLatencyMs)
		}
	}
}

func TestRunFailureNoStranding(t *testing.T) {
	// Failing a link no traffic uses should not reduce effective demand
	// much below the post level.
	topo := topology.New("pair")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 1, 0)
	c := topo.AddSite("c", 0, 1)
	topo.AddBidiLink(a, b, 1000, 1, 0.999, 1)
	topo.AddBidiLink(a, c, 1000, 1, 0.999, 1) // unused by traffic
	topology.AttachEndpointsExact(topo, 2)
	eps := topo.EndpointsAt(a)
	epd := topo.EndpointsAt(b)
	m := traffic.NewMatrix([]traffic.Flow{{
		ID: 0, Src: eps[0], Dst: epd[0],
		Pair: traffic.SitePair{Src: a, Dst: b}, DemandMbps: 10, Class: traffic.Class2,
	}})
	out, err := RunFailure(topo, m, &baselines.MegaTE{}, FailureScenario{
		FailLinks:  []topology.LinkID{2}, // a<->c
		TEInterval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.StrandedFraction != 0 {
		t.Errorf("stranded = %v, want 0", out.StrandedFraction)
	}
	if out.EffectiveSatisfied < 0.99 {
		t.Errorf("effective = %v, want ~1", out.EffectiveSatisfied)
	}
}

func TestSimulationDayWithFailure(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 10)
	trace := traffic.GenerateTrace(topo, 6, traffic.GenOptions{Seed: 3, MeanDemandMbps: 300})
	sim := &Simulation{
		Topo:   topo,
		Trace:  trace,
		Scheme: &baselines.MegaTE{},
		Events: []Event{
			{Interval: 2, Fail: []topology.LinkID{0}},
			{Interval: 4, Restore: []topology.LinkID{0}},
		},
	}
	records, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 {
		t.Fatalf("records = %d", len(records))
	}
	for i, r := range records {
		if r.Interval != i || r.OfferedMbps <= 0 {
			t.Fatalf("record %d malformed: %+v", i, r)
		}
		if r.EffectiveSatisfied <= 0 || r.EffectiveSatisfied > 1+1e-9 {
			t.Fatalf("record %d effective = %v", i, r.EffectiveSatisfied)
		}
	}
	if records[2].FailedLinks == 0 {
		t.Error("interval 2 should see the failed link")
	}
	if records[4].FailedLinks != 0 {
		t.Error("interval 4 should see the link restored")
	}
	// The failure interval should not beat its neighbours after accounting
	// for the loss window (weak check: effective <= satisfied).
	if records[2].EffectiveSatisfied > records[2].SatisfiedFraction+1e-9 {
		t.Error("effective satisfied above recomputed satisfaction")
	}
	// Topology restored.
	for _, l := range topo.Links {
		if l.Down {
			t.Fatal("link left down at the end")
		}
	}
}

func TestSimulationValidation(t *testing.T) {
	if _, err := (&Simulation{}).Run(); err == nil {
		t.Error("want error for empty simulation")
	}
}
