// Package flowsim provides the flow-level simulations behind the paper's
// failure experiments (§6.3, Figure 12) and production-style comparisons
// (§7, Figures 15–17).
//
// The failure simulator measures satisfied demand across a TE interval in
// which links fail: traffic stranded on failed paths is lost until the
// scheme finishes recomputing, so a scheme's recompute time directly costs
// satisfied demand — the mechanism behind the widening MegaTE/NCFlow gap.
//
// The production simulator contrasts MegaTE's QoS-aware, instance-pinned
// allocation with the conventional aggregated MCF that Tencent ran before
// MegaTE: per application it reports mean latency, availability and
// carriage cost.
package flowsim

import (
	"fmt"
	"math"
	"time"

	"megate/internal/baselines"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// FailureScenario describes a link-failure experiment.
type FailureScenario struct {
	// FailLinks are the directed links to fail (reverse twins fail too).
	FailLinks []topology.LinkID
	// TEInterval is the length of the TE interval during which the failure
	// hits (default 5 minutes, §4).
	TEInterval time.Duration
	// RecomputeOverride, when > 0, substitutes the scheme's measured
	// recompute time (for modelling slower hardware or larger deployments).
	RecomputeOverride time.Duration
}

// FailureOutcome reports one scheme's behaviour under the scenario.
type FailureOutcome struct {
	Scheme string
	// PreSatisfied and PostSatisfied are satisfied-demand fractions before
	// the failure and after recomputation on the degraded topology.
	PreSatisfied, PostSatisfied float64
	// StrandedFraction is the fraction of total demand that was riding the
	// failed links and is lost during the recompute window.
	StrandedFraction float64
	// Recompute is the time the scheme took to recompute on the degraded
	// topology (or the override).
	Recompute time.Duration
	// EffectiveSatisfied blends the loss window with the recomputed
	// allocation across the TE interval — the satisfied demand the paper
	// plots in Figure 12.
	EffectiveSatisfied float64
}

// RunFailure measures scheme under the scenario. The topology is restored
// before returning.
func RunFailure(topo *topology.Topology, m *traffic.Matrix, scheme baselines.Scheme, scen FailureScenario) (FailureOutcome, error) {
	out := FailureOutcome{Scheme: scheme.Name()}
	interval := scen.TEInterval
	if interval <= 0 {
		interval = 5 * time.Minute
	}

	pre, err := scheme.Solve(topo, m)
	if err != nil {
		return out, fmt.Errorf("flowsim: pre-failure solve: %w", err)
	}
	out.PreSatisfied = pre.SatisfiedFraction()

	// Fail the links and find stranded traffic.
	failed := make(map[topology.LinkID]bool)
	for _, l := range scen.FailLinks {
		topo.FailLink(l)
		failed[l] = true
		if rev, ok := topo.ReverseLink(l); ok {
			failed[rev] = true
		}
	}
	defer func() {
		for _, l := range scen.FailLinks {
			topo.RestoreLink(l)
		}
	}()

	stranded := 0.0
	for i := range pre.FlowPlacement {
		for _, pl := range pre.FlowPlacement[i] {
			for _, l := range pl.Tunnel.Links {
				if failed[l] {
					stranded += pl.Mbps
					break
				}
			}
		}
	}
	if pre.TotalMbps > 0 {
		out.StrandedFraction = stranded / pre.TotalMbps
	}

	// Recompute on the degraded topology, measuring the scheme's time.
	start := time.Now()
	post, err := scheme.Solve(topo, m)
	if err != nil {
		return out, fmt.Errorf("flowsim: post-failure solve: %w", err)
	}
	out.Recompute = time.Since(start)
	if scen.RecomputeOverride > 0 {
		out.Recompute = scen.RecomputeOverride
	}
	out.PostSatisfied = post.SatisfiedFraction()

	// During the recompute window the pre-failure allocation is in force
	// minus the stranded traffic; afterwards the recomputed allocation
	// applies.
	lossWindow := math.Min(out.Recompute.Seconds(), interval.Seconds()) / interval.Seconds()
	during := out.PreSatisfied - out.StrandedFraction
	if during < 0 {
		during = 0
	}
	out.EffectiveSatisfied = lossWindow*during + (1-lossWindow)*out.PostSatisfied
	return out, nil
}
