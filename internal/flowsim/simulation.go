package flowsim

import (
	"fmt"
	"time"

	"megate/internal/baselines"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// Event is something that happens during a simulated day: links failing or
// recovering at the start of a TE interval.
type Event struct {
	// Interval is the TE interval index the event fires at.
	Interval int
	// Fail lists links to fail; Restore lists links to bring back.
	Fail, Restore []topology.LinkID
}

// IntervalRecord captures one TE interval's outcome.
type IntervalRecord struct {
	Interval           int
	OfferedMbps        float64
	SatisfiedFraction  float64
	EffectiveSatisfied float64
	// QoS1Latency is the demand-weighted class-1 latency (ms).
	QoS1Latency float64
	// Recompute is the scheme's solve time for the interval.
	Recompute time.Duration
	// FailedLinks is the number of links down during the interval.
	FailedLinks int
}

// Simulation drives a scheme across a day-long trace, interval by interval,
// applying failure events and accounting for recomputation-window losses —
// the paper's operational setting (5-minute TE intervals, §4) in miniature.
type Simulation struct {
	Topo   *topology.Topology
	Trace  *traffic.Trace
	Scheme baselines.Scheme
	// TEInterval defaults to 5 minutes.
	TEInterval time.Duration
	// Events fire at the start of their interval.
	Events []Event
}

// Run executes the simulation and returns one record per interval. The
// topology is left in its final (post-events) state.
func (s *Simulation) Run() ([]IntervalRecord, error) {
	if s.Topo == nil || s.Trace == nil || s.Scheme == nil {
		return nil, fmt.Errorf("flowsim: simulation needs Topo, Trace and Scheme")
	}
	interval := s.TEInterval
	if interval <= 0 {
		interval = 5 * time.Minute
	}

	eventsAt := make(map[int][]Event)
	for _, ev := range s.Events {
		eventsAt[ev.Interval] = append(eventsAt[ev.Interval], ev)
	}

	var records []IntervalRecord
	var prev *baselines.Solution
	for i, m := range s.Trace.Intervals {
		rec := IntervalRecord{Interval: i, OfferedMbps: m.TotalDemandMbps()}

		// Apply this interval's events; traffic stranded on newly failed
		// links is lost until the recompute completes.
		failedNow := map[topology.LinkID]bool{}
		for _, ev := range eventsAt[i] {
			for _, l := range ev.Fail {
				s.Topo.FailLink(l)
				failedNow[l] = true
				if rev, ok := s.Topo.ReverseLink(l); ok {
					failedNow[rev] = true
				}
			}
			for _, l := range ev.Restore {
				s.Topo.RestoreLink(l)
			}
		}
		for _, l := range s.Topo.Links {
			if l.Down {
				rec.FailedLinks++
			}
		}

		start := time.Now()
		sol, err := s.Scheme.Solve(s.Topo, m)
		if err != nil {
			return records, fmt.Errorf("flowsim: interval %d: %w", i, err)
		}
		rec.Recompute = time.Since(start)
		rec.SatisfiedFraction = sol.SatisfiedFraction()
		rec.QoS1Latency = baselines.MeanLatency(sol, m, traffic.Class1)

		// Loss window: until the new allocation is computed and pushed,
		// the previous interval's placement is in force minus whatever was
		// stranded by the new failures.
		rec.EffectiveSatisfied = rec.SatisfiedFraction
		if prev != nil && len(failedNow) > 0 {
			stranded := 0.0
			for fi := range prev.FlowPlacement {
				for _, pl := range prev.FlowPlacement[fi] {
					hit := false
					for _, l := range pl.Tunnel.Links {
						if failedNow[l] {
							hit = true
							break
						}
					}
					if hit {
						stranded += pl.Mbps
					}
				}
			}
			strandedFrac := 0.0
			if prev.TotalMbps > 0 {
				strandedFrac = stranded / prev.TotalMbps
			}
			window := rec.Recompute.Seconds() / interval.Seconds()
			if window > 1 {
				window = 1
			}
			during := prev.SatisfiedFraction() - strandedFrac
			if during < 0 {
				during = 0
			}
			rec.EffectiveSatisfied = window*during + (1-window)*rec.SatisfiedFraction
		}

		records = append(records, rec)
		prev = sol
	}
	return records, nil
}
