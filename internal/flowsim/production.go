package flowsim

import (
	"fmt"
	"math"

	"megate/internal/core"
	"megate/internal/stats"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// AppMetrics aggregates one application's experience over a matrix: the
// quantities of Figures 15 (latency), 16 (availability) and 17 (cost).
// All means are demand-weighted over satisfied traffic.
type AppMetrics struct {
	App               string
	Class             traffic.Class
	MeanLatencyMs     float64
	Availability      float64
	CostPerGbps       float64
	SatisfiedFraction float64

	demandMbps float64
}

// ProductionPolicy is the per-class tunnel weighting MegaTE runs in
// production (§7): class 1 pins to short, highly available paths; class 2
// follows latency; class 3 (bulk) follows carriage cost, landing on cheap
// paths.
func ProductionPolicy(class traffic.Class, tn *topology.Tunnel, topo *topology.Topology) float64 {
	switch class {
	case traffic.Class1:
		return tn.Weight + 1000*(1-tn.Availability(topo))
	case traffic.Class3:
		return tn.CostPerGbps(topo)
	default:
		return tn.Weight
	}
}

// bottleneckCap returns the tunnel's minimum link capacity (0 when a link
// is down).
func bottleneckCap(topo *topology.Topology, tn *topology.Tunnel) float64 {
	min := math.Inf(1)
	for _, l := range tn.Links {
		link := topo.Links[l]
		if link.Down {
			return 0
		}
		if link.CapacityMbps < min {
			min = link.CapacityMbps
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// RunMegaTE solves the matrix with MegaTE's production configuration
// (QoS-split, production path policy) and aggregates per-app metrics.
func RunMegaTE(topo *topology.Topology, m *traffic.Matrix) (map[string]*AppMetrics, error) {
	solver := core.NewSolver(topo, core.Options{
		SplitQoS:    true,
		ClassPolicy: ProductionPolicy,
	})
	res, err := solver.Solve(m)
	if err != nil {
		return nil, err
	}
	apps := make(map[string]*AppMetrics)
	for i, tn := range res.FlowTunnel {
		f := &m.Flows[i]
		a := appFor(apps, f)
		a.demandMbps += f.DemandMbps
		if tn == nil {
			continue
		}
		w := f.DemandMbps
		a.SatisfiedFraction += w
		a.MeanLatencyMs += w * tn.Weight
		a.Availability += w * tn.Availability(topo)
		a.CostPerGbps += w * tn.CostPerGbps(topo)
	}
	finalize(apps)
	return apps, nil
}

// RunConventional models the traditional TE the paper compares against in
// §7: the flow-to-tunnel mapping is five-tuple hashing over the pair's TE
// tunnels in proportion to capacity, regardless of class or latency needs —
// exactly the behaviour of Figure 2, where one instance pair's packets
// cluster around both a 20 ms and a 42 ms path. Every flow of a pair
// therefore experiences the pair's *blended* latency, availability and
// cost: time-sensitive flows ride long tunnels part of the time (Figure
// 15's loss), class-1 traffic inherits the blend's availability (Figure
// 16), and bulk traffic pays for premium links it does not need (Figure
// 17).
func RunConventional(topo *topology.Topology, m *traffic.Matrix) (map[string]*AppMetrics, error) {
	ts := topology.NewTunnelSet(topo, 4)
	pairs := m.Pairs()
	if topo.NumLinks() == 0 {
		return nil, fmt.Errorf("flowsim: conventional TE needs links")
	}

	// Offered load per tunnel: hash-split over the pair's high-availability
	// tunnels proportional to bottleneck capacity.
	type share struct {
		tn   *topology.Tunnel
		frac float64 // share of the pair's demand
	}
	pairShares := make([][]share, len(pairs))
	loads := make([]float64, topo.NumLinks())
	for pi, p := range pairs {
		sel := ts.For(p.Src, p.Dst)
		total := 0.0
		caps := make([]float64, len(sel))
		for i, tn := range sel {
			caps[i] = bottleneckCap(topo, tn)
			total += caps[i]
		}
		if total == 0 {
			continue
		}
		demand := m.DemandFor(p)
		for i, tn := range sel {
			frac := caps[i] / total
			pairShares[pi] = append(pairShares[pi], share{tn: tn, frac: frac})
			for _, l := range tn.Links {
				loads[l] += demand * frac
			}
		}
	}

	// Feasibility: hashing ignores congestion, so traffic through
	// overloaded links is cut back by the worst overload it traverses
	// (packets are dropped at the congested queue).
	overload := make([]float64, topo.NumLinks())
	for i, l := range topo.Links {
		overload[i] = 1
		if l.Down {
			overload[i] = math.Inf(1)
			continue
		}
		if loads[i] > l.CapacityMbps && l.CapacityMbps > 0 {
			overload[i] = loads[i] / l.CapacityMbps
		}
	}

	// Blend per pair.
	type blend struct {
		frac, latency, avail, cost float64
	}
	blends := make([]blend, len(pairs))
	for pi := range pairs {
		var b blend
		delivered := 0.0
		for _, sh := range pairShares[pi] {
			worst := 1.0
			for _, l := range sh.tn.Links {
				if overload[l] > worst {
					worst = overload[l]
				}
			}
			d := sh.frac / worst
			delivered += d
			b.latency += d * sh.tn.Weight
			b.avail += d * sh.tn.Availability(topo)
			b.cost += d * sh.tn.CostPerGbps(topo)
		}
		if delivered > 0 {
			b.latency /= delivered
			b.avail /= delivered
			b.cost /= delivered
			b.frac = math.Min(1, delivered)
		}
		blends[pi] = b
	}
	pairIdx := make(map[traffic.SitePair]int, len(pairs))
	for pi, p := range pairs {
		pairIdx[p] = pi
	}

	apps := make(map[string]*AppMetrics)
	for i := range m.Flows {
		f := &m.Flows[i]
		a := appFor(apps, f)
		a.demandMbps += f.DemandMbps
		b := blends[pairIdx[f.Pair]]
		if b.frac <= 0 {
			continue
		}
		w := f.DemandMbps * b.frac
		a.SatisfiedFraction += w
		a.MeanLatencyMs += w * b.latency
		a.Availability += w * b.avail
		a.CostPerGbps += w * b.cost
	}
	finalize(apps)
	return apps, nil
}

func appFor(apps map[string]*AppMetrics, f *traffic.Flow) *AppMetrics {
	name := f.App
	if name == "" {
		name = f.Class.String()
	}
	a := apps[name]
	if a == nil {
		a = &AppMetrics{App: name, Class: f.Class}
		apps[name] = a
	}
	return a
}

// finalize converts accumulated sums into demand-weighted means.
func finalize(apps map[string]*AppMetrics) {
	for _, a := range apps {
		satisfied := a.SatisfiedFraction // still a Mbps sum here
		if satisfied > 0 {
			a.MeanLatencyMs /= satisfied
			a.Availability /= satisfied
			a.CostPerGbps /= satisfied
		} else {
			a.MeanLatencyMs = math.NaN()
			a.Availability = math.NaN()
			a.CostPerGbps = math.NaN()
		}
		if a.demandMbps > 0 {
			a.SatisfiedFraction = satisfied / a.demandMbps
		}
	}
}

// MonthlyAvailability synthesizes the month-by-month availability series of
// Figure 16: months before deployAt reflect the conventional metrics,
// months from deployAt on reflect MegaTE's, with small seeded measurement
// noise. Availabilities are clamped to [0, 1].
func MonthlyAvailability(conv, mega *AppMetrics, months, deployAt int, seed int64) []float64 {
	r := stats.NewRand(seed)
	series := make([]float64, months)
	for i := range series {
		base := conv.Availability
		if i >= deployAt {
			base = mega.Availability
		}
		// Noise shrinks the unavailability by up to ±30%.
		u := 1 - base
		u *= 0.85 + 0.3*r.Float64()
		v := 1 - u
		if v > 1 {
			v = 1
		}
		if v < 0 {
			v = 0
		}
		series[i] = v
	}
	return series
}

// LatencyReduction returns the fractional latency reduction MegaTE achieves
// for an app versus the conventional scheme (Figure 15).
func LatencyReduction(conv, mega *AppMetrics) float64 {
	if conv == nil || mega == nil || conv.MeanLatencyMs <= 0 || math.IsNaN(conv.MeanLatencyMs) || math.IsNaN(mega.MeanLatencyMs) {
		return math.NaN()
	}
	return 1 - mega.MeanLatencyMs/conv.MeanLatencyMs
}

// CostReduction returns the fractional cost reduction (Figure 17).
func CostReduction(conv, mega *AppMetrics) float64 {
	if conv == nil || mega == nil || conv.CostPerGbps <= 0 || math.IsNaN(conv.CostPerGbps) || math.IsNaN(mega.CostPerGbps) {
		return math.NaN()
	}
	return 1 - mega.CostPerGbps/conv.CostPerGbps
}

// MergeAppMetrics demand-weight-averages per-interval metrics across a
// trace (a day of TE intervals).
func MergeAppMetrics(intervals []map[string]*AppMetrics) map[string]*AppMetrics {
	out := make(map[string]*AppMetrics)
	weight := make(map[string]float64)
	for _, apps := range intervals {
		for name, a := range apps {
			o := out[name]
			if o == nil {
				o = &AppMetrics{App: a.App, Class: a.Class}
				out[name] = o
			}
			w := a.demandMbps * a.SatisfiedFraction
			if w <= 0 || math.IsNaN(a.MeanLatencyMs) {
				continue
			}
			o.MeanLatencyMs += w * a.MeanLatencyMs
			o.Availability += w * a.Availability
			o.CostPerGbps += w * a.CostPerGbps
			o.SatisfiedFraction += a.demandMbps * a.SatisfiedFraction
			o.demandMbps += a.demandMbps
			weight[name] += w
		}
	}
	for name, o := range out {
		if w := weight[name]; w > 0 {
			o.MeanLatencyMs /= w
			o.Availability /= w
			o.CostPerGbps /= w
		} else {
			o.MeanLatencyMs = math.NaN()
			o.Availability = math.NaN()
			o.CostPerGbps = math.NaN()
		}
		if o.demandMbps > 0 {
			o.SatisfiedFraction /= o.demandMbps
		}
	}
	return out
}
