// Package router simulates the WAN data plane of §5.2: routers parse the
// VXLAN header, and when the MegaTE SR flag is set they forward hop by hop
// along the SR header's site list; otherwise they fall back to conventional
// five-tuple ECMP hashing over equal-cost shortest paths — the behaviour
// whose latency instability motivates MegaTE (§2.1).
//
// A Fabric wires one router per topology site and walks a frame from its
// ingress site to its egress site, accumulating link latency and per-link
// byte counters. IP fragments without an SR header are kept on their first
// fragment's path via a per-router fragment cache, mirroring how real
// routers handle L4-less fragments.
package router

import (
	"errors"
	"fmt"
	"sync"

	"megate/internal/packet"
	"megate/internal/topology"
)

// Delivery describes one frame's trip through the WAN.
type Delivery struct {
	Egress    topology.SiteID
	LatencyMs float64
	// Path lists the sites traversed, ingress first, egress last.
	Path []topology.SiteID
	// ViaSR reports whether the MegaTE SR header drove forwarding.
	ViaSR bool
}

// Errors returned by Deliver.
var (
	ErrNoRoute   = errors.New("router: no route")
	ErrLoop      = errors.New("router: forwarding loop")
	ErrBadSRPath = errors.New("router: SR hop not adjacent")
)

type fragKey struct {
	src, dst [4]byte
	id       uint16
}

// Fabric is the set of routers over a topology.
type Fabric struct {
	topo     *topology.Topology
	ipToSite func([4]byte) (topology.SiteID, bool)

	mu sync.Mutex
	// linkBytes[l] counts bytes carried by link l.
	linkBytes []uint64
	// distCache[dst] is the latency-to-dst vector for ECMP.
	distCache map[topology.SiteID][]float64
	// fragNext remembers the ECMP next hop chosen for a fragmented
	// datagram at a given router: (router, fragment key) -> next hop.
	fragNext map[topology.SiteID]map[fragKey]topology.SiteID
	// revAdj[s] lists links arriving at s (for reverse Dijkstra).
	revAdj [][]topology.LinkID

	// tunnels, when set, switches conventional forwarding from hop-by-hop
	// ECMP to tunnel hashing: the ingress router hashes the five tuple
	// across the site pair's pre-established TE tunnels — the behaviour
	// whose latency modes motivate MegaTE (§2.1, Figure 2).
	tunnels *topology.TunnelSet
	// fragTunnel remembers the tunnel choice for a fragmented datagram.
	fragTunnel map[fragKey]*topology.Tunnel
}

// New builds the fabric. ipToSite resolves outer destination IPs to sites
// for conventional forwarding; it may be nil if only SR traffic is
// delivered.
func New(topo *topology.Topology, ipToSite func([4]byte) (topology.SiteID, bool)) *Fabric {
	f := &Fabric{
		topo:      topo,
		ipToSite:  ipToSite,
		linkBytes: make([]uint64, topo.NumLinks()),
		distCache: make(map[topology.SiteID][]float64),
		fragNext:  make(map[topology.SiteID]map[fragKey]topology.SiteID),
		revAdj:    make([][]topology.LinkID, topo.NumSites()),
	}
	for _, l := range topo.Links {
		f.revAdj[l.To] = append(f.revAdj[l.To], l.ID)
	}
	return f
}

// UseTunnelHashing makes conventional (non-SR) forwarding hash each flow
// onto one of the site pair's pre-established tunnels at the ingress
// router, as production tunnel-based TE does. The tunnel set should be
// pre-warmed if the fabric is shared across goroutines.
func (f *Fabric) UseTunnelHashing(ts *topology.TunnelSet) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tunnels = ts
	f.fragTunnel = make(map[fragKey]*topology.Tunnel)
}

// LinkBytes returns a copy of the per-link byte counters.
func (f *Fabric) LinkBytes() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, len(f.linkBytes))
	copy(out, f.linkBytes)
	return out
}

// InvalidateRoutes drops cached ECMP state after a topology change.
func (f *Fabric) InvalidateRoutes() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.distCache = make(map[topology.SiteID][]float64)
	f.fragNext = make(map[topology.SiteID]map[fragKey]topology.SiteID)
}

// Deliver walks the frame from ingress to its egress site. The frame is
// modified in place when SR forwarding advances the offset field.
func (f *Fabric) Deliver(frame []byte, ingress topology.SiteID) (Delivery, error) {
	d := Delivery{Path: []topology.SiteID{ingress}}

	var eth packet.Ethernet
	ipBytes, err := eth.DecodeFromBytes(frame)
	if err != nil || eth.EtherType != packet.EtherTypeIPv4 {
		return d, fmt.Errorf("router: not an IPv4 frame: %v", err)
	}
	var ip packet.IPv4
	l4, err := ip.DecodeHeader(ipBytes)
	if err != nil {
		return d, err
	}

	sr, srOff := f.parseSR(frame, &ip, l4)

	// Tunnel hashing: without an SR header, the ingress router picks one
	// of the pair's TE tunnels by five-tuple hash and the packet follows
	// it — the conventional behaviour MegaTE replaces.
	if sr == nil && f.tunnels != nil {
		if dst, ok := f.resolveDst(ip.Dst); ok && dst != ingress {
			if tn := f.hashTunnel(ingress, dst, &ip, l4); tn != nil {
				return f.deliverAlong(frame, tn, &d)
			}
		}
	}

	cur := ingress
	maxHops := f.topo.NumSites() + 2
	for hops := 0; ; hops++ {
		if hops > maxHops {
			return d, ErrLoop
		}
		var next topology.SiteID
		var has bool
		if sr != nil {
			d.ViaSR = true
			nh, ok := sr.NextHop()
			for ok && topology.SiteID(nh) == cur {
				sr.Advance()
				_ = packet.AdvanceInPlace(frame, srOff)
				nh, ok = sr.NextHop()
			}
			if !ok {
				d.Egress = cur
				return d, nil
			}
			next, has = topology.SiteID(nh), true
			sr.Advance()
			_ = packet.AdvanceInPlace(frame, srOff)
		} else {
			dst, ok := f.resolveDst(ip.Dst)
			if !ok {
				return d, fmt.Errorf("%w: unknown destination %v", ErrNoRoute, ip.Dst)
			}
			if cur == dst {
				d.Egress = cur
				return d, nil
			}
			next, has = f.ecmpNext(cur, dst, &ip, l4)
		}
		if !has {
			return d, ErrNoRoute
		}
		lid, ok := f.linkBetween(cur, next)
		if !ok {
			if sr != nil {
				return d, fmt.Errorf("%w: %d -> %d", ErrBadSRPath, cur, next)
			}
			return d, ErrNoRoute
		}
		link := f.topo.Links[lid]
		d.LatencyMs += link.LatencyMs
		f.mu.Lock()
		f.linkBytes[lid] += uint64(len(frame))
		f.mu.Unlock()
		cur = next
		d.Path = append(d.Path, cur)
	}
}

// hashTunnel picks the tunnel a conventional flow hashes onto, keeping
// fragments on the first fragment's tunnel.
func (f *Fabric) hashTunnel(ingress, dst topology.SiteID, ip *packet.IPv4, l4 []byte) *topology.Tunnel {
	key := fragKey{src: ip.Src, dst: ip.Dst, id: ip.ID}
	if ip.FragOffset != 0 {
		f.mu.Lock()
		tn, ok := f.fragTunnel[key]
		if ok && !ip.MoreFragments() {
			delete(f.fragTunnel, key)
		}
		f.mu.Unlock()
		if ok {
			return tn
		}
	}
	tns := f.tunnels.For(ingress, dst)
	if len(tns) == 0 {
		return nil
	}
	tuple := packet.FiveTuple{SrcIP: ip.Src, DstIP: ip.Dst, Proto: ip.Protocol}
	if ip.FragOffset == 0 {
		var udp packet.UDP
		if _, err := udp.DecodeHeader(l4); err == nil {
			tuple.SrcPort, tuple.DstPort = udp.SrcPort, udp.DstPort
		}
	}
	tn := tns[tuple.Hash()%uint64(len(tns))]
	if ip.IsFragment() && ip.FragOffset == 0 {
		f.mu.Lock()
		f.fragTunnel[key] = tn
		f.mu.Unlock()
	}
	return tn
}

// deliverAlong walks the frame hop by hop down a tunnel.
func (f *Fabric) deliverAlong(frame []byte, tn *topology.Tunnel, d *Delivery) (Delivery, error) {
	cur := tn.Sites[0]
	if len(d.Path) > 0 {
		cur = d.Path[0]
	}
	for _, lid := range tn.Links {
		link := f.topo.Links[lid]
		if link.Down || link.From != cur {
			return *d, ErrNoRoute
		}
		d.LatencyMs += link.LatencyMs
		f.mu.Lock()
		f.linkBytes[lid] += uint64(len(frame))
		f.mu.Unlock()
		cur = link.To
		d.Path = append(d.Path, cur)
	}
	d.Egress = cur
	return *d, nil
}

// parseSR checks the VXLAN SR flag and returns the parsed SR header plus
// its byte offset in the frame, or nil for conventional packets. Fragments
// past the first have no VXLAN header and return nil.
func (f *Fabric) parseSR(frame []byte, ip *packet.IPv4, l4 []byte) (*packet.SRHeader, int) {
	if ip.Protocol != packet.IPProtoUDP || ip.FragOffset != 0 {
		return nil, -1
	}
	var udp packet.UDP
	rest, err := udp.DecodeHeader(l4)
	if err != nil || udp.DstPort != packet.VXLANPort {
		return nil, -1
	}
	var vx packet.VXLAN
	rest, err = vx.DecodeFromBytes(rest)
	if err != nil || !vx.SRPresent {
		return nil, -1
	}
	off := len(frame) - len(rest)
	sr := &packet.SRHeader{}
	if _, err := sr.DecodeFromBytes(rest); err != nil {
		return nil, -1
	}
	return sr, off
}

func (f *Fabric) resolveDst(ip [4]byte) (topology.SiteID, bool) {
	if f.ipToSite == nil {
		return 0, false
	}
	return f.ipToSite(ip)
}

// ecmpNext picks the next hop among equal-cost shortest-path neighbours by
// hashing the five tuple — deterministic per connection, spread across
// connections (§2.1). Fragments reuse the first fragment's choice via the
// fragment cache.
func (f *Fabric) ecmpNext(cur, dst topology.SiteID, ip *packet.IPv4, l4 []byte) (topology.SiteID, bool) {
	key := fragKey{src: ip.Src, dst: ip.Dst, id: ip.ID}
	if ip.FragOffset != 0 {
		f.mu.Lock()
		next, ok := f.fragNext[cur][key]
		f.mu.Unlock()
		if ok {
			return next, true
		}
		// Fall through: hash without ports (they are unavailable).
	}

	cands := f.equalCostNeighbors(cur, dst)
	if len(cands) == 0 {
		return 0, false
	}
	tuple := packet.FiveTuple{SrcIP: ip.Src, DstIP: ip.Dst, Proto: ip.Protocol}
	if ip.FragOffset == 0 {
		var udp packet.UDP
		if _, err := udp.DecodeHeader(l4); err == nil {
			tuple.SrcPort, tuple.DstPort = udp.SrcPort, udp.DstPort
		}
	}
	// Salt the hash with the router site so consecutive routers don't all
	// make correlated choices.
	h := tuple.Hash() ^ uint64(cur)*0x9e3779b97f4a7c15
	next := cands[h%uint64(len(cands))]

	if ip.IsFragment() {
		f.mu.Lock()
		if f.fragNext[cur] == nil {
			f.fragNext[cur] = make(map[fragKey]topology.SiteID)
		}
		f.fragNext[cur][key] = next
		if !ip.MoreFragments() {
			delete(f.fragNext[cur], key)
		}
		f.mu.Unlock()
	}
	return next, true
}

// equalCostNeighbors lists neighbours of cur lying on a latency-shortest
// path toward dst.
func (f *Fabric) equalCostNeighbors(cur, dst topology.SiteID) []topology.SiteID {
	dist := f.distTo(dst)
	var cands []topology.SiteID
	for _, lid := range f.topo.OutLinks(cur) {
		l := f.topo.Links[lid]
		if l.Down {
			continue
		}
		if l.LatencyMs+dist[l.To] <= dist[cur]+1e-9 {
			cands = append(cands, l.To)
		}
	}
	return cands
}

// distTo returns (caching) the latency distance of every site to dst,
// computed by Dijkstra over reversed links.
func (f *Fabric) distTo(dst topology.SiteID) []float64 {
	f.mu.Lock()
	if d, ok := f.distCache[dst]; ok {
		f.mu.Unlock()
		return d
	}
	f.mu.Unlock()

	n := f.topo.NumSites()
	const inf = 1e18
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[dst] = 0
	for {
		best, bestD := -1, inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		if best == -1 {
			break
		}
		done[best] = true
		for _, lid := range f.revAdj[best] {
			l := f.topo.Links[lid]
			if l.Down {
				continue
			}
			if nd := dist[best] + l.LatencyMs; nd < dist[l.From] {
				dist[l.From] = nd
			}
		}
	}

	f.mu.Lock()
	f.distCache[dst] = dist
	f.mu.Unlock()
	return dist
}

func (f *Fabric) linkBetween(a, b topology.SiteID) (topology.LinkID, bool) {
	for _, lid := range f.topo.OutLinks(a) {
		l := f.topo.Links[lid]
		if l.To == b && !l.Down {
			return lid, true
		}
	}
	return 0, false
}
