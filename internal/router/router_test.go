package router

import (
	"testing"

	"megate/internal/hoststack"
	"megate/internal/packet"
	"megate/internal/topology"
)

// testNet: 4 sites in a square plus a diagonal, with an IP plan where
// 10.S.0.0/16 belongs to site S.
func testNet(t *testing.T) (*topology.Topology, *Fabric) {
	t.Helper()
	topo := topology.New("square")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 100, 0)
	c := topo.AddSite("c", 100, 100)
	d := topo.AddSite("d", 0, 100)
	topo.AddBidiLink(a, b, 1000, 1, 0.999, 1)
	topo.AddBidiLink(b, c, 1000, 1, 0.999, 1)
	topo.AddBidiLink(c, d, 1000, 1, 0.999, 1)
	topo.AddBidiLink(d, a, 1000, 1, 0.999, 1)
	topo.AddBidiLink(a, c, 1000, 2, 0.999, 1) // diagonal equal-cost with 2-hop paths
	f := New(topo, func(ip [4]byte) (topology.SiteID, bool) {
		if ip[0] != 10 || int(ip[1]) >= topo.NumSites() {
			return 0, false
		}
		return topology.SiteID(ip[1]), true
	})
	return topo, f
}

func mkFrame(t *testing.T, srcSite, dstSite uint8, srcPort uint16, sr *packet.SRHeader) []byte {
	t.Helper()
	e := &packet.Encap{
		Eth: packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.IPProtoUDP, ID: 77,
			Src: [4]byte{10, srcSite, 0, 1}, Dst: [4]byte{10, dstSite, 0, 1},
		},
		UDP:   packet.UDP{SrcPort: srcPort, DstPort: packet.VXLANPort},
		VXLAN: packet.VXLAN{VNI: 1},
		SR:    sr,
		Inner: []byte("payload"),
	}
	data, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSRForwardingFollowsExactPath(t *testing.T) {
	_, f := testNet(t)
	// Path a -> b -> c (the long way around the diagonal).
	sr := &packet.SRHeader{Hops: []uint32{0, 1, 2}}
	frame := mkFrame(t, 0, 2, 1234, sr)
	d, err := f.Deliver(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ViaSR {
		t.Error("should forward via SR")
	}
	if d.Egress != 2 {
		t.Errorf("egress = %d, want 2", d.Egress)
	}
	if len(d.Path) != 3 || d.Path[1] != 1 {
		t.Errorf("path = %v, want [0 1 2]", d.Path)
	}
	if d.LatencyMs != 2 {
		t.Errorf("latency = %v, want 2", d.LatencyMs)
	}
}

func TestSRForwardingDiagonal(t *testing.T) {
	_, f := testNet(t)
	sr := &packet.SRHeader{Hops: []uint32{0, 2}} // direct diagonal
	frame := mkFrame(t, 0, 2, 1234, sr)
	d, err := f.Deliver(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.LatencyMs != 2 || len(d.Path) != 2 {
		t.Errorf("delivery = %+v", d)
	}
}

func TestSRBadPathRejected(t *testing.T) {
	_, f := testNet(t)
	sr := &packet.SRHeader{Hops: []uint32{0, 3, 1}} // d and b are adjacent... 0->3 ok, 3->1 not adjacent
	frame := mkFrame(t, 0, 1, 1234, sr)
	_, err := f.Deliver(frame, 0)
	if err == nil {
		t.Fatal("want error for non-adjacent SR hop")
	}
}

func TestECMPDeliversToDestination(t *testing.T) {
	_, f := testNet(t)
	frame := mkFrame(t, 0, 2, 5555, nil)
	d, err := f.Deliver(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.ViaSR {
		t.Error("no SR header, should use ECMP")
	}
	if d.Egress != 2 {
		t.Errorf("egress = %d, want 2", d.Egress)
	}
	if d.LatencyMs != 2 {
		t.Errorf("latency = %v, want 2 (all paths equal cost)", d.LatencyMs)
	}
}

func TestECMPDeterministicPerTuple(t *testing.T) {
	_, f := testNet(t)
	frame1 := mkFrame(t, 0, 2, 5555, nil)
	d1, err := f.Deliver(frame1, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame2 := mkFrame(t, 0, 2, 5555, nil)
	d2, err := f.Deliver(frame2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Path) != len(d2.Path) {
		t.Fatal("same tuple took different paths")
	}
	for i := range d1.Path {
		if d1.Path[i] != d2.Path[i] {
			t.Fatal("same tuple took different paths")
		}
	}
}

func TestECMPSpreadsAcrossPorts(t *testing.T) {
	// The §2.1 pathology: different connections of one instance land on
	// different paths.
	_, f := testNet(t)
	paths := map[int]int{}
	for port := uint16(1000); port < 1100; port++ {
		frame := mkFrame(t, 0, 2, port, nil)
		d, err := f.Deliver(frame, 0)
		if err != nil {
			t.Fatal(err)
		}
		paths[len(d.Path)]++
	}
	// Both the 2-hop diagonal (len 2) and 3-hop perimeter (len 3) paths
	// should be used.
	if len(paths) < 2 {
		t.Errorf("ECMP used only path lengths %v; expected spread", paths)
	}
}

func TestECMPAvoidsFailedLink(t *testing.T) {
	topo, f := testNet(t)
	topo.FailLink(0) // a<->b down
	f.InvalidateRoutes()
	for port := uint16(1); port < 20; port++ {
		frame := mkFrame(t, 0, 1, port, nil)
		d, err := f.Deliver(frame, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(d.Path); i++ {
			if (d.Path[i] == 0 && d.Path[i+1] == 1) || (d.Path[i] == 1 && d.Path[i+1] == 0) {
				t.Fatal("path used failed link")
			}
		}
		if d.Egress != 1 {
			t.Errorf("egress = %d", d.Egress)
		}
	}
}

func TestUnknownDestination(t *testing.T) {
	_, f := testNet(t)
	frame := mkFrame(t, 0, 99, 1, nil)
	if _, err := f.Deliver(frame, 0); err == nil {
		t.Fatal("want no-route error")
	}
}

func TestLinkBytesAccumulate(t *testing.T) {
	_, f := testNet(t)
	frame := mkFrame(t, 0, 2, 1, nil)
	if _, err := f.Deliver(frame, 0); err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, b := range f.LinkBytes() {
		total += b
	}
	if total == 0 {
		t.Error("no link bytes recorded")
	}
}

func TestFragmentsFollowFirstFragment(t *testing.T) {
	// Build a large conventional packet, fragment it, and check every
	// fragment takes the same path as the first.
	_, f := testNet(t)
	e := &packet.Encap{
		Eth: packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.IPProtoUDP, ID: 99,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 2, 0, 1},
		},
		UDP:   packet.UDP{SrcPort: 7777, DstPort: packet.VXLANPort},
		VXLAN: packet.VXLAN{VNI: 1},
		Inner: make([]byte, 4000),
	}
	whole, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	frags, err := packet.FragmentFrame(whole, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("fragments = %d", len(frags))
	}
	var first Delivery
	for i, frag := range frags {
		d, err := f.Deliver(frag, 0)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if i == 0 {
			first = d
			continue
		}
		if len(d.Path) != len(first.Path) {
			t.Fatalf("fragment %d path %v != first %v", i, d.Path, first.Path)
		}
		for j := range d.Path {
			if d.Path[j] != first.Path[j] {
				t.Fatalf("fragment %d diverged: %v vs %v", i, d.Path, first.Path)
			}
		}
	}
}

func TestEndToEndHostToFabric(t *testing.T) {
	// Host stack inserts SR; fabric obeys it.
	topo, f := testNet(t)
	_ = topo
	siteOf := func(ip [4]byte) (uint32, bool) {
		if ip[0] != 10 {
			return 0, false
		}
		return uint32(ip[1]), true
	}
	h := hoststack.NewHost("h", 1500, siteOf)
	defer h.Close()
	tuple := packet.FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 2, 0, 1},
		Proto: packet.IPProtoUDP, SrcPort: 1000, DstPort: 2000,
	}
	h.RunProcess(1, "ins-x")
	h.OpenConnection(1, tuple)
	h.InstallPath("ins-x", 2, []uint32{0, 3, 2}) // via d, not the diagonal

	frames, err := h.Send(tuple, 5, [4]byte{10, 0, 0, 1}, [4]byte{10, 2, 0, 1}, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Deliver(frames[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ViaSR || d.Egress != 2 {
		t.Fatalf("delivery = %+v", d)
	}
	if len(d.Path) != 3 || d.Path[1] != 3 {
		t.Errorf("path = %v, want [0 3 2]", d.Path)
	}
}

func TestDeliverGarbage(t *testing.T) {
	_, f := testNet(t)
	if _, err := f.Deliver([]byte{1, 2, 3}, 0); err == nil {
		t.Fatal("want parse error")
	}
}

func TestTunnelHashingSpreadsAndPins(t *testing.T) {
	// An asymmetric square: tunnels between 0 and 2 have distinct
	// latencies, so hashing produces distinct latency modes.
	topo := topology.New("asym")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 100, 0)
	c := topo.AddSite("c", 100, 100)
	dd := topo.AddSite("d", 0, 100)
	topo.AddBidiLink(a, b, 1000, 1, 0.999, 1)
	topo.AddBidiLink(b, c, 1000, 1, 0.999, 1)
	topo.AddBidiLink(c, dd, 1000, 5, 0.999, 1)
	topo.AddBidiLink(dd, a, 1000, 5, 0.999, 1)
	topo.AddBidiLink(a, c, 1000, 3, 0.999, 1)
	f := New(topo, func(ip [4]byte) (topology.SiteID, bool) {
		if ip[0] != 10 || int(ip[1]) >= topo.NumSites() {
			return 0, false
		}
		return topology.SiteID(ip[1]), true
	})
	f.UseTunnelHashing(topology.NewTunnelSet(topo, 4))
	// Many connections: they should spread across tunnels of different
	// lengths, each connection deterministic.
	modes := map[float64]int{}
	for port := uint16(1); port <= 60; port++ {
		frame := mkFrame(t, 0, 2, port, nil)
		d, err := f.Deliver(frame, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.Egress != 2 {
			t.Fatalf("egress %d", d.Egress)
		}
		modes[d.LatencyMs]++
		// Determinism per tuple.
		frame2 := mkFrame(t, 0, 2, port, nil)
		d2, err := f.Deliver(frame2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d2.LatencyMs != d.LatencyMs {
			t.Fatal("same tuple hashed differently")
		}
	}
	if len(modes) < 2 {
		t.Errorf("tunnel hashing produced a single latency mode: %v", modes)
	}
	// SR packets bypass tunnel hashing.
	sr := &packet.SRHeader{Hops: []uint32{0, 1, 2}}
	frame := mkFrame(t, 0, 2, 9, sr)
	d, err := f.Deliver(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ViaSR || len(d.Path) != 3 {
		t.Errorf("SR packet mishandled under tunnel hashing: %+v", d)
	}
}

func TestTunnelHashingFragmentsStayTogether(t *testing.T) {
	topo, f := testNet(t)
	f.UseTunnelHashing(topology.NewTunnelSet(topo, 4))
	e := &packet.Encap{
		Eth: packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.IPProtoUDP, ID: 321,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 2, 0, 1},
		},
		UDP:   packet.UDP{SrcPort: 4444, DstPort: packet.VXLANPort},
		VXLAN: packet.VXLAN{VNI: 1},
		Inner: make([]byte, 4000),
	}
	whole, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	frags, err := packet.FragmentFrame(whole, 1500)
	if err != nil {
		t.Fatal(err)
	}
	var lat float64
	for i, frag := range frags {
		d, err := f.Deliver(frag, 0)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if i == 0 {
			lat = d.LatencyMs
		} else if d.LatencyMs != lat {
			t.Fatalf("fragment %d took a different tunnel", i)
		}
	}
}

func BenchmarkDeliverSR(b *testing.B) {
	topo := topology.Build("Deltacom*")
	f := New(topo, nil)
	ts := topology.NewTunnelSet(topo, 1)
	tns := ts.For(0, topology.SiteID(topo.NumSites()-1))
	hops := make([]uint32, len(tns[0].Sites))
	for i, s := range tns[0].Sites {
		hops[i] = uint32(s)
	}
	e := &packet.Encap{
		Eth: packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{TTL: 64, Protocol: packet.IPProtoUDP,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, byte(topo.NumSites() - 1), 0, 1}},
		UDP:   packet.UDP{SrcPort: 1, DstPort: packet.VXLANPort},
		VXLAN: packet.VXLAN{VNI: 1},
		SR:    &packet.SRHeader{Hops: hops},
		Inner: make([]byte, 200),
	}
	frame, err := e.Serialize()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := append([]byte(nil), frame...) // Deliver advances the offset in place
		if _, err := f.Deliver(fr, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Robustness: the fabric must reject garbage without panicking.
func TestDeliverNeverPanics(t *testing.T) {
	topo, f := testNet(t)
	f.UseTunnelHashing(topology.NewTunnelSet(topo, 4))
	valid := mkFrame(t, 0, 2, 777, &packet.SRHeader{Hops: []uint32{0, 1, 2}})
	seed := int64(3)
	rnd := func() int { seed = seed*6364136223846793005 + 1; return int(uint64(seed) >> 33) }
	for trial := 0; trial < 5000; trial++ {
		var data []byte
		if trial%2 == 0 {
			data = make([]byte, rnd()%120)
			for i := range data {
				data[i] = byte(rnd())
			}
		} else {
			data = append([]byte(nil), valid...)
			for f := 0; f < 1+rnd()%4; f++ {
				data[rnd()%len(data)] ^= byte(1 << (rnd() % 8))
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on frame %x: %v", data, rec)
				}
			}()
			f.Deliver(data, 0)
		}()
	}
}
