package ssp

import (
	"encoding/binary"
	"testing"
)

// decodeSSPInput maps fuzz bytes onto a small subset-sum instance: capacity
// from the first two bytes (multiples of 1/8), epsilon' from the third, and
// up to 12 values (multiples of 1/4) from the rest. Small n keeps the
// brute-force reference affordable; quarter-unit values make the exact-DP
// comparison at unit 0.25 meaningful.
func decodeSSPInput(data []byte) (values []float64, capacity, eps float64, ok bool) {
	if len(data) < 4 {
		return nil, 0, 0, false
	}
	capacity = float64(binary.LittleEndian.Uint16(data[0:2])) / 8
	eps = 0.02 + float64(data[2])/400 // 0.02 .. 0.6575
	for _, b := range data[3:] {
		if len(values) == 12 {
			break
		}
		values = append(values, float64(b)/4)
	}
	return values, capacity, eps, true
}

// bruteForceOptimum enumerates every subset (n <= 12) and returns the
// largest total that fits the capacity.
func bruteForceOptimum(values []float64, capacity float64) float64 {
	best := 0.0
	for mask := 0; mask < 1<<len(values); mask++ {
		sum := 0.0
		for i, v := range values {
			if mask&(1<<i) != 0 && v > 0 {
				sum += v
			}
		}
		if sum <= capacity && sum > best {
			best = sum
		}
	}
	return best
}

// checkSolution verifies the invariants every subset-sum solver must hold:
// the selection never exceeds capacity, Total matches the selected values,
// and Total never beats the true optimum.
func checkSolution(t *testing.T, name string, values []float64, capacity float64, sol Solution, opt float64) {
	t.Helper()
	const tol = 1e-9
	if len(sol.Selected) != len(values) {
		t.Fatalf("%s: Selected has %d entries for %d values", name, len(sol.Selected), len(values))
	}
	sum := 0.0
	for i, sel := range sol.Selected {
		if sel {
			sum += values[i]
		}
	}
	if diff := sol.Total - sum; diff > tol || diff < -tol {
		t.Fatalf("%s: Total %v != selected sum %v", name, sol.Total, sum)
	}
	if sol.Total > capacity+tol {
		t.Fatalf("%s: Total %v exceeds capacity %v", name, sol.Total, capacity)
	}
	if sol.Total > opt+tol {
		t.Fatalf("%s: Total %v beats the optimum %v — selection must be infeasible", name, sol.Total, opt)
	}
}

// FuzzFastSSP drives FastSSP (and the solvers it composes) with arbitrary
// small instances against a brute-force reference: never over capacity,
// never above the optimum, ExactDP exact on quarter-unit inputs, and the
// greedy residual property behind the paper's β bound.
func FuzzFastSSP(f *testing.F) {
	f.Add([]byte("\x40\x00\x28\x10\x20\x30\x40"))
	f.Add([]byte("\x00\x00\x00\x01"))
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("\x08\x00\x05\x02\x02\x02\x02\x02\x02\x02\x02\x02\x02\x02\x02"))
	f.Add([]byte("\x80\x02\xc8\x7f\x40\x21\x63\x0e\x58"))
	f.Fuzz(func(t *testing.T, data []byte) {
		values, capacity, eps, ok := decodeSSPInput(data)
		if !ok {
			t.Skip()
		}
		opt := bruteForceOptimum(values, capacity)

		solver := FastSSP{EpsPrime: eps}
		fast := solver.Solve(values, capacity)
		checkSolution(t, "FastSSP", values, capacity, fast, opt)

		// β-bound structure (Appendix A.2): after the greedy residual pass,
		// any unselected demand is larger than the leftover budget.
		minUnsel := -1.0
		for i, v := range values {
			if v > 0 && !fast.Selected[i] && (minUnsel < 0 || v < minUnsel) {
				minUnsel = v
			}
		}
		if minUnsel >= 0 && capacity-fast.Total > minUnsel+1e-9 {
			t.Fatalf("FastSSP: leftover budget %v exceeds smallest unselected demand %v",
				capacity-fast.Total, minUnsel)
		}

		greedy := GreedyDescending(values, capacity)
		checkSolution(t, "GreedyDescending", values, capacity, greedy, opt)

		// Inputs are exact multiples of 0.25, so the DP at that unit must
		// reproduce the brute-force optimum exactly.
		dp := ExactDP(values, capacity, 0.25)
		checkSolution(t, "ExactDP", values, capacity, dp, opt)
		if diff := opt - dp.Total; diff > 1e-6 {
			t.Fatalf("ExactDP: Total %v below the optimum %v on unit-multiple input", dp.Total, opt)
		}
	})
}
