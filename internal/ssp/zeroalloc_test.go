package ssp

import (
	"testing"
)

// zeroAllocInput builds a demand vector with the mixed shape the stage-two
// chain sees: a heavy tail above the clustering threshold plus a swarm of
// small flows below it, against a budget that forces the full
// cluster/DP/greedy pipeline (not the everything-fits fast path).
func zeroAllocInput(n int) ([]float64, float64) {
	values := make([]float64, n)
	for i := range values {
		// Deterministic pseudo-demands in (0, 120): every 17th flow is an
		// elephant, the rest are mice.
		if i%17 == 0 {
			values[i] = 80 + float64(i%7)*5
		} else {
			values[i] = 0.5 + float64(i%13)*0.7
		}
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	return values, total * 0.6
}

// TestSolveIntoZeroAlloc pins the Into entry points at zero steady-state
// allocations with a warm Scratch — the contract the stage-two worker pool
// in package core builds its 0 allocs/op gate on.
func TestSolveIntoZeroAlloc(t *testing.T) {
	values, budget := zeroAllocInput(512)
	sc := &Scratch{}
	sel := make([]bool, len(values))
	f := &FastSSP{}
	// Warm every buffer, then measure.
	f.SolveInto(values, budget, sc, sel)
	if n := testing.AllocsPerRun(50, func() {
		f.SolveInto(values, budget, sc, sel)
	}); n != 0 {
		t.Errorf("FastSSP.SolveInto: %v allocs/op with warm scratch, want 0", n)
	}
	greedyInto(values, budget, sc, sel)
	if n := testing.AllocsPerRun(50, func() {
		for i := range sel {
			sel[i] = false
		}
		greedyInto(values, budget, sc, sel)
	}); n != 0 {
		t.Errorf("greedyInto: %v allocs/op with warm scratch, want 0", n)
	}
}

// TestSolveIntoMatchesSolve pins the Into path to the plain entry point:
// identical selections and totals on a spread of shapes, including the
// fast paths.
func TestSolveIntoMatchesSolve(t *testing.T) {
	cases := []struct {
		n      int
		budget func(total float64) float64
	}{
		{1, func(t float64) float64 { return t * 0.5 }},
		{7, func(t float64) float64 { return t * 2 }},  // everything fits
		{64, func(t float64) float64 { return 0.001 }}, // nothing fits
		{64, func(t float64) float64 { return t * 0.4 }},
		{513, func(t float64) float64 { return t * 0.75 }},
	}
	for _, tc := range cases {
		values, total := zeroAllocInput(tc.n)
		budget := tc.budget(total)
		want := (&FastSSP{}).Solve(values, budget)
		sc := &Scratch{}
		sel := make([]bool, len(values))
		got := (&FastSSP{}).SolveInto(values, budget, sc, sel)
		if got != want.Total {
			t.Errorf("n=%d: SolveInto total %v, Solve total %v", tc.n, got, want.Total)
		}
		for i := range sel {
			if sel[i] != want.Selected[i] {
				t.Errorf("n=%d: selection differs at %d", tc.n, i)
				break
			}
		}
	}
}

func BenchmarkFastSSPSolveInto(b *testing.B) {
	values, budget := zeroAllocInput(512)
	sc := &Scratch{}
	sel := make([]bool, len(values))
	f := &FastSSP{}
	f.SolveInto(values, budget, sc, sel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveInto(values, budget, sc, sel)
	}
}
