package ssp

import (
	"math"
	"testing"
	"testing/quick"

	"megate/internal/stats"
)

func checkFeasible(t *testing.T, values []float64, sol Solution, capacity float64) {
	t.Helper()
	sum := 0.0
	for i, sel := range sol.Selected {
		if sel {
			sum += values[i]
		}
	}
	if math.Abs(sum-sol.Total) > 1e-6*(1+math.Abs(sum)) {
		t.Fatalf("Total %v != selected sum %v", sol.Total, sum)
	}
	if sum > capacity+1e-9*(1+capacity) {
		t.Fatalf("selected sum %v exceeds capacity %v", sum, capacity)
	}
}

func TestGreedyDescendingBasic(t *testing.T) {
	values := []float64{5, 4, 3, 2, 1}
	sol := GreedyDescending(values, 10)
	checkFeasible(t, values, sol, 10)
	if sol.Total != 10 { // 5+4+... 5+4=9, +1=10
		t.Errorf("total = %v, want 10", sol.Total)
	}
}

func TestGreedyDescendingSkipsNonPositive(t *testing.T) {
	values := []float64{-1, 0, 3}
	sol := GreedyDescending(values, 10)
	if sol.Selected[0] || sol.Selected[1] || !sol.Selected[2] {
		t.Errorf("selection = %v", sol.Selected)
	}
}

func TestGreedyResidualSmallerThanMinUnselected(t *testing.T) {
	// The β-bound property: after greedy, gap < min unselected value.
	r := stats.NewRand(3)
	for trial := 0; trial < 50; trial++ {
		values := make([]float64, 40)
		for i := range values {
			values[i] = 1 + r.Float64()*20
		}
		capacity := 50 + r.Float64()*100
		sol := GreedyDescending(values, capacity)
		checkFeasible(t, values, sol, capacity)
		gap := capacity - sol.Total
		for i, sel := range sol.Selected {
			if !sel && values[i] <= gap {
				t.Fatalf("unselected value %v fits in gap %v", values[i], gap)
			}
		}
	}
}

func TestExactDPSmall(t *testing.T) {
	values := []float64{3, 34, 4, 12, 5, 2}
	sol := ExactDP(values, 9, 1)
	checkFeasible(t, values, sol, 9)
	if sol.Total != 9 { // 3+4+2 or 4+5
		t.Errorf("total = %v, want 9", sol.Total)
	}
}

func TestExactDPUnreachableCapacity(t *testing.T) {
	values := []float64{10, 20}
	sol := ExactDP(values, 5, 1)
	if sol.Total != 0 {
		t.Errorf("total = %v, want 0", sol.Total)
	}
}

func TestExactDPEdgeCases(t *testing.T) {
	if sol := ExactDP(nil, 10, 1); sol.Total != 0 {
		t.Error("nil values should give 0")
	}
	if sol := ExactDP([]float64{1}, 0, 1); sol.Total != 0 {
		t.Error("zero capacity should give 0")
	}
	if sol := ExactDP([]float64{1}, 5, 0); sol.Total != 0 {
		t.Error("zero unit should give 0")
	}
	sol := ExactDP([]float64{-5, 3}, 10, 1)
	if sol.Selected[0] {
		t.Error("negative value selected")
	}
}

func TestExactDPFractionalUnitsStayFeasible(t *testing.T) {
	values := []float64{2.5, 2.5, 2.5}
	sol := ExactDP(values, 5.4, 1)
	checkFeasible(t, values, sol, 5.4)
}

// exactOptimum brute-forces the subset-sum optimum for small inputs.
func exactOptimum(values []float64, capacity float64) float64 {
	best := 0.0
	n := len(values)
	for mask := 0; mask < 1<<n; mask++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sum += values[i]
			}
		}
		if sum <= capacity && sum > best {
			best = sum
		}
	}
	return best
}

func TestExactDPMatchesBruteForceOnIntegers(t *testing.T) {
	r := stats.NewRand(5)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(10)
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(1 + r.Intn(30))
		}
		capacity := float64(10 + r.Intn(80))
		sol := ExactDP(values, capacity, 1)
		checkFeasible(t, values, sol, capacity)
		if want := exactOptimum(values, capacity); sol.Total != want {
			t.Fatalf("trial %d: DP total %v, optimum %v (values=%v cap=%v)",
				trial, sol.Total, want, values, capacity)
		}
	}
}

func TestFastSSPAllFitsFastPath(t *testing.T) {
	values := []float64{1, 2, 3}
	f := &FastSSP{}
	sol := f.Solve(values, 100)
	if sol.Total != 6 || !sol.Selected[0] || !sol.Selected[1] || !sol.Selected[2] {
		t.Errorf("fast path failed: %+v", sol)
	}
}

func TestFastSSPZeroCapacity(t *testing.T) {
	f := &FastSSP{}
	sol := f.Solve([]float64{1, 2}, 0)
	if sol.Total != 0 {
		t.Errorf("total = %v, want 0", sol.Total)
	}
}

func TestFastSSPFeasibleAndNearOptimal(t *testing.T) {
	r := stats.NewRand(7)
	f := &FastSSP{EpsPrime: 0.1}
	for trial := 0; trial < 40; trial++ {
		n := 50 + r.Intn(200)
		values := make([]float64, n)
		total := 0.0
		for i := range values {
			values[i] = 0.5 + r.Float64()*10
			total += values[i]
		}
		capacity := total * (0.3 + 0.5*r.Float64())
		sol := f.Solve(values, capacity)
		checkFeasible(t, values, sol, capacity)
		// With many small demands the greedy residual pass should reach
		// within a few percent of capacity.
		if sol.Total < 0.9*capacity {
			t.Errorf("trial %d: total %v < 90%% of capacity %v", trial, sol.Total, capacity)
		}
		// β bound sanity.
		beta := ErrorBound(values, sol, capacity)
		if got := (capacity - sol.Total) / capacity; got > beta+1e-9 {
			t.Errorf("trial %d: shortfall %v exceeds β bound %v", trial, got, beta)
		}
	}
}

func TestFastSSPLargeDemandsSingletonClusters(t *testing.T) {
	// Values above the clustering threshold must form their own clusters so
	// the DP can choose among them individually.
	values := []float64{50, 50, 50, 1, 1, 1}
	f := &FastSSP{EpsPrime: 0.3}
	sol := f.Solve(values, 100)
	checkFeasible(t, values, sol, 100)
	if sol.Total < 95 {
		t.Errorf("total = %v, want >= 95", sol.Total)
	}
}

func TestFastSSPMatchesDPOnModerateInstances(t *testing.T) {
	r := stats.NewRand(9)
	f := &FastSSP{EpsPrime: 0.05}
	for trial := 0; trial < 20; trial++ {
		n := 30 + r.Intn(50)
		values := make([]float64, n)
		total := 0.0
		for i := range values {
			values[i] = float64(1 + r.Intn(20))
			total += values[i]
		}
		capacity := math.Floor(total * 0.6)
		exact := ExactDP(values, capacity, 1)
		approx := f.Solve(values, capacity)
		checkFeasible(t, values, approx, capacity)
		if approx.Total < 0.95*exact.Total {
			t.Errorf("trial %d: FastSSP %v < 95%% of DP %v", trial, approx.Total, exact.Total)
		}
	}
}

func TestClusterValues(t *testing.T) {
	clusters := clusterValues([]float64{1, 1, 1, 10, 1, 1}, 3, nil)
	// 1+1+1 = 3 -> cluster; 10 -> singleton; 1+1 = trailing partial.
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
	if clusters[0].total != 3 || len(clusters[0].members) != 3 {
		t.Errorf("first cluster = %+v", clusters[0])
	}
	if clusters[1].total != 10 || len(clusters[1].members) != 1 {
		t.Errorf("second cluster = %+v", clusters[1])
	}
	if clusters[2].total != 2 {
		t.Errorf("trailing cluster = %+v", clusters[2])
	}
	// Every positive index appears exactly once.
	seen := map[int]bool{}
	for _, c := range clusters {
		for _, i := range c.members {
			if seen[i] {
				t.Fatalf("index %d in two clusters", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 6 {
		t.Errorf("covered %d indices, want 6", len(seen))
	}
}

func TestClusterValuesSkipsNonPositive(t *testing.T) {
	clusters := clusterValues([]float64{0, -2, 5}, 3, nil)
	if len(clusters) != 1 || clusters[0].total != 5 {
		t.Fatalf("clusters = %+v", clusters)
	}
}

func TestErrorBound(t *testing.T) {
	values := []float64{4, 6}
	sol := Solution{Selected: []bool{true, false}, Total: 4}
	if got := ErrorBound(values, sol, 10); got != 0.6 {
		t.Errorf("β = %v, want 0.6", got)
	}
	all := Solution{Selected: []bool{true, true}, Total: 10}
	if got := ErrorBound(values, all, 10); got != 0 {
		t.Errorf("β = %v, want 0 when everything selected", got)
	}
}

// Property: FastSSP is always feasible and never worse than half of greedy
// (it embeds a greedy pass).
func TestFastSSPProperty(t *testing.T) {
	f := func(raw []uint16, capRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v%500) / 7
		}
		capacity := float64(capRaw%2000) + 1
		fs := &FastSSP{EpsPrime: 0.15}
		sol := fs.Solve(values, capacity)
		sum := 0.0
		for i, sel := range sol.Selected {
			if sel {
				sum += values[i]
			}
		}
		if sum > capacity+1e-6 {
			return false
		}
		g := GreedyDescending(values, capacity)
		return sol.Total >= 0.5*g.Total-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Scratch-backed entry points must return exactly what the allocating ones
// do, including across repeated reuse of the same Scratch with different
// problem sizes (stale buffer contents must not leak between calls).
func TestScratchEquivalence(t *testing.T) {
	r := stats.NewRand(13)
	sc := &Scratch{}
	f := &FastSSP{EpsPrime: 0.1}
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(120)
		values := make([]float64, n)
		total := 0.0
		for i := range values {
			values[i] = float64(r.Intn(25)) - 2 // mix in non-positives
			total += math.Max(values[i], 0)
		}
		capacity := total * (0.2 + 0.7*r.Float64())

		plain := GreedyDescending(values, capacity)
		withSc := GreedyDescendingScratch(values, capacity, sc)
		assertSameSolution(t, "greedy", trial, plain, withSc)

		plain = ExactDP(values, capacity, 1)
		withSc = ExactDPScratch(values, capacity, 1, sc)
		assertSameSolution(t, "dp", trial, plain, withSc)

		plain = f.Solve(values, capacity)
		withSc = f.SolveScratch(values, capacity, sc)
		assertSameSolution(t, "fastssp", trial, plain, withSc)
	}
}

func assertSameSolution(t *testing.T, name string, trial int, a, b Solution) {
	t.Helper()
	if a.Total != b.Total {
		t.Fatalf("%s trial %d: total %v != %v", name, trial, a.Total, b.Total)
	}
	if len(a.Selected) != len(b.Selected) {
		t.Fatalf("%s trial %d: len %d != %d", name, trial, len(a.Selected), len(b.Selected))
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatalf("%s trial %d: Selected[%d] differs", name, trial, i)
		}
	}
}

func TestScratchSolutionsDoNotAlias(t *testing.T) {
	// Solutions produced with a Scratch must stay valid after the Scratch is
	// reused for another call.
	sc := &Scratch{}
	values := []float64{5, 4, 3, 2, 1}
	first := GreedyDescendingScratch(values, 7, sc)
	want := append([]bool(nil), first.Selected...)
	GreedyDescendingScratch([]float64{9, 9, 9, 9, 9}, 1, sc)
	ExactDPScratch([]float64{2, 2, 2}, 3, 1, sc)
	for i := range want {
		if first.Selected[i] != want[i] {
			t.Fatalf("Selected[%d] mutated by later scratch call", i)
		}
	}
}

func BenchmarkExactDPLarge(b *testing.B) {
	r := stats.NewRand(1)
	values := make([]float64, 2000)
	for i := range values {
		values[i] = 1 + r.Float64()*10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactDP(values, 5000, 1)
	}
}

func BenchmarkFastSSPLarge(b *testing.B) {
	r := stats.NewRand(1)
	values := make([]float64, 2000)
	for i := range values {
		values[i] = 1 + r.Float64()*10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&FastSSP{EpsPrime: 0.1}).Solve(values, 5000)
	}
}
