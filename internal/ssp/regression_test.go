package ssp

import (
	"testing"
	"testing/quick"
)

// Regression: FastSSP crashed with an integer-overflow panic when the
// stage-one LP handed it a float-dust budget (~2e-11) with normal-sized
// demands — the normalization unit became astronomically small relative to
// the values.
func TestFastSSPDegenerateTinyBudget(t *testing.T) {
	f := &FastSSP{EpsPrime: 0.1}
	sol := f.Solve([]float64{120.5, 33.1}, 2.27e-11)
	if sol.Total != 0 {
		t.Errorf("total = %v, want 0 (nothing fits a dust budget)", sol.Total)
	}
}

func TestExactDPTinyUnitNoOverflow(t *testing.T) {
	// unit so small that value/unit overflows int64.
	sol := ExactDP([]float64{1e10}, 2e-11, 1e-30)
	sum := 0.0
	for i, sel := range sol.Selected {
		if sel {
			sum += []float64{1e10}[i]
		}
	}
	if sum > 2e-11 {
		t.Errorf("selected %v into capacity 2e-11", sum)
	}
}

func TestExactDPHugeTableFallsBackToGreedy(t *testing.T) {
	// capacity/unit above maxDPCells: must not allocate the table.
	values := []float64{5e8, 3e8, 1e8}
	sol := ExactDP(values, 6e8, 1e-3)
	checkFeasibleSum(t, values, sol, 6e8)
	if sol.Total < 5e8 {
		t.Errorf("greedy fallback total = %v", sol.Total)
	}
}

func checkFeasibleSum(t *testing.T, values []float64, sol Solution, capacity float64) {
	t.Helper()
	sum := 0.0
	for i, sel := range sol.Selected {
		if sel {
			sum += values[i]
		}
	}
	if sum > capacity*(1+1e-9) {
		t.Fatalf("selected %v > capacity %v", sum, capacity)
	}
}

// Property: FastSSP never panics and stays feasible for wild capacity and
// value magnitudes.
func TestFastSSPExtremeMagnitudesProperty(t *testing.T) {
	f := func(rawVals []float64, capExp int8, valExp int8) bool {
		capacity := pow10(int(capExp)%20 - 10)
		values := make([]float64, 0, len(rawVals))
		scale := pow10(int(valExp)%20 - 10)
		for _, v := range rawVals {
			if v < 0 {
				v = -v
			}
			values = append(values, v*scale)
		}
		sol := (&FastSSP{EpsPrime: 0.1}).Solve(values, capacity)
		sum := 0.0
		for i, sel := range sol.Selected {
			if sel {
				sum += values[i]
			}
		}
		return sum <= capacity*(1+1e-6)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func pow10(e int) float64 {
	x := 1.0
	for i := 0; i < e; i++ {
		x *= 10
	}
	for i := 0; i > e; i-- {
		x /= 10
	}
	return x
}
