// Package ssp solves the subset-sum problems at MegaTE's second optimization
// layer: MaxEndpointFlow selects a subset of endpoint demands whose total is
// as close as possible to — without exceeding — the site-layer bandwidth
// allocation F_{k,t} (§4.2).
//
// Three solvers are provided: an exact dynamic program (the classical
// pseudopolynomial method the paper cites), a sorted greedy (the baseline
// for residual flows), and FastSSP, the paper's semi-DP approximation
// (Appendix A.2): cluster small demands into m aggregates, normalize by δ to
// shrink the DP, solve the small DP exactly, then place leftovers greedily.
package ssp

import (
	"math"
	"sort"
)

// Solution reports which input values were selected and their total.
type Solution struct {
	// Selected[i] reports whether values[i] is in the chosen subset.
	Selected []bool
	// Total is the sum of selected values.
	Total float64
}

// Scratch holds reusable working buffers for the subset-sum solvers. The
// stage-two MaxEndpointFlow workers call these solvers once per (pair,
// tunnel) on the hot path; a per-worker Scratch removes the order/DP-table
// allocation churn of the plain entry points. A Scratch must not be shared
// between concurrent calls; the returned Solution.Selected is always
// freshly allocated and safe to retain.
type Scratch struct {
	order     []int
	reachable []bool
	itemAt    []int32
	fromSum   []int32
	ctotals   []float64
	residIdx  []int
	residVals []float64
	clusters  []cluster
}

// intBuf returns a zero-length int buffer with capacity >= n.
func (sc *Scratch) intBuf(n int) []int {
	if cap(sc.order) < n {
		sc.order = make([]int, n)
	}
	return sc.order[:0]
}

// GreedyDescending packs values into capacity by scanning them in
// descending order and taking everything that fits. If any value remains
// unselected, the residual gap is smaller than the smallest unselected
// value — the property behind FastSSP's β error bound.
func GreedyDescending(values []float64, capacity float64) Solution {
	return GreedyDescendingScratch(values, capacity, nil)
}

// GreedyDescendingScratch is GreedyDescending with a reusable buffer set;
// sc may be nil.
func GreedyDescendingScratch(values []float64, capacity float64, sc *Scratch) Solution {
	sol := Solution{Selected: make([]bool, len(values))}
	var order []int
	if sc != nil {
		order = sc.intBuf(len(values))[:len(values)]
	} else {
		order = make([]int, len(values))
	}
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := values[order[a]], values[order[b]]
		if va > vb {
			return true
		}
		if va < vb {
			return false
		}
		return order[a] < order[b]
	})
	remaining := capacity
	for _, i := range order {
		v := values[i]
		if v <= 0 {
			continue
		}
		if v <= remaining {
			sol.Selected[i] = true
			sol.Total += v
			remaining -= v
		}
	}
	return sol
}

// maxDPCells bounds the DP table; above it ExactDP degrades to the sorted
// greedy rather than exhausting memory (callers pick the unit so that
// well-formed inputs stay far below this).
const maxDPCells = 1 << 26

// ExactDP solves subset sum exactly on values quantized at the given unit:
// each value is rounded up to a unit multiple and the capacity down, so the
// result is always feasible in real terms and exact whenever the inputs are
// unit multiples. Time and memory are O(len(values) * capacity/unit) — the
// O(|I_k| * F_{k,t}) the paper calls too expensive at scale.
func ExactDP(values []float64, capacity float64, unit float64) Solution {
	return ExactDPScratch(values, capacity, unit, nil)
}

// ExactDPScratch is ExactDP with a reusable buffer set; sc may be nil.
func ExactDPScratch(values []float64, capacity float64, unit float64, sc *Scratch) Solution {
	sol := Solution{Selected: make([]bool, len(values))}
	if capacity <= 0 || unit <= 0 {
		return sol
	}
	capRatio := capacity / unit
	if capRatio > maxDPCells {
		return GreedyDescendingScratch(values, capacity, sc)
	}
	capU := int(capRatio + 1e-9)
	if capU <= 0 {
		return sol
	}

	// reachable[j]: some subset sums to exactly j units.
	// itemAt[j]/fromSum[j]: backtracking chain.
	var reachable []bool
	var itemAt, fromSum []int32
	if sc != nil {
		if cap(sc.reachable) < capU+1 {
			sc.reachable = make([]bool, capU+1)
			sc.itemAt = make([]int32, capU+1)
			sc.fromSum = make([]int32, capU+1)
		}
		reachable = sc.reachable[:capU+1]
		itemAt = sc.itemAt[:capU+1]
		fromSum = sc.fromSum[:capU+1]
		for j := range reachable {
			reachable[j] = false
		}
	} else {
		reachable = make([]bool, capU+1)
		itemAt = make([]int32, capU+1)
		fromSum = make([]int32, capU+1)
	}
	for j := range itemAt {
		itemAt[j] = -1
		fromSum[j] = -1
	}
	reachable[0] = true

	for i, v := range values {
		if v <= 0 {
			continue
		}
		// Round the value up to units (with a relative guard so that values
		// an ulp above an exact multiple do not gain a whole extra unit).
		// Compare in float space first: v/unit may overflow int.
		q := v / unit
		if q > float64(capU)+1 {
			continue // cannot fit even alone
		}
		vu := int(math.Ceil(q - 1e-9))
		if vu <= 0 {
			vu = 1
		}
		if vu > capU {
			continue
		}
		for j := capU; j >= vu; j-- {
			if reachable[j-vu] && !reachable[j] {
				reachable[j] = true
				itemAt[j] = int32(i)
				fromSum[j] = int32(j - vu)
			}
		}
	}

	best := 0
	for j := capU; j > 0; j-- {
		if reachable[j] {
			best = j
			break
		}
	}
	for j := best; j > 0 && itemAt[j] >= 0; j = int(fromSum[j]) {
		i := itemAt[j]
		sol.Selected[i] = true
		sol.Total += values[i]
	}
	return sol
}

// FastSSP is the paper's approximation algorithm (Appendix A.2). EpsPrime
// (ε′) controls the precision/size trade-off: the clustering threshold is
// M = (ε′/3)·F and the normalization factor δ = (ε′/3)·M, giving a DP of
// size O(m · 9/ε′²) independent of |I_k| and F.
type FastSSP struct {
	// EpsPrime defaults to 0.1.
	EpsPrime float64
}

// cluster is an aggregate of input demands with total >= M (except possibly
// the last).
type cluster struct {
	members []int
	total   float64
}

// clusterValues groups values (in index order) into aggregates meeting the
// threshold M. Values individually >= M form singleton clusters. When sc is
// non-nil the clusters slice header is reused (member slices still allocate:
// they are per-cluster and short-lived).
func clusterValues(values []float64, m float64, sc *Scratch) []cluster {
	var clusters []cluster
	if sc != nil {
		clusters = sc.clusters[:0]
	}
	var cur cluster
	for i, v := range values {
		if v <= 0 {
			continue
		}
		if v >= m {
			clusters = append(clusters, cluster{members: []int{i}, total: v})
			continue
		}
		cur.members = append(cur.members, i)
		cur.total += v
		if cur.total >= m {
			clusters = append(clusters, cur)
			cur = cluster{}
		}
	}
	if len(cur.members) > 0 {
		clusters = append(clusters, cur)
	}
	if sc != nil {
		sc.clusters = clusters
	}
	return clusters
}

// Solve runs the four-step FastSSP procedure.
func (f *FastSSP) Solve(values []float64, capacity float64) Solution {
	return f.SolveScratch(values, capacity, nil)
}

// SolveScratch is Solve with a reusable buffer set; sc may be nil.
func (f *FastSSP) SolveScratch(values []float64, capacity float64, sc *Scratch) Solution {
	sol := Solution{Selected: make([]bool, len(values))}
	if capacity <= 0 {
		return sol
	}
	eps := f.EpsPrime
	if eps <= 0 {
		eps = 0.1
	}

	// Fast paths: everything fits, or nothing does.
	total, minPos := 0.0, math.Inf(1)
	for _, v := range values {
		if v > 0 {
			total += v
			if v < minPos {
				minPos = v
			}
		}
	}
	if total <= capacity {
		for i, v := range values {
			if v > 0 {
				sol.Selected[i] = true
				sol.Total += v
			}
		}
		return sol
	}
	if minPos > capacity {
		return sol // the budget cannot hold even the smallest demand
	}

	// Step 1: clustering with threshold M = (eps/3) * F.
	m := eps / 3 * capacity
	clusters := clusterValues(values, m, sc)

	// Step 2: normalization with delta = (eps/3) * M.
	delta := eps / 3 * m

	// Step 3: exact DP over the (few) clusters at unit delta. Rounding
	// cluster totals up and the capacity down keeps the selection feasible.
	var ctotals []float64
	if sc != nil {
		if cap(sc.ctotals) < len(clusters) {
			sc.ctotals = make([]float64, len(clusters))
		}
		ctotals = sc.ctotals[:len(clusters)]
	} else {
		ctotals = make([]float64, len(clusters))
	}
	for i := range clusters {
		ctotals[i] = clusters[i].total
	}
	dp := ExactDPScratch(ctotals, capacity, delta, sc)

	used := 0.0
	for ci, sel := range dp.Selected {
		if !sel {
			continue
		}
		for _, i := range clusters[ci].members {
			sol.Selected[i] = true
			sol.Total += values[i]
		}
		used += clusters[ci].total
	}

	// Step 4: sorted greedy over the residual flows into the residual
	// bandwidth R = F - sum(selected).
	residualCap := capacity - used
	if residualCap > 0 {
		var residIdx []int
		var residVals []float64
		if sc != nil {
			residIdx = sc.residIdx[:0]
			residVals = sc.residVals[:0]
		}
		for i, v := range values {
			if v > 0 && !sol.Selected[i] {
				residIdx = append(residIdx, i)
				residVals = append(residVals, v)
			}
		}
		if sc != nil {
			sc.residIdx = residIdx
			sc.residVals = residVals
		}
		g := GreedyDescendingScratch(residVals, residualCap, sc)
		for j, sel := range g.Selected {
			if sel {
				sol.Selected[residIdx[j]] = true
				sol.Total += residVals[j]
			}
		}
	}
	return sol
}

// ErrorBound returns the β bound of Appendix A.2 for a finished solution:
// the shortfall is at most the smallest unselected demand, so
// β ≤ min{unselected}/capacity. It returns 0 when every demand was selected.
func ErrorBound(values []float64, sol Solution, capacity float64) float64 {
	minUnsel := -1.0
	for i, v := range values {
		if v <= 0 || sol.Selected[i] {
			continue
		}
		if minUnsel < 0 || v < minUnsel {
			minUnsel = v
		}
	}
	if minUnsel < 0 || capacity <= 0 {
		return 0
	}
	return minUnsel / capacity
}
