// Package ssp solves the subset-sum problems at MegaTE's second optimization
// layer: MaxEndpointFlow selects a subset of endpoint demands whose total is
// as close as possible to — without exceeding — the site-layer bandwidth
// allocation F_{k,t} (§4.2).
//
// Three solvers are provided: an exact dynamic program (the classical
// pseudopolynomial method the paper cites), a sorted greedy (the baseline
// for residual flows), and FastSSP, the paper's semi-DP approximation
// (Appendix A.2): cluster small demands into m aggregates, normalize by δ to
// shrink the DP, solve the small DP exactly, then place leftovers greedily.
//
// Every solver has three entry points at increasing levels of buffer reuse:
// the plain form (allocates everything), the Scratch form (reuses working
// buffers, allocates only the returned Solution.Selected), and the Into form
// (writes into a caller-provided selection vector and allocates nothing once
// the Scratch is warm). The Into forms are the stage-two hot path: one call
// per (pair, tunnel) at millions of flows per interval, gated at 0 allocs/op
// by TestStage2PairZeroAlloc in package core.
package ssp

import (
	"math"
)

// Solution reports which input values were selected and their total.
type Solution struct {
	// Selected[i] reports whether values[i] is in the chosen subset.
	Selected []bool
	// Total is the sum of selected values.
	Total float64
}

// Scratch holds reusable working buffers for the subset-sum solvers. The
// stage-two MaxEndpointFlow workers call these solvers once per (pair,
// tunnel) on the hot path; a per-worker Scratch removes the order/DP-table
// allocation churn of the plain entry points. A Scratch must not be shared
// between concurrent calls; the returned Solution.Selected is always
// freshly allocated and safe to retain, everything else inside the Scratch
// is invalidated by the next call through it.
type Scratch struct {
	order     []int
	reachable []bool
	itemAt    []int32
	fromSum   []int32
	ctotals   []float64
	residIdx  []int
	residVals []float64
	clusters  []cluster
	// flat and singles back the cluster member lists: contiguous runs of
	// flat for aggregated small demands, one-element windows of singles for
	// demands at or above the clustering threshold. Reusing them removes the
	// per-cluster slice allocations of the plain path.
	flat    []int
	singles []int
	// dpSel and greedySel are the internal selection vectors of FastSSP's
	// cluster DP and residual greedy.
	dpSel     []bool
	greedySel []bool
}

// intBuf returns a zero-length int buffer with capacity >= n.
func (sc *Scratch) intBuf(n int) []int {
	if cap(sc.order) < n {
		sc.order = make([]int, n)
	}
	return sc.order[:0]
}

// boolBuf returns b resized to n with every element false, growing it when
// the capacity falls short.
func boolBuf(b []bool, n int) []bool {
	if cap(b) < n {
		b = make([]bool, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = false
		}
	}
	return b
}

// sortIdxByValDesc sorts order in place so values[order[a]] descends, ties
// broken by ascending index — the unique total order every solver sorts by.
// An in-place heapsort instead of sort.Slice: the hot path cannot afford
// the closure and interface allocations, and the comparator is a strict
// total order so any comparison sort yields the identical permutation.
func sortIdxByValDesc(order []int, values []float64) {
	// less reports whether order[a] must precede order[b] in the final
	// (descending) order.
	less := func(a, b int) bool {
		va, vb := values[order[a]], values[order[b]]
		if va > vb {
			return true
		}
		if vb > va {
			return false
		}
		return order[a] < order[b]
	}
	// Max-heap on "last in final order", then repeatedly swap the root out.
	n := len(order)
	siftDown := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && less(child, child+1) {
				child++
			}
			if !less(root, child) {
				return
			}
			order[root], order[child] = order[child], order[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	for end := n - 1; end > 0; end-- {
		order[0], order[end] = order[end], order[0]
		siftDown(0, end)
	}
}

// GreedyDescending packs values into capacity by scanning them in
// descending order and taking everything that fits. If any value remains
// unselected, the residual gap is smaller than the smallest unselected
// value — the property behind FastSSP's β error bound.
func GreedyDescending(values []float64, capacity float64) Solution {
	return GreedyDescendingScratch(values, capacity, nil)
}

// GreedyDescendingScratch is GreedyDescending with a reusable buffer set;
// sc may be nil.
func GreedyDescendingScratch(values []float64, capacity float64, sc *Scratch) Solution {
	sol := Solution{Selected: make([]bool, len(values))}
	sol.Total = greedyInto(values, capacity, sc, sol.Selected)
	return sol
}

// greedyInto is the allocation-free core of the sorted greedy: selected must
// have len(values) and is assumed cleared. Returns the selected total.
func greedyInto(values []float64, capacity float64, sc *Scratch, selected []bool) float64 {
	var order []int
	if sc != nil {
		order = sc.intBuf(len(values))[:len(values)]
	} else {
		order = make([]int, len(values))
	}
	for i := range order {
		order[i] = i
	}
	sortIdxByValDesc(order, values)
	total := 0.0
	remaining := capacity
	for _, i := range order {
		v := values[i]
		if v <= 0 {
			continue
		}
		if v <= remaining {
			selected[i] = true
			total += v
			remaining -= v
		}
	}
	return total
}

// maxDPCells bounds the DP table; above it ExactDP degrades to the sorted
// greedy rather than exhausting memory (callers pick the unit so that
// well-formed inputs stay far below this).
const maxDPCells = 1 << 26

// ExactDP solves subset sum exactly on values quantized at the given unit:
// each value is rounded up to a unit multiple and the capacity down, so the
// result is always feasible in real terms and exact whenever the inputs are
// unit multiples. Time and memory are O(len(values) * capacity/unit) — the
// O(|I_k| * F_{k,t}) the paper calls too expensive at scale.
func ExactDP(values []float64, capacity float64, unit float64) Solution {
	return ExactDPScratch(values, capacity, unit, nil)
}

// ExactDPScratch is ExactDP with a reusable buffer set; sc may be nil.
func ExactDPScratch(values []float64, capacity float64, unit float64, sc *Scratch) Solution {
	sol := Solution{Selected: make([]bool, len(values))}
	sol.Total = exactDPInto(values, capacity, unit, sc, sol.Selected)
	return sol
}

// exactDPInto is the allocation-free core of ExactDP: selected must have
// len(values) and is assumed cleared. Returns the selected total.
func exactDPInto(values []float64, capacity float64, unit float64, sc *Scratch, selected []bool) float64 {
	if capacity <= 0 || unit <= 0 {
		return 0
	}
	capRatio := capacity / unit
	if capRatio > maxDPCells {
		return greedyInto(values, capacity, sc, selected)
	}
	capU := int(capRatio + 1e-9)
	if capU <= 0 {
		return 0
	}

	// reachable[j]: some subset sums to exactly j units.
	// itemAt[j]/fromSum[j]: backtracking chain.
	var reachable []bool
	var itemAt, fromSum []int32
	if sc != nil {
		if cap(sc.reachable) < capU+1 {
			sc.reachable = make([]bool, capU+1)
			sc.itemAt = make([]int32, capU+1)
			sc.fromSum = make([]int32, capU+1)
		}
		reachable = sc.reachable[:capU+1]
		itemAt = sc.itemAt[:capU+1]
		fromSum = sc.fromSum[:capU+1]
		for j := range reachable {
			reachable[j] = false
		}
	} else {
		reachable = make([]bool, capU+1)
		itemAt = make([]int32, capU+1)
		fromSum = make([]int32, capU+1)
	}
	for j := range itemAt {
		itemAt[j] = -1
		fromSum[j] = -1
	}
	reachable[0] = true

	for i, v := range values {
		if v <= 0 {
			continue
		}
		// Round the value up to units (with a relative guard so that values
		// an ulp above an exact multiple do not gain a whole extra unit).
		// Compare in float space first: v/unit may overflow int.
		q := v / unit
		if q > float64(capU)+1 {
			continue // cannot fit even alone
		}
		vu := int(math.Ceil(q - 1e-9))
		if vu <= 0 {
			vu = 1
		}
		if vu > capU {
			continue
		}
		for j := capU; j >= vu; j-- {
			if reachable[j-vu] && !reachable[j] {
				reachable[j] = true
				itemAt[j] = int32(i)
				fromSum[j] = int32(j - vu)
			}
		}
	}

	best := 0
	for j := capU; j > 0; j-- {
		if reachable[j] {
			best = j
			break
		}
	}
	total := 0.0
	for j := best; j > 0 && itemAt[j] >= 0; j = int(fromSum[j]) {
		i := itemAt[j]
		selected[i] = true
		total += values[i]
	}
	return total
}

// FastSSP is the paper's approximation algorithm (Appendix A.2). EpsPrime
// (ε′) controls the precision/size trade-off: the clustering threshold is
// M = (ε′/3)·F and the normalization factor δ = (ε′/3)·M, giving a DP of
// size O(m · 9/ε′²) independent of |I_k| and F.
type FastSSP struct {
	// EpsPrime defaults to 0.1.
	EpsPrime float64
}

// cluster is an aggregate of input demands with total >= M (except possibly
// the last).
type cluster struct {
	members []int
	total   float64
}

// clusterValues groups values (in index order) into aggregates meeting the
// threshold M. Values individually >= M form singleton clusters. When sc is
// non-nil the member lists are carved out of the Scratch's flat buffers —
// small-demand runs are contiguous in sc.flat (only one aggregate
// accumulates at a time, so a threshold-crossing singleton never splits a
// run), singletons get one-element windows of sc.singles — and nothing
// allocates once the buffers are warm.
func clusterValues(values []float64, m float64, sc *Scratch) []cluster {
	if sc == nil {
		var clusters []cluster
		var cur cluster
		for i, v := range values {
			if v <= 0 {
				continue
			}
			if v >= m {
				clusters = append(clusters, cluster{members: []int{i}, total: v})
				continue
			}
			cur.members = append(cur.members, i)
			cur.total += v
			if cur.total >= m {
				clusters = append(clusters, cur)
				cur = cluster{}
			}
		}
		if len(cur.members) > 0 {
			clusters = append(clusters, cur)
		}
		return clusters
	}

	clusters := sc.clusters[:0]
	flat := sc.flat[:0]
	singles := sc.singles[:0]
	start := 0
	curTotal := 0.0
	for i, v := range values {
		if v <= 0 {
			continue
		}
		if v >= m {
			singles = append(singles, i)
			clusters = append(clusters, cluster{members: singles[len(singles)-1 : len(singles) : len(singles)], total: v})
			continue
		}
		flat = append(flat, i)
		curTotal += v
		if curTotal >= m {
			clusters = append(clusters, cluster{members: flat[start:len(flat):len(flat)], total: curTotal})
			start = len(flat)
			curTotal = 0
		}
	}
	if len(flat) > start {
		clusters = append(clusters, cluster{members: flat[start:len(flat):len(flat)], total: curTotal})
	}
	sc.clusters, sc.flat, sc.singles = clusters, flat, singles
	return clusters
}

// Solve runs the four-step FastSSP procedure.
func (f *FastSSP) Solve(values []float64, capacity float64) Solution {
	return f.SolveScratch(values, capacity, nil)
}

// SolveScratch is Solve with a reusable buffer set; sc may be nil.
func (f *FastSSP) SolveScratch(values []float64, capacity float64, sc *Scratch) Solution {
	sol := Solution{Selected: make([]bool, len(values))}
	sol.Total = f.SolveInto(values, capacity, sc, sol.Selected)
	return sol
}

// SolveInto is the allocation-free form of Solve: the selection is written
// into selected (len(values), cleared here) and the selected total returned.
// With a warm non-nil Scratch the steady-state call performs no heap
// allocation at all — the contract the stage-two worker pool is gated on.
func (f *FastSSP) SolveInto(values []float64, capacity float64, sc *Scratch, selected []bool) float64 {
	for i := range selected {
		selected[i] = false
	}
	if capacity <= 0 {
		return 0
	}
	eps := f.EpsPrime
	if eps <= 0 {
		eps = 0.1
	}

	// Fast paths: everything fits, or nothing does.
	total, minPos := 0.0, math.Inf(1)
	for _, v := range values {
		if v > 0 {
			total += v
			if v < minPos {
				minPos = v
			}
		}
	}
	if total <= capacity {
		picked := 0.0
		for i, v := range values {
			if v > 0 {
				selected[i] = true
				picked += v
			}
		}
		return picked
	}
	if minPos > capacity {
		return 0 // the budget cannot hold even the smallest demand
	}

	// Step 1: clustering with threshold M = (eps/3) * F.
	m := eps / 3 * capacity
	clusters := clusterValues(values, m, sc)

	// Step 2: normalization with delta = (eps/3) * M.
	delta := eps / 3 * m

	// Step 3: exact DP over the (few) clusters at unit delta. Rounding
	// cluster totals up and the capacity down keeps the selection feasible.
	var ctotals []float64
	if sc != nil {
		if cap(sc.ctotals) < len(clusters) {
			sc.ctotals = make([]float64, len(clusters))
		}
		ctotals = sc.ctotals[:len(clusters)]
	} else {
		ctotals = make([]float64, len(clusters))
	}
	for i := range clusters {
		ctotals[i] = clusters[i].total
	}
	var dpSel []bool
	if sc != nil {
		sc.dpSel = boolBuf(sc.dpSel, len(clusters))
		dpSel = sc.dpSel
	} else {
		dpSel = make([]bool, len(clusters))
	}
	exactDPInto(ctotals, capacity, delta, sc, dpSel)

	picked := 0.0
	used := 0.0
	for ci, sel := range dpSel {
		if !sel {
			continue
		}
		for _, i := range clusters[ci].members {
			selected[i] = true
			picked += values[i]
		}
		used += clusters[ci].total
	}

	// Step 4: sorted greedy over the residual flows into the residual
	// bandwidth R = F - sum(selected).
	residualCap := capacity - used
	if residualCap > 0 {
		var residIdx []int
		var residVals []float64
		if sc != nil {
			residIdx = sc.residIdx[:0]
			residVals = sc.residVals[:0]
		}
		for i, v := range values {
			if v > 0 && !selected[i] {
				residIdx = append(residIdx, i)
				residVals = append(residVals, v)
			}
		}
		if sc != nil {
			sc.residIdx = residIdx
			sc.residVals = residVals
		}
		var gsel []bool
		if sc != nil {
			sc.greedySel = boolBuf(sc.greedySel, len(residVals))
			gsel = sc.greedySel
		} else {
			gsel = make([]bool, len(residVals))
		}
		greedyInto(residVals, residualCap, sc, gsel)
		for j, sel := range gsel {
			if sel {
				selected[residIdx[j]] = true
				picked += residVals[j]
			}
		}
	}
	return picked
}

// ErrorBound returns the β bound of Appendix A.2 for a finished solution:
// the shortfall is at most the smallest unselected demand, so
// β ≤ min{unselected}/capacity. It returns 0 when every demand was selected.
func ErrorBound(values []float64, sol Solution, capacity float64) float64 {
	minUnsel := -1.0
	for i, v := range values {
		if v <= 0 || sol.Selected[i] {
			continue
		}
		if minUnsel < 0 || v < minUnsel {
			minUnsel = v
		}
	}
	if minUnsel < 0 || capacity <= 0 {
		return 0
	}
	return minUnsel / capacity
}
