package topology

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Tunnel is a pre-established TE path between a pair of sites (T_k in Table
// 1). Weight is the tunnel's latency in milliseconds (the paper: "w_t can be
// determined by the network latency where the higher value means larger
// network latency").
type Tunnel struct {
	Src, Dst SiteID
	Links    []LinkID
	// Sites is the hop-by-hop site sequence, Src first and Dst last. The
	// data plane serializes it into the SR header's Hop[] array (Figure 7).
	Sites  []SiteID
	Weight float64
}

// Uses reports whether the tunnel traverses link e — the L(t, e) indicator
// of Table 1.
func (tn *Tunnel) Uses(e LinkID) bool {
	for _, l := range tn.Links {
		if l == e {
			return true
		}
	}
	return false
}

// Availability returns the product of the availabilities of the tunnel's
// links, the probability all of them are up simultaneously.
func (tn *Tunnel) Availability(t *Topology) float64 {
	a := 1.0
	for _, l := range tn.Links {
		a *= t.Links[l].Availability
	}
	return a
}

// CostPerGbps returns the sum of the per-link carriage costs along the
// tunnel.
func (tn *Tunnel) CostPerGbps(t *Topology) float64 {
	c := 0.0
	for _, l := range tn.Links {
		c += t.Links[l].CostPerGbps
	}
	return c
}

// priority queue for Dijkstra.
type pqItem struct {
	site SiteID
	dist float64
}
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// ShortestPath runs Dijkstra over link latencies from src to dst, skipping
// failed links and any link in banned or any intermediate site in bannedSites.
// It returns the link sequence and total latency, or ok=false when dst is
// unreachable.
func (t *Topology) ShortestPath(src, dst SiteID, banned map[LinkID]bool, bannedSites map[SiteID]bool) (links []LinkID, dist float64, ok bool) {
	n := len(t.Sites)
	distTo := make([]float64, n)
	prevLink := make([]LinkID, n)
	done := make([]bool, n)
	for i := range distTo {
		distTo[i] = math.Inf(1)
		prevLink[i] = -1
	}
	distTo[src] = 0
	q := &pq{{site: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.site
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		if u != src && bannedSites != nil && bannedSites[u] {
			continue
		}
		for _, lid := range t.out[u] {
			l := t.Links[lid]
			if l.Down || (banned != nil && banned[lid]) {
				continue
			}
			if l.To != dst && bannedSites != nil && bannedSites[l.To] {
				continue
			}
			nd := distTo[u] + l.LatencyMs
			if nd < distTo[l.To] {
				distTo[l.To] = nd
				prevLink[l.To] = lid
				heap.Push(q, pqItem{site: l.To, dist: nd})
			}
		}
	}
	if math.IsInf(distTo[dst], 1) {
		return nil, 0, false
	}
	// Reconstruct.
	for at := dst; at != src; {
		lid := prevLink[at]
		links = append(links, lid)
		at = t.Links[lid].From
	}
	// Reverse in place.
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return links, distTo[dst], true
}

// KShortestPaths returns up to k loopless shortest paths from src to dst by
// latency, using Yen's algorithm. Paths are returned in ascending weight
// order; this is the T_k tunnel set for the site pair, which MaxEndpointFlow
// consumes in ascending w_t order (Appendix A.2).
func (t *Topology) KShortestPaths(src, dst SiteID, k int) []*Tunnel {
	if src == dst || k <= 0 {
		return nil
	}
	first, dist, ok := t.ShortestPath(src, dst, nil, nil)
	if !ok {
		return nil
	}
	paths := []*Tunnel{t.makeTunnel(src, dst, first, dist)}
	var candidates []*Tunnel

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from each node of the previous path.
		for i := 0; i < len(prev.Links); i++ {
			spurSite := prev.Sites[i]
			rootLinks := prev.Links[:i]

			banned := make(map[LinkID]bool)
			bannedSites := make(map[SiteID]bool)
			// Ban links that would recreate an already-found path with the
			// same root.
			for _, p := range paths {
				if len(p.Links) > i && sameLinks(p.Links[:i], rootLinks) {
					banned[p.Links[i]] = true
				}
			}
			// Ban root sites (except the spur site) to keep paths loopless.
			for _, s := range prev.Sites[:i] {
				bannedSites[s] = true
			}

			spurLinks, _, ok := t.ShortestPath(spurSite, dst, banned, bannedSites)
			if !ok {
				continue
			}
			total := append(append([]LinkID{}, rootLinks...), spurLinks...)
			w := 0.0
			for _, lid := range total {
				w += t.Links[lid].LatencyMs
			}
			cand := t.makeTunnel(src, dst, total, w)
			if !containsTunnel(paths, cand) && !containsTunnel(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].Weight < candidates[b].Weight })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func (t *Topology) makeTunnel(src, dst SiteID, links []LinkID, weight float64) *Tunnel {
	sites := make([]SiteID, 0, len(links)+1)
	sites = append(sites, src)
	for _, lid := range links {
		sites = append(sites, t.Links[lid].To)
	}
	return &Tunnel{Src: src, Dst: dst, Links: links, Sites: sites, Weight: weight}
}

func sameLinks(a, b []LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsTunnel(ts []*Tunnel, c *Tunnel) bool {
	for _, p := range ts {
		if sameLinks(p.Links, c.Links) {
			return true
		}
	}
	return false
}

// KDiversePaths returns up to k loopless paths from src to dst, preferring
// link-disjoint alternatives: each successive path avoids the links of all
// previous ones; when no fully disjoint path remains, the remaining slots
// are filled from Yen's k-shortest paths. This mirrors how production TE
// pre-establishes tunnels — resilience wants diversity, so alternative
// tunnels are materially longer than the primary (the 20 ms vs 42 ms modes
// of Figure 2) rather than near-equal detours.
func (t *Topology) KDiversePaths(src, dst SiteID, k int) []*Tunnel {
	if src == dst || k <= 0 {
		return nil
	}
	var paths []*Tunnel
	banned := make(map[LinkID]bool)
	for len(paths) < k {
		links, dist, ok := t.ShortestPath(src, dst, banned, nil)
		if !ok {
			break
		}
		paths = append(paths, t.makeTunnel(src, dst, links, dist))
		for _, l := range links {
			banned[l] = true
			if rev, hasRev := t.ReverseLink(l); hasRev {
				banned[rev] = true
			}
		}
	}
	if len(paths) < k {
		for _, cand := range t.KShortestPaths(src, dst, k) {
			if len(paths) >= k {
				break
			}
			if !containsTunnel(paths, cand) {
				paths = append(paths, cand)
			}
		}
		sort.Slice(paths, func(a, b int) bool { return paths[a].Weight < paths[b].Weight })
	}
	return paths
}

// TunnelSet caches pre-established tunnels per site pair.
type TunnelSet struct {
	topo *Topology
	k    int
	m    map[pairKey][]*Tunnel
}

type pairKey struct{ src, dst SiteID }

// NewTunnelSet creates a tunnel cache establishing up to k tunnels per pair.
func NewTunnelSet(t *Topology, k int) *TunnelSet {
	return &TunnelSet{topo: t, k: k, m: make(map[pairKey][]*Tunnel)}
}

// For returns the tunnels for the (src, dst) site pair, computing and
// caching them on first use. Tunnels come from KDiversePaths, ordered by
// ascending weight. TunnelSet is not safe for concurrent mutation; callers
// that share one across goroutines must pre-warm it (see Warm).
func (ts *TunnelSet) For(src, dst SiteID) []*Tunnel {
	key := pairKey{src, dst}
	if tns, ok := ts.m[key]; ok {
		return tns
	}
	tns := ts.topo.KDiversePaths(src, dst, ts.k)
	ts.m[key] = tns
	return tns
}

// Warm precomputes tunnels for every given pair, enabling concurrent reads
// afterwards.
func (ts *TunnelSet) Warm(pairs [][2]SiteID) {
	for _, p := range pairs {
		ts.For(p[0], p[1])
	}
}

// Invalidate drops all cached tunnels, e.g. after a link failure changed the
// topology.
func (ts *TunnelSet) Invalidate() {
	ts.m = make(map[pairKey][]*Tunnel)
}

// String renders a tunnel as "A->B->C (12.3ms)" for logs and tests.
func (tn *Tunnel) String() string {
	s := ""
	for i, site := range tn.Sites {
		if i > 0 {
			s += "->"
		}
		s += fmt.Sprint(int(site))
	}
	return fmt.Sprintf("%s (%.1fms)", s, tn.Weight)
}
