package topology

import (
	"strings"
	"testing"
)

const sampleGML = `
Creator "Topology Zoo Toolset"
graph [
  DateObtained "22/10/10"
  network "Sample"
  node [
    id 0
    label "Atlanta"
    Country "United States"
    Longitude -84.38798
    Latitude 33.74900
  ]
  node [
    id 1
    label "Boston"
    Longitude -71.05977
    Latitude 42.35843
  ]
  node [
    id 2
    label "Chicago"
    Longitude -87.65005
    Latitude 41.85003
  ]
  node [
    id 3
    label "NoCoords"
  ]
  edge [
    source 0
    target 1
    LinkLabel "OC-48"
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 2
    target 0
  ]
  edge [
    source 0
    target 3
  ]
  edge [
    source 3
    target 0
  ]
  edge [
    source 1
    target 1
  ]
]
`

func TestParseGMLSample(t *testing.T) {
	topo, err := ParseGML(strings.NewReader(sampleGML), "sample", 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSites() != 4 {
		t.Fatalf("sites = %d, want 4", topo.NumSites())
	}
	// 4 distinct physical edges (duplicate 0-3/3-0 collapses, self loop
	// dropped) -> 8 directed links.
	if topo.NumLinks() != 8 {
		t.Fatalf("directed links = %d, want 8", topo.NumLinks())
	}
	if topo.Sites[0].Name != "Atlanta" || topo.Sites[1].Name != "Boston" {
		t.Errorf("labels = %q, %q", topo.Sites[0].Name, topo.Sites[1].Name)
	}
	if topo.Sites[0].X == 0 && topo.Sites[0].Y == 0 {
		t.Error("coordinates not parsed")
	}
	if topo.Sites[3].Name != "NoCoords" {
		t.Errorf("node 3 name = %q", topo.Sites[3].Name)
	}
	if !topo.Connected() {
		t.Error("parsed topology should be connected")
	}
	if err := topo.Validate(); err != nil {
		t.Error(err)
	}
	// Latency should reflect geography: Atlanta-Boston is >1000 km.
	if topo.Links[0].LatencyMs < 3 {
		t.Errorf("Atlanta-Boston latency = %v ms, implausibly low", topo.Links[0].LatencyMs)
	}
}

func TestParseGMLDeterministic(t *testing.T) {
	a, err := ParseGML(strings.NewReader(sampleGML), "s", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseGML(strings.NewReader(sampleGML), "s", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatal("nondeterministic parse")
		}
	}
}

func TestParseGMLErrors(t *testing.T) {
	cases := []string{
		``,                                     // no graph
		`graph [ node [ label "x" ] ]`,         // node without id
		`graph [ edge [ source 0 ] ]`,          // edge without target
		`graph [ edge [ source 0 target 5 ] ]`, // unknown node
		`graph [ node [ id 0 label "unterminated ] ]`,
	}
	for i, src := range cases {
		if _, err := ParseGML(strings.NewReader(src), "x", 1); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestParseGMLNestedUnknownBlocks(t *testing.T) {
	src := `
graph [
  hierarchy [ level 1 nested [ deep 2 ] ]
  node [ id 0 label "a" graphics [ w 10 h 10 ] ]
  node [ id 1 label "b" ]
  edge [ source 0 target 1 ]
]`
	topo, err := ParseGML(strings.NewReader(src), "nested", 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSites() != 2 || topo.NumLinks() != 2 {
		t.Fatalf("sites=%d links=%d", topo.NumSites(), topo.NumLinks())
	}
}
