package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"megate/internal/stats"
)

// Spec mirrors Table 2 of the paper: the four evaluation topologies with
// their site counts. Endpoint counts are attached separately (see
// AttachEndpoints) so the endpoint scale can be swept as in §6.1.
type Spec struct {
	Name  string
	Sites int
	Links int // undirected physical links
	Seed  int64
}

// Specs lists the evaluation topologies of Table 2. Deltacom and Cogentco
// use the Internet Topology Zoo site/link counts; since the Zoo data files
// are not redistributable here, the graphs are generated synthetically with
// matching counts (documented in DESIGN.md).
var Specs = []Spec{
	{Name: "B4*", Sites: 12, Links: 19, Seed: 1},
	{Name: "Deltacom*", Sites: 113, Links: 183, Seed: 2},
	{Name: "Cogentco*", Sites: 197, Links: 245, Seed: 3},
	{Name: "TWAN", Sites: 100, Links: 380, Seed: 4},
}

// Build constructs the named topology (without endpoints). Supported names
// are those in Specs. Build panics on an unknown name; use BuildSpec for
// custom parameters.
func Build(name string) *Topology {
	for _, s := range Specs {
		if s.Name == name {
			if s.Name == "B4*" {
				return BuildB4()
			}
			return BuildSpec(s)
		}
	}
	panic(fmt.Sprintf("topology: unknown topology %q", name))
}

// b4Edge is one undirected edge of the published B4 topology.
type b4Edge struct{ a, b int }

// The 12-site, 19-link Google B4 topology as published in Jain et al.,
// SIGCOMM 2013, with sites numbered 0..11 across Asia, North America and
// Europe.
var b4Edges = []b4Edge{
	{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {4, 6}, {5, 6},
	{5, 7}, {6, 8}, {7, 8}, {7, 9}, {8, 10}, {9, 10}, {9, 11}, {10, 11},
	{2, 5}, {3, 6},
}

// Approximate planar coordinates (km) for the B4 sites, good enough to give
// realistic propagation latencies.
var b4Coords = [][2]float64{
	{0, 1200}, {500, 800}, {900, 1400}, {1500, 1000},
	{4000, 1100}, {4600, 700}, {4900, 1500}, {5400, 900},
	{5800, 1400}, {8200, 1000}, {8700, 1300}, {9200, 900},
}

// BuildB4 constructs the B4* topology of Table 2.
func BuildB4() *Topology {
	t := New("B4*")
	r := stats.NewRand(1)
	for i, c := range b4Coords {
		t.AddSite(fmt.Sprintf("b4-%d", i), c[0], c[1])
	}
	for _, e := range b4Edges {
		addPhysicalLink(t, r, SiteID(e.a), SiteID(e.b))
	}
	return t
}

// BuildSpec generates a synthetic topology with the requested site and link
// counts: a Euclidean minimum spanning tree for connectivity plus the
// shortest remaining candidate edges (a Waxman-like preference for short
// links), which yields the partial-mesh shape of ISP WANs.
func BuildSpec(s Spec) *Topology {
	if s.Links < s.Sites-1 {
		panic(fmt.Sprintf("topology: spec %q needs at least %d links for connectivity", s.Name, s.Sites-1))
	}
	t := New(s.Name)
	r := stats.NewRand(s.Seed)
	for i := 0; i < s.Sites; i++ {
		t.AddSite(fmt.Sprintf("%s-%d", s.Name, i), r.Float64()*5000, r.Float64()*3000)
	}

	// Euclidean MST via Prim's algorithm.
	n := s.Sites
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		dist[j] = siteDist(t, 0, SiteID(j))
		from[j] = 0
	}
	type edge struct{ a, b int }
	var edges []edge
	used := make(map[[2]int]bool)
	for count := 1; count < n; count++ {
		best, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && dist[j] < bestD {
				best, bestD = j, dist[j]
			}
		}
		inTree[best] = true
		edges = append(edges, edge{from[best], best})
		used[edgeKey(from[best], best)] = true
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := siteDist(t, SiteID(best), SiteID(j)); d < dist[j] {
					dist[j] = d
					from[j] = best
				}
			}
		}
	}

	// Candidate extra edges sorted by length with random jitter, preferring
	// short links but occasionally admitting long-haul shortcuts.
	type cand struct {
		a, b int
		key  float64
	}
	var cands []cand
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if used[edgeKey(a, b)] {
				continue
			}
			d := siteDist(t, SiteID(a), SiteID(b))
			cands = append(cands, cand{a, b, d * (0.5 + r.Float64())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	for _, c := range cands {
		if len(edges) >= s.Links {
			break
		}
		edges = append(edges, edge{c.a, c.b})
	}

	for _, e := range edges {
		addPhysicalLink(t, r, SiteID(e.a), SiteID(e.b))
	}
	return t
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func siteDist(t *Topology, a, b SiteID) float64 {
	dx := t.Sites[a].X - t.Sites[b].X
	dy := t.Sites[a].Y - t.Sites[b].Y
	return math.Sqrt(dx*dx + dy*dy)
}

// addPhysicalLink adds a bidirectional link with attributes derived from the
// geometry plus seeded randomness: latency from fiber propagation (~200
// km/ms), capacity from common WAN rates, and a correlated quality tier.
// Premium links (direct fiber) have a lower route-stretch factor, higher
// availability, and higher carriage cost — the real-world correlation that
// drives the paper's production results: time-sensitive traffic belongs on
// fast/available/expensive paths, bulk on slow/cheap ones (Figures 15–17).
func addPhysicalLink(t *Topology, r *rand.Rand, a, b SiteID) {
	distKm := siteDist(t, a, b)
	caps := []float64{100e3, 200e3, 400e3} // Mbps
	capacity := caps[r.Intn(len(caps))]
	var stretch, availability, cost float64
	if r.Float64() < 0.5 {
		// Premium tier: direct fiber.
		stretch = 1.1 + r.Float64()*0.1
		availability = 0.9999 + r.Float64()*0.00009
		cost = 8 + r.Float64()*4
	} else {
		// Economy tier: leased, longer routed.
		stretch = 1.4 + r.Float64()*0.3
		availability = 0.995 + r.Float64()*0.004
		cost = 2 + r.Float64()*2
	}
	latency := distKm * stretch / 200
	if latency < 0.1 {
		latency = 0.1
	}
	t.AddBidiLink(a, b, capacity, latency, availability, cost)
}

// AttachEndpoints attaches endpoints to sites following the Weibull
// distribution of endpoints-per-site the paper fits to TWAN traces (Figure
// 8). meanPerSite is the distribution mean (the paper's confidential
// parameter m); shape < 1 yields the orders-of-magnitude spread observed in
// production. Every site receives at least one endpoint. Returns the
// endpoint count actually attached.
func AttachEndpoints(t *Topology, meanPerSite float64, shape float64, seed int64) int {
	if shape <= 0 {
		shape = 0.7
	}
	w := stats.Weibull{Shape: shape, Scale: meanPerSite / math.Gamma(1+1/shape)}
	r := stats.NewRand(seed)
	total := 0
	for s := range t.Sites {
		n := int(math.Round(w.Sample(r)))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			t.AddEndpoint(SiteID(s), fmt.Sprintf("ins-%d-%d", s, i))
		}
		total += n
	}
	return total
}

// AttachEndpointsTarget attaches endpoints with the Weibull per-site spread
// of AttachEndpoints, scaled so the total lands exactly on target — the knob
// megascale sweeps need: "one million endpoints on TWAN", not "a mean that
// happens to sum near it". Every site keeps at least one endpoint; the
// round-off is settled round-robin so no single site absorbs it. Returns the
// endpoint count attached (target, or the site count when target is below
// it).
func AttachEndpointsTarget(t *Topology, target int, shape float64, seed int64) int {
	if shape <= 0 {
		shape = 0.7
	}
	n := len(t.Sites)
	if n == 0 {
		return 0
	}
	if target < n {
		target = n
	}
	w := stats.Weibull{Shape: shape, Scale: 1}
	r := stats.NewRand(seed)
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		v := w.Sample(r)
		if v < 1e-6 {
			v = 1e-6
		}
		weights[i] = v
		sum += v
	}
	counts := make([]int, n)
	attached := 0
	for i, wt := range weights {
		c := int(math.Round(wt / sum * float64(target)))
		if c < 1 {
			c = 1
		}
		counts[i] = c
		attached += c
	}
	for i := 0; attached > target; i = (i + 1) % n {
		if counts[i] > 1 {
			counts[i]--
			attached--
		}
	}
	for i := 0; attached < target; i = (i + 1) % n {
		counts[i]++
		attached++
	}
	for s, c := range counts {
		for i := 0; i < c; i++ {
			t.AddEndpoint(SiteID(s), fmt.Sprintf("ins-%d-%d", s, i))
		}
	}
	return attached
}

// AttachEndpointsExact attaches exactly perSite endpoints to every site —
// used by tests and by sweeps that need precise endpoint counts.
func AttachEndpointsExact(t *Topology, perSite int) int {
	for s := range t.Sites {
		for i := 0; i < perSite; i++ {
			t.AddEndpoint(SiteID(s), fmt.Sprintf("ins-%d-%d", s, i))
		}
	}
	return perSite * len(t.Sites)
}
