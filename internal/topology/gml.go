package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"megate/internal/stats"
)

// ParseGML reads a topology in the GML dialect used by the Internet
// Topology Zoo (the source of the paper's Deltacom and Cogentco graphs) and
// returns it as a Topology. Node coordinates come from the Longitude and
// Latitude attributes when present (scaled to kilometres on an equirect
// projection); link attributes (capacity, latency, availability, cost) are
// synthesized the same way as the built-in generators, deterministically
// from the seed, since the Zoo does not publish them.
//
// Only the subset of GML the Zoo uses is understood: a `graph [ ... ]`
// block with `node [ id N label "..." ... ]` and `edge [ source A target B
// ... ]` entries. Duplicate edges collapse to one physical link; self loops
// are dropped.
func ParseGML(r io.Reader, name string, seed int64) (*Topology, error) {
	type nodeInfo struct {
		label    string
		lon, lat float64
		hasPos   bool
	}
	nodes := make(map[int]*nodeInfo)
	var nodeOrder []int
	type edgeInfo struct{ src, dst int }
	var edges []edgeInfo

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// A tiny tokenizer: GML is whitespace-separated words plus quoted
	// strings.
	var tokens []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		for len(line) > 0 {
			line = strings.TrimLeft(line, " \t\r")
			if line == "" {
				break
			}
			if line[0] == '"' {
				end := strings.IndexByte(line[1:], '"')
				if end < 0 {
					return nil, fmt.Errorf("topology: unterminated GML string: %q", line)
				}
				tokens = append(tokens, line[:end+2])
				line = line[end+2:]
				continue
			}
			sp := strings.IndexAny(line, " \t")
			if sp < 0 {
				tokens = append(tokens, line)
				break
			}
			tokens = append(tokens, line[:sp])
			line = line[sp:]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Parse node/edge blocks with a small state machine over tokens.
	i := 0
	next := func() (string, bool) {
		if i >= len(tokens) {
			return "", false
		}
		t := tokens[i]
		i++
		return t, true
	}
	var parseBlock func(kind string) error
	parseBlock = func(kind string) error {
		tok, ok := next()
		if !ok || tok != "[" {
			return fmt.Errorf("topology: expected [ after %s, got %q", kind, tok)
		}
		var cur nodeInfo
		id := -1
		var src, dst = -1, -1
		depth := 1
		for depth > 0 {
			tok, ok := next()
			if !ok {
				return fmt.Errorf("topology: unterminated %s block", kind)
			}
			switch tok {
			case "[":
				depth++
			case "]":
				depth--
			case "id":
				v, _ := next()
				id, _ = strconv.Atoi(v)
			case "label":
				v, _ := next()
				cur.label = strings.Trim(v, `"`)
			case "Longitude":
				v, _ := next()
				cur.lon, _ = strconv.ParseFloat(v, 64)
				cur.hasPos = true
			case "Latitude":
				v, _ := next()
				cur.lat, _ = strconv.ParseFloat(v, 64)
				cur.hasPos = true
			case "source":
				v, _ := next()
				src, _ = strconv.Atoi(v)
			case "target":
				v, _ := next()
				dst, _ = strconv.Atoi(v)
			default:
				// Attribute we do not use: skip its value (which may be a
				// nested block).
				v, ok := next()
				if ok && v == "[" {
					d := 1
					for d > 0 {
						t, ok := next()
						if !ok {
							return fmt.Errorf("topology: unterminated attribute block")
						}
						if t == "[" {
							d++
						} else if t == "]" {
							d--
						}
					}
				}
			}
		}
		switch kind {
		case "node":
			if id < 0 {
				return fmt.Errorf("topology: node without id")
			}
			n := cur
			nodes[id] = &n
			nodeOrder = append(nodeOrder, id)
		case "edge":
			if src < 0 || dst < 0 {
				return fmt.Errorf("topology: edge without source/target")
			}
			edges = append(edges, edgeInfo{src, dst})
		}
		return nil
	}

	sawGraph := false
	for {
		tok, ok := next()
		if !ok {
			break
		}
		switch tok {
		case "graph":
			sawGraph = true
			if t, ok := next(); !ok || t != "[" {
				return nil, fmt.Errorf("topology: expected [ after graph")
			}
		case "node", "edge":
			if err := parseBlock(tok); err != nil {
				return nil, err
			}
		}
	}
	if !sawGraph {
		return nil, fmt.Errorf("topology: no graph block found")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("topology: GML contains no nodes")
	}

	topo := New(name)
	idMap := make(map[int]SiteID, len(nodes))
	for _, id := range nodeOrder {
		n := nodes[id]
		label := n.label
		if label == "" {
			label = fmt.Sprintf("%s-%d", name, id)
		}
		// Equirectangular projection: ~111 km per degree latitude.
		x, y := 0.0, 0.0
		if n.hasPos {
			x = n.lon * 111 * 0.7 // rough mid-latitude cos factor
			y = n.lat * 111
		}
		idMap[id] = topo.AddSite(label, x, y)
	}

	r2 := stats.NewRand(seed)
	seen := map[[2]SiteID]bool{}
	for _, e := range edges {
		a, okA := idMap[e.src]
		b, okB := idMap[e.dst]
		if !okA || !okB {
			return nil, fmt.Errorf("topology: edge references unknown node %d or %d", e.src, e.dst)
		}
		if a == b {
			continue
		}
		key := [2]SiteID{a, b}
		if a > b {
			key = [2]SiteID{b, a}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		addPhysicalLink(topo, r2, a, b)
	}
	return topo, nil
}
