// Package topology models the two-layer network MegaTE operates on (§4.2,
// Figure 5): a meshed first layer of router sites interconnected by
// capacitated WAN links, and a second layer of virtual-instance endpoints,
// each attached to exactly one site.
//
// Links are directed; an undirected physical link is represented by two
// directed links with equal attributes. Capacities are in Mbps, latencies in
// milliseconds, availability as a fraction in (0, 1], and cost in dollars per
// Gbps-month.
package topology

import (
	"fmt"
	"math"
)

// SiteID identifies a router site.
type SiteID int

// LinkID identifies a directed link by index into Topology.Links.
type LinkID int

// EndpointID identifies a virtual-instance endpoint.
type EndpointID int

// Site is a router site (point of presence) in the WAN.
type Site struct {
	ID   SiteID
	Name string
	// X, Y are planar coordinates in kilometres, used by the synthetic
	// builders to derive propagation latency.
	X, Y float64
}

// Link is a directed WAN link between two sites.
type Link struct {
	ID           LinkID
	From, To     SiteID
	CapacityMbps float64
	LatencyMs    float64
	// Availability is the long-run fraction of time the link is up.
	Availability float64
	// CostPerGbps is the monetary cost of carrying 1 Gbps over this link.
	CostPerGbps float64
	// Down marks a failed link (§6.3). Failed links keep their attributes
	// but are skipped during tunnel establishment and carry no traffic.
	Down bool
}

// Endpoint is a virtual-instance endpoint (VM or container NIC) attached to
// one site. Endpoint-to-site links are assumed uncapacitated (§4.1: "the
// capacity of the edges between the endpoint and the site is sufficient").
type Endpoint struct {
	ID   EndpointID
	Site SiteID
	// Instance is the tenant virtual-instance identifier (ins_id in §5.1).
	Instance string
}

// Topology is the full two-layer graph.
type Topology struct {
	Name      string
	Sites     []Site
	Links     []Link
	Endpoints []Endpoint

	// out[s] lists the IDs of links leaving site s.
	out [][]LinkID
	// endpointsBySite[s] lists endpoints attached to site s.
	endpointsBySite [][]EndpointID
}

// New returns an empty topology with the given name.
func New(name string) *Topology {
	return &Topology{Name: name}
}

// AddSite appends a site and returns its ID.
func (t *Topology) AddSite(name string, x, y float64) SiteID {
	id := SiteID(len(t.Sites))
	t.Sites = append(t.Sites, Site{ID: id, Name: name, X: x, Y: y})
	t.out = append(t.out, nil)
	t.endpointsBySite = append(t.endpointsBySite, nil)
	return id
}

// AddLink appends a directed link and returns its ID. It panics if either
// site does not exist, mirroring slice index panics for programmer errors.
func (t *Topology) AddLink(from, to SiteID, capacityMbps, latencyMs, availability, costPerGbps float64) LinkID {
	if int(from) >= len(t.Sites) || int(to) >= len(t.Sites) || from < 0 || to < 0 {
		panic(fmt.Sprintf("topology: AddLink(%d, %d) with %d sites", from, to, len(t.Sites)))
	}
	id := LinkID(len(t.Links))
	t.Links = append(t.Links, Link{
		ID: id, From: from, To: to,
		CapacityMbps: capacityMbps, LatencyMs: latencyMs,
		Availability: availability, CostPerGbps: costPerGbps,
	})
	t.out[from] = append(t.out[from], id)
	return id
}

// AddBidiLink adds two directed links (one per direction) with identical
// attributes and returns both IDs.
func (t *Topology) AddBidiLink(a, b SiteID, capacityMbps, latencyMs, availability, costPerGbps float64) (LinkID, LinkID) {
	l1 := t.AddLink(a, b, capacityMbps, latencyMs, availability, costPerGbps)
	l2 := t.AddLink(b, a, capacityMbps, latencyMs, availability, costPerGbps)
	return l1, l2
}

// AddEndpoint attaches a new endpoint to a site and returns its ID.
func (t *Topology) AddEndpoint(site SiteID, instance string) EndpointID {
	if int(site) >= len(t.Sites) || site < 0 {
		panic(fmt.Sprintf("topology: AddEndpoint on site %d with %d sites", site, len(t.Sites)))
	}
	id := EndpointID(len(t.Endpoints))
	t.Endpoints = append(t.Endpoints, Endpoint{ID: id, Site: site, Instance: instance})
	t.endpointsBySite[site] = append(t.endpointsBySite[site], id)
	return id
}

// OutLinks returns the IDs of links leaving site s.
func (t *Topology) OutLinks(s SiteID) []LinkID { return t.out[s] }

// EndpointsAt returns the endpoints attached to site s.
func (t *Topology) EndpointsAt(s SiteID) []EndpointID { return t.endpointsBySite[s] }

// NumSites returns the number of router sites.
func (t *Topology) NumSites() int { return len(t.Sites) }

// NumLinks returns the number of directed links.
func (t *Topology) NumLinks() int { return len(t.Links) }

// NumEndpoints returns the number of endpoints.
func (t *Topology) NumEndpoints() int { return len(t.Endpoints) }

// FailLink marks a link (and, if present, its reverse twin) as down.
func (t *Topology) FailLink(id LinkID) {
	t.Links[id].Down = true
	if rev, ok := t.ReverseLink(id); ok {
		t.Links[rev].Down = true
	}
}

// RestoreLink marks a link (and its reverse twin) as up.
func (t *Topology) RestoreLink(id LinkID) {
	t.Links[id].Down = false
	if rev, ok := t.ReverseLink(id); ok {
		t.Links[rev].Down = false
	}
}

// ReverseLink returns the ID of the directed link running opposite to id,
// if one exists.
func (t *Topology) ReverseLink(id LinkID) (LinkID, bool) {
	l := t.Links[id]
	for _, cand := range t.out[l.To] {
		if t.Links[cand].To == l.From {
			return cand, true
		}
	}
	return 0, false
}

// EndpointCountsBySite returns, for each site, how many endpoints attach to
// it — the quantity whose distribution the paper studies in Figure 8.
func (t *Topology) EndpointCountsBySite() []int {
	counts := make([]int, len(t.Sites))
	for _, ep := range t.Endpoints {
		counts[ep.Site]++
	}
	return counts
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation found.
func (t *Topology) Validate() error {
	for _, l := range t.Links {
		if int(l.From) >= len(t.Sites) || int(l.To) >= len(t.Sites) {
			return fmt.Errorf("topology %s: link %d references missing site", t.Name, l.ID)
		}
		if l.From == l.To {
			return fmt.Errorf("topology %s: link %d is a self-loop", t.Name, l.ID)
		}
		if l.CapacityMbps <= 0 || math.IsNaN(l.CapacityMbps) {
			return fmt.Errorf("topology %s: link %d has capacity %v", t.Name, l.ID, l.CapacityMbps)
		}
		if l.LatencyMs < 0 || math.IsNaN(l.LatencyMs) {
			return fmt.Errorf("topology %s: link %d has latency %v", t.Name, l.ID, l.LatencyMs)
		}
		if l.Availability <= 0 || l.Availability > 1 {
			return fmt.Errorf("topology %s: link %d has availability %v", t.Name, l.ID, l.Availability)
		}
	}
	for _, ep := range t.Endpoints {
		if int(ep.Site) >= len(t.Sites) {
			return fmt.Errorf("topology %s: endpoint %d references missing site", t.Name, ep.ID)
		}
	}
	return nil
}

// Connected reports whether every site can reach every other site over
// non-failed links.
func (t *Topology) Connected() bool {
	if len(t.Sites) == 0 {
		return true
	}
	seen := make([]bool, len(t.Sites))
	stack := []SiteID{0}
	seen[0] = true
	visited := 1
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range t.out[s] {
			l := t.Links[lid]
			if l.Down || seen[l.To] {
				continue
			}
			seen[l.To] = true
			visited++
			stack = append(stack, l.To)
		}
	}
	return visited == len(t.Sites)
}
