package topology

import (
	"hash/fnv"
	"math"
)

// Fingerprint hashes the topology structure that tunnel establishment
// depends on: the site count and every link's endpoints, latency, capacity,
// and Down flag. Two topologies with equal fingerprints yield identical
// KShortestPaths/KDiversePaths results, so callers can key tunnel-set caches
// on it and rebuild only when the fingerprint moves (link failure, latency
// reweighting, capacity change). Endpoints are excluded — attaching
// endpoints never changes site-level tunnels.
func (t *Topology) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }

	w64(uint64(len(t.Sites)))
	w64(uint64(len(t.Links)))
	for i := range t.Links {
		l := &t.Links[i]
		w64(uint64(l.From))
		w64(uint64(l.To))
		wf(l.LatencyMs)
		wf(l.CapacityMbps)
		if l.Down {
			w64(1)
		} else {
			w64(0)
		}
	}
	return h.Sum64()
}
