package topology

import "testing"

func TestFingerprintStableAndSensitive(t *testing.T) {
	topo := triangle(t)
	fp := topo.Fingerprint()
	if topo.Fingerprint() != fp {
		t.Fatal("fingerprint not deterministic")
	}
	// An identically-built topology hashes identically.
	if triangle(t).Fingerprint() != fp {
		t.Error("identical topology hashes differently")
	}
	// Attaching endpoints never changes site-level tunnels, so it must not
	// move the fingerprint.
	AttachEndpointsExact(topo, 3)
	if topo.Fingerprint() != fp {
		t.Error("endpoint attachment moved the fingerprint")
	}
	// A failed link must.
	topo.Links[0].Down = true
	down := topo.Fingerprint()
	if down == fp {
		t.Error("link failure did not move the fingerprint")
	}
	topo.Links[0].Down = false
	if topo.Fingerprint() != fp {
		t.Error("recovery did not restore the fingerprint")
	}
	// Latency reweighting changes tunnel selection, so it must move it too.
	topo.Links[1].LatencyMs += 5
	if topo.Fingerprint() == fp {
		t.Error("latency change did not move the fingerprint")
	}
}
