package topology

import (
	"testing"
)

func triangle(t *testing.T) *Topology {
	t.Helper()
	topo := New("tri")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 100, 0)
	c := topo.AddSite("c", 50, 100)
	topo.AddBidiLink(a, b, 1000, 1, 0.999, 1)
	topo.AddBidiLink(b, c, 1000, 2, 0.999, 1)
	topo.AddBidiLink(a, c, 1000, 5, 0.999, 1)
	return topo
}

func TestAddSiteLinkEndpoint(t *testing.T) {
	topo := triangle(t)
	if topo.NumSites() != 3 || topo.NumLinks() != 6 {
		t.Fatalf("sites=%d links=%d", topo.NumSites(), topo.NumLinks())
	}
	ep := topo.AddEndpoint(0, "vm-1")
	if topo.NumEndpoints() != 1 || topo.Endpoints[ep].Site != 0 {
		t.Fatal("endpoint not attached")
	}
	if got := topo.EndpointsAt(0); len(got) != 1 || got[0] != ep {
		t.Fatalf("EndpointsAt(0) = %v", got)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddLinkPanicsOnMissingSite(t *testing.T) {
	topo := New("x")
	topo.AddSite("a", 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	topo.AddLink(0, 5, 1, 1, 1, 1)
}

func TestAddEndpointPanicsOnMissingSite(t *testing.T) {
	topo := New("x")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	topo.AddEndpoint(3, "vm")
}

func TestValidateCatchesBadLinks(t *testing.T) {
	topo := New("bad")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 1, 0)
	topo.AddLink(a, b, 1000, 1, 0.99, 1)
	topo.Links[0].CapacityMbps = -5
	if err := topo.Validate(); err == nil {
		t.Error("want error for negative capacity")
	}
	topo.Links[0].CapacityMbps = 1000
	topo.Links[0].Availability = 1.5
	if err := topo.Validate(); err == nil {
		t.Error("want error for availability > 1")
	}
}

func TestReverseLink(t *testing.T) {
	topo := triangle(t)
	l1, l2 := LinkID(0), LinkID(1) // a->b, b->a
	if rev, ok := topo.ReverseLink(l1); !ok || rev != l2 {
		t.Fatalf("ReverseLink(%d) = %d, %v", l1, rev, ok)
	}
}

func TestFailRestoreLink(t *testing.T) {
	topo := triangle(t)
	topo.FailLink(0)
	if !topo.Links[0].Down || !topo.Links[1].Down {
		t.Fatal("both directions should fail together")
	}
	if !topo.Connected() {
		t.Fatal("triangle minus one edge should stay connected")
	}
	topo.RestoreLink(0)
	if topo.Links[0].Down || topo.Links[1].Down {
		t.Fatal("restore should bring both directions up")
	}
}

func TestConnectedDetectsPartition(t *testing.T) {
	topo := New("line")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 1, 0)
	topo.AddBidiLink(a, b, 1000, 1, 0.999, 1)
	if !topo.Connected() {
		t.Fatal("line should be connected")
	}
	topo.FailLink(0)
	if topo.Connected() {
		t.Fatal("failed only link should partition")
	}
}

func TestShortestPathDirect(t *testing.T) {
	topo := triangle(t)
	links, dist, ok := topo.ShortestPath(0, 2, nil, nil)
	if !ok {
		t.Fatal("no path")
	}
	// a->b (1ms) + b->c (2ms) = 3ms beats a->c direct (5ms).
	if dist != 3 || len(links) != 2 {
		t.Fatalf("dist=%v links=%v", dist, links)
	}
}

func TestShortestPathAvoidsFailedLink(t *testing.T) {
	topo := triangle(t)
	// Fail a->b so the path must go direct.
	topo.FailLink(0)
	_, dist, ok := topo.ShortestPath(0, 2, nil, nil)
	if !ok || dist != 5 {
		t.Fatalf("dist=%v ok=%v, want 5ms direct", dist, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	topo := New("two")
	topo.AddSite("a", 0, 0)
	topo.AddSite("b", 1, 0)
	if _, _, ok := topo.ShortestPath(0, 1, nil, nil); ok {
		t.Fatal("want unreachable")
	}
}

func TestKShortestPathsOrderAndDistinct(t *testing.T) {
	topo := triangle(t)
	paths := topo.KShortestPaths(0, 2, 4)
	if len(paths) < 2 {
		t.Fatalf("want >= 2 paths, got %d", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Weight < paths[i-1].Weight {
			t.Fatalf("paths out of order: %v then %v", paths[i-1], paths[i])
		}
		if sameLinks(paths[i].Links, paths[i-1].Links) {
			t.Fatal("duplicate paths")
		}
	}
	if paths[0].Weight != 3 {
		t.Fatalf("best path weight %v, want 3", paths[0].Weight)
	}
	// Each path's Sites must be consistent with its links.
	for _, p := range paths {
		if p.Sites[0] != 0 || p.Sites[len(p.Sites)-1] != 2 {
			t.Fatalf("endpoints wrong for %v", p)
		}
		for i, lid := range p.Links {
			if topo.Links[lid].From != p.Sites[i] || topo.Links[lid].To != p.Sites[i+1] {
				t.Fatalf("sites inconsistent with links in %v", p)
			}
		}
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	topo := Build("Deltacom*")
	paths := topo.KShortestPaths(0, SiteID(topo.NumSites()-1), 4)
	if len(paths) == 0 {
		t.Fatal("no paths in connected topology")
	}
	for _, p := range paths {
		seen := map[SiteID]bool{}
		for _, s := range p.Sites {
			if seen[s] {
				t.Fatalf("path %v revisits site %d", p, s)
			}
			seen[s] = true
		}
	}
}

func TestKShortestPathsEdgeCases(t *testing.T) {
	topo := triangle(t)
	if got := topo.KShortestPaths(0, 0, 3); got != nil {
		t.Error("src==dst should yield nil")
	}
	if got := topo.KShortestPaths(0, 1, 0); got != nil {
		t.Error("k=0 should yield nil")
	}
}

func TestTunnelUsesAndMetrics(t *testing.T) {
	topo := triangle(t)
	paths := topo.KShortestPaths(0, 2, 1)
	p := paths[0]
	if !p.Uses(p.Links[0]) {
		t.Error("Uses should find its own link")
	}
	if p.Uses(LinkID(99)) {
		t.Error("Uses found a bogus link")
	}
	if a := p.Availability(topo); a <= 0 || a > 1 {
		t.Errorf("availability = %v", a)
	}
	if c := p.CostPerGbps(topo); c <= 0 {
		t.Errorf("cost = %v", c)
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestTunnelSetCachesAndInvalidates(t *testing.T) {
	topo := triangle(t)
	ts := NewTunnelSet(topo, 3)
	p1 := ts.For(0, 2)
	p2 := ts.For(0, 2)
	if &p1[0] != &p2[0] {
		t.Error("second call should hit the cache")
	}
	ts.Invalidate()
	topo.FailLink(0)
	p3 := ts.For(0, 2)
	for _, p := range p3 {
		for _, l := range p.Links {
			if topo.Links[l].Down {
				t.Error("tunnel over failed link after invalidate")
			}
		}
	}
}

func TestTunnelSetWarm(t *testing.T) {
	topo := triangle(t)
	ts := NewTunnelSet(topo, 2)
	ts.Warm([][2]SiteID{{0, 1}, {0, 2}, {1, 2}})
	if len(ts.m) != 3 {
		t.Fatalf("warmed %d pairs, want 3", len(ts.m))
	}
}

func TestBuildB4MatchesTable2(t *testing.T) {
	topo := BuildB4()
	if topo.NumSites() != 12 {
		t.Errorf("B4 sites = %d, want 12", topo.NumSites())
	}
	if topo.NumLinks() != 2*19 {
		t.Errorf("B4 directed links = %d, want 38", topo.NumLinks())
	}
	if !topo.Connected() {
		t.Error("B4 should be connected")
	}
	if err := topo.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildSpecsMatchTable2(t *testing.T) {
	for _, s := range Specs {
		topo := Build(s.Name)
		if topo.NumSites() != s.Sites {
			t.Errorf("%s sites = %d, want %d", s.Name, topo.NumSites(), s.Sites)
		}
		if topo.NumLinks() != 2*s.Links {
			t.Errorf("%s directed links = %d, want %d", s.Name, topo.NumLinks(), 2*s.Links)
		}
		if !topo.Connected() {
			t.Errorf("%s should be connected", s.Name)
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestBuildUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Build("nope")
}

func TestBuildDeterministic(t *testing.T) {
	a := Build("TWAN")
	b := Build("TWAN")
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("nondeterministic build")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs between builds", i)
		}
	}
}

func TestAttachEndpointsWeibullSpread(t *testing.T) {
	topo := Build("Deltacom*")
	total := AttachEndpoints(topo, 100, 0.7, 42)
	if total != topo.NumEndpoints() {
		t.Fatalf("returned %d, have %d", total, topo.NumEndpoints())
	}
	counts := topo.EndpointCountsBySite()
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		if c < 1 {
			t.Fatal("site with zero endpoints")
		}
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	// Figure 8: endpoint counts vary over orders of magnitude.
	if maxC < 10*minC {
		t.Errorf("spread too small: min=%d max=%d", minC, maxC)
	}
	// Mean should be in the right ballpark.
	mean := float64(total) / float64(len(counts))
	if mean < 30 || mean > 300 {
		t.Errorf("mean endpoints per site = %v, want ~100", mean)
	}
}

func TestAttachEndpointsExact(t *testing.T) {
	topo := BuildB4()
	n := AttachEndpointsExact(topo, 10)
	if n != 120 || topo.NumEndpoints() != 120 {
		t.Fatalf("attached %d, want 120", n)
	}
	for _, c := range topo.EndpointCountsBySite() {
		if c != 10 {
			t.Fatalf("count %d, want 10", c)
		}
	}
}

func TestEndpointCountsBySite(t *testing.T) {
	topo := triangle(t)
	topo.AddEndpoint(1, "x")
	topo.AddEndpoint(1, "y")
	topo.AddEndpoint(2, "z")
	counts := topo.EndpointCountsBySite()
	if counts[0] != 0 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func BenchmarkKDiversePathsDeltacom(b *testing.B) {
	topo := Build("Deltacom*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := SiteID(i % topo.NumSites())
		dst := SiteID((i*37 + 13) % topo.NumSites())
		if src == dst {
			continue
		}
		topo.KDiversePaths(src, dst, 4)
	}
}

func BenchmarkShortestPathCogentco(b *testing.B) {
	topo := Build("Cogentco*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := SiteID(i % topo.NumSites())
		dst := SiteID((i*53 + 7) % topo.NumSites())
		if src == dst {
			continue
		}
		topo.ShortestPath(src, dst, nil, nil)
	}
}

func TestAttachEndpointsTarget(t *testing.T) {
	for _, target := range []int{50, 5000, 250000} {
		topo := Build("TWAN")
		got := AttachEndpointsTarget(topo, target, 0.7, 7)
		want := target
		if want < len(topo.Sites) {
			want = len(topo.Sites)
		}
		if got != want || topo.NumEndpoints() != want {
			t.Fatalf("target %d: attached %d (topo has %d), want %d", target, got, topo.NumEndpoints(), want)
		}
		minC, maxC := -1, 0
		for _, c := range topo.EndpointCountsBySite() {
			if c < 1 {
				t.Fatal("site with zero endpoints")
			}
			if minC < 0 || c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		// The Weibull spread survives the normalization at real scales.
		if target >= 5000 && maxC < 10*minC {
			t.Errorf("target %d: spread too small: min=%d max=%d", target, minC, maxC)
		}
	}
}
