package ebpf

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[string, int]("test", 0)
	if m.Name() != "test" {
		t.Error("name")
	}
	if _, ok := m.Lookup("a"); ok {
		t.Error("lookup on empty map")
	}
	if err := m.Update("a", 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Lookup("a"); !ok || v != 1 {
		t.Errorf("lookup = %v, %v", v, ok)
	}
	m.Delete("a")
	if m.Len() != 0 {
		t.Error("delete failed")
	}
	m.Delete("missing") // no-op
}

func TestMapMaxEntries(t *testing.T) {
	m := NewMap[int, int]("small", 2)
	if err := m.Update(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(3, 3); !errors.Is(err, ErrMapFull) {
		t.Fatalf("err = %v, want ErrMapFull", err)
	}
	// Overwriting an existing key is always allowed.
	if err := m.Update(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateFunc(4, func(old int, _ bool) int { return old + 1 }); !errors.Is(err, ErrMapFull) {
		t.Fatalf("UpdateFunc err = %v, want ErrMapFull", err)
	}
}

func TestMapUpdateFuncAccumulates(t *testing.T) {
	m := NewMap[string, uint64]("traffic", 0)
	for i := 0; i < 5; i++ {
		if err := m.UpdateFunc("flow", func(old uint64, _ bool) uint64 { return old + 100 }); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := m.Lookup("flow"); v != 500 {
		t.Errorf("accumulated %d, want 500", v)
	}
}

func TestMapIterateAndDrain(t *testing.T) {
	m := NewMap[int, int]("iter", 0)
	for i := 0; i < 10; i++ {
		m.Update(i, i*i)
	}
	n := 0
	m.Iterate(func(k, v int) bool {
		if v != k*k {
			t.Errorf("entry %d = %d", k, v)
		}
		n++
		return true
	})
	if n != 10 {
		t.Errorf("iterated %d entries", n)
	}
	// Early stop.
	n = 0
	m.Iterate(func(k, v int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop iterated %d", n)
	}
	got := m.Drain()
	if len(got) != 10 || m.Len() != 0 {
		t.Errorf("drain left %d entries, returned %d", m.Len(), len(got))
	}
}

func TestMapConcurrent(t *testing.T) {
	m := NewMap[int, uint64]("conc", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.UpdateFunc(i%16, func(old uint64, _ bool) uint64 { return old + 1 })
			}
		}()
	}
	wg.Wait()
	total := uint64(0)
	m.Iterate(func(_ int, v uint64) bool { total += v; return true })
	if total != 8000 {
		t.Errorf("lost updates: %d, want 8000", total)
	}
}

func TestKernelExecveDispatch(t *testing.T) {
	k := NewKernel()
	var got []ExecveEvent
	link := k.AttachExecve(func(ev ExecveEvent) { got = append(got, ev) })
	k.Execve(42, "ins-1")
	if len(got) != 1 || got[0].PID != 42 || got[0].Instance != "ins-1" {
		t.Fatalf("events = %+v", got)
	}
	link.Close()
	k.Execve(43, "ins-2")
	if len(got) != 1 {
		t.Error("program ran after detach")
	}
	link.Close() // double close is safe
}

func TestKernelConntrackDispatch(t *testing.T) {
	k := NewKernel()
	var tuple [13]byte
	tuple[0] = 9
	got := 0
	link := k.AttachConntrack(func(ev ConntrackEvent) {
		if ev.Tuple != tuple || ev.PID != 7 {
			t.Errorf("event = %+v", ev)
		}
		got++
	})
	defer link.Close()
	k.ConntrackNew(7, tuple)
	if got != 1 {
		t.Errorf("dispatched %d", got)
	}
}

func TestKernelTCChainOrderAndRewrite(t *testing.T) {
	k := NewKernel()
	l1 := k.AttachTCEgress(func(f []byte) ([]byte, TCVerdict) {
		return append(f, 'a'), TCPass
	})
	defer l1.Close()
	l2 := k.AttachTCEgress(func(f []byte) ([]byte, TCVerdict) {
		return append(f, 'b'), TCPass
	})
	defer l2.Close()
	out, ok := k.EgressPacket([]byte("x"))
	if !ok || string(out) != "xab" {
		t.Fatalf("out = %q, ok=%v", out, ok)
	}
}

func TestKernelTCDrop(t *testing.T) {
	k := NewKernel()
	ran := false
	l1 := k.AttachTCEgress(func(f []byte) ([]byte, TCVerdict) { return f, TCDrop })
	defer l1.Close()
	l2 := k.AttachTCEgress(func(f []byte) ([]byte, TCVerdict) { ran = true; return f, TCPass })
	defer l2.Close()
	out, ok := k.EgressPacket([]byte("x"))
	if ok || out != nil {
		t.Error("dropped packet should not transmit")
	}
	if ran {
		t.Error("later program ran after drop")
	}
}

func TestKernelTCDetachMiddle(t *testing.T) {
	k := NewKernel()
	l1 := k.AttachTCEgress(func(f []byte) ([]byte, TCVerdict) { return append(f, '1'), TCPass })
	l2 := k.AttachTCEgress(func(f []byte) ([]byte, TCVerdict) { return append(f, '2'), TCPass })
	l3 := k.AttachTCEgress(func(f []byte) ([]byte, TCVerdict) { return append(f, '3'), TCPass })
	defer l1.Close()
	defer l3.Close()
	l2.Close()
	out, _ := k.EgressPacket(nil)
	if string(out) != "13" {
		t.Errorf("out = %q, want 13", out)
	}
}

func TestKernelNoPrograms(t *testing.T) {
	k := NewKernel()
	out, ok := k.EgressPacket([]byte("pass"))
	if !ok || string(out) != "pass" {
		t.Error("no programs should pass frames through")
	}
	k.Execve(1, "x")              // no panic
	k.ConntrackNew(1, [13]byte{}) // no panic
}

// Property: a Drain returns exactly what was written.
func TestMapDrainProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		m := NewMap[uint8, int]("p", 0)
		want := map[uint8]int{}
		for i, k := range keys {
			m.Update(k, i)
			want[k] = i
		}
		got := m.Drain()
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return m.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
