// Package ebpf simulates the Linux eBPF machinery MegaTE's host stack runs
// on (§5.1, Figure 6): typed maps shared between "kernel" programs and user
// space, programs attached to hooks (an execve tracepoint, a conntrack
// kprobe, and TC egress), and a Kernel that raises events into the attached
// programs.
//
// The real system compiles C to BPF bytecode and loads it with bpf2go; here
// programs are Go closures, but the object lifecycle follows the ebpf-go
// discipline from the networking guides: attaching returns a Link whose
// Close detaches the program, and maps enforce a max-entries bound just as
// the verifier-checked kernel maps do.
package ebpf

import (
	"fmt"
	"sort"
	"sync"
)

// ErrMapFull is returned by Update when a map is at MaxEntries and the key
// is new — the E2BIG the kernel returns for full hash maps.
var ErrMapFull = fmt.Errorf("ebpf: map full")

// Map is a generic key-value store analogous to a BPF_MAP_TYPE_HASH. It is
// safe for concurrent use: the kernel may run multiple program instances in
// parallel, so map access is synchronized exactly as BPF maps are.
type Map[K comparable, V any] struct {
	name       string
	maxEntries int

	mu sync.RWMutex
	m  map[K]V
}

// NewMap creates a named map bounded to maxEntries (0 means unbounded,
// which production maps avoid but tests appreciate).
func NewMap[K comparable, V any](name string, maxEntries int) *Map[K, V] {
	return &Map[K, V]{name: name, maxEntries: maxEntries, m: make(map[K]V)}
}

// Name returns the map's name as it would appear in bpffs.
func (m *Map[K, V]) Name() string { return m.name }

// Lookup returns the value for k.
func (m *Map[K, V]) Lookup(k K) (V, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.m[k]
	return v, ok
}

// Update inserts or overwrites the value for k.
func (m *Map[K, V]) Update(k K, v V) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.m[k]; !exists && m.maxEntries > 0 && len(m.m) >= m.maxEntries {
		return fmt.Errorf("%w: %s at %d entries", ErrMapFull, m.name, m.maxEntries)
	}
	m.m[k] = v
	return nil
}

// UpdateFunc atomically transforms the value at k (creating it from the
// zero value if absent) — the __sync_fetch_and_add pattern.
func (m *Map[K, V]) UpdateFunc(k K, fn func(old V, exists bool) V) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	old, exists := m.m[k]
	if !exists && m.maxEntries > 0 && len(m.m) >= m.maxEntries {
		return fmt.Errorf("%w: %s at %d entries", ErrMapFull, m.name, m.maxEntries)
	}
	m.m[k] = fn(old, exists)
	return nil
}

// Delete removes k; deleting an absent key is a no-op as in the kernel.
func (m *Map[K, V]) Delete(k K) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.m, k)
}

// Len returns the entry count.
func (m *Map[K, V]) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.m)
}

// Iterate calls fn for each entry until it returns false. The iteration
// order is unspecified, like bpf_map_get_next_key.
func (m *Map[K, V]) Iterate(fn func(k K, v V) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for k, v := range m.m {
		if !fn(k, v) {
			return
		}
	}
}

// Drain returns all entries and clears the map atomically — the user-space
// "read and reset" collection pattern the endpoint agent uses per TE
// period.
func (m *Map[K, V]) Drain() map[K]V {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.m
	m.m = make(map[K]V)
	return out
}

// TCVerdict is a traffic-control program's decision.
type TCVerdict int

// TC verdicts (TC_ACT_OK / TC_ACT_SHOT).
const (
	TCPass TCVerdict = iota
	TCDrop
)

// ExecveEvent fires on the syscalls/sys_enter_execve tracepoint: a process
// of a virtual instance started.
type ExecveEvent struct {
	PID      int
	Instance string
}

// ConntrackEvent fires on the kprobe at ctnetlink_conntrack_event: a
// process created a connection with the given five tuple. The tuple is kept
// opaque ([13]byte key form) at this layer; the host stack packs and
// unpacks it.
type ConntrackEvent struct {
	PID   int
	Tuple [13]byte
}

// Programs attachable to hooks.
type (
	// ExecveProgram observes process starts.
	ExecveProgram func(ExecveEvent)
	// ConntrackProgram observes new connections.
	ConntrackProgram func(ConntrackEvent)
	// TCProgram inspects (and may rewrite) an egress frame. It returns the
	// frame to transmit — possibly reallocated, e.g. after inserting an SR
	// header — and a verdict.
	TCProgram func(frame []byte) ([]byte, TCVerdict)
)

// Link represents an attached program; Close detaches it (the ebpf-go
// object lifecycle).
type Link struct {
	once   sync.Once
	detach func()
}

// Close detaches the program. Closing twice is safe.
func (l *Link) Close() {
	l.once.Do(l.detach)
}

// Kernel dispatches simulated kernel events into attached programs.
type Kernel struct {
	mu        sync.RWMutex
	nextID    int
	execve    map[int]ExecveProgram
	conntrack map[int]ConntrackProgram
	tcEgress  map[int]TCProgram
	tcOrder   []int
}

// NewKernel returns an empty kernel with no programs attached.
func NewKernel() *Kernel {
	return &Kernel{
		execve:    make(map[int]ExecveProgram),
		conntrack: make(map[int]ConntrackProgram),
		tcEgress:  make(map[int]TCProgram),
	}
}

// AttachExecve attaches p to the execve tracepoint.
func (k *Kernel) AttachExecve(p ExecveProgram) *Link {
	k.mu.Lock()
	defer k.mu.Unlock()
	id := k.nextID
	k.nextID++
	k.execve[id] = p
	return &Link{detach: func() {
		k.mu.Lock()
		defer k.mu.Unlock()
		delete(k.execve, id)
	}}
}

// AttachConntrack attaches p to the conntrack kprobe.
func (k *Kernel) AttachConntrack(p ConntrackProgram) *Link {
	k.mu.Lock()
	defer k.mu.Unlock()
	id := k.nextID
	k.nextID++
	k.conntrack[id] = p
	return &Link{detach: func() {
		k.mu.Lock()
		defer k.mu.Unlock()
		delete(k.conntrack, id)
	}}
}

// AttachTCEgress attaches p to the TC egress hook. Programs run in
// attachment order, each seeing the previous program's (possibly
// rewritten) frame.
func (k *Kernel) AttachTCEgress(p TCProgram) *Link {
	k.mu.Lock()
	defer k.mu.Unlock()
	id := k.nextID
	k.nextID++
	k.tcEgress[id] = p
	k.tcOrder = append(k.tcOrder, id)
	return &Link{detach: func() {
		k.mu.Lock()
		defer k.mu.Unlock()
		delete(k.tcEgress, id)
		for i, oid := range k.tcOrder {
			if oid == id {
				k.tcOrder = append(k.tcOrder[:i], k.tcOrder[i+1:]...)
				break
			}
		}
	}}
}

// Execve raises a process-start event. Programs run in attachment order
// (ascending id), matching how the kernel iterates a tracepoint's program
// array.
func (k *Kernel) Execve(pid int, instance string) {
	k.mu.RLock()
	ids := make([]int, 0, len(k.execve))
	for id := range k.execve {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	progs := make([]ExecveProgram, 0, len(ids))
	for _, id := range ids {
		progs = append(progs, k.execve[id])
	}
	k.mu.RUnlock()
	ev := ExecveEvent{PID: pid, Instance: instance}
	for _, p := range progs {
		p(ev)
	}
}

// ConntrackNew raises a new-connection event, dispatching in attachment
// order like Execve.
func (k *Kernel) ConntrackNew(pid int, tuple [13]byte) {
	k.mu.RLock()
	ids := make([]int, 0, len(k.conntrack))
	for id := range k.conntrack {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	progs := make([]ConntrackProgram, 0, len(ids))
	for _, id := range ids {
		progs = append(progs, k.conntrack[id])
	}
	k.mu.RUnlock()
	ev := ConntrackEvent{PID: pid, Tuple: tuple}
	for _, p := range progs {
		p(ev)
	}
}

// EgressPacket runs the frame through the TC egress chain and returns the
// resulting frame and whether it should be transmitted.
func (k *Kernel) EgressPacket(frame []byte) ([]byte, bool) {
	k.mu.RLock()
	progs := make([]TCProgram, 0, len(k.tcOrder))
	for _, id := range k.tcOrder {
		progs = append(progs, k.tcEgress[id])
	}
	k.mu.RUnlock()
	for _, p := range progs {
		var verdict TCVerdict
		frame, verdict = p(frame)
		if verdict == TCDrop {
			return nil, false
		}
	}
	return frame, true
}
