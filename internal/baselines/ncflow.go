package baselines

import (
	"math"
	"sort"
	"time"

	"megate/internal/lp"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// NCFlow mirrors Abuzaid et al. (NSDI 2021) as described in §6.1: the
// topology is partitioned into disjoint site clusters; intra-cluster
// demands are solved independently per cluster (parallelizable), and
// inter-cluster demands are solved on a contracted cluster graph whose
// bundled-capacity solution is then reconciled against real links. The
// reconciliation and bundling steps lose a few percent of demand relative
// to the full LP — the gap Figures 10 and 12 report.
type NCFlow struct {
	// Clusters is the number of partitions; default round(sqrt(sites)).
	Clusters int
	// TunnelsPerPair defaults to 4.
	TunnelsPerPair int
	// MaxFlows bounds problem size (default 500000).
	MaxFlows int
}

// Name implements Scheme.
func (n *NCFlow) Name() string { return "NCFlow" }

// Solve implements Scheme.
func (n *NCFlow) Solve(topo *topology.Topology, m *traffic.Matrix) (*Solution, error) {
	maxFlows := n.MaxFlows
	if maxFlows == 0 {
		maxFlows = 500000
	}
	if err := checkSize(n.Name(), m.NumFlows(), maxFlows); err != nil {
		return nil, err
	}
	tpp := n.TunnelsPerPair
	if tpp == 0 {
		tpp = 4
	}
	nc := n.Clusters
	if nc == 0 {
		nc = int(math.Round(math.Sqrt(float64(topo.NumSites()))))
	}
	if nc < 1 {
		nc = 1
	}

	start := time.Now()
	clusterOf := partitionSites(topo, nc)
	sol := newSolution(n.Name(), m)
	residual := residualCaps(topo)

	// Split flows into intra- and inter-cluster sets.
	var intra, inter []int
	for i := range m.Flows {
		f := &m.Flows[i]
		if clusterOf[f.Pair.Src] == clusterOf[f.Pair.Dst] {
			intra = append(intra, i)
		} else {
			inter = append(inter, i)
		}
	}

	// Phase 1: per-cluster subproblems over cluster-internal links only.
	n.solveIntra(topo, m, clusterOf, nc, intra, residual, sol, tpp)

	// Phase 2: contracted inter-cluster problem -> per-cluster-pair
	// admission budgets and the single cluster path each commodity follows.
	admitted, clusterPath := n.solveContracted(topo, m, clusterOf, nc, inter, tpp)

	// Phase 3: reconciliation — water-fill each admitted inter-cluster flow
	// onto its real tunnels against residual capacity; what does not fit is
	// dropped.
	ts := topology.NewTunnelSet(topo, tpp)
	for _, i := range inter {
		f := &m.Flows[i]
		want := f.DemandMbps * admitted[i]
		if want <= 0 {
			continue
		}
		// NCFlow installs routes along its contracted cluster path; tunnels
		// that follow a different cluster sequence are not available to the
		// flow. This is where NCFlow's latency penalty comes from: the
		// matching tunnels may be detours relative to the site-level
		// shortest path. Non-matching tunnels are used only as a last
		// resort (mimicking default routing for reconciliation leftovers).
		tns := orderByClusterPath(ts.For(f.Pair.Src, f.Pair.Dst), clusterOf, clusterPath[i])
		carried, weighted := 0.0, 0.0
		split := 0
		for _, tn := range tns {
			if want <= 0 {
				break
			}
			room := want
			for _, l := range tn.Links {
				if residual[l] < room {
					room = residual[l]
				}
			}
			if room <= 0 {
				continue
			}
			for _, l := range tn.Links {
				residual[l] -= room
			}
			carried += room
			weighted += room * tn.Weight
			split++
			want -= room
			sol.FlowPlacement[i] = append(sol.FlowPlacement[i], Placement{Tunnel: tn, Mbps: room})
		}
		if carried > 0 {
			sol.FlowFraction[i] = math.Min(1, carried/f.DemandMbps)
			sol.FlowLatency[i] = weighted / carried
			sol.FlowSplit[i] = split
			sol.SatisfiedMbps += math.Min(carried, f.DemandMbps)
		}
	}

	sol.Runtime = time.Since(start)
	return sol, nil
}

// partitionSites grows nc connected clusters by round-robin multi-source
// BFS from spread seeds, so every cluster is connected and balanced.
func partitionSites(topo *topology.Topology, nc int) []int {
	nSites := topo.NumSites()
	clusterOf := make([]int, nSites)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	if nSites == 0 {
		return clusterOf
	}
	if nc > nSites {
		nc = nSites
	}

	// Farthest-point seeds by BFS hop distance.
	seeds := []topology.SiteID{0}
	for len(seeds) < nc {
		dist := bfsHops(topo, seeds)
		far, farD := topology.SiteID(0), -1
		for s, d := range dist {
			if d > farD {
				far, farD = topology.SiteID(s), d
			}
		}
		seeds = append(seeds, far)
	}

	queues := make([][]topology.SiteID, nc)
	for c, s := range seeds {
		if clusterOf[s] == -1 {
			clusterOf[s] = c
			queues[c] = append(queues[c], s)
		}
	}
	assigned := 0
	for _, c := range clusterOf {
		if c != -1 {
			assigned++
		}
	}
	for assigned < nSites {
		progress := false
		for c := 0; c < nc; c++ {
			if len(queues[c]) == 0 {
				continue
			}
			s := queues[c][0]
			queues[c] = queues[c][1:]
			for _, lid := range topo.OutLinks(s) {
				to := topo.Links[lid].To
				if clusterOf[to] == -1 {
					clusterOf[to] = c
					queues[c] = append(queues[c], to)
					assigned++
					progress = true
				}
			}
			// Keep s in rotation while it still has unvisited neighbours.
		}
		if !progress {
			empty := false
			for c := 0; c < nc; c++ {
				if len(queues[c]) > 0 {
					empty = true
				}
			}
			if !empty {
				// Disconnected leftovers: assign to cluster 0.
				for s := range clusterOf {
					if clusterOf[s] == -1 {
						clusterOf[s] = 0
						assigned++
					}
				}
			}
		}
	}
	return clusterOf
}

func bfsHops(topo *topology.Topology, seeds []topology.SiteID) []int {
	dist := make([]int, topo.NumSites())
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	var q []topology.SiteID
	for _, s := range seeds {
		dist[s] = 0
		q = append(q, s)
	}
	for len(q) > 0 {
		s := q[0]
		q = q[1:]
		for _, lid := range topo.OutLinks(s) {
			to := topo.Links[lid].To
			if dist[to] > dist[s]+1 {
				dist[to] = dist[s] + 1
				q = append(q, to)
			}
		}
	}
	return dist
}

// solveIntra runs an endpoint-granular MCF per cluster over the cluster's
// internal links and commits the result to sol and residual.
func (n *NCFlow) solveIntra(topo *topology.Topology, m *traffic.Matrix, clusterOf []int, nc int, intra []int, residual []float64, sol *Solution, tpp int) {
	// Group intra flows by cluster.
	byCluster := make([][]int, nc)
	for _, i := range intra {
		c := clusterOf[m.Flows[i].Pair.Src]
		byCluster[c] = append(byCluster[c], i)
	}
	for c := 0; c < nc; c++ {
		flows := byCluster[c]
		if len(flows) == 0 {
			continue
		}
		sub, siteMap, linkBack := subgraph(topo, clusterOf, c)
		ts := topology.NewTunnelSet(sub, tpp)
		mcf := &lp.MCF{LinkCap: make([]float64, sub.NumLinks())}
		for i, l := range linkBack {
			mcf.LinkCap[i] = residual[l]
		}
		type flowTun struct{ tns []*topology.Tunnel }
		fts := make([]flowTun, len(flows))
		for j, i := range flows {
			f := &m.Flows[i]
			src, dst := siteMap[f.Pair.Src], siteMap[f.Pair.Dst]
			tns := ts.For(src, dst)
			fts[j].tns = tns
			com := lp.Commodity{Demand: f.DemandMbps}
			for _, tn := range tns {
				links := make([]int, len(tn.Links))
				for x, l := range tn.Links {
					links[x] = int(l)
				}
				com.Tunnels = append(com.Tunnels, links)
				com.Weights = append(com.Weights, tn.Weight)
			}
			mcf.Commodities = append(mcf.Commodities, com)
		}
		alloc, err := (&lp.FleischerMCF{Epsilon: 0.05}).SolveMCF(mcf)
		if err != nil {
			continue // an empty subgraph or degenerate cluster carries nothing
		}
		for j, i := range flows {
			f := &m.Flows[i]
			carried, weighted := 0.0, 0.0
			split := 0
			for t, v := range alloc[j] {
				if v <= 0 {
					continue
				}
				carried += v
				weighted += v * fts[j].tns[t].Weight
				split++
				for _, l := range fts[j].tns[t].Links {
					residual[linkBack[l]] -= v
				}
				// Subgraph tunnels reference subgraph link IDs; remap to
				// real links for the placement record.
				realLinks := make([]topology.LinkID, len(fts[j].tns[t].Links))
				for x, l := range fts[j].tns[t].Links {
					realLinks[x] = linkBack[l]
				}
				realTn := &topology.Tunnel{
					Src: m.Flows[i].Pair.Src, Dst: m.Flows[i].Pair.Dst,
					Links: realLinks, Weight: fts[j].tns[t].Weight,
				}
				sol.FlowPlacement[i] = append(sol.FlowPlacement[i], Placement{Tunnel: realTn, Mbps: v})
			}
			if carried > 0 {
				sol.FlowFraction[i] = math.Min(1, carried/f.DemandMbps)
				sol.FlowLatency[i] = weighted / carried
				sol.FlowSplit[i] = split
				sol.SatisfiedMbps += math.Min(carried, f.DemandMbps)
			}
		}
	}
	for i := range residual {
		if residual[i] < 0 {
			residual[i] = 0
		}
	}
}

// subgraph extracts the cluster's induced topology. It returns the
// subtopology, the old->new site map, and per new link the original LinkID.
func subgraph(topo *topology.Topology, clusterOf []int, c int) (*topology.Topology, map[topology.SiteID]topology.SiteID, []topology.LinkID) {
	sub := topology.New(topo.Name + "-cluster")
	siteMap := make(map[topology.SiteID]topology.SiteID)
	for s := range topo.Sites {
		if clusterOf[s] == c {
			ns := sub.AddSite(topo.Sites[s].Name, topo.Sites[s].X, topo.Sites[s].Y)
			siteMap[topology.SiteID(s)] = ns
		}
	}
	var linkBack []topology.LinkID
	for _, l := range topo.Links {
		if l.Down {
			continue
		}
		from, okF := siteMap[l.From]
		to, okT := siteMap[l.To]
		if okF && okT {
			sub.AddLink(from, to, l.CapacityMbps, l.LatencyMs, l.Availability, l.CostPerGbps)
			linkBack = append(linkBack, l.ID)
		}
	}
	return sub, siteMap, linkBack
}

// solveContracted solves the cluster-graph problem and returns, per flow,
// the admitted fraction and the cluster sequence of the commodity's single
// contracted path.
func (n *NCFlow) solveContracted(topo *topology.Topology, m *traffic.Matrix, clusterOf []int, nc int, inter []int, tpp int) ([]float64, [][]int) {
	admitted := make([]float64, m.NumFlows())
	clusterPath := make([][]int, m.NumFlows())
	if len(inter) == 0 {
		return admitted, clusterPath
	}

	// Contracted graph: bundle parallel inter-cluster links.
	type bundleKey struct{ a, b int }
	bundles := map[bundleKey]*struct {
		cap     float64
		latency float64
	}{}
	for _, l := range topo.Links {
		if l.Down {
			continue
		}
		ca, cb := clusterOf[l.From], clusterOf[l.To]
		if ca == cb {
			continue
		}
		key := bundleKey{ca, cb}
		bd := bundles[key]
		if bd == nil {
			bd = &struct {
				cap     float64
				latency float64
			}{latency: math.Inf(1)}
			bundles[key] = bd
		}
		bd.cap += l.CapacityMbps
		if l.LatencyMs < bd.latency {
			bd.latency = l.LatencyMs
		}
	}

	contracted := topology.New("contracted")
	for c := 0; c < nc; c++ {
		contracted.AddSite("cluster", 0, 0)
	}
	keys := make([]bundleKey, 0, len(bundles))
	for k := range bundles {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		bd := bundles[k]
		contracted.AddLink(topology.SiteID(k.a), topology.SiteID(k.b), bd.cap, bd.latency, 1, 0)
	}

	// Aggregate inter flows per cluster pair.
	type cpair struct{ a, b int }
	demand := map[cpair]float64{}
	flowsOf := map[cpair][]int{}
	for _, i := range inter {
		f := &m.Flows[i]
		key := cpair{clusterOf[f.Pair.Src], clusterOf[f.Pair.Dst]}
		demand[key] += f.DemandMbps
		flowsOf[key] = append(flowsOf[key], i)
	}
	cpairs := make([]cpair, 0, len(demand))
	for k := range demand {
		cpairs = append(cpairs, k)
	}
	sort.Slice(cpairs, func(i, j int) bool {
		if cpairs[i].a != cpairs[j].a {
			return cpairs[i].a < cpairs[j].a
		}
		return cpairs[i].b < cpairs[j].b
	})

	cts := topology.NewTunnelSet(contracted, tpp)
	mcf := &lp.MCF{LinkCap: make([]float64, contracted.NumLinks())}
	for i, l := range contracted.Links {
		mcf.LinkCap[i] = l.CapacityMbps
	}
	for _, k := range cpairs {
		com := lp.Commodity{Demand: demand[k]}
		// NCFlow's key simplification: each commodity follows a single path
		// through the contracted cluster graph, which is where its demand
		// loss relative to the full LP comes from.
		tns := cts.For(topology.SiteID(k.a), topology.SiteID(k.b))
		if len(tns) > 1 {
			tns = tns[:1]
		}
		for _, tn := range tns {
			links := make([]int, len(tn.Links))
			for x, l := range tn.Links {
				links[x] = int(l)
			}
			com.Tunnels = append(com.Tunnels, links)
			com.Weights = append(com.Weights, tn.Weight)
		}
		mcf.Commodities = append(mcf.Commodities, com)
	}
	alloc, err := (&lp.FleischerMCF{Epsilon: 0.05}).SolveMCF(mcf)
	if err != nil {
		return admitted, clusterPath
	}
	for ki, k := range cpairs {
		budget := 0.0
		for _, v := range alloc[ki] {
			budget += v
		}
		frac := 0.0
		if demand[k] > 0 {
			frac = math.Min(1, budget/demand[k])
		}
		// The cluster sequence of the commodity's single contracted tunnel.
		var seq []int
		if tns := cts.For(topology.SiteID(k.a), topology.SiteID(k.b)); len(tns) > 0 {
			for _, s := range tns[0].Sites {
				seq = append(seq, int(s))
			}
		}
		for _, i := range flowsOf[k] {
			admitted[i] = frac
			clusterPath[i] = seq
		}
	}
	return admitted, clusterPath
}

// orderByClusterPath reorders a pair's tunnels so that those whose cluster
// sequence matches the contracted path come first (keeping their internal
// weight order), followed by the rest.
func orderByClusterPath(tns []*topology.Tunnel, clusterOf []int, path []int) []*topology.Tunnel {
	if len(path) == 0 {
		return tns
	}
	var match, rest []*topology.Tunnel
	for _, tn := range tns {
		if clusterSeqEqual(tn, clusterOf, path) {
			match = append(match, tn)
		} else {
			rest = append(rest, tn)
		}
	}
	return append(match, rest...)
}

// clusterSeqEqual reports whether the tunnel's site path visits exactly the
// given cluster sequence (consecutive duplicates compressed).
func clusterSeqEqual(tn *topology.Tunnel, clusterOf []int, path []int) bool {
	var seq []int
	for _, s := range tn.Sites {
		c := clusterOf[s]
		if len(seq) == 0 || seq[len(seq)-1] != c {
			seq = append(seq, c)
		}
	}
	if len(seq) != len(path) {
		return false
	}
	for i := range seq {
		if seq[i] != path[i] {
			return false
		}
	}
	return true
}
