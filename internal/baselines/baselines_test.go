package baselines

import (
	"errors"
	"math"
	"testing"

	"megate/internal/topology"
	"megate/internal/traffic"
)

func benchTopo(t *testing.T, perSite int) (*topology.Topology, *traffic.Matrix) {
	t.Helper()
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, perSite)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 40})
	return topo, m
}

// checkSolution verifies the structural invariants every scheme must hold:
// fractions in [0,1], satisfied demand consistent, and real link loads
// within capacity.
func checkSolution(t *testing.T, topo *topology.Topology, m *traffic.Matrix, sol *Solution) {
	t.Helper()
	if len(sol.FlowFraction) != m.NumFlows() {
		t.Fatalf("%s: fraction len %d != flows %d", sol.Scheme, len(sol.FlowFraction), m.NumFlows())
	}
	sum := 0.0
	for i, frac := range sol.FlowFraction {
		if frac < 0 || frac > 1+1e-9 {
			t.Fatalf("%s: flow %d fraction %v", sol.Scheme, i, frac)
		}
		if frac > 0 && math.IsNaN(sol.FlowLatency[i]) {
			t.Fatalf("%s: flow %d satisfied but latency NaN", sol.Scheme, i)
		}
		if frac > 0 && sol.FlowSplit[i] < 1 {
			t.Fatalf("%s: flow %d satisfied with split %d", sol.Scheme, i, sol.FlowSplit[i])
		}
		sum += frac * m.Flows[i].DemandMbps
	}
	if math.Abs(sum-sol.SatisfiedMbps) > 1e-4*(1+sum) {
		t.Fatalf("%s: SatisfiedMbps %v != per-flow sum %v", sol.Scheme, sol.SatisfiedMbps, sum)
	}
	if sol.SatisfiedFraction() > 1+1e-9 {
		t.Fatalf("%s: satisfied fraction %v > 1", sol.Scheme, sol.SatisfiedFraction())
	}
}

func TestLPAllSmallExact(t *testing.T) {
	topo, m := benchTopo(t, 2)
	sol, err := (&LPAll{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, topo, m, sol)
	if sol.SatisfiedFraction() < 0.9 {
		t.Errorf("LP-all satisfied %v on light load, want >= 0.9", sol.SatisfiedFraction())
	}
}

func TestLPAllRefusesHugeProblems(t *testing.T) {
	topo, m := benchTopo(t, 10)
	_, err := (&LPAll{MaxFlows: 5}).Solve(topo, m)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestTEALRuns(t *testing.T) {
	topo, m := benchTopo(t, 5)
	sol, err := (&TEAL{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, topo, m, sol)
	if sol.SatisfiedFraction() < 0.5 {
		t.Errorf("TEAL satisfied %v, implausibly low", sol.SatisfiedFraction())
	}
}

func TestNCFlowRuns(t *testing.T) {
	topo, m := benchTopo(t, 5)
	sol, err := (&NCFlow{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, topo, m, sol)
	if sol.SatisfiedFraction() < 0.3 {
		t.Errorf("NCFlow satisfied %v, implausibly low", sol.SatisfiedFraction())
	}
}

func TestMegaTEAdapterSingleTunnel(t *testing.T) {
	topo, m := benchTopo(t, 5)
	sol, err := (&MegaTE{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, topo, m, sol)
	for i, frac := range sol.FlowFraction {
		if frac > 0 && frac < 1 {
			t.Fatalf("MegaTE flow %d partially satisfied (%v) — flows are indivisible", i, frac)
		}
		if frac > 0 && sol.FlowSplit[i] != 1 {
			t.Fatalf("MegaTE flow %d split across %d tunnels", i, sol.FlowSplit[i])
		}
	}
}

func TestSchemeOrderingOnSharedWorkload(t *testing.T) {
	// The satisfied-demand ordering of Figure 10 at the paper's Deltacom*
	// scale (1130 endpoints): LP-all on top, MegaTE close behind, NCFlow
	// and TEAL visibly below LP-all.
	if testing.Short() {
		t.Skip("multi-second solve on the full Deltacom* topology")
	}
	topo := topology.Build("Deltacom*")
	topology.AttachEndpointsExact(topo, 10)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 3, MeanDemandMbps: 1500})

	lpall, err := (&LPAll{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	mega, err := (&MegaTE{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	ncflow, err := (&NCFlow{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	teal, err := (&TEAL{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, sol := range []*Solution{lpall, mega, ncflow, teal} {
		checkSolution(t, topo, m, sol)
		t.Logf("%-8s satisfied %.4f in %v", sol.Scheme, sol.SatisfiedFraction(), sol.Runtime)
	}
	if mega.SatisfiedFraction() < 0.93*lpall.SatisfiedFraction() {
		t.Errorf("MegaTE %.4f below 93%% of LP-all %.4f", mega.SatisfiedFraction(), lpall.SatisfiedFraction())
	}
	if mega.SatisfiedFraction() > lpall.SatisfiedFraction()+1e-6 {
		t.Errorf("MegaTE %.4f beats LP-all %.4f (should not)", mega.SatisfiedFraction(), lpall.SatisfiedFraction())
	}
	if ncflow.SatisfiedFraction() >= mega.SatisfiedFraction() {
		t.Errorf("NCFlow %.4f should trail MegaTE %.4f", ncflow.SatisfiedFraction(), mega.SatisfiedFraction())
	}
	if teal.SatisfiedFraction() >= mega.SatisfiedFraction() {
		t.Errorf("TEAL %.4f should trail MegaTE %.4f", teal.SatisfiedFraction(), mega.SatisfiedFraction())
	}
}

func TestMeanLatency(t *testing.T) {
	topo, m := benchTopo(t, 3)
	sol, err := (&MegaTE{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	all := MeanLatency(sol, m, 0)
	if math.IsNaN(all) || all <= 0 {
		t.Errorf("mean latency = %v", all)
	}
	c1 := MeanLatency(sol, m, traffic.Class1)
	if !math.IsNaN(c1) && c1 <= 0 {
		t.Errorf("class-1 latency = %v", c1)
	}
	empty := newSolution("x", m)
	if !math.IsNaN(MeanLatency(empty, m, 0)) {
		t.Error("empty solution should give NaN latency")
	}
}

func TestPartitionSitesConnectedAndComplete(t *testing.T) {
	topo := topology.Build("Deltacom*")
	for _, nc := range []int{1, 2, 5, 10} {
		clusterOf := partitionSites(topo, nc)
		seen := map[int]int{}
		for s, c := range clusterOf {
			if c < 0 || c >= nc {
				t.Fatalf("site %d in cluster %d of %d", s, c, nc)
			}
			seen[c]++
		}
		if len(seen) != nc {
			t.Errorf("nc=%d: only %d clusters populated", nc, len(seen))
		}
	}
}

func TestPartitionMoreClustersThanSites(t *testing.T) {
	topo := topology.BuildB4()
	clusterOf := partitionSites(topo, 100)
	for s, c := range clusterOf {
		if c < 0 {
			t.Fatalf("site %d unassigned", s)
		}
	}
}

func TestSubgraphMapsLinksBack(t *testing.T) {
	topo := topology.BuildB4()
	clusterOf := partitionSites(topo, 3)
	sub, siteMap, linkBack := subgraph(topo, clusterOf, 0)
	if sub.NumSites() != len(siteMap) {
		t.Fatal("site map size mismatch")
	}
	if sub.NumLinks() != len(linkBack) {
		t.Fatal("link back size mismatch")
	}
	for i, orig := range linkBack {
		if topo.Links[orig].CapacityMbps != sub.Links[i].CapacityMbps {
			t.Fatal("capacity not carried over")
		}
	}
}

func TestNCFlowUnderFailure(t *testing.T) {
	topo, m := benchTopo(t, 4)
	topo.FailLink(0)
	sol, err := (&NCFlow{}).Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, topo, m, sol)
}

func TestSolutionSatisfiedFractionEmpty(t *testing.T) {
	sol := &Solution{}
	if sol.SatisfiedFraction() != 1 {
		t.Error("zero-demand fraction should be 1")
	}
}

func TestTEALClampsAndCachesTunnels(t *testing.T) {
	topo, m := benchTopo(t, 2)
	// Negative options must behave like the documented defaults instead of
	// skipping every ADMM sweep or refusing every problem.
	s := &TEAL{TunnelsPerPair: -1, Iterations: -3, MaxFlows: -1}
	sol1, err := s.Solve(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	if sol1.SatisfiedFraction() <= 0 {
		t.Error("negative-option TEAL satisfied nothing")
	}
	ts1 := s.tunSet
	if ts1 == nil {
		t.Fatal("no tunnel set cached after Solve")
	}

	// Same topology: the cached tunnel set is reused.
	if _, err := s.Solve(topo, m); err != nil {
		t.Fatal(err)
	}
	if s.tunSet != ts1 {
		t.Error("unchanged topology rebuilt the tunnel set")
	}

	// A failed link moves the topology fingerprint: the cache must rebuild.
	topo.Links[0].Down = true
	if _, err := s.Solve(topo, m); err != nil {
		t.Fatal(err)
	}
	if s.tunSet == ts1 {
		t.Error("link failure did not invalidate the cached tunnel set")
	}
}
