package baselines

import (
	"math"
	"time"

	"megate/internal/core"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// MegaTE adapts the core two-stage solver to the Scheme interface so the
// evaluation harness can compare all schemes uniformly. Unlike the
// baselines, every satisfied flow is pinned to exactly one tunnel
// (FlowSplit is always 1), which is what stabilizes instance latency.
type MegaTE struct {
	Options core.Options
}

// Name implements Scheme.
func (g *MegaTE) Name() string { return "MegaTE" }

// Solve implements Scheme.
func (g *MegaTE) Solve(topo *topology.Topology, m *traffic.Matrix) (*Solution, error) {
	start := time.Now()
	solver := core.NewSolver(topo, g.Options)
	res, err := solver.Solve(m)
	if err != nil {
		return nil, err
	}
	sol := newSolution(g.Name(), m)
	sol.SatisfiedMbps = res.SatisfiedMbps
	for i, tn := range res.FlowTunnel {
		if tn == nil {
			continue
		}
		sol.FlowFraction[i] = 1
		sol.FlowLatency[i] = tn.Weight
		sol.FlowSplit[i] = 1
		sol.FlowPlacement[i] = []Placement{{Tunnel: tn, Mbps: m.Flows[i].DemandMbps}}
	}
	sol.Runtime = time.Since(start)
	return sol, nil
}

// MeanLatency returns the demand-weighted mean latency of satisfied traffic
// of the given class (0 means all classes), the quantity of Figure 11.
func MeanLatency(sol *Solution, m *traffic.Matrix, class traffic.Class) float64 {
	num, den := 0.0, 0.0
	for i := range m.Flows {
		if class != 0 && m.Flows[i].Class != class {
			continue
		}
		if sol.FlowFraction[i] <= 0 || math.IsNaN(sol.FlowLatency[i]) {
			continue
		}
		w := m.Flows[i].DemandMbps * sol.FlowFraction[i]
		num += w * sol.FlowLatency[i]
		den += w
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
