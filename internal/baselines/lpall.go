package baselines

import (
	"time"

	"megate/internal/lp"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// LPAll is the LP-all scheme of §6.1: a linear program over the
// multi-commodity flow problem with one commodity per endpoint pair. It is
// the satisfied-demand reference at small scale and becomes impractical as
// endpoints grow, exactly as the paper reports.
type LPAll struct {
	// TunnelsPerPair defaults to 4.
	TunnelsPerPair int
	// ExactLimit is the largest flow count solved exactly (with the GUB
	// simplex, whose working basis scales with links rather than flows);
	// beyond it a tight Fleischer approximation (ε = 0.02) is used, and
	// beyond MaxFlows the scheme refuses with ErrTooLarge. Defaults: 8000
	// and 200000.
	ExactLimit int
	MaxFlows   int
}

// Name implements Scheme.
func (l *LPAll) Name() string { return "LP-all" }

// Solve implements Scheme.
func (l *LPAll) Solve(topo *topology.Topology, m *traffic.Matrix) (*Solution, error) {
	exactLimit := l.ExactLimit
	if exactLimit == 0 {
		exactLimit = 8000
	}
	maxFlows := l.MaxFlows
	if maxFlows == 0 {
		maxFlows = 200000
	}
	if err := checkSize(l.Name(), m.NumFlows(), maxFlows); err != nil {
		return nil, err
	}
	tpp := l.TunnelsPerPair
	if tpp == 0 {
		tpp = 4
	}

	start := time.Now()
	ts := topology.NewTunnelSet(topo, tpp)
	mcf, flowTunnels := endpointMCF(topo, m, ts, residualCaps(topo))

	var alloc lp.Allocation
	var err error
	if m.NumFlows() <= exactLimit {
		alloc, err = (&lp.GUBSimplex{}).SolveMCF(mcf)
	} else {
		alloc, err = (&lp.FleischerMCF{Epsilon: 0.02}).SolveMCF(mcf)
	}
	if err != nil {
		return nil, err
	}

	sol := newSolution(l.Name(), m)
	fillFromAllocation(sol, m, alloc, flowTunnels)
	sol.Runtime = time.Since(start)
	return sol, nil
}
