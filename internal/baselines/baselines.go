// Package baselines implements the TE schemes MegaTE is compared against in
// §6: LP-all (endpoint-granular multi-commodity flow), NCFlow (cluster
// contraction with reconciliation) and TEAL (warm-start plus ADMM
// refinement). All of them treat endpoint flows as *divisible* — that is the
// conventional MCF model — whereas MegaTE places each flow on exactly one
// tunnel; the packet-latency experiments exploit precisely this difference.
package baselines

import (
	"errors"
	"fmt"
	"math"
	"time"

	"megate/internal/lp"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// Scheme is a TE scheme producing an endpoint-flow allocation for one
// traffic matrix over one topology.
type Scheme interface {
	Name() string
	Solve(topo *topology.Topology, m *traffic.Matrix) (*Solution, error)
}

// ErrTooLarge is returned when a scheme would exceed its configured problem
// size limit — the stand-in for the out-of-memory failures the paper
// reports for conventional schemes at hyper-scale (§6.2).
var ErrTooLarge = errors.New("baselines: problem exceeds scheme size limit")

// Placement is one tunnel's share of a flow's satisfied traffic.
type Placement struct {
	Tunnel *topology.Tunnel
	Mbps   float64
}

// Solution is a per-flow allocation. Conventional schemes may satisfy a
// fraction of a flow and split it across tunnels.
type Solution struct {
	Scheme string
	// FlowFraction[i] is the satisfied fraction of matrix flow i in [0, 1].
	FlowFraction []float64
	// FlowLatency[i] is the allocation-weighted mean tunnel latency (ms)
	// of flow i's satisfied traffic; NaN when nothing was satisfied.
	FlowLatency []float64
	// FlowSplit[i] is the number of tunnels flow i's traffic uses — > 1
	// means the instance's packets observe multiple path latencies, the
	// §2.1 pathology.
	FlowSplit []int
	// FlowPlacement[i] details which tunnels carry flow i, used by the
	// failure simulator to find traffic stranded on failed links.
	FlowPlacement            [][]Placement
	SatisfiedMbps, TotalMbps float64
	Runtime                  time.Duration
}

// SatisfiedFraction returns satisfied/total demand, 1 when there is no
// demand.
func (s *Solution) SatisfiedFraction() float64 {
	if s.TotalMbps == 0 {
		return 1
	}
	return s.SatisfiedMbps / s.TotalMbps
}

// newSolution allocates a zeroed solution for the matrix.
func newSolution(scheme string, m *traffic.Matrix) *Solution {
	sol := &Solution{
		Scheme:        scheme,
		FlowFraction:  make([]float64, m.NumFlows()),
		FlowLatency:   make([]float64, m.NumFlows()),
		FlowSplit:     make([]int, m.NumFlows()),
		FlowPlacement: make([][]Placement, m.NumFlows()),
		TotalMbps:     m.TotalDemandMbps(),
	}
	for i := range sol.FlowLatency {
		sol.FlowLatency[i] = math.NaN()
	}
	return sol
}

// endpointMCF builds the endpoint-granular path MCF: one commodity per flow,
// using the pre-established tunnels of the flow's site pair. It also returns
// the tunnel list per flow for latency accounting.
func endpointMCF(topo *topology.Topology, m *traffic.Matrix, ts *topology.TunnelSet, residual []float64) (*lp.MCF, [][]*topology.Tunnel) {
	mcf := &lp.MCF{LinkCap: residual}
	flowTunnels := make([][]*topology.Tunnel, m.NumFlows())
	maxW := 0.0
	for i := range m.Flows {
		f := &m.Flows[i]
		tns := ts.For(f.Pair.Src, f.Pair.Dst)
		flowTunnels[i] = tns
		c := lp.Commodity{Demand: f.DemandMbps}
		for _, tn := range tns {
			links := make([]int, len(tn.Links))
			for j, l := range tn.Links {
				links[j] = int(l)
			}
			c.Tunnels = append(c.Tunnels, links)
			c.Weights = append(c.Weights, tn.Weight)
			if tn.Weight > maxW {
				maxW = tn.Weight
			}
		}
		mcf.Commodities = append(mcf.Commodities, c)
	}
	if maxW > 0 {
		eps := 0.5 / maxW
		if eps > 1e-3 {
			eps = 1e-3
		}
		mcf.Epsilon = eps
	}
	return mcf, flowTunnels
}

// fillFromAllocation populates per-flow fractions/latencies from a
// commodity-per-flow allocation.
func fillFromAllocation(sol *Solution, m *traffic.Matrix, alloc lp.Allocation, flowTunnels [][]*topology.Tunnel) {
	for i := range m.Flows {
		demand := m.Flows[i].DemandMbps
		if demand <= 0 {
			continue
		}
		carried, weighted := 0.0, 0.0
		split := 0
		for t, f := range alloc[i] {
			if f <= 0 {
				continue
			}
			carried += f
			weighted += f * flowTunnels[i][t].Weight
			split++
			sol.FlowPlacement[i] = append(sol.FlowPlacement[i], Placement{Tunnel: flowTunnels[i][t], Mbps: f})
		}
		if carried > 0 {
			sol.FlowFraction[i] = math.Min(1, carried/demand)
			sol.FlowLatency[i] = weighted / carried
			sol.FlowSplit[i] = split
			sol.SatisfiedMbps += math.Min(carried, demand)
		}
	}
}

// residualCaps snapshots the usable capacity of every link (0 for failed
// links).
func residualCaps(topo *topology.Topology) []float64 {
	caps := make([]float64, topo.NumLinks())
	for i, l := range topo.Links {
		if !l.Down {
			caps[i] = l.CapacityMbps
		}
	}
	return caps
}

// checkSize enforces a scheme's problem-size limit.
func checkSize(scheme string, nFlows, limit int) error {
	if limit > 0 && nFlows > limit {
		return fmt.Errorf("%w: %s with %d flows (limit %d)", ErrTooLarge, scheme, nFlows, limit)
	}
	return nil
}
