package baselines

import (
	"sync"
	"time"

	"megate/internal/lp"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// TEAL mirrors the learning-accelerated scheme of Xu et al. (SIGCOMM 2023)
// as described in §6.1: a cheap direct allocation (the GNN forward pass,
// substituted here by an inverse-latency proportional split) refined by a
// fixed budget of ADMM iterations against link capacities. Its runtime is a
// fixed number of sweeps over the flows — fast, but it gives up a few
// percent of satisfied demand and splits instance flows across tunnels.
type TEAL struct {
	// TunnelsPerPair defaults to 4; zero and negative values use the default.
	TunnelsPerPair int
	// Iterations is the ADMM sweep budget; default 40 (<= 0 uses it).
	Iterations int
	// MaxFlows bounds the problem size (default 500000, <= 0 uses it); the
	// paper reports TEAL needs "tens of thousands of GPUs" at
	// million-endpoint scale.
	MaxFlows int

	// Tunnel-set cache, keyed by topology fingerprint: repeated Solve calls
	// over an unchanged topology (the common case across TE intervals) reuse
	// the established tunnels instead of re-running Yen's per pair.
	mu     sync.Mutex
	tunSet *topology.TunnelSet
	tunFP  uint64
	tunK   int
}

// Name implements Scheme.
func (t *TEAL) Name() string { return "TEAL" }

// Solve implements Scheme.
func (t *TEAL) Solve(topo *topology.Topology, m *traffic.Matrix) (*Solution, error) {
	maxFlows := t.MaxFlows
	if maxFlows <= 0 {
		maxFlows = 500000
	}
	if err := checkSize(t.Name(), m.NumFlows(), maxFlows); err != nil {
		return nil, err
	}
	tpp := t.TunnelsPerPair
	if tpp <= 0 {
		tpp = 4
	}
	iters := t.Iterations
	if iters <= 0 {
		iters = 40
	}

	start := time.Now()
	ts := t.tunnels(topo, tpp)
	mcf, flowTunnels := endpointMCF(topo, m, ts, residualCaps(topo))
	alloc, err := (&lp.ADMM{Iterations: iters}).SolveMCF(mcf)
	if err != nil {
		return nil, err
	}

	sol := newSolution(t.Name(), m)
	fillFromAllocation(sol, m, alloc, flowTunnels)
	sol.Runtime = time.Since(start)
	return sol, nil
}

// tunnels returns the cached tunnel set for topo, rebuilding it only when
// the topology fingerprint or the per-pair tunnel budget changed since the
// last Solve. The returned set is still lazily populated per pair; reuse
// means pairs established in earlier intervals skip Yen's entirely.
func (t *TEAL) tunnels(topo *topology.Topology, tpp int) *topology.TunnelSet {
	fp := topo.Fingerprint()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tunSet == nil || t.tunFP != fp || t.tunK != tpp {
		t.tunSet = topology.NewTunnelSet(topo, tpp)
		t.tunFP = fp
		t.tunK = tpp
	}
	return t.tunSet
}
