package hoststack

import (
	"bytes"
	"testing"

	"megate/internal/packet"
)

var (
	srcIP  = [4]byte{10, 1, 0, 5}
	dstIP  = [4]byte{10, 2, 0, 9}
	hostA  = [4]byte{192, 168, 0, 1}
	hostB  = [4]byte{192, 168, 0, 2}
	tupleA = packet.FiveTuple{SrcIP: srcIP, DstIP: dstIP, Proto: packet.IPProtoUDP, SrcPort: 5000, DstPort: 6000}
)

func siteOf(ip [4]byte) (uint32, bool) {
	if ip == dstIP {
		return 7, true
	}
	return 0, false
}

func newTestHost() *Host {
	return NewHost("h1", 1500, siteOf)
}

func TestInstanceIdentificationChain(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(100, "ins-a")
	h.OpenConnection(100, tupleA)
	if pid, ok := h.ContkMap.Lookup(tupleA); !ok || pid != 100 {
		t.Errorf("contk_map = %v, %v", pid, ok)
	}
	if ins, ok := h.InfMap.Lookup(tupleA); !ok || ins != "ins-a" {
		t.Errorf("inf_map = %q, %v", ins, ok)
	}
}

func TestConnectionWithoutProcessNotJoined(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.OpenConnection(200, tupleA) // no execve seen for pid 200
	if _, ok := h.InfMap.Lookup(tupleA); ok {
		t.Error("inf_map should not have an entry without env_map join")
	}
}

func TestSendInsertsSRHeader(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(1, "ins-a")
	h.OpenConnection(1, tupleA)
	h.InstallPath("ins-a", 7, []uint32{3, 5, 7})

	frames, err := h.Send(tupleA, 42, hostA, hostB, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	e, err := packet.DecodeEncap(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if !e.VXLAN.SRPresent || e.SR == nil {
		t.Fatal("SR header missing")
	}
	if len(e.SR.Hops) != 3 || e.SR.Hops[0] != 3 || e.SR.Hops[2] != 7 {
		t.Errorf("hops = %v", e.SR.Hops)
	}
	if e.SR.Offset != 0 {
		t.Errorf("offset = %d, want 0", e.SR.Offset)
	}
	// Inner frame must survive byte-for-byte.
	var inEth packet.Ethernet
	rest, err := inEth.DecodeFromBytes(e.Inner)
	if err != nil {
		t.Fatal(err)
	}
	var inIP packet.IPv4
	rest, err = inIP.DecodeFromBytes(rest)
	if err != nil {
		t.Fatal(err)
	}
	if inIP.Src != srcIP || inIP.Dst != dstIP {
		t.Error("inner IPs mangled")
	}
	var inUDP packet.UDP
	payload, err := inUDP.DecodeFromBytes(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte("hello")) {
		t.Errorf("payload = %q", payload)
	}
}

func TestSendWithoutPathNoSR(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(1, "ins-a")
	h.OpenConnection(1, tupleA)
	// No InstallPath.
	frames, err := h.Send(tupleA, 42, hostA, hostB, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := packet.DecodeEncap(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.VXLAN.SRPresent {
		t.Error("SR inserted without a path")
	}
}

func TestSendUnknownInstanceNoSR(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	// Connection never registered: inf_map has no entry.
	h.InstallPath("ins-a", 7, []uint32{1})
	frames, err := h.Send(tupleA, 42, hostA, hostB, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := packet.DecodeEncap(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.VXLAN.SRPresent {
		t.Error("SR inserted for unidentified flow")
	}
}

func TestTrafficAccounting(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(1, "ins-a")
	h.OpenConnection(1, tupleA)
	for i := 0; i < 3; i++ {
		if _, err := h.Send(tupleA, 42, hostA, hostB, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	records := h.CollectFlows()
	if len(records) != 1 {
		t.Fatalf("records = %d, want 1", len(records))
	}
	r := records[0]
	if r.Instance != "ins-a" || r.Tuple != tupleA {
		t.Errorf("record = %+v", r)
	}
	// Three packets of ~200 bytes short of precision; just require
	// plausible accounting.
	if r.Bytes < 300 || r.Bytes > 1000 {
		t.Errorf("bytes = %d", r.Bytes)
	}
	// Collection drains: second read is empty.
	if again := h.CollectFlows(); len(again) != 0 {
		t.Errorf("second collect returned %d records", len(again))
	}
}

func TestFragmentAccountingViaFragMap(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(1, "ins-a")
	h.OpenConnection(1, tupleA)
	// 4000-byte payload over 1500 MTU fragments into 3+.
	frames, err := h.Send(tupleA, 42, hostA, hostB, make([]byte, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("frames = %d, want >= 3 fragments", len(frames))
	}
	records := h.CollectFlows()
	if len(records) != 1 {
		t.Fatalf("records = %v", records)
	}
	r := records[0]
	if r.Instance != "ins-a" {
		t.Errorf("instance = %q", r.Instance)
	}
	// All fragments must be attributed: total accounted bytes must cover
	// the whole payload plus headers.
	if r.Bytes < 4000 {
		t.Errorf("accounted %d bytes, want >= 4000 (all fragments)", r.Bytes)
	}
	// frag_map entry is cleaned up by the last fragment.
	if h.FragMap.Len() != 0 {
		t.Errorf("frag_map has %d stale entries", h.FragMap.Len())
	}
}

func TestFragmentedSendStillInsertsSRInFirstFragment(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(1, "ins-a")
	h.OpenConnection(1, tupleA)
	h.InstallPath("ins-a", 7, []uint32{9, 8})
	frames, err := h.Send(tupleA, 42, hostA, hostB, make([]byte, 4000))
	if err != nil {
		t.Fatal(err)
	}
	// First fragment carries VXLAN+SR.
	var eth packet.Ethernet
	rest, err := eth.DecodeFromBytes(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	var ip packet.IPv4
	l4, err := ip.DecodeFromBytes(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !ip.MoreFragments() {
		t.Fatal("first frame should be a fragment")
	}
	var udp packet.UDP
	vx4, err := udp.DecodeFromBytes(l4)
	if err != nil {
		t.Fatal(err)
	}
	var vx packet.VXLAN
	srBytes, err := vx.DecodeFromBytes(vx4)
	if err != nil {
		t.Fatal(err)
	}
	if !vx.SRPresent {
		t.Fatal("first fragment missing SR flag")
	}
	var sr packet.SRHeader
	if _, err := sr.DecodeFromBytes(srBytes); err != nil {
		t.Fatal(err)
	}
	if len(sr.Hops) != 2 || sr.Hops[0] != 9 {
		t.Errorf("hops = %v", sr.Hops)
	}
}

func TestPackUnpackTupleRoundTrip(t *testing.T) {
	got := UnpackTuple(PackTuple(tupleA))
	if got != tupleA {
		t.Errorf("round trip: %+v != %+v", got, tupleA)
	}
}

func TestClearPaths(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.InstallPath("a", 1, []uint32{1})
	h.InstallPath("b", 2, []uint32{2})
	if h.PathMap.Len() != 2 {
		t.Fatal("install failed")
	}
	h.ClearPaths()
	if h.PathMap.Len() != 0 {
		t.Error("clear failed")
	}
}

func TestNonIPFramesPassThrough(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	junk := []byte{1, 2, 3}
	out, ok := h.Kernel.EgressPacket(junk)
	if !ok || !bytes.Equal(out, junk) {
		t.Error("junk frame should pass unmodified")
	}
	if h.TrafficMap.Len() != 0 {
		t.Error("junk frame accounted")
	}
}

func TestHostCloseDetaches(t *testing.T) {
	h := newTestHost()
	h.Close()
	h.RunProcess(1, "ins-a")
	if h.EnvMap.Len() != 0 {
		t.Error("program ran after Close")
	}
}

func BenchmarkHostSendWithSR(b *testing.B) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(1, "ins-a")
	h.OpenConnection(1, tupleA)
	h.InstallPath("ins-a", 7, []uint32{3, 5, 7})
	payload := make([]byte, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Send(tupleA, 42, hostA, hostB, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCEgressAccountingOnly(b *testing.B) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(1, "ins-a")
	h.OpenConnection(1, tupleA)
	frames, err := h.Send(tupleA, 42, hostA, hostB, make([]byte, 1000))
	if err != nil {
		b.Fatal(err)
	}
	frame := frames[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Kernel.EgressPacket(frame)
	}
}

// Robustness: arbitrary frames through the TC chain must never panic, and
// mutated frames must never corrupt accounting state structurally.
func TestTCEgressNeverPanics(t *testing.T) {
	h := newTestHost()
	defer h.Close()
	h.RunProcess(1, "ins-a")
	h.OpenConnection(1, tupleA)
	h.InstallPath("ins-a", 7, []uint32{3, 5})

	frames, err := h.Send(tupleA, 42, hostA, hostB, make([]byte, 500))
	if err != nil {
		t.Fatal(err)
	}
	base := frames[0]

	seed := int64(7)
	rnd := func() int { seed = seed*6364136223846793005 + 1; return int(uint64(seed) >> 33) }
	for trial := 0; trial < 5000; trial++ {
		var data []byte
		if trial%2 == 0 {
			data = make([]byte, rnd()%150)
			for i := range data {
				data[i] = byte(rnd())
			}
		} else {
			data = append([]byte(nil), base...)
			for f := 0; f < 1+rnd()%4; f++ {
				data[rnd()%len(data)] ^= byte(1 << (rnd() % 8))
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on frame %x: %v", data, rec)
				}
			}()
			h.Kernel.EgressPacket(data)
		}()
	}
}
