// Package hoststack implements MegaTE's eBPF-based end-host networking
// stack (§5, Figure 6). Each Host wires three programs into the simulated
// kernel:
//
//   - an execve tracepoint program recording pid → instance into env_map;
//   - a conntrack kprobe program recording five-tuple → pid into contk_map
//     and joining it with env_map into inf_map (five-tuple → instance);
//   - a TC egress program that accounts per-flow bytes into traffic_map
//     (attributing IP fragments via frag_map keyed by ipid) and inserts the
//     MegaTE SR header after the VXLAN header according to path_map.
//
// The endpoint agent (package controlplane) populates path_map from the TE
// database and periodically drains traffic_map joined with inf_map to
// report instance-level flow statistics upstream.
package hoststack

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"megate/internal/ebpf"
	"megate/internal/packet"
)

// PathKey selects the SR path for an instance's traffic toward a
// destination site.
type PathKey struct {
	Instance string
	DstSite  uint32
}

// Path is one path_map entry: the SR hop list plus the tunnel tier the
// control plane selected under service policy (0 for unannotated traffic —
// the tier is carried for observability and policy audit, SR insertion uses
// only the hops).
type Path struct {
	Hops []uint32
	Tier uint8
}

// FlowRecord is one instance-level flow statistic, the tuple of ins_id and
// volume the endpoint agent ships to the backend per TE period (§5.1).
type FlowRecord struct {
	Instance string
	Tuple    packet.FiveTuple
	Bytes    uint64
}

// Host is one end-host server with its eBPF maps and programs attached.
type Host struct {
	ID  string
	MTU int

	Kernel *ebpf.Kernel

	// The six maps of Figure 6.
	EnvMap     *ebpf.Map[int, string]              // pid -> ins_id
	ContkMap   *ebpf.Map[packet.FiveTuple, int]    // 5tuple -> pid
	InfMap     *ebpf.Map[packet.FiveTuple, string] // 5tuple -> ins_id
	TrafficMap *ebpf.Map[packet.FiveTuple, uint64] // 5tuple -> bytes
	FragMap    *ebpf.Map[uint16, packet.FiveTuple] // ipid -> 5tuple
	PathMap    *ebpf.Map[PathKey, Path]            // (ins, dst site) -> hops+tier

	// ipToSite resolves an endpoint IP to its site identifier; the host
	// learns it from the control plane (the VPC mapping service).
	ipToSite func([4]byte) (uint32, bool)

	links  []*ebpf.Link
	nextID atomic.Uint32 // outer ipid allocator
}

// NewHost creates a host, attaching the three eBPF programs. mtu bounds the
// outer IP packet size; ipToSite resolves inner destination IPs to sites
// (nil means SR insertion is disabled, conventional behaviour).
func NewHost(id string, mtu int, ipToSite func([4]byte) (uint32, bool)) *Host {
	h := &Host{
		ID:         id,
		MTU:        mtu,
		Kernel:     ebpf.NewKernel(),
		EnvMap:     ebpf.NewMap[int, string]("env_map", 1<<16),
		ContkMap:   ebpf.NewMap[packet.FiveTuple, int]("contk_map", 1<<20),
		InfMap:     ebpf.NewMap[packet.FiveTuple, string]("inf_map", 1<<20),
		TrafficMap: ebpf.NewMap[packet.FiveTuple, uint64]("traffic_map", 1<<20),
		FragMap:    ebpf.NewMap[uint16, packet.FiveTuple]("frag_map", 1<<16),
		PathMap:    ebpf.NewMap[PathKey, Path]("path_map", 1<<20),
		ipToSite:   ipToSite,
	}
	h.links = append(h.links,
		h.Kernel.AttachExecve(h.execveProg),
		h.Kernel.AttachConntrack(h.conntrackProg),
		h.Kernel.AttachTCEgress(h.tcEgressProg),
	)
	return h
}

// Close detaches the host's eBPF programs.
func (h *Host) Close() {
	for _, l := range h.links {
		l.Close()
	}
}

// execveProg implements the tracepoint program at
// syscalls/sys_enter_execve: record which instance owns the process.
func (h *Host) execveProg(ev ebpf.ExecveEvent) {
	_ = h.EnvMap.Update(ev.PID, ev.Instance)
}

// conntrackProg implements the kprobe at ctnetlink_conntrack_event: record
// the connection's five tuple and join it with env_map into inf_map.
func (h *Host) conntrackProg(ev ebpf.ConntrackEvent) {
	tuple := UnpackTuple(ev.Tuple)
	_ = h.ContkMap.Update(tuple, ev.PID)
	if ins, ok := h.EnvMap.Lookup(ev.PID); ok {
		_ = h.InfMap.Update(tuple, ins)
	}
}

// tcEgressProg implements the TC-layer program: flow accounting (including
// fragments) and SR insertion.
func (h *Host) tcEgressProg(frame []byte) ([]byte, ebpf.TCVerdict) {
	var eth packet.Ethernet
	ipBytes, err := eth.DecodeFromBytes(frame)
	if err != nil || eth.EtherType != packet.EtherTypeIPv4 {
		return frame, ebpf.TCPass // not ours
	}
	var ip packet.IPv4
	payload, err := ip.DecodeFromBytes(ipBytes)
	if err != nil {
		return frame, ebpf.TCPass
	}

	if ip.FragOffset != 0 {
		// Subsequent fragment: attribute its bytes via frag_map (§5.1).
		if tuple, ok := h.FragMap.Lookup(ip.ID); ok {
			h.account(tuple, uint64(ip.TotalLen))
			if !ip.MoreFragments() {
				h.FragMap.Delete(ip.ID)
			}
		}
		return frame, ebpf.TCPass
	}

	// First fragment or whole packet: the VXLAN and inner headers are
	// present, so the inner five tuple is extractable.
	tuple, vxlanOK := innerTuple(&ip, payload)
	if !vxlanOK {
		return frame, ebpf.TCPass
	}
	if ip.MoreFragments() {
		_ = h.FragMap.Update(ip.ID, tuple)
	}
	h.account(tuple, uint64(ip.TotalLen))

	// SR insertion (§5.2): five tuple -> instance via inf_map, instance +
	// destination site -> hops via path_map.
	if h.ipToSite == nil {
		return frame, ebpf.TCPass
	}
	ins, ok := h.InfMap.Lookup(tuple)
	if !ok {
		return frame, ebpf.TCPass
	}
	site, ok := h.ipToSite(tuple.DstIP)
	if !ok {
		return frame, ebpf.TCPass
	}
	path, ok := h.PathMap.Lookup(PathKey{Instance: ins, DstSite: site})
	if !ok || len(path.Hops) == 0 {
		return frame, ebpf.TCPass
	}
	rewritten, err := insertSR(&eth, &ip, payload, path.Hops)
	if err != nil {
		return frame, ebpf.TCPass // leave the packet alone on any parse error
	}
	return rewritten, ebpf.TCPass
}

func (h *Host) account(tuple packet.FiveTuple, bytes uint64) {
	_ = h.TrafficMap.UpdateFunc(tuple, func(old uint64, _ bool) uint64 { return old + bytes })
}

// innerTuple digs through UDP/VXLAN(/SR) and the inner Ethernet/IPv4/UDP
// headers to extract the instance connection's five tuple.
func innerTuple(outerIP *packet.IPv4, l4 []byte) (packet.FiveTuple, bool) {
	var tuple packet.FiveTuple
	if outerIP.Protocol != packet.IPProtoUDP {
		return tuple, false
	}
	var udp packet.UDP
	rest, err := udp.DecodeHeader(l4)
	if err != nil || udp.DstPort != packet.VXLANPort {
		return tuple, false
	}
	var vx packet.VXLAN
	rest, err = vx.DecodeFromBytes(rest)
	if err != nil {
		return tuple, false
	}
	if vx.SRPresent {
		var sr packet.SRHeader
		rest, err = sr.DecodeFromBytes(rest)
		if err != nil {
			return tuple, false
		}
	}
	var inEth packet.Ethernet
	rest, err = inEth.DecodeFromBytes(rest)
	if err != nil || inEth.EtherType != packet.EtherTypeIPv4 {
		return tuple, false
	}
	var inIP packet.IPv4
	rest, err = inIP.DecodeHeader(rest)
	if err != nil {
		return tuple, false
	}
	tuple.SrcIP, tuple.DstIP = inIP.Src, inIP.Dst
	tuple.Proto = inIP.Protocol
	if inIP.Protocol == packet.IPProtoUDP && inIP.FragOffset == 0 {
		var inUDP packet.UDP
		if _, err := inUDP.DecodeHeader(rest); err == nil {
			tuple.SrcPort, tuple.DstPort = inUDP.SrcPort, inUDP.DstPort
		}
	}
	return tuple, true
}

// insertSR rebuilds the frame with the SR header spliced in after the VXLAN
// header and the SR flag set in the VXLAN reserved field. Length and
// checksum fields of the outer headers are recomputed.
func insertSR(eth *packet.Ethernet, ip *packet.IPv4, l4 []byte, hops []uint32) ([]byte, error) {
	var udp packet.UDP
	rest, err := udp.DecodeHeader(l4)
	if err != nil {
		return nil, err
	}
	var vx packet.VXLAN
	rest, err = vx.DecodeFromBytes(rest)
	if err != nil {
		return nil, err
	}
	if vx.SRPresent {
		return nil, fmt.Errorf("hoststack: SR already present")
	}
	vx.SRPresent = true
	sr := &packet.SRHeader{Hops: hops}
	var b packet.SerializeBuffer
	if err := packet.SerializeLayers(&b, eth, ip, &udp, &vx, sr, packet.Payload(rest)); err != nil {
		return nil, err
	}
	out := make([]byte, len(b.Bytes()))
	copy(out, b.Bytes())
	return out, nil
}

// RunProcess simulates an instance starting a process (raises the execve
// tracepoint).
func (h *Host) RunProcess(pid int, instance string) {
	h.Kernel.Execve(pid, instance)
}

// OpenConnection simulates the process creating a connection (raises the
// conntrack kprobe).
func (h *Host) OpenConnection(pid int, tuple packet.FiveTuple) {
	h.Kernel.ConntrackNew(pid, PackTuple(tuple))
}

// InstallPath installs the TE-decided hop list for an instance's traffic
// toward a destination site — the endpoint agent's action after pulling new
// TE configurations (§5.2). The path carries tier 0; policied paths use
// InstallPathTier.
func (h *Host) InstallPath(instance string, dstSite uint32, hops []uint32) {
	h.InstallPathTier(instance, dstSite, hops, 0)
}

// InstallPathTier is InstallPath with the service-policy tunnel tier the
// control plane selected for the path.
func (h *Host) InstallPathTier(instance string, dstSite uint32, hops []uint32, tier uint8) {
	_ = h.PathMap.Update(PathKey{Instance: instance, DstSite: dstSite}, Path{Hops: hops, Tier: tier})
}

// RemovePath removes one installed path, e.g. when a new TE configuration
// no longer covers the destination.
func (h *Host) RemovePath(instance string, dstSite uint32) {
	h.PathMap.Delete(PathKey{Instance: instance, DstSite: dstSite})
}

// ClearPaths removes all installed paths (e.g. when TE configs are
// superseded wholesale).
func (h *Host) ClearPaths() {
	h.PathMap.Drain()
}

// Send transmits payload on the given instance connection: it builds the
// inner frame, VXLAN-encapsulates it between hostSrc and hostDst, fragments
// to the MTU, and runs every resulting frame through the TC egress chain.
// The returned frames are what reaches the wire.
func (h *Host) Send(tuple packet.FiveTuple, vni uint32, hostSrc, hostDst [4]byte, payload []byte) ([][]byte, error) {
	// Inner frame: Ethernet/IPv4/UDP around the payload.
	innerIP := packet.IPv4{
		TTL: 64, Protocol: tuple.Proto,
		Src: tuple.SrcIP, Dst: tuple.DstIP,
		ID: uint16(h.nextID.Add(1)),
	}
	innerUDP := packet.UDP{SrcPort: tuple.SrcPort, DstPort: tuple.DstPort}
	var inner packet.SerializeBuffer
	if err := packet.SerializeLayers(&inner,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&innerIP, &innerUDP, packet.Payload(payload)); err != nil {
		return nil, err
	}

	outer := &packet.Encap{
		Eth: packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.IPProtoUDP,
			Src: hostSrc, Dst: hostDst,
			ID: uint16(h.nextID.Add(1)),
		},
		UDP:   packet.UDP{SrcPort: uint16(tuple.Hash()&0x3fff) + 49152, DstPort: packet.VXLANPort},
		VXLAN: packet.VXLAN{VNI: vni},
		Inner: inner.Bytes(),
	}
	frame, err := outer.Serialize()
	if err != nil {
		return nil, err
	}

	frags, err := packet.FragmentFrame(frame, h.MTU)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for _, f := range frags {
		sent, ok := h.Kernel.EgressPacket(f)
		if ok {
			out = append(out, sent)
		}
	}
	return out, nil
}

// CollectFlows drains traffic_map, joins it with inf_map, and returns
// instance-level flow records — the user-space process the endpoint agent
// runs once per TE period (§5.1). Flows whose five tuple has no known
// instance are reported with an empty Instance.
func (h *Host) CollectFlows() []FlowRecord {
	counts := h.TrafficMap.Drain()
	records := make([]FlowRecord, 0, len(counts))
	for tuple, vol := range counts {
		ins, _ := h.InfMap.Lookup(tuple)
		records = append(records, FlowRecord{Instance: ins, Tuple: tuple, Bytes: vol})
	}
	// Reports feed demand estimation and travel through the TE database;
	// order them by packed tuple so a host's report is byte-identical across
	// runs instead of following map iteration order.
	sort.Slice(records, func(a, b int) bool {
		ka, kb := PackTuple(records[a].Tuple), PackTuple(records[b].Tuple)
		return bytes.Compare(ka[:], kb[:]) < 0
	})
	return records
}

// PackTuple encodes a five tuple into the kernel's 13-byte key form.
func PackTuple(t packet.FiveTuple) [13]byte {
	var b [13]byte
	copy(b[0:4], t.SrcIP[:])
	copy(b[4:8], t.DstIP[:])
	b[8] = t.Proto
	binary.BigEndian.PutUint16(b[9:11], t.SrcPort)
	binary.BigEndian.PutUint16(b[11:13], t.DstPort)
	return b
}

// UnpackTuple decodes the 13-byte key form.
func UnpackTuple(b [13]byte) packet.FiveTuple {
	var t packet.FiveTuple
	copy(t.SrcIP[:], b[0:4])
	copy(t.DstIP[:], b[4:8])
	t.Proto = b[8]
	t.SrcPort = binary.BigEndian.Uint16(b[9:11])
	t.DstPort = binary.BigEndian.Uint16(b[11:13])
	return t
}
