// Package faultnet provides deterministic, schedulable fault injection for
// the control loop's network paths. MegaTE's whole argument for the
// bottom-up pull model (§3.2) is that eventual consistency *tolerates* a
// briefly unreachable TE database and that endpoints degrade to
// conventional routing when they hold no valid pinned path (§6.3); this
// package makes those failure modes injectable and reproducible so the
// degradation behavior can be tested instead of assumed.
//
// A Fabric names the peers of a chaos run ("controller", "agent", "db0",
// ...) and holds per-directed-link fault state: connect refusal, full
// partitions (a blackhole — operations block until the link heals or the
// connection's deadline expires, exactly like dropped packets), read/write
// latency, seeded mid-stream resets, and seeded partial writes that tear a
// frame on the wire. Connections enter the fabric either through
// Fabric.Dial / Fabric.Dialer (client side, where both peer names are
// known) or through Fabric.Listener (server side, where the remote peer is
// the wildcard "*" — address listener-side faults with SetFaults(name, "*",
// ...)).
//
// Randomized decisions (which operation resets, how much of a write lands)
// come from per-connection PRNGs derived from the fabric seed and a
// connection sequence number, so a fixed seed replays the same decision
// sequence for the same connection order. The timeline (At + Start) makes
// whole failure scripts — partition at T1, heal at T2 — reproducible.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrRefused is returned by Dial when the link refuses connections.
var ErrRefused = errors.New("faultnet: connection refused by fault injection")

// ErrReset is returned by Read/Write when an injected mid-stream reset
// fires; the underlying connection is closed so the peer observes it too.
var ErrReset = errors.New("faultnet: connection reset by fault injection")

// TimeoutError is the error surfaced when a partitioned operation runs into
// its deadline. It implements net.Error with Timeout() == true so callers'
// deadline handling treats injected blackholes like real ones.
type TimeoutError struct{ Op string }

// Error implements error.
func (e *TimeoutError) Error() string {
	return "faultnet: " + e.Op + " deadline exceeded (partitioned)"
}

// Timeout implements net.Error.
func (e *TimeoutError) Timeout() bool { return true }

// Temporary implements the legacy net.Error method.
func (e *TimeoutError) Temporary() bool { return true }

// Faults is the injectable state of one directed link (from → to, where
// "from" is the side performing the operation).
type Faults struct {
	// Partitioned blackholes the link: dials and in-flight operations block
	// until the link heals or their deadline expires (a TimeoutError). An
	// operation with no deadline blocks indefinitely, like a real blackhole
	// against a client with no timeout.
	Partitioned bool
	// RefuseConnect fails dials immediately with ErrRefused.
	RefuseConnect bool
	// DialLatency, ReadLatency, and WriteLatency delay the respective
	// operations (bounded by the operation's deadline).
	DialLatency  time.Duration
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// ResetProb is the per-operation probability of an injected connection
	// reset (the operation fails with ErrReset and the connection dies).
	ResetProb float64
	// PartialWriteProb is the per-write probability that only a seeded
	// prefix of the buffer reaches the wire before the connection resets —
	// the torn-frame case the kvstore protocol must never surface as a
	// stored or installed partial config.
	PartialWriteProb float64
}

// zero reports whether no fault is active.
func (ft Faults) zero() bool { return ft == Faults{} }

// link is a directed peer pair.
type link struct{ from, to string }

// event is one scheduled timeline action.
type event struct {
	at time.Duration
	fn func()
}

// Fabric is the fault-injection network. The zero value is not usable; use
// New.
type Fabric struct {
	mu      sync.Mutex
	seed    int64
	seq     int64
	links   map[link]Faults
	started bool
	startT  time.Time
	pending []event
	timers  []*time.Timer
}

// New creates a fabric whose randomized fault decisions derive from seed.
func New(seed int64) *Fabric {
	return &Fabric{seed: seed, links: make(map[link]Faults)}
}

// SetFaults replaces the fault state of the directed link from → to. Either
// name may be the wildcard "*"; lookups prefer the most specific match:
// (from,to), (from,*), (*,to), (*,*).
func (f *Fabric) SetFaults(from, to string, ft Faults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ft.zero() {
		delete(f.links, link{from, to})
		return
	}
	f.links[link{from, to}] = ft
}

// Partition blackholes both directions between the two peers, preserving
// any other faults configured on the links.
func (f *Fabric) Partition(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, k := range []link{{from, to}, {to, from}} {
		ft := f.links[k]
		ft.Partitioned = true
		f.links[k] = ft
	}
}

// Heal clears the partition between the two peers (both directions),
// preserving any other faults configured on the links.
func (f *Fabric) Heal(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, k := range []link{{from, to}, {to, from}} {
		ft, ok := f.links[k]
		if !ok {
			continue
		}
		ft.Partitioned = false
		if ft.zero() {
			delete(f.links, k)
		} else {
			f.links[k] = ft
		}
	}
}

// HealAll clears every fault on every link.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links = make(map[link]Faults)
}

// state returns the effective faults for an operation by "from" against
// "to", most specific rule first.
func (f *Fabric) state(from, to string) Faults {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, k := range []link{{from, to}, {from, "*"}, {"*", to}, {"*", "*"}} {
		if ft, ok := f.links[k]; ok {
			return ft
		}
	}
	return Faults{}
}

// At schedules fn to run at offset d after Start. Events registered before
// Start queue until it; events registered after arm immediately relative to
// the original start time. Typical scripts partition and heal:
//
//	fab.At(100*time.Millisecond, func() { fab.Partition("agent", "db0") })
//	fab.At(400*time.Millisecond, func() { fab.Heal("agent", "db0") })
//	fab.Start()
func (f *Fabric) At(d time.Duration, fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.started {
		f.pending = append(f.pending, event{at: d, fn: fn})
		return
	}
	delay := d - time.Since(f.startT)
	if delay < 0 {
		delay = 0
	}
	f.timers = append(f.timers, time.AfterFunc(delay, fn))
}

// Start begins the timeline, arming every event registered with At.
// Starting twice is a no-op.
func (f *Fabric) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.started = true
	f.startT = time.Now()
	for _, e := range f.pending {
		f.timers = append(f.timers, time.AfterFunc(e.at, e.fn))
	}
	f.pending = nil
}

// Stop cancels every pending timeline event. Already-fired events are
// unaffected; the fault state they installed persists until healed.
func (f *Fabric) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, t := range f.timers {
		t.Stop()
	}
	f.timers = nil
	f.pending = nil
}

// connSeed derives a per-connection PRNG seed from the fabric seed and the
// connection sequence number (splitmix-style mixing so adjacent sequence
// numbers do not yield correlated streams).
func (f *Fabric) connSeed() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	z := uint64(f.seed) + uint64(f.seq)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Dial establishes a fabric connection from the named peer to the named
// peer at addr, honoring the link's refusal, partition, and latency state.
// timeout bounds the whole dial including any partition blackhole; zero
// means no limit.
func (f *Fabric) Dial(from, to, network, addr string, timeout time.Duration) (net.Conn, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		st := f.state(from, to)
		if st.RefuseConnect {
			return nil, ErrRefused
		}
		if !st.Partitioned {
			if err := sleepUntil(st.DialLatency, deadline, "dial"); err != nil {
				return nil, err
			}
			break
		}
		if err := blockStep(deadline, "dial"); err != nil {
			return nil, err
		}
	}
	remaining := timeout
	if !deadline.IsZero() {
		remaining = time.Until(deadline)
		if remaining <= 0 {
			return nil, &TimeoutError{Op: "dial"}
		}
	}
	inner, err := net.DialTimeout(network, addr, remaining)
	if err != nil {
		return nil, err
	}
	return f.WrapConn(from, to, inner), nil
}

// Dialer returns a dial function bound to a fixed peer pair, matching the
// kvstore client's pluggable dialer signature.
func (f *Fabric) Dialer(from, to string) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		return f.Dial(from, to, "tcp", addr, timeout)
	}
}

// WrapConn runs an existing connection through the fabric: every Read and
// Write consults the current state of the local → remote link.
func (f *Fabric) WrapConn(local, remote string, inner net.Conn) net.Conn {
	return &Conn{
		inner:  inner,
		fab:    f,
		local:  local,
		remote: remote,
		rng:    rand.New(rand.NewSource(f.connSeed())),
	}
}

// Listener wraps a listener so accepted connections pass through the
// fabric. The remote peer of an accepted connection is unknown at the TCP
// layer, so listener-side faults use the wildcard: SetFaults(name, "*",
// ...) affects every connection the server handles, while client-side
// faults (set on the dialing peer's link) are enforced by the dialing side.
func (f *Fabric) Listener(name string, inner net.Listener) net.Listener {
	return &listener{Listener: inner, fab: f, name: name}
}

type listener struct {
	net.Listener
	fab  *Fabric
	name string
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.fab.WrapConn(l.name, "*", c), nil
}

// partitionPoll is how often a blocked operation re-checks for a heal.
const partitionPoll = 2 * time.Millisecond

// blockStep sleeps one poll interval of a partition blackhole, returning a
// TimeoutError once the deadline passes. A zero deadline blocks forever.
func blockStep(deadline time.Time, op string) error {
	if deadline.IsZero() {
		time.Sleep(partitionPoll)
		return nil
	}
	rem := time.Until(deadline)
	if rem <= 0 {
		return &TimeoutError{Op: op}
	}
	if rem < partitionPoll {
		time.Sleep(rem)
		return nil
	}
	time.Sleep(partitionPoll)
	return nil
}

// sleepUntil injects d of latency, truncated by the deadline (in which case
// the operation times out like a too-slow peer).
func sleepUntil(d time.Duration, deadline time.Time, op string) error {
	if d <= 0 {
		return nil
	}
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem <= d {
			if rem > 0 {
				time.Sleep(rem)
			}
			return &TimeoutError{Op: op}
		}
	}
	time.Sleep(d)
	return nil
}

// Conn is a fabric-wrapped connection.
type Conn struct {
	inner  net.Conn
	fab    *Fabric
	local  string
	remote string

	rngMu sync.Mutex
	rng   *rand.Rand

	dlMu    sync.Mutex
	readDL  time.Time
	writeDL time.Time
}

// chance draws one seeded Bernoulli decision.
func (c *Conn) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Float64() < p
}

// prefixLen picks a seeded strict prefix length for a torn write.
func (c *Conn) prefixLen(n int) int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return 1 + c.rng.Intn(n-1)
}

func (c *Conn) deadline(op string) time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	if op == "read" {
		return c.readDL
	}
	return c.writeDL
}

// gate applies partition blocking, latency, and reset injection for one
// operation; it returns nil when the underlying operation may proceed.
func (c *Conn) gate(op string, latency func(Faults) time.Duration) error {
	deadline := c.deadline(op)
	var st Faults
	for {
		st = c.fab.state(c.local, c.remote)
		if !st.Partitioned {
			break
		}
		if err := blockStep(deadline, op); err != nil {
			return err
		}
	}
	if err := sleepUntil(latency(st), deadline, op); err != nil {
		return err
	}
	if c.chance(st.ResetProb) {
		_ = c.inner.Close()
		return ErrReset
	}
	return nil
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	if err := c.gate("read", func(ft Faults) time.Duration { return ft.ReadLatency }); err != nil {
		return 0, err
	}
	return c.inner.Read(b)
}

// Write implements net.Conn. An injected partial write delivers a seeded
// strict prefix of b and then resets the connection, modeling a frame torn
// mid-flight.
func (c *Conn) Write(b []byte) (int, error) {
	if err := c.gate("write", func(ft Faults) time.Duration { return ft.WriteLatency }); err != nil {
		return 0, err
	}
	st := c.fab.state(c.local, c.remote)
	if len(b) > 1 && c.chance(st.PartialWriteProb) {
		n, _ := c.inner.Write(b[:c.prefixLen(len(b))])
		_ = c.inner.Close()
		return n, ErrReset
	}
	return c.inner.Write(b)
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn; the wrapper tracks deadlines itself so
// partition blackholes (which never touch the underlying connection) still
// respect them, and passes them through so real blocking I/O is also cut.
func (c *Conn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.readDL, c.writeDL = t, t
	c.dlMu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.readDL = t
	c.dlMu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.writeDL = t
	c.dlMu.Unlock()
	return c.inner.SetWriteDeadline(t)
}
