package faultnet

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back until closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				select {
				case <-done:
				default:
					t.Error(err)
				}
				return
			}
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				buf := make([]byte, 4096)
				for {
					select {
					case <-done:
						return
					default:
					}
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String(), func() { close(done); _ = l.Close() }
}

func TestDialRefused(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	fab := New(1)
	fab.SetFaults("a", "b", Faults{RefuseConnect: true})
	if _, err := fab.Dial("a", "b", "tcp", addr, time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	// The reverse direction and other peers are unaffected.
	c, err := fab.Dial("b", "a", "tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("reverse dial: %v", err)
	}
	_ = c.Close()
}

func TestDialPartitionTimesOut(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	fab := New(1)
	fab.Partition("a", "b")
	start := time.Now()
	_, err := fab.Dial("a", "b", "tcp", addr, 50*time.Millisecond)
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) || !te.Timeout() {
		t.Fatalf("err = %v, want TimeoutError", err)
	}
	if elapsed < 40*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Errorf("partitioned dial returned after %v, want ~50ms", elapsed)
	}
}

func TestPartitionHealUnblocksRead(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	fab := New(1)
	conn, err := fab.Dial("a", "b", "tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// Round-trip works before the partition.
	if _, err := conn.Write([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	fab.Partition("a", "b")
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	type res struct {
		n   int
		err error
	}
	got := make(chan res, 1)
	go func() {
		if _, err := conn.Write([]byte("y\n")); err != nil {
			got <- res{0, err}
			return
		}
		n, err := conn.Read(buf)
		got <- res{n, err}
	}()
	// Heal mid-blackhole: the blocked operation must complete.
	time.Sleep(30 * time.Millisecond)
	fab.Heal("a", "b")
	select {
	case r := <-got:
		if r.err != nil || r.n == 0 {
			t.Fatalf("read after heal: n=%d err=%v", r.n, r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock after heal")
	}
}

func TestPartitionRespectsDeadline(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	fab := New(1)
	conn, err := fab.Dial("a", "b", "tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	fab.Partition("a", "b")
	_ = conn.SetDeadline(time.Now().Add(40 * time.Millisecond))
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TimeoutError", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("partitioned read held for %v past its 40ms deadline", elapsed)
	}
}

func TestReadLatencyInjected(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	fab := New(1)
	fab.SetFaults("a", "b", Faults{ReadLatency: 30 * time.Millisecond})
	conn, err := fab.Dial("a", "b", "tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := conn.Read(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("read returned in %v, want >= 30ms injected latency", elapsed)
	}
}

func TestResetInjected(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	fab := New(1)
	fab.SetFaults("a", "b", Faults{ResetProb: 1})
	conn, err := fab.Dial("a", "b", "tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("x\n")); !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	// The underlying connection is dead: further operations fail too.
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("read on reset connection succeeded")
	}
}

func TestPartialWriteTearsFrame(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	fab := New(7)
	fab.SetFaults("a", "b", Faults{PartialWriteProb: 1})
	conn, err := fab.Dial("a", "b", "tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	payload := []byte(strings.Repeat("z", 64))
	n, err := conn.Write(payload)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Errorf("torn write delivered %d bytes, want a strict prefix of %d", n, len(payload))
	}
}

func TestSeededDecisionsReplay(t *testing.T) {
	// Two fabrics with the same seed make the same reset decisions for the
	// same connection order; a different seed diverges (with overwhelming
	// probability over 64 draws).
	trial := func(seed int64) []bool {
		fab := New(seed)
		c1, c2 := net.Pipe()
		defer func() { _ = c1.Close() }()
		defer func() { _ = c2.Close() }()
		wrapped := fab.WrapConn("a", "b", c1).(*Conn)
		out := make([]bool, 64)
		for i := range out {
			out[i] = wrapped.chance(0.5)
		}
		return out
	}
	a, b, c := trial(42), trial(42), trial(43)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different decision sequences")
	}
	if !diff {
		t.Error("different seeds produced identical decision sequences")
	}
}

func TestTimelineSchedulesAndStops(t *testing.T) {
	fab := New(1)
	fired := make(chan string, 4)
	fab.At(10*time.Millisecond, func() { fab.Partition("a", "b"); fired <- "partition" })
	fab.At(40*time.Millisecond, func() { fab.Heal("a", "b"); fired <- "heal" })
	fab.Start()
	defer fab.Stop()

	select {
	case ev := <-fired:
		if ev != "partition" {
			t.Fatalf("first event = %q, want partition", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partition event never fired")
	}
	if !fab.state("a", "b").Partitioned {
		t.Error("link not partitioned after event")
	}
	select {
	case ev := <-fired:
		if ev != "heal" {
			t.Fatalf("second event = %q, want heal", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("heal event never fired")
	}
	if fab.state("a", "b").Partitioned {
		t.Error("link still partitioned after heal event")
	}

	// Events scheduled after Start still run, relative to the start time.
	fab.At(0, func() { fired <- "late" })
	select {
	case ev := <-fired:
		if ev != "late" {
			t.Fatalf("late event = %q", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-start event never fired")
	}
}

func TestWildcardResolution(t *testing.T) {
	fab := New(1)
	fab.SetFaults("*", "db", Faults{RefuseConnect: true})
	if !fab.state("anyone", "db").RefuseConnect {
		t.Error("wildcard from-rule did not match")
	}
	// Exact rules beat wildcards.
	fab.SetFaults("vip", "db", Faults{ReadLatency: time.Millisecond})
	st := fab.state("vip", "db")
	if st.RefuseConnect {
		t.Error("exact rule should shadow the wildcard refusal")
	}
	if st.ReadLatency != time.Millisecond {
		t.Error("exact rule not applied")
	}
}
