package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("te/cfg/ins-%04d", i)
	}
	return keys
}

// TestRingDeterministicAndOrderIndependent pins the property agent-side
// routing depends on: two rings with the same (vnodes, seed, member set)
// agree on every owner, regardless of the order members were added.
func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := NewRing(64, 7)
	b := NewRing(64, 7)
	for _, n := range []string{"db0", "db1", "db2", "db3"} {
		a.AddNode(n)
	}
	for _, n := range []string{"db3", "db1", "db0", "db2"} {
		b.AddNode(n)
	}
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s differs across insertion orders: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
	// A different seed must (somewhere) lay the ring out differently.
	c := NewRing(64, 8)
	for _, n := range []string{"db0", "db1", "db2", "db3"} {
		c.AddNode(n)
	}
	same := 0
	keys := testKeys(500)
	for _, k := range keys {
		if a.Owner(k) == c.Owner(k) {
			same++
		}
	}
	if same == len(keys) {
		t.Error("seed change left every owner identical; the seed is not feeding the hash")
	}
}

// TestRingOwnerNDistinct checks OwnerN returns distinct nodes, led by the
// owner, and caps at the member count.
func TestRingOwnerNDistinct(t *testing.T) {
	r := NewRing(32, 1)
	for _, n := range []string{"db0", "db1", "db2"} {
		r.AddNode(n)
	}
	for _, k := range testKeys(100) {
		group := r.OwnerN(k, 2)
		if len(group) != 2 {
			t.Fatalf("OwnerN(%s, 2) = %v", k, group)
		}
		if group[0] != r.Owner(k) {
			t.Fatalf("OwnerN(%s) not led by the owner: %v vs %s", k, group, r.Owner(k))
		}
		if group[0] == group[1] {
			t.Fatalf("OwnerN(%s) repeated a node: %v", k, group)
		}
	}
	if got := r.OwnerN("k", 10); len(got) != 3 {
		t.Fatalf("OwnerN capped wrong: %v", got)
	}
	if NewRing(8, 0).OwnerN("k", 2) != nil {
		t.Error("OwnerN on an empty ring must be nil")
	}
	if NewRing(8, 0).Owner("k") != "" {
		t.Error(`Owner on an empty ring must be ""`)
	}
}

// TestRingMinimalMovement checks the resharding invariant directly: adding
// a node re-owns keys only toward the new node; removing one re-owns only
// the keys it held.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(1000)
	r := NewRing(64, 3)
	for _, n := range []string{"db0", "db1", "db2"} {
		r.AddNode(n)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	grown := r.Clone()
	grown.AddNode("db3")
	gained := 0
	for _, k := range keys {
		after := grown.Owner(k)
		if after != before[k] && after != "db3" {
			t.Fatalf("add db3 moved %s from %s to %s — gratuitous movement", k, before[k], after)
		}
		if after == "db3" {
			gained++
		}
	}
	if gained == 0 {
		t.Error("added node owns no keys; virtual nodes are not spreading")
	}

	shrunk := r.Clone()
	shrunk.RemoveNode("db1")
	for _, k := range keys {
		after := shrunk.Owner(k)
		if before[k] == "db1" {
			if after == "db1" {
				t.Fatalf("%s still owned by removed db1", k)
			}
		} else if after != before[k] {
			t.Fatalf("remove db1 moved %s from %s to %s — gratuitous movement", k, before[k], after)
		}
	}
}

// TestRingBalance bounds the ownership skew: with 64 virtual nodes per
// member no node should own a wildly disproportionate key share.
func TestRingBalance(t *testing.T) {
	r := NewRing(64, 42)
	nodes := []string{"db0", "db1", "db2", "db3"}
	for _, n := range nodes {
		r.AddNode(n)
	}
	counts := make(map[string]int)
	keys := testKeys(4000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.0f%% of keys (counts %v); virtual-node spread is broken", n, share*100, counts)
		}
	}
}
