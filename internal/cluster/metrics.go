package cluster

import (
	"errors"

	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// Metric names exported by the cluster layer: per-node routed-operation and
// error counts (the load-split evidence behind Figure 14's per-node core
// budget), membership/migration counters, and the moved-keys histogram that
// pins the minimal-movement property in production telemetry.
const (
	MetricClusterNodeOps    = "megate_cluster_node_ops_total"
	MetricClusterNodeErrors = "megate_cluster_node_errors_total"
	// MetricClusterNodeBusy splits admission-control sheds out of the error
	// count per node: a shard shedding under overload is a load signal, not a
	// failure signal, and the two must not blur in a dashboard.
	MetricClusterNodeBusy   = "megate_cluster_node_busy_total"
	MetricClusterMigrations = "megate_cluster_migrations_total"
	MetricClusterMovedKeys  = "megate_cluster_rebalance_moved_keys"
	MetricClusterNodes      = "megate_cluster_nodes"
	// MetricClusterBatchKeys sizes the per-shard groups of PutBatch calls —
	// the batching-efficiency evidence of the streaming publisher (large
	// buckets mean the delta writes really are amortized per shard).
	MetricClusterBatchKeys = "megate_cluster_batch_keys"
)

// migrationKinds are the label values of MetricClusterMigrations.
var migrationKinds = []string{"add", "remove"}

// RegisterMetrics pre-registers the cluster metric inventory in r so a
// scrape sees zero-valued series before any routing happens. The per-node
// series carry a dynamic node label and appear on first use.
func RegisterMetrics(r *telemetry.Registry) {
	m := newClusterMetrics(r)
	for _, k := range migrationKinds {
		_ = m.migrations(k)
	}
}

// clusterMetrics lazily binds the registry series. Per-(node, op) counters
// are fetched from the registry on use: the label space is bounded by the
// member count times the six protocol verbs.
type clusterMetrics struct {
	r         *telemetry.Registry
	movedKeys *telemetry.Histogram
	batchKeys *telemetry.Histogram
	nodes     *telemetry.Gauge
}

func newClusterMetrics(r *telemetry.Registry) *clusterMetrics {
	return &clusterMetrics{
		r:         r,
		movedKeys: r.Histogram(MetricClusterMovedKeys, telemetry.WideCountBuckets),
		batchKeys: r.Histogram(MetricClusterBatchKeys, telemetry.WideCountBuckets),
		nodes:     r.Gauge(MetricClusterNodes),
	}
}

// op records one routed operation against node; BUSY failures count in the
// per-node shed series as well as the error series. A delta GAP is an
// authoritative answer (resync via snapshot), not a node error.
func (m *clusterMetrics) op(node, op string, err error) {
	m.r.Counter(MetricClusterNodeOps, "node", node, "op", op).Inc()
	if err != nil && !errors.Is(err, kvstore.ErrDeltaGap) {
		m.r.Counter(MetricClusterNodeErrors, "node", node, "op", op).Inc()
		if errors.Is(err, kvstore.ErrBusy) {
			m.r.Counter(MetricClusterNodeBusy, "node", node, "op", op).Inc()
		}
	}
}

// migrations returns the migration counter for kind ("add" or "remove").
func (m *clusterMetrics) migrations(kind string) *telemetry.Counter {
	return m.r.Counter(MetricClusterMigrations, "kind", kind)
}
