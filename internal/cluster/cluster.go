package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// NodeClient is the per-node database surface the cluster composes. Both
// *kvstore.Client (one server per partition) and *kvstore.ReplicaClient (a
// replica group per partition, typically built over Ring.OwnerN addresses)
// satisfy it.
type NodeClient interface {
	Version() (uint64, error)
	Get(key string) ([]byte, bool, error)
	Put(key string, value []byte) error
	Delete(key string) error
	Keys(prefix string) ([]string, error)
	Publish(v uint64) error
}

// DeltaNodeClient is the optional snapshot+delta surface a node client may
// offer in addition to NodeClient; *kvstore.Client and *kvstore.ReplicaClient
// both do. The cluster routes these to the key's owning node so a cold agent
// syncs its whole prefix in one request against exactly its home shard.
type DeltaNodeClient interface {
	Snapshot(prefix string) (uint64, map[string][]byte, error)
	Delta(since uint64, prefix string) (uint64, []kvstore.DeltaEntry, error)
}

// closer is implemented by node clients holding persistent connections.
type closer interface{ Close() }

// ErrNoNodes reports an operation against a cluster with no members.
var ErrNoNodes = errors.New("cluster: no nodes")

// Client routes TE-database operations across a partitioned node set. Point
// operations (Get/Put/Delete) go to the key's owning node; Keys
// scatter-gathers every node and merges; Publish fans the version epoch out
// to every node and Version returns the minimum epoch across nodes, so the
// cluster version never runs ahead of what every shard has accepted.
//
// The controller is the cluster's only writer and the only caller of
// AddNode/RemoveNode; concurrent reads are safe throughout a membership
// change (they route by the pre-change ring until the data has moved), but
// two concurrent membership changes, or writes racing a migration, are not
// coordinated — exactly the single-writer discipline the control loop
// already follows.
type Client struct {
	// Metrics routes the per-node op counters and migration telemetry; nil
	// uses telemetry.Default. Set before first use.
	Metrics *telemetry.Registry

	mu    sync.RWMutex
	ring  *Ring
	nodes map[string]NodeClient

	mOnce sync.Once
	m     *clusterMetrics
}

// New creates an empty cluster client; vnodes and seed parameterize the
// ring (vnodes < 1 means DefaultVirtualNodes). Every participant of one
// deployment — controller and agents — must use the same pair so their
// rings agree on ownership.
func New(vnodes int, seed int64, opts ...func(*Client)) *Client {
	c := &Client{ring: NewRing(vnodes, seed), nodes: make(map[string]NodeClient)}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// metrics lazily binds the registry series so struct construction stays
// allocation-only.
func (c *Client) metrics() *clusterMetrics {
	c.mOnce.Do(func() {
		reg := c.Metrics
		if reg == nil {
			reg = telemetry.Default
		}
		c.m = newClusterMetrics(reg)
	})
	return c.m
}

// Join adds a node to the ring without migrating any data: the initial
// cluster assembly, and how agents adopt a membership change the controller
// already migrated for. Use AddNode to grow a cluster that holds data.
func (c *Client) Join(name string, nc NodeClient) error {
	m := c.metrics()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[name]; ok {
		return fmt.Errorf("cluster: node %s already joined", name)
	}
	c.nodes[name] = nc
	c.ring.AddNode(name)
	m.nodes.Set(float64(len(c.nodes)))
	return nil
}

// Leave removes a node from the ring without migrating any data — the
// agent-side counterpart of RemoveNode.
func (c *Client) Leave(name string) error {
	m := c.metrics()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[name]; !ok {
		return fmt.Errorf("cluster: node %s not a member", name)
	}
	delete(c.nodes, name)
	c.ring.RemoveNode(name)
	m.nodes.Set(float64(len(c.nodes)))
	return nil
}

// Nodes returns the member names in sorted order.
func (c *Client) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Nodes()
}

// Owner returns the node owning key ("" on an empty cluster).
func (c *Client) Owner(key string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Owner(key)
}

// OwnerN returns up to n distinct nodes clockwise from key — the owner and
// the successors a per-partition replica group would span.
func (c *Client) OwnerN(key string, n int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.OwnerN(key, n)
}

// owner resolves key to its owning node's client under the read lock.
func (c *Client) owner(key string) (string, NodeClient, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	name := c.ring.Owner(key)
	if name == "" {
		return "", nil, ErrNoNodes
	}
	return name, c.nodes[name], nil
}

// members snapshots the node set under the read lock, sorted by name, so
// fan-out I/O runs lock-free in a deterministic order.
func (c *Client) members() ([]string, []NodeClient) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := c.ring.Nodes()
	clients := make([]NodeClient, len(names))
	for i, n := range names {
		clients[i] = c.nodes[n]
	}
	return names, clients
}

// Get fetches key from its owning node.
func (c *Client) Get(key string) ([]byte, bool, error) {
	name, nc, err := c.owner(key)
	if err != nil {
		return nil, false, err
	}
	v, ok, err := nc.Get(key)
	c.metrics().op(name, "get", err)
	return v, ok, err
}

// Put stores value under key on its owning node.
func (c *Client) Put(key string, value []byte) error {
	name, nc, err := c.owner(key)
	if err != nil {
		return err
	}
	err = nc.Put(key, value)
	c.metrics().op(name, "put", err)
	return err
}

// Delete removes key from its owning node.
func (c *Client) Delete(key string) error {
	name, nc, err := c.owner(key)
	if err != nil {
		return err
	}
	err = nc.Delete(key)
	c.metrics().op(name, "del", err)
	return err
}

// OwnerVersion returns the version epoch of the node owning key — what an
// agent polls: its home shard's epoch, not the whole cluster's.
func (c *Client) OwnerVersion(key string) (uint64, error) {
	name, nc, err := c.owner(key)
	if err != nil {
		return 0, err
	}
	v, err := nc.Version()
	c.metrics().op(name, "version", err)
	return v, err
}

// OwnerSnapshot fetches every record under prefix from the node owning key
// — the one-request cold-sync path, scoped to the agent's home shard like
// OwnerVersion. The owning node must offer the snapshot+delta surface.
func (c *Client) OwnerSnapshot(key, prefix string) (uint64, map[string][]byte, error) {
	name, nc, err := c.owner(key)
	if err != nil {
		return 0, nil, err
	}
	dc, ok := nc.(DeltaNodeClient)
	if !ok {
		return 0, nil, fmt.Errorf("cluster: node %s does not support snapshot sync", name)
	}
	v, recs, err := dc.Snapshot(prefix)
	c.metrics().op(name, "snap", err)
	return v, recs, err
}

// OwnerDelta fetches the compacted changes under prefix since the given
// version from the node owning key. kvstore.ErrDeltaGap propagates — the
// caller resyncs with OwnerSnapshot.
func (c *Client) OwnerDelta(key string, since uint64, prefix string) (uint64, []kvstore.DeltaEntry, error) {
	name, nc, err := c.owner(key)
	if err != nil {
		return 0, nil, err
	}
	dc, ok := nc.(DeltaNodeClient)
	if !ok {
		return 0, nil, fmt.Errorf("cluster: node %s does not support snapshot sync", name)
	}
	v, entries, err := dc.Delta(since, prefix)
	c.metrics().op(name, "delta", err)
	return v, entries, err
}

// Keys scatter-gathers the prefix enumeration across every node and merges
// the per-node (already sorted) results into one sorted, deduplicated list.
// Any node failing fails the call: a partial enumeration would silently
// drop a shard's records from recovery.
func (c *Client) Keys(prefix string) ([]string, error) {
	names, clients := c.members()
	if len(names) == 0 {
		return nil, ErrNoNodes
	}
	m := c.metrics()
	results := make([][]string, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i := range clients {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = clients[i].Keys(prefix)
		}()
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		m.op(names[i], "keys", err)
		if err != nil {
			failed = append(failed, fmt.Errorf("%s: %w", names[i], err))
		}
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("cluster: keys scatter failed: %w", errors.Join(failed...))
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	merged := make([]string, 0, total)
	for _, r := range results {
		merged = append(merged, r...)
	}
	sort.Strings(merged)
	// Dedup in place: a key mid-migration can briefly exist on two nodes.
	out := merged[:0]
	for _, k := range merged {
		if len(out) == 0 || out[len(out)-1] != k {
			out = append(out, k)
		}
	}
	return out, nil
}

// Version returns the cluster version: the minimum epoch across every node.
// A consumer acting on it therefore never runs ahead of a shard that has
// not yet accepted the publish. Any node failing fails the call — an
// unreachable shard makes the minimum unknowable.
func (c *Client) Version() (uint64, error) {
	names, clients := c.members()
	if len(names) == 0 {
		return 0, ErrNoNodes
	}
	m := c.metrics()
	var min uint64
	for i, nc := range clients {
		v, err := nc.Version()
		m.op(names[i], "version", err)
		if err != nil {
			return 0, fmt.Errorf("cluster: version on %s: %w", names[i], err)
		}
		if i == 0 || v < min {
			min = v
		}
	}
	return min, nil
}

// Publish advertises the version epoch on every node. Every node is
// attempted even after a failure — a reachable shard should not stay behind
// because an earlier one in the fan-out was down — and the joined error
// reports the shards that missed the epoch.
func (c *Client) Publish(v uint64) error {
	names, clients := c.members()
	if len(names) == 0 {
		return ErrNoNodes
	}
	m := c.metrics()
	var failed []error
	for i, nc := range clients {
		err := nc.Publish(v)
		m.op(names[i], "publish", err)
		if err != nil {
			failed = append(failed, fmt.Errorf("%s: %w", names[i], err))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("cluster: publish failed on %d/%d nodes: %w", len(failed), len(names), errors.Join(failed...))
	}
	return nil
}

// Close closes every node client that holds closable connections.
func (c *Client) Close() {
	_, clients := c.members()
	for _, nc := range clients {
		if cl, ok := nc.(closer); ok {
			cl.Close()
		}
	}
}
