package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"megate/internal/kvstore"
)

// BatchPutter is the optional NodeClient extension for nodes that accept a
// whole write batch in one wire round-trip. *kvstore.Client implements it
// with pipelined PUTs; nodes without it degrade to sequential Puts inside
// PutBatch, preserving semantics at the old cost.
type BatchPutter interface {
	PutBatch(keys []string, values [][]byte) (acked int, err error)
}

// PutBatch stores every key/value pair on its owning shard, grouping the
// records per shard and issuing one batched round-trip per shard, shards in
// parallel. It is the streaming delta publisher's write path: instead of one
// round-trip per changed config, one per (shard, flush).
//
// On return, failed lists the indices (into keys) of pairs that were not
// durably stored, and err joins the per-shard causes; failed is nil exactly
// when err is nil. Like the point Put, the batch is not atomic across or
// within shards — a controller tolerating write errors re-publishes failed
// records next interval (the delta layer keeps their hashes dirty).
func (c *Client) PutBatch(keys []string, values [][]byte) (failed []int, err error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("cluster: PutBatch length mismatch: %d keys, %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil, nil
	}

	// Group record indices by owning shard under one ring snapshot so a
	// membership change mid-call cannot split the view.
	c.mu.RLock()
	groups := make(map[string][]int)
	for i, k := range keys {
		name := c.ring.Owner(k)
		if name == "" {
			c.mu.RUnlock()
			all := make([]int, len(keys))
			for j := range all {
				all[j] = j
			}
			return all, ErrNoNodes
		}
		groups[name] = append(groups[name], i)
	}
	clients := make(map[string]NodeClient, len(groups))
	for name := range groups {
		clients[name] = c.nodes[name]
	}
	c.mu.RUnlock()

	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)

	m := c.metrics()
	perShardFailed := make([][]int, len(names))
	perShardErr := make([]error, len(names))
	var wg sync.WaitGroup
	for gi, name := range names {
		gi, name := gi, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx := groups[name]
			nc := clients[name]
			m.batchKeys.Observe(float64(len(idx)))
			skeys := make([]string, len(idx))
			svals := make([][]byte, len(idx))
			for j, i := range idx {
				skeys[j], svals[j] = keys[i], values[i]
			}
			if bp, ok := nc.(BatchPutter); ok {
				acked, err := bp.PutBatch(skeys, svals)
				m.op(name, "mput", err)
				if err != nil {
					// A torn batch acknowledges a prefix; everything from
					// the first unacknowledged record on is unconfirmed.
					if acked < 0 || acked > len(idx) {
						acked = 0
					}
					perShardFailed[gi] = idx[acked:]
					perShardErr[gi] = fmt.Errorf("%s: %w", name, err)
				}
				return
			}
			// Degraded path: sequential point writes, continuing past
			// failures so one bad record does not doom the rest.
			var errs []error
			for j, k := range skeys {
				err := nc.Put(k, svals[j])
				m.op(name, "put", err)
				if err != nil {
					perShardFailed[gi] = append(perShardFailed[gi], idx[j])
					errs = append(errs, err)
				}
			}
			if len(errs) > 0 {
				perShardErr[gi] = fmt.Errorf("%s: %w", name, errors.Join(errs...))
			}
		}()
	}
	wg.Wait()

	var causes []error
	for gi := range names {
		failed = append(failed, perShardFailed[gi]...)
		if perShardErr[gi] != nil {
			causes = append(causes, perShardErr[gi])
		}
	}
	if len(causes) > 0 {
		sort.Ints(failed)
		return failed, fmt.Errorf("cluster: batch put failed for %d/%d records: %w", len(failed), len(keys), errors.Join(causes...))
	}
	return nil, nil
}

// StoreNode adapts an in-process *kvstore.Store to the NodeClient surface,
// letting benchmarks and tests assemble a multi-shard cluster without TCP
// servers. It implements BatchPutter so the batched write path is exercised.
type StoreNode struct {
	Store *kvstore.Store
}

func (n StoreNode) Version() (uint64, error) { return n.Store.Version(), nil }

func (n StoreNode) Get(key string) ([]byte, bool, error) {
	v, ok := n.Store.Get(key)
	return v, ok, nil
}

func (n StoreNode) Put(key string, value []byte) error {
	n.Store.Put(key, value)
	return nil
}

func (n StoreNode) Delete(key string) error {
	n.Store.Delete(key)
	return nil
}

func (n StoreNode) Keys(prefix string) ([]string, error) { return n.Store.Keys(prefix), nil }

func (n StoreNode) Publish(v uint64) error {
	n.Store.Publish(v)
	return nil
}

func (n StoreNode) PutBatch(keys []string, values [][]byte) (int, error) {
	for i, k := range keys {
		n.Store.Put(k, values[i])
	}
	return len(keys), nil
}
