package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// startNodes serves n in-process kvstore servers and returns their
// addresses plus direct (cluster-unaware) observer clients.
func startNodes(t *testing.T, n int, reg *telemetry.Registry) (addrs []string, direct []*kvstore.Client) {
	t.Helper()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := kvstore.Serve(l, kvstore.NewStore(2), kvstore.WithMetrics(reg))
		t.Cleanup(srv.Close)
		addrs = append(addrs, srv.Addr())
		direct = append(direct, &kvstore.Client{Addr: srv.Addr(), Timeout: 2 * time.Second, Metrics: reg})
	}
	return addrs, direct
}

// newTestCluster joins one node per address, named db0..dbN-1.
func newTestCluster(t *testing.T, addrs []string, reg *telemetry.Registry) *Client {
	t.Helper()
	c := New(32, 11, func(c *Client) { c.Metrics = reg })
	for i, a := range addrs {
		if err := c.Join(fmt.Sprintf("db%d", i), &kvstore.Client{Addr: a, Timeout: 2 * time.Second, Metrics: reg}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// placement asserts every stored key lives on exactly the node the ring
// owns it to — the post-migration placement invariant.
func placement(t *testing.T, c *Client, direct []*kvstore.Client) {
	t.Helper()
	for i, dc := range direct {
		node := fmt.Sprintf("db%d", i)
		if !contains(c.Nodes(), node) {
			continue // detached node: its store is out of the placement domain
		}
		keys, err := dc.Keys("")
		if err != nil {
			t.Fatalf("enumerate %s: %v", node, err)
		}
		for _, k := range keys {
			if owner := c.Owner(k); owner != node {
				t.Errorf("key %s stored on %s but owned by %s", k, node, owner)
			}
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// TestClusterRoutingAndScatterGather drives the whole read/write surface:
// point ops land on (only) the owning node, Keys merges the shards sorted
// and deduplicated, Version is the min epoch, Publish fans out.
func TestClusterRoutingAndScatterGather(t *testing.T) {
	reg := telemetry.NewRegistry()
	addrs, direct := startNodes(t, 3, reg)
	c := newTestCluster(t, addrs, reg)
	defer c.Close()

	keys := testKeys(60)
	for i, k := range keys {
		if err := c.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	placement(t, c, direct)

	got, err := c.Keys("te/cfg/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("scatter-gather returned %d keys, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("merged keys unsorted or duplicated at %d: %q >= %q", i, got[i-1], got[i])
		}
	}

	// A key duplicated onto a non-owner (mid-migration state) must be
	// deduplicated by the merge.
	dup := keys[0]
	for i := range direct {
		if fmt.Sprintf("db%d", i) != c.Owner(dup) {
			if err := direct[i].Put(dup, []byte("stale")); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	got, err = c.Keys("te/cfg/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("dedup failed: %d keys after duplication, want %d", len(got), len(keys))
	}

	// Reads route to the owner, which still serves the authoritative bytes.
	v, ok, err := c.Get(keys[3])
	if err != nil || !ok || !bytes.Equal(v, []byte("v3")) {
		t.Fatalf("Get(%s) = %q %v %v", keys[3], v, ok, err)
	}
	if err := c.Delete(keys[3]); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(keys[3]); ok {
		t.Fatal("deleted key still present")
	}

	// Version is min across shards: publish everywhere, then bump one shard
	// ahead — the cluster version must stay at the laggard's epoch.
	if err := c.Publish(5); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Version(); err != nil || v != 5 {
		t.Fatalf("Version after fan-out publish = %d, %v", v, err)
	}
	if err := direct[0].Publish(9); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Version(); err != nil || v != 5 {
		t.Fatalf("Version with one shard ahead = %d, %v; want the minimum 5", v, err)
	}
	if hv, err := c.OwnerVersion(keys[5]); err != nil || (hv != 5 && hv != 9) {
		t.Fatalf("OwnerVersion = %d, %v", hv, err)
	}

	// The per-node op counters saw the routed traffic.
	total := uint64(0)
	for i := range addrs {
		total += reg.Counter(MetricClusterNodeOps, "node", fmt.Sprintf("db%d", i), "op", "put").Value()
	}
	if total != uint64(len(keys)) {
		t.Errorf("per-node put counters sum to %d, want %d", total, len(keys))
	}
}

// TestClusterAddNodeLiveResharding grows a loaded cluster and checks the
// migration contract: only re-owned keys move, the placement invariant
// holds afterwards, reads keep succeeding throughout the migration, and the
// new node's epoch is seeded so the cluster version does not regress.
func TestClusterAddNodeLiveResharding(t *testing.T) {
	reg := telemetry.NewRegistry()
	addrs, direct := startNodes(t, 3, reg)
	c := newTestCluster(t, addrs[:2], reg)
	defer c.Close()

	keys := testKeys(80)
	for i, k := range keys {
		if err := c.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Publish(7); err != nil {
		t.Fatal(err)
	}
	ownersBefore := make(map[string]string, len(keys))
	for _, k := range keys {
		ownersBefore[k] = c.Owner(k)
	}

	// Hammer reads concurrently with the migration; every read must succeed
	// with the right bytes — reads are served throughout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var readErr error
	var readMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := keys[i%len(keys)]
			v, ok, err := c.Get(k)
			if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i%len(keys)))) {
				readMu.Lock()
				readErr = fmt.Errorf("read %s during migration: %q %v %v", k, v, ok, err)
				readMu.Unlock()
				return
			}
		}
	}()

	moved, err := c.AddNode("db2", &kvstore.Client{Addr: addrs[2], Timeout: 2 * time.Second, Metrics: reg})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	if moved == 0 {
		t.Fatal("AddNode moved nothing; the new node owns no keys")
	}

	// Moved set == re-owned set.
	reOwned := 0
	for _, k := range keys {
		after := c.Owner(k)
		if after != ownersBefore[k] {
			if after != "db2" {
				t.Fatalf("key %s re-owned to %s, not the added node", k, after)
			}
			reOwned++
		}
	}
	if moved != reOwned {
		t.Fatalf("AddNode reported %d moved keys, ring re-owned %d", moved, reOwned)
	}
	placement(t, c, direct)

	// Epoch seeded: the empty node must not drag the min down.
	if v, err := c.Version(); err != nil || v != 7 {
		t.Fatalf("cluster version after growth = %d, %v; want 7", v, err)
	}
	if got := reg.Histogram(MetricClusterMovedKeys, nil).Count(); got != 1 {
		t.Errorf("moved-keys histogram observations = %d, want 1", got)
	}
	if got := reg.Counter(MetricClusterMigrations, "kind", "add").Value(); got != 1 {
		t.Errorf("add-migration counter = %d, want 1", got)
	}
}

// TestClusterRemoveNodeDrain drains a member out and checks every one of
// its records lands on the new owner, the drained store is emptied, and the
// survivors' untouched keys did not move.
func TestClusterRemoveNodeDrain(t *testing.T) {
	reg := telemetry.NewRegistry()
	addrs, direct := startNodes(t, 3, reg)
	c := newTestCluster(t, addrs, reg)
	defer c.Close()

	keys := testKeys(80)
	for i, k := range keys {
		if err := c.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ownersBefore := make(map[string]string, len(keys))
	victimKeys := 0
	for _, k := range keys {
		ownersBefore[k] = c.Owner(k)
		if ownersBefore[k] == "db1" {
			victimKeys++
		}
	}

	moved, err := c.RemoveNode("db1")
	if err != nil {
		t.Fatal(err)
	}
	if moved != victimKeys {
		t.Fatalf("RemoveNode moved %d keys, the drained node owned %d", moved, victimKeys)
	}
	for _, k := range keys {
		after := c.Owner(k)
		if ownersBefore[k] != "db1" && after != ownersBefore[k] {
			t.Fatalf("survivor key %s moved from %s to %s during drain", k, ownersBefore[k], after)
		}
		v, ok, err := c.Get(k)
		if err != nil || !ok {
			t.Fatalf("key %s unreadable after drain: %v %v", k, ok, err)
		}
		_ = v
	}
	placement(t, c, direct)
	if left, err := direct[1].Keys(""); err != nil || len(left) != 0 {
		t.Fatalf("drained node still holds %d records (err=%v)", len(left), err)
	}
	if _, err := c.RemoveNode("db1"); err == nil {
		t.Fatal("removing a non-member succeeded")
	}
}

// TestClusterEmptyAndErrors covers the degenerate surfaces.
func TestClusterEmptyAndErrors(t *testing.T) {
	c := New(0, 0, func(c *Client) { c.Metrics = telemetry.NewRegistry() })
	if _, _, err := c.Get("k"); err != ErrNoNodes {
		t.Fatalf("Get on empty cluster: %v", err)
	}
	if _, err := c.Keys(""); err != ErrNoNodes {
		t.Fatalf("Keys on empty cluster: %v", err)
	}
	if _, err := c.Version(); err != ErrNoNodes {
		t.Fatalf("Version on empty cluster: %v", err)
	}
	if err := c.Publish(1); err != ErrNoNodes {
		t.Fatalf("Publish on empty cluster: %v", err)
	}
	reg := telemetry.NewRegistry()
	addrs, _ := startNodes(t, 1, reg)
	nc := &kvstore.Client{Addr: addrs[0], Timeout: time.Second, Metrics: reg}
	if err := c.Join("db0", nc); err != nil {
		t.Fatal(err)
	}
	if err := c.Join("db0", nc); err == nil {
		t.Fatal("double Join succeeded")
	}
	if _, err := c.AddNode("db0", nc); err == nil {
		t.Fatal("AddNode of a member succeeded")
	}
	if _, err := c.RemoveNode("db0"); err == nil {
		t.Fatal("removing the last node succeeded")
	}
}
