package cluster

import (
	"fmt"
	"testing"
)

// FuzzRingOwnership drives a ring through an arbitrary AddNode/RemoveNode
// sequence (decoded from the fuzz input) and checks the resharding
// invariants after every step: every key has exactly one owner drawn from
// the live member set, OwnerN is consistent with Owner, and the set of keys
// whose owner changed is exactly the re-owned set — keys move only onto an
// added node or off a removed one, never between surviving nodes.
func FuzzRingOwnership(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 0x81, 3})
	f.Add(int64(42), []byte{0, 0, 1, 2, 3, 0x80, 0x82, 4, 0x84})
	f.Add(int64(-7), []byte{5, 5, 0x85, 5})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		const pool = 8 // node name pool: n0..n7
		keys := testKeys(200)
		r := NewRing(16, seed)
		owner := make(map[string]string, len(keys))
		for _, k := range keys {
			owner[k] = r.Owner(k)
		}
		if len(ops) > 64 {
			ops = ops[:64]
		}
		for step, op := range ops {
			name := fmt.Sprintf("n%d", op&0x7f%pool)
			remove := op&0x80 != 0
			if remove {
				r.RemoveNode(name)
			} else {
				r.AddNode(name)
			}
			members := make(map[string]bool)
			for _, n := range r.Nodes() {
				members[n] = true
			}
			for _, k := range keys {
				after := r.Owner(k)
				switch {
				case r.Len() == 0:
					if after != "" {
						t.Fatalf("step %d: empty ring owns %s via %q", step, k, after)
					}
				case !members[after]:
					t.Fatalf("step %d: %s owned by non-member %q", step, k, after)
				}
				if r.Len() > 0 {
					group := r.OwnerN(k, 2)
					if len(group) == 0 || group[0] != after {
						t.Fatalf("step %d: OwnerN(%s) = %v disagrees with Owner %q", step, k, group, after)
					}
				}
				before := owner[k]
				if after != before {
					// Moved: legal only onto the node just added or off the
					// node just removed (or to/from "" when the ring
					// empties/first fills).
					if remove {
						if before != name && before != "" {
							t.Fatalf("step %d: remove %s moved %s from unrelated %s to %s",
								step, name, k, before, after)
						}
					} else {
						if after != name {
							t.Fatalf("step %d: add %s moved %s from %s to unrelated %s",
								step, name, k, before, after)
						}
					}
				}
				owner[k] = after
			}
		}
	})
}
