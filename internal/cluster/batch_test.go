package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// TestPutBatchPlacement drives a batch across real TCP nodes: every record
// must land on exactly its ring owner, identical to sequential Puts.
func TestPutBatchPlacement(t *testing.T) {
	reg := telemetry.NewRegistry()
	addrs, direct := startNodes(t, 3, reg)
	c := newTestCluster(t, addrs, reg)

	var keys []string
	var values [][]byte
	for i := 0; i < 120; i++ {
		keys = append(keys, fmt.Sprintf("te/cfg/i-%04d", i))
		values = append(values, []byte(fmt.Sprintf("cfg-%d", i)))
	}
	failed, err := c.PutBatch(keys, values)
	if err != nil || failed != nil {
		t.Fatalf("PutBatch: failed=%v err=%v", failed, err)
	}
	placement(t, c, direct)
	for i, k := range keys {
		v, ok, err := c.Get(k)
		if err != nil || !ok || !bytes.Equal(v, values[i]) {
			t.Fatalf("get %s: ok=%v err=%v", k, ok, err)
		}
	}
	// The batch must reach each shard as one pipelined mput, not per-key
	// round trips.
	var mputs, puts uint64
	for _, name := range c.Nodes() {
		mputs += reg.Counter(MetricClusterNodeOps, "node", name, "op", "mput").Value()
		puts += reg.Counter(MetricClusterNodeOps, "node", name, "op", "put").Value()
	}
	if mputs == 0 || mputs > 3 {
		t.Errorf("mput ops = %v, want 1..3 (one per shard)", mputs)
	}
	if puts != 0 {
		t.Errorf("point put ops = %v, want 0 (batch path only)", puts)
	}
}

// TestPutBatchStoreNodes runs the same contract over in-process StoreNodes —
// the harness the megascale bench uses.
func TestPutBatchStoreNodes(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(32, 11, func(c *Client) { c.Metrics = reg })
	stores := make([]*kvstore.Store, 4)
	for i := range stores {
		stores[i] = kvstore.NewStore(4)
		if err := c.Join(fmt.Sprintf("db%d", i), StoreNode{Store: stores[i]}); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	var values [][]byte
	for i := 0; i < 400; i++ {
		keys = append(keys, fmt.Sprintf("te/cfg/i-%04d", i))
		values = append(values, []byte{byte(i)})
	}
	if failed, err := c.PutBatch(keys, values); err != nil || failed != nil {
		t.Fatalf("PutBatch: failed=%v err=%v", failed, err)
	}
	total := 0
	for _, s := range stores {
		total += s.Len()
	}
	if total != len(keys) {
		t.Fatalf("stored %d keys across shards, want %d", total, len(keys))
	}
	for i, k := range keys {
		v, ok, err := c.Get(k)
		if err != nil || !ok || !bytes.Equal(v, values[i]) {
			t.Fatalf("get %s: ok=%v err=%v", k, ok, err)
		}
	}
}

// failingNode wraps a NodeClient, failing all writes.
type failingNode struct {
	NodeClient
}

var errInjected = errors.New("injected write failure")

func (f failingNode) Put(string, []byte) error { return errInjected }
func (f failingNode) PutBatch(keys []string, values [][]byte) (int, error) {
	return 0, errInjected
}

// TestPutBatchPartialFailure kills one shard's writes: PutBatch must report
// exactly that shard's records as failed while the rest are durably stored —
// the contract TolerateWriteErrors publication relies on.
func TestPutBatchPartialFailure(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(32, 11, func(c *Client) { c.Metrics = reg })
	stores := make([]*kvstore.Store, 3)
	for i := range stores {
		stores[i] = kvstore.NewStore(4)
		var nc NodeClient = StoreNode{Store: stores[i]}
		if i == 1 {
			nc = failingNode{NodeClient: nc}
		}
		if err := c.Join(fmt.Sprintf("db%d", i), nc); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	var values [][]byte
	for i := 0; i < 300; i++ {
		keys = append(keys, fmt.Sprintf("te/cfg/i-%04d", i))
		values = append(values, []byte("v"))
	}
	failed, err := c.PutBatch(keys, values)
	if err == nil {
		t.Fatal("expected error from failing shard")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("error does not wrap the injected cause: %v", err)
	}
	failedSet := make(map[int]bool, len(failed))
	for _, i := range failed {
		failedSet[i] = true
	}
	for i, k := range keys {
		owner := c.Owner(k)
		if owner == "db1" && !failedSet[i] {
			t.Errorf("record %d owned by failing shard not reported failed", i)
		}
		if owner != "db1" {
			if failedSet[i] {
				t.Errorf("record %d on healthy shard reported failed", i)
			}
			if _, ok, _ := c.Get(k); !ok {
				t.Errorf("record %d missing from healthy shard", i)
			}
		}
	}
}
