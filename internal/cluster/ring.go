// Package cluster partitions the TE database horizontally across nodes —
// the deployment shape the paper's §3.2 assumes when it says the database
// "consists of multiple machines" absorbing millions of endpoint polls at
// about one core per node (Figure 14). A consistent-hash ring with virtual
// nodes assigns every config key exactly one owning node; the Client routes
// point operations to owners, scatter-gathers enumeration, and treats the
// minimum per-shard version epoch as the cluster version, so a consumer
// never observes a configuration version that some shard has not yet
// durably accepted. Membership changes migrate only the keys whose owner
// actually changed (the minimal-movement property consistent hashing is
// chosen for), with reads served from the old ownership throughout.
package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node virtual point count when a Ring is
// built with vnodes < 1. 64 points per node keeps the ownership split of a
// small cluster within a few percent of even without making ring rebuilds
// expensive.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring with virtual nodes. Ownership is a pure
// function of (seed, vnodes, member set): two rings built with the same
// parameters agree on every key's owner regardless of the order nodes were
// added, which is what lets every agent carry its own Ring and still route
// to the same shard the controller wrote. Ring itself is not synchronized;
// Client guards its ring with a mutex.
type Ring struct {
	vnodes int
	seed   int64
	points []point // sorted by (hash, node)
	nodes  map[string]bool
}

// point is one virtual node position on the ring.
type point struct {
	hash uint64
	node string
}

// NewRing creates an empty ring; vnodes < 1 means DefaultVirtualNodes. The
// seed perturbs every hash so distinct deployments get distinct (but each
// internally deterministic) ownership layouts.
func NewRing(vnodes int, seed int64) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, seed: seed, nodes: make(map[string]bool)}
}

// hash positions a string on the ring: FNV-64a over the seed then the
// string, passed through a 64-bit finalizer. The finalizer matters: raw
// FNV-64a barely avalanches its final byte (strings differing only in the
// last character land within ~2^44 of each other on the 2^64 ring), which
// would glue sequential instance keys onto one owner.
func (r *Ring) hash(s string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(r.seed))
	h.Write(b[:])
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective scrambler giving full
// avalanche to every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Len returns the member node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Contains reports whether node is a member.
func (r *Ring) Contains(node string) bool { return r.nodes[node] }

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddNode inserts a node's virtual points. Adding an existing member is a
// no-op.
func (r *Ring) AddNode(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: r.hash(node + "#" + strconv.Itoa(i)), node: node})
	}
	// Ties (astronomically rare with 64-bit hashes) break by node name so
	// ownership stays insertion-order independent even then.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// RemoveNode removes a node's virtual points. Removing a non-member is a
// no-op.
func (r *Ring) RemoveNode(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Clone returns an independent copy of the ring.
func (r *Ring) Clone() *Ring {
	cp := &Ring{vnodes: r.vnodes, seed: r.seed, nodes: make(map[string]bool, len(r.nodes))}
	cp.points = append([]point(nil), r.points...)
	for n := range r.nodes {
		cp.nodes[n] = true
	}
	return cp
}

// successor returns the index of the first ring point clockwise of h.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node owning key, or "" on an empty ring. Every key has
// exactly one owner: the node of the first virtual point clockwise of the
// key's hash.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(r.hash(key))].node
}

// OwnerN returns up to n distinct nodes walking clockwise from key's
// position: the owner first, then the successor nodes. A per-partition
// replica group is a kvstore.ReplicaClient built over OwnerN's addresses —
// the owner serves reads, the successors hold the fan-out copies.
func (r *Ring) OwnerN(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.successor(r.hash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
