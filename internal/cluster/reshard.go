package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// AddNode grows the cluster by one node, live: the next ring (with the new
// member) is computed first, every key whose owner changes — by the
// minimal-movement property, exactly the keys the new node takes over — is
// copied from its current owner to the new node, the new node's version
// epoch is raised to the cluster version so Version() cannot regress, and
// only then does the ring flip. Reads are served from the old ownership for
// the whole migration; after the flip the re-owned keys are deleted from
// their previous owners. It returns the number of keys moved.
//
// On a migration error nothing flips: the new node is discarded from the
// membership and any keys already copied onto it are harmless orphans a
// retried AddNode overwrites.
func (c *Client) AddNode(name string, nc NodeClient) (int, error) {
	m := c.metrics()
	c.mu.Lock()
	if _, ok := c.nodes[name]; ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: node %s already a member", name)
	}
	old := c.ring
	next := old.Clone()
	next.AddNode(name)
	srcNames := old.Nodes()
	srcClients := make([]NodeClient, len(srcNames))
	for i, n := range srcNames {
		srcClients[i] = c.nodes[n]
	}
	c.mu.Unlock()

	// Copy the re-owned keys, one migration worker per source node, all
	// joined before anything flips.
	movedBySrc := make([][]string, len(srcNames))
	errsBySrc := make([]error, len(srcNames))
	var wg sync.WaitGroup
	for i := range srcNames {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			movedBySrc[i], errsBySrc[i] = migrateFrom(srcClients[i], nc, name, next)
		}()
	}
	wg.Wait()
	moved := 0
	var failed []error
	for i, err := range errsBySrc {
		moved += len(movedBySrc[i])
		if err != nil {
			failed = append(failed, fmt.Errorf("%s: %w", srcNames[i], err))
		}
	}
	if len(failed) > 0 {
		return moved, fmt.Errorf("cluster: add %s: migration failed: %w", name, errors.Join(failed...))
	}

	// Epoch alignment: the empty node would drag the min-across-shards
	// cluster version to zero. Seed it with the current cluster version
	// before it becomes visible. An empty cluster (first node) has nothing
	// to align.
	if len(srcNames) > 0 {
		v, err := c.Version()
		if err != nil {
			return moved, fmt.Errorf("cluster: add %s: read cluster version: %w", name, err)
		}
		if v > 0 {
			if err := nc.Publish(v); err != nil {
				return moved, fmt.Errorf("cluster: add %s: seed epoch: %w", name, err)
			}
		}
	}

	c.mu.Lock()
	c.nodes[name] = nc
	c.ring = next
	m.nodes.Set(float64(len(c.nodes)))
	c.mu.Unlock()

	// Cleanup: the moved keys now route to the new node; their old copies
	// are dead data. A failed delete leaves a duplicate (never served — the
	// ring no longer routes there), reported so the caller can retry.
	var cleanup []error
	for i, keys := range movedBySrc {
		for _, k := range keys {
			if err := srcClients[i].Delete(k); err != nil {
				cleanup = append(cleanup, fmt.Errorf("%s: delete %s: %w", srcNames[i], k, err))
			}
		}
	}
	m.migrations("add").Inc()
	m.movedKeys.Observe(float64(moved))
	if len(cleanup) > 0 {
		return moved, fmt.Errorf("cluster: add %s: post-flip cleanup: %w", name, errors.Join(cleanup...))
	}
	return moved, nil
}

// migrateFrom copies every key of src that the next ring assigns to the
// new node dstName to dst, in sorted key order, returning the keys it
// moved. By the minimal-movement property these are exactly the keys whose
// owner changed: consistent hashing re-owns keys only toward an added node.
func migrateFrom(src, dst NodeClient, dstName string, next *Ring) ([]string, error) {
	keys, err := src.Keys("")
	if err != nil {
		return nil, fmt.Errorf("enumerate: %w", err)
	}
	sort.Strings(keys)
	var moved []string
	for _, k := range keys {
		if next.Owner(k) != dstName {
			continue
		}
		v, ok, err := src.Get(k)
		if err != nil {
			return moved, fmt.Errorf("read %s: %w", k, err)
		}
		if !ok {
			continue // deleted between Keys and Get; nothing to move
		}
		if err := dst.Put(k, v); err != nil {
			return moved, fmt.Errorf("copy %s: %w", k, err)
		}
		moved = append(moved, k)
	}
	return moved, nil
}

// RemoveNode drains a node out of the cluster, live: every key it holds is
// copied to its next-ring owner while reads still route to the (still
// member) node, then the ring flips and the drained node's records are
// deleted so a later re-Join cannot resurrect stale data. It returns the
// number of keys moved.
//
// RemoveNode is a graceful drain and fails without flipping when the node
// is unreachable — a crashed shard is a chaos event, not a membership
// change: its agents ride the staleness TTL until the shard rejoins and the
// controller's dropped-hash self-heal rewrites what it missed.
func (c *Client) RemoveNode(name string) (int, error) {
	m := c.metrics()
	c.mu.Lock()
	nc, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: node %s not a member", name)
	}
	if len(c.nodes) == 1 {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: cannot remove last node %s", name)
	}
	next := c.ring.Clone()
	next.RemoveNode(name)
	dests := make(map[string]NodeClient, len(c.nodes))
	for n, cl := range c.nodes {
		dests[n] = cl
	}
	c.mu.Unlock()

	keys, err := nc.Keys("")
	if err != nil {
		return 0, fmt.Errorf("cluster: remove %s: enumerate: %w", name, err)
	}
	sort.Strings(keys)
	moved := 0
	for _, k := range keys {
		v, ok, err := nc.Get(k)
		if err != nil {
			return moved, fmt.Errorf("cluster: remove %s: read %s: %w", name, k, err)
		}
		if !ok {
			continue
		}
		dst := next.Owner(k)
		if err := dests[dst].Put(k, v); err != nil {
			return moved, fmt.Errorf("cluster: remove %s: copy %s to %s: %w", name, k, dst, err)
		}
		moved++
	}

	c.mu.Lock()
	delete(c.nodes, name)
	c.ring = next
	m.nodes.Set(float64(len(c.nodes)))
	c.mu.Unlock()

	m.migrations("remove").Inc()
	m.movedKeys.Observe(float64(moved))
	var cleanup []error
	for _, k := range keys {
		if err := nc.Delete(k); err != nil {
			cleanup = append(cleanup, fmt.Errorf("delete %s: %w", k, err))
		}
	}
	if len(cleanup) > 0 {
		return moved, fmt.Errorf("cluster: remove %s: drained-node cleanup: %w", name, errors.Join(cleanup...))
	}
	return moved, nil
}
