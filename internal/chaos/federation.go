package chaos

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"

	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/faultnet"
	"megate/internal/federation"
	"megate/internal/hoststack"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// FederationScenario scripts a multi-domain run under a scripted
// inter-domain partition. Each domain is a complete control loop — its own
// topology, controller, TE database, and agent fleet — and only the
// gateway-to-gateway links ride the fault fabric: a domain cut must never
// touch intra-domain convergence. The invariants follow §6.3's degradation
// contract at federation scope: during the cut every domain keeps solving
// and its agents keep converging; once the gateway TTL fires, imported
// summaries and fed/ records are dropped so cross-domain flows fall back to
// conventional routing; on heal the next exchanges reimport in full and the
// fed/ records return byte-identical to the peer's exports.
type FederationScenario struct {
	// Domains is the number of federated TE domains (default 2).
	Domains int
	// Seed drives the traffic matrices and every faultnet decision.
	Seed int64
	// PerSite is the endpoint count attached per topology site (default 1).
	PerSite int
	// Windows is the number of federated TE intervals to run (default 9).
	Windows int
	// StaleAfter is the gateways' staleness TTL in failed exchanges
	// (default 2), mirroring the agents' poll TTL.
	StaleAfter int
	// Timeout bounds each gateway exchange (default 150ms; a partitioned
	// dial blackholes for this long).
	Timeout time.Duration
	// PartitionAt cuts every gateway-to-gateway link before that window;
	// HealAt heals them. Disabled when PartitionAt >= HealAt.
	PartitionAt, HealAt int
	// Metrics receives all telemetry; nil uses a fresh private registry.
	Metrics *telemetry.Registry
}

// FedWindowReport is the per-window outcome across all domains.
type FedWindowReport struct {
	Window int
	// ExchangeErrors counts failed peer exchanges this window (expected
	// non-zero only while the partition is up).
	ExchangeErrors int
	// StalePeers counts (domain, peer) edges whose TTL has fired.
	StalePeers int
	// BoundaryFlows sums the imported cross-domain flows folded into the
	// domains' solves this window.
	BoundaryFlows int
	// Converged counts agents at their domain controller's version after
	// the poll round (must always equal Agents).
	Converged int
	Metrics   []telemetry.Sample
}

// FederationResult aggregates a federation chaos run.
type FederationResult struct {
	Windows    []FedWindowReport
	Violations []string

	Domains int
	// Agents is the total agent count across all domains.
	Agents int
	// StaleFired is the gateway stale-fallback counter at quiesce; the
	// partition must fire it exactly once per directed domain pair.
	StaleFired uint64
	// Imports is the summary-import counter at quiesce.
	Imports uint64
	// FinalVersions holds each domain's controller version at quiesce.
	FinalVersions []uint64
}

func (s *FederationScenario) defaults() {
	if s.Domains <= 0 {
		s.Domains = 2
	}
	if s.PerSite <= 0 {
		s.PerSite = 1
	}
	if s.Windows <= 0 {
		s.Windows = 9
	}
	if s.StaleAfter <= 0 {
		s.StaleAfter = 2
	}
	if s.Timeout <= 0 {
		s.Timeout = 150 * time.Millisecond
	}
}

// fedDomain is one domain's full control loop plus its federation wiring.
type fedDomain struct {
	name     string
	node     string // faultnet peer name of its gateway
	dom      *federation.Domain
	store    *kvstore.Store
	matrices []*traffic.Matrix
	fleet    []*fleetAgent
	peers    []string // other domain names, sorted
}

// RunFederation executes the scenario; err is non-nil only for harness
// failures, never for invariant violations — those land in Violations.
func RunFederation(s FederationScenario) (*FederationResult, error) {
	s.defaults()
	res := &FederationResult{Domains: s.Domains}
	reg := s.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	fab := faultnet.New(s.Seed)

	// Tier policy shared by every domain: payment traffic is pinned to the
	// most reliable tunnel tier, so the partition run also exercises the
	// tier-filtered stage-2 path.
	pt := traffic.NewPolicyTable()
	pt.Set("financial-payment", traffic.ServicePolicy{Tier: 0})

	names := make([]string, s.Domains)
	for i := range names {
		names[i] = fmt.Sprintf("d%d", i)
	}

	// gwAddr maps a gateway's listen address back to its faultnet node name
	// so one dialer per domain can reach every peer through the fabric.
	gwAddr := make(map[string]string)
	addrOf := make(map[string]string) // domain name -> gateway address

	var domains []*fedDomain
	for i, name := range names {
		topo := topology.BuildB4()
		topology.AttachEndpointsExact(topo, s.PerSite)
		store := kvstore.NewStore(4)
		db := controlplane.StoreAdapter{Store: store}
		ctrl := controlplane.NewController(core.NewSolver(topo, core.Options{}), db)
		ctrl.Metrics = reg

		node := "gw:" + name
		gw := &federation.Gateway{
			Domain:     name,
			StaleAfter: s.StaleAfter,
			Timeout:    s.Timeout,
			Store:      db,
			Metrics:    reg,
			Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
				return fab.Dial(node, gwAddr[addr], "tcp", addr, timeout)
			},
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		gwAddr[l.Addr().String()] = node
		addrOf[name] = l.Addr().String()
		gw.Start(fab.Listener(node, l))
		defer gw.Close()

		d := &fedDomain{
			name:  name,
			node:  node,
			dom:   federation.NewDomain(name, topo, ctrl, gw, 0),
			store: store,
			matrices: []*traffic.Matrix{
				pt.Apply(traffic.Generate(topo, traffic.GenOptions{Seed: s.Seed + int64(i)*100, MeanDemandMbps: 20})),
				pt.Apply(traffic.Generate(topo, traffic.GenOptions{Seed: s.Seed + int64(i)*100 + 1, MeanDemandMbps: 20})),
			},
		}

		// Deterministic cross-domain demand toward every other domain: a
		// couple of (site, class) rows whose totals differ per directed pair.
		for j, peer := range names {
			if j == i {
				continue
			}
			base := float64(10 + 7*i + 3*j)
			d.dom.Remote = append(d.dom.Remote,
				federation.RemoteFlow{SrcSite: 1, DstDomain: peer, DstSite: 2, Class: traffic.Class1, Mbps: base},
				federation.RemoteFlow{SrcSite: 2, DstDomain: peer, DstSite: 3, Class: traffic.Class2, Mbps: base / 2},
			)
			d.peers = append(d.peers, peer)
		}
		sort.Strings(d.peers)

		// One agent per instance, polling the domain's own in-process store:
		// agents never ride the fault fabric — only gateways are cut.
		seen := make(map[string]bool)
		for _, ep := range topo.Endpoints {
			if seen[ep.Instance] {
				continue
			}
			seen[ep.Instance] = true
			idx := len(d.fleet)
			host := hoststack.NewHost(fmt.Sprintf("%s-agent%d", name, idx), 1500,
				func([4]byte) (uint32, bool) { return 0, false })
			defer host.Close()
			d.fleet = append(d.fleet, &fleetAgent{
				name:     fmt.Sprintf("%s-agent%d", name, idx),
				instance: ep.Instance,
				agent: &controlplane.Agent{
					Instance:   ep.Instance,
					Reader:     db,
					Host:       host,
					Slot:       idx,
					SlotCount:  len(topo.Endpoints),
					StaleAfter: s.StaleAfter,
					Metrics:    reg,
				},
				host: host,
			})
		}
		res.Agents += len(d.fleet)
		domains = append(domains, d)
	}
	for _, d := range domains {
		for _, peer := range d.peers {
			d.dom.GW.AddPeer(peer, addrOf[peer])
		}
	}

	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	setPartition := func(apply bool) {
		for _, a := range domains {
			for _, b := range domains {
				if a == b {
					continue
				}
				if apply {
					fab.Partition(a.node, b.node)
				} else {
					fab.Heal(a.node, b.node)
				}
			}
		}
	}

	// window runs one federated interval across all domains and returns the
	// report: exchanges first (pulling the peers' previous-interval exports),
	// then each domain's solve+publish, then each fleet's poll round.
	window := func(w int) FedWindowReport {
		rep := FedWindowReport{Window: w}
		for _, d := range domains {
			if err := d.dom.GW.ExchangeAll(); err != nil {
				rep.ExchangeErrors++
			}
			for _, peer := range d.peers {
				if d.dom.GW.PeerStale(peer) {
					rep.StalePeers++
				}
			}
		}
		for _, d := range domains {
			rep.BoundaryFlows += len(d.dom.BoundaryFlows(1 << 20))
			if _, err := d.dom.RunInterval(d.matrices[(w/2)%len(d.matrices)]); err != nil {
				violate("window %d: domain %s interval failed: %v", w, d.name, err)
			}
		}
		for _, d := range domains {
			for _, fa := range d.fleet {
				if _, err := fa.agent.Poll(); err != nil {
					violate("window %d: %s poll failed: %v", w, fa.name, err)
				}
				if fa.agent.LastVersion() == d.dom.Ctrl.Version() {
					rep.Converged++
				}
			}
		}
		return rep
	}

	partitionActive := s.PartitionAt < s.HealAt
	for w := 0; w < s.Windows; w++ {
		if partitionActive && w == s.PartitionAt {
			setPartition(true)
		}
		if partitionActive && w == s.HealAt {
			setPartition(false)
		}
		rep := window(w)

		// Intra-domain TE must converge every window, cut or not: each
		// domain's whole fleet at its controller's version, nobody degraded.
		if rep.Converged != res.Agents {
			violate("window %d: %d/%d agents converged", w, rep.Converged, res.Agents)
		}
		for _, d := range domains {
			for _, fa := range d.fleet {
				if fa.agent.Degraded() {
					violate("window %d: %s degraded during a gateway-only fault", w, fa.name)
				}
			}
		}

		cut := partitionActive && w >= s.PartitionAt && w < s.HealAt
		if cut && rep.ExchangeErrors != s.Domains {
			violate("window %d: %d/%d domains failed exchanges under the cut", w, rep.ExchangeErrors, s.Domains)
		}
		if !cut && rep.ExchangeErrors != 0 {
			violate("window %d: %d exchange errors on a healthy fabric", w, rep.ExchangeErrors)
		}

		// Once the TTL worth of failed exchanges has accumulated, every
		// directed pair must be stale: summaries gone, boundary demand gone,
		// fed/ records deleted — the cross-domain fallback of §6.3.
		if partitionActive && w >= s.PartitionAt+s.StaleAfter-1 && w < s.HealAt {
			for _, d := range domains {
				for _, peer := range d.peers {
					if !d.dom.GW.PeerStale(peer) {
						violate("window %d: %s's import of %s not stale after TTL", w, d.name, peer)
					}
					if _, ok := d.store.Get(federation.FedEpochKey(peer)); ok {
						violate("window %d: %s still holds fed/epoch for %s after TTL", w, d.name, peer)
					}
					_, leftover := d.store.SnapshotPrefix(federation.FedPrefix + peer + "/")
					for k := range leftover {
						violate("window %d: %s still holds %s after TTL", w, d.name, k)
					}
				}
			}
			if rep.BoundaryFlows != 0 {
				violate("window %d: %d boundary flows still solved from stale imports", w, rep.BoundaryFlows)
			}
		}
		// The first exchange round after the heal must reimport every peer's
		// summary in full (the since-epoch was reset with the drop).
		if partitionActive && w == s.HealAt {
			for _, d := range domains {
				imp := d.dom.GW.ImportedSummaries()
				for _, peer := range d.peers {
					if d.dom.GW.PeerStale(peer) {
						violate("window %d: %s's import of %s still stale after heal", w, d.name, peer)
					}
					if len(imp[peer]) == 0 {
						violate("window %d: %s reimported no summary from %s after heal", w, d.name, peer)
					}
				}
			}
		}
		rep.Metrics = reg.Snapshot()
		res.Windows = append(res.Windows, rep)
	}

	// --- quiesce: healed fabric, two clean rounds so exports and imports
	// cycle fully, then exact end-state checks ---
	fab.HealAll()
	for k := 0; k < 2; k++ {
		rep := window(s.Windows + k)
		if rep.ExchangeErrors != 0 {
			violate("quiesce round %d: %d exchange errors", k, rep.ExchangeErrors)
		}
		rep.Metrics = reg.Snapshot()
		res.Windows = append(res.Windows, rep)
	}
	// One final exchange round AFTER the last intervals, so every import
	// reflects the peers' final exports; then hold the fed/ records to
	// byte-identical agreement with what the peer exported.
	for _, d := range domains {
		if err := d.dom.GW.ExchangeAll(); err != nil {
			violate("quiesce: %s final exchange failed: %v", d.name, err)
		}
	}
	byName := make(map[string]*fedDomain, len(domains))
	for _, d := range domains {
		byName[d.name] = d
	}
	for _, d := range domains {
		for _, peer := range d.peers {
			p := byName[peer]
			epoch := d.dom.GW.ImportedEpoch(peer)
			if epoch != p.dom.GW.Epoch() {
				violate("quiesce: %s imported epoch %d from %s, want %d", d.name, epoch, peer, p.dom.GW.Epoch())
			}
			if len(d.dom.GW.ImportedSummaries()[peer]) == 0 {
				violate("quiesce: %s holds no summary from %s", d.name, peer)
			}
			for _, rec := range p.dom.GW.Exports(d.name) {
				want, err := json.Marshal(controlplane.InstanceConfig{
					Instance: rec.Instance, Version: epoch, Paths: rec.Paths,
				})
				if err != nil {
					violate("quiesce: marshal expected record for %s: %v", rec.Instance, err)
					continue
				}
				got, ok := d.store.Get(federation.FedKey(peer, rec.Instance))
				if !ok {
					violate("quiesce: %s missing fed/ record %s from %s", d.name, rec.Instance, peer)
				} else if string(got) != string(want) {
					violate("quiesce: %s fed/ record %s diverges from %s's export:\n got %s\nwant %s",
						d.name, rec.Instance, peer, got, want)
				}
			}
			if len(p.dom.GW.Exports(d.name)) == 0 {
				violate("quiesce: %s exports no config records toward %s", peer, d.name)
			}
		}
		res.FinalVersions = append(res.FinalVersions, d.dom.Ctrl.Version())
	}
	// Nothing moved since the final exchange: a second round must ride the
	// CURRENT fast path without touching any imported epoch.
	before := make(map[string]uint64)
	for _, d := range domains {
		for _, peer := range d.peers {
			before[d.name+"/"+peer] = d.dom.GW.ImportedEpoch(peer)
		}
	}
	for _, d := range domains {
		if err := d.dom.GW.ExchangeAll(); err != nil {
			violate("quiesce: CURRENT-path exchange failed for %s: %v", d.name, err)
		}
		for _, peer := range d.peers {
			if got := d.dom.GW.ImportedEpoch(peer); got != before[d.name+"/"+peer] {
				violate("quiesce: CURRENT path moved %s's import of %s to %d", d.name, peer, got)
			}
		}
	}
	for _, sm := range reg.Snapshot() {
		switch sm.Name {
		case federation.MetricStaleFallbacks:
			res.StaleFired = uint64(sm.Value)
		case federation.MetricSummaryImports:
			res.Imports = uint64(sm.Value)
		}
	}
	return res, nil
}
