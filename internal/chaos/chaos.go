// Package chaos runs the MegaTE control loop — controller, replicated TE
// database servers, and a fleet of endpoint agents — under a scripted
// fault timeline (package faultnet) and checks the §3.2/§6.3 degradation
// invariants: no agent ever installs a torn configuration, agents converge
// within one poll round of a partition healing, the staleness TTL drops
// pinned paths during a sustained partition and reinstates them on
// recovery, and a restarted controller's recovered delta state writes only
// churned records.
//
// The run is stepped, not free-running: each window applies its fault
// events, executes one controller interval, snapshots the replicas, then
// fires one concurrent poll round across the fleet. Invariants are checked
// between steps, which keeps a fixed seed fully deterministic even under
// the race detector.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/faultnet"
	"megate/internal/hoststack"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// MetricConvergenceLag is the per-window histogram of how many published
// versions each agent trails the controller by when the window's poll round
// ends — the paper's eventual-consistency lag, in versions rather than
// seconds so a fixed seed reproduces it exactly.
const MetricConvergenceLag = "megate_chaos_convergence_lag_versions"

// Scenario scripts one chaos run. Window indices are 0-based; an event
// index at or beyond Windows simply never fires.
type Scenario struct {
	// Seed drives the traffic matrices and every faultnet decision.
	Seed int64
	// Replicas is the TE database replica count (default 2).
	Replicas int
	// PerSite is the endpoint count attached per topology site (default 1).
	PerSite int
	// Windows is the number of TE intervals to run (default 8).
	Windows int
	// StaleAfter is the agents' staleness TTL in failed polls (default 2).
	StaleAfter int
	// Timeout bounds each client network operation (default 150ms; the
	// blackhole blocks partitioned agents for this long per replica).
	Timeout time.Duration

	// PartitionAt partitions every third agent from all replicas before
	// that window; HealAt heals them. Disabled when PartitionAt >= HealAt.
	PartitionAt, HealAt int
	// FlakyFrom/FlakyUntil bound the windows during which the controller's
	// link to replica 0 injects mid-stream resets and partial writes.
	// Disabled when FlakyFrom >= FlakyUntil.
	FlakyFrom, FlakyUntil int
	// RestartAt replaces the controller before that window with a fresh one
	// that must Recover() its delta state from the replicas. Zero disables.
	RestartAt int

	// Metrics receives every component's telemetry (kv servers and clients,
	// controller stage timings, agent counters, convergence lag). Nil uses a
	// fresh private registry so concurrent chaos runs cannot cross-pollute;
	// megate-sim passes telemetry.Default so its exporter sees the run.
	Metrics *telemetry.Registry
}

// WindowReport is the per-window outcome.
type WindowReport struct {
	Window      int
	Matrix      string
	IntervalErr string
	Stats       controlplane.IntervalStats
	PollErrors  int
	Degraded    int
	Converged   int
	// MaxLag is the largest version lag any agent showed after this
	// window's poll round; Metrics is the registry snapshot taken at the
	// same moment, so a report can print the telemetry evolution per window.
	MaxLag  uint64
	Metrics []telemetry.Sample
}

// Result aggregates a chaos run.
type Result struct {
	Windows    []WindowReport
	Violations []string

	FailedIntervals int
	// RestartRestored is how many records Recover() rebuilt; the
	// RestartStats/RestartExpectedWritten pair checks the delta criterion:
	// the recovered controller's Written must equal the records whose bytes
	// actually changed that interval.
	RestartRestored        int
	RestartStats           controlplane.IntervalStats
	RestartExpectedWritten int
	RestartRan             bool

	Fallbacks, Recoveries uint64
	FinalVersion          uint64
	Agents                int
}

func (s *Scenario) defaults() {
	if s.Replicas <= 0 {
		s.Replicas = 2
	}
	if s.PerSite <= 0 {
		s.PerSite = 1
	}
	if s.Windows <= 0 {
		s.Windows = 8
	}
	if s.StaleAfter <= 0 {
		s.StaleAfter = 2
	}
	if s.Timeout <= 0 {
		s.Timeout = 150 * time.Millisecond
	}
}

// fleetAgent is one endpoint agent with its host and identity.
type fleetAgent struct {
	name        string
	instance    string
	agent       *controlplane.Agent
	host        *hoststack.Host
	rc          *kvstore.ReplicaClient
	partitioned bool
}

// Run executes the scenario and returns the report; err is non-nil only
// for harness failures (listen errors), never for invariant violations —
// those land in Result.Violations.
func Run(s Scenario) (*Result, error) {
	s.defaults()
	res := &Result{}
	reg := s.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	lagHist := reg.Histogram(MetricConvergenceLag, telemetry.CountBuckets)

	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, s.PerSite)
	matrices := []*traffic.Matrix{
		traffic.Generate(topo, traffic.GenOptions{Seed: s.Seed, MeanDemandMbps: 20}),
		traffic.Generate(topo, traffic.GenOptions{Seed: s.Seed + 1, MeanDemandMbps: 20}),
	}

	fab := faultnet.New(s.Seed)

	// Replicated TE database servers, each addressable as a faultnet peer.
	peer := make(map[string]string)
	var addrs []string
	var direct []*kvstore.Client // fault-free observer clients
	for i := 0; i < s.Replicas; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := kvstore.Serve(l, kvstore.NewStore(4), kvstore.WithMetrics(reg))
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
		peer[srv.Addr()] = fmt.Sprintf("db%d", i)
		direct = append(direct, &kvstore.Client{Addr: srv.Addr(), Timeout: 2 * time.Second, Metrics: reg})
	}
	dialerFor := func(from string) func(string, time.Duration) (net.Conn, error) {
		return func(addr string, timeout time.Duration) (net.Conn, error) {
			return fab.Dial(from, peer[addr], "tcp", addr, timeout)
		}
	}

	newController := func() (*controlplane.Controller, controlplane.ReplicaAdapter) {
		rc := kvstore.NewReplicaClient(addrs, func(rc *kvstore.ReplicaClient) {
			rc.Timeout = s.Timeout
			rc.Dialer = dialerFor("ctrl")
			rc.Metrics = reg
		})
		db := controlplane.ReplicaAdapter{Client: rc}
		ctrl := controlplane.NewController(core.NewSolver(topo, core.Options{}), db)
		ctrl.Metrics = reg
		return ctrl, db
	}
	ctrl, _ := newController()

	// One agent per virtual instance, each with its own host and its own
	// failover client; every third agent is in the partition victim set.
	var fleet []*fleetAgent
	seen := make(map[string]bool)
	for _, ep := range topo.Endpoints {
		if seen[ep.Instance] {
			continue
		}
		seen[ep.Instance] = true
		idx := len(fleet)
		name := fmt.Sprintf("agent%d", idx)
		rc := kvstore.NewReplicaClient(addrs, func(rc *kvstore.ReplicaClient) {
			rc.Timeout = s.Timeout
			rc.Dialer = dialerFor(name)
			rc.Metrics = reg
		})
		host := hoststack.NewHost(name, 1500, func([4]byte) (uint32, bool) { return 0, false })
		defer host.Close()
		fleet = append(fleet, &fleetAgent{
			name:     name,
			instance: ep.Instance,
			agent: &controlplane.Agent{
				Instance:   ep.Instance,
				Reader:     controlplane.ReplicaAdapter{Client: rc},
				Host:       host,
				Slot:       idx,
				SlotCount:  len(topo.Endpoints),
				StaleAfter: s.StaleAfter,
				Metrics:    reg,
			},
			host:        host,
			rc:          rc,
			partitioned: idx%3 == 0,
		})
	}
	res.Agents = len(fleet)

	// history records every configuration (by serialized bytes) that any
	// replica has ever served for an instance; an agent's installed paths
	// must always match one of them exactly — the no-torn-config invariant.
	history := make(map[string]map[string][]controlplane.PathEntry)
	observe := func() {
		for _, dc := range direct {
			keys, err := dc.Keys("te/cfg/")
			if err != nil {
				continue // replica observation is best-effort mid-fault
			}
			for _, key := range keys {
				data, ok, err := dc.Get(key)
				if err != nil || !ok {
					continue
				}
				var cfg controlplane.InstanceConfig
				if err := json.Unmarshal(data, &cfg); err != nil {
					res.Violations = append(res.Violations,
						fmt.Sprintf("replica %s serves unparseable record %s: %v", dc.Addr, key, err))
					continue
				}
				set := history[cfg.Instance]
				if set == nil {
					set = make(map[string][]controlplane.PathEntry)
					history[cfg.Instance] = set
				}
				set[string(data)] = cfg.Paths
			}
		}
	}

	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	partitionVictims := func(apply bool) {
		for _, fa := range fleet {
			if !fa.partitioned {
				continue
			}
			if apply {
				fab.Partition(fa.name, "*")
			} else {
				fab.Heal(fa.name, "*")
			}
		}
	}

	runPollRound := func(rep *WindowReport) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, fa := range fleet {
			fa := fa
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := fa.agent.Poll()
				if err != nil {
					mu.Lock()
					rep.PollErrors++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}

	snapshot := func(c *kvstore.Client) map[string][]byte {
		out := make(map[string][]byte)
		keys, err := c.Keys("te/cfg/")
		if err != nil {
			return out
		}
		for _, k := range keys {
			if v, ok, err := c.Get(k); err == nil && ok {
				out[k] = v
			}
		}
		return out
	}

	partitionActive := s.PartitionAt < s.HealAt
	flakyActive := s.FlakyFrom < s.FlakyUntil

	for w := 0; w < s.Windows; w++ {
		rep := WindowReport{Window: w}

		// --- fault events for this window ---
		if flakyActive && w == s.FlakyFrom {
			fab.SetFaults("ctrl", "db0", faultnet.Faults{ResetProb: 0.4, PartialWriteProb: 0.3})
		}
		if flakyActive && w == s.FlakyUntil {
			// Clear the whole rule: Heal only lifts partitions and would
			// leave the reset/partial-write probabilities in place.
			fab.SetFaults("ctrl", "db0", faultnet.Faults{})
		}
		if partitionActive && w == s.PartitionAt {
			partitionVictims(true)
		}
		if partitionActive && w == s.HealAt {
			partitionVictims(false)
		}
		restartWindow := s.RestartAt > 0 && w == s.RestartAt
		if restartWindow {
			var db controlplane.ReplicaAdapter
			ctrl, db = newController()
			n, err := ctrl.Recover(db)
			if err != nil {
				violate("window %d: controller recovery failed: %v", w, err)
			}
			res.RestartRestored = n
			res.RestartRan = true
		}

		// --- one TE interval ---
		// Matrices alternate every two windows: every other window re-solves
		// the previous matrix (exercising the unchanged-delta path, and
		// giving the restart window a baseline to be compared against) and
		// the rest churn.
		mi := (w / 2) % len(matrices)
		m := matrices[mi]
		rep.Matrix = fmt.Sprintf("m%d", mi)
		var before map[string][]byte
		if restartWindow {
			before = snapshot(direct[0])
		}
		_, _, err := ctrl.RunInterval(m)
		if err != nil {
			rep.IntervalErr = err.Error()
			res.FailedIntervals++
		} else {
			rep.Stats = ctrl.LastStats()
		}
		if restartWindow && err == nil {
			after := snapshot(direct[0])
			changed := 0
			for k, v := range after {
				if prev, ok := before[k]; !ok || !bytes.Equal(prev, v) {
					changed++
				}
			}
			res.RestartExpectedWritten = changed
			res.RestartStats = ctrl.LastStats()
		}

		// --- observe replica state, then poll the fleet once ---
		observe()
		runPollRound(&rep)

		// --- invariants ---
		for _, fa := range fleet {
			if fa.agent.Degraded() {
				rep.Degraded++
			}
			cv, av := ctrl.Version(), fa.agent.LastVersion()
			if av == cv {
				rep.Converged++
			}
			// Lag in published versions. A failed publish can leave a replica
			// (and thus an agent) ahead of ctrl.Version(); clamp to zero —
			// the agent is not behind.
			var lag uint64
			if av < cv {
				lag = cv - av
			}
			lagHist.Observe(float64(lag))
			if lag > rep.MaxLag {
				rep.MaxLag = lag
			}
			if !installedMatchesHistory(fa, history[fa.instance]) {
				violate("window %d: %s (%s) installed paths matching no config any replica ever served",
					w, fa.name, fa.instance)
			}
		}
		// Sustained partition: once the TTL worth of failed polls has
		// accumulated, every victim must be degraded with its paths gone.
		if partitionActive && w >= s.PartitionAt+s.StaleAfter-1 && w < s.HealAt {
			for _, fa := range fleet {
				if !fa.partitioned {
					continue
				}
				if !fa.agent.Degraded() {
					violate("window %d: partitioned %s not degraded after TTL", w, fa.name)
				}
				if fa.host.PathMap.Len() != 0 {
					violate("window %d: partitioned %s still holds %d pinned paths after TTL",
						w, fa.name, fa.host.PathMap.Len())
				}
			}
		}
		// Heal: the first poll round after the partition lifted must bring
		// every agent (victims included) to the current version, un-degraded.
		if partitionActive && w == s.HealAt && rep.IntervalErr == "" {
			for _, fa := range fleet {
				if fa.agent.LastVersion() != ctrl.Version() {
					violate("window %d: %s at version %d after heal, controller at %d",
						w, fa.name, fa.agent.LastVersion(), ctrl.Version())
				}
				if fa.agent.Degraded() {
					violate("window %d: %s still degraded after heal+poll", w, fa.name)
				}
			}
		}
		rep.Metrics = reg.Snapshot()
		res.Windows = append(res.Windows, rep)
	}

	// --- quiesce: heal everything, run one clean interval, poll, and hold
	// the system to exact end-state equalities ---
	fab.HealAll()
	finalRep := WindowReport{Window: s.Windows, Matrix: "quiesce"}
	if _, _, err := ctrl.RunInterval(matrices[0]); err != nil {
		violate("quiesce interval failed on a healed fabric: %v", err)
	}
	observe()
	runPollRound(&finalRep)
	finalRep.Metrics = reg.Snapshot()
	res.Windows = append(res.Windows, finalRep)
	res.FinalVersion = ctrl.Version()

	current := snapshot(direct[0])
	for _, fa := range fleet {
		fb, rec := fa.agent.FallbackStats()
		res.Fallbacks += fb
		res.Recoveries += rec
		if fa.agent.Degraded() {
			violate("quiesce: %s still degraded", fa.name)
		}
		if fa.agent.LastVersion() != ctrl.Version() {
			violate("quiesce: %s at version %d, controller at %d", fa.name, fa.agent.LastVersion(), ctrl.Version())
		}
		data, ok := current[controlplane.ConfigKey(fa.instance)]
		if !ok {
			if n := fa.host.PathMap.Len(); n != 0 {
				violate("quiesce: %s holds %d paths but the database has no record for %s", fa.name, n, fa.instance)
			}
			continue
		}
		var cfg controlplane.InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			violate("quiesce: record for %s unparseable: %v", fa.instance, err)
			continue
		}
		if !matchesPaths(fa.host, fa.instance, cfg.Paths) {
			violate("quiesce: %s installed paths diverge from the database record for %s", fa.name, fa.instance)
		}
	}
	// Replica convergence: after the quiesce interval every replica holds
	// identical records and the identical version.
	base := snapshot(direct[0])
	baseKeys := sortedKeys(base)
	for i := 1; i < len(direct); i++ {
		other := snapshot(direct[i])
		if len(other) != len(base) {
			violate("quiesce: replica %d holds %d records, replica 0 holds %d", i, len(other), len(base))
			continue
		}
		for _, k := range baseKeys {
			if !bytes.Equal(base[k], other[k]) {
				violate("quiesce: record %s differs between replica 0 and replica %d", k, i)
			}
		}
	}
	for i, dc := range direct {
		if v, err := dc.Version(); err != nil || v != res.FinalVersion {
			violate("quiesce: replica %d at version %d (err=%v), want %d", i, v, err, res.FinalVersion)
		}
	}
	for _, fa := range fleet {
		fa.rc.Close()
	}
	return res, nil
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// installedMatchesHistory reports whether the agent's installed path set is
// empty or exactly equals some configuration a replica has served.
func installedMatchesHistory(fa *fleetAgent, configs map[string][]controlplane.PathEntry) bool {
	if fa.host.PathMap.Len() == 0 {
		return true
	}
	for _, paths := range configs {
		if matchesPaths(fa.host, fa.instance, paths) {
			return true
		}
	}
	return false
}

// matchesPaths reports whether the host's path_map holds exactly these
// entries for the instance.
func matchesPaths(host *hoststack.Host, instance string, paths []controlplane.PathEntry) bool {
	if host.PathMap.Len() != len(paths) {
		return false
	}
	for _, p := range paths {
		path, ok := host.PathMap.Lookup(hoststack.PathKey{Instance: instance, DstSite: p.DstSite})
		if !ok || len(path.Hops) != len(p.Hops) || path.Tier != p.Tier {
			return false
		}
		for i := range path.Hops {
			if path.Hops[i] != p.Hops[i] {
				return false
			}
		}
	}
	return true
}
