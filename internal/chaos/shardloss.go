package chaos

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"megate/internal/cluster"
	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/faultnet"
	"megate/internal/hoststack"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// ShardLossScenario scripts a chaos run against the sharded TE database:
// the control loop runs over a cluster of single-server shards, one shard
// is blackholed mid-run, and the §3.2/§6.3 scoping invariants are checked —
// agents homed on surviving shards keep converging every window, agents
// homed on the lost shard degrade after the staleness TTL and recover on
// rejoin, and after an optional post-heal growth step plus quiesce the
// placement invariant (every record on exactly its owning shard) and
// cluster-version agreement hold exactly.
type ShardLossScenario struct {
	// Seed drives the traffic matrices, the ring layout, and every faultnet
	// decision.
	Seed int64
	// Nodes is the shard count (default 3).
	Nodes int
	// VirtualNodes parameterizes the ring (default cluster.DefaultVirtualNodes).
	VirtualNodes int
	// PerSite is the endpoint count attached per topology site (default 1).
	PerSite int
	// Windows is the number of TE intervals to run (default 8).
	Windows int
	// StaleAfter is the agents' staleness TTL in failed polls (default 2).
	StaleAfter int
	// Timeout bounds each client network operation (default 150ms).
	Timeout time.Duration

	// LoseAt blackholes the busiest shard (the one owning the most agent
	// config keys; ties break lexicographically) before that window;
	// RejoinAt heals it. Disabled when LoseAt >= RejoinAt.
	LoseAt, RejoinAt int
	// GrowAt, when > 0, adds a fresh shard before that window: the
	// controller migrates re-owned keys with AddNode, then every agent
	// adopts the membership with Join. Must be a post-heal window.
	GrowAt int

	// Metrics receives every component's telemetry; nil uses a fresh
	// private registry.
	Metrics *telemetry.Registry
}

// ShardWindow is the per-window outcome of a shard-loss run.
type ShardWindow struct {
	Window      int
	IntervalErr string
	Stats       controlplane.IntervalStats
	PollErrors  int
	Degraded    int
	Converged   int
}

// ShardLossResult aggregates a shard-loss chaos run.
type ShardLossResult struct {
	Windows    []ShardWindow
	Violations []string

	// LostNode is the blackholed shard; LostHomedAgents counts the agents
	// whose config key it owns.
	LostNode        string
	LostHomedAgents int
	// MovedKeys is how many records the GrowAt migration moved.
	MovedKeys int

	Fallbacks, Recoveries uint64
	FailedIntervals       int
	FinalVersion          uint64
	Agents                int
}

func (s *ShardLossScenario) defaults() {
	if s.Nodes <= 0 {
		s.Nodes = 3
	}
	if s.PerSite <= 0 {
		s.PerSite = 1
	}
	if s.Windows <= 0 {
		s.Windows = 8
	}
	if s.StaleAfter <= 0 {
		s.StaleAfter = 2
	}
	if s.Timeout <= 0 {
		s.Timeout = 150 * time.Millisecond
	}
}

// shardAgent is one endpoint agent with its own cluster view.
type shardAgent struct {
	name      string
	instance  string
	agent     *controlplane.Agent
	host      *hoststack.Host
	cc        *cluster.Client
	lostHomed bool
}

// RunShardLoss executes the scenario; err is non-nil only for harness
// failures, never for invariant violations — those land in Violations.
func RunShardLoss(s ShardLossScenario) (*ShardLossResult, error) {
	s.defaults()
	res := &ShardLossResult{}
	reg := s.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, s.PerSite)
	matrices := []*traffic.Matrix{
		traffic.Generate(topo, traffic.GenOptions{Seed: s.Seed, MeanDemandMbps: 20}),
		traffic.Generate(topo, traffic.GenOptions{Seed: s.Seed + 1, MeanDemandMbps: 20}),
	}

	fab := faultnet.New(s.Seed)
	peer := make(map[string]string)
	dialerFor := func(from string) func(string, time.Duration) (net.Conn, error) {
		return func(addr string, timeout time.Duration) (net.Conn, error) {
			return fab.Dial(from, peer[addr], "tcp", addr, timeout)
		}
	}

	// Shard servers, each addressable as a faultnet peer, plus fault-free
	// direct observer clients per shard.
	var addrs []string
	var servers []*kvstore.Server
	direct := make(map[string]*kvstore.Client)
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	startShard := func(i int) (string, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := kvstore.Serve(l, kvstore.NewStore(4), kvstore.WithMetrics(reg))
		name := fmt.Sprintf("db%d", i)
		peer[srv.Addr()] = name
		addrs = append(addrs, srv.Addr())
		direct[name] = &kvstore.Client{Addr: srv.Addr(), Timeout: 2 * time.Second, Metrics: reg}
		servers = append(servers, srv)
		return srv.Addr(), nil
	}
	for i := 0; i < s.Nodes; i++ {
		if _, err := startShard(i); err != nil {
			return nil, err
		}
	}

	// clusterFor builds one participant's cluster view: same ring
	// parameters everywhere, per-participant fault dialers.
	clusterFor := func(from string, n int) (*cluster.Client, error) {
		cc := cluster.New(s.VirtualNodes, s.Seed, func(c *cluster.Client) { c.Metrics = reg })
		for i := 0; i < n; i++ {
			nc := &kvstore.Client{Addr: addrs[i], Timeout: s.Timeout, Dialer: dialerFor(from), Metrics: reg}
			if err := cc.Join(fmt.Sprintf("db%d", i), nc); err != nil {
				return nil, err
			}
		}
		return cc, nil
	}

	ctrlCluster, err := clusterFor("ctrl", s.Nodes)
	if err != nil {
		return nil, err
	}
	ctrl := controlplane.NewController(core.NewSolver(topo, core.Options{}), controlplane.ClusterAdapter{Client: ctrlCluster})
	ctrl.Metrics = reg
	// One lost shard must not stop the surviving shards from converging.
	ctrl.TolerateWriteErrors = true

	// The lost shard is the one owning the most agent config keys, so the
	// lost-homed set is never empty; ties break toward the smallest name
	// (cluster.Nodes() is sorted).
	homes := make(map[string]int)
	var instances []string
	seen := make(map[string]bool)
	for _, ep := range topo.Endpoints {
		if seen[ep.Instance] {
			continue
		}
		seen[ep.Instance] = true
		instances = append(instances, ep.Instance)
		homes[ctrlCluster.Owner(controlplane.ConfigKey(ep.Instance))]++
	}
	for _, node := range ctrlCluster.Nodes() {
		if res.LostNode == "" || homes[node] > homes[res.LostNode] {
			res.LostNode = node
		}
	}
	res.LostHomedAgents = homes[res.LostNode]

	var fleet []*shardAgent
	for idx, ins := range instances {
		name := fmt.Sprintf("agent%d", idx)
		cc, err := clusterFor(name, s.Nodes)
		if err != nil {
			return nil, err
		}
		host := hoststack.NewHost(name, 1500, func([4]byte) (uint32, bool) { return 0, false })
		defer host.Close()
		key := controlplane.ConfigKey(ins)
		fleet = append(fleet, &shardAgent{
			name:     name,
			instance: ins,
			agent: &controlplane.Agent{
				Instance:   ins,
				Reader:     controlplane.ClusterHomeReader{Client: cc, Key: key},
				Host:       host,
				Slot:       idx,
				SlotCount:  len(instances),
				StaleAfter: s.StaleAfter,
				Metrics:    reg,
			},
			host:      host,
			cc:        cc,
			lostHomed: cc.Owner(key) == res.LostNode,
		})
	}
	res.Agents = len(fleet)

	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	pollRound := func(rep *ShardWindow) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, fa := range fleet {
			fa := fa
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := fa.agent.Poll(); err != nil {
					mu.Lock()
					rep.PollErrors++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}

	lossActive := s.LoseAt < s.RejoinAt
	grown := false

	for w := 0; w < s.Windows; w++ {
		rep := ShardWindow{Window: w}

		// --- fault and membership events for this window ---
		if lossActive && w == s.LoseAt {
			fab.Partition("*", res.LostNode)
		}
		if lossActive && w == s.RejoinAt {
			fab.Heal("*", res.LostNode)
		}
		if s.GrowAt > 0 && w == s.GrowAt {
			addr, err := startShard(s.Nodes)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("db%d", s.Nodes)
			moved, err := ctrlCluster.AddNode(name, &kvstore.Client{Addr: addr, Timeout: s.Timeout, Dialer: dialerFor("ctrl"), Metrics: reg})
			if err != nil {
				violate("window %d: AddNode %s failed: %v", w, name, err)
			}
			res.MovedKeys = moved
			for _, fa := range fleet {
				nc := &kvstore.Client{Addr: addr, Timeout: s.Timeout, Dialer: dialerFor(fa.name), Metrics: reg}
				if err := fa.cc.Join(name, nc); err != nil {
					violate("window %d: %s failed to adopt %s: %v", w, fa.name, name, err)
				}
			}
			grown = true
		}

		// --- one TE interval; matrices alternate every two windows ---
		m := matrices[(w/2)%len(matrices)]
		if _, _, err := ctrl.RunInterval(m); err != nil {
			rep.IntervalErr = err.Error()
			res.FailedIntervals++
		} else {
			rep.Stats = ctrl.LastStats()
		}

		// --- poll the fleet once ---
		pollRound(&rep)

		// --- invariants ---
		blackholed := lossActive && w >= s.LoseAt && w < s.RejoinAt
		for _, fa := range fleet {
			if fa.agent.Degraded() {
				rep.Degraded++
			}
			if fa.agent.LastVersion() == ctrl.Version() {
				rep.Converged++
			}
			// Surviving shards converge every window: the blackhole is scoped
			// to exactly the agents homed on the lost shard.
			if blackholed && !fa.lostHomed && rep.IntervalErr == "" {
				if fa.agent.LastVersion() != ctrl.Version() {
					violate("window %d: surviving-homed %s at version %d, controller at %d",
						w, fa.name, fa.agent.LastVersion(), ctrl.Version())
				}
				if fa.agent.Degraded() {
					violate("window %d: surviving-homed %s degraded during shard loss", w, fa.name)
				}
			}
		}
		// Sustained loss: past the TTL every lost-homed agent has dropped to
		// conventional routing (§6.3) — degraded, pinned paths gone.
		if blackholed && w >= s.LoseAt+s.StaleAfter-1 {
			for _, fa := range fleet {
				if !fa.lostHomed {
					continue
				}
				if !fa.agent.Degraded() {
					violate("window %d: lost-homed %s not degraded after TTL", w, fa.name)
				}
				if fa.host.PathMap.Len() != 0 {
					violate("window %d: lost-homed %s still holds %d pinned paths after TTL",
						w, fa.name, fa.host.PathMap.Len())
				}
			}
		}
		// Rejoin: the interval after the heal republishes the dropped-hash
		// records, and one poll round recovers every agent.
		if lossActive && w == s.RejoinAt && rep.IntervalErr == "" {
			for _, fa := range fleet {
				if fa.agent.LastVersion() != ctrl.Version() {
					violate("window %d: %s at version %d after rejoin, controller at %d",
						w, fa.name, fa.agent.LastVersion(), ctrl.Version())
				}
				if fa.agent.Degraded() {
					violate("window %d: %s still degraded after rejoin+poll", w, fa.name)
				}
			}
		}
		res.Windows = append(res.Windows, rep)
	}

	// --- quiesce: heal everything, one clean interval, one poll round, then
	// exact end-state equalities ---
	fab.HealAll()
	finalRep := ShardWindow{Window: s.Windows}
	if _, _, err := ctrl.RunInterval(matrices[0]); err != nil {
		violate("quiesce interval failed on a healed fabric: %v", err)
	}
	if st := ctrl.LastStats(); st.WriteErrors != 0 {
		violate("quiesce interval tolerated %d write errors on a healed fabric", st.WriteErrors)
	}
	pollRound(&finalRep)
	res.Windows = append(res.Windows, finalRep)
	res.FinalVersion = ctrl.Version()

	// Fault-free observer cluster for end-state checks, sharing the
	// controller's membership.
	obs := cluster.New(s.VirtualNodes, s.Seed, func(c *cluster.Client) { c.Metrics = reg })
	nShards := s.Nodes
	if grown {
		nShards++
	}
	for i := 0; i < nShards; i++ {
		if err := obs.Join(fmt.Sprintf("db%d", i), &kvstore.Client{Addr: addrs[i], Timeout: 2 * time.Second, Metrics: reg}); err != nil {
			return nil, err
		}
	}
	if v, err := obs.Version(); err != nil || v != res.FinalVersion {
		violate("quiesce: cluster version %d (err=%v), controller at %d", v, err, res.FinalVersion)
	}
	// Placement invariant: every stored record lives on exactly the shard
	// the ring owns it to — the migration left no orphans behind.
	for node, dc := range direct {
		keys, err := dc.Keys("")
		if err != nil {
			violate("quiesce: enumerate %s: %v", node, err)
			continue
		}
		for _, k := range keys {
			if owner := obs.Owner(k); owner != node {
				violate("quiesce: record %s stored on %s but owned by %s", k, node, owner)
			}
		}
	}
	for _, fa := range fleet {
		fb, rec := fa.agent.FallbackStats()
		res.Fallbacks += fb
		res.Recoveries += rec
		if fa.agent.Degraded() {
			violate("quiesce: %s still degraded", fa.name)
		}
		if fa.agent.LastVersion() != res.FinalVersion {
			violate("quiesce: %s at version %d, controller at %d", fa.name, fa.agent.LastVersion(), res.FinalVersion)
		}
		data, ok, err := obs.Get(controlplane.ConfigKey(fa.instance))
		if err != nil {
			violate("quiesce: read config for %s: %v", fa.instance, err)
			continue
		}
		if !ok {
			if n := fa.host.PathMap.Len(); n != 0 {
				violate("quiesce: %s holds %d paths but the cluster has no record for %s", fa.name, n, fa.instance)
			}
			continue
		}
		var cfg controlplane.InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			violate("quiesce: record for %s unparseable: %v", fa.instance, err)
			continue
		}
		if !matchesPaths(fa.host, fa.instance, cfg.Paths) {
			violate("quiesce: %s installed paths diverge from the cluster record for %s", fa.name, fa.instance)
		}
	}
	for _, fa := range fleet {
		fa.cc.Close()
	}
	ctrlCluster.Close()
	obs.Close()
	return res, nil
}
