package chaos

import (
	"context"
	"fmt"
	"net"
	"time"

	"megate/internal/cluster"
	"megate/internal/faultnet"
	"megate/internal/fleetsim"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// StormScenario scripts a fleet storm against a live sharded TE database
// with per-shard admission control: a cold boot (every agent snapshots at
// once), a version-skew rollout (successive publishes ride the delta
// journal while the fleet is live), a partition that blackholes a slice of
// the fleet long enough to fire the staleness TTL, and a heal whose herd
// recovery is the measurement the acceptance bench gates on. The fleet is
// an internal/fleetsim event-loop simulator — one timer wheel, no
// goroutine-per-agent — wired through internal/faultnet peer groups so the
// partition cuts exactly the chosen groups.
//
// Invariants checked (violations, never harness errors): every phase
// converges its reachable agents within ConvergeTimeout, the rollout rides
// deltas alone (no snapshot resync), cold sync stays O(1) requests per
// agent (min 1, max 2 snapshots: boot plus at most one TTL resync), and
// nobody wedges after heal — a shed is a delay, never a stuck agent.
type StormScenario struct {
	// Seed fixes the faultnet fabric, the fleet's jitter streams, and the
	// driver's retry jitter.
	Seed int64
	// Agents is the fleet size (default 200).
	Agents int
	// Shards is the TE-database shard count (default 3).
	Shards int
	// Groups is the number of faultnet peer groups the fleet is split into;
	// agent i belongs to group i mod Groups (default 4).
	Groups int
	// PartitionGroups is how many groups the partition blackholes
	// (default 1; capped at Groups-1 so survivors always exist).
	PartitionGroups int
	// Workers sizes the fleet's network worker pool (default 32).
	Workers int
	// PollInterval is the steady-state per-agent poll spacing (default 25ms).
	PollInterval time.Duration
	// Tick is the fleet timer-wheel granularity (default 2ms).
	Tick time.Duration
	// Timeout bounds each agent-side network operation; keep it short — a
	// blackholed dial blocks a worker for the full timeout (default 60ms).
	Timeout time.Duration
	// MaxBackoff caps the per-agent transport-failure backoff (default 120ms).
	MaxBackoff time.Duration
	// StaleAfter is the staleness TTL in consecutive failed polls
	// (default 2).
	StaleAfter int
	// RolloutPublishes is how many publishes the version-skew rollout phase
	// issues before the partition (default 2; negative skips the phase).
	RolloutPublishes int
	// PartitionHold overrides how long the partition is held after the
	// survivors converge. Zero derives a hold long enough that every cut
	// agent's staleness TTL is guaranteed to fire (worst-case failure
	// cycles times pool rotation) — correct for chaos gating but quadratic
	// in fleet size; large-fleet bench runs set an explicit hold and give
	// up the every-TTL-fired invariant.
	PartitionHold time.Duration
	// Admission is the per-shard admission control; the zero value takes
	// DefaultStormAdmission. Set NoAdmission for the bench's control arm.
	Admission kvstore.Admission
	// NoAdmission disables admission control even though the zero Admission
	// would otherwise be replaced by the tight default.
	NoAdmission bool
	// ServiceDelay is synthetic per-command store service time, spent while
	// the command holds its admission slot (default 1ms). It models a shard
	// under real load: with it, the fleet's tick-quantized dispatch bursts
	// structurally overflow the admission queue at herd moments, instead of
	// sheds depending on microsecond scheduling luck against an in-memory
	// store.
	ServiceDelay time.Duration
	// DeltaLogCap bounds each shard's delta journal (default 8×Agents —
	// ample, so the storm exercises BUSY and TTL paths, not GAP; the gap
	// fallback has its own fleetsim tests).
	DeltaLogCap int
	// ConvergeTimeout bounds each phase's wait for convergence
	// (default 30s); overrunning it is a violation, not a hang.
	ConvergeTimeout time.Duration
	// Metrics receives every component's telemetry; nil uses a fresh
	// private registry.
	Metrics *telemetry.Registry
}

// DefaultStormAdmission is the per-shard admission the storm runs under
// unless overridden. Sized against the default ServiceDelay so steady-state
// offered load sits below capacity (the driver's writes get through) while
// every herd moment — the tick-quantized dispatch bursts of cold boot and
// heal — overflows MaxInflight+MaxQueue and sheds: the storm must shed and
// still converge everywhere.
var DefaultStormAdmission = kvstore.Admission{
	MaxInflight: 4,
	MaxQueue:    4,
	RetryAfter:  15 * time.Millisecond,
}

// StormPhase is one scripted phase's outcome.
type StormPhase struct {
	// Name is cold-boot, rollout, partition, or heal.
	Name string
	// Target is the version the phase published and waited on.
	Target uint64
	// Expected and Converged count the agents that could and did reach
	// Target within the phase (survivors only during the partition).
	Expected, Converged int64
	// LagP50 and LagP99 are convergence-lag percentiles for the phase's
	// converged agents (wall-clock; not replay-deterministic).
	LagP50, LagP99 time.Duration
	// Stats is the fleet's cumulative counter snapshot at phase end.
	Stats fleetsim.Stats
}

// StormResult aggregates a storm run.
type StormResult struct {
	Phases     []StormPhase
	Violations []string

	Agents       int
	Partitioned  int
	FinalVersion uint64
	// SnapshotsMin and SnapshotsMax bound the per-agent snapshot counts at
	// the end of the run — the O(1)-requests-per-cold-agent evidence.
	SnapshotsMin, SnapshotsMax uint32
	// TTLResyncs counts snapshot resyncs beyond cold boot (agents whose
	// staleness TTL fired during the partition).
	TTLResyncs uint64
	// Busy is how many polls the fleet had shed with BUSY; Shed is the
	// server-side count (includes driver writes).
	Busy, Shed uint64
	// Wedged is the number of agents that never reached the final target —
	// the zero-shed-induced-wedges acceptance gate.
	Wedged int
}

func (s *StormScenario) defaults() {
	if s.Agents <= 0 {
		s.Agents = 200
	}
	if s.Shards <= 0 {
		s.Shards = 3
	}
	if s.Groups <= 0 {
		s.Groups = 4
	}
	if s.Groups > s.Agents {
		s.Groups = s.Agents
	}
	if s.PartitionGroups <= 0 {
		s.PartitionGroups = 1
	}
	if s.PartitionGroups >= s.Groups {
		s.PartitionGroups = s.Groups - 1
	}
	if s.Workers <= 0 {
		s.Workers = 32
	}
	if s.PollInterval <= 0 {
		s.PollInterval = 25 * time.Millisecond
	}
	if s.Tick <= 0 {
		s.Tick = 2 * time.Millisecond
	}
	if s.Timeout <= 0 {
		s.Timeout = 60 * time.Millisecond
	}
	if s.MaxBackoff <= 0 {
		s.MaxBackoff = 120 * time.Millisecond
	}
	if s.StaleAfter <= 0 {
		s.StaleAfter = 2
	}
	if s.RolloutPublishes == 0 {
		s.RolloutPublishes = 2
	}
	if s.RolloutPublishes < 0 {
		s.RolloutPublishes = 0
	}
	if s.Admission.MaxInflight < 1 && !s.NoAdmission {
		s.Admission = DefaultStormAdmission
	}
	if s.NoAdmission {
		s.Admission = kvstore.Admission{}
	}
	if s.ServiceDelay <= 0 {
		s.ServiceDelay = time.Millisecond
	}
	if s.DeltaLogCap <= 0 {
		s.DeltaLogCap = 8 * s.Agents
	}
	if s.ConvergeTimeout <= 0 {
		s.ConvergeTimeout = 30 * time.Second
	}
}

// groupAgents returns how many agents live in groups [0, n): fleetsim
// assigns agent i to group i mod Groups.
func (s *StormScenario) groupAgents(n int) int {
	count := 0
	for g := 0; g < n; g++ {
		count += (s.Agents - g + s.Groups - 1) / s.Groups
	}
	return count
}

// RunStorm executes the scenario; err is non-nil only for harness failures,
// never for invariant violations — those land in Violations.
func RunStorm(s StormScenario) (*StormResult, error) {
	s.defaults()
	res := &StormResult{Agents: s.Agents, Partitioned: s.groupAgents(s.PartitionGroups)}
	reg := s.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// --- fabric, shards, per-group cluster views ---
	fab := faultnet.New(s.Seed)
	peer := make(map[string]string)
	dialerFor := func(from string) func(string, time.Duration) (net.Conn, error) {
		return func(addr string, timeout time.Duration) (net.Conn, error) {
			return fab.Dial(from, peer[addr], "tcp", addr, timeout)
		}
	}

	var addrs []string
	var servers []*kvstore.Server
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	opts := []kvstore.ServerOption{kvstore.WithMetrics(reg), kvstore.WithServiceDelay(s.ServiceDelay)}
	if s.Admission.MaxInflight >= 1 {
		opts = append(opts, kvstore.WithAdmission(s.Admission))
	}
	for i := 0; i < s.Shards; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		store := kvstore.NewStore(8)
		store.EnableDeltaLog(s.DeltaLogCap)
		srv := kvstore.Serve(l, store, opts...)
		peer[srv.Addr()] = fmt.Sprintf("db%d", i)
		addrs = append(addrs, srv.Addr())
		servers = append(servers, srv)
	}

	clusterFor := func(from string, timeout time.Duration) (*cluster.Client, error) {
		cc := cluster.New(0, s.Seed, func(c *cluster.Client) { c.Metrics = reg })
		for i, addr := range addrs {
			nc := &kvstore.Client{Addr: addr, Timeout: timeout, Dialer: dialerFor(from), Metrics: reg}
			if err := cc.Join(fmt.Sprintf("db%d", i), nc); err != nil {
				return nil, err
			}
		}
		return cc, nil
	}

	groupName := func(g int) string { return fmt.Sprintf("g%d", g) }
	sources := make([]fleetsim.Source, s.Groups)
	var groupCCs []*cluster.Client
	defer func() {
		for _, cc := range groupCCs {
			cc.Close()
		}
	}()
	for g := 0; g < s.Groups; g++ {
		cc, err := clusterFor(groupName(g), s.Timeout)
		if err != nil {
			return nil, err
		}
		groupCCs = append(groupCCs, cc)
		sources[g] = fleetsim.ClusterSource{Client: cc}
	}

	// The driver ("ctrl") is never partitioned, so it keeps a generous
	// timeout — its seeding batches pipeline thousands of service-delayed
	// commands per connection — and its writes retry through a seeded
	// Backoff so admission sheds delay them instead of failing them.
	ctrlCC, err := clusterFor("ctrl", 30*time.Second)
	if err != nil {
		return nil, err
	}
	defer ctrlCC.Close()
	retry := &kvstore.Backoff{Attempts: 12, Base: 5 * time.Millisecond, Max: 250 * time.Millisecond, Seed: s.Seed ^ 0x5f}

	fleet, err := fleetsim.New(fleetsim.Config{
		Agents:       s.Agents,
		Workers:      s.Workers,
		PollInterval: s.PollInterval,
		MaxBackoff:   s.MaxBackoff,
		Tick:         s.Tick,
		Seed:         s.Seed,
		Prefix:       "storm",
		StaleAfter:   s.StaleAfter,
		Metrics:      reg,
	}, sources)
	if err != nil {
		return nil, err
	}

	// Seed every agent's record before the fleet boots: the cold snapshot
	// must find real config. Seeding runs uncontended, so it can take the
	// pipelined batch path — at bench fleet sizes per-key round trips
	// through the service delay would dominate the whole run.
	record := func(i int, rev uint64) []byte {
		return []byte(fmt.Sprintf(`{"instance":"storm-%06d","rev":%d}`, i, rev))
	}
	const seedChunk = 2000
	for lo := 0; lo < s.Agents; lo += seedChunk {
		hi := lo + seedChunk
		if hi > s.Agents {
			hi = s.Agents
		}
		keys := make([]string, 0, hi-lo)
		vals := make([][]byte, 0, hi-lo)
		for i := lo; i < hi; i++ {
			keys = append(keys, fleet.Key(i))
			vals = append(vals, record(i, 1))
		}
		if err := retry.Do(func() error { _, err := ctrlCC.PutBatch(keys, vals); return err }); err != nil {
			return nil, fmt.Errorf("seed records %d..%d: %w", lo, hi, err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	fleetDone := make(chan struct{})
	go func() { defer close(fleetDone); fleet.Run(ctx) }()
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			cancel()
			<-fleetDone
		}
	}
	defer stop()

	version := uint64(0)
	// publishRound arms convergence measurement, publishes the next version,
	// waits for want agents, and appends the phase report.
	publishRound := func(name string, want int64) {
		version++
		fleet.SetTarget(version)
		if err := retry.Do(func() error { return ctrlCC.Publish(version) }); err != nil {
			violate("%s: publish %d failed: %v", name, version, err)
		}
		deadline := time.Now().Add(s.ConvergeTimeout)
		for fleet.Converged() < want && time.Now().Before(deadline) {
			time.Sleep(s.Tick)
		}
		ph := StormPhase{Name: name, Target: version, Expected: want, Converged: fleet.Converged(), Stats: fleet.Stats()}
		ph.LagP50, ph.LagP99 = fleet.LagPercentiles()
		if ph.Converged < want {
			violate("%s: %d/%d agents converged on version %d within %v",
				name, ph.Converged, want, version, s.ConvergeTimeout)
		}
		res.Phases = append(res.Phases, ph)
	}

	all := int64(s.Agents)

	// writeStripe rewrites every stride-th record through the contended
	// per-key retry path (pipelined batches livelock against admission —
	// any one shed fails the whole batch). The stride widens at bench fleet
	// sizes so live driver writes stay near a thousand keys per phase.
	writeStripe := func(phase string, off, stride int) {
		if s.Agents > 1000*stride {
			stride = s.Agents / 1000
		}
		for i := off % stride; i < s.Agents; i += stride {
			key, body := fleet.Key(i), record(i, version+1)
			if err := retry.Do(func() error { return ctrlCC.Put(key, body) }); err != nil {
				violate("%s: put %s failed: %v", phase, key, err)
			}
		}
	}

	// --- phase 1: cold boot — every agent snapshots once and converges ---
	publishRound("cold-boot", all)
	bootSnaps := fleet.Stats().Snapshots

	// --- phase 2: version-skew rollout — successive publishes while the
	// fleet is live, each rewriting a different stripe of records; a mix of
	// agent versions is in flight at every instant and everyone catches up
	// through the delta journal alone ---
	for r := 0; r < s.RolloutPublishes; r++ {
		writeStripe("rollout", r, 2)
		publishRound("rollout", all)
	}
	if snaps := fleet.Stats().Snapshots; snaps != bootSnaps {
		violate("rollout forced %d snapshot resyncs; version skew must ride deltas alone", snaps-bootSnaps)
	}

	// --- phase 3: partition — blackhole the chosen groups, publish into the
	// split, and hold it long enough that every cut agent's TTL fires ---
	for g := 0; g < s.PartitionGroups; g++ {
		fab.Partition(groupName(g), "*")
	}
	survivors := all - int64(res.Partitioned)
	writeStripe("partition", 0, 3)
	publishRound("partition", survivors)
	// Worst-case failure cycle for a cut agent: a full client timeout (a
	// blackholed op blocks until its deadline) plus the capped backoff,
	// times the pool rotation when every cut agent's job blocks a worker.
	hold := s.PartitionHold
	autoHold := hold <= 0
	if autoHold {
		waves := res.Partitioned/s.Workers + 2
		hold = time.Duration(s.StaleAfter*waves) * (s.Timeout + s.MaxBackoff)
	}
	time.Sleep(hold)

	// --- phase 4: heal — the cut groups storm back, resync via one inline
	// snapshot each, and the whole fleet converges on a fresh publish; the
	// recorded lag percentiles are the herd-recovery measurement ---
	for g := 0; g < s.PartitionGroups; g++ {
		fab.Heal(groupName(g), "*")
	}
	publishRound("heal", all)

	res.Wedged = fleet.Wedged()
	res.FinalVersion = version
	st := fleet.Stats()
	res.Busy = st.Busy
	res.Shed = reg.Counter(kvstore.MetricServerShed).Value()
	stop()

	// --- end-state invariants (per-agent state is only readable once the
	// loop has exited) ---
	res.SnapshotsMin, res.SnapshotsMax = fleet.SnapshotCounts()
	res.TTLResyncs = fleet.Stats().Snapshots - uint64(s.Agents)
	if res.Wedged != 0 {
		violate("%d agents wedged after heal; a shed must delay, never wedge", res.Wedged)
	}
	if res.SnapshotsMin != 1 {
		violate("per-agent snapshot min %d, want exactly 1 (cold boot is one snapshot)", res.SnapshotsMin)
	}
	if res.SnapshotsMax > 2 {
		violate("per-agent snapshot max %d, want ≤ 2 (boot plus at most one TTL resync): snapshot sync is not O(1)", res.SnapshotsMax)
	}
	if st.DeltaGaps != 0 {
		violate("%d delta gaps; the journal capacity %d should cover the whole storm", st.DeltaGaps, s.DeltaLogCap)
	}
	if autoHold && s.StaleAfter <= 2 && res.TTLResyncs < uint64(res.Partitioned) {
		violate("only %d TTL resyncs for %d cut agents; the partition hold %v never fired every TTL",
			res.TTLResyncs, res.Partitioned, hold)
	}
	return res, nil
}
