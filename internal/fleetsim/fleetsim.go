// Package fleetsim drives very large endpoint fleets — 100k+ agent state
// machines — against a live TE-database cluster from a single event loop.
// MegaTE's scaling claim (§5, §7) is about what happens when *millions* of
// agents poll, storm, and recover at once; goroutine-per-agent test fleets
// stop being honest around a few thousand members, so this simulator keeps
// every agent as ~100 bytes of state machine scheduled by one timer wheel,
// with a small worker pool performing the actual short-connection network
// I/O through internal/faultnet.
//
// Concurrency shape (the lint fixtures pin this): one loop goroutine owns
// every agent's state and the wheel; workers own nothing — they receive
// fully-described jobs on a channel, do network I/O, and send results back.
// The only shared state is the fleet-level atomic counters and the
// mutex-guarded convergence-lag slice, neither of which is ever held across
// I/O.
package fleetsim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"megate/internal/cluster"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// Fleet-level metric names: poll volume by kind, back-pressure absorbed,
// and the convergence instrumentation the storm scenarios gate on.
const (
	MetricFleetAgents     = "megate_fleetsim_agents"
	MetricFleetPolls      = "megate_fleetsim_polls_total"
	MetricFleetSnapshots  = "megate_fleetsim_snapshots_total"
	MetricFleetDeltaPolls = "megate_fleetsim_delta_polls_total"
	MetricFleetBusy       = "megate_fleetsim_busy_total"
	MetricFleetErrors     = "megate_fleetsim_errors_total"
	MetricFleetDeltaGaps  = "megate_fleetsim_delta_gaps_total"
	MetricFleetConverged  = "megate_fleetsim_converged"
	MetricFleetLagSeconds = "megate_fleetsim_convergence_lag_seconds"
)

// Source is one fault-injection peer group's network surface to the TE
// database: how the agents of that group snapshot and delta-poll their own
// config key. Implementations are called concurrently by the worker pool.
type Source interface {
	Snapshot(key string) (uint64, map[string][]byte, error)
	Delta(key string, since uint64) (uint64, []kvstore.DeltaEntry, error)
}

// ClusterSource adapts a *cluster.Client (typically constructed with a
// faultnet group dialer) to Source: both calls route to the key's home
// shard, the agent-side discipline that keeps poll load flat as shards are
// added.
type ClusterSource struct{ Client *cluster.Client }

// Snapshot implements Source.
func (s ClusterSource) Snapshot(key string) (uint64, map[string][]byte, error) {
	return s.Client.OwnerSnapshot(key, key)
}

// Delta implements Source.
func (s ClusterSource) Delta(key string, since uint64) (uint64, []kvstore.DeltaEntry, error) {
	return s.Client.OwnerDelta(key, since, key)
}

// Config parameterizes a Fleet.
type Config struct {
	// Agents is the fleet size.
	Agents int
	// Workers sizes the network worker pool; default 32.
	Workers int
	// PollInterval is the steady-state poll spacing per agent; default
	// 500ms. The initial schedule spreads agents uniformly across one
	// interval, the §3.2 slot discipline.
	PollInterval time.Duration
	// MaxBackoff caps the per-agent retry wait growth under transport
	// failures; default 8×PollInterval.
	MaxBackoff time.Duration
	// Tick is the wheel granularity; default 5ms.
	Tick time.Duration
	// Seed fixes every agent's jitter stream.
	Seed int64
	// Prefix names the fleet's instances; config keys are
	// "te/cfg/<Prefix>-<index>". Default "fleet".
	Prefix string
	// StaleAfter mirrors the agent staleness TTL in consecutive failed
	// polls; after it fires the agent resyncs via snapshot on recovery
	// (its pinned state can no longer be trusted). Default 8.
	StaleAfter int
	// Metrics routes the fleet-level series; nil uses telemetry.Default.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Agents < 1 {
		c.Agents = 1
	}
	if c.Workers < 1 {
		c.Workers = 32
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.PollInterval
	}
	if c.Tick <= 0 {
		c.Tick = 5 * time.Millisecond
	}
	if c.Prefix == "" {
		c.Prefix = "fleet"
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 8
	}
	return c
}

// agentState is one simulated endpoint agent. Only the loop goroutine
// touches it. The whole struct stays around a hundred bytes — the budget
// that makes 100k agents a ~10MB fleet instead of 100k goroutine stacks.
type agentState struct {
	key      string
	group    int32
	cold     bool   // next poll must snapshot (boot, TTL fired)
	inflight bool   // a job for this agent is out with the workers
	consec   uint16 // consecutive transport-failure polls
	snaps    uint32
	busy     uint32
	version  uint64
	rng      uint64        // splitmix64 state
	wait     time.Duration // current transport-failure backoff
	busyWait time.Duration // current shed backoff (0 = take the next hint)
	lagged   bool          // not yet converged on the current target
}

// job is one network operation for the worker pool; snap selects the
// snapshot path, otherwise a delta poll since the given version.
type job struct {
	idx   int32
	group int32
	snap  bool
	since uint64
	key   string
}

// result is what a worker sends back. gapped records that the delta answer
// was a GAP and the worker fell back to a snapshot inline — the "O(1)
// requests per cold agent" path measured by the acceptance bench.
type result struct {
	idx        int32
	snap       bool
	gapped     bool
	version    uint64
	err        error
	retryAfter time.Duration // BUSY suggestion, when err is ErrBusy-flavored
}

// fleetMetrics binds the registry series.
type fleetMetrics struct {
	agents    *telemetry.Gauge
	polls     *telemetry.Counter
	snaps     *telemetry.Counter
	deltas    *telemetry.Counter
	busy      *telemetry.Counter
	errs      *telemetry.Counter
	gaps      *telemetry.Counter
	converged *telemetry.Gauge
	lag       *telemetry.Histogram
}

func newFleetMetrics(r *telemetry.Registry) *fleetMetrics {
	return &fleetMetrics{
		agents:    r.Gauge(MetricFleetAgents),
		polls:     r.Counter(MetricFleetPolls),
		snaps:     r.Counter(MetricFleetSnapshots),
		deltas:    r.Counter(MetricFleetDeltaPolls),
		busy:      r.Counter(MetricFleetBusy),
		errs:      r.Counter(MetricFleetErrors),
		gaps:      r.Counter(MetricFleetDeltaGaps),
		converged: r.Gauge(MetricFleetConverged),
		lag:       r.Histogram(MetricFleetLagSeconds, telemetry.TimeBuckets),
	}
}

// Fleet is the simulator. Construct with New, start Run in a goroutine,
// script the run through SetTarget/faultnet, then stop via the context.
type Fleet struct {
	cfg     Config
	sources []Source
	agents  []agentState
	wh      *wheel
	m       *fleetMetrics

	jobs    chan job
	results chan result
	cmds    chan func()

	start    time.Time
	targetAt time.Time

	// Cross-goroutine observation surface: totals the loop publishes and
	// the scenario/bench side reads while the loop runs.
	polls     atomic.Uint64
	snapsN    atomic.Uint64
	deltasN   atomic.Uint64
	busyN     atomic.Uint64
	errsN     atomic.Uint64
	gapsN     atomic.Uint64
	target    atomic.Uint64
	converged atomic.Int64

	lagMu sync.Mutex
	lags  []time.Duration
}

// New builds a fleet of cfg.Agents agents over the per-group sources;
// agent i belongs to group i mod len(sources).
func New(cfg Config, sources []Source) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if len(sources) == 0 {
		return nil, errors.New("fleetsim: at least one source group required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.Default
	}
	f := &Fleet{
		cfg:     cfg,
		sources: sources,
		agents:  make([]agentState, cfg.Agents),
		wh:      newWheel(cfg.Tick, int(cfg.MaxBackoff/cfg.Tick)+2, cfg.Agents),
		m:       newFleetMetrics(reg),
		jobs:    make(chan job, 4*cfg.Workers),
		results: make(chan result, 4*cfg.Workers),
		cmds:    make(chan func(), 8),
	}
	for i := range f.agents {
		a := &f.agents[i]
		a.key = f.Key(i)
		a.group = int32(i % len(sources))
		a.cold = true
		a.wait = cfg.PollInterval
		a.rng = uint64(cfg.Seed)*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
	}
	f.m.agents.Set(float64(cfg.Agents))
	return f, nil
}

// Key returns agent i's TE-database config key — the driver writes records
// under the same keys.
func (f *Fleet) Key(i int) string {
	return fmt.Sprintf("te/cfg/%s-%06d", f.cfg.Prefix, i)
}

// splitmix advances the per-agent RNG state one step.
func splitmix(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// jitter draws a per-agent duration in [0, d].
func jitter(a *agentState, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(splitmix(&a.rng) % uint64(d+1))
}

// Stats is a point-in-time snapshot of the fleet's cumulative counters.
type Stats struct {
	Polls, Snapshots, DeltaPolls uint64
	Busy, Errors, DeltaGaps      uint64
	Converged                    int64
}

// Stats reads the fleet's counters; safe while Run is live.
func (f *Fleet) Stats() Stats {
	return Stats{
		Polls:      f.polls.Load(),
		Snapshots:  f.snapsN.Load(),
		DeltaPolls: f.deltasN.Load(),
		Busy:       f.busyN.Load(),
		Errors:     f.errsN.Load(),
		DeltaGaps:  f.gapsN.Load(),
		Converged:  f.converged.Load(),
	}
}

// Converged returns how many agents have reached the current target.
func (f *Fleet) Converged() int64 { return f.converged.Load() }

// Lags copies the per-agent convergence lags recorded since the last
// SetTarget; safe while Run is live.
func (f *Fleet) Lags() []time.Duration {
	f.lagMu.Lock()
	defer f.lagMu.Unlock()
	return append([]time.Duration(nil), f.lags...)
}

// LagPercentiles returns the p50 and p99 of the recorded convergence lags
// (zeroes when nothing has converged yet).
func (f *Fleet) LagPercentiles() (p50, p99 time.Duration) {
	lags := f.Lags()
	if len(lags) == 0 {
		return 0, 0
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	return lags[len(lags)*50/100], lags[len(lags)*99/100]
}

// SetTarget arms convergence measurement: every agent is marked lagging and
// the lag clock starts now. Call it immediately BEFORE publishing version v
// to the database so no agent can have seen v already. Blocks until the loop
// has applied it; only call while Run is live.
func (f *Fleet) SetTarget(v uint64) {
	done := make(chan struct{})
	f.cmds <- func() {
		f.target.Store(v)
		f.targetAt = time.Now()
		f.converged.Store(0)
		f.m.converged.Set(0)
		f.lagMu.Lock()
		f.lags = f.lags[:0]
		f.lagMu.Unlock()
		for i := range f.agents {
			f.agents[i].lagged = true
		}
		close(done)
	}
	<-done
}

// Run drives the fleet until ctx ends. The calling goroutine becomes the
// event loop and owner of all agent state; Workers goroutines perform the
// network I/O. Run returns after every worker has drained and exited.
func (f *Fleet) Run(ctx context.Context) {
	f.start = time.Now()
	f.targetAt = f.start
	var wg sync.WaitGroup
	for w := 0; w < f.cfg.Workers; w++ {
		wg.Add(1)
		go f.worker(&wg)
	}
	// Initial schedule: agents spread uniformly across one poll interval,
	// jittered per agent — the slot discipline of §3.2.
	for i := range f.agents {
		a := &f.agents[i]
		f.wh.schedule(int32(i), time.Duration(i)*f.cfg.PollInterval/time.Duration(len(f.agents))+jitter(a, f.cfg.Tick))
	}
	ticker := time.NewTicker(f.cfg.Tick)
	defer ticker.Stop()
	var due []int32
	var backlog []job
	for {
		select {
		case <-ctx.Done():
			close(f.jobs)
			// Workers may be blocked sending results; drain until they are
			// all gone, then the results channel closes and Run returns.
			go func() { wg.Wait(); close(f.results) }()
			for range f.results {
			}
			return
		case fn := <-f.cmds:
			fn()
		case r := <-f.results:
			f.onResult(r)
		case <-ticker.C:
			now := uint64(time.Since(f.start) / f.cfg.Tick)
			due = f.wh.advance(now, due[:0])
			backlog = f.dispatch(due, backlog)
		}
	}
}

// dispatch turns due agents into jobs, sending without ever blocking the
// loop (a full pool pushes the remainder back one tick — natural
// back-pressure from the worker pool to the schedule).
func (f *Fleet) dispatch(due []int32, backlog []job) []job {
	backlog = backlog[:0]
	for _, idx := range due {
		a := &f.agents[idx]
		if a.inflight {
			continue
		}
		j := job{idx: idx, group: a.group, snap: a.cold, since: a.version, key: a.key}
		select {
		case f.jobs <- j:
			a.inflight = true
		default:
			backlog = append(backlog, j)
		}
	}
	for _, j := range backlog {
		f.wh.schedule(j.idx, f.cfg.Tick)
	}
	return backlog
}

// worker performs network jobs until the jobs channel closes. A delta
// answered with GAP falls back to a snapshot inline, so a journal-truncated
// agent still resyncs within one scheduling round.
func (f *Fleet) worker(wg *sync.WaitGroup) {
	defer wg.Done()
	for j := range f.jobs {
		src := f.sources[j.group]
		r := result{idx: j.idx, snap: j.snap}
		if !j.snap {
			v, _, err := src.Delta(j.key, j.since)
			if err == nil || !errors.Is(err, kvstore.ErrDeltaGap) {
				r.version, r.err = v, err
				f.finish(&r)
				continue
			}
			r.gapped, r.snap = true, true
		}
		v, _, err := src.Snapshot(j.key)
		r.version, r.err = v, err
		f.finish(&r)
	}
}

// finish annotates a result with its BUSY retry hint and hands it to the
// loop.
func (f *Fleet) finish(r *result) {
	var be *kvstore.BusyError
	if errors.As(r.err, &be) {
		r.retryAfter = be.RetryAfter
		if r.retryAfter <= 0 {
			r.retryAfter = kvstore.DefaultRetryAfter
		}
	}
	f.results <- *r
}

// onResult folds one poll outcome into the agent's state machine and
// reschedules it. Runs on the loop goroutine.
func (f *Fleet) onResult(r result) {
	a := &f.agents[r.idx]
	a.inflight = false
	f.polls.Add(1)
	f.m.polls.Inc()
	var delay time.Duration
	switch {
	case r.err == nil:
		a.consec = 0
		a.wait = f.cfg.PollInterval
		a.busyWait = 0
		if r.snap {
			a.cold = false
			a.snaps++
			f.snapsN.Add(1)
			f.m.snaps.Inc()
			if r.gapped {
				f.gapsN.Add(1)
				f.m.gaps.Inc()
			}
			a.version = r.version
		} else {
			f.deltasN.Add(1)
			f.m.deltas.Inc()
			if r.version > a.version {
				a.version = r.version
			}
		}
		if t := f.target.Load(); a.lagged && t > 0 && a.version >= t {
			a.lagged = false
			lag := time.Since(f.targetAt)
			f.converged.Add(1)
			f.m.converged.Add(1)
			f.m.lag.Observe(lag.Seconds())
			f.lagMu.Lock()
			f.lags = append(f.lags, lag)
			f.lagMu.Unlock()
		}
		// Steady-state cadence: the base interval with a tick of jitter so
		// integer rounding cannot slowly re-bunch the fleet.
		delay = f.cfg.PollInterval + jitter(a, f.cfg.Tick)
	case r.retryAfter > 0:
		// Shed ≠ dead: honor the server's suggestion plus de-correlating
		// jitter, and leave the failure TTL alone. Consecutive sheds double
		// the pause up to the poll interval — at herd scale a constant
		// hint-rate retry keeps the shard's queue full forever (every drain
		// slot is instantly re-claimed by the retrying herd), a metastable
		// congestion loop where sheds beget sheds.
		a.busy++
		a.consec = 0
		f.busyN.Add(1)
		f.m.busy.Inc()
		if a.busyWait < r.retryAfter {
			a.busyWait = r.retryAfter
		} else if a.busyWait *= 2; a.busyWait > f.cfg.PollInterval {
			a.busyWait = f.cfg.PollInterval
		}
		delay = a.busyWait + jitter(a, a.busyWait/2)
	default:
		f.errsN.Add(1)
		f.m.errs.Inc()
		a.busyWait = 0
		a.consec++
		if int(a.consec) >= f.cfg.StaleAfter && !a.cold {
			// Staleness TTL: pinned state is stale; resync from a snapshot
			// once the database is reachable again.
			a.cold = true
		}
		if a.wait *= 2; a.wait > f.cfg.MaxBackoff {
			a.wait = f.cfg.MaxBackoff
		}
		delay = a.wait/2 + jitter(a, a.wait/2)
	}
	f.wh.schedule(r.idx, delay)
}

// SnapshotCounts returns the min and max per-agent snapshot counts — the
// O(1)-requests-per-cold-agent acceptance evidence. Only call after Run has
// returned (the loop owns per-agent state while live).
func (f *Fleet) SnapshotCounts() (min, max uint32) {
	if len(f.agents) == 0 {
		return 0, 0
	}
	min, max = f.agents[0].snaps, f.agents[0].snaps
	for i := range f.agents {
		s := f.agents[i].snaps
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// Wedged returns how many agents have not converged on the current target —
// zero after a healthy recovery is the "no shed-induced wedges" acceptance
// gate. Safe while Run is live.
func (f *Fleet) Wedged() int {
	return f.cfg.Agents - int(f.converged.Load())
}
