package fleetsim

import (
	"context"
	"sync"
	"testing"
	"time"

	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// TestWheel pins the timer wheel's contract: due entries pop exactly once,
// in tick order, and delays longer than one lap survive the wrap.
func TestWheel(t *testing.T) {
	w := newWheel(time.Millisecond, 8, 4) // 8 slots
	w.schedule(0, 1*time.Millisecond)
	w.schedule(1, 3*time.Millisecond)
	w.schedule(2, 20*time.Millisecond) // 2.5 laps out
	w.schedule(3, 3*time.Millisecond)

	out := w.advance(1, nil)
	if len(out) != 1 || out[0] != 0 {
		t.Fatalf("tick 1: got %v, want [0]", out)
	}
	out = w.advance(5, out[:0])
	if len(out) != 2 {
		t.Fatalf("tick 5: got %v, want two entries", out)
	}
	seen := map[int32]bool{out[0]: true, out[1]: true}
	if !seen[1] || !seen[3] {
		t.Fatalf("tick 5: got %v, want {1,3}", out)
	}
	// The long entry must not fire on its first lap collision.
	out = w.advance(12, out[:0])
	if len(out) != 0 {
		t.Fatalf("tick 12: got %v, want none", out)
	}
	out = w.advance(20, out[:0])
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("tick 20: got %v, want [2]", out)
	}
}

// fakeSource is an in-memory TE database for deterministic state-machine
// tests: a version counter, optional forced BUSY answers, a delta-gap floor,
// and a transport-failure switch. Concurrency-safe — the worker pool calls
// it from many goroutines.
type fakeSource struct {
	mu       sync.Mutex
	version  uint64
	busyLeft int    // next busyLeft calls answer BUSY
	gapFloor uint64 // Delta since < gapFloor answers ErrDeltaGap
	dead     bool   // transport failure on every call
	snaps    int
	deltas   int
}

func (s *fakeSource) step() (v uint64, err error) {
	if s.dead {
		return 0, context.DeadlineExceeded
	}
	if s.busyLeft > 0 {
		s.busyLeft--
		return 0, &kvstore.BusyError{RetryAfter: 5 * time.Millisecond}
	}
	return s.version, nil
}

func (s *fakeSource) Snapshot(key string) (uint64, map[string][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.step()
	if err != nil {
		return 0, nil, err
	}
	s.snaps++
	return v, map[string][]byte{key: []byte("cfg")}, nil
}

func (s *fakeSource) Delta(key string, since uint64) (uint64, []kvstore.DeltaEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.step()
	if err != nil {
		return 0, nil, err
	}
	if since < s.gapFloor {
		return v, nil, kvstore.ErrDeltaGap
	}
	s.deltas++
	if v <= since {
		return v, nil, nil
	}
	return v, []kvstore.DeltaEntry{{Key: key, Value: []byte("cfg"), Version: v}}, nil
}

func (s *fakeSource) set(fn func(*fakeSource)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s)
}

// runFleet starts f.Run and returns a stop function that cancels and waits.
func runFleet(f *Fleet) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	return func() { cancel(); <-done }
}

func waitConverged(t *testing.T, f *Fleet, n int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for f.Converged() < n {
		if time.Now().After(deadline) {
			t.Fatalf("converged %d/%d within %v", f.Converged(), n, within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func testConfig(agents int) Config {
	return Config{
		Agents:       agents,
		Workers:      8,
		PollInterval: 20 * time.Millisecond,
		Tick:         2 * time.Millisecond,
		Seed:         42,
		Metrics:      telemetry.NewRegistry(),
	}
}

// TestFleetColdBootAndDelta drives a small fleet through a cold boot (one
// snapshot per agent) and a subsequent version publish (picked up via delta
// polls, no further snapshots).
func TestFleetColdBootAndDelta(t *testing.T) {
	src := &fakeSource{version: 1}
	f, err := New(testConfig(300), []Source{src})
	if err != nil {
		t.Fatal(err)
	}
	stop := runFleet(f)
	f.SetTarget(1)
	waitConverged(t, f, 300, 5*time.Second)

	f.SetTarget(2)
	src.set(func(s *fakeSource) { s.version = 2 })
	waitConverged(t, f, 300, 5*time.Second)
	stop()

	min, max := f.SnapshotCounts()
	if min != 1 || max != 1 {
		t.Fatalf("per-agent snapshots min=%d max=%d, want exactly 1 (O(1) cold sync)", min, max)
	}
	st := f.Stats()
	if st.DeltaPolls == 0 {
		t.Fatalf("no delta polls recorded: %+v", st)
	}
	if st.Errors != 0 || st.Busy != 0 {
		t.Fatalf("unexpected failures on a healthy run: %+v", st)
	}
	if f.Wedged() != 0 {
		t.Fatalf("%d agents wedged", f.Wedged())
	}
}

// TestFleetBusyRecovery pins shed ≠ dead: a burst of BUSY answers delays
// convergence but every agent still converges, and no agent flips cold (a
// shed must not advance the staleness TTL toward a snapshot resync).
func TestFleetBusyRecovery(t *testing.T) {
	src := &fakeSource{version: 1}
	f, err := New(testConfig(100), []Source{src})
	if err != nil {
		t.Fatal(err)
	}
	stop := runFleet(f)
	f.SetTarget(1)
	waitConverged(t, f, 100, 5*time.Second)

	f.SetTarget(2)
	src.set(func(s *fakeSource) { s.busyLeft = 200; s.version = 2 })
	waitConverged(t, f, 100, 10*time.Second)
	stop()

	st := f.Stats()
	if st.Busy == 0 {
		t.Fatalf("expected BUSY polls, got %+v", st)
	}
	if _, max := f.SnapshotCounts(); max != 1 {
		t.Fatalf("BUSY polls triggered snapshot resync (max %d snaps), shed must not look dead", max)
	}
}

// TestFleetGapFallback pins the truncated-journal path: agents whose cursor
// fell below the server's delta floor resync with exactly one inline
// snapshot and converge.
func TestFleetGapFallback(t *testing.T) {
	src := &fakeSource{version: 1}
	f, err := New(testConfig(100), []Source{src})
	if err != nil {
		t.Fatal(err)
	}
	stop := runFleet(f)
	f.SetTarget(1)
	waitConverged(t, f, 100, 5*time.Second)

	// The journal floor jumps past every agent's cursor: the next delta
	// poll GAPs and falls back to a snapshot within the same job.
	f.SetTarget(9)
	src.set(func(s *fakeSource) { s.version = 9; s.gapFloor = 9 })
	waitConverged(t, f, 100, 10*time.Second)
	stop()

	st := f.Stats()
	if st.DeltaGaps == 0 {
		t.Fatalf("expected delta gaps, got %+v", st)
	}
	if min, max := f.SnapshotCounts(); min != 2 || max != 2 {
		t.Fatalf("per-agent snapshots min=%d max=%d, want exactly 2 (boot + gap resync)", min, max)
	}
}

// TestFleetOutageBackoffAndRecovery pins the transport-failure machine: a
// dead database drives agents into capped backoff, a long enough outage
// fires the staleness TTL (cold resync), and recovery converges everyone
// with one snapshot per TTL'd agent.
func TestFleetOutageBackoffAndRecovery(t *testing.T) {
	src := &fakeSource{version: 1}
	cfg := testConfig(100)
	cfg.StaleAfter = 2
	cfg.MaxBackoff = 80 * time.Millisecond
	f, err := New(cfg, []Source{src})
	if err != nil {
		t.Fatal(err)
	}
	stop := runFleet(f)
	f.SetTarget(1)
	waitConverged(t, f, 100, 5*time.Second)

	src.set(func(s *fakeSource) { s.dead = true })
	// Long enough for every agent to fail StaleAfter times even from the
	// capped backoff.
	time.Sleep(400 * time.Millisecond)
	f.SetTarget(3)
	src.set(func(s *fakeSource) { s.dead = false; s.version = 3 })
	waitConverged(t, f, 100, 10*time.Second)
	stop()

	st := f.Stats()
	if st.Errors == 0 {
		t.Fatalf("expected transport errors, got %+v", st)
	}
	if min, _ := f.SnapshotCounts(); min < 2 {
		t.Fatalf("TTL'd agents should have resynced via snapshot, min snaps %d", min)
	}
	if f.Wedged() != 0 {
		t.Fatalf("%d agents wedged after heal", f.Wedged())
	}
}
