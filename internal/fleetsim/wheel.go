package fleetsim

import "time"

// wheel is a fixed-tick circular timer wheel over int32 agent indices — the
// scheduling core that lets one event loop own 100k+ agent poll timers
// without a goroutine (or a runtime timer) per agent. An agent is in at most
// one slot at a time: it is popped before the state machine reschedules it.
//
// Delays longer than one lap are handled by keeping the per-agent absolute
// due tick in due[]: advance re-queues an entry whose due tick lies a lap
// (or more) ahead back into its slot for a later pass, so arbitrary backoff
// horizons need no hierarchy.
type wheel struct {
	tick  time.Duration
	slots [][]int32
	mask  uint64 // len(slots)-1; len is a power of two
	nowT  uint64 // current absolute tick
	due   []uint64
}

// newWheel sizes a wheel for nAgents indices at the given granularity with
// at least minSlots slots (rounded up to a power of two).
func newWheel(tick time.Duration, minSlots, nAgents int) *wheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	n := 1
	for n < minSlots {
		n <<= 1
	}
	return &wheel{
		tick:  tick,
		slots: make([][]int32, n),
		mask:  uint64(n - 1),
		due:   make([]uint64, nAgents),
	}
}

// ticks converts a delay to a whole number of ticks, rounding up, minimum 1.
func (w *wheel) ticks(d time.Duration) uint64 {
	if d <= 0 {
		return 1
	}
	return uint64((d + w.tick - 1) / w.tick)
}

// schedule arms idx to fire d after the wheel's current tick.
func (w *wheel) schedule(idx int32, d time.Duration) {
	t := w.nowT + w.ticks(d)
	w.due[idx] = t
	s := t & w.mask
	w.slots[s] = append(w.slots[s], idx)
}

// advance moves the wheel forward to absolute tick t, appending every due
// index to out and returning it. Entries due on a later lap stay in their
// slot; the filter is in place, so a slot's backing array is reused lap
// after lap instead of reallocating under churn.
func (w *wheel) advance(t uint64, out []int32) []int32 {
	for w.nowT < t {
		w.nowT++
		s := w.nowT & w.mask
		slot := w.slots[s]
		keep := slot[:0]
		for _, idx := range slot {
			if w.due[idx] <= w.nowT {
				out = append(out, idx)
			} else {
				keep = append(keep, idx)
			}
		}
		w.slots[s] = keep
	}
	return out
}
