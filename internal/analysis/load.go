package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// ExpandPatterns resolves go-style package patterns ("./...", "./internal/lp",
// ".") relative to the module root into package directories containing at
// least one non-test .go file. testdata and hidden directories are skipped,
// as the go tool does.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if hasGoFiles(dir) && !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(root, filepath.FromSlash(pat)))
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// Loader parses and type-checks packages with a shared FileSet and importer
// so the (expensive) source-importer work is paid once per process.
type Loader struct {
	Fset     *token.FileSet
	importer types.Importer
	root     string
	module   string
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		importer: importer.ForCompiler(fset, "source", nil),
		root:     root,
		module:   module,
	}, nil
}

// ImportPath maps a package directory to its import path within the module.
func (l *Loader) ImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the non-test files of one package
// directory. Lint passes only need accurate types for the expressions they
// inspect, so type errors (which `go build`, run first in verify.sh, would
// have caught anyway) are reported but do not abort the load.
func (l *Loader) LoadDir(dir string) (*Pkg, error) {
	path, err := l.ImportPath(dir)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.Check(path, files)
}

// Check type-checks already-parsed files as one package.
func (l *Loader) Check(path string, files []*ast.File) (*Pkg, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: l.importer,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg := &Pkg{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	if firstErr != nil {
		return pkg, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	return pkg, nil
}
