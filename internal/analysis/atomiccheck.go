package analysis

// atomiccheck: atomic-access discipline. A struct field that is ever
// accessed through sync/atomic — either the function forms
// (atomic.AddUint64(&s.n, 1)) or the typed forms (atomic.Uint64,
// telemetry.Counter and friends, whose underlying structs hold atomics) —
// must never be read or written plainly: a single plain `s.n++` next to an
// atomic reader is a data race the race detector only catches when the
// schedule cooperates, and the telemetry layer's whole contract is lock-free
// instruments touched from many goroutines.
//
// Two access classes are exempt, because they happen before the value can be
// shared: accesses inside init functions, and accesses through a receiver
// whose every reaching definition is a fresh local allocation (&T{}, new(T),
// a zero-valued var) — the constructor pattern. The latter is decided with
// the reaching-definitions analysis over the CFG, not syntax: assign the
// struct from a function call on one branch and the exemption correctly
// disappears at the join.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCheckPass builds the atomiccheck analyzer.
func AtomicCheckPass(paths ...string) *Pass {
	return &Pass{
		Name:  "atomiccheck",
		Doc:   "plain read/write of a field that is accessed atomically elsewhere (or holds an atomic type)",
		Paths: paths,
		Run:   runAtomicCheck,
	}
}

// atomicFuncs are the sync/atomic package-level operation families; any
// atomic.XxxT(&s.f, ...) call marks s.f as atomically-accessed.
func isAtomicFuncCall(p *Pkg, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// isAtomicValueType reports whether t is one of sync/atomic's typed values
// (atomic.Uint64, atomic.Bool, atomic.Value, ...) or a named struct that
// directly wraps one (telemetry.Counter{v atomic.Uint64}) — a type whose
// instances must only be touched through their methods or by address.
// Pointer types are never atomic values: copying a *Counter is harmless.
func isAtomicValueType(t types.Type) bool {
	return atomicValueDepth(t, 0)
}

func atomicValueDepth(t types.Type, depth int) bool {
	if t == nil || depth > 2 {
		return false
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil && n.Obj().Pkg() != nil {
		if n.Obj().Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		switch u := ft.Underlying().(type) {
		case *types.Slice:
			if atomicValueDepth(u.Elem(), depth+1) {
				return true
			}
		case *types.Array:
			if atomicValueDepth(u.Elem(), depth+1) {
				return true
			}
		default:
			if atomicValueDepth(ft, depth+1) {
				return true
			}
		}
	}
	return false
}

// fieldOf resolves a selector to the struct field it names, or nil.
func fieldOf(p *Pkg, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// access is one candidate plain access awaiting the freshness exemption.
type access struct {
	sel   *ast.SelectorExpr
	field *types.Var
	write bool
	// recv is the receiver variable when the selector base is a plain
	// (possibly dereferenced) identifier; nil otherwise. Only accesses with
	// a nameable receiver can earn the constructor exemption.
	recv *types.Var
	body *ast.BlockStmt
}

func runAtomicCheck(p *Pkg) []Diagnostic {
	// Phase 1: fields touched through sync/atomic function calls anywhere in
	// the package, with one representative position each.
	atomically := make(map[*types.Var]token.Pos)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(p, call) || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if sel, ok := un.X.(*ast.SelectorExpr); ok {
				if fv := fieldOf(p, sel); fv != nil {
					if _, seen := atomically[fv]; !seen {
						atomically[fv] = call.Pos()
					}
				}
			}
			return true
		})
	}

	// Phase 2: classify every field selector in the package.
	var candidates []access
	for _, f := range p.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := fieldOf(p, sel)
			if fv == nil {
				return true
			}
			_, viaFunc := atomically[fv]
			typed := isAtomicValueType(fv.Type())
			if !viaFunc && !typed {
				return true
			}
			ctx := classifyAccess(parents, sel)
			if ctx == accessSafe {
				return true
			}
			if inInitFunc(f, sel.Pos()) {
				return true
			}
			candidates = append(candidates, access{
				sel:   sel,
				field: fv,
				write: ctx == accessWrite,
				recv:  baseVar(p, sel.X),
				body:  enclosingBody(f, sel.Pos()),
			})
			return true
		})
	}
	if len(candidates) == 0 {
		return nil
	}

	// Phase 3: the constructor exemption, via reaching definitions — a plain
	// access is fine while the struct provably cannot be shared yet.
	survivors := filterFresh(p, candidates)

	var ds []Diagnostic
	for _, a := range survivors {
		verb := "read"
		if a.write {
			verb = "written"
		}
		owner := ""
		if named := fieldOwner(a.field); named != "" {
			owner = named + "."
		}
		if pos, ok := atomically[a.field]; ok {
			ds = append(ds, p.diag(a.sel.Sel.Pos(), "atomiccheck",
				"field %s%s is accessed atomically (e.g. line %d) but %s plainly here: every access must go through sync/atomic",
				owner, a.field.Name(), p.Fset.Position(pos).Line, verb))
		} else {
			ds = append(ds, p.diag(a.sel.Sel.Pos(), "atomiccheck",
				"atomic-typed field %s%s %s plainly: use its methods (Load/Store/Add) or pass it by address",
				owner, a.field.Name(), verb))
		}
	}
	return ds
}

// fieldOwner names the struct type declaring the field, when recoverable.
func fieldOwner(fv *types.Var) string {
	// The field's parent scope does not name the struct; walk the package
	// scope for a named type whose underlying struct contains fv.
	if fv.Pkg() == nil {
		return ""
	}
	scope := fv.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fv {
				return tn.Name()
			}
		}
	}
	return ""
}

type accessCtx int

const (
	accessSafe accessCtx = iota
	accessRead
	accessWrite
)

// classifyAccess decides how a field selector is being used from its parent
// chain: method-call receivers and address-taking are safe (that is how
// atomic values are meant to be used); assignment targets and ++/-- are
// plain writes; everything else that yields the value is a plain read.
func classifyAccess(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) accessCtx {
	parent := parents[sel]
	switch par := parent.(type) {
	case *ast.SelectorExpr:
		// s.f.Load() — sel is the base of a deeper selector. If the deeper
		// selector is a method call's Fun, the access is safe; if it selects
		// a subfield plainly, the subfield's own classification governs (and
		// this node is safe to skip — the leaf selector is also visited).
		return accessSafe
	case *ast.UnaryExpr:
		if par.Op == token.AND {
			return accessSafe // &s.f: passing the atomic by address
		}
		return accessRead
	case *ast.AssignStmt:
		for _, lhs := range par.Lhs {
			if lhs == sel {
				return accessWrite
			}
		}
		return accessRead
	case *ast.IncDecStmt:
		return accessWrite
	case *ast.CallExpr:
		if par.Fun == sel {
			// s.f(...) — calling the field (a func-typed field) is a read of
			// the field value; calling a method on it never parents the
			// selector here (that is the SelectorExpr case above).
			return accessRead
		}
		return accessRead
	default:
		return accessRead
	}
}

// baseVar unwraps a selector base to its root identifier's variable:
// s.f → s, (*s).f → s. Deeper bases (a.b.f, calls, indexes) return nil.
func baseVar(p *Pkg, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, _ := p.Info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// inInitFunc reports whether pos falls inside a func init() declaration.
func inInitFunc(f *ast.File, pos token.Pos) bool {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv != nil || fd.Name.Name != "init" {
			continue
		}
		if fd.Pos() <= pos && pos < fd.End() {
			return true
		}
	}
	return false
}

// filterFresh drops candidates whose receiver is provably a fresh local
// allocation at the access point (reaching-definitions over the enclosing
// body). Candidates without a nameable receiver or body are kept.
func filterFresh(p *Pkg, candidates []access) []access {
	byBody := make(map[*ast.BlockStmt][]int)
	for i, a := range candidates {
		if a.recv != nil && a.body != nil {
			byBody[a.body] = append(byBody[a.body], i)
		}
	}
	// Map iteration order is irrelevant here: the loop only flips per-index
	// exemption bits, and the survivor list below is built in candidate
	// (source) order.
	exempt := make([]bool, len(candidates))
	for body, idxs := range byBody {
		g := BuildCFG(body)
		defs := ReachingDefs(g, p.Info)
		rd := &reachingDefs{info: p.Info}
		for _, blk := range g.Blocks {
			if !blk.Live {
				continue
			}
			ReplayBlock[DefsState](rd, blk, defs.In[blk.Index], func(n CFGNode, before DefsState) {
				// A RangeStmt head node spans its whole body, but only the
				// range operand is evaluated at this step; body accesses
				// belong to the body blocks' own nodes.
				lo, hi := n.N.Pos(), n.N.End()
				if rs, ok := n.N.(*ast.RangeStmt); ok {
					lo, hi = rs.X.Pos(), rs.X.End()
				}
				for _, i := range idxs {
					a := candidates[i]
					if a.sel.Pos() >= lo && a.sel.End() <= hi {
						if FreshAt(before, a.recv) {
							exempt[i] = true
						}
					}
				}
			})
		}
	}
	var out []access
	for i, a := range candidates {
		if !exempt[i] {
			out = append(out, a)
		}
	}
	return out
}

// buildParents maps every node in f to its parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
