package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestWriteJSONShape checks the NDJSON contract: one object per line, the
// agreed field names, order preserved, and exactly one trailing newline.
func TestWriteJSONShape(t *testing.T) {
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "a/b.go", Line: 12, Column: 3}, Pass: "poollife", Message: "c used after release at line 9"},
		{Pos: token.Position{Filename: "a/c.go", Line: 40, Column: 2}, Pass: "streamorder", Message: `pair chunk for site "s" after its SiteDone`},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ds); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") || strings.HasSuffix(out, "\n\n") {
		t.Fatalf("want exactly one trailing newline, got %q", out)
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != len(ds) {
		t.Fatalf("got %d lines, want %d", len(lines), len(ds))
	}
	for i, line := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d not valid JSON: %v (%q)", i, err, line)
		}
		for _, key := range []string{"file", "line", "col", "pass", "message"} {
			if _, ok := got[key]; !ok {
				t.Errorf("line %d missing field %q", i, key)
			}
		}
		if got["pass"] != ds[i].Pass {
			t.Errorf("line %d pass = %v, want %s (order must be preserved)", i, got["pass"], ds[i].Pass)
		}
		if int(got["line"].(float64)) != ds[i].Pos.Line {
			t.Errorf("line %d line = %v, want %d", i, got["line"], ds[i].Pos.Line)
		}
	}
}

// TestWriteJSONEscaping: messages with quotes, newlines, and non-ASCII must
// stay one physical line each.
func TestWriteJSONEscaping(t *testing.T) {
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "x.go", Line: 1, Column: 1}, Pass: "floatcmp",
			Message: "tricky \"quoted\"\nmulti-line ≠ message"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ds); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := strings.TrimSuffix(buf.String(), "\n")
	if strings.Contains(out, "\n") {
		t.Fatalf("escaped message leaked a raw newline: %q", out)
	}
	var got jsonDiagnostic
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if got.Message != ds[0].Message {
		t.Errorf("message round-trip = %q, want %q", got.Message, ds[0].Message)
	}
}

// TestWriteJSONEmpty: no findings, no output.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty input wrote %q", buf.String())
	}
}
