package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches golden-file expectation markers: `// want pass1 pass2`.
var wantRe = regexp.MustCompile(`^// want ([a-z ]+)$`)

// goldenLoader builds one loader per test binary so the (expensive) source
// importer work is shared across subtests.
func goldenLoader(t *testing.T) (*Loader, string) {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l, root
}

// wantDiagnostics extracts the expected (file, line, pass) set from a golden
// package's `// want` markers. A malformed lint:ignore directive (no reason)
// is itself an expected "directive" finding, so those are added implicitly.
func wantDiagnostics(pkg *Pkg) map[string]int {
	want := make(map[string]int)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				if m := wantRe.FindStringSubmatch(c.Text); m != nil {
					for _, pass := range strings.Fields(m[1]) {
						want[fmt.Sprintf("%s:%d:%s", filepath.Base(pos.Filename), pos.Line, pass)]++
					}
					continue
				}
				if m := ignoreDirectiveRe.FindStringSubmatch(c.Text); m != nil && strings.TrimSpace(m[2]) == "" {
					want[fmt.Sprintf("%s:%d:%s", filepath.Base(pos.Filename), pos.Line, "directive")]++
				}
			}
		}
	}
	return want
}

// TestGolden checks every pass against its intentionally-bad fixture: the
// findings must match the `// want` markers exactly — no misses, no extras.
func TestGolden(t *testing.T) {
	loader, root := goldenLoader(t)
	// Unscoped pass instances: fixtures live outside the paths the
	// production scoping in Passes() restricts some passes to.
	passes := []*Pass{
		FloatCmpPass(), MapOrderPass(), LockCheckPass(), GoroLeakPass(), ErrDropPass(),
		PoolLifePass(), AtomicCheckPass(), StreamOrderPass(),
	}
	for _, name := range []string{
		"floatcmpbad", "maporderbad", "lockcheckbad", "goroleakbad", "errdropbad",
		"poollifebad", "atomiccheckbad", "streamorderbad", "timerwheelbad", "directives",
	} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "analysis", "testdata", "src", name)
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("load %s: %v", name, err)
			}
			want := wantDiagnostics(pkg)
			got := make(map[string]int)
			for _, d := range RunPasses(passes, pkg) {
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pass)]++
			}
			keys := make(map[string]bool)
			for k := range want {
				keys[k] = true
			}
			for k := range got {
				keys[k] = true
			}
			sorted := make([]string, 0, len(keys))
			for k := range keys {
				sorted = append(sorted, k)
			}
			sort.Strings(sorted)
			for _, k := range sorted {
				if got[k] != want[k] {
					t.Errorf("%s: got %d finding(s), want %d", k, got[k], want[k])
				}
			}
		})
	}
}

// TestGoldenHasFailingCasePerPass guards the fixtures themselves: each pass
// must have at least one expected finding, or the golden test would pass
// vacuously after a regression that silences a pass entirely.
func TestGoldenHasFailingCasePerPass(t *testing.T) {
	loader, root := goldenLoader(t)
	seen := make(map[string]int)
	for _, name := range []string{
		"floatcmpbad", "maporderbad", "lockcheckbad", "goroleakbad", "errdropbad",
		"poollifebad", "atomiccheckbad", "streamorderbad", "timerwheelbad", "directives",
	} {
		dir := filepath.Join(root, "internal", "analysis", "testdata", "src", name)
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		for k, n := range wantDiagnostics(pkg) {
			parts := strings.Split(k, ":")
			seen[parts[len(parts)-1]] += n
		}
	}
	for _, pass := range []string{
		"floatcmp", "maporder", "lockcheck", "goroleak", "errdrop",
		"poollife", "atomiccheck", "streamorder", "directive",
	} {
		if seen[pass] == 0 {
			t.Errorf("no golden fixture exercises pass %q", pass)
		}
	}
}

// TestStrictIgnores exercises the stale-suppression audit on the directives
// fixture: the trailing errdrop and statement-extent maporder directives
// both suppress a real finding and must stay silent, while the wrong-pass
// floatcmp directive suppresses nothing and must be reported — but only
// when floatcmp is actually in the running set.
func TestStrictIgnores(t *testing.T) {
	loader, root := goldenLoader(t)
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", "directives")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load directives: %v", err)
	}

	passes := []*Pass{FloatCmpPass(), MapOrderPass(), ErrDropPass()}
	var stale []Diagnostic
	for _, d := range RunPassesStrict(passes, pkg, true) {
		if d.Pass == "staleignore" {
			stale = append(stale, d)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("got %d staleignore finding(s), want exactly 1 (the wrong-pass floatcmp directive): %v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "floatcmp") {
		t.Errorf("staleignore should name the floatcmp directive, got: %s", stale[0].Message)
	}

	// Without the audit the same run must not report staleignore at all.
	for _, d := range RunPassesStrict(passes, pkg, false) {
		if d.Pass == "staleignore" {
			t.Errorf("staleignore reported without strict mode: %s", d)
		}
	}

	// With floatcmp absent from the running set its directive is not
	// auditable and must not be flagged.
	for _, d := range RunPassesStrict([]*Pass{MapOrderPass(), ErrDropPass()}, pkg, true) {
		if d.Pass == "staleignore" {
			t.Errorf("directive for a pass outside the running set flagged: %s", d)
		}
	}
}

// TestLiveTreeClean runs the full production pass set over the whole module
// and requires zero findings — the tree must lint clean at all times. The
// whole-module type-check is the expensive part, so -short skips it (CI
// runs megate-lint itself via verify.sh anyway).
func TestLiveTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check; covered by megate-lint in verify.sh")
	}
	loader, root := goldenLoader(t)
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	passes := Passes()
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		for _, d := range RunPasses(passes, pkg) {
			t.Errorf("live tree not clean: %s", d)
		}
	}
}
