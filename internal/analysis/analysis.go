// Package analysis implements megate-lint: a stdlib-only static analysis
// suite (go/parser + go/ast + go/types with the source importer — no
// golang.org/x/tools dependency) with passes tuned to this codebase's
// correctness invariants. The incremental control loop (fingerprint-gated
// delta publication, warm-started simplex, cached stage-2 results) depends
// on properties the compiler cannot check: deterministic iteration before
// anything is hashed or published, epsilon-tolerant float comparisons in the
// numeric kernels, and lock/goroutine discipline in the store and control
// plane. Each pass guards one of those invariants:
//
//   - floatcmp: no direct ==/!= (or switch) on float values in the numeric
//     packages outside the exact-zero idiom.
//   - maporder: no map iteration that feeds a hash, fingerprint, store
//     write, or slice that is never sorted.
//   - lockcheck: no mutexes copied by value, no locks held across network
//     I/O or channel operations, no lock leaked on an early return.
//   - goroleak: every goroutine launch has a join path (WaitGroup, context,
//     or quit channel).
//   - errdrop: no silently discarded error results outside tests.
//   - poollife: a pooled value (ReleaseChunk, sync.Pool.Put, Release*
//     helpers) must not be used or re-released on any path after release.
//   - atomiccheck: a field accessed through sync/atomic anywhere must never
//     be accessed plainly elsewhere; typed atomics must not be copied.
//   - streamorder: sends on a chunk stream must respect the protocol state
//     machine — no pair chunks for a site after its SiteDone, residual
//     supplements only in the residual phase.
//
// The last three are dataflow passes: they lower each function body to a CFG
// (cfg.go), run a forward abstract-interpretation fixpoint over it
// (dataflow.go), and replay the solution to place diagnostics — so a release
// or SiteDone on one branch is still known, weakened to "may", after the
// join.
//
// A finding can be suppressed with a directive comment:
//
//	//lint:ignore <pass> <reason>
//
// A trailing directive suppresses its own line; a standalone directive
// suppresses the whole statement or declaration that begins on the next
// line (so one directive above a loop covers the loop body). The reason is
// mandatory; a directive without one is itself a finding — and under the
// strict-ignores audit (RunPassesStrict, megate-lint -strict-ignores) a
// directive that suppresses nothing is reported too.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding of one pass at one source position.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

// String renders the finding in the conventional path:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// Pass is one self-contained analyzer.
type Pass struct {
	Name string
	Doc  string
	// Paths restricts the pass to packages whose import path equals or is a
	// subpackage of one of these prefixes; nil applies the pass everywhere.
	Paths []string
	Run   func(*Pkg) []Diagnostic
}

// applies reports whether the pass runs on the given import path.
func (p *Pass) applies(path string) bool {
	if len(p.Paths) == 0 {
		return true
	}
	for _, pre := range p.Paths {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

// Passes returns the full megate-lint pass set with this repository's
// scoping: floatcmp on the numeric kernels, lockcheck on the store and
// control plane, poollife on the packages that borrow pooled chunks and
// scratch buffers (including lp, whose warm-start and drift paths recycle
// allocation rows and price vectors across intervals), streamorder on the
// two ends of the chunk stream, the rest tree-wide.
func Passes() []*Pass {
	return []*Pass{
		FloatCmpPass("megate/internal/lp", "megate/internal/ssp", "megate/internal/core"),
		MapOrderPass(),
		LockCheckPass("megate/internal/kvstore", "megate/internal/controlplane", "megate/internal/cluster", "megate/internal/fleetsim", "megate/internal/federation"),
		GoroLeakPass(),
		ErrDropPass(),
		PoolLifePass("megate/internal/core", "megate/internal/controlplane",
			"megate/internal/ssp", "megate/internal/cluster", "megate/internal/lp"),
		AtomicCheckPass(),
		StreamOrderPass("megate/internal/core", "megate/internal/controlplane"),
	}
}

// Pkg is one loaded, type-checked package: the unit every pass runs over.
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// diag builds a Diagnostic at the given node position.
func (p *Pkg) diag(pos token.Pos, pass, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Pass: pass, Message: fmt.Sprintf(format, args...)}
}

// typeOf returns the type of e, or nil when type-checking did not record one.
func (p *Pkg) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ignoreDirectiveRe matches "//lint:ignore <pass> <reason>"; the reason group
// is empty for a malformed directive.
var ignoreDirectiveRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// ignoreDirective is one parsed, well-formed lint:ignore directive: the pass
// it names, the inclusive line range it suppresses, and whether it actually
// suppressed anything this run (the strict-ignores audit).
type ignoreDirective struct {
	file      string
	pass      string
	line, end int
	pos       token.Pos
	used      bool
}

// directives scans the package's comments for lint:ignore directives. A
// well-formed directive suppresses the named pass on its own line and over
// the full extent of the statement or declaration beginning on the line
// directly below it — so a trailing comment covers its line, and a
// standalone comment above a loop covers the whole loop. Malformed
// directives are returned as diagnostics.
func (p *Pkg) directives() ([]*ignoreDirective, []Diagnostic) {
	var dirs []*ignoreDirective
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirectiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, p.diag(c.Pos(), "directive",
						"lint:ignore %s needs a reason: //lint:ignore <pass> <reason>", m[1]))
					continue
				}
				dirs = append(dirs, &ignoreDirective{
					file: pos.Filename,
					pass: m[1],
					line: pos.Line,
					end:  p.followingNodeEndLine(f, pos.Line+1),
					pos:  c.Pos(),
				})
			}
		}
	}
	return dirs, bad
}

// suppress reports whether any directive covers d, marking every covering
// directive as used.
func suppress(dirs []*ignoreDirective, d Diagnostic) bool {
	hit := false
	for _, dir := range dirs {
		if dir.pass == d.Pass && dir.file == d.Pos.Filename &&
			dir.line <= d.Pos.Line && d.Pos.Line <= dir.end {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// followingNodeEndLine returns the last line of the outermost statement or
// declaration that begins on the given line of f, or the line itself when
// nothing starts there (a trailing directive).
func (p *Pkg) followingNodeEndLine(f *ast.File, line int) int {
	end := line
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Stmt, ast.Decl:
		default:
			return true
		}
		if p.Fset.Position(n.Pos()).Line != line {
			return true
		}
		if e := p.Fset.Position(n.End()).Line; e > end {
			end = e
		}
		return false // outermost node starting on the line wins
	})
	return end
}

// RunPasses runs every pass that applies to pkg, filters the findings
// through the package's lint:ignore directives, and returns them sorted by
// position.
func RunPasses(passes []*Pass, pkg *Pkg) []Diagnostic {
	return RunPassesStrict(passes, pkg, false)
}

// RunPassesStrict is RunPasses with an optional stale-suppression audit:
// when strictIgnores is set, a lint:ignore directive that suppressed nothing
// — the pass it names ran on this package and produced no finding inside the
// directive's extent — is itself reported under the pseudo-pass
// "staleignore". A dead suppression is a hole a future regression slips
// through silently, so verify.sh runs the audit on. Directives naming passes
// outside the running set are left alone (a -pass filter must not flag every
// other directive in the tree).
func RunPassesStrict(passes []*Pass, pkg *Pkg, strictIgnores bool) []Diagnostic {
	dirs, out := pkg.directives()
	ran := make(map[string]bool)
	for _, pass := range passes {
		if !pass.applies(pkg.Path) {
			continue
		}
		ran[pass.Name] = true
		for _, d := range pass.Run(pkg) {
			if suppress(dirs, d) {
				continue
			}
			out = append(out, d)
		}
	}
	if strictIgnores {
		for _, dir := range dirs {
			if dir.used || !ran[dir.pass] {
				continue
			}
			out = append(out, pkg.diag(dir.pos, "staleignore",
				"lint:ignore %s suppresses nothing: the pass is clean here, delete the stale directive", dir.pass))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}

// --- shared type helpers used by several passes ---

// exprString renders an expression compactly for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// isFloatType reports whether t's underlying type is a floating-point basic
// type.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedFrom returns the named type behind t, unwrapping one level of
// pointer, or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeFromPkg reports whether t (possibly behind a pointer) is a named type
// declared in a package whose import path is pkgPath or a subpackage of it.
func typeFromPkg(t types.Type, pkgPath string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == pkgPath || strings.HasPrefix(path, pkgPath+"/")
}

// isSyncLock reports whether t (not behind a pointer) is sync.Mutex or
// sync.RWMutex.
func isSyncLock(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// containsLock reports whether t is a lock or a struct directly embedding or
// holding one (one level deep — the by-value copy hazard).
func containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if isSyncLock(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isSyncLock(ft) {
			return true
		}
		if _, isStruct := ft.Underlying().(*types.Struct); isStruct && containsLock(ft) {
			return true
		}
	}
	return false
}

// funcBodies returns every function body in the file — FuncDecls and
// FuncLits — so intra-procedural passes can analyze each in isolation.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// enclosingBody returns the smallest function body in f that contains pos,
// or nil.
func enclosingBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range funcBodies(f) {
		if b.Pos() <= pos && pos < b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}
