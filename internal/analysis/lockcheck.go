package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheckPass guards the store and control-plane locking discipline with
// three intra-procedural checks:
//
//  1. copied locks: a sync.Mutex/RWMutex (or a struct directly holding one)
//     passed or received by value is a fresh, useless lock;
//  2. locks held across network I/O or channel operations: a blocked peer
//     then stalls every store shard or the whole connection table;
//  3. missing unlock on an early return: a Lock with neither a deferred
//     unlock nor an unlock on the return path wedges the store forever.
//
// The analysis is a branch-sensitive statement walk, not a full CFG: each
// if/switch arm is walked with its own copy of the held-lock set, and a
// lock counts as released after a compound statement if any arm released it
// (optimistic merge — early returns are still checked inside the arm where
// they occur). A function literal in a return value that unlocks the mutex
// (the release-closure idiom) counts as handing the unlock to the caller.
func LockCheckPass(paths ...string) *Pass {
	return &Pass{
		Name:  "lockcheck",
		Doc:   "locks copied by value, held across I/O or channel ops, or leaked on early return",
		Paths: paths,
		Run:   runLockCheck,
	}
}

func runLockCheck(p *Pkg) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		ds = append(ds, p.copiedLocks(f)...)
		for _, body := range funcBodies(f) {
			lc := &lockChecker{p: p}
			lc.walkStmts(body.List, map[string]*heldLock{})
			ds = append(ds, lc.ds...)
			ds = append(ds, lc.unpaired(body)...)
		}
	}
	return ds
}

// copiedLocks flags by-value parameters, receivers, and range variables
// whose type contains a lock.
func (p *Pkg) copiedLocks(f *ast.File) []Diagnostic {
	var ds []Diagnostic
	check := func(name string, e ast.Expr) {
		t := p.typeOf(e)
		if t == nil {
			if id, ok := e.(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					t = obj.Type()
				}
			}
		}
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if containsLock(t) {
			ds = append(ds, p.diag(e.Pos(), "lockcheck",
				"%s copies a lock by value; pass a pointer so Lock and Unlock see the same mutex", name))
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, field := range n.Recv.List {
					check("receiver", field.Type)
				}
			}
			if n.Type.Params != nil {
				for _, field := range n.Type.Params.List {
					check("parameter", field.Type)
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					check("range value", id)
				}
			}
		}
		return true
	})
	return ds
}

// heldLock tracks one currently-held mutex inside the walker.
type heldLock struct {
	pos      token.Pos // where it was locked
	deferred bool      // a matching defer Unlock was seen
}

type lockChecker struct {
	p  *Pkg
	ds []Diagnostic
	// locked/unlocked record every mutex expression this function locks or
	// unlocks anywhere (including closures), for the unpaired check.
	locked   map[string]token.Pos
	unlocked map[string]bool
}

// lockCall classifies e as a Lock/RLock/Unlock/RUnlock call on a sync
// mutex, returning the canonical receiver string.
func (lc *lockChecker) lockCall(e ast.Expr) (recv, method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	t := lc.p.typeOf(sel.X)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if !isSyncLock(t) {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// note records lock/unlock events for the unpaired check.
func (lc *lockChecker) note(recv, method string, pos token.Pos) {
	if lc.locked == nil {
		lc.locked = make(map[string]token.Pos)
		lc.unlocked = make(map[string]bool)
	}
	if strings.HasPrefix(method, "Lock") || strings.HasPrefix(method, "RLock") {
		if _, seen := lc.locked[recv]; !seen {
			lc.locked[recv] = pos
		}
	} else {
		lc.unlocked[recv] = true
	}
}

// unpaired flags mutexes this function locks but never unlocks anywhere —
// not even in a closure or on another branch.
func (lc *lockChecker) unpaired(body *ast.BlockStmt) []Diagnostic {
	// Closures are walked as their own functions, but their lock/unlock
	// events also need to count toward the enclosing function's pairing
	// (the release-closure idiom unlocks in a returned FuncLit).
	all := &lockChecker{p: lc.p}
	ast.Inspect(body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if recv, method, ok := all.lockCall(e); ok {
				all.note(recv, method, n.Pos())
			}
		}
		return true
	})
	recvs := make([]string, 0, len(all.locked))
	for recv := range all.locked {
		recvs = append(recvs, recv)
	}
	sort.Strings(recvs)
	var ds []Diagnostic
	for _, recv := range recvs {
		if !all.unlocked[recv] {
			ds = append(ds, lc.p.diag(all.locked[recv], "lockcheck",
				"%s is locked but never unlocked in this function; add an Unlock (or defer it)", recv))
		}
	}
	return ds
}

// copyHeld clones the held-lock map for a branch walk.
func copyHeld(held map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(held))
	for k, v := range held {
		cp := *v
		out[k] = &cp
	}
	return out
}

// mergeBranches applies the optimistic join: a lock stays held only if every
// branch left it held; deferred status propagates if any branch deferred.
func mergeBranches(held map[string]*heldLock, branches ...map[string]*heldLock) {
	for key := range held {
		for _, b := range branches {
			got, still := b[key]
			if !still {
				delete(held, key)
				break
			}
			if got.deferred {
				held[key].deferred = true
			}
		}
	}
	// Locks acquired on every branch become held afterwards.
	if len(branches) > 0 {
		for key, v := range branches[0] {
			if _, already := held[key]; already {
				continue
			}
			onAll := true
			for _, b := range branches[1:] {
				if _, ok := b[key]; !ok {
					onAll = false
					break
				}
			}
			if onAll {
				cp := *v
				held[key] = &cp
			}
		}
	}
}

// walkStmts walks a statement list updating held in place.
func (lc *lockChecker) walkStmts(stmts []ast.Stmt, held map[string]*heldLock) {
	for _, s := range stmts {
		lc.walkStmt(s, held)
	}
}

func (lc *lockChecker) walkStmt(s ast.Stmt, held map[string]*heldLock) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, method, ok := lc.lockCall(s.X); ok {
			lc.note(recv, method, s.Pos())
			switch method {
			case "Lock", "RLock":
				held[recv] = &heldLock{pos: s.Pos()}
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			return
		}
		lc.checkIO(s, held)
	case *ast.DeferStmt:
		if recv, method, ok := lc.lockCall(s.Call); ok {
			lc.note(recv, method, s.Pos())
			if method == "Unlock" || method == "RUnlock" {
				if h, isHeld := held[recv]; isHeld {
					h.deferred = true
				}
			}
			return
		}
		// Deferred closures run at exit; their bodies are walked as
		// independent functions by funcBodies.
	case *ast.ReturnStmt:
		lc.checkIO(s, held)
		for recv, h := range held {
			if h.deferred || returnsUnlockClosure(lc, s, recv) {
				continue
			}
			lc.ds = append(lc.ds, lc.p.diag(s.Pos(), "lockcheck",
				"return with %s still locked (locked at line %d); unlock before returning or defer the unlock",
				recv, lc.p.Fset.Position(h.pos).Line))
		}
	case *ast.BlockStmt:
		lc.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		lc.checkIOExpr(s.Cond, held)
		b1 := copyHeld(held)
		lc.walkStmts(s.Body.List, b1)
		b2 := copyHeld(held)
		if s.Else != nil {
			lc.walkStmt(s.Else, b2)
		}
		mergeBranches(held, b1, b2)
	case *ast.ForStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		b := copyHeld(held)
		lc.walkStmts(s.Body.List, b)
	case *ast.RangeStmt:
		lc.checkIOExpr(s.X, held)
		b := copyHeld(held)
		lc.walkStmts(s.Body.List, b)
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		lc.walkCases(s.Body, held)
	case *ast.TypeSwitchStmt:
		lc.walkCases(s.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			lc.flagIO(s.Pos(), held, "select (channel operation)")
		}
		lc.walkCases(s.Body, held)
	case *ast.GoStmt:
		// The goroutine body runs elsewhere; walked independently.
	case *ast.LabeledStmt:
		lc.walkStmt(s.Stmt, held)
	default:
		lc.checkIO(s, held)
	}
}

// walkCases walks each case clause with its own copy of held and merges.
func (lc *lockChecker) walkCases(body *ast.BlockStmt, held map[string]*heldLock) {
	var branches []map[string]*heldLock
	for _, cs := range body.List {
		b := copyHeld(held)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			lc.walkStmts(cs.Body, b)
		case *ast.CommClause:
			if cs.Comm != nil {
				lc.walkStmt(cs.Comm, b)
			}
			lc.walkStmts(cs.Body, b)
		}
		branches = append(branches, b)
	}
	if len(branches) > 0 {
		mergeBranches(held, branches...)
	}
}

// returnsUnlockClosure reports whether a return statement hands the caller a
// closure that unlocks recv (the release-func idiom).
func returnsUnlockClosure(lc *lockChecker, ret *ast.ReturnStmt, recv string) bool {
	for _, res := range ret.Results {
		lit, ok := res.(*ast.FuncLit)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if r, m, ok := lc.lockCall(e); ok && r == recv && (m == "Unlock" || m == "RUnlock") {
					found = true
					return false
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkIO scans a simple statement for channel operations and network I/O
// while locks are held; nested function literals are skipped (they execute
// later, not under this lock scope).
func (lc *lockChecker) checkIO(s ast.Stmt, held map[string]*heldLock) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			lc.flagIO(n.Pos(), held, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lc.flagIO(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if kind, isIO := lc.ioCall(n); isIO {
				lc.flagIO(n.Pos(), held, kind)
			}
		}
		return true
	})
}

func (lc *lockChecker) checkIOExpr(e ast.Expr, held map[string]*heldLock) {
	if e == nil || len(held) == 0 {
		return
	}
	lc.checkIO(&ast.ExprStmt{X: e}, held)
}

func (lc *lockChecker) flagIO(pos token.Pos, held map[string]*heldLock, what string) {
	for recv := range held {
		lc.ds = append(lc.ds, lc.p.diag(pos, "lockcheck",
			"%s while holding %s; a blocked peer stalls every other holder — release the lock first", what, recv))
	}
}

// ioCall classifies a call as network I/O: package-level net calls, methods
// on net types (Conn, Listener, ...), methods on bufio readers/writers (the
// buffered side of a connection in this codebase), and fmt/io helpers
// writing to either.
func (lc *lockChecker) ioCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := lc.p.Info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "net":
				return "net." + name + " call", true
			case "fmt", "io":
				for _, arg := range call.Args {
					t := lc.p.typeOf(arg)
					if typeFromPkg(t, "net") || typeFromPkg(t, "bufio") {
						return pn.Imported().Path() + "." + name + " to a connection", true
					}
				}
			}
			return "", false
		}
	}
	recv := lc.p.typeOf(sel.X)
	if typeFromPkg(recv, "net") {
		return "network I/O (" + exprString(sel.X) + "." + name + ")", true
	}
	if typeFromPkg(recv, "bufio") {
		switch name {
		case "Read", "ReadString", "ReadBytes", "ReadByte", "ReadRune", "ReadLine", "ReadSlice",
			"Write", "WriteString", "WriteByte", "WriteRune", "Flush":
			return "buffered I/O (" + exprString(sel.X) + "." + name + ")", true
		}
	}
	return "", false
}
