package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeakPass flags `go` launches with no visible join path. A goroutine
// counts as joinable when its body (or, for a named same-package callee, the
// callee's body):
//
//   - calls Done on a sync.WaitGroup or Done() on a context.Context,
//   - receives from a channel declared outside the goroutine (quit/done
//     channel),
//   - is preceded in the same block by a WaitGroup Add call (the
//     wg.Add(1); go ... idiom where the body belongs to another function),
//   - calls Wait on a sync.WaitGroup (a finisher goroutine: it ends when
//     the counted pool it waits on ends), or
//   - closes a channel declared outside the goroutine (a done-channel
//     broadcast the launching scope can receive or range over).
//
// Anything else is a goroutine the test harness, shutdown path, and race
// detector cannot wait for.
func GoroLeakPass(paths ...string) *Pass {
	return &Pass{
		Name:  "goroleak",
		Doc:   "go statements with no WaitGroup, context, or quit-channel join path",
		Paths: paths,
		Run:   runGoroLeak,
	}
}

func runGoroLeak(p *Pkg) []Diagnostic {
	var ds []Diagnostic
	decls := p.funcDeclIndex()
	for _, f := range p.Files {
		// stmtBlocks maps each statement to its enclosing block and index,
		// for the preceding-Add check.
		type slot struct {
			block *ast.BlockStmt
			idx   int
		}
		blocks := make(map[ast.Stmt]slot)
		ast.Inspect(f, func(n ast.Node) bool {
			if b, ok := n.(*ast.BlockStmt); ok {
				for i, s := range b.List {
					blocks[s] = slot{b, i}
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// Preceding wg.Add in the same block.
			if sl, ok := blocks[ast.Stmt(g)]; ok {
				for i := sl.idx - 1; i >= 0 && i >= sl.idx-5; i-- {
					if p.isWaitGroupAdd(sl.block.List[i]) {
						return true
					}
				}
			}
			var body *ast.BlockStmt
			var outer token.Pos
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				body, outer = lit.Body, lit.Pos()
			} else if decl := decls[p.calleeObj(g.Call)]; decl != nil && decl.Body != nil {
				body, outer = decl.Body, decl.Pos()
			}
			if body != nil && p.hasJoinEvidence(body, outer) {
				return true
			}
			ds = append(ds, p.diag(g.Pos(), "goroleak",
				"goroutine has no join path (WaitGroup, context, or quit channel); it cannot be waited for or shut down"))
			return true
		})
	}
	return ds
}

// funcDeclIndex maps function/method objects to their declarations, so a
// `go s.handle(conn)` can be checked against handle's body.
func (p *Pkg) funcDeclIndex() map[types.Object]*ast.FuncDecl {
	idx := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					idx[obj] = fd
				}
			}
		}
	}
	return idx
}

// calleeObj resolves the object a go statement calls, or nil.
func (p *Pkg) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// isWaitGroupAdd reports whether s is a statement calling Add on a
// sync.WaitGroup.
func (p *Pkg) isWaitGroupAdd(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	return p.isWaitGroup(p.typeOf(sel.X))
}

func (p *Pkg) isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n := namedFrom(t)
	return n != nil && n.Obj() != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

func (p *Pkg) isContext(t types.Type) bool {
	n := namedFrom(t)
	return n != nil && n.Obj() != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// hasJoinEvidence scans a goroutine body for any of the join mechanisms.
// outer is the body's start position: channel receives only count when the
// channel variable is declared before it (outside the goroutine).
func (p *Pkg) hasJoinEvidence(body *ast.BlockStmt, outer token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done":
					t := p.typeOf(sel.X)
					if p.isWaitGroup(t) || p.isContext(t) {
						found = true
					}
				case "Wait":
					// A finisher: the goroutine blocks on a counted pool and
					// ends when it ends — the WaitGroup is its join path.
					if p.isWaitGroup(p.typeOf(sel.X)) {
						found = true
					}
				}
			}
			// close(done) on a launcher-owned channel: completion is
			// broadcast to anyone receiving or ranging over it.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" &&
				p.Info.Uses[id] == types.Universe.Lookup("close") &&
				len(n.Args) == 1 && p.outerChannel(n.Args[0], outer) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && p.outerChannel(n.X, outer) {
				found = true
			}
		case *ast.RangeStmt:
			// Draining an outer channel: the launcher joins by closing it.
			if t := p.typeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && p.outerChannel(n.X, outer) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// outerChannel reports whether e is (rooted at) a variable declared before
// outer — a channel owned by the launching scope rather than the goroutine.
func (p *Pkg) outerChannel(e ast.Expr, outer token.Pos) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := p.Info.Uses[x]
			return obj != nil && obj.Pos() < outer
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr: // e.g. <-ctx.Done()
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				e = sel.X
				continue
			}
			return false
		default:
			return false
		}
	}
}
