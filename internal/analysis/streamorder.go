package analysis

// streamorder: chunk-protocol ordering over stream channels. core.SolveStream
// hands stage-two results to the publisher as a typed chunk stream with
// ordering rules no compiler checks (see core.StreamSink): after a site's
// SiteDone marker no further non-residual chunk for that site may be sent,
// SiteDone markers are emitted once per site, and once residual supplements
// start flowing the per-site streaming phase is over. The pass encodes that
// state machine as a per-channel automaton driven by a forward dataflow over
// the CFG.
//
// Two event vocabularies feed the automaton:
//
//   - direct sends: `ch <- c` and `sink.Chunk(c)` where the value is (or was
//     last assigned from) a chunk composite literal, or a variable whose
//     SiteDone/Residual/Pair fields were assigned on every path reaching the
//     send. A "chunk" is any struct with a bool field named SiteDone —
//     duck-typed so the golden fixtures do not need the real core types.
//   - the emission helpers: emitSiteDone(sink, class, src) and
//     emitAssignChunk(sink, class, st, residual, ...) calls.
//
// Facts are definite or unknown; only definite facts drive transitions and
// findings, so a chunk whose flags the analysis cannot see (a function
// parameter, a pool Get) never produces a false positive. Automaton state is
// discarded across loop back edges: a new iteration works on a new site, and
// the syntactically-identical site expression would otherwise alias
// different runtime sites.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StreamOrderPass builds the streamorder analyzer.
func StreamOrderPass(paths ...string) *Pass {
	return &Pass{
		Name:  "streamorder",
		Doc:   "stream chunk sent out of protocol order (pair chunk after SiteDone, non-residual after residuals)",
		Paths: paths,
		Run:   runStreamOrder,
	}
}

// triState is a dataflow-definite boolean.
type triState int8

const (
	triUnknown triState = iota
	triFalse
	triTrue
)

func triOf(known, v bool) triState {
	if !known {
		return triUnknown
	}
	if v {
		return triTrue
	}
	return triFalse
}

// chunkFacts is the abstract state of one chunk variable: what the analysis
// knows about the flags it will carry when sent. site is the expression
// string of the Pair's Src (empty = unknown).
type chunkFacts struct {
	done     triState
	residual triState
	site     string
}

// sinkState is the per-channel automaton: which site expressions have had
// their SiteDone sent (with the position of that send), and whether residual
// supplements have started.
type sinkState struct {
	closed      map[string]token.Pos
	residual    bool
	residualPos token.Pos
}

func (s sinkState) clone() sinkState {
	out := sinkState{residual: s.residual, residualPos: s.residualPos}
	if len(s.closed) > 0 {
		out.closed = make(map[string]token.Pos, len(s.closed))
		for k, v := range s.closed {
			out.closed[k] = v
		}
	}
	return out
}

// soState is the full abstract state.
type soState struct {
	chunks map[*types.Var]chunkFacts
	sinks  map[string]sinkState
}

// streamOrder implements FlowProblem[soState].
type streamOrder struct {
	info *types.Info
	fset *token.FileSet
}

func (so *streamOrder) Entry() soState { return soState{} }

// AtBackEdge discards everything: per-iteration site identities must not
// leak across loop iterations.
func (so *streamOrder) AtBackEdge(s soState) soState { return soState{} }

func (so *streamOrder) Join(a, b soState) soState {
	out := soState{}
	// Chunk facts must hold on all paths: intersect, demoting disagreements
	// to unknown.
	if len(a.chunks) > 0 && len(b.chunks) > 0 {
		out.chunks = make(map[*types.Var]chunkFacts)
		for v, fa := range a.chunks {
			fb, ok := b.chunks[v]
			if !ok {
				continue
			}
			f := chunkFacts{}
			if fa.done == fb.done {
				f.done = fa.done
			}
			if fa.residual == fb.residual {
				f.residual = fa.residual
			}
			if fa.site == fb.site {
				f.site = fa.site
			}
			if f != (chunkFacts{}) {
				out.chunks[v] = f
			}
		}
	}
	// Automaton facts hold on any path: a SiteDone sent in one branch closes
	// the site for everything after the join.
	if len(a.sinks) > 0 || len(b.sinks) > 0 {
		out.sinks = make(map[string]sinkState)
		for k, sa := range a.sinks {
			out.sinks[k] = sa.clone()
		}
		for k, sb := range b.sinks {
			m, ok := out.sinks[k]
			if !ok {
				out.sinks[k] = sb.clone()
				continue
			}
			for site, pos := range sb.closed {
				if old, exists := m.closed[site]; !exists || pos < old {
					if m.closed == nil {
						m.closed = make(map[string]token.Pos)
					}
					m.closed[site] = pos
				}
			}
			if sb.residual && (!m.residual || sb.residualPos < m.residualPos) {
				m.residual = true
				m.residualPos = sb.residualPos
			}
			out.sinks[k] = m
		}
	}
	return out
}

func (so *streamOrder) Equal(a, b soState) bool {
	if len(a.chunks) != len(b.chunks) || len(a.sinks) != len(b.sinks) {
		return false
	}
	for v, fa := range a.chunks {
		if fb, ok := b.chunks[v]; !ok || fa != fb {
			return false
		}
	}
	for k, sa := range a.sinks {
		sb, ok := b.sinks[k]
		if !ok || sa.residual != sb.residual || sa.residualPos != sb.residualPos ||
			len(sa.closed) != len(sb.closed) {
			return false
		}
		for site, pos := range sa.closed {
			if o, ok := sb.closed[site]; !ok || o != pos {
				return false
			}
		}
	}
	return true
}

func (so *streamOrder) Transfer(n CFGNode, s soState) soState {
	out := so.cloneState(s)
	so.step(n, &out, nil)
	return out
}

func (so *streamOrder) cloneState(s soState) soState {
	out := soState{}
	if len(s.chunks) > 0 {
		out.chunks = make(map[*types.Var]chunkFacts, len(s.chunks))
		for v, f := range s.chunks {
			out.chunks[v] = f
		}
	}
	if len(s.sinks) > 0 {
		out.sinks = make(map[string]sinkState, len(s.sinks))
		for k, v := range s.sinks {
			out.sinks[k] = v.clone()
		}
	}
	return out
}

// step applies one evaluation step to st in place, reporting violations
// through report when non-nil (the replay walk passes the diagnostics
// collector; the fixpoint iteration passes nil).
func (so *streamOrder) step(n CFGNode, st *soState, report func(pos token.Pos, format string, args ...any)) {
	switch x := n.N.(type) {
	case *ast.AssignStmt:
		so.assign(x, st)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							so.bind(name, vs.Values[i], st)
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		// Range bindings kill chunk facts for the bound variables.
		for _, e := range []ast.Expr{x.Key, x.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v, ok := so.objOf(id).(*types.Var); ok {
					delete(st.chunks, v)
				}
			}
		}
	case *ast.SendStmt:
		facts := so.factsOf(x.Value, *st)
		so.event(exprString(x.Chan), facts, x.Pos(), st, report)
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			so.call(call, st, report)
		}
	case *ast.CallExpr:
		if n.Deferred {
			so.call(x, st, report)
		}
	}
}

// assign folds one assignment into the chunk facts.
func (so *streamOrder) assign(as *ast.AssignStmt, st *soState) {
	if len(as.Lhs) != len(as.Rhs) {
		// Multi-value assignment from a call: kill any chunk vars on the LHS.
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v, ok := so.objOf(id).(*types.Var); ok {
					delete(st.chunks, v)
				}
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		switch l := lhs.(type) {
		case *ast.Ident:
			so.bind(l, rhs, st)
		case *ast.SelectorExpr:
			base, depth := so.chunkBase(l)
			if base == nil {
				continue
			}
			f := chunkFacts{}
			if cur, ok := st.chunks[base]; ok {
				f = cur
			}
			switch l.Sel.Name {
			case "SiteDone":
				f.done = boolLit(rhs)
			case "Residual":
				f.residual = boolLit(rhs)
			case "Pair":
				if depth == 1 {
					f.site = srcOfPairLit(rhs) // "" when the RHS is not a literal: unknown
				}
			case "Src":
				if depth == 2 {
					f.site = exprString(rhs)
				}
			}
			if st.chunks == nil {
				st.chunks = make(map[*types.Var]chunkFacts)
			}
			st.chunks[base] = f
		}
	}
}

// bind handles `c = <expr>` / `c := <expr>`: a chunk composite literal
// yields definite facts, anything else kills.
func (so *streamOrder) bind(id *ast.Ident, rhs ast.Expr, st *soState) {
	v, ok := so.objOf(id).(*types.Var)
	if !ok {
		return
	}
	if f, ok := so.litFacts(rhs); ok {
		if st.chunks == nil {
			st.chunks = make(map[*types.Var]chunkFacts)
		}
		st.chunks[v] = f
		return
	}
	delete(st.chunks, v)
}

// chunkBase resolves the base variable of c.SiteDone / c.Pair.Src selectors
// when the base names a chunk-shaped struct; depth is the selector depth
// (1 for c.Field, 2 for c.Pair.Src).
func (so *streamOrder) chunkBase(sel *ast.SelectorExpr) (*types.Var, int) {
	depth := 1
	inner := sel.X
	if is, ok := inner.(*ast.SelectorExpr); ok && sel.Sel.Name == "Src" && is.Sel.Name == "Pair" {
		inner = is.X
		depth = 2
	}
	id, ok := inner.(*ast.Ident)
	if !ok {
		return nil, 0
	}
	v, ok := so.objOf(id).(*types.Var)
	if !ok || !so.isChunkType(v.Type()) {
		return nil, 0
	}
	return v, depth
}

func (so *streamOrder) objOf(id *ast.Ident) types.Object {
	if o := so.info.Uses[id]; o != nil {
		return o
	}
	return so.info.Defs[id]
}

// isChunkType duck-types a chunk: a struct (possibly behind a pointer) with
// a bool field named SiteDone.
func (so *streamOrder) isChunkType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "SiteDone" {
			b, ok := f.Type().Underlying().(*types.Basic)
			return ok && b.Kind() == types.Bool
		}
	}
	return false
}

// litFacts extracts definite facts from a chunk composite literal
// (&Chunk{...} or Chunk{...}); absent fields are definitely their zero
// value.
func (so *streamOrder) litFacts(e ast.Expr) (chunkFacts, bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return so.litFacts(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return so.litFacts(x.X)
		}
	case *ast.CompositeLit:
		tv, ok := so.info.Types[x]
		if !ok || !so.isChunkType(tv.Type) {
			return chunkFacts{}, false
		}
		f := chunkFacts{done: triFalse, residual: triFalse}
		for _, elt := range x.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "SiteDone":
				f.done = boolLit(kv.Value)
			case "Residual":
				f.residual = boolLit(kv.Value)
			case "Pair":
				f.site = srcOfPairLit(kv.Value)
			}
		}
		return f, true
	}
	return chunkFacts{}, false
}

// factsOf resolves the facts of a sent value: a tracked variable or an
// inline literal.
func (so *streamOrder) factsOf(e ast.Expr, st soState) chunkFacts {
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := so.objOf(id).(*types.Var); ok {
			if f, ok := st.chunks[v]; ok {
				return f
			}
			return chunkFacts{}
		}
	}
	if f, ok := so.litFacts(e); ok {
		return f
	}
	return chunkFacts{}
}

// srcOfPairLit extracts the Src expression string from a SitePair composite
// literal (keyed or positional-first); "" when unrecoverable.
func srcOfPairLit(e ast.Expr) string {
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return ""
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Src" {
				return exprString(kv.Value)
			}
			continue
		}
		if i == 0 {
			return exprString(elt)
		}
	}
	return ""
}

// boolLit classifies a bool expression: definite true/false for the
// predeclared constants, unknown otherwise.
func boolLit(e ast.Expr) triState {
	id, ok := e.(*ast.Ident)
	if !ok {
		return triUnknown
	}
	switch id.Name {
	case "true":
		return triTrue
	case "false":
		return triFalse
	}
	return triUnknown
}

// call dispatches the recognized call vocabularies: sink.Chunk(c) sends, and
// the emitSiteDone/emitAssignChunk helpers.
func (so *streamOrder) call(call *ast.CallExpr, st *soState, report func(pos token.Pos, format string, args ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Chunk" && len(call.Args) == 1 {
			facts := so.factsOf(call.Args[0], *st)
			so.event(exprString(fun.X), facts, call.Pos(), st, report)
		}
	case *ast.Ident:
		switch {
		case fun.Name == "emitSiteDone" && len(call.Args) >= 3:
			key := exprString(call.Args[0]) + "|" + exprString(call.Args[1])
			so.event(key, chunkFacts{done: triTrue, residual: triFalse, site: exprString(call.Args[2])},
				call.Pos(), st, report)
		case fun.Name == "emitAssignChunk" && len(call.Args) >= 4:
			key := exprString(call.Args[0]) + "|" + exprString(call.Args[1])
			so.event(key, chunkFacts{done: triFalse, residual: boolLit(call.Args[3]), site: exprString(call.Args[2])},
				call.Pos(), st, report)
		}
	}
}

// event drives the per-channel automaton with one send.
func (so *streamOrder) event(key string, f chunkFacts, pos token.Pos, st *soState, report func(pos token.Pos, format string, args ...any)) {
	if st.sinks == nil {
		st.sinks = make(map[string]sinkState)
	}
	sk := st.sinks[key].clone()
	defer func() { st.sinks[key] = sk }()

	switch f.done {
	case triTrue:
		if report != nil {
			if f.site != "" {
				if _, dup := sk.closed[f.site]; dup {
					report(pos, "duplicate SiteDone for site %s on %s: the protocol emits exactly one marker per (class, site)", f.site, key)
				}
			}
			if sk.residual {
				report(pos, "SiteDone on %s after residual supplements began: markers precede the residual pass", key)
			}
		}
		if f.site != "" {
			if sk.closed == nil {
				sk.closed = make(map[string]token.Pos)
			}
			if _, ok := sk.closed[f.site]; !ok {
				sk.closed[f.site] = pos
			}
		}
	case triFalse:
		switch f.residual {
		case triTrue:
			if !sk.residual {
				sk.residual = true
				sk.residualPos = pos
			}
		case triFalse:
			if report != nil {
				if f.site != "" {
					if done, closedSite := sk.closed[f.site]; closedSite {
						report(pos, "pair chunk for site %s sent after its SiteDone (line %d): no non-residual chunk may follow the marker",
							f.site, so.fsetLine(done))
					}
				}
				if sk.residual {
					report(pos, "non-residual chunk sent after residual supplements began (line %d): residuals are the stream's final phase",
						so.fsetLine(sk.residualPos))
				}
			}
		}
	}
}

func (so *streamOrder) fsetLine(pos token.Pos) int {
	if so.fset == nil {
		return 0
	}
	return so.fset.Position(pos).Line
}

func runStreamOrder(p *Pkg) []Diagnostic {
	so := &streamOrder{info: p.Info, fset: p.Fset}
	var ds []Diagnostic
	for _, f := range p.Files {
		for _, body := range funcBodies(f) {
			g := BuildCFG(body)
			res := SolveForward[soState](g, so)
			for _, blk := range g.Blocks {
				if !blk.Live {
					continue
				}
				state := so.cloneState(res.In[blk.Index])
				for _, n := range blk.Nodes {
					so.step(n, &state, func(pos token.Pos, format string, args ...any) {
						ds = append(ds, p.diag(pos, "streamorder", format, args...))
					})
				}
			}
		}
	}
	return ds
}
