package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropPass flags expression statements that call a function returning an
// error and let the result fall on the floor. An explicit `_ =` assignment
// is the sanctioned way to discard, so intent stays visible at the call
// site. Whitelisted because their error contract is sticky or advisory:
//
//   - fmt.Print/Fprint family (the sticky-error writer idiom — this
//     codebase checks the final Flush instead);
//   - methods on bufio, bytes, strings, and hash values (Write on those
//     cannot fail independently of the eventual Flush/Sum);
//   - deferred calls (defer conn.Close() is conventional).
func ErrDropPass(paths ...string) *Pass {
	return &Pass{
		Name:  "errdrop",
		Doc:   "silently discarded error results outside tests",
		Paths: paths,
		Run:   runErrDrop,
	}
}

func runErrDrop(p *Pkg) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !p.returnsError(call) || p.errWhitelisted(call) {
				return true
			}
			ds = append(ds, p.diag(call.Pos(), "errdrop",
				"error returned by %s is silently discarded; handle it or assign to _ to make the drop explicit",
				calleeName(call)))
			return true
		})
	}
	return ds
}

// returnsError reports whether any result of the call is of type error.
func (p *Pkg) returnsError(call *ast.CallExpr) bool {
	t := p.typeOf(call)
	if t == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		n := namedFrom(t)
		return n != nil && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErr(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErr(t)
}

// errWhitelisted applies the sticky-writer and convention whitelist.
func (p *Pkg) errWhitelisted(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			path := pn.Imported().Path()
			if path == "fmt" && strings.HasPrefix(sel.Sel.Name, "Print") {
				return true
			}
			if path == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") {
				return true
			}
			return false
		}
	}
	recv := p.typeOf(sel.X)
	for _, pkg := range []string{"bufio", "bytes", "strings", "hash"} {
		if typeFromPkg(recv, pkg) {
			return true
		}
	}
	return false
}

// calleeName renders the called function for the diagnostic.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return exprString(fun)
	}
	return exprString(call.Fun)
}
