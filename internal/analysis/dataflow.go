package analysis

// Forward dataflow over the per-function CFG: a generic worklist fixpoint
// solver parameterized by a lattice, plus the one concrete analysis several
// passes share — reaching definitions. Passes run the solver to a fixpoint
// and then replay each live block from its in-state to attach diagnostics to
// the exact node that violates the invariant (replaying instead of reporting
// during iteration keeps diagnostics deterministic and duplicate-free).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FlowProblem defines one forward dataflow analysis. S is the abstract state
// flowing along CFG edges; implementations must treat states as immutable
// values (Transfer and Join return fresh or shared states, never mutate
// their arguments in place).
type FlowProblem[S any] interface {
	// Entry is the state at function entry.
	Entry() S
	// Transfer flows the state across one evaluation step.
	Transfer(n CFGNode, s S) S
	// Join merges the states of two converging paths.
	Join(a, b S) S
	// Equal reports state equality; the fixpoint terminates when every
	// block's in-state stops changing under Join.
	Equal(a, b S) bool
	// AtBackEdge transforms state carried across a loop back edge. Passes
	// whose facts are iteration-scoped (streamorder's per-site automaton)
	// weaken here; identity is correct for passes with proper kills.
	AtBackEdge(s S) S
}

// FlowResult holds the fixpoint: the abstract state at the entry of each
// block, indexed by CFGBlock.Index. Dead blocks keep the zero state.
type FlowResult[S any] struct {
	In []S
}

// SolveForward runs p over g to a fixpoint with a worklist. Convergence is
// guaranteed for finite lattices joined monotonically; as a backstop against
// a buggy problem definition the solver also caps the number of block visits
// (lint passes prefer a silently-partial result over a hang).
func SolveForward[S any](g *CFG, p FlowProblem[S]) *FlowResult[S] {
	res := &FlowResult[S]{In: make([]S, len(g.Blocks))}
	seen := make([]bool, len(g.Blocks))
	res.In[g.Entry.Index] = p.Entry()
	seen[g.Entry.Index] = true

	work := []*CFGBlock{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true
	budget := 64 * (len(g.Blocks) + 1)
	for len(work) > 0 && budget > 0 {
		budget--
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false

		out := res.In[blk.Index]
		for _, n := range blk.Nodes {
			out = p.Transfer(n, out)
		}
		for _, s := range blk.Succs {
			edgeState := out
			if g.IsBackEdge(blk, s) {
				edgeState = p.AtBackEdge(edgeState)
			}
			next := edgeState
			if seen[s.Index] {
				next = p.Join(res.In[s.Index], edgeState)
				if p.Equal(next, res.In[s.Index]) {
					continue
				}
			}
			res.In[s.Index] = next
			seen[s.Index] = true
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// ReplayBlock walks one block from its in-state, invoking visit on every
// node with the state holding *before* that node, then applying Transfer.
// This is how passes localize diagnostics after the fixpoint.
func ReplayBlock[S any](p FlowProblem[S], blk *CFGBlock, in S, visit func(n CFGNode, before S)) {
	s := in
	for _, n := range blk.Nodes {
		visit(n, s)
		s = p.Transfer(n, s)
	}
}

// --- reaching definitions ---

// DefKind classifies one definition site of a variable.
type DefKind int

const (
	// DefUnknown covers definitions the analysis cannot see: parameters,
	// free variables of a closure, anything defined outside the body.
	DefUnknown DefKind = iota
	// DefFresh is a definition from a fresh, unaliased allocation in this
	// function: &T{...}, T{...}, new(T), or a zero-valued var declaration.
	DefFresh
	// DefOther is any other visible assignment (call results, loads,
	// arithmetic, range bindings).
	DefOther
)

// Def is one reaching definition site.
type Def struct {
	Kind DefKind
	Pos  token.Pos
}

// DefsState maps each variable to the set of definitions that may reach the
// current program point. A variable missing from the map has only its
// entry-state (unknown) definition.
type DefsState map[*types.Var]map[Def]bool

// reachingDefs implements FlowProblem for the reaching-definitions analysis.
type reachingDefs struct {
	info *types.Info
}

func (r *reachingDefs) Entry() DefsState                 { return DefsState{} }
func (r *reachingDefs) AtBackEdge(s DefsState) DefsState { return s }

func (r *reachingDefs) Join(a, b DefsState) DefsState {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(DefsState, len(a)+len(b))
	for v, defs := range a {
		m := make(map[Def]bool, len(defs))
		for d := range defs {
			m[d] = true
		}
		out[v] = m
	}
	for v, defs := range b {
		m := out[v]
		if m == nil {
			m = make(map[Def]bool, len(defs))
			out[v] = m
		}
		for d := range defs {
			m[d] = true
		}
	}
	return out
}

func (r *reachingDefs) Equal(a, b DefsState) bool {
	if len(a) != len(b) {
		return false
	}
	for v, da := range a {
		db, ok := b[v]
		if !ok || len(da) != len(db) {
			return false
		}
		for d := range da {
			if !db[d] {
				return false
			}
		}
	}
	return true
}

func (r *reachingDefs) Transfer(n CFGNode, s DefsState) DefsState {
	kills := defsIn(r.info, n.N)
	if len(kills) == 0 {
		return s
	}
	out := make(DefsState, len(s)+len(kills))
	for v, defs := range s {
		out[v] = defs
	}
	for v, d := range kills {
		out[v] = map[Def]bool{d: true}
	}
	return out
}

// defsIn extracts the definitions a single evaluation step performs:
// variable → its (single) new definition, which kills all prior ones. It is
// shared by reaching definitions and by the passes that need kill sets
// (poollife's taint is killed by exactly these assignments).
func defsIn(info *types.Info, n ast.Node) map[*types.Var]Def {
	out := make(map[*types.Var]Def)
	record := func(id *ast.Ident, kind DefKind) {
		if id == nil || id.Name == "_" {
			return
		}
		var obj types.Object
		if o := info.Defs[id]; o != nil {
			obj = o
		} else if o := info.Uses[id]; o != nil {
			obj = o
		}
		if v, ok := obj.(*types.Var); ok {
			out[v] = Def{Kind: kind, Pos: id.Pos()}
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			kind := DefOther
			if len(n.Rhs) == len(n.Lhs) && isFreshAlloc(n.Rhs[i]) {
				kind = DefFresh
			}
			record(id, kind)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return out
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				kind := DefFresh // zero-valued declaration
				if i < len(vs.Values) && !isFreshAlloc(vs.Values[i]) {
					kind = DefOther
				}
				record(name, kind)
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			record(id, DefOther)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			record(id, DefOther)
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			record(id, DefOther)
		}
	case *ast.TypeSwitchStmt:
		if as, ok := n.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				record(id, DefOther)
			}
		}
	case *ast.ExprStmt:
		// no definitions
	}
	return out
}

// isFreshAlloc reports whether e is a fresh, unaliased allocation.
func isFreshAlloc(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return isFreshAlloc(e.X)
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// ReachingDefs computes the reaching-definition sets of g's blocks.
func ReachingDefs(g *CFG, info *types.Info) *FlowResult[DefsState] {
	return SolveForward[DefsState](g, &reachingDefs{info: info})
}

// FreshAt reports whether every definition of v that may reach the given
// state is a fresh local allocation — i.e. the value cannot yet be shared
// with another goroutine. A variable with no visible definition (parameter,
// closure capture) is not fresh.
func FreshAt(s DefsState, v *types.Var) bool {
	defs := s[v]
	if len(defs) == 0 {
		return false
	}
	for d := range defs {
		if d.Kind != DefFresh {
			return false
		}
	}
	return true
}
