// Package streamorderbad seeds chunk-protocol ordering violations for the
// streamorder golden test: pair chunks after a site's SiteDone (including
// the branch-sensitive marker — SiteDone on one arm, pair send after the
// join), duplicate SiteDone markers, and non-residual traffic after the
// residual phase began; in both the direct-send and the emit-helper
// vocabularies.
package streamorderbad

type SitePair struct{ Src, Dst int }

type Chunk struct {
	Pair     SitePair
	SiteDone bool
	Residual bool
}

type Sink interface{ Chunk(c *Chunk) }

func pairAfterDone(ch chan *Chunk, s int) {
	ch <- &Chunk{Pair: SitePair{Src: s}}
	ch <- &Chunk{Pair: SitePair{Src: s}, SiteDone: true}
	ch <- &Chunk{Pair: SitePair{Src: s}} // want streamorder
}

func duplicateDone(ch chan *Chunk, s int) {
	done := &Chunk{Pair: SitePair{Src: s}, SiteDone: true}
	ch <- done
	done2 := &Chunk{Pair: SitePair{Src: s}, SiteDone: true}
	ch <- done2 // want streamorder
}

func doneOnBranch(ch chan *Chunk, s int, cond bool) {
	if cond {
		ch <- &Chunk{Pair: SitePair{Src: s}, SiteDone: true}
	}
	// SiteDone may already have been sent: the pair chunk is out of order on
	// that path.
	ch <- &Chunk{Pair: SitePair{Src: s}} // want streamorder
}

func residualThenPair(sink Sink, s int) {
	sink.Chunk(&Chunk{Pair: SitePair{Src: s}, Residual: true})
	sink.Chunk(&Chunk{Pair: SitePair{Src: s + 1}}) // want streamorder
}

func doneAfterResidual(sink Sink, s int) {
	sink.Chunk(&Chunk{Residual: true})
	sink.Chunk(&Chunk{Pair: SitePair{Src: s}, SiteDone: true}) // want streamorder
}

// flagsViaFields drives the automaton through field assignments instead of
// literals: the dataflow must carry SiteDone/Pair.Src facts to the send.
func flagsViaFields(ch chan *Chunk, s int) {
	c := &Chunk{}
	c.Pair.Src = s
	c.SiteDone = true
	ch <- c
	c2 := &Chunk{}
	c2.Pair.Src = s
	ch <- c2 // want streamorder
}

type pairState struct{ n int }

func emitSiteDone(sink Sink, class int, src int) {}

func emitAssignChunk(sink Sink, class int, st *pairState, residual bool, flows []int) {}

func helperResidualOrder(sink Sink, class int, st *pairState) {
	emitAssignChunk(sink, class, st, true, nil)
	emitAssignChunk(sink, class, st, false, nil) // want streamorder
}

func helperDuplicateDone(sink Sink, class int, src int) {
	emitSiteDone(sink, class, src)
	emitSiteDone(sink, class, src) // want streamorder
}

// okProtocol is the legal stream shape: pairs, the one marker, pairs for
// other sites, then residual supplements (which may touch done sites).
func okProtocol(ch chan *Chunk, s int) {
	ch <- &Chunk{Pair: SitePair{Src: s}}
	ch <- &Chunk{Pair: SitePair{Src: s}, SiteDone: true}
	ch <- &Chunk{Pair: SitePair{Src: s + 1}}
	ch <- &Chunk{Pair: SitePair{Src: s}, Residual: true}
}

// okLoop: per-iteration sites alias the same expression; the automaton must
// not leak SiteDone facts across the back edge.
func okLoop(ch chan *Chunk, sites []int) {
	for _, s := range sites {
		ch <- &Chunk{Pair: SitePair{Src: s}}
		ch <- &Chunk{Pair: SitePair{Src: s}, SiteDone: true}
	}
}

// okUnknown: a parameter's flags are invisible; no claims, no findings.
func okUnknown(ch chan *Chunk, c *Chunk, s int) {
	ch <- &Chunk{Pair: SitePair{Src: s}, SiteDone: true}
	ch <- c
}
