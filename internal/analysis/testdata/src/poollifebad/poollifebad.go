// Package poollifebad seeds pooled-object lifetime violations for the
// poollife golden test: use-after-release, double release, stores and sends
// of released values, the branch-sensitive release (release on one arm, use
// after the join), and the re-Get pattern that legally revives a variable.
package poollifebad

import "sync"

type Chunk struct {
	Vals []int
}

var pool = sync.Pool{New: func() any { return new(Chunk) }}

// ReleaseChunk returns c to the pool. The uses inside the helper precede the
// Put and are fine.
func ReleaseChunk(c *Chunk) {
	c.Vals = c.Vals[:0]
	pool.Put(c)
}

func useAfterRelease(c *Chunk) int {
	ReleaseChunk(c)
	return len(c.Vals) // want poollife
}

func doubleRelease(c *Chunk) {
	ReleaseChunk(c)
	ReleaseChunk(c) // want poollife
}

func releaseOnBranchThenUse(c *Chunk, cond bool) int {
	if cond {
		ReleaseChunk(c)
	}
	// Released on only one path: still poisoned after the join.
	return len(c.Vals) // want poollife
}

func writeAfterRelease(c *Chunk) {
	ReleaseChunk(c)
	c.Vals = nil // want poollife
}

func storeAfterRelease(c *Chunk, sink map[int]*Chunk) {
	pool.Put(c)
	sink[0] = c // want poollife
}

func sendAfterRelease(c *Chunk, ch chan *Chunk) {
	ReleaseChunk(c)
	ch <- c // want poollife
}

func retainInLoop(cs []*Chunk) *Chunk {
	var last *Chunk
	for _, c := range cs {
		ReleaseChunk(c)
		last = c // want poollife
	}
	return last
}

func deferredDoubleRelease(c *Chunk) {
	defer ReleaseChunk(c) // want poollife
	ReleaseChunk(c)
}

// regetKills shows the taint dying at a reassignment: after a fresh Get the
// variable is a different pooled object.
func regetKills(c *Chunk) int {
	ReleaseChunk(c)
	c = pool.Get().(*Chunk)
	return len(c.Vals) // ok: re-Get killed the taint
}

// releaseBothArmsThenKill: released on both arms, revived on one.
func releaseBothArmsThenKill(c *Chunk, cond bool) int {
	if cond {
		ReleaseChunk(c)
		c = pool.Get().(*Chunk)
	} else {
		ReleaseChunk(c)
	}
	return len(c.Vals) // want poollife
}

// loopRecycleOK is the streaming consumer shape: the range binding re-defines
// the variable every iteration, so the prior iteration's release never leaks
// into this one.
func loopRecycleOK(ch chan *Chunk) {
	for c := range ch {
		c.Vals = append(c.Vals, 1)
		ReleaseChunk(c)
	}
}

// deferReleaseOK is the canonical borrow pattern: the deferred release runs
// at exit, after every use.
func deferReleaseOK() int {
	c := pool.Get().(*Chunk)
	defer ReleaseChunk(c)
	c.Vals = append(c.Vals, 7)
	return len(c.Vals)
}
