// Package atomiccheckbad seeds atomic-discipline violations for the
// atomiccheck golden test: plain reads/writes of fields that are elsewhere
// accessed through sync/atomic functions, plain copies and stores of typed
// atomics, and the constructor exemption (plain access through a provably
// fresh receiver is fine — until a join makes the receiver's origin
// ambiguous).
package atomiccheckbad

import "sync/atomic"

type Server struct {
	hits uint64 // accessed via atomic.AddUint64 in Hit
	val  atomic.Uint64
}

func (s *Server) Hit() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *Server) BadRead() uint64 {
	return s.hits // want atomiccheck
}

func (s *Server) BadWrite() {
	s.hits = 0 // want atomiccheck
}

func (s *Server) BadInc() {
	s.hits++ // want atomiccheck
}

func (s *Server) TypedCopy() uint64 {
	v := s.val // want atomiccheck
	return v.Load()
}

func (s *Server) TypedStore(o atomic.Uint64) {
	s.val = o // want atomiccheck
}

// GoodLoad uses the typed atomic through its methods.
func (s *Server) GoodLoad() uint64 { return s.val.Load() }

// GoodAddr passes the atomic by address.
func GoodAddr(s *Server) *atomic.Uint64 { return &s.val }

// NewServer is the constructor exemption: the receiver's only reaching
// definition is a fresh allocation, so nothing else can observe the plain
// write.
func NewServer() *Server {
	s := &Server{}
	s.hits = 1
	return s
}

// NewServerVar: a zero-valued var declaration is fresh too.
func NewServerVar() *Server {
	var s Server
	s.hits = 1
	return &s
}

func lookup() *Server { return &Server{} }

// escapedReceiver: the receiver came from elsewhere; the plain write races
// with Hit.
func escapedReceiver(s *Server) {
	s.hits = 2 // want atomiccheck
}

// freshnessDiesAtJoin: fresh on one path, shared on the other — the
// exemption must disappear at the join.
func freshnessDiesAtJoin(cond bool) *Server {
	s := &Server{}
	if cond {
		s = lookup()
	}
	s.hits = 3 // want atomiccheck
	return s
}

var shared = &Server{}

// init-time plain access is exempt: nothing is concurrent yet.
func init() {
	shared.hits = 7
}
