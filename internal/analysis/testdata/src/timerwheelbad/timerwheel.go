// Package timerwheelbad is a megate-lint golden fixture for the fleet
// simulator's timer-wheel worker shape: one event-loop goroutine owning the
// wheel, a counted worker pool draining a jobs channel. Every line marked
// `// want <pass>` must be flagged, and the sanctioned shapes at the bottom —
// the ones internal/fleetsim actually uses — must stay clean.
package timerwheelbad

import "sync"

type job struct{ agent, tick int }

type wheel struct {
	mu    sync.Mutex
	slots [][]int
	now   int
	jobs  chan job
	done  chan struct{}
	wg    sync.WaitGroup
}

// DispatchUnderLock sends due jobs into the worker channel while holding the
// wheel lock: a full worker pool then blocks the event loop, and everything
// scheduled behind the lock stalls with it.
func (w *wheel) DispatchUnderLock() {
	w.mu.Lock()
	for _, a := range w.slots[w.now] {
		w.jobs <- job{agent: a, tick: w.now} // want lockcheck
	}
	w.slots[w.now] = nil
	w.mu.Unlock()
}

// AdvanceLeaksOnEmpty returns early with the wheel lock held: the next tick
// wedges forever.
func (w *wheel) AdvanceLeaksOnEmpty() int {
	w.mu.Lock()
	if len(w.slots) == 0 {
		return -1 // want lockcheck
	}
	w.now++
	w.mu.Unlock()
	return w.now
}

// TickLoopUnjoined launches the wheel's tick loop with no quit channel and
// no WaitGroup: shutdown, the test harness, and the race detector have
// nothing to wait for.
func (w *wheel) TickLoopUnjoined(tick func()) {
	go func() { // want goroleak
		for {
			tick()
		}
	}()
}

// RunWorkers is the sanctioned pool shape fleetsim uses: counted workers
// draining the jobs channel, joined by Stop.
func (w *wheel) RunWorkers(workers int, work func(job)) {
	for i := 0; i < workers; i++ {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			for j := range w.jobs {
				work(j)
			}
		}()
	}
}

// Advance is the sanctioned dispatch shape: the due slot is taken under the
// lock, the channel sends happen after release, and a shutdown cannot block
// behind a full pool.
func (w *wheel) Advance() {
	w.mu.Lock()
	due := w.slots[w.now%len(w.slots)]
	w.slots[w.now%len(w.slots)] = nil
	w.now++
	w.mu.Unlock()
	for _, a := range due {
		select {
		case w.jobs <- job{agent: a, tick: w.now}:
		case <-w.done:
			return
		}
	}
}

// Stop closes the intake and joins every worker.
func (w *wheel) Stop() {
	close(w.done)
	close(w.jobs)
	w.wg.Wait()
}

// DrainResults is the sanctioned finisher shape: the goroutine's whole job
// is to wait for the counted pool and broadcast completion by closing the
// results channel the launcher is draining — the WaitGroup is its join path,
// the close is the launcher's.
func (w *wheel) DrainResults(results chan int) {
	go func() {
		w.wg.Wait()
		close(results)
	}()
	for range results {
	}
}

// SignalDone is the sanctioned done-channel shape: completion is broadcast
// by closing a launcher-owned channel the caller receives on.
func (w *wheel) SignalDone(run func()) {
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		run()
	}()
	<-finished
}
