// Package errdropbad is a megate-lint golden fixture: every line marked
// `// want errdrop` must be flagged, everything else must stay clean.
package errdropbad

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

// CallIt drops the only return value, an error.
func CallIt() {
	mayFail() // want errdrop
}

// Drop discards a Close error.
func Drop(f *os.File) {
	f.Close() // want errdrop
}

// DropTuple discards the error half of a multi-result call.
func DropTuple(f *os.File, b []byte) {
	f.Write(b) // want errdrop
}

// Fine shows the sanctioned shapes: explicit discard, the fmt print family,
// sticky-error writers, and deferred cleanup.
func Fine(f *os.File) error {
	_ = f.Close()
	fmt.Println("done")
	var sb strings.Builder
	sb.WriteString("x")
	defer f.Close()
	return mayFail()
}
