// Package directives is a megate-lint golden fixture for the
// //lint:ignore directive: trailing suppression, statement-extent
// suppression, and the two failure modes (missing reason, wrong pass).
package directives

import "os"

// Trailing suppresses its own line.
func Trailing(f *os.File) {
	f.Close() //lint:ignore errdrop fixture: trailing suppression
}

// Extent: a standalone directive covers the whole following statement,
// including a loop body.
func Extent(m map[string]int) []string {
	var out []string
	//lint:ignore maporder fixture: statement-extent suppression
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Malformed: a directive without a reason is itself a finding and
// suppresses nothing.
func Malformed(f *os.File) {
	//lint:ignore errdrop
	f.Close() // want errdrop
}

// WrongPass: naming a different pass leaves this one unsuppressed.
func WrongPass(f *os.File) {
	//lint:ignore floatcmp fixture: wrong pass name, errdrop still fires
	f.Close() // want errdrop
}
