// Package floatcmpbad is a megate-lint golden fixture: every line marked
// `// want floatcmp` must be flagged, everything else must stay clean.
package floatcmpbad

// Eq compares floats exactly — an ulp of drift flips the answer.
func Eq(a, b float64) bool {
	return a == b // want floatcmp
}

// Ne is the same hazard with the other operator.
func Ne(a, b float64) bool {
	return a != b // want floatcmp
}

// Mixed flags even when only one operand is floating point.
func Mixed(a float64, b int) bool {
	return a == float64(b) // want floatcmp
}

// Classify switches on a float, which compares each case exactly.
func Classify(x float64) int {
	switch x { // want floatcmp
	case 1.5:
		return 1
	}
	return 0
}

// Zero is the whitelisted idiom: comparison against an exact constant 0.
func Zero(a float64) bool {
	return a == 0
}

// ZeroFlipped is whitelisted regardless of operand order.
func ZeroFlipped(a float64) bool {
	return 0.0 != a
}

// Consts is whitelisted: both sides are compile-time constants.
func Consts() bool {
	const half = 0.5
	return half == 0.5
}
