// Package lockcheckbad is a megate-lint golden fixture: every line marked
// `// want lockcheck` must be flagged, everything else must stay clean.
package lockcheckbad

import (
	"fmt"
	"net"
	"sync"
)

type guarded struct {
	mu   sync.Mutex
	conn net.Conn
	n    int
}

// ByValue receives a struct holding a mutex by value: Lock and Unlock act
// on a copy.
func ByValue(g guarded) int { // want lockcheck
	return g.n
}

// LockedIO writes to the network while holding the lock; a blocked peer
// stalls every other holder.
func (g *guarded) LockedIO() {
	g.mu.Lock()
	fmt.Fprintf(g.conn, "n=%d\n", g.n) // want lockcheck
	g.mu.Unlock()
}

// ChanUnderLock blocks on a channel send while holding the lock.
func (g *guarded) ChanUnderLock(ch chan int) {
	g.mu.Lock()
	ch <- g.n // want lockcheck
	g.mu.Unlock()
}

// EarlyReturn leaks the lock on the error path.
func (g *guarded) EarlyReturn(cond bool) int {
	g.mu.Lock()
	if cond {
		return -1 // want lockcheck
	}
	g.mu.Unlock()
	return g.n
}

// NeverUnlocked locks and forgets; no path ever releases it.
func (g *guarded) NeverUnlocked() {
	g.mu.Lock() // want lockcheck
	g.n++
}

// Deferred is the sanctioned pattern: the deferred unlock covers every
// return path.
func (g *guarded) Deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// ReleaseClosure hands the unlock to the caller — the release-func idiom.
func (g *guarded) ReleaseClosure() (int, func()) {
	g.mu.Lock()
	return g.n, func() { g.mu.Unlock() }
}

// BranchRelease unlocks on one arm; the optimistic merge treats the lock as
// released afterwards.
func (g *guarded) BranchRelease(cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return -1
	}
	g.mu.Unlock()
	return g.n
}

type ring struct {
	mu     sync.Mutex
	owners map[string]string
	conns  map[string]net.Conn
}

// RebalanceUnderLock streams every moved record to its new owner while
// holding the membership lock — the resharding anti-pattern: a slow
// destination shard blocks every routed read.
func (r *ring) RebalanceUnderLock(moved map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, node := range moved {
		fmt.Fprintf(r.conns[node], "PUT %s\n", key) // want lockcheck
		r.owners[key] = node
	}
}

// SwapUnderLock is the sanctioned shape: migrate outside the lock, take it
// only for the in-memory ownership flip.
func (r *ring) SwapUnderLock(next map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.owners = next
}
