// Package lockcheckbad is a megate-lint golden fixture: every line marked
// `// want lockcheck` must be flagged, everything else must stay clean.
package lockcheckbad

import (
	"fmt"
	"net"
	"sync"
)

type guarded struct {
	mu   sync.Mutex
	conn net.Conn
	n    int
}

// ByValue receives a struct holding a mutex by value: Lock and Unlock act
// on a copy.
func ByValue(g guarded) int { // want lockcheck
	return g.n
}

// LockedIO writes to the network while holding the lock; a blocked peer
// stalls every other holder.
func (g *guarded) LockedIO() {
	g.mu.Lock()
	fmt.Fprintf(g.conn, "n=%d\n", g.n) // want lockcheck
	g.mu.Unlock()
}

// ChanUnderLock blocks on a channel send while holding the lock.
func (g *guarded) ChanUnderLock(ch chan int) {
	g.mu.Lock()
	ch <- g.n // want lockcheck
	g.mu.Unlock()
}

// EarlyReturn leaks the lock on the error path.
func (g *guarded) EarlyReturn(cond bool) int {
	g.mu.Lock()
	if cond {
		return -1 // want lockcheck
	}
	g.mu.Unlock()
	return g.n
}

// NeverUnlocked locks and forgets; no path ever releases it.
func (g *guarded) NeverUnlocked() {
	g.mu.Lock() // want lockcheck
	g.n++
}

// Deferred is the sanctioned pattern: the deferred unlock covers every
// return path.
func (g *guarded) Deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// ReleaseClosure hands the unlock to the caller — the release-func idiom.
func (g *guarded) ReleaseClosure() (int, func()) {
	g.mu.Lock()
	return g.n, func() { g.mu.Unlock() }
}

// BranchRelease unlocks on one arm; the optimistic merge treats the lock as
// released afterwards.
func (g *guarded) BranchRelease(cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return -1
	}
	g.mu.Unlock()
	return g.n
}
