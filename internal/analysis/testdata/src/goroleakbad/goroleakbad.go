// Package goroleakbad is a megate-lint golden fixture: every line marked
// `// want goroleak` must be flagged, everything else must stay clean.
package goroleakbad

import (
	"errors"
	"sync"
)

// Leak launches a goroutine nothing can wait for or stop.
func Leak(work func()) {
	go func() { // want goroleak
		for {
			work()
		}
	}()
}

func worker(jobs []int) {
	for range jobs {
	}
}

// LeakNamed leaks via a named same-package callee with no join evidence.
func LeakNamed(jobs []int) {
	go worker(jobs) // want goroleak
}

// Joined uses the wg.Add(1); go ... idiom.
func Joined(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// QuitChannel is joinable through the quit channel the launcher owns.
func QuitChannel(work func()) chan struct{} {
	quit := make(chan struct{})
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				work()
			}
		}
	}()
	return quit
}

// Drainer ranges over a channel the launcher owns and closes.
func Drainer(jobs chan int, work func(int)) {
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

func copyKeys(node string) {}

// MigrateLeak fans a migration out with one goroutine per source shard and
// never joins them: the flip below races the copies.
func MigrateLeak(sources []string) {
	for _, n := range sources {
		go copyKeys(n) // want goroleak
	}
}

// MigrateJoined is the sanctioned fan-out: every copier is counted before
// launch and the flip waits for all of them.
func MigrateJoined(sources []string) {
	var wg sync.WaitGroup
	for _, n := range sources {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			copyKeys(n)
		}()
	}
	wg.Wait()
}

func solvePair(p int) int { return p }

// StreamLeak is the streaming worker-pool shape gone wrong: workers send
// results into an unbuffered channel, and the consumer returns early on a
// bad result — every still-running worker blocks on its send forever. With
// no join evidence on the launch, the leak is structural, not incidental.
func StreamLeak(pairs []int) ([]int, error) {
	results := make(chan int)
	for _, p := range pairs {
		p := p
		go func() { // want goroleak
			results <- solvePair(p)
		}()
	}
	out := make([]int, 0, len(pairs))
	for range pairs {
		r := <-results
		if r < 0 {
			return nil, errBadPair // strands the unreceived senders
		}
		out = append(out, r)
	}
	return out, nil
}

var errBadPair = errors.New("bad pair")

// StreamJoined is the sanctioned streaming shape: counted workers, a full
// join before close, and error handling deferred until the channel is
// drained — an early return cannot strand a sender.
func StreamJoined(pairs []int) ([]int, error) {
	results := make(chan int, len(pairs))
	var wg sync.WaitGroup
	for _, p := range pairs {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- solvePair(p)
		}()
	}
	wg.Wait()
	close(results)
	out := make([]int, 0, len(pairs))
	for r := range results {
		if r < 0 {
			return nil, errBadPair
		}
		out = append(out, r)
	}
	return out, nil
}
