// Package goroleakbad is a megate-lint golden fixture: every line marked
// `// want goroleak` must be flagged, everything else must stay clean.
package goroleakbad

import "sync"

// Leak launches a goroutine nothing can wait for or stop.
func Leak(work func()) {
	go func() { // want goroleak
		for {
			work()
		}
	}()
}

func worker(jobs []int) {
	for range jobs {
	}
}

// LeakNamed leaks via a named same-package callee with no join evidence.
func LeakNamed(jobs []int) {
	go worker(jobs) // want goroleak
}

// Joined uses the wg.Add(1); go ... idiom.
func Joined(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// QuitChannel is joinable through the quit channel the launcher owns.
func QuitChannel(work func()) chan struct{} {
	quit := make(chan struct{})
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				work()
			}
		}
	}()
	return quit
}

// Drainer ranges over a channel the launcher owns and closes.
func Drainer(jobs chan int, work func(int)) {
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

func copyKeys(node string) {}

// MigrateLeak fans a migration out with one goroutine per source shard and
// never joins them: the flip below races the copies.
func MigrateLeak(sources []string) {
	for _, n := range sources {
		go copyKeys(n) // want goroleak
	}
}

// MigrateJoined is the sanctioned fan-out: every copier is counted before
// launch and the flip waits for all of them.
func MigrateJoined(sources []string) {
	var wg sync.WaitGroup
	for _, n := range sources {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			copyKeys(n)
		}()
	}
	wg.Wait()
}
