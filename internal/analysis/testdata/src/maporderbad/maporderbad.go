// Package maporderbad is a megate-lint golden fixture: every line marked
// `// want maporder` must be flagged, everything else must stay clean.
package maporderbad

import (
	"hash/fnv"
	"sort"
)

// Digest feeds a hash in map iteration order: the digest differs run to run.
func Digest(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want maporder
	}
	return h.Sum64()
}

type digester struct{}

func (digester) Fingerprint(s string) {}

// Mixed feeds a fingerprint-named sink in map iteration order.
func Mixed(d digester, m map[string]int) {
	for k := range m {
		d.Fingerprint(k) // want maporder
	}
}

type store struct{}

func (store) Put(key string, value []byte) {}

// PublishAll drives store writes in map iteration order.
func PublishAll(st store, m map[string][]byte) {
	for k, v := range m {
		st.Put(k, v) // want maporder
	}
}

// Keys accumulates map keys and never restores an order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// SortedKeys is the sanctioned shape: the sort after the loop launders the
// random iteration order away.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LocalOnly accumulates into a loop-local slice whose scope ends with the
// loop; nothing order-sensitive escapes.
func LocalOnly(m map[string][]string) int {
	n := 0
	for _, vs := range m {
		local := []string{}
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Snapshot collects callbacks, which have no canonical order to restore.
func Snapshot(m map[string]func()) []func() {
	var out []func()
	for _, fn := range m {
		out = append(out, fn)
	}
	return out
}
