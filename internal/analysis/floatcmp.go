package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatCmpPass flags direct equality comparisons (== / != / switch) on
// floating-point values. After a warm-started simplex or a cached stage-2
// result, float values that are mathematically equal routinely differ by an
// ulp; exact comparison silently changes pivots, cache hits, and
// convergence. The one whitelisted idiom is comparing against an exact zero
// literal: skipping a term whose coefficient is exactly 0.0 is well-defined
// and pervasive in the numeric kernels.
func FloatCmpPass(paths ...string) *Pass {
	return &Pass{
		Name:  "floatcmp",
		Doc:   "direct ==/!= or switch on float values outside the exact-zero idiom",
		Paths: paths,
		Run:   runFloatCmp,
	}
}

func runFloatCmp(p *Pkg) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloatType(p.typeOf(n.X)) && !isFloatType(p.typeOf(n.Y)) {
					return true
				}
				if p.isConstZero(n.X) || p.isConstZero(n.Y) {
					return true // exact-zero idiom
				}
				if p.isConst(n.X) && p.isConst(n.Y) {
					return true // compile-time constant comparison
				}
				ds = append(ds, p.diag(n.Pos(), "floatcmp",
					"direct %s on float values; use an epsilon tolerance (only comparison against an exact 0 is allowed)", n.Op))
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloatType(p.typeOf(n.Tag)) {
					ds = append(ds, p.diag(n.Tag.Pos(), "floatcmp",
						"switch on a float value compares exactly; use epsilon-tolerant if/else instead"))
				}
			}
			return true
		})
	}
	return ds
}

// isConst reports whether e is a compile-time constant expression.
func (p *Pkg) isConst(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// isConstZero reports whether e is a compile-time constant equal to exactly
// zero.
func (p *Pkg) isConstZero(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
