package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// MapOrderPass flags `range` over a map whose body feeds an
// order-sensitive sink: a hash or fingerprint, a store write (the delta
// publication path compares what it writes against the previous interval),
// or an append to a slice declared outside the loop that is never sorted
// afterwards in the same function. Go randomizes map iteration order, so
// any of these turns a deterministic computation into a nondeterministic
// one — exactly the class of bug that breaks fingerprint-gated delta
// publication between intervals.
func MapOrderPass(paths ...string) *Pass {
	return &Pass{
		Name:  "maporder",
		Doc:   "map range feeding a hash, fingerprint, store write, or never-sorted append",
		Paths: paths,
		Run:   runMapOrder,
	}
}

// storeWriteMethods are the TE-database write verbs (kvstore.Store, the
// ConfigStore interface, and their adapters).
var storeWriteMethods = map[string]bool{
	"Put": true, "Delete": true, "Publish": true,
	"PutConfig": true, "DeleteConfig": true, "PublishVersion": true,
}

// hashishName matches callee names that implement or feed a digest.
var hashishName = regexp.MustCompile(`(?i)hash|fingerprint|digest|\bmix\b`)

// sortFuncs are the sort/slices entry points that make a later iteration
// order deterministic again.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true, "SortFunc": true, "SortStableFunc": true,
}

func runMapOrder(p *Pkg) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		f := f
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := p.typeOf(rng.X); t == nil || !isMapType(t) {
				return true
			}
			ds = append(ds, p.mapRangeSinks(f, rng)...)
			return true
		})
	}
	return ds
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapRangeSinks scans one map-range body for order-sensitive sinks.
func (p *Pkg) mapRangeSinks(f *ast.File, rng *ast.RangeStmt) []Diagnostic {
	var ds []Diagnostic
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			recv := p.typeOf(sel.X)
			switch {
			case typeFromPkg(recv, "hash") && (name == "Write" || name == "WriteString" || name == "WriteByte"):
				ds = append(ds, p.diag(n.Pos(), "maporder",
					"map iteration order feeds hash %s.%s; iterate sorted keys so the digest is deterministic",
					exprString(sel.X), name))
			case hashishName.MatchString(name):
				ds = append(ds, p.diag(n.Pos(), "maporder",
					"map iteration order feeds %s; iterate sorted keys so the result is deterministic", name))
			case storeWriteMethods[name] && recv != nil && !isMapType(recv):
				ds = append(ds, p.diag(n.Pos(), "maporder",
					"map iteration order drives store write %s.%s; iterate sorted keys so the publication order is deterministic",
					exprString(sel.X), name))
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				target, ok := call.Args[0].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[target]
				if obj == nil || insideNode(obj.Pos(), rng) {
					continue // loop-local accumulator; its scope ends with the loop
				}
				if unorderableElem(obj.Type()) {
					// A bag of connections, callbacks, or channels has no
					// canonical order to restore — snapshotting one out of a
					// map is not a determinism hazard.
					continue
				}
				if p.sortedAfter(f, rng, obj) {
					continue
				}
				ds = append(ds, p.diag(call.Pos(), "maporder",
					"slice %s accumulates map keys/values in random order and is never sorted in this function; sort it (or iterate sorted keys)",
					target.Name))
			}
		}
		return true
	})
	return ds
}

func insideNode(pos token.Pos, n ast.Node) bool { return n.Pos() <= pos && pos < n.End() }

// unorderableElem reports whether t is a slice whose element type is (or
// contains, one struct level deep) a function, channel, or interface —
// values with no canonical order, which are collected from maps only to be
// iterated, never compared or published.
func unorderableElem(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return unorderable(sl.Elem(), 0)
}

func unorderable(t types.Type, depth int) bool {
	if depth > 2 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Signature, *types.Chan, *types.Interface:
		return true
	case *types.Pointer:
		return unorderable(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if unorderable(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement within the same enclosing function body.
func (p *Pkg) sortedAfter(f *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	body := enclosingBody(f, rng.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncs[sel.Sel.Name] {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := p.Info.Uses[pkgID].(*types.PkgName); !ok ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if referencesObj(p, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// referencesObj reports whether expr mentions obj.
func referencesObj(p *Pkg, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
