package analysis

// Per-function control-flow graph construction: the substrate of the
// dataflow passes (poollife, atomiccheck's reaching-defs exemption,
// streamorder). The builder lowers one function body into basic blocks of
// evaluation steps connected by explicit edges, covering branches, all loop
// forms, switch/type-switch/select, break/continue (labeled and not),
// goto/labels, short-circuit && and || (each operand gets its own block, so
// a fact established by evaluating the left operand is branch-sensitive in
// the right), and defer.
//
// Defers are approximated: every deferred call is re-appended to the Exit
// block in LIFO source order and marked Deferred, because defers run on
// every path out of the function. The approximation loses two things —
// conditionally-registered defers look unconditional at exit, and argument
// values are the ones reaching exit, not the ones captured at the defer
// statement — both conservative enough for the lint passes built on top
// (the defer statement itself also appears at its source location, so
// argument evaluation is still observed there).
//
// Construction never fails on syntactically valid input: malformed control
// flow (break outside a loop, goto to a missing label) simply terminates
// the current path, which is what makes the builder safe to fuzz
// (FuzzCFGBuild).

import (
	"go/ast"
	"go/token"
)

// CFGNode is one evaluation step inside a basic block: a simple statement,
// a bare (condition or case) expression, a range-loop head, or a deferred
// call replayed at function exit.
type CFGNode struct {
	N ast.Node
	// Deferred marks a deferred call re-executed in the Exit block; the
	// node's arguments were evaluated earlier, at the defer statement.
	Deferred bool
}

// CFGBlock is one basic block.
type CFGBlock struct {
	Index int
	Nodes []CFGNode
	Succs []*CFGBlock
	Preds []*CFGBlock
	// Live reports whether the block is reachable from the entry block;
	// dead blocks (code after return, unreferenced labels) stay in Blocks
	// but are skipped by the dataflow solver.
	Live bool
}

// CFG is the control-flow graph of one function body. Entry is Blocks[0];
// Exit is the unique sink every return, panic, and fall-off-the-end path
// reaches, holding the Deferred replay nodes.
type CFG struct {
	Blocks []*CFGBlock
	Entry  *CFGBlock
	Exit   *CFGBlock
	// backEdges holds [from,to] block-index pairs of loop back edges,
	// identified by DFS; the dataflow solver offers passes a hook to weaken
	// or reset state crossing them.
	backEdges map[[2]int]bool
}

// IsBackEdge reports whether the from→to edge closes a loop.
func (g *CFG) IsBackEdge(from, to *CFGBlock) bool {
	return g.backEdges[[2]int{from.Index, to.Index}]
}

// BuildCFG lowers a function body into a CFG.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*CFGBlock),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.jump(b.cfg.Exit) // fall off the end
	// Replay deferred calls at exit in LIFO source order.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, CFGNode{N: b.defers[i], Deferred: true})
	}
	b.cfg.markLive()
	b.cfg.findBackEdges()
	return b.cfg
}

// markLive flags every block reachable from the entry.
func (g *CFG) markLive() {
	var stack []*CFGBlock
	g.Entry.Live = true
	stack = append(stack, g.Entry)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !s.Live {
				s.Live = true
				stack = append(stack, s)
			}
		}
	}
}

// findBackEdges marks edges that close a loop: a successor still on the DFS
// stack when the edge is traversed.
func (g *CFG) findBackEdges() {
	g.backEdges = make(map[[2]int]bool)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var visit func(*CFGBlock)
	visit = func(blk *CFGBlock) {
		color[blk.Index] = gray
		for _, s := range blk.Succs {
			switch color[s.Index] {
			case white:
				visit(s)
			case gray:
				g.backEdges[[2]int{blk.Index, s.Index}] = true
			}
		}
		color[blk.Index] = black
	}
	visit(g.Entry)
}

// loopScope is one enclosing breakable construct during construction.
type loopScope struct {
	label       string
	breakTarget *CFGBlock
	continueTgt *CFGBlock // nil for switch/select scopes
	isLoop      bool
	nextCaseBlk *CFGBlock // fallthrough target inside switch bodies
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *CFGBlock // nil when the current path has terminated
	scopes []loopScope
	labels map[string]*CFGBlock
	defers []*ast.CallExpr
	// pendingLabel is set while building the statement directly under a
	// LabeledStmt, so loops and switches can register labeled break/continue
	// targets.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from→to.
func (b *cfgBuilder) edge(from, to *CFGBlock) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump links the current block to target and terminates the current path.
func (b *cfgBuilder) jump(target *CFGBlock) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// add appends an evaluation step to the current block; a terminated path
// gets a fresh dead block so later statements still appear in the graph.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, CFGNode{N: n})
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock get-or-creates the block a named label starts.
func (b *cfgBuilder) labelBlock(name string) *CFGBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// cond lowers a boolean expression with short-circuit decomposition: each
// &&/|| operand is evaluated in its own block, with edges reflecting which
// outcomes reach which successor.
func (b *cfgBuilder) cond(e ast.Expr, t, f *CFGBlock) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	}
	b.add(e)
	if b.cur != nil {
		b.edge(b.cur, t)
		b.edge(b.cur, f)
	}
	b.cur = nil
}

// terminates reports whether a call expression never returns: panic, or one
// of the conventional process/goroutine terminators.
func terminatesFlow(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminatesFlow(call) {
			b.jump(b.cfg.Exit)
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.GoStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing to evaluate

	case *ast.DeferStmt:
		// Arguments are evaluated here; the call itself replays at Exit.
		b.add(s)
		b.defers = append(b.defers, s.Call)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.LabeledStmt:
		lbl := b.labelBlock(s.Label.Name)
		b.jump(lbl)
		b.cur = lbl
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock()
		join := b.newBlock()
		els := join
		if s.Else != nil {
			els = b.newBlock()
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(join)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.jump(join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		contTgt := head
		var post *CFGBlock
		if s.Post != nil {
			post = b.newBlock()
			contTgt = post
		}
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, join)
		} else {
			b.jump(body)
		}
		b.scopes = append(b.scopes, loopScope{label: label, breakTarget: join, continueTgt: contTgt, isLoop: true})
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(contTgt)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		}
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		b.jump(head)
		head.Nodes = append(head.Nodes, CFGNode{N: s}) // evaluates X, binds Key/Value
		b.edge(head, body)
		b.edge(head, join)
		b.scopes = append(b.scopes, loopScope{label: label, breakTarget: join, continueTgt: head, isLoop: true})
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.cases(s.Body, label)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.cases(s.Body, label)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.cases(s.Body, label)

	default:
		// Anything unrecognized is appended as an opaque step.
		b.add(s)
	}
}

// branch lowers break/continue/goto/fallthrough.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if name == "" || sc.label == name {
				b.jump(sc.breakTarget)
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if sc.isLoop && (name == "" || sc.label == name) {
				b.jump(sc.continueTgt)
				return
			}
		}
	case token.GOTO:
		if name != "" {
			b.jump(b.labelBlock(name))
			return
		}
	case token.FALLTHROUGH:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			if b.scopes[i].nextCaseBlk != nil {
				b.jump(b.scopes[i].nextCaseBlk)
				return
			}
		}
	}
	// Malformed control flow (break outside any scope, goto with no label):
	// terminate the path instead of failing.
	b.cur = nil
}

// cases lowers the clause list of a switch, type switch, or select: every
// clause gets its own block fed from the head, with an implicit edge to the
// join when no default clause exists.
func (b *cfgBuilder) cases(body *ast.BlockStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	join := b.newBlock()
	var clauseBlks []*CFGBlock
	hasDefault := false
	for _, cs := range body.List {
		blk := b.newBlock()
		clauseBlks = append(clauseBlks, blk)
		b.edge(head, blk)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			}
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, cs := range body.List {
		var next *CFGBlock
		if i+1 < len(clauseBlks) {
			next = clauseBlks[i+1]
		}
		b.scopes = append(b.scopes, loopScope{label: label, breakTarget: join, nextCaseBlk: next})
		b.cur = clauseBlks[i]
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				b.add(e)
			}
			b.stmtList(cs.Body)
		case *ast.CommClause:
			if cs.Comm != nil {
				b.stmt(cs.Comm)
			}
			b.stmtList(cs.Body)
		}
		b.jump(join)
		b.scopes = b.scopes[:len(b.scopes)-1]
	}
	b.cur = join
}
