package analysis

// NDJSON output for machine consumers: megate-lint -json emits one JSON
// object per finding per line, so downstream tooling (CI annotations, the
// telemetry dashboard's lint panel) can stream-parse without buffering the
// whole report.

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the wire form of one Diagnostic. Field names are part of
// the -json contract; do not rename.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// WriteJSON writes ds as NDJSON: one compact JSON object per diagnostic,
// each terminated by exactly one newline, in the order given. An empty slice
// writes nothing.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range ds {
		jd := jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Pass:    d.Pass,
			Message: d.Message,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
