package analysis

// poollife: pooled-object lifetime discipline. The streaming pipeline hands
// pooled StreamChunks (and Scratch buffers) across component boundaries with
// a "must not retain after release" contract: once a value is passed to
// core.ReleaseChunk, sync.Pool.Put, or any Release* helper, another consumer
// may already be mutating it. The pass runs a may-released forward dataflow
// over the CFG: a release taints the variable on that path, a join keeps the
// taint if ANY incoming path released it (the branch-sensitive case — a
// release inside one arm of an if poisons everything after the join), and
// any assignment to the variable (in particular re-Get from the pool) kills
// it. While tainted, every read, write, field/index/store use, channel send,
// or argument pass is a finding; a second release is a double-release
// finding.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolLifePass builds the poollife analyzer, optionally scoped to paths.
func PoolLifePass(paths ...string) *Pass {
	return &Pass{
		Name:  "poollife",
		Doc:   "use or double-free of a pooled value after ReleaseChunk/sync.Pool.Put on any path",
		Paths: paths,
		Run:   runPoolLife,
	}
}

// plState maps a released variable to the position of the release that
// tainted it. May-analysis: present = released on at least one path.
type plState map[*types.Var]token.Pos

// poolLife implements FlowProblem[plState].
type poolLife struct {
	info *types.Info
}

func (pl *poolLife) Entry() plState               { return plState{} }
func (pl *poolLife) AtBackEdge(s plState) plState { return s }

func (pl *poolLife) Join(a, b plState) plState {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(plState, len(a)+len(b))
	for v, pos := range a {
		out[v] = pos
	}
	for v, pos := range b {
		if old, ok := out[v]; !ok || pos < old {
			out[v] = pos // earliest release wins, for deterministic messages
		}
	}
	return out
}

func (pl *poolLife) Equal(a, b plState) bool {
	if len(a) != len(b) {
		return false
	}
	for v, pos := range a {
		if o, ok := b[v]; !ok || o != pos {
			return false
		}
	}
	return true
}

func (pl *poolLife) Transfer(n CFGNode, s plState) plState {
	relVar, relPos := pl.releaseIn(n)
	kills := defsIn(pl.info, n.N)
	if relVar == nil && len(kills) == 0 {
		return s
	}
	out := make(plState, len(s)+1)
	for v, pos := range s {
		out[v] = pos
	}
	// The release taints first; an assignment in the same step (x =
	// release-ish call result — not expressible with the recognized helpers)
	// would kill after, which is the conservative order.
	if relVar != nil {
		if _, ok := out[relVar]; !ok {
			out[relVar] = relPos
		}
	}
	for v := range kills {
		delete(out, v)
	}
	return out
}

// releaseIn returns the variable a single evaluation step releases, or nil.
// Only two node shapes can release: an ExprStmt whose call is a recognized
// release helper, and a Deferred call replayed at function exit. The defer
// statement itself only evaluates the argument (the release happens at
// exit), so it contributes nothing here.
func (pl *poolLife) releaseIn(n CFGNode) (*types.Var, token.Pos) {
	var call *ast.CallExpr
	switch x := n.N.(type) {
	case *ast.ExprStmt:
		call, _ = x.X.(*ast.CallExpr)
	case *ast.CallExpr:
		if n.Deferred {
			call = x
		}
	}
	if call == nil {
		return nil, token.NoPos
	}
	v := pl.releasedVar(call)
	if v == nil {
		return nil, token.NoPos
	}
	return v, call.Pos()
}

// releasedVar returns the local variable a call releases, or nil when the
// call is not a release helper (or releases something the intraprocedural
// analysis cannot name, like a struct field).
func (pl *poolLife) releasedVar(call *ast.CallExpr) *types.Var {
	if len(call.Args) == 0 {
		return nil
	}
	isRelease := false
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		isRelease = strings.HasPrefix(fun.Name, "Release")
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if strings.HasPrefix(name, "Release") {
			isRelease = true
		} else if name == "Put" {
			// Put releases only on sync.Pool receivers; the kvstore's
			// Store.Put is a database write, not a pool return.
			if tv, ok := pl.info.Types[fun.X]; ok && isSyncPool(tv.Type) {
				isRelease = true
			}
		}
	}
	if !isRelease {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pl.info.Uses[id]
	v, _ := obj.(*types.Var)
	return v
}

// isSyncPool reports whether t (possibly behind a pointer) is sync.Pool.
func isSyncPool(t types.Type) bool {
	n := namedFrom(t)
	return n != nil && n.Obj() != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

func runPoolLife(p *Pkg) []Diagnostic {
	var ds []Diagnostic
	pl := &poolLife{info: p.Info}
	for _, f := range p.Files {
		for _, body := range funcBodies(f) {
			// Only lower bodies that mention a release helper at all; CFG
			// construction is cheap but not free across a whole tree.
			if !mentionsRelease(body) {
				continue
			}
			g := BuildCFG(body)
			res := SolveForward[plState](g, pl)
			for _, blk := range g.Blocks {
				if !blk.Live {
					continue
				}
				ReplayBlock[plState](pl, blk, res.In[blk.Index], func(n CFGNode, before plState) {
					ds = append(ds, pl.checkNode(p, n, before)...)
				})
			}
		}
	}
	return ds
}

// checkNode reports the violations one evaluation step commits against the
// incoming released-set.
func (pl *poolLife) checkNode(p *Pkg, n CFGNode, released plState) []Diagnostic {
	if len(released) == 0 {
		return nil
	}
	var ds []Diagnostic

	// A release of an already-released variable is a double release; the
	// argument occurrence is then accounted for and not also a "use".
	var releaseArg *ast.Ident
	if relVar, _ := pl.releaseIn(n); relVar != nil {
		var call *ast.CallExpr
		switch x := n.N.(type) {
		case *ast.ExprStmt:
			call = x.X.(*ast.CallExpr)
		case *ast.CallExpr:
			call = x
		}
		releaseArg, _ = call.Args[0].(*ast.Ident)
		if first, ok := released[relVar]; ok {
			ds = append(ds, p.diag(call.Pos(), "poollife",
				"double release of %s (already released at line %d): the pool may hand it to two consumers",
				relVar.Name(), p.Fset.Position(first).Line))
		}
	}

	// Plain-ident assignment targets are kills, not uses.
	killIdents := make(map[*ast.Ident]bool)
	if as, ok := n.N.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				killIdents[id] = true
			}
		}
	}

	// A RangeStmt head node evaluates only the range operand; the body
	// statements are their own CFG nodes and must not be double-inspected.
	root := ast.Node(n.N)
	if rs, ok := n.N.(*ast.RangeStmt); ok {
		root = rs.X
	}
	ast.Inspect(root, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		if id == releaseArg || killIdents[id] {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		relPos, tainted := released[v]
		if !tainted {
			return true
		}
		ds = append(ds, p.diag(id.Pos(), "poollife",
			"%s used after release at line %d: a pooled value must not be retained once returned to the pool",
			v.Name(), p.Fset.Position(relPos).Line))
		return true
	})
	return ds
}

// mentionsRelease is the cheap pre-filter: does the body syntactically
// contain a Release* call or a Put call at all?
func mentionsRelease(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.HasPrefix(name, "Release") || name == "Put" {
			found = true
			return false
		}
		return true
	})
	return found
}
