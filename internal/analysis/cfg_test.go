package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody wraps src in a function and returns its *ast.BlockStmt, or nil
// when the input does not parse (fuzz inputs mostly will not).
func parseBody(src string) *ast.BlockStmt {
	file := "package p\nfunc f() {\n" + src + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", file, parser.SkipObjectResolution)
	if err != nil {
		return nil
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	return nil
}

// checkCFGInvariants asserts the structural properties every CFG must hold,
// regardless of input shape:
//
//  1. Entry and Exit exist and Blocks[i].Index == i.
//  2. Edge symmetry: the Succs and Preds multisets mirror each other.
//  3. Live is exactly reachability from Entry — every block is reachable or
//     marked dead, never a third state.
//  4. Every recorded back edge is an existing edge.
func checkCFGInvariants(g *CFG) error {
	if g.Entry == nil || g.Exit == nil {
		return fmt.Errorf("nil entry or exit")
	}
	for i, blk := range g.Blocks {
		if blk.Index != i {
			return fmt.Errorf("block at position %d has Index %d", i, blk.Index)
		}
	}
	edgeCount := func(list []*CFGBlock, want *CFGBlock) int {
		n := 0
		for _, b := range list {
			if b == want {
				n++
			}
		}
		return n
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if fwd, back := edgeCount(blk.Succs, s), edgeCount(s.Preds, blk); fwd != back {
				return fmt.Errorf("asymmetric edge b%d->b%d: %d in Succs, %d in Preds", blk.Index, s.Index, fwd, back)
			}
		}
		for _, pr := range blk.Preds {
			if back, fwd := edgeCount(blk.Preds, pr), edgeCount(pr.Succs, blk); back != fwd {
				return fmt.Errorf("asymmetric edge b%d<-b%d: %d in Preds, %d in Succs", blk.Index, pr.Index, back, fwd)
			}
		}
	}
	reach := make([]bool, len(g.Blocks))
	stack := []*CFGBlock{g.Entry}
	reach[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !reach[s.Index] {
				reach[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	for _, blk := range g.Blocks {
		if blk.Live != reach[blk.Index] {
			return fmt.Errorf("block b%d Live=%v but reachable=%v", blk.Index, blk.Live, reach[blk.Index])
		}
	}
	for e := range g.backEdges {
		from, to := e[0], e[1]
		if from < 0 || from >= len(g.Blocks) || to < 0 || to >= len(g.Blocks) {
			return fmt.Errorf("back edge %v out of range", e)
		}
		if edgeCount(g.Blocks[from].Succs, g.Blocks[to]) == 0 {
			return fmt.Errorf("back edge b%d->b%d is not an edge", from, to)
		}
	}
	return nil
}

// cfgSeeds are function bodies covering every construct the builder lowers;
// they double as the fuzz corpus.
var cfgSeeds = []string{
	"",
	"x := 1\n_ = x",
	"if a {\n\tx()\n} else {\n\ty()\n}",
	"if a && b || !c {\n\tx()\n}",
	"for i := 0; i < 10; i++ {\n\tif i == 5 {\n\t\tcontinue\n\t}\n\tx(i)\n}",
	"for {\n\tbreak\n}",
	"for k, v := range m {\n\t_ = k\n\t_ = v\n}",
	"outer:\nfor {\n\tfor {\n\t\tcontinue outer\n\t}\n}",
	"goto done\nx()\ndone:\ny()",
	"switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}",
	"switch v := x.(type) {\ncase int:\n\t_ = v\ndefault:\n}",
	"select {\ncase <-ch:\n\ta()\ncase ch2 <- 1:\ndefault:\n}",
	"defer f()\ndefer g()\nreturn",
	"return\nx()", // dead code after return
	"break",       // malformed: break outside any scope
	"goto missing",
	"L:\n\tx()",
	"go func() {\n\tfor {\n\t}\n}()",
}

// TestCFGStructure runs the invariant checker over the seed bodies and
// spot-checks the properties the dataflow passes rely on: loops produce back
// edges, dead code is marked dead, defers are replayed at Exit.
func TestCFGStructure(t *testing.T) {
	for _, src := range cfgSeeds {
		body := parseBody(src)
		if body == nil {
			t.Fatalf("seed did not parse: %q", src)
		}
		g := BuildCFG(body)
		if err := checkCFGInvariants(g); err != nil {
			t.Errorf("seed %q: %v", src, err)
		}
	}

	g := BuildCFG(parseBody("for i := 0; i < 3; i++ {\n\tx(i)\n}"))
	if len(g.backEdges) == 0 {
		t.Error("for loop produced no back edge")
	}

	g = BuildCFG(parseBody("return\nx()"))
	dead := 0
	for _, blk := range g.Blocks {
		if !blk.Live && len(blk.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Error("statement after return not marked dead")
	}

	g = BuildCFG(parseBody("defer f()\nx()"))
	deferred := 0
	for _, n := range g.Exit.Nodes {
		if n.Deferred {
			deferred++
		}
	}
	if deferred != 1 {
		t.Errorf("exit block has %d deferred replays, want 1", deferred)
	}
}

// FuzzCFGBuild feeds arbitrary small function bodies to the CFG builder: on
// anything that parses, construction must not panic and the result must pass
// the full structural invariant check (edge symmetry, Live == reachability,
// back edges are edges). Malformed control flow — break outside a loop, goto
// to a missing label — must degrade to a terminated path, not a crash.
func FuzzCFGBuild(f *testing.F) {
	for _, s := range cfgSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		body := parseBody(src)
		if body == nil {
			t.Skip("does not parse")
		}
		g := BuildCFG(body)
		if err := checkCFGInvariants(g); err != nil {
			t.Fatalf("invariant violated for %q: %v", src, err)
		}
	})
}
