package packet

import (
	"errors"
	"fmt"
)

// Encap is a fully parsed MegaTE data-plane packet: the outer
// Ethernet/IPv4/UDP/VXLAN encapsulation of Figure 7a, the optional MegaTE SR
// header, and the opaque inner frame.
type Encap struct {
	Eth   Ethernet
	IP    IPv4
	UDP   UDP
	VXLAN VXLAN
	// SR is non-nil when VXLAN.SRPresent is set.
	SR *SRHeader
	// Inner is the encapsulated Ethernet frame (not interpreted here).
	Inner []byte
	// SROffset is the byte offset of the SR header within the serialized
	// packet, usable with AdvanceInPlace; -1 when absent.
	SROffset int
}

// Serialize renders the packet. It keeps VXLAN.SRPresent consistent with
// whether SR is set.
func (e *Encap) Serialize() ([]byte, error) {
	var b SerializeBuffer
	e.VXLAN.SRPresent = e.SR != nil
	layers := []SerializableLayer{&e.Eth, &e.IP, &e.UDP, &e.VXLAN}
	if e.SR != nil {
		layers = append(layers, e.SR)
	}
	layers = append(layers, Payload(e.Inner))
	if err := SerializeLayers(&b, layers...); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeEncap parses a serialized packet produced by Serialize (or by the
// eBPF host stack). Fragmented packets cannot be decoded past the IP layer;
// use IPv4.DecodeFromBytes directly for fragment accounting.
func DecodeEncap(data []byte) (*Encap, error) {
	e := &Encap{SROffset: -1}
	rest, err := e.Eth.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	if e.Eth.EtherType != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: ethertype 0x%04x is not IPv4", e.Eth.EtherType)
	}
	rest, err = e.IP.DecodeFromBytes(rest)
	if err != nil {
		return nil, err
	}
	if e.IP.IsFragment() {
		return nil, errors.New("packet: cannot decode fragment past the IP layer")
	}
	if e.IP.Protocol != IPProtoUDP {
		return nil, fmt.Errorf("packet: protocol %d is not UDP", e.IP.Protocol)
	}
	rest, err = e.UDP.DecodeFromBytes(rest)
	if err != nil {
		return nil, err
	}
	rest, err = e.VXLAN.DecodeFromBytes(rest)
	if err != nil {
		return nil, err
	}
	if e.VXLAN.SRPresent {
		e.SROffset = len(data) - len(rest)
		sr := &SRHeader{}
		rest, err = sr.DecodeFromBytes(rest)
		if err != nil {
			return nil, err
		}
		e.SR = sr
	}
	e.Inner = rest
	return e, nil
}

// OuterFiveTuple returns the outer five tuple, which routers hash for ECMP.
func (e *Encap) OuterFiveTuple() FiveTuple {
	return FiveTuple{
		SrcIP: e.IP.Src, DstIP: e.IP.Dst,
		Proto:   e.IP.Protocol,
		SrcPort: e.UDP.SrcPort, DstPort: e.UDP.DstPort,
	}
}

// FragmentFrame splits a serialized Ethernet+IPv4 frame into fragments no
// larger than mtu bytes of IP packet each (the Ethernet header does not
// count toward the MTU). All fragments share the original IP ID, as §5.1
// relies on for flow attribution. A frame that already fits is returned
// unchanged as a single element.
func FragmentFrame(frame []byte, mtu int) ([][]byte, error) {
	if mtu < 28 { // 20 header + one 8-byte unit
		return nil, fmt.Errorf("packet: mtu %d too small to fragment", mtu)
	}
	var eth Ethernet
	ipStart, err := eth.DecodeFromBytes(frame)
	if err != nil {
		return nil, err
	}
	var ip IPv4
	payload, err := ip.DecodeFromBytes(ipStart)
	if err != nil {
		return nil, err
	}
	if int(ip.TotalLen) <= mtu {
		return [][]byte{frame}, nil
	}
	if ip.Flags&IPv4DontFragment != 0 {
		return nil, errors.New("packet: DF set on oversized packet")
	}

	// Payload bytes per fragment, multiple of 8.
	per := (mtu - 20) &^ 7
	var frags [][]byte
	for off := 0; off < len(payload); off += per {
		end := off + per
		if end > len(payload) {
			end = len(payload)
		}
		fip := ip
		fip.FragOffset = ip.FragOffset + uint16(off/8)
		if end < len(payload) || ip.MoreFragments() {
			fip.Flags |= IPv4MoreFrags
		} else {
			fip.Flags &^= IPv4MoreFrags
		}
		var b SerializeBuffer
		if err := SerializeLayers(&b, &eth, &fip, Payload(payload[off:end])); err != nil {
			return nil, err
		}
		out := make([]byte, len(b.Bytes()))
		copy(out, b.Bytes())
		frags = append(frags, out)
	}
	return frags, nil
}
