package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleEncap(withSR bool) *Encap {
	e := &Encap{
		Eth: Ethernet{Dst: [6]byte{1, 2, 3, 4, 5, 6}, Src: [6]byte{6, 5, 4, 3, 2, 1}, EtherType: EtherTypeIPv4},
		IP: IPv4{
			TOS: 0x2e << 2, ID: 4242, TTL: 64, Protocol: IPProtoUDP,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
		},
		UDP:   UDP{SrcPort: 33333, DstPort: VXLANPort},
		VXLAN: VXLAN{VNI: 7777},
		Inner: []byte("inner ethernet frame bytes"),
	}
	if withSR {
		e.SR = &SRHeader{Offset: 0, Hops: []uint32{3, 7, 11}}
	}
	return e
}

func TestEncapRoundTripWithSR(t *testing.T) {
	e := sampleEncap(true)
	data, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEncap(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.VXLAN.VNI != 7777 || !got.VXLAN.SRPresent {
		t.Errorf("vxlan = %+v", got.VXLAN)
	}
	if got.SR == nil || len(got.SR.Hops) != 3 || got.SR.Hops[1] != 7 {
		t.Fatalf("sr = %+v", got.SR)
	}
	if !bytes.Equal(got.Inner, e.Inner) {
		t.Errorf("inner = %q", got.Inner)
	}
	if got.IP.Src != e.IP.Src || got.UDP.DstPort != VXLANPort {
		t.Error("outer headers mangled")
	}
}

func TestEncapRoundTripWithoutSR(t *testing.T) {
	e := sampleEncap(false)
	data, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEncap(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.VXLAN.SRPresent || got.SR != nil || got.SROffset != -1 {
		t.Errorf("unexpected SR: %+v", got)
	}
	if !bytes.Equal(got.Inner, e.Inner) {
		t.Errorf("inner = %q", got.Inner)
	}
}

func TestAdvanceInPlace(t *testing.T) {
	e := sampleEncap(true)
	data, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEncap(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := AdvanceInPlace(data, got.SROffset); err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeEncap(data)
	if err != nil {
		t.Fatal(err)
	}
	if got2.SR.Offset != 1 {
		t.Errorf("offset = %d, want 1", got2.SR.Offset)
	}
	hop, ok := got2.SR.NextHop()
	if !ok || hop != 7 {
		t.Errorf("next hop = %d, %v", hop, ok)
	}
}

func TestSRNextHopExhaustion(t *testing.T) {
	sr := &SRHeader{Hops: []uint32{1, 2}}
	for i := 0; i < 2; i++ {
		if _, ok := sr.NextHop(); !ok {
			t.Fatalf("hop %d should exist", i)
		}
		sr.Advance()
	}
	if _, ok := sr.NextHop(); ok {
		t.Error("exhausted path should report no next hop")
	}
}

func TestSRHopLimit(t *testing.T) {
	sr := &SRHeader{Hops: make([]uint32, 256)}
	var b SerializeBuffer
	if err := sr.SerializeTo(&b); err == nil {
		t.Error("want error for > 255 hops")
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	e := sampleEncap(false)
	data, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	data[14+8] ^= 0xff // corrupt TTL inside the IP header
	if _, err := DecodeEncap(data); err == nil {
		t.Error("want checksum error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	e := sampleEncap(true)
	data, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 14, 20, 33, 41, 44, 47} {
		if cut >= len(data) {
			continue
		}
		if _, err := DecodeEncap(data[:cut]); err == nil {
			t.Errorf("decode of %d-byte prefix should fail", cut)
		}
	}
}

func TestDecodeWrongProtocols(t *testing.T) {
	e := sampleEncap(false)
	e.Eth.EtherType = 0x86dd
	data, _ := e.Serialize()
	if _, err := DecodeEncap(data); err == nil {
		t.Error("want ethertype error")
	}
	e = sampleEncap(false)
	e.IP.Protocol = 6
	data, _ = e.Serialize()
	if _, err := DecodeEncap(data); err == nil {
		t.Error("want protocol error")
	}
}

func TestVXLANVNITooLarge(t *testing.T) {
	v := &VXLAN{VNI: 1 << 24}
	var b SerializeBuffer
	if err := v.SerializeTo(&b); err == nil {
		t.Error("want VNI range error")
	}
}

func TestFiveTupleHashDeterministicAndSpread(t *testing.T) {
	ft := FiveTuple{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, Proto: 17, SrcPort: 1000, DstPort: 2000}
	if ft.Hash() != ft.Hash() {
		t.Error("hash not deterministic")
	}
	// Different source ports (same instance, different connections) should
	// frequently land in different buckets — the §2.1 pathology.
	buckets := map[uint64]bool{}
	for p := uint16(1000); p < 1032; p++ {
		f := ft
		f.SrcPort = p
		buckets[f.Hash()%4] = true
	}
	if len(buckets) < 2 {
		t.Error("hash does not spread across paths")
	}
	if ft.String() == "" {
		t.Error("empty String")
	}
}

func TestFragmentFrameRoundTrip(t *testing.T) {
	payload := make([]byte, 3000)
	r := rand.New(rand.NewSource(1))
	r.Read(payload)
	eth := Ethernet{EtherType: EtherTypeIPv4}
	ip := IPv4{ID: 99, TTL: 64, Protocol: IPProtoUDP, Src: [4]byte{1, 1, 1, 1}, Dst: [4]byte{2, 2, 2, 2}}
	var b SerializeBuffer
	if err := SerializeLayers(&b, &eth, &ip, Payload(payload)); err != nil {
		t.Fatal(err)
	}
	frags, err := FragmentFrame(b.Bytes(), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("expected multiple fragments, got %d", len(frags))
	}
	// Reassemble and compare.
	reassembled := make([]byte, 0, len(payload))
	lastSeen := false
	for i, f := range frags {
		var feth Ethernet
		rest, err := feth.DecodeFromBytes(f)
		if err != nil {
			t.Fatal(err)
		}
		var fip IPv4
		fpayload, err := fip.DecodeFromBytes(rest)
		if err != nil {
			t.Fatal(err)
		}
		if fip.ID != 99 {
			t.Errorf("fragment %d has ID %d, want 99", i, fip.ID)
		}
		if int(fip.FragOffset)*8 != len(reassembled) {
			t.Errorf("fragment %d offset %d, reassembled %d", i, fip.FragOffset*8, len(reassembled))
		}
		if i < len(frags)-1 {
			if !fip.MoreFragments() {
				t.Errorf("fragment %d missing MF", i)
			}
			if int(fip.TotalLen) > 1500 {
				t.Errorf("fragment %d exceeds MTU: %d", i, fip.TotalLen)
			}
		} else {
			lastSeen = !fip.MoreFragments()
		}
		reassembled = append(reassembled, fpayload...)
	}
	if !lastSeen {
		t.Error("last fragment still has MF set")
	}
	if !bytes.Equal(reassembled, payload) {
		t.Error("reassembly mismatch")
	}
}

func TestFragmentFrameNoopWhenSmall(t *testing.T) {
	e := sampleEncap(false)
	data, _ := e.Serialize()
	frags, err := FragmentFrame(data, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !bytes.Equal(frags[0], data) {
		t.Error("small frame should pass through")
	}
}

func TestFragmentFrameRespectsDF(t *testing.T) {
	payload := make([]byte, 3000)
	eth := Ethernet{EtherType: EtherTypeIPv4}
	ip := IPv4{Flags: IPv4DontFragment, TTL: 64, Protocol: IPProtoUDP}
	var b SerializeBuffer
	if err := SerializeLayers(&b, &eth, &ip, Payload(payload)); err != nil {
		t.Fatal(err)
	}
	if _, err := FragmentFrame(b.Bytes(), 1500); err == nil {
		t.Error("want DF error")
	}
	if _, err := FragmentFrame(b.Bytes(), 10); err == nil {
		t.Error("want tiny-MTU error")
	}
}

func TestDecodeFragmentRefused(t *testing.T) {
	payload := make([]byte, 3000)
	e := sampleEncap(false)
	e.Inner = payload
	data, _ := e.Serialize()
	frags, err := FragmentFrame(data, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEncap(frags[0]); err == nil {
		t.Error("decoding a fragment past IP should fail")
	}
}

func TestSerializeBufferPrependAppend(t *testing.T) {
	var b SerializeBuffer
	copy(b.AppendBytes(3), "def")
	copy(b.PrependBytes(3), "abc")
	copy(b.AppendBytes(3), "ghi")
	if string(b.Bytes()) != "abcdefghi" {
		t.Errorf("buffer = %q", b.Bytes())
	}
	b.Clear()
	if len(b.Bytes()) != 0 {
		t.Error("clear failed")
	}
}

func TestLayerTypeString(t *testing.T) {
	for _, lt := range []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeUDP, LayerTypeVXLAN, LayerTypeSR, LayerTypePayload} {
		if lt.String() == "" {
			t.Errorf("empty name for %d", lt)
		}
	}
	if LayerType(99).String() != "LayerType(99)" {
		t.Error("unknown layer type formatting")
	}
}

// Property: any SR header round-trips through serialize/decode.
func TestSRHeaderRoundTripProperty(t *testing.T) {
	f := func(hopsRaw []uint32, offset uint8) bool {
		if len(hopsRaw) > MaxSRHops {
			hopsRaw = hopsRaw[:MaxSRHops]
		}
		sr := &SRHeader{Offset: offset, Hops: hopsRaw}
		var b SerializeBuffer
		if err := sr.SerializeTo(&b); err != nil {
			return false
		}
		var got SRHeader
		rest, err := got.DecodeFromBytes(b.Bytes())
		if err != nil || len(rest) != 0 {
			return false
		}
		if got.Offset != offset || len(got.Hops) != len(hopsRaw) {
			return false
		}
		for i := range hopsRaw {
			if got.Hops[i] != hopsRaw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: IPv4 headers round-trip and always verify their own checksum.
func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, src, dst [4]byte, payload []byte) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		ip := IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: IPProtoUDP, Src: src, Dst: dst}
		var b SerializeBuffer
		if err := SerializeLayers(&b, &ip, Payload(payload)); err != nil {
			return false
		}
		var got IPv4
		rest, err := got.DecodeFromBytes(b.Bytes())
		if err != nil {
			return false
		}
		return got.ID == id && got.TTL == ttl && got.Src == src && got.Dst == dst &&
			bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncapSerialize(b *testing.B) {
	e := sampleEncap(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Serialize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeEncap(b *testing.B) {
	e := sampleEncap(true)
	data, err := e.Serialize()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEncap(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFiveTupleHash(b *testing.B) {
	ft := FiveTuple{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, Proto: 17, SrcPort: 1000, DstPort: 2000}
	for i := 0; i < b.N; i++ {
		_ = ft.Hash()
	}
}

func BenchmarkFragmentFrame(b *testing.B) {
	e := sampleEncap(false)
	e.Inner = make([]byte, 8000)
	data, err := e.Serialize()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FragmentFrame(data, 1500); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUDPDecodeHeaderShort(t *testing.T) {
	var u UDP
	if _, err := u.DecodeHeader([]byte{1, 2, 3}); err == nil {
		t.Error("want truncation error")
	}
}

func TestIPv4DecodeHeaderErrors(t *testing.T) {
	var ip IPv4
	if _, err := ip.DecodeHeader(make([]byte, 10)); err == nil {
		t.Error("want truncation error")
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if _, err := ip.DecodeHeader(bad); err == nil {
		t.Error("want version error")
	}
	bad[0] = 0x44 // IHL 4 < 5
	if _, err := ip.DecodeHeader(bad); err == nil {
		t.Error("want IHL error")
	}
}

func TestAdvanceInPlaceTruncated(t *testing.T) {
	if err := AdvanceInPlace([]byte{1}, 0); err == nil {
		t.Error("want truncation error")
	}
}

func TestVXLANDecodeMissingIFlag(t *testing.T) {
	var v VXLAN
	if _, err := v.DecodeFromBytes(make([]byte, 8)); err == nil {
		t.Error("want I-flag error")
	}
}

func TestSerializeLayersErrorPropagates(t *testing.T) {
	var b SerializeBuffer
	bad := &VXLAN{VNI: 1 << 24}
	if err := SerializeLayers(&b, bad, Payload("x")); err == nil {
		t.Error("want VNI error")
	}
}

// Robustness: arbitrary bytes through the decoders must error or succeed,
// never panic or over-read.
func TestDecodeEncapNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		n := r.Intn(200)
		data := make([]byte, n)
		r.Read(data)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on %x: %v", data, rec)
				}
			}()
			DecodeEncap(data)
		}()
	}
	// Mutated valid packets: flip bytes of a real frame.
	e := sampleEncap(true)
	base, err := e.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5000; trial++ {
		data := append([]byte(nil), base...)
		for f := 0; f < 1+r.Intn(4); f++ {
			data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on mutated frame: %v", rec)
				}
			}()
			DecodeEncap(data)
		}()
	}
}
