// Package packet implements the wire formats MegaTE's data plane handles
// (§5.2, Figure 7): Ethernet frames carrying IPv4/UDP/VXLAN encapsulation,
// with the MegaTE segment-routing header inserted between the VXLAN header
// and the inner frame. IPv4 fragmentation is supported because the host
// stack must attribute every fragment of an oversized packet to its flow via
// the shared IP identification field (§5.1).
//
// The API follows the gopacket idiom from the networking guides: layers
// serialize into a prepend-oriented buffer (innermost first), and decode
// in place from byte slices without copying.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// LayerType identifies a protocol layer.
type LayerType int

// Layer types understood by this package.
const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeIPv4
	LayerTypeUDP
	LayerTypeVXLAN
	LayerTypeSR
	LayerTypePayload
)

// String names the layer type.
func (lt LayerType) String() string {
	switch lt {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeVXLAN:
		return "VXLAN"
	case LayerTypeSR:
		return "MegaTE-SR"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", int(lt))
}

// Common protocol numbers.
const (
	EtherTypeIPv4 = 0x0800
	IPProtoUDP    = 17
	// VXLANPort is the IANA-assigned VXLAN UDP port.
	VXLANPort = 4789
)

// ErrTruncated is returned when a buffer is too short for its layer.
var ErrTruncated = errors.New("packet: truncated")

// SerializableLayer can write itself in front of the bytes already in a
// SerializeBuffer (gopacket's prepend discipline: serialize innermost
// layers first).
type SerializableLayer interface {
	LayerType() LayerType
	SerializeTo(b *SerializeBuffer) error
}

// SerializeBuffer grows a packet from the innermost layer outward. The zero
// value is ready to use.
type SerializeBuffer struct {
	data []byte
}

// Bytes returns the current contents.
func (b *SerializeBuffer) Bytes() []byte { return b.data }

// PrependBytes makes room for n bytes at the front and returns the slice to
// fill in.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	old := b.data
	b.data = make([]byte, n+len(old))
	copy(b.data[n:], old)
	return b.data[:n]
}

// AppendBytes makes room for n bytes at the back and returns the slice to
// fill in.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	old := len(b.data)
	for cap(b.data) < old+n {
		b.data = append(b.data[:cap(b.data)], 0)
	}
	b.data = b.data[:old+n]
	return b.data[old:]
}

// Clear resets the buffer.
func (b *SerializeBuffer) Clear() { b.data = b.data[:0] }

// SerializeLayers clears the buffer and serializes the given layers so they
// wrap each other, outermost first in the argument list.
func SerializeLayers(b *SerializeBuffer, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}

// Payload is a raw application payload layer.
type Payload []byte

// LayerType implements SerializableLayer.
func (p Payload) LayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer) error {
	copy(b.PrependBytes(len(p)), p)
	return nil
}

// Ethernet is a layer-2 frame header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

// LayerType implements SerializableLayer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer) error {
	buf := b.PrependBytes(14)
	copy(buf[0:6], e.Dst[:])
	copy(buf[6:12], e.Src[:])
	binary.BigEndian.PutUint16(buf[12:14], e.EtherType)
	return nil
}

// DecodeFromBytes parses the header and returns the payload.
func (e *Ethernet) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 14 {
		return nil, fmt.Errorf("%w: ethernet needs 14 bytes, have %d", ErrTruncated, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return data[14:], nil
}

// IPv4 is an IPv4 header (no options).
type IPv4 struct {
	TOS        uint8 // DSCP carries the QoS class on the WAN
	TotalLen   uint16
	ID         uint16 // ipid, shared across fragments (§5.1)
	Flags      uint8  // bit 0x2 = DF, 0x1 = MF
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   uint8
	Checksum   uint16
	Src, Dst   [4]byte
}

// IPv4 flag bits.
const (
	IPv4DontFragment = 0x2
	IPv4MoreFrags    = 0x1
)

// LayerType implements SerializableLayer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// SerializeTo implements SerializableLayer. It fills in TotalLen and the
// header checksum.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	buf := b.PrependBytes(20)
	ip.TotalLen = uint16(20 + payloadLen)
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = ip.TOS
	binary.BigEndian.PutUint16(buf[2:4], ip.TotalLen)
	binary.BigEndian.PutUint16(buf[4:6], ip.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	buf[8] = ip.TTL
	buf[9] = ip.Protocol
	buf[10], buf[11] = 0, 0
	copy(buf[12:16], ip.Src[:])
	copy(buf[16:20], ip.Dst[:])
	ip.Checksum = ipChecksum(buf)
	binary.BigEndian.PutUint16(buf[10:12], ip.Checksum)
	return nil
}

// DecodeFromBytes parses the header, validates the checksum, and returns
// the payload (clipped to TotalLen).
func (ip *IPv4) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("%w: ipv4 needs 20 bytes, have %d", ErrTruncated, len(data))
	}
	if data[0]>>4 != 4 {
		return nil, fmt.Errorf("packet: not IPv4 (version %d)", data[0]>>4)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, fmt.Errorf("%w: ihl %d", ErrTruncated, ihl)
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	if ipChecksumVerify(data[:ihl]) != 0 {
		return nil, errors.New("packet: ipv4 checksum mismatch")
	}
	if int(ip.TotalLen) < ihl || int(ip.TotalLen) > len(data) {
		return nil, fmt.Errorf("%w: total length %d of %d", ErrTruncated, ip.TotalLen, len(data))
	}
	return data[ihl:ip.TotalLen], nil
}

// DecodeHeader parses and validates only the 20-byte header, returning
// everything after it without clipping to TotalLen. Use it when the packet
// is a fragment whose TotalLen describes the pre-fragmentation datagram, or
// when trailing bytes are acceptable.
func (ip *IPv4) DecodeHeader(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("%w: ipv4 needs 20 bytes, have %d", ErrTruncated, len(data))
	}
	if data[0]>>4 != 4 {
		return nil, fmt.Errorf("packet: not IPv4 (version %d)", data[0]>>4)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, fmt.Errorf("%w: ihl %d", ErrTruncated, ihl)
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	if ipChecksumVerify(data[:ihl]) != 0 {
		return nil, errors.New("packet: ipv4 checksum mismatch")
	}
	return data[ihl:], nil
}

// MoreFragments reports the MF bit.
func (ip *IPv4) MoreFragments() bool { return ip.Flags&IPv4MoreFrags != 0 }

// IsFragment reports whether the packet is any fragment of a larger packet.
func (ip *IPv4) IsFragment() bool { return ip.MoreFragments() || ip.FragOffset != 0 }

func ipChecksum(hdr []byte) uint16 {
	sum := uint32(0)
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func ipChecksumVerify(hdr []byte) uint16 {
	sum := uint32(0)
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is a UDP header. Length is filled during serialization; the checksum
// is left zero (legal for UDP over IPv4 and what VXLAN commonly does).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// LayerType implements SerializableLayer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	buf := b.PrependBytes(8)
	u.Length = uint16(8 + payloadLen)
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], u.Length)
	binary.BigEndian.PutUint16(buf[6:8], u.Checksum)
	return nil
}

// DecodeFromBytes parses the header and returns the payload.
func (u *UDP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: udp needs 8 bytes, have %d", ErrTruncated, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < 8 || int(u.Length) > len(data) {
		return nil, fmt.Errorf("%w: udp length %d of %d", ErrTruncated, u.Length, len(data))
	}
	return data[8:u.Length], nil
}

// DecodeHeader parses only the 8-byte header, returning everything after it
// without validating Length against the available bytes — needed when the
// datagram continues in later IP fragments.
func (u *UDP) DecodeHeader(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: udp needs 8 bytes, have %d", ErrTruncated, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return data[8:], nil
}

// VXLAN is the VXLAN header (RFC 7348). MegaTE repurposes the low bit of
// the first reserved field as the "SR present" flag (§5.2): routers check it
// to know whether a MegaTE SR header follows.
type VXLAN struct {
	VNI uint32
	// SRPresent is MegaTE's flag in the VXLAN reserved field.
	SRPresent bool
}

// vxlanFlagVNIValid is the standard I-flag.
const vxlanFlagVNIValid = 0x08

// megateSRFlag is the reserved-field bit marking an inserted SR header.
const megateSRFlag = 0x01

// LayerType implements SerializableLayer.
func (v *VXLAN) LayerType() LayerType { return LayerTypeVXLAN }

// SerializeTo implements SerializableLayer.
func (v *VXLAN) SerializeTo(b *SerializeBuffer) error {
	if v.VNI >= 1<<24 {
		return fmt.Errorf("packet: VNI %d exceeds 24 bits", v.VNI)
	}
	buf := b.PrependBytes(8)
	buf[0] = vxlanFlagVNIValid
	if v.SRPresent {
		buf[1] = megateSRFlag
	} else {
		buf[1] = 0
	}
	buf[2], buf[3] = 0, 0
	buf[4] = byte(v.VNI >> 16)
	buf[5] = byte(v.VNI >> 8)
	buf[6] = byte(v.VNI)
	buf[7] = 0
	return nil
}

// DecodeFromBytes parses the header and returns the payload.
func (v *VXLAN) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: vxlan needs 8 bytes, have %d", ErrTruncated, len(data))
	}
	if data[0]&vxlanFlagVNIValid == 0 {
		return nil, errors.New("packet: vxlan I-flag not set")
	}
	v.SRPresent = data[1]&megateSRFlag != 0
	v.VNI = uint32(data[4])<<16 | uint32(data[5])<<8 | uint32(data[6])
	return data[8:], nil
}

// SRHeader is the MegaTE segment-routing header of Figure 7b: the total hop
// count, the current offset, and the hop array listing the site-level path
// through the WAN.
type SRHeader struct {
	// Offset indexes the next hop to visit in Hops.
	Offset uint8
	// Hops holds the site identifiers along the path, ingress first.
	Hops []uint32
}

// MaxSRHops bounds the hop array (the field is a uint8 count).
const MaxSRHops = 255

// LayerType implements SerializableLayer.
func (s *SRHeader) LayerType() LayerType { return LayerTypeSR }

// SerializeTo implements SerializableLayer.
func (s *SRHeader) SerializeTo(b *SerializeBuffer) error {
	if len(s.Hops) > MaxSRHops {
		return fmt.Errorf("packet: %d hops exceeds the SR header maximum %d", len(s.Hops), MaxSRHops)
	}
	buf := b.PrependBytes(4 + 4*len(s.Hops))
	buf[0] = uint8(len(s.Hops)) // Hop Number
	buf[1] = s.Offset
	buf[2], buf[3] = 0, 0 // reserved
	for i, h := range s.Hops {
		binary.BigEndian.PutUint32(buf[4+4*i:], h)
	}
	return nil
}

// DecodeFromBytes parses the header and returns the payload.
func (s *SRHeader) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: sr header needs 4 bytes, have %d", ErrTruncated, len(data))
	}
	n := int(data[0])
	s.Offset = data[1]
	need := 4 + 4*n
	if len(data) < need {
		return nil, fmt.Errorf("%w: sr header with %d hops needs %d bytes, have %d", ErrTruncated, n, need, len(data))
	}
	s.Hops = make([]uint32, n)
	for i := 0; i < n; i++ {
		s.Hops[i] = binary.BigEndian.Uint32(data[4+4*i:])
	}
	return data[need:], nil
}

// NextHop returns the hop at the current offset, or ok=false when the path
// is exhausted.
func (s *SRHeader) NextHop() (uint32, bool) {
	if int(s.Offset) >= len(s.Hops) {
		return 0, false
	}
	return s.Hops[s.Offset], true
}

// Advance moves the offset past the current hop.
func (s *SRHeader) Advance() { s.Offset++ }

// AdvanceInPlace increments the Offset field directly inside a serialized
// packet whose SR header starts at off, avoiding a reserialization on the
// router fast path.
func AdvanceInPlace(pkt []byte, off int) error {
	if off+2 > len(pkt) {
		return ErrTruncated
	}
	pkt[off+1]++
	return nil
}

// FiveTuple identifies a connection (§1 footnote): the key of the eBPF
// conntrack and traffic maps, and the input to conventional ECMP hashing.
type FiveTuple struct {
	SrcIP, DstIP     [4]byte
	Proto            uint8
	SrcPort, DstPort uint16
}

// String renders the tuple as "src:port->dst:port/proto".
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d/%d",
		ft.SrcIP[0], ft.SrcIP[1], ft.SrcIP[2], ft.SrcIP[3], ft.SrcPort,
		ft.DstIP[0], ft.DstIP[1], ft.DstIP[2], ft.DstIP[3], ft.DstPort, ft.Proto)
}

// Hash returns a stable non-cryptographic hash, the router's ECMP function.
// It is deliberately deterministic per tuple: all packets of one connection
// take one path, but different connections of the same instance may not —
// the §2.1 pathology MegaTE fixes.
func (ft FiveTuple) Hash() uint64 {
	h := fnv.New64a()
	var b [13]byte
	copy(b[0:4], ft.SrcIP[:])
	copy(b[4:8], ft.DstIP[:])
	b[8] = ft.Proto
	binary.BigEndian.PutUint16(b[9:11], ft.SrcPort)
	binary.BigEndian.PutUint16(b[11:13], ft.DstPort)
	h.Write(b[:])
	return h.Sum64()
}
