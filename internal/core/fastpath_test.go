package core

import (
	"math"
	"testing"

	"megate/internal/lp"
	"megate/internal/stats"
	"megate/internal/traffic"
)

func TestFastPathHitsAfterColdInterval(t *testing.T) {
	topo := smallWorld(t)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 3, MeanDemandMbps: 80})
	s := NewSolver(topo, Options{Incremental: true, FastPath: true})

	r1, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FastPathHits != 0 {
		t.Errorf("cold interval reported %d fast-path hits", r1.FastPathHits)
	}
	if r1.FastPathFallbacks == 0 {
		t.Error("cold interval reported no fallbacks")
	}
	if r1.FastPathHit() {
		t.Error("FastPathHit() true on the cold interval")
	}

	// Unchanged matrix: every class solve must ride the fast path, the
	// certified gap must stay within the 1% default, and the bit-stable
	// allocation must keep the stage-2 pair cache hot.
	r2, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.FastPathHit() {
		t.Errorf("warm interval: hits=%d fallbacks=%d, want all hits",
			r2.FastPathHits, r2.FastPathFallbacks)
	}
	if r2.OptimalityGap > 0.01 {
		t.Errorf("certified gap %v > 1%% on an accepted interval", r2.OptimalityGap)
	}
	if r2.Stage2CacheHits == 0 {
		t.Error("fast-path interval produced no stage-2 cache hits")
	}
	checkLinkLoads(t, topo, m, r2)

	// Invalidate drops fast-path state: the next solve is cold again.
	s.Invalidate()
	r3, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if r3.FastPathHits != 0 {
		t.Errorf("post-Invalidate solve reported %d hits", r3.FastPathHits)
	}
}

func TestFastPathChurnFallsBack(t *testing.T) {
	// Changing the pair population changes the stage-1 commodity set, so the
	// tunnel-set fingerprint moves and the fast path must yield to the exact
	// solver instead of drifting from a stale allocation.
	topo := smallWorld(t)
	f1 := flowsBetween(topo, 0, 2, []float64{50, 60}, traffic.Class2)
	s := NewSolver(topo, Options{Incremental: true, FastPath: true})
	if _, err := s.Solve(traffic.NewMatrix(f1)); err != nil {
		t.Fatal(err)
	}

	f2 := flowsBetween(topo, 1, 3, []float64{70, 80}, traffic.Class2)
	for i := range f2 {
		f2[i].ID = 100 + i
	}
	m2 := traffic.NewMatrix(append(f1, f2...))
	r2, err := s.Solve(m2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.FastPathHits != 0 || r2.FastPathFallbacks == 0 {
		t.Errorf("churned interval: hits=%d fallbacks=%d, want pure fallback",
			r2.FastPathHits, r2.FastPathFallbacks)
	}
	checkLinkLoads(t, topo, m2, r2)

	// The fallback refreshed the stored state; a repeat of the same matrix
	// rides the fast path again.
	r3, err := s.Solve(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.FastPathHit() {
		t.Errorf("post-churn interval: hits=%d fallbacks=%d, want all hits",
			r3.FastPathHits, r3.FastPathFallbacks)
	}
}

func TestFastPathPerturbedStaysNearCold(t *testing.T) {
	// Across drifting intervals the fast path must stay feasible, keep its
	// certified gap under the acceptance tolerance whenever it hits, and
	// track a cold exact solve of the same matrix.
	topo := smallWorld(t)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 5, MeanDemandMbps: 60})
	s := NewSolver(topo, Options{Incremental: true, FastPath: true})
	r := stats.NewRand(17)
	hits := 0
	for step := 0; step < 6; step++ {
		if step > 0 {
			for i := range m.Flows {
				if r.Float64() < 0.05 {
					m.Flows[i].DemandMbps *= 0.9 + 0.2*r.Float64()
				}
			}
		}
		res, err := s.Solve(m)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkLinkLoads(t, topo, m, res)
		if res.FastPathHit() {
			hits++
			if res.OptimalityGap > 0.01 {
				t.Errorf("step %d: accepted gap %v > tolerance", step, res.OptimalityGap)
			}
		}
		cold, err := NewSolver(topo, Options{}).Solve(m)
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		if math.Abs(res.SatisfiedMbps-cold.SatisfiedMbps) > 0.05*cold.TotalMbps+1e-6 {
			t.Errorf("step %d: fast-path satisfied %v far from cold %v (total %v)",
				step, res.SatisfiedMbps, cold.SatisfiedMbps, cold.TotalMbps)
		}
	}
	if hits == 0 {
		t.Error("no interval rode the fast path under steady-state churn")
	}
}

func TestTunnelFingerprintSensitivity(t *testing.T) {
	mcf := &lp.MCF{
		LinkCap: []float64{100, 100, 50},
		Epsilon: 0.001,
		Commodities: []lp.Commodity{
			{Demand: 30, Tunnels: [][]int{{0, 1}, {2}}, Weights: []float64{2, 5}},
			{Demand: 40, Tunnels: [][]int{{1}}, Weights: []float64{1}},
		},
	}
	fp := tunnelFingerprint(mcf)

	// Demand and capacity drift must NOT move the fingerprint: those are the
	// fast path's job.
	mcf.Commodities[0].Demand *= 1.5
	mcf.LinkCap[2] = 80
	if tunnelFingerprint(mcf) != fp {
		t.Error("demand/capacity change moved the tunnel fingerprint")
	}
	// Structural changes must: a reweighted tunnel, a rerouted tunnel, a
	// changed commodity set.
	reweighted := tunnelFingerprint(mcf)
	mcf.Commodities[0].Weights[0] += 1
	if tunnelFingerprint(mcf) == reweighted {
		t.Error("weight change did not move the tunnel fingerprint")
	}
	rerouted := tunnelFingerprint(mcf)
	mcf.Commodities[1].Tunnels[0] = []int{0}
	if tunnelFingerprint(mcf) == rerouted {
		t.Error("link change did not move the tunnel fingerprint")
	}
	grown := tunnelFingerprint(mcf)
	mcf.Commodities = mcf.Commodities[:1]
	if tunnelFingerprint(mcf) == grown {
		t.Error("commodity removal did not move the tunnel fingerprint")
	}
}
