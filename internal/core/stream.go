package core

import (
	"sync"

	"megate/internal/topology"
	"megate/internal/traffic"
)

// StreamSink consumes stage-two results as they are produced. SolveStream
// calls Chunk from several worker goroutines concurrently; implementations
// must be safe for that. A sink that has finished with a chunk returns it to
// the pool with ReleaseChunk; chunks must not be retained afterwards.
//
// The chunk protocol, per QoS class:
//
//   - One assignment chunk per site pair, carrying the FastSSP outcome for
//     every flow of the pair (TunIdx -1 = unassigned). Pairs sharing a source
//     site arrive in ascending destination order; across source sites the
//     interleaving is arbitrary.
//   - After the last pair of a source site, a SiteDone marker for that site.
//     No further non-residual chunk for the (class, src) follows, so a sink
//     may flush per-site state eagerly.
//   - After the solve's residual pass, supplemental chunks with Residual set
//     carrying only the flows the pass newly placed. These may touch any
//     site, including ones already marked done.
//
// Every chunk is emitted before SolveStream returns.
type StreamSink interface {
	Chunk(c *StreamChunk)
}

// StreamChunk is one unit of streamed stage-two output. See StreamSink for
// the emission protocol.
type StreamChunk struct {
	Class traffic.Class
	// Pair is the site pair the chunk belongs to. On SiteDone markers only
	// Src is meaningful.
	Pair traffic.SitePair
	// SiteDone marks that every pair with source Pair.Src has been emitted
	// for Class; marker chunks carry no flows.
	SiteDone bool
	// Residual marks a supplement from the post-solve residual pass.
	Residual bool
	// FlowIdx are indices into the original matrix's Flows; TunIdx[i] is the
	// index into Tunnels of the tunnel FlowIdx[i] was assigned (-1 = none).
	FlowIdx []int32
	TunIdx  []int32
	// Tunnels is the pair's tunnel list, shared with the solver: read-only,
	// but the pointers themselves are stable and safe to retain.
	Tunnels []*topology.Tunnel
}

// chunkPool recycles StreamChunks (and their index buffers) between solver
// and sink so steady-state streaming does not allocate per pair.
var chunkPool = sync.Pool{New: func() any { return new(StreamChunk) }}

// ReleaseChunk returns a chunk to the pool once a sink is done with it.
func ReleaseChunk(c *StreamChunk) {
	c.FlowIdx = c.FlowIdx[:0]
	c.TunIdx = c.TunIdx[:0]
	c.Tunnels = nil
	c.SiteDone = false
	c.Residual = false
	chunkPool.Put(c)
}

// emitAssignChunk sends st's current assignment to the sink. flows selects a
// subset of pair-local flow positions (nil = all of them); residual tags the
// chunk as a residual-pass supplement.
func emitAssignChunk(sink StreamSink, class traffic.Class, st *pairState, residual bool, flows []int) {
	c := chunkPool.Get().(*StreamChunk)
	c.Class, c.Pair, c.Residual = class, st.pair, residual
	c.Tunnels = st.tunnels
	if flows == nil {
		for fi, origIdx := range st.flowIdx {
			c.FlowIdx = append(c.FlowIdx, int32(origIdx))
			c.TunIdx = append(c.TunIdx, int32(st.assign[fi]))
		}
	} else {
		for _, fi := range flows {
			c.FlowIdx = append(c.FlowIdx, int32(st.flowIdx[fi]))
			c.TunIdx = append(c.TunIdx, int32(st.assign[fi]))
		}
	}
	sink.Chunk(c)
}

// emitSiteDone sends the end-of-site marker for (class, src).
func emitSiteDone(sink StreamSink, class traffic.Class, src topology.SiteID) {
	c := chunkPool.Get().(*StreamChunk)
	c.Class = class
	c.Pair = traffic.SitePair{Src: src}
	c.SiteDone = true
	sink.Chunk(c)
}
