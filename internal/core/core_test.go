package core

import (
	"math"
	"testing"

	"megate/internal/lp"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// smallWorld builds a 4-site ring+chord topology with a handful of
// endpoints so optimal behaviour is easy to reason about.
func smallWorld(t *testing.T) *topology.Topology {
	t.Helper()
	topo := topology.New("small")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 100, 0)
	c := topo.AddSite("c", 100, 100)
	d := topo.AddSite("d", 0, 100)
	topo.AddBidiLink(a, b, 1000, 1, 0.999, 1)
	topo.AddBidiLink(b, c, 1000, 1, 0.999, 1)
	topo.AddBidiLink(c, d, 1000, 1, 0.999, 1)
	topo.AddBidiLink(d, a, 1000, 1, 0.999, 1)
	topo.AddBidiLink(a, c, 1000, 3, 0.999, 1)
	topology.AttachEndpointsExact(topo, 5)
	return topo
}

func flowsBetween(topo *topology.Topology, src, dst topology.SiteID, demands []float64, class traffic.Class) []traffic.Flow {
	var flows []traffic.Flow
	srcEps := topo.EndpointsAt(src)
	dstEps := topo.EndpointsAt(dst)
	for i, d := range demands {
		flows = append(flows, traffic.Flow{
			ID:  i,
			Src: srcEps[i%len(srcEps)], Dst: dstEps[i%len(dstEps)],
			Pair:       traffic.SitePair{Src: src, Dst: dst},
			DemandMbps: d,
			Class:      class,
		})
	}
	return flows
}

func TestSolveAllFitsEverythingAssigned(t *testing.T) {
	topo := smallWorld(t)
	flows := flowsBetween(topo, 0, 2, []float64{100, 200, 50}, traffic.Class2)
	m := traffic.NewMatrix(flows)
	s := NewSolver(topo, Options{})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedFraction() < 0.999 {
		t.Errorf("satisfied = %v, want ~1 (capacity is ample)", res.SatisfiedFraction())
	}
	for i, tn := range res.FlowTunnel {
		if tn == nil {
			t.Errorf("flow %d rejected despite ample capacity", i)
		}
	}
}

func TestSolveRespectsCapacity(t *testing.T) {
	topo := topology.New("bottleneck")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 100, 0)
	topo.AddBidiLink(a, b, 100, 1, 0.999, 1) // single 100 Mbps link
	topology.AttachEndpointsExact(topo, 10)
	flows := flowsBetween(topo, a, b, []float64{60, 60, 60}, traffic.Class2)
	m := traffic.NewMatrix(flows)
	s := NewSolver(topo, Options{})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	// At most one 60 Mbps flow fits on the 100 Mbps link.
	if res.SatisfiedMbps > 100 {
		t.Errorf("satisfied %v Mbps > 100 Mbps capacity", res.SatisfiedMbps)
	}
	if res.SatisfiedMbps < 60 {
		t.Errorf("satisfied %v Mbps, want >= 60 (one flow fits)", res.SatisfiedMbps)
	}
	// Verify the link-load invariant directly.
	checkLinkLoads(t, topo, m, res)
}

// checkLinkLoads asserts constraint (1a): no link over capacity.
func checkLinkLoads(t *testing.T, topo *topology.Topology, m *traffic.Matrix, res *Result) {
	t.Helper()
	loads := make([]float64, topo.NumLinks())
	for i, tn := range res.FlowTunnel {
		if tn == nil {
			continue
		}
		for _, l := range tn.Links {
			loads[l] += m.Flows[i].DemandMbps
		}
	}
	for i, load := range loads {
		if load > topo.Links[i].CapacityMbps*(1+1e-9)+1e-6 {
			t.Errorf("link %d carries %v > capacity %v", i, load, topo.Links[i].CapacityMbps)
		}
		if topo.Links[i].Down && load > 0 {
			t.Errorf("failed link %d carries %v", i, load)
		}
	}
}

func TestSolveIndivisibleFlows(t *testing.T) {
	// Constraint (1b)/(1c): each flow on at most one tunnel — structural
	// here because FlowTunnel holds a single tunnel, but the demands must
	// be fully counted (no partial placement).
	topo := smallWorld(t)
	flows := flowsBetween(topo, 0, 2, []float64{300, 300, 300, 300}, traffic.Class2)
	m := traffic.NewMatrix(flows)
	s := NewSolver(topo, Options{})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	assigned := 0.0
	for i, tn := range res.FlowTunnel {
		if tn != nil {
			assigned += m.Flows[i].DemandMbps
		}
	}
	if math.Abs(assigned-res.SatisfiedMbps) > 1e-6 {
		t.Errorf("SatisfiedMbps %v != sum of assigned demands %v", res.SatisfiedMbps, assigned)
	}
}

func TestSolveQoSPriority(t *testing.T) {
	// A 100 Mbps bottleneck with a class-1 flow and class-3 flows that
	// together exceed it: class 1 must win.
	topo := topology.New("prio")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 100, 0)
	topo.AddBidiLink(a, b, 100, 1, 0.999, 1)
	topology.AttachEndpointsExact(topo, 10)
	srcEps := topo.EndpointsAt(a)
	dstEps := topo.EndpointsAt(b)
	flows := []traffic.Flow{
		{ID: 0, Src: srcEps[0], Dst: dstEps[0], Pair: traffic.SitePair{Src: a, Dst: b}, DemandMbps: 90, Class: traffic.Class3},
		{ID: 1, Src: srcEps[1], Dst: dstEps[1], Pair: traffic.SitePair{Src: a, Dst: b}, DemandMbps: 80, Class: traffic.Class1},
	}
	m := traffic.NewMatrix(flows)
	s := NewSolver(topo, Options{SplitQoS: true})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowTunnel[1] == nil {
		t.Error("class-1 flow rejected while class-3 accepted")
	}
	if res.FlowTunnel[0] != nil {
		t.Error("class-3 flow accepted but cannot fit after class 1")
	}
}

func TestSolveClass1GetsShortTunnel(t *testing.T) {
	// Two tunnels a->b: direct (fast) and via c (slow). Class 1 demand
	// fits the direct tunnel; bulk class-3 load must not displace it.
	topo := topology.New("latency")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 100, 0)
	c := topo.AddSite("c", 50, 100)
	topo.AddBidiLink(a, b, 100, 1, 0.999, 1)  // fast, small
	topo.AddBidiLink(a, c, 1000, 5, 0.999, 1) // slow detour
	topo.AddBidiLink(c, b, 1000, 5, 0.999, 1)
	topology.AttachEndpointsExact(topo, 10)
	srcEps := topo.EndpointsAt(a)
	dstEps := topo.EndpointsAt(b)
	flows := []traffic.Flow{
		{ID: 0, Src: srcEps[0], Dst: dstEps[0], Pair: traffic.SitePair{Src: a, Dst: b}, DemandMbps: 50, Class: traffic.Class1},
		{ID: 1, Src: srcEps[1], Dst: dstEps[1], Pair: traffic.SitePair{Src: a, Dst: b}, DemandMbps: 900, Class: traffic.Class3},
		{ID: 2, Src: srcEps[2], Dst: dstEps[2], Pair: traffic.SitePair{Src: a, Dst: b}, DemandMbps: 40, Class: traffic.Class3},
	}
	m := traffic.NewMatrix(flows)
	s := NewSolver(topo, Options{SplitQoS: true})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowTunnel[0] == nil {
		t.Fatal("class-1 flow rejected")
	}
	if res.FlowTunnel[0].Weight != 2 { // 1ms there; weight includes only a->b
		if res.FlowTunnel[0].Weight > 2 {
			t.Errorf("class-1 flow on tunnel with weight %v, want the direct 1ms tunnel", res.FlowTunnel[0].Weight)
		}
	}
	checkLinkLoads(t, topo, m, res)
}

func TestSolveAvoidsFailedLinks(t *testing.T) {
	topo := smallWorld(t)
	s := NewSolver(topo, Options{})
	flows := flowsBetween(topo, 0, 1, []float64{100, 100}, traffic.Class2)
	m := traffic.NewMatrix(flows)

	res1, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res1.SatisfiedFraction() < 0.999 {
		t.Fatal("pre-failure solve should satisfy everything")
	}

	// Fail the direct a<->b link and recompute.
	topo.FailLink(0)
	s.Invalidate()
	res2, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SatisfiedFraction() < 0.999 {
		t.Errorf("post-failure satisfied = %v, want ~1 via detour", res2.SatisfiedFraction())
	}
	for i, tn := range res2.FlowTunnel {
		if tn == nil {
			continue
		}
		for _, l := range tn.Links {
			if topo.Links[l].Down {
				t.Errorf("flow %d routed over failed link %d", i, l)
			}
		}
	}
	checkLinkLoads(t, topo, m, res2)
}

func TestSolveEmptyMatrix(t *testing.T) {
	topo := smallWorld(t)
	s := NewSolver(topo, Options{})
	res, err := s.Solve(traffic.NewMatrix(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedFraction() != 1 || res.TotalMbps != 0 {
		t.Errorf("empty matrix: %+v", res)
	}
}

func TestSolveWithSimplexSiteSolver(t *testing.T) {
	topo := smallWorld(t)
	flows := flowsBetween(topo, 0, 2, []float64{100, 150}, traffic.Class2)
	m := traffic.NewMatrix(flows)
	s := NewSolver(topo, Options{SiteSolver: &lp.Simplex{}})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedFraction() < 0.999 {
		t.Errorf("satisfied = %v with exact site solver", res.SatisfiedFraction())
	}
}

func TestSolveGeneratedTrafficNearOptimal(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 10)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 50})
	s := NewSolver(topo, Options{SplitQoS: true})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedFraction() < 0.8 {
		t.Errorf("satisfied = %v, want >= 0.8 on lightly loaded B4", res.SatisfiedFraction())
	}
	checkLinkLoads(t, topo, m, res)
	if res.SiteLPTime <= 0 || res.SSPTime < 0 {
		t.Errorf("timings not recorded: lp=%v ssp=%v", res.SiteLPTime, res.SSPTime)
	}
}

func TestSolveSubsampledMatrixIndices(t *testing.T) {
	// Regression: flow IDs differ from slice indices after Subsample.
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 10)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 2}).Subsample(0.5)
	s := NewSolver(topo, Options{})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FlowTunnel) != m.NumFlows() {
		t.Fatalf("FlowTunnel size %d != flows %d", len(res.FlowTunnel), m.NumFlows())
	}
	checkLinkLoads(t, topo, m, res)
	if res.SatisfiedFraction() < 0.5 {
		t.Errorf("satisfied = %v suspiciously low", res.SatisfiedFraction())
	}
}

func TestSiteAllocationExposed(t *testing.T) {
	topo := smallWorld(t)
	flows := flowsBetween(topo, 0, 2, []float64{100}, traffic.Class2)
	m := traffic.NewMatrix(flows)
	s := NewSolver(topo, Options{SplitQoS: true})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	alloc, ok := res.SiteAllocation[traffic.Class2]
	if !ok {
		t.Fatal("no class-2 site allocation recorded")
	}
	pair := traffic.SitePair{Src: 0, Dst: 2}
	total := 0.0
	for _, f := range alloc[pair] {
		total += f
	}
	if total < 99.9 {
		t.Errorf("stage-one allocation %v, want ~100", total)
	}
}

func TestSatisfiedFractionNoDemand(t *testing.T) {
	r := &Result{}
	if r.SatisfiedFraction() != 1 {
		t.Error("no demand should mean fraction 1")
	}
}

func BenchmarkSolveB4(b *testing.B) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 100)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 500})
	s := NewSolver(topo, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveDeltacomQoS(b *testing.B) {
	topo := topology.Build("Deltacom*")
	topology.AttachEndpointsExact(topo, 10)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 800})
	s := NewSolver(topo, Options{SplitQoS: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}
