package core

import (
	"math"
	"testing"

	"megate/internal/lp"
	"megate/internal/stats"
	"megate/internal/traffic"
)

// sameAssignments asserts two results place every flow on the same tunnel
// (compared by link sequence, so results from different Solver instances can
// be compared) with identical satisfied demand.
func sameAssignments(t *testing.T, a, b *Result) {
	t.Helper()
	if a.SatisfiedMbps != b.SatisfiedMbps {
		t.Fatalf("SatisfiedMbps %v != %v", a.SatisfiedMbps, b.SatisfiedMbps)
	}
	if len(a.FlowTunnel) != len(b.FlowTunnel) {
		t.Fatalf("FlowTunnel len %d != %d", len(a.FlowTunnel), len(b.FlowTunnel))
	}
	for i := range a.FlowTunnel {
		ta, tb := a.FlowTunnel[i], b.FlowTunnel[i]
		if (ta == nil) != (tb == nil) {
			t.Fatalf("flow %d: one result rejects, the other assigns", i)
		}
		if ta == nil {
			continue
		}
		if len(ta.Links) != len(tb.Links) {
			t.Fatalf("flow %d: tunnels differ", i)
		}
		for j := range ta.Links {
			if ta.Links[j] != tb.Links[j] {
				t.Fatalf("flow %d: tunnels differ at hop %d", i, j)
			}
		}
	}
}

func TestIncrementalIdenticalMatrixBitIdentical(t *testing.T) {
	// Regression: on an unchanged matrix the warm re-solve must be exact —
	// byte-identical FlowTunnel assignments and SatisfiedMbps, both against
	// its own cold first run and against a never-incremental solver.
	topo := smallWorld(t)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 3, MeanDemandMbps: 80})
	warm := NewSolver(topo, Options{Incremental: true})
	r1, err := warm.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stage2CacheHits != 0 {
		t.Errorf("first solve reported %d cache hits", r1.Stage2CacheHits)
	}
	r2, err := warm.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.FlowTunnel {
		if r1.FlowTunnel[i] != r2.FlowTunnel[i] {
			t.Fatalf("flow %d: warm re-solve changed the assignment", i)
		}
	}
	if r1.SatisfiedMbps != r2.SatisfiedMbps {
		t.Fatalf("warm SatisfiedMbps %v != cold %v", r2.SatisfiedMbps, r1.SatisfiedMbps)
	}
	if r2.Stage2CacheHits == 0 {
		t.Error("unchanged matrix produced no stage-2 cache hits")
	}

	cold, err := NewSolver(topo, Options{}).Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	sameAssignments(t, cold, r2)
}

func TestIncrementalPerturbationProperty(t *testing.T) {
	// Property: across intervals with small random demand perturbations the
	// incremental solver stays feasible and lands within a few percent of a
	// cold solve of the same matrix.
	topo := smallWorld(t)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 5, MeanDemandMbps: 60})
	warm := NewSolver(topo, Options{Incremental: true, SplitQoS: true})
	r := stats.NewRand(11)
	for step := 0; step < 6; step++ {
		if step > 0 {
			for i := range m.Flows {
				if r.Float64() < 0.05 {
					m.Flows[i].DemandMbps *= 0.9 + 0.2*r.Float64()
				}
			}
		}
		res, err := warm.Solve(m)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkLinkLoads(t, topo, m, res)
		cold, err := NewSolver(topo, Options{SplitQoS: true}).Solve(m)
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		if math.Abs(res.SatisfiedMbps-cold.SatisfiedMbps) > 0.05*cold.TotalMbps+1e-6 {
			t.Errorf("step %d: warm satisfied %v far from cold %v (total %v)",
				step, res.SatisfiedMbps, cold.SatisfiedMbps, cold.TotalMbps)
		}
	}
}

func TestIncrementalRecomputesChangedPairs(t *testing.T) {
	topo := smallWorld(t)
	f1 := flowsBetween(topo, 0, 2, []float64{50, 60}, traffic.Class2)
	f2 := flowsBetween(topo, 1, 3, []float64{70, 80}, traffic.Class2)
	for i := range f2 {
		f2[i].ID = 100 + i
	}
	m := traffic.NewMatrix(append(f1, f2...))
	s := NewSolver(topo, Options{Incremental: true})
	if _, err := s.Solve(m); err != nil {
		t.Fatal(err)
	}
	r2, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stage2CacheHits != 2 {
		t.Errorf("unchanged re-solve: hits = %d, want 2", r2.Stage2CacheHits)
	}

	// Change one pair's demand: that pair must be recomputed.
	m.Flows[0].DemandMbps = 55
	r3, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stage2CacheHits > 1 {
		t.Errorf("changed pair reused from cache: hits = %d", r3.Stage2CacheHits)
	}
	checkLinkLoads(t, topo, m, r3)

	// Invalidate drops all carried state.
	s.Invalidate()
	r4, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Stage2CacheHits != 0 {
		t.Errorf("post-Invalidate solve reported %d hits", r4.Stage2CacheHits)
	}
}

func TestIncrementalWithNonWarmSolverFallsBack(t *testing.T) {
	// A SiteSolver without SolveMCFBasis still works under Incremental; the
	// stage-two cache alone carries over.
	topo := smallWorld(t)
	flows := flowsBetween(topo, 0, 2, []float64{100, 200, 50}, traffic.Class2)
	m := traffic.NewMatrix(flows)
	s := NewSolver(topo, Options{
		Incremental: true,
		SiteSolver:  &lp.FleischerMCF{Epsilon: 0.05},
	})
	if _, err := s.Solve(m); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	checkLinkLoads(t, topo, m, res)
	if res.Stage2CacheHits == 0 {
		t.Error("stage-2 cache should hit even without a warm-startable LP")
	}
}
