package core

import (
	"math"
	"sync"

	"megate/internal/lp"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// WarmStartSolver is an optional extension of SiteSolver for solvers that
// can seed one interval's solve with the previous interval's final basis.
// lp.GUBSimplex and lp.AutoMCF implement it; when Options.Incremental is set
// and the configured SiteSolver supports it, the stage-one LP of interval
// t+1 starts from the optimal basis of interval t.
type WarmStartSolver interface {
	SolveMCFBasis(p *lp.MCF, warm *lp.Basis) (lp.Allocation, *lp.Basis, error)
}

// pairKey identifies one stage-two cache entry: results are cached per QoS
// class and site pair.
type pairKey struct {
	class traffic.Class
	pair  traffic.SitePair
}

// pairCacheEntry is one pair's stage-two outcome from the previous interval:
// the fingerprint of everything the computation depended on and the
// positional assignment (per flow: tunnel index or -1) it produced, captured
// before the residual pass.
type pairCacheEntry struct {
	fingerprint uint64
	assign      []int
}

// incrementalState is the solver state carried across consecutive Solve
// calls when Options.Incremental or Options.FastPath is set.
type incrementalState struct {
	basis map[traffic.Class]*lp.Basis
	pairs map[pairKey]*pairCacheEntry
	fast  map[traffic.Class]*fastPathState
}

func newIncrementalState() *incrementalState {
	return &incrementalState{
		basis: make(map[traffic.Class]*lp.Basis),
		pairs: make(map[pairKey]*pairCacheEntry),
		fast:  make(map[traffic.Class]*fastPathState),
	}
}

func (st *incrementalState) reset() {
	st.basis = make(map[traffic.Class]*lp.Basis)
	st.pairs = make(map[pairKey]*pairCacheEntry)
	st.fast = make(map[traffic.Class]*fastPathState)
}

// solveSite runs stage one. With Options.FastPath set it first tries the
// certificate-gated fast path (drift reallocation, then a warm ADMM sweep);
// a cold start, topology churn, or certificate failure falls through to the
// slow path below, whose result — and, from a DualSolver, link duals — reseed
// the fast path for the next interval.
//
// The slow path threads the previous interval's basis through the solver
// when incremental mode is on and the solver supports it. A solve that comes
// back without a basis (e.g. AutoMCF's approximate fallback) clears the
// stored one so a stale basis is never offered later.
func (s *Solver) solveSite(class traffic.Class, mcf *lp.MCF, res *Result) (lp.Allocation, error) {
	if s.opts.FastPath {
		if alloc, cert, outcome := s.tryFastPath(class, mcf); outcome == fastPathDrift || outcome == fastPathADMM {
			recordFastPath(res, cert, outcome)
			return alloc, nil
		} else {
			// A miss (cold start, churn, or certificate rejection) counts as
			// a fallback; its gap is reported by the slow path's own
			// certificate below, not by the rejected candidate's.
			recordFastPath(res, lp.Certificate{}, outcome)
		}
	}

	var warm *lp.Basis
	if s.opts.Incremental {
		warm = s.inc.basis[class]
	}
	useWarm := func(basis *lp.Basis) {
		if !s.opts.Incremental {
			return
		}
		if basis != nil {
			s.inc.basis[class] = basis
		} else {
			delete(s.inc.basis, class)
		}
	}

	if ds, ok := s.opts.SiteSolver.(DualSolver); ok && (s.opts.Incremental || s.opts.FastPath) {
		alloc, basis, pi, err := ds.SolveMCFBasisDual(mcf, warm)
		if err != nil {
			return nil, err
		}
		useWarm(basis)
		if s.opts.FastPath {
			// The exact path emits the same certificate shape as the fast
			// path; its gap is ~0 with exact duals, looser after an
			// approximate fallback (pi == nil).
			cert := lp.EvaluateCertificate(mcf, alloc, s.opts.FastPathTolerance, pi)
			if cert.Gap > res.OptimalityGap {
				res.OptimalityGap = cert.Gap
			}
			s.storeFastPath(class, alloc, mcf, pi, tunnelFingerprint(mcf))
		}
		return alloc, nil
	}
	if s.opts.Incremental {
		if ws, ok := s.opts.SiteSolver.(WarmStartSolver); ok {
			alloc, basis, err := ws.SolveMCFBasis(mcf, warm)
			if err != nil {
				return nil, err
			}
			useWarm(basis)
			return alloc, nil
		}
	}
	alloc, err := s.opts.SiteSolver.SolveMCF(mcf)
	if err != nil {
		return nil, err
	}
	if s.opts.FastPath {
		// Custom solver without duals: certificate from the zero-price
		// bound only, but the allocation still seeds the next drift step.
		cert := lp.EvaluateCertificate(mcf, alloc, s.opts.FastPathTolerance)
		if cert.Gap > res.OptimalityGap {
			res.OptimalityGap = cert.Gap
		}
		s.storeFastPath(class, alloc, mcf, nil, tunnelFingerprint(mcf))
	}
	return alloc, nil
}

// fingerprint hashes everything stage two reads for one pair — the demand
// vector, the stage-one allocation F_{k,t}, the class weights, and the
// tunnel link sets — with FNV-1a over the raw float bits. Any change to any
// input (including a rerouted tunnel after a link failure) changes the hash
// and forces a recompute; only a bit-identical input reuses a cached result.
func (st *pairState) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(st.demands)))
	for _, d := range st.demands {
		mix(math.Float64bits(d))
	}
	mix(uint64(len(st.alloc)))
	for _, a := range st.alloc {
		mix(math.Float64bits(a))
	}
	for _, w := range st.weights {
		mix(math.Float64bits(w))
	}
	mix(uint64(len(st.tunnels)))
	for _, tn := range st.tunnels {
		mix(uint64(len(tn.Links)))
		for _, l := range tn.Links {
			mix(uint64(l))
		}
	}
	// Tier bounds participate only when present: a policy-free pair hashes
	// exactly as before, so incremental behavior on the default path is
	// untouched, while annotating (or de-annotating) a pair forces a
	// recompute.
	if st.tiers != nil {
		mix(uint64(len(st.tiers)) | 1<<63)
		for _, b := range st.tiers {
			mix(uint64(int64(b)))
		}
		for _, r := range st.ttier {
			mix(uint64(r))
		}
	}
	return h
}

// siteWorker maps a source site to its owning stage-two worker. All pairs
// sharing a source site solve on one worker, in ascending destination order,
// which is what makes SiteDone markers exact: when the worker passes the end
// of a site's run, every chunk for that site has already been emitted. The
// multiplicative hash spreads dense sequential site IDs evenly.
func siteWorker(site topology.SiteID, workers int) int {
	h := uint64(site) * 0x9e3779b97f4a7c15
	return int(h>>33) % workers
}

// stageTwo fills each state's assign vector (per flow: tunnel index or -1)
// and, when sink is non-nil, streams per-pair chunks plus SiteDone markers
// as the site-keyed worker pool produces them. In incremental mode, pairs
// whose fingerprint matches the previous interval copy the cached assignment
// into st.assign instead of re-running FastSSP (copied: the residual pass
// mutates assign in place) — cache-hit pairs still emit chunks, downstream
// deduplication is the publisher's delta layer. Returns the number of cache
// hits.
func (s *Solver) stageTwo(class traffic.Class, states []*pairState, sink StreamSink) int {
	hits := 0
	var fps []uint64
	hit := make([]bool, len(states))
	if s.opts.Incremental {
		fps = make([]uint64, len(states))
		for si, st := range states {
			fps[si] = st.fingerprint()
			e, ok := s.inc.pairs[pairKey{class, st.pair}]
			if ok && e.fingerprint == fps[si] && len(e.assign) == len(st.demands) {
				copy(st.assign, e.assign)
				hit[si] = true
				hits++
			}
		}
	}

	// states arrive sorted by (src, dst), so pairs sharing a source site
	// form contiguous runs. Each run belongs to exactly one worker.
	type siteRun struct{ lo, hi int }
	runs := make([]siteRun, 0, len(states))
	for lo := 0; lo < len(states); {
		hi := lo + 1
		for hi < len(states) && states[hi].pair.Src == states[lo].pair.Src {
			hi++
		}
		runs = append(runs, siteRun{lo, hi})
		lo = hi
	}

	workers := s.opts.Workers
	if workers > len(runs) {
		workers = len(runs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := s.newWorkerScratch()
			for _, run := range runs {
				if siteWorker(states[run.lo].pair.Src, workers) != w {
					continue
				}
				for si := run.lo; si < run.hi; si++ {
					if !hit[si] {
						s.maxEndpointFlow(states[si], ws)
					}
					if sink != nil {
						emitAssignChunk(sink, class, states[si], false, nil)
					}
				}
				if sink != nil {
					emitSiteDone(sink, class, states[run.lo].pair.Src)
				}
			}
		}(w)
	}
	wg.Wait()

	if s.opts.Incremental {
		seen := make(map[traffic.SitePair]bool, len(states))
		for si, st := range states {
			seen[st.pair] = true
			e := s.inc.pairs[pairKey{class, st.pair}]
			if e == nil {
				e = &pairCacheEntry{}
				s.inc.pairs[pairKey{class, st.pair}] = e
			}
			e.fingerprint = fps[si]
			e.assign = append(e.assign[:0], st.assign...)
		}
		// Drop entries for pairs that no longer exist in this class.
		for k := range s.inc.pairs {
			if k.class == class && !seen[k.pair] {
				delete(s.inc.pairs, k)
			}
		}
	}
	return hits
}
