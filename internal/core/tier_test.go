package core

import (
	"testing"

	"megate/internal/topology"
	"megate/internal/traffic"
)

// tierWorld builds a→b with three paths whose availability ordering is the
// opposite of their latency ordering: the direct link is lightest but least
// reliable, the via-c detour is the most reliable (tier 0), via-d sits in
// between (tier 1). An unconstrained solver prefers the direct tunnel; only
// the tier bound moves a flow onto the reliable detour.
func tierWorld(t *testing.T) *topology.Topology {
	t.Helper()
	topo := topology.New("tiers")
	a := topo.AddSite("a", 0, 0)
	b := topo.AddSite("b", 100, 0)
	c := topo.AddSite("c", 50, 100)
	d := topo.AddSite("d", 50, -100)
	topo.AddBidiLink(a, b, 500, 1, 0.97, 1)    // links 0,1: light, unreliable
	topo.AddBidiLink(a, c, 1000, 5, 0.9999, 1) // links 2,3
	topo.AddBidiLink(c, b, 1000, 5, 0.9999, 1) // links 4,5: via-c ≈ 0.9998
	topo.AddBidiLink(a, d, 1000, 4, 0.999, 1)  // links 6,7
	topo.AddBidiLink(d, b, 1000, 4, 0.999, 1)  // links 8,9: via-d ≈ 0.998
	topology.AttachEndpointsExact(topo, 5)
	return topo
}

// assignedTier returns the tier of the tunnel a flow landed on within its
// pair's tunnel set, or -1 when the flow was rejected.
func assignedTier(topo *topology.Topology, res *Result, pair traffic.SitePair, flow int) int {
	tn := res.FlowTunnel[flow]
	if tn == nil {
		return -1
	}
	return FlowTier(res.Tunnels[pair], tn, topo)
}

func TestTierFilteredSelection(t *testing.T) {
	topo := tierWorld(t)
	pair := traffic.SitePair{Src: 0, Dst: 1}
	srcEps := topo.EndpointsAt(0)
	dstEps := topo.EndpointsAt(1)
	flows := []traffic.Flow{
		{ID: 0, Src: srcEps[0], Dst: dstEps[0], Pair: pair, DemandMbps: 50, Class: traffic.Class1, App: "financial-payment"},
		{ID: 1, Src: srcEps[1], Dst: dstEps[1], Pair: pair, DemandMbps: 50, Class: traffic.Class1, App: "online-gaming"},
	}
	pt := traffic.NewPolicyTable()
	pt.Set("financial-payment", traffic.ServicePolicy{Class: traffic.Class1, Tier: 0})
	m := pt.Apply(traffic.NewMatrix(flows))

	s := NewSolver(topo, Options{SplitQoS: true})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowTunnel[0] == nil {
		t.Fatal("tier-0 payment flow rejected despite ample tier-0 capacity")
	}
	if tier := assignedTier(topo, res, pair, 0); tier != 0 {
		t.Errorf("payment flow on tier-%d tunnel %v, want tier 0", tier, res.FlowTunnel[0].Sites)
	}
	// The unannotated flow keeps the unconstrained preference: the light
	// direct tunnel (a→b, two sites on the path).
	if res.FlowTunnel[1] == nil || len(res.FlowTunnel[1].Sites) != 2 {
		t.Errorf("unannotated flow moved off the direct tunnel: %+v", res.FlowTunnel[1])
	}

	// Fail the a→c link: via-c disappears from the re-established tunnel
	// set and via-d becomes the new tier 0. The bound must follow the
	// re-ranking — the payment flow lands on via-d, never on the direct
	// (now lowest-tier) tunnel.
	topo.FailLink(2)
	s.Invalidate()
	res2, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FlowTunnel[0] == nil {
		t.Fatal("tier-0 payment flow rejected after link failure")
	}
	if tier := assignedTier(topo, res2, pair, 0); tier != 0 {
		t.Errorf("post-failure payment flow on tier-%d tunnel %v, want the re-ranked tier 0", tier, res2.FlowTunnel[0].Sites)
	}
	for _, l := range res2.FlowTunnel[0].Links {
		if topo.Links[l].Down {
			t.Errorf("payment flow routed over failed link %d", l)
		}
	}
	if len(res2.FlowTunnel[0].Sites) == 2 {
		t.Errorf("payment flow fell back to the unreliable direct tunnel")
	}
}

// TestTierBoundNeverViolated hammers the invariant over generated traffic:
// an annotated flow either lands on a tunnel within its tier bound or is
// rejected — it is never silently placed above the bound, including by the
// residual pass.
func TestTierBoundNeverViolated(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 20)
	m0 := traffic.Generate(topo, traffic.GenOptions{Seed: 7, MeanDemandMbps: 50, Apps: traffic.ProductionApps})
	pt := traffic.NewPolicyTable()
	pt.Set("financial-payment", traffic.ServicePolicy{Tier: 0})
	pt.Set("realtime-message", traffic.ServicePolicy{Tier: 1})
	m := pt.Apply(m0)

	s := NewSolver(topo, Options{SplitQoS: true})
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Flows {
		bound, ok := pt.TierBound(m.Flows[i].App)
		if !ok || res.FlowTunnel[i] == nil {
			continue
		}
		if tier := assignedTier(topo, res, m.Flows[i].Pair, i); tier > bound {
			t.Errorf("flow %d (%s) on tier-%d tunnel, bound %d", i, m.Flows[i].App, tier, bound)
		}
	}
}

// TestNoPolicyBitIdentical is the strictly-additive guarantee: with no tier
// bounds in play the solver's output is bit-identical to a policy-free
// solve — whether the matrix carries no table, a table with only
// unrestricted annotations, or bounds on apps absent from the matrix.
func TestNoPolicyBitIdentical(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 20)
	base := traffic.Generate(topo, traffic.GenOptions{Seed: 11, MeanDemandMbps: 40, Apps: traffic.ProductionApps})

	solve := func(m *traffic.Matrix) *Result {
		s := NewSolver(topo, Options{SplitQoS: true})
		res, err := s.Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := solve(base)

	unrestricted := traffic.NewPolicyTable()
	unrestricted.Set("bulk-transfer", traffic.ServicePolicy{Tier: -1, MinPrio: 0})
	absent := traffic.NewPolicyTable()
	absent.Set("no-such-app", traffic.ServicePolicy{Tier: 0})

	for name, m := range map[string]*traffic.Matrix{
		"unrestricted-table": unrestricted.Apply(base),
		"absent-app-bounds":  absent.Apply(base),
	} {
		got := solve(m)
		if got.SatisfiedMbps != ref.SatisfiedMbps {
			t.Errorf("%s: SatisfiedMbps %v != %v", name, got.SatisfiedMbps, ref.SatisfiedMbps)
		}
		for i := range ref.FlowTunnel {
			a, b := ref.FlowTunnel[i], got.FlowTunnel[i]
			if (a == nil) != (b == nil) {
				t.Fatalf("%s: flow %d assignment differs (nil mismatch)", name, i)
			}
			if a == nil {
				continue
			}
			if len(a.Sites) != len(b.Sites) {
				t.Fatalf("%s: flow %d path length differs", name, i)
			}
			for j := range a.Sites {
				if a.Sites[j] != b.Sites[j] {
					t.Fatalf("%s: flow %d path differs at hop %d", name, i, j)
				}
			}
		}
	}
}
