package core

import (
	"testing"

	"megate/internal/topology"
	"megate/internal/traffic"
)

// benchPairState builds a synthetic pair in the shape the megascale pipeline
// sees: a few hundred flows with a heavy tail, four tunnels with stage-one
// budgets covering ~70% of demand so every tunnel runs a real FastSSP.
func benchPairState(nFlows int) *pairState {
	st := &pairState{
		pair:    traffic.SitePair{Src: 1, Dst: 2},
		flowIdx: make([]int, nFlows),
		demands: make([]float64, nFlows),
		assign:  make([]int, nFlows),
	}
	total := 0.0
	for i := 0; i < nFlows; i++ {
		st.flowIdx[i] = i
		if i%19 == 0 {
			st.demands[i] = 90 + float64(i%11)*4
		} else {
			st.demands[i] = 0.4 + float64(i%17)*0.6
		}
		total += st.demands[i]
	}
	nTunnels := 4
	st.tunnels = make([]*topology.Tunnel, nTunnels)
	st.weights = make([]float64, nTunnels)
	st.alloc = make([]float64, nTunnels)
	for t := 0; t < nTunnels; t++ {
		st.tunnels[t] = &topology.Tunnel{Weight: float64(1 + t)}
		st.weights[t] = float64(1 + t)
		st.alloc[t] = total * 0.7 / float64(nTunnels)
	}
	return st
}

// TestStage2PairZeroAlloc gates the steady-state per-pair stage-two path at
// zero heap allocations: with a warm workerScratch, maxEndpointFlow must not
// allocate. This is the contract the megascale interval budget rests on —
// a million pairs per interval cannot afford GC churn.
func TestStage2PairZeroAlloc(t *testing.T) {
	s := NewSolver(topology.New("zeroalloc"), Options{})
	st := benchPairState(384)
	ws := s.newWorkerScratch()
	s.maxEndpointFlow(st, ws) // warm every buffer
	if n := testing.AllocsPerRun(100, func() {
		s.maxEndpointFlow(st, ws)
	}); n != 0 {
		t.Errorf("maxEndpointFlow: %v allocs/op with warm scratch, want 0", n)
	}
}

// BenchmarkStage2Pair is the per-pair hot path benchmark verify.sh gates
// with -benchmem (want 0 allocs/op).
func BenchmarkStage2Pair(b *testing.B) {
	s := NewSolver(topology.New("bench"), Options{})
	st := benchPairState(384)
	ws := s.newWorkerScratch()
	s.maxEndpointFlow(st, ws)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.maxEndpointFlow(st, ws)
	}
}
