package core

import (
	"megate/internal/topology"
	"megate/internal/traffic"
)

// Tunnel tiers: within one site pair, tunnels are ranked by end-to-end
// availability (the product of link availabilities, §7's reliability signal)
// — tier 0 is the pair's most reliable tunnel, tier 1 the next, and so on.
// Service policies pin flows to a maximum tier: a `payment.secure → tier-0`
// annotation restricts the flow's stage-two candidate set to the pair's
// tier-0 tunnel only, no matter how the stage-one LP split F_{k,t}. The
// ranking is recomputed per interval from the live tunnel set, so after a
// link failure re-establishes tunnels the new most-reliable path is tier 0
// and a tier-0 flow always has a candidate.

// tunnelTiers ranks tns by availability descending, ties broken by ascending
// weight then index so the ranking is deterministic. out[i] is the tier of
// tns[i]; out is reused when it has capacity.
func tunnelTiers(out []int, tns []*topology.Tunnel, topo *topology.Topology) []int {
	out = sized(out, len(tns))
	avail := make([]float64, len(tns))
	for i, tn := range tns {
		avail[i] = tn.Availability(topo)
	}
	ord := make([]int, len(tns))
	for i := range ord {
		ord[i] = i
	}
	// Insertion sort — tunnel counts are single-digit.
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0; j-- {
			a, b := ord[j-1], ord[j]
			if tierLess(a, b, avail, tns) {
				break
			}
			ord[j-1], ord[j] = b, a
		}
	}
	for rank, i := range ord {
		out[i] = rank
	}
	return out
}

// tierLess orders tunnel a before tunnel b in the tier ranking: higher
// availability first, then lighter weight, then lower index.
func tierLess(a, b int, avail []float64, tns []*topology.Tunnel) bool {
	if avail[a] > avail[b] {
		return true
	}
	if avail[a] < avail[b] {
		return false
	}
	if tns[a].Weight < tns[b].Weight {
		return true
	}
	if tns[b].Weight < tns[a].Weight {
		return false
	}
	return a < b
}

// applyTierBounds attaches per-flow tier bounds and per-tunnel tier ranks to
// a pair state. Pairs where no flow is annotated keep nil tier data and take
// the default stage-two path bit-identically; idxs are the pair's indices
// into sub.Flows, aligned with st.demands.
func (s *Solver) applyTierBounds(st *pairState, sub *traffic.Matrix, idxs []int) {
	any := false
	for _, idx := range idxs {
		if _, ok := sub.Policies.TierBound(sub.Flows[idx].App); ok {
			any = true
			break
		}
	}
	if !any {
		st.tiers, st.ttier = nil, nil
		return
	}
	st.tiers = sized(st.tiers, len(idxs))
	for i, idx := range idxs {
		if b, ok := sub.Policies.TierBound(sub.Flows[idx].App); ok {
			st.tiers[i] = b
		} else {
			st.tiers[i] = -1
		}
	}
	st.ttier = tunnelTiers(st.ttier, st.tunnels, s.topo)
}

// allows reports whether the pair-local flow fi may ride tunnel t under the
// pair's tier bounds; always true when the pair carries no tier data.
func (st *pairState) allows(fi, t int) bool {
	if st.tiers == nil {
		return true
	}
	b := st.tiers[fi]
	return b < 0 || st.ttier[t] <= b
}

// TunnelTiers returns the tier rank of each tunnel in tns (tier 0 = most
// reliable), the ranking BuildConfigs stamps into published path entries.
func TunnelTiers(tns []*topology.Tunnel, topo *topology.Topology) []int {
	return tunnelTiers(nil, tns, topo)
}

// FlowTier returns the tier of the tunnel a flow was assigned within its
// pair's tunnel list, for publication into host path maps: 0 when the list
// or tunnel is unknown.
func FlowTier(tns []*topology.Tunnel, tn *topology.Tunnel, topo *topology.Topology) int {
	tiers := tunnelTiers(nil, tns, topo)
	for i, t := range tns {
		if t == tn {
			return tiers[i]
		}
	}
	return 0
}

// maxEndpointFlowTiered is maxEndpointFlow for pairs with tier bounds: per
// tunnel, the eligible subset of still-unassigned flows is compacted before
// FastSSP so a bounded flow is never offered a tunnel above its tier.
func (s *Solver) maxEndpointFlowTiered(st *pairState, ws *workerScratch) {
	assign := st.assign
	for i := range assign {
		assign[i] = -1
	}
	if len(st.tunnels) == 0 {
		return
	}
	ws.order = sized(ws.order, len(st.tunnels))
	order := ws.order
	for i := range order {
		order[i] = i
	}
	sortIdxByWeightAsc(order, st.weights)

	ws.unassigned = sized(ws.unassigned, len(st.demands))
	unassigned := ws.unassigned
	for i := range unassigned {
		unassigned[i] = i
	}
	n := len(unassigned)
	ws.values = sized(ws.values, len(st.demands))
	ws.selected = sized(ws.selected, len(st.demands))
	ws.eligible = sized(ws.eligible, len(st.demands))
	for _, t := range order {
		if n == 0 {
			break
		}
		budget := st.alloc[t]
		if budget <= 0 {
			continue
		}
		// Compact the flows this tunnel's tier admits.
		elig := ws.eligible[:n]
		values := ws.values[:n]
		ne := 0
		for j := 0; j < n; j++ {
			if !st.allows(unassigned[j], t) {
				continue
			}
			elig[ne] = j
			values[ne] = st.demands[unassigned[j]]
			ne++
		}
		if ne == 0 {
			continue
		}
		selected := ws.selected[:ne]
		ws.solver.SolveInto(values[:ne], budget, &ws.ssp, selected)
		// Commit selections and compact survivors in place; e walks the
		// eligible positions in lockstep with j.
		keep, e := 0, 0
		for j := 0; j < n; j++ {
			fi := unassigned[j]
			if e < ne && elig[e] == j {
				if selected[e] {
					assign[fi] = t
				} else {
					unassigned[keep] = fi
					keep++
				}
				e++
			} else {
				unassigned[keep] = fi
				keep++
			}
		}
		n = keep
	}
}
