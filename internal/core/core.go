// Package core implements MegaTE's control-plane optimizer (§4): the
// MaxAllFlow problem over millions of indivisible endpoint flows, solved by
// the two-stage contraction of Algorithm 1.
//
// Stage one (MaxSiteFlow) merges endpoint demands per site pair and solves
// the resulting multi-commodity flow LP over the contracted site graph.
// Stage two (MaxEndpointFlow) distributes each site pair's per-tunnel
// bandwidth F_{k,t} back to individual endpoint flows by solving a sequence
// of subset-sum problems with FastSSP, tunnels in ascending weight order,
// independently (and in parallel) across site pairs.
//
// Traffic is allocated per QoS class in priority order, each class consuming
// the link capacity left by the classes above it (§4.1).
//
// At megascale the solver doubles as a pipeline source: SolveStream shards
// stage two across a site-keyed worker pool and streams per-pair
// assignments to a StreamSink as they complete, so config publication can
// overlap the solve instead of following it. The per-pair path is
// allocation-free in steady state — every buffer it touches (pairState
// slices, worker scratch, ssp.Scratch) is pooled across intervals and gated
// at 0 allocs/op by BenchmarkStage2Pair.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"megate/internal/lp"
	"megate/internal/ssp"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// SiteSolver solves the stage-one MCF. lp.Simplex, lp.FleischerMCF and
// lp.ADMM all satisfy it.
type SiteSolver interface {
	SolveMCF(p *lp.MCF) (lp.Allocation, error)
}

// Options configures the two-stage solver.
type Options struct {
	// TunnelsPerPair is |T_k|, the number of pre-established tunnels per
	// site pair. Default 4.
	TunnelsPerPair int
	// Epsilon is the shorter-path preference of objective (1). When zero, a
	// safe value is derived from the maximum tunnel weight.
	Epsilon float64
	// FastSSPEpsilon is ε′ of Appendix A.2. Default 0.1.
	FastSSPEpsilon float64
	// SiteSolver solves MaxSiteFlow; the default (lp.AutoMCF) uses the
	// exact GUB simplex up to a few thousand site pairs and the (1−ε)
	// Fleischer approximation beyond.
	SiteSolver SiteSolver
	// Workers bounds stage-two parallelism; default GOMAXPROCS.
	Workers int
	// SplitQoS allocates QoS classes sequentially in priority order (§4.1).
	// When false, all traffic is solved as a single class.
	SplitQoS bool
	// DisableResidualPass turns off the work-conserving step that places
	// still-unassigned flows onto tunnels with leftover link capacity after
	// FastSSP (used by ablation benchmarks). The pass recovers the budget
	// quantization loss inherent to indivisible flows.
	DisableResidualPass bool
	// Incremental carries solver state across consecutive Solve calls: the
	// stage-one simplex basis warm-starts the next interval's LP (when
	// SiteSolver implements WarmStartSolver), and site pairs whose stage-two
	// inputs are bit-identical to the previous interval reuse their cached
	// assignment instead of re-running FastSSP. Outputs are unchanged —
	// identical inputs give identical results, perturbed inputs are re-solved
	// — only repeated-solve latency drops. Invalidate drops the carried
	// state; call it after topology changes.
	Incremental bool
	// FastPath enables the certificate-gated stage-1 fast path: each
	// interval is first served by drift reallocation from the previous
	// accepted allocation (then a warm fixed-budget ADMM sweep), and the
	// exact simplex runs only on topology churn or when the weak-duality
	// certificate rejects the candidate. Result.FastPathHits/Fallbacks and
	// OptimalityGap report the routing. Combine with Incremental: unchanged
	// commodities keep bit-identical allocations, so the stage-2 pair cache
	// keeps hitting across fast intervals.
	FastPath bool
	// FastPathTolerance is the certified relative optimality gap the fast
	// path may accept; default 0.01 (1%).
	FastPathTolerance float64
	// FastPathDriftThreshold is the relative per-commodity demand change
	// beyond which the drift handler rebuilds the commodity's allocation
	// instead of topping it up in place; default 0.05.
	FastPathDriftThreshold float64
	// ClassPolicy, when set, supplies the tunnel weight w_t used for a QoS
	// class instead of the tunnel's latency — e.g. penalizing low
	// availability for class 1 or weighting by carriage cost for class 3,
	// the per-class path policies behind the production results of §7.
	// Class 0 is passed for single-class solves.
	ClassPolicy func(class traffic.Class, tn *topology.Tunnel, topo *topology.Topology) float64
}

func (o Options) withDefaults() Options {
	if o.TunnelsPerPair == 0 {
		o.TunnelsPerPair = 4
	}
	if o.FastSSPEpsilon == 0 {
		o.FastSSPEpsilon = 0.1
	}
	if o.SiteSolver == nil {
		// Exact GUB simplex at moderate scale, (1−ε) Fleischer beyond.
		o.SiteSolver = &lp.AutoMCF{}
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.FastPathTolerance <= 0 {
		o.FastPathTolerance = 0.01
	}
	if o.FastPathDriftThreshold <= 0 {
		o.FastPathDriftThreshold = 0.05
	}
	return o
}

// Result is the output of a two-stage solve.
type Result struct {
	// FlowTunnel[i] is, for matrix flow index i, the tunnel the flow was
	// assigned to (f_{k,t}^i = 1), or nil when the flow was rejected.
	FlowTunnel []*topology.Tunnel
	// Tunnels records the pre-established tunnel set per site pair.
	Tunnels map[traffic.SitePair][]*topology.Tunnel
	// SatisfiedMbps and TotalMbps give the satisfied-demand ratio the
	// evaluation reports (Figure 10).
	SatisfiedMbps float64
	TotalMbps     float64
	// SiteMergeTime, SiteLPTime and SSPTime break down where solve time
	// went: cross-site demand aggregation (SiteMerge), the site-level LP
	// (MaxSiteFlow), and per-flow path assignment (FastSSP).
	SiteMergeTime time.Duration
	SiteLPTime    time.Duration
	SSPTime       time.Duration
	// SiteAllocation exposes the stage-one F_{k,t} values per class for
	// inspection and tests, keyed by pair then tunnel index.
	SiteAllocation map[traffic.Class]map[traffic.SitePair][]float64
	// Stage2CacheHits counts site pairs whose stage-two assignment was
	// reused from the previous interval (Options.Incremental); 0 otherwise.
	Stage2CacheHits int
	// FastPathHits and FastPathFallbacks count the per-class stage-1 solves
	// served by the certificate-gated fast path vs those that fell back to
	// the exact simplex (cold start, topology churn, or certificate
	// rejection). Both zero unless Options.FastPath is set.
	FastPathHits      int
	FastPathFallbacks int
	// OptimalityGap is the largest certified relative duality gap across the
	// interval's class solves — an upper bound on how far the published
	// stage-1 allocations are from optimal (~0 on exact intervals, at most
	// Options.FastPathTolerance on accepted fast-path intervals).
	OptimalityGap float64
}

// FastPathHit reports that every class solve of the interval was served by
// the fast path.
func (r *Result) FastPathHit() bool {
	return r.FastPathHits > 0 && r.FastPathFallbacks == 0
}

// SatisfiedFraction returns satisfied/total demand, 1 when there is no
// demand.
func (r *Result) SatisfiedFraction() float64 {
	if r.TotalMbps == 0 {
		return 1
	}
	return r.SatisfiedMbps / r.TotalMbps
}

// Solver runs MegaTE's two-stage optimization over one topology. It reuses
// per-pair and index buffers across Solve calls, so a Solver is
// single-writer: concurrent Solve/SolveStream calls on one Solver are not
// allowed (concurrent solves want separate Solvers anyway — they would fight
// over the same residual capacities).
type Solver struct {
	opts Options
	topo *topology.Topology
	ts   *topology.TunnelSet
	inc  *incrementalState

	// Steady-state buffer reuse across intervals (the megascale pipeline's
	// zero-alloc contract): pooled per-(class,pair) states, the flow-ID
	// index map for non-identity matrices, and previous-interval map sizes
	// for pre-sizing Result.
	pairStates  map[pairKey]*pairState
	idIdx       map[int]int
	gen         uint64
	prevTunnels int
}

// NewSolver creates a solver for the topology. The tunnel set is computed
// lazily per site pair and cached until Invalidate.
func NewSolver(topo *topology.Topology, opts Options) *Solver {
	o := opts.withDefaults()
	return &Solver{
		opts:       o,
		topo:       topo,
		ts:         topology.NewTunnelSet(topo, o.TunnelsPerPair),
		inc:        newIncrementalState(),
		pairStates: make(map[pairKey]*pairState),
	}
}

// Invalidate drops cached tunnels and any incremental warm-start state; call
// after topology changes such as link failures (§6.3) so recomputation sees
// the altered graph.
func (s *Solver) Invalidate() {
	s.ts.Invalidate()
	s.inc.reset()
}

// Topology returns the solver's topology.
func (s *Solver) Topology() *topology.Topology { return s.topo }

// Solve runs Algorithm 1 (per QoS class when SplitQoS is set) over the
// matrix and returns per-flow tunnel assignments.
func (s *Solver) Solve(m *traffic.Matrix) (*Result, error) {
	return s.SolveStream(m, nil)
}

// SolveStream is Solve with streaming stage-two output: as each site pair's
// MaxEndpointFlow completes, its assignment is pushed into sink (see
// StreamSink for the chunk protocol), letting downstream config publication
// overlap the solve. The returned Result is identical to Solve's — the
// stream is a prefix view of it, completed by the residual-pass supplements.
// A nil sink degrades to plain Solve.
func (s *Solver) SolveStream(m *traffic.Matrix, sink StreamSink) (*Result, error) {
	s.gen++
	res := &Result{
		FlowTunnel: make([]*topology.Tunnel, len(m.Flows)),
		// Pre-size maps from the previous interval: steady-state intervals
		// see the same pair population, so growth reallocs vanish.
		Tunnels:        make(map[traffic.SitePair][]*topology.Tunnel, s.prevTunnels),
		TotalMbps:      m.TotalDemandMbps(),
		SiteAllocation: make(map[traffic.Class]map[traffic.SitePair][]float64, len(traffic.Classes)),
	}

	// Residual link capacity carried across QoS classes:
	// c_e <- c_e - sum d f L(t,e) after each class (§4.1).
	residual := make([]float64, s.topo.NumLinks())
	for i, l := range s.topo.Links {
		if l.Down {
			residual[i] = 0
		} else {
			residual[i] = l.CapacityMbps
		}
	}

	fidx := s.flowIndexFor(m)

	classes := []traffic.Class{0} // sentinel: single pass over everything
	if s.opts.SplitQoS {
		classes = traffic.Classes
	}
	for _, class := range classes {
		sub := m
		if s.opts.SplitQoS {
			sub = m.ClassSubset(class)
		}
		if sub.NumFlows() == 0 {
			continue
		}
		if err := s.solveClass(fidx, sub, class, residual, res, sink); err != nil {
			return nil, fmt.Errorf("core: class %v: %w", class, err)
		}
	}

	// Retire pooled states for pairs that vanished from the matrix so the
	// pool tracks the live pair population instead of its union over time.
	for k, st := range s.pairStates {
		if st.gen != s.gen {
			delete(s.pairStates, k)
		}
	}
	s.prevTunnels = len(res.Tunnels)
	return res, nil
}

// flowIndex maps matrix flow IDs back to slice indices. Flow IDs are
// preserved by ClassSubset/Subsample but need not equal slice indices in the
// original matrix either.
type flowIndex struct {
	identity bool
	byID     map[int]int
}

func (ix flowIndex) of(id int) int {
	if ix.identity {
		return id
	}
	return ix.byID[id]
}

// flowIndexFor resolves the ID→index map once per solve. Generator-produced
// matrices use ID == index; a linear scan detects that and skips the map
// entirely. Otherwise the map is rebuilt into a buffer reused across
// intervals, so steady-state solves stop re-allocating a million-entry map
// every 15 s.
func (s *Solver) flowIndexFor(m *traffic.Matrix) flowIndex {
	identity := true
	for i := range m.Flows {
		if m.Flows[i].ID != i {
			identity = false
			break
		}
	}
	if identity {
		return flowIndex{identity: true}
	}
	if s.idIdx == nil {
		s.idIdx = make(map[int]int, len(m.Flows))
	} else {
		clear(s.idIdx)
	}
	for i := range m.Flows {
		s.idIdx[m.Flows[i].ID] = i
	}
	return flowIndex{byID: s.idIdx}
}

// pairState carries one site pair through both stages. States are pooled on
// the Solver per (class, pair) and every slice is reused across intervals.
type pairState struct {
	pair traffic.SitePair
	// flowIdx are indices into the *original* matrix flows.
	flowIdx []int
	demands []float64
	tunnels []*topology.Tunnel
	// weights are the per-class w_t values (latency by default).
	weights []float64
	// alloc is F_{k,t} from stage one.
	alloc []float64
	// assign is the stage-two output: per flow, tunnel index or -1.
	assign []int
	// tiers is the per-flow tunnel-tier bound (-1 = unrestricted) and ttier
	// the per-tunnel tier rank, both nil unless the matrix carries service
	// policies and this pair has at least one annotated flow — the nil case
	// keeps the default stage-two path bit-identical to a policy-free solve.
	tiers []int
	ttier []int
	// gen marks the last solve that used this state (pool retirement).
	gen uint64
}

// sized returns b with length exactly n, reallocating only when the capacity
// falls short. Contents are unspecified — callers overwrite every element.
func sized[T any](b []T, n int) []T {
	if cap(b) < n {
		return make([]T, n)
	}
	return b[:n]
}

func (s *Solver) solveClass(fidx flowIndex, sub *traffic.Matrix, class traffic.Class, residual []float64, res *Result, sink StreamSink) error {
	mergeStart := time.Now()
	pairs := sub.Pairs()
	tiered := sub.Policies.HasTierBounds()
	states := make([]*pairState, 0, len(pairs))
	for _, p := range pairs {
		tns := s.ts.For(p.Src, p.Dst)
		res.Tunnels[p] = tns
		key := pairKey{class, p}
		st := s.pairStates[key]
		if st == nil {
			st = &pairState{pair: p}
			s.pairStates[key] = st
		}
		st.gen = s.gen
		st.tunnels = tns
		st.weights = sized(st.weights, len(tns))
		for i, tn := range tns {
			if s.opts.ClassPolicy != nil {
				st.weights[i] = s.opts.ClassPolicy(class, tn, s.topo)
			} else {
				st.weights[i] = tn.Weight
			}
		}
		idxs := sub.FlowsFor(p)
		st.flowIdx = sized(st.flowIdx, len(idxs))
		st.demands = sized(st.demands, len(idxs))
		for i, idx := range idxs {
			f := &sub.Flows[idx]
			st.flowIdx[i] = fidx.of(f.ID)
			st.demands[i] = f.DemandMbps
		}
		st.assign = sized(st.assign, len(idxs))
		if tiered {
			s.applyTierBounds(st, sub, idxs)
		} else {
			// Pooled states may carry tier data from a previous policied
			// interval; reset explicitly.
			st.tiers, st.ttier = nil, nil
		}
		states = append(states, st)
	}

	// Stage 1: SiteMerge + MaxSiteFlow (lines 1–10 of Algorithm 1). The
	// aggregation and the LP are timed separately so per-stage telemetry can
	// tell "merging a bigger matrix" apart from "the LP got harder".
	mcf := &lp.MCF{LinkCap: residual, Epsilon: s.epsilonFor(states)}
	mcf.Commodities = make([]lp.Commodity, 0, len(states))
	for _, st := range states {
		c := lp.Commodity{Demand: sum(st.demands)} // SiteMerge: D_k = Σ_i d_k^i
		for t, tn := range st.tunnels {
			links := make([]int, len(tn.Links))
			for i, l := range tn.Links {
				links[i] = int(l)
			}
			c.Tunnels = append(c.Tunnels, links)
			c.Weights = append(c.Weights, st.weights[t])
		}
		mcf.Commodities = append(mcf.Commodities, c)
	}
	res.SiteMergeTime += time.Since(mergeStart)
	start := time.Now()
	siteAlloc, err := s.solveSite(class, mcf, res)
	if err != nil {
		return fmt.Errorf("MaxSiteFlow: %w", err)
	}
	res.SiteLPTime += time.Since(start)

	classAlloc := make(map[traffic.SitePair][]float64, len(states))
	for k, st := range states {
		st.alloc = siteAlloc[k]
		classAlloc[st.pair] = siteAlloc[k]
	}
	res.SiteAllocation[class] = classAlloc

	// Stage 2: MaxEndpointFlow across the site-keyed worker pool
	// (line 11–15), streaming each pair's assignment into sink as it lands.
	start = time.Now()
	res.Stage2CacheHits += s.stageTwo(class, states, sink)
	res.SSPTime += time.Since(start)

	// Commit assignments; update residual capacity by the traffic actually
	// placed (FastSSP may slightly underuse F_{k,t}).
	for _, st := range states {
		for fi, tIdx := range st.assign {
			if tIdx < 0 {
				continue
			}
			tn := st.tunnels[tIdx]
			res.FlowTunnel[st.flowIdx[fi]] = tn
			res.SatisfiedMbps += st.demands[fi]
			for _, l := range tn.Links {
				residual[l] -= st.demands[fi]
			}
		}
	}
	// Clamp tiny negative residuals from floating point.
	for i := range residual {
		if residual[i] < 0 {
			residual[i] = 0
		}
	}

	if !s.opts.DisableResidualPass {
		s.residualPass(class, states, residual, res, sink)
	}
	return nil
}

// residualPass places flows FastSSP left unassigned onto tunnels that still
// have link capacity — capacity stranded either by budget quantization in
// this site pair or by underuse in others. Flows are taken largest first
// (within each pair, tunnels shortest first) and remain indivisible. Flows
// the pass places are re-announced to the sink as Residual chunks, since
// their pair (and possibly SiteDone) chunks already streamed out.
func (s *Solver) residualPass(class traffic.Class, states []*pairState, residual []float64, res *Result, sink StreamSink) {
	type cand struct {
		si, fi int
		demand float64
	}
	var cands []cand
	for si := range states {
		for fi, tIdx := range states[si].assign {
			if tIdx < 0 && states[si].demands[fi] > 0 {
				cands = append(cands, cand{si, fi, states[si].demands[fi]})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].demand > cands[b].demand {
			return true
		}
		if cands[a].demand < cands[b].demand {
			return false
		}
		if cands[a].si != cands[b].si {
			return cands[a].si < cands[b].si
		}
		return cands[a].fi < cands[b].fi
	})
	var changed map[int][]int
	if sink != nil {
		changed = make(map[int][]int)
	}
	for _, c := range cands {
		st := states[c.si]
		// Tunnels in ascending class weight.
		bestT := -1
		bestW := 0.0
		for t, tn := range st.tunnels {
			if !st.allows(c.fi, t) {
				continue
			}
			fits := true
			for _, l := range tn.Links {
				if residual[l] < c.demand {
					fits = false
					break
				}
			}
			if fits && (bestT < 0 || st.weights[t] < bestW) {
				bestT, bestW = t, st.weights[t]
			}
		}
		if bestT < 0 {
			continue
		}
		tn := st.tunnels[bestT]
		st.assign[c.fi] = bestT
		res.FlowTunnel[st.flowIdx[c.fi]] = tn
		res.SatisfiedMbps += c.demand
		for _, l := range tn.Links {
			residual[l] -= c.demand
		}
		if sink != nil {
			changed[c.si] = append(changed[c.si], c.fi)
		}
	}
	if sink != nil && len(changed) > 0 {
		sis := make([]int, 0, len(changed))
		for si := range changed {
			sis = append(sis, si)
		}
		sort.Ints(sis)
		for _, si := range sis {
			emitAssignChunk(sink, class, states[si], true, changed[si])
		}
	}
}

// workerScratch is one stage-two worker's reusable buffer set. Warm after
// the first pair, the steady-state per-pair path performs zero heap
// allocations (BenchmarkStage2Pair and TestStage2PairZeroAlloc gate this).
type workerScratch struct {
	solver     ssp.FastSSP
	ssp        ssp.Scratch
	order      []int
	unassigned []int
	values     []float64
	selected   []bool
	// eligible is used only by the tier-filtered stage-two variant.
	eligible []int
}

func (s *Solver) newWorkerScratch() *workerScratch {
	return &workerScratch{solver: ssp.FastSSP{EpsPrime: s.opts.FastSSPEpsilon}}
}

// sortIdxByWeightAsc orders tunnel indices by ascending weight, ties by
// index. Insertion sort: tunnel counts are single-digit and the hot path
// cannot afford sort.Slice's closure allocation.
func sortIdxByWeightAsc(order []int, w []float64) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			// In order when strictly lighter, or equal-weight (neither
			// strictly lighter) with the lower index first.
			if w[a] < w[b] || (!(w[b] < w[a]) && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
}

// maxEndpointFlow solves the per-pair subset-sum chain into st.assign:
// tunnels in ascending class weight, FastSSP over the still-unassigned flows
// against budget F_{k,t}. All working state lives in ws; with warm buffers
// the call is allocation-free.
func (s *Solver) maxEndpointFlow(st *pairState, ws *workerScratch) {
	if st.tiers != nil {
		s.maxEndpointFlowTiered(st, ws)
		return
	}
	assign := st.assign
	for i := range assign {
		assign[i] = -1
	}
	if len(st.tunnels) == 0 {
		return
	}
	ws.order = sized(ws.order, len(st.tunnels))
	order := ws.order
	for i := range order {
		order[i] = i
	}
	sortIdxByWeightAsc(order, st.weights)

	ws.unassigned = sized(ws.unassigned, len(st.demands))
	unassigned := ws.unassigned
	for i := range unassigned {
		unassigned[i] = i
	}
	n := len(unassigned)
	ws.values = sized(ws.values, len(st.demands))
	ws.selected = sized(ws.selected, len(st.demands))
	for _, t := range order {
		if n == 0 {
			break
		}
		budget := st.alloc[t]
		if budget <= 0 {
			continue
		}
		values := ws.values[:n]
		for j := 0; j < n; j++ {
			values[j] = st.demands[unassigned[j]]
		}
		selected := ws.selected[:n]
		ws.solver.SolveInto(values, budget, &ws.ssp, selected)
		// Commit selections and compact the survivors in place (writes
		// trail reads, so reusing the buffer is safe).
		keep := 0
		for j := 0; j < n; j++ {
			fi := unassigned[j]
			if selected[j] {
				assign[fi] = t
			} else {
				unassigned[keep] = fi
				keep++
			}
		}
		n = keep
	}
}

// epsilonFor returns the objective epsilon: the configured value, or half
// the inverse maximum tunnel weight so 1 − εw stays positive.
func (s *Solver) epsilonFor(states []*pairState) float64 {
	if s.opts.Epsilon > 0 {
		return s.opts.Epsilon
	}
	maxW := 0.0
	for _, st := range states {
		for _, w := range st.weights {
			if w > maxW {
				maxW = w
			}
		}
	}
	if maxW == 0 {
		return 0
	}
	eps := 0.5 / maxW
	if eps > 1e-3 {
		eps = 1e-3
	}
	return eps
}

func sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}
