// Fast-path/slow-path stage-1 routing (Options.FastPath): every interval
// first tries to serve MaxSiteFlow from the previous interval's accepted
// allocation — drift reallocation of only the commodities whose demand
// moved, escalating to a warm-started fixed-budget ADMM sweep — and accepts
// the result only when the weak-duality certificate (internal/lp) certifies
// it within tolerance. Topology churn (a changed tunnel-set fingerprint) or
// certificate failure falls back to the exact GUB simplex, which refreshes
// the stored allocation and link prices. The p99 interval then pays the
// exact LP only when the network actually changed shape.

package core

import (
	"math"

	"megate/internal/lp"
	"megate/internal/traffic"
)

// DualSolver is an optional extension of WarmStartSolver for exact solvers
// that export their optimal link duals. lp.GUBSimplex and lp.AutoMCF
// implement it; the fast path stores the prices to keep its certificate
// bound tight across the drift intervals that follow an exact solve.
type DualSolver interface {
	SolveMCFBasisDual(p *lp.MCF, warm *lp.Basis) (lp.Allocation, *lp.Basis, []float64, error)
}

// fastPathState is the per-class carryover the fast path drifts from: the
// last accepted allocation and its demands, the tunnel-set fingerprint they
// were solved under, and the link prices of the last *exact* solve.
type fastPathState struct {
	alloc   lp.Allocation
	demands []float64
	// pi is the exact path's link duals; nil after an approximate fallback
	// (the certificate then relies on ADMM prices and the zero vector).
	pi []float64
	// fp fingerprints the commodity/tunnel structure; any mismatch is
	// topology churn and forces the slow path.
	fp uint64
}

// fastPathOutcome labels how one class solve was served, for Result
// accounting and telemetry.
type fastPathOutcome int

const (
	fastPathDrift  fastPathOutcome = iota // drift reallocation accepted
	fastPathADMM                          // warm ADMM sweep accepted
	fastPathCold                          // no previous state (first interval)
	fastPathChurn                         // tunnel-set fingerprint changed
	fastPathReject                        // certificate refused both candidates
)

// tunnelFingerprint hashes the structural inputs of a stage-1 MCF — the
// commodity count, each commodity's tunnel link sequences and weights, the
// link count, and epsilon — with FNV-1a. Demands and capacities are
// deliberately excluded: those drift every interval and are the fast path's
// job; a changed fingerprint means the tunnel set itself moved (link
// failure, pair churn, policy change) and only the exact path may run.
func tunnelFingerprint(p *lp.MCF) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(p.LinkCap)))
	mix(math.Float64bits(p.Epsilon))
	mix(uint64(len(p.Commodities)))
	for k := range p.Commodities {
		c := &p.Commodities[k]
		mix(uint64(len(c.Tunnels)))
		for t := range c.Tunnels {
			mix(math.Float64bits(c.Weights[t]))
			mix(uint64(len(c.Tunnels[t])))
			for _, e := range c.Tunnels[t] {
				mix(uint64(e))
			}
		}
	}
	return h
}

// tryFastPath attempts to serve the class solve without the exact simplex.
// It returns the accepted allocation and its certificate on success; on
// failure the outcome says why and the caller runs the slow path.
func (s *Solver) tryFastPath(class traffic.Class, mcf *lp.MCF) (lp.Allocation, lp.Certificate, fastPathOutcome) {
	st := s.inc.fast[class]
	if st == nil {
		return nil, lp.Certificate{}, fastPathCold
	}
	fp := tunnelFingerprint(mcf)
	if fp != st.fp {
		return nil, lp.Certificate{}, fastPathChurn
	}
	tol := s.opts.FastPathTolerance

	// Candidate 1: drift reallocation. Touches only commodities whose
	// demand moved, so unchanged pairs keep bit-identical F_{k,t} and the
	// stage-2 pair cache keeps hitting.
	cand := lp.CloneAllocation(st.alloc)
	lp.ReallocateDrift(mcf, cand, st.demands, s.opts.FastPathDriftThreshold)
	cert := lp.EvaluateCertificate(mcf, cand, tol, st.pi)
	if cert.Accepted {
		s.storeFastPath(class, cand, mcf, st.pi, fp)
		return cand, cert, fastPathDrift
	}

	// Candidate 2: fixed-budget ADMM refinement warm-started from the drift
	// candidate. Perturbs every row (fewer stage-2 hits) but still avoids
	// the exact LP.
	refined, admmPi, err := (&lp.ADMM{}).SolveMCFWarm(mcf, cand)
	if err == nil {
		cert2 := lp.EvaluateCertificate(mcf, refined, tol, st.pi, admmPi)
		if cert2.Accepted {
			s.storeFastPath(class, refined, mcf, st.pi, fp)
			return refined, cert2, fastPathADMM
		}
		cert = cert2
	}
	return nil, cert, fastPathReject
}

// storeFastPath snapshots an accepted (or exact) allocation as the next
// interval's drift base. pi is the last exact solve's prices — carried
// through fast intervals, refreshed by slow ones.
func (s *Solver) storeFastPath(class traffic.Class, alloc lp.Allocation, mcf *lp.MCF, pi []float64, fp uint64) {
	demands := make([]float64, len(mcf.Commodities))
	for k := range mcf.Commodities {
		demands[k] = mcf.Commodities[k].Demand
	}
	s.inc.fast[class] = &fastPathState{
		alloc:   lp.CloneAllocation(alloc),
		demands: demands,
		pi:      pi,
		fp:      fp,
	}
}

// recordFastPath folds one class solve's outcome into the Result.
func recordFastPath(res *Result, cert lp.Certificate, outcome fastPathOutcome) {
	switch outcome {
	case fastPathDrift, fastPathADMM:
		res.FastPathHits++
	default:
		res.FastPathFallbacks++
	}
	if cert.Gap > res.OptimalityGap {
		res.OptimalityGap = cert.Gap
	}
}
