package core

import (
	"math"
	"testing"

	"megate/internal/stats"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// randomScenario builds a random connected topology and traffic matrix.
func randomScenario(seed int64) (*topology.Topology, *traffic.Matrix) {
	r := stats.NewRand(seed)
	topo := topology.New("prop")
	nSites := 3 + r.Intn(8)
	for i := 0; i < nSites; i++ {
		topo.AddSite("s", r.Float64()*1000, r.Float64()*1000)
	}
	// Ring for connectivity plus random chords.
	for i := 0; i < nSites; i++ {
		topo.AddBidiLink(topology.SiteID(i), topology.SiteID((i+1)%nSites),
			100+r.Float64()*900, 0.5+r.Float64()*10, 0.99+r.Float64()*0.0099, 1+r.Float64()*9)
	}
	for c := 0; c < nSites/2; c++ {
		a, b := r.Intn(nSites), r.Intn(nSites)
		if a != b {
			topo.AddBidiLink(topology.SiteID(a), topology.SiteID(b),
				100+r.Float64()*900, 0.5+r.Float64()*10, 0.99+r.Float64()*0.0099, 1+r.Float64()*9)
		}
	}
	topology.AttachEndpointsExact(topo, 1+r.Intn(5))
	m := traffic.Generate(topo, traffic.GenOptions{
		Seed:           seed + 1,
		MeanDemandMbps: 5 + r.Float64()*100,
		ClassMix:       [3]float64{r.Float64(), r.Float64(), r.Float64()},
	})
	return topo, m
}

// TestSolveInvariantsProperty checks constraints (1a)–(1c) across random
// scenarios and solver configurations.
func TestSolveInvariantsProperty(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		topo, m := randomScenario(seed)
		for _, split := range []bool{false, true} {
			for _, noResidual := range []bool{false, true} {
				s := NewSolver(topo, Options{SplitQoS: split, DisableResidualPass: noResidual})
				res, err := s.Solve(m)
				if err != nil {
					t.Fatalf("seed %d split=%v: %v", seed, split, err)
				}
				// (1a) link capacity.
				loads := make([]float64, topo.NumLinks())
				assigned := 0.0
				for i, tn := range res.FlowTunnel {
					if tn == nil {
						continue
					}
					assigned += m.Flows[i].DemandMbps
					for _, l := range tn.Links {
						loads[l] += m.Flows[i].DemandMbps
					}
					// (1b)/(1c): one tunnel, and it must belong to the
					// flow's site pair.
					if tn.Src != m.Flows[i].Pair.Src || tn.Dst != m.Flows[i].Pair.Dst {
						t.Fatalf("seed %d: flow %d on foreign tunnel %v", seed, i, tn)
					}
				}
				for l, load := range loads {
					if load > topo.Links[l].CapacityMbps*(1+1e-9)+1e-6 {
						t.Fatalf("seed %d split=%v: link %d overloaded %.3f > %.3f",
							seed, split, l, load, topo.Links[l].CapacityMbps)
					}
				}
				// Satisfied accounting.
				if math.Abs(assigned-res.SatisfiedMbps) > 1e-6*(1+assigned) {
					t.Fatalf("seed %d: satisfied %.3f != assigned %.3f", seed, res.SatisfiedMbps, assigned)
				}
				if res.SatisfiedMbps > res.TotalMbps*(1+1e-9) {
					t.Fatalf("seed %d: satisfied exceeds offered", seed)
				}
			}
		}
	}
}

// TestSolveDeterministic verifies two identical solves agree flow by flow —
// required for the controller to publish stable configurations.
func TestSolveDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		topo, m := randomScenario(seed)
		a, err := NewSolver(topo, Options{SplitQoS: true, Workers: 4}).Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSolver(topo, Options{SplitQoS: true, Workers: 1}).Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		if a.SatisfiedMbps != b.SatisfiedMbps {
			t.Fatalf("seed %d: satisfied differs across runs: %v vs %v", seed, a.SatisfiedMbps, b.SatisfiedMbps)
		}
		for i := range a.FlowTunnel {
			ta, tb := a.FlowTunnel[i], b.FlowTunnel[i]
			if (ta == nil) != (tb == nil) {
				t.Fatalf("seed %d: flow %d assignment differs", seed, i)
			}
			if ta != nil && ta.String() != tb.String() {
				t.Fatalf("seed %d: flow %d tunnel differs: %v vs %v", seed, i, ta, tb)
			}
		}
	}
}

// TestQoSPriorityProperty: the sequential pipeline gives class 1 first
// claim on capacity, so class-1 satisfaction under SplitQoS must be at
// least what the class-blind joint solve delivers (up to the granularity
// slack of indivisible flows). Flows larger than any link's capacity are
// unplaceable under any policy, so satisfaction is compared like for like.
func TestQoSPriorityProperty(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		topo, m := randomScenario(seed)
		// Contention without unplaceable monsters: scale so the largest
		// flow stays below the smallest link capacity.
		minCap, maxDemand := math.Inf(1), 0.0
		for _, l := range topo.Links {
			if l.CapacityMbps < minCap {
				minCap = l.CapacityMbps
			}
		}
		for i := range m.Flows {
			if m.Flows[i].DemandMbps > maxDemand {
				maxDemand = m.Flows[i].DemandMbps
			}
		}
		m = m.Scale(0.8 * minCap / maxDemand * 3) // ~3x contention, flows placeable

		class1Frac := func(split bool) float64 {
			res, err := NewSolver(topo, Options{SplitQoS: split}).Solve(m)
			if err != nil {
				t.Fatal(err)
			}
			sat, tot := 0.0, 0.0
			for i, tn := range res.FlowTunnel {
				if m.Flows[i].Class != traffic.Class1 {
					continue
				}
				tot += m.Flows[i].DemandMbps
				if tn != nil {
					sat += m.Flows[i].DemandMbps
				}
			}
			if tot == 0 {
				return 1
			}
			return sat / tot
		}
		seq, joint := class1Frac(true), class1Frac(false)
		if seq+0.1 < joint {
			t.Errorf("seed %d: class1 satisfaction %.3f under priority pipeline < %.3f under joint solve",
				seed, seq, joint)
		}
	}
}

// TestSolveAfterFailureNeverUsesDownLinks across random scenarios.
func TestSolveAfterFailureNeverUsesDownLinks(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		topo, m := randomScenario(seed)
		r := stats.NewRand(seed * 7)
		topo.FailLink(topology.LinkID(r.Intn(topo.NumLinks())))
		s := NewSolver(topo, Options{})
		res, err := s.Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		for i, tn := range res.FlowTunnel {
			if tn == nil {
				continue
			}
			for _, l := range tn.Links {
				if topo.Links[l].Down {
					t.Fatalf("seed %d: flow %d over failed link", seed, i)
				}
			}
		}
	}
}
