package core

import (
	"math/rand"
	"sync"
	"testing"

	"megate/internal/topology"
	"megate/internal/traffic"
)

// recordSink collects deep copies of every chunk and checks the SiteDone
// protocol: after a site's marker, no further non-residual chunk for that
// (class, src) may arrive.
type recordSink struct {
	mu     sync.Mutex
	t      *testing.T
	chunks []recordedChunk
	done   map[[2]int]bool // (class, src) -> SiteDone seen
}

type recordedChunk struct {
	class    traffic.Class
	pair     traffic.SitePair
	siteDone bool
	residual bool
	flowIdx  []int32
	tunIdx   []int32
	tunnels  []*topology.Tunnel
}

func (rs *recordSink) Chunk(c *StreamChunk) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	key := [2]int{int(c.Class), int(c.Pair.Src)}
	if rs.done == nil {
		rs.done = make(map[[2]int]bool)
	}
	if c.SiteDone {
		if rs.done[key] {
			rs.t.Errorf("duplicate SiteDone for class %d src %d", c.Class, c.Pair.Src)
		}
		rs.done[key] = true
	} else if !c.Residual && rs.done[key] {
		rs.t.Errorf("pair chunk for class %d src %d after its SiteDone", c.Class, c.Pair.Src)
	}
	rs.chunks = append(rs.chunks, recordedChunk{
		class:    c.Class,
		pair:     c.Pair,
		siteDone: c.SiteDone,
		residual: c.Residual,
		flowIdx:  append([]int32(nil), c.FlowIdx...),
		tunIdx:   append([]int32(nil), c.TunIdx...),
		tunnels:  c.Tunnels,
	})
	ReleaseChunk(c)
}

// replay reconstructs the per-flow tunnel assignment from the chunk stream
// in arrival order.
func (rs *recordSink) replay(nFlows int) []*topology.Tunnel {
	out := make([]*topology.Tunnel, nFlows)
	for _, c := range rs.chunks {
		if c.siteDone {
			continue
		}
		for i, fi := range c.flowIdx {
			if t := c.tunIdx[i]; t >= 0 {
				out[fi] = c.tunnels[t]
			} else if !c.residual {
				out[fi] = nil
			}
		}
	}
	return out
}

func streamWorld(t *testing.T) (*topology.Topology, *traffic.Matrix) {
	t.Helper()
	topo := topology.Build("B4*")
	topology.AttachEndpointsExact(topo, 4)
	rng := rand.New(rand.NewSource(7))
	var flows []traffic.Flow
	eps := topo.Endpoints
	for i := 0; i < 600; i++ {
		src := topology.EndpointID(rng.Intn(len(eps)))
		dst := topology.EndpointID(rng.Intn(len(eps)))
		if eps[src].Site == eps[dst].Site {
			continue
		}
		flows = append(flows, traffic.Flow{
			ID:  len(flows),
			Src: src, Dst: dst,
			Pair:       traffic.SitePair{Src: eps[src].Site, Dst: eps[dst].Site},
			DemandMbps: 1 + rng.Float64()*80,
			Class:      traffic.Classes[rng.Intn(len(traffic.Classes))],
		})
	}
	return topo, traffic.NewMatrix(flows)
}

// tunnelIdx resolves a flow's assigned tunnel to its index within the
// pair's tunnel list (-1 = rejected), which is comparable across solvers —
// tunnel pointers are not, each solver computes its own TunnelSet.
func tunnelIdx(res *Result, p traffic.SitePair, tn *topology.Tunnel) int {
	if tn == nil {
		return -1
	}
	for i, t := range res.Tunnels[p] {
		if t == tn {
			return i
		}
	}
	return -2
}

// TestSolveStreamEquivalence pins SolveStream to Solve: the returned Result
// must be identical, and replaying the chunk stream must reconstruct exactly
// the final per-flow assignment — the invariant the streaming publisher's
// correctness rests on.
func TestSolveStreamEquivalence(t *testing.T) {
	for _, opt := range []Options{
		{},
		{SplitQoS: true},
		{SplitQoS: true, Incremental: true},
		{DisableResidualPass: true},
	} {
		topo, m := streamWorld(t)
		want, err := NewSolver(topo, opt).Solve(m)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		solver := NewSolver(topo, opt)
		// Two intervals when incremental: the second is the cache-hit path,
		// which must still stream every pair.
		intervals := 1
		if opt.Incremental {
			intervals = 2
		}
		var got *Result
		var rs *recordSink
		for i := 0; i < intervals; i++ {
			rs = &recordSink{t: t}
			got, err = solver.SolveStream(m, rs)
			if err != nil {
				t.Fatalf("SolveStream: %v", err)
			}
		}
		if got.SatisfiedMbps != want.SatisfiedMbps || got.TotalMbps != want.TotalMbps {
			t.Errorf("opts %+v: satisfied %v/%v, want %v/%v",
				opt, got.SatisfiedMbps, got.TotalMbps, want.SatisfiedMbps, want.TotalMbps)
		}
		for i := range want.FlowTunnel {
			p := m.Flows[i].Pair
			if tunnelIdx(got, p, got.FlowTunnel[i]) != tunnelIdx(want, p, want.FlowTunnel[i]) {
				t.Fatalf("opts %+v: FlowTunnel[%d] differs between Solve and SolveStream", opt, i)
			}
		}
		replayed := rs.replay(len(m.Flows))
		for i := range replayed {
			if replayed[i] != got.FlowTunnel[i] {
				t.Fatalf("opts %+v: replayed stream differs from Result at flow %d (stream %v, result %v)",
					opt, i, replayed[i], got.FlowTunnel[i])
			}
		}
		// Every flow must appear in some non-residual chunk exactly once.
		seen := make(map[int32]int)
		var siteDones int
		for _, c := range rs.chunks {
			if c.siteDone {
				siteDones++
				continue
			}
			if c.residual {
				continue
			}
			for _, fi := range c.flowIdx {
				seen[fi]++
			}
		}
		for i := range m.Flows {
			if seen[int32(i)] != 1 {
				t.Fatalf("opts %+v: flow %d appeared in %d pair chunks, want 1", opt, i, seen[int32(i)])
			}
		}
		if siteDones == 0 {
			t.Errorf("opts %+v: no SiteDone markers emitted", opt)
		}
	}
}

// TestSolveStreamReusedBuffers runs consecutive intervals with perturbed
// demands through one solver and cross-checks each against a fresh solver —
// the pooled pairState/scratch buffers must never leak state between
// intervals.
func TestSolveStreamReusedBuffers(t *testing.T) {
	topo, m := streamWorld(t)
	solver := NewSolver(topo, Options{SplitQoS: true})
	rng := rand.New(rand.NewSource(99))
	for interval := 0; interval < 4; interval++ {
		rs := &recordSink{t: t}
		got, err := solver.SolveStream(m, rs)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		want, err := NewSolver(topo, Options{SplitQoS: true}).Solve(m)
		if err != nil {
			t.Fatalf("interval %d fresh: %v", interval, err)
		}
		for i := range want.FlowTunnel {
			p := m.Flows[i].Pair
			if tunnelIdx(got, p, got.FlowTunnel[i]) != tunnelIdx(want, p, want.FlowTunnel[i]) {
				t.Fatalf("interval %d: FlowTunnel[%d] differs from fresh solver", interval, i)
			}
		}
		// Perturb ~10% of demands for the next interval.
		for i := range m.Flows {
			if rng.Intn(10) == 0 {
				m.Flows[i].DemandMbps = 1 + rng.Float64()*80
			}
		}
	}
}
