package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"megate/internal/chaos"
	"megate/internal/kvstore"
)

// defaultFleetSizes is the ab-fleet sweep: the acceptance run tops out at
// the 100k-agent fleet the robustness milestone gates on.
var defaultFleetSizes = []int{10_000, 50_000, 100_000}

// benchFleetAdmission is the per-shard admission both measured arms are
// compared against (the control arm simply disables it).
var benchFleetAdmission = kvstore.Admission{
	MaxInflight: 4,
	MaxQueue:    8,
	RetryAfter:  25 * time.Millisecond,
}

// FleetPoint is one (fleet size, admission arm) measurement.
type FleetPoint struct {
	Agents    int  `json:"agents"`
	Admission bool `json:"admission"`
	Shards    int  `json:"shards"`
	Workers   int  `json:"workers"`
	// PollIntervalMs scales with fleet size to keep the loopback dial rate
	// inside what one machine honestly sustains.
	PollIntervalMs float64 `json:"poll_interval_ms"`
	// ColdP50Ms/ColdP99Ms are cold-boot convergence lags; HealP50Ms and
	// HealP99Ms are the herd-recovery lags after the partition heals — the
	// headline series.
	ColdP50Ms float64 `json:"cold_p50_ms"`
	ColdP99Ms float64 `json:"cold_p99_ms"`
	HealP50Ms float64 `json:"heal_p50_ms"`
	HealP99Ms float64 `json:"heal_p99_ms"`
	// Busy counts agent polls shed with BUSY; Shed is the server-side shed
	// total (driver writes included). Both zero with admission off.
	Busy uint64 `json:"busy_polls"`
	Shed uint64 `json:"server_sheds"`
	// SnapshotsMax is the worst per-agent snapshot count — the snapshot
	// sync stays O(1) requests per cold agent when it holds at <= 2 (boot
	// plus at most one TTL resync).
	SnapshotsMax uint32 `json:"snapshots_max_per_agent"`
	// Wedged must be 0: a shed delays an agent, never wedges it.
	Wedged     int      `json:"wedged"`
	Partition  int      `json:"partitioned_agents"`
	Violations []string `json:"violations,omitempty"`
}

// FleetReport is the experiment output, serialized to BENCH_fleet.json.
type FleetReport struct {
	Points []FleetPoint `json:"points"`
}

// fleetScenario sizes one storm for a bench arm. Poll intervals stretch
// with fleet size so the steady-state short-connection dial rate stays
// near 10-17k/s — above that a single loopback machine serializes dials
// and the lag tail measures the harness, not the protocol; the partition
// cuts one of 64 groups (~1.6% of the fleet), and an explicit hold of one
// poll interval replaces the chaos-test TTL guarantee, which is quadratic
// in fleet size.
func fleetScenario(seed int64, agents int, admission bool) chaos.StormScenario {
	interval := time.Second
	workers := 128
	switch {
	case agents > 50_000:
		interval = 10 * time.Second
		workers = 256
	case agents > 10_000:
		interval = 3 * time.Second
	}
	return chaos.StormScenario{
		Seed:             seed,
		Agents:           agents,
		Shards:           8,
		Groups:           64,
		PartitionGroups:  1,
		Workers:          workers,
		PollInterval:     interval,
		Tick:             5 * time.Millisecond,
		Timeout:          100 * time.Millisecond,
		MaxBackoff:       2 * interval,
		StaleAfter:       8,
		RolloutPublishes: 1,
		PartitionHold:    interval,
		Admission:        benchFleetAdmission,
		NoAdmission:      !admission,
		ServiceDelay:     500 * time.Microsecond,
		ConvergeTimeout:  6 * time.Minute,
	}
}

// MeasureFleet runs the fleet storm at each size with admission control on
// and off, collecting convergence-lag percentiles and the robustness
// acceptance evidence.
func MeasureFleet(cfg *Config) (*FleetReport, error) {
	sizes := cfg.FleetSizes
	if len(sizes) == 0 {
		sizes = defaultFleetSizes
	}
	rep := &FleetReport{}
	for _, agents := range sizes {
		for _, admission := range []bool{true, false} {
			s := fleetScenario(cfg.seed(), agents, admission)
			res, err := chaos.RunStorm(s)
			if err != nil {
				return nil, fmt.Errorf("fleet %d (admission=%v): %w", agents, admission, err)
			}
			pt := FleetPoint{
				Agents:         agents,
				Admission:      admission,
				Shards:         s.Shards,
				Workers:        s.Workers,
				PollIntervalMs: float64(s.PollInterval.Microseconds()) / 1000,
				Busy:           res.Busy,
				Shed:           res.Shed,
				SnapshotsMax:   res.SnapshotsMax,
				Wedged:         res.Wedged,
				Partition:      res.Partitioned,
				Violations:     res.Violations,
			}
			for _, ph := range res.Phases {
				ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
				switch ph.Name {
				case "cold-boot":
					pt.ColdP50Ms, pt.ColdP99Ms = ms(ph.LagP50), ms(ph.LagP99)
				case "heal":
					pt.HealP50Ms, pt.HealP99Ms = ms(ph.LagP50), ms(ph.LagP99)
				}
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

// RunFleet runs the fleet robustness experiment, prints its table, and
// writes BENCH_fleet.json into the working directory.
func RunFleet(cfg *Config) error {
	rep, err := MeasureFleet(cfg)
	if err != nil {
		return err
	}
	w := cfg.out()
	title(w, "Ablation: fleet convergence lag vs size, admission control on/off")
	tb := newTable(w)
	tb.header("agents", "admission", "cold_p50_ms", "cold_p99_ms", "heal_p50_ms", "heal_p99_ms", "busy", "sheds", "max_snaps", "wedged")
	for _, p := range rep.Points {
		tb.row(p.Agents, p.Admission, p.ColdP50Ms, p.ColdP99Ms, p.HealP50Ms, p.HealP99Ms, p.Busy, p.Shed, p.SnapshotsMax, p.Wedged)
	}
	tb.flush()
	for _, p := range rep.Points {
		for _, v := range p.Violations {
			fmt.Fprintf(w, "VIOLATION agents=%d admission=%v: %s\n", p.Agents, p.Admission, v)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_fleet.json", append(data, '\n'), 0o644)
}
