package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"megate/internal/controlplane"
	"megate/internal/kvstore"
)

// RunAblationConverge measures — with real TCP agents — how long it takes a
// fleet to converge on a freshly published configuration version under the
// bottom-up loop, as a function of the poll window (§3.2: convergence is
// bounded by the spread window; §8 notes this is the price of eventual
// consistency that the hybrid approach pays down).
func RunAblationConverge(cfg *Config) error {
	w := cfg.out()
	title(w, "Ablation: eventual-consistency convergence after a publish (real TCP agents)")

	agents := 200
	if cfg.scale() >= 2 {
		agents = 1000
	}

	tb := newTable(w)
	tb.header("agents", "poll window", "p50 convergence", "p100 convergence", "db queries")
	for _, window := range []time.Duration{500 * time.Millisecond, 1 * time.Second, 2 * time.Second} {
		p50, p100, queries, err := measureConvergence(agents, window)
		if err != nil {
			return err
		}
		tb.row(agents, window.String(),
			p50.Round(time.Millisecond).String(),
			p100.Round(time.Millisecond).String(),
			queries)
		tb.flush()
	}
	fmt.Fprintln(w, "shape check: every agent converges within one poll window of the publish,")
	fmt.Fprintln(w, "with median convergence near half the window — eventual consistency as designed")
	return nil
}

// measureConvergence publishes a new version and times each agent's
// convergence under spread polling.
func measureConvergence(n int, window time.Duration) (p50, p100 time.Duration, queries uint64, err error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	store := kvstore.NewStore(2)
	srv := kvstore.Serve(l, store)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Spread agents over the window, each polling repeatedly.
	converged := make([]time.Duration, n)
	var mu sync.Mutex
	remaining := n
	done := make(chan struct{})
	var start time.Time

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		agent := &controlplane.Agent{
			Instance:  fmt.Sprintf("ins-%d", i),
			Reader:    controlplane.ClientAdapter{Client: &kvstore.Client{Addr: srv.Addr()}},
			Slot:      i,
			SlotCount: n,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Phase-offset within the window, then poll per window.
			timer := time.NewTimer(agent.SpreadDelay(window))
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
				return
			}
			ticker := time.NewTicker(window)
			defer ticker.Stop()
			for {
				if _, err := agent.Poll(); err == nil && agent.LastVersion() >= 1 {
					mu.Lock()
					if converged[i] == 0 {
						converged[i] = time.Since(start)
						remaining--
						if remaining == 0 {
							close(done)
						}
					}
					mu.Unlock()
					return
				}
				select {
				case <-ticker.C:
				case <-ctx.Done():
					return
				}
			}
		}(i)
	}

	// Let the fleet settle into its polling rhythm, then publish.
	time.Sleep(window + 100*time.Millisecond)
	store.ResetQueries()
	mu.Lock()
	start = time.Now()
	mu.Unlock()
	store.Publish(1)

	select {
	case <-done:
	case <-time.After(5*window + 5*time.Second):
		cancel()
		wg.Wait()
		return 0, 0, 0, fmt.Errorf("bench: %d agents failed to converge", remaining)
	}
	cancel()
	wg.Wait()

	durs := make([]float64, n)
	for i, d := range converged {
		durs[i] = float64(d)
	}
	return time.Duration(percentileOf(durs, 50)), time.Duration(percentileOf(durs, 100)), store.Queries(), nil
}

func percentileOf(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(p / 100 * float64(len(cp)-1))
	return cp[idx]
}
