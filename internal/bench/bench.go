// Package bench regenerates every table and figure of the paper's
// evaluation (§6) and production analysis (§7), plus the ablation studies
// DESIGN.md calls out. Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Experiment sizes are scaled for a small machine; the Config.Scale knob
// grows them toward the paper's full sizes (Scale >= 4 reaches the
// million-endpoint TWAN run).
package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"
)

// Config controls experiment sizing and output.
type Config struct {
	// Out receives the experiment's table; default os.Stdout.
	Out io.Writer
	// Scale multiplies experiment sizes; 1 is laptop-sized, >= 4 reaches
	// paper-sized runs (hours on one core).
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
	// MegascaleFlows overrides the flow-count sweep of ab-megascale
	// (default 100k/300k/1M) — the short CI lane passes a truncated list.
	MegascaleFlows []int
	// FleetSizes overrides the fleet-size sweep of ab-fleet (default
	// 10k/50k/100k agents) — the short CI lane passes a truncated list.
	FleetSizes []int
	// FastPathTol overrides the certificate acceptance gap of the
	// ab-incremental warm loop (default core.Options.FastPathTolerance, 1%).
	FastPathTol float64
}

func (c *Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c *Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

func (c *Config) seed() int64 {
	if c.Seed == 0 {
		return 42
	}
	return c.Seed
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg *Config) error
}

// Registry lists all experiments in paper order.
var Registry = []Experiment{
	{ID: "fig2", Title: "Figure 2 [motivation]: instance-pair latency, ECMP vs SR pinning", Run: RunFig2},
	{ID: "fig8", Title: "Figure 8: CDF of endpoints per router site (Weibull fit)", Run: RunFig8},
	{ID: "tab2", Title: "Table 2: evaluation topologies", Run: RunTab2},
	{ID: "fig9", Title: "Figure 9: TE computation time vs endpoint scale", Run: RunFig9},
	{ID: "fig10", Title: "Figure 10: satisfied demand vs endpoint scale", Run: RunFig10},
	{ID: "fig11", Title: "Figure 11: QoS-1 packet latency by scheme (Deltacom*)", Run: RunFig11},
	{ID: "fig12", Title: "Figure 12: satisfied demand under link failures (Deltacom*)", Run: RunFig12},
	{ID: "fig13", Title: "Figure 13: CPU/memory vs persistent connections", Run: RunFig13},
	{ID: "fig14", Title: "Figure 14: controller resources, top-down vs bottom-up", Run: RunFig14},
	{ID: "fig15", Title: "Figure 15 [production]: latency reduction per app", Run: RunFig15},
	{ID: "fig16", Title: "Figure 16 [production]: availability per month", Run: RunFig16},
	{ID: "fig17", Title: "Figure 17 [production]: cost per app", Run: RunFig17},
	{ID: "ab-fastssp", Title: "Ablation: FastSSP vs exact DP vs greedy", Run: RunAblationFastSSP},
	{ID: "ab-contraction", Title: "Ablation: two-stage contraction vs direct endpoint LP", Run: RunAblationContraction},
	{ID: "ab-spread", Title: "Ablation: query spreading vs database peak QPS", Run: RunAblationSpread},
	{ID: "ab-qos", Title: "Ablation: sequential per-class allocation vs joint solve", Run: RunAblationQoS},
	{ID: "ab-residual", Title: "Ablation: stage-two residual pass on/off", Run: RunAblationResidual},
	{ID: "ab-hybrid", Title: "Ablation: hybrid synchronization (§8)", Run: RunAblationHybrid},
	{ID: "ab-sitelp", Title: "Ablation: MaxSiteFlow solver (GUB exact vs approximate)", Run: RunAblationSiteLP},
	{ID: "ab-converge", Title: "Ablation: convergence time after a publish (real TCP agents)", Run: RunAblationConverge},
	{ID: "ab-incremental", Title: "Ablation: incremental interval-to-interval solving under demand churn", Run: RunIncremental},
	{ID: "ab-shardscale", Title: "Ablation: sharded TE-database read throughput vs shard count", Run: RunShardScale},
	{ID: "ab-megascale", Title: "Ablation: megascale streamed interval pipeline (TWAN, 100k-1M flows)", Run: RunMegascale},
	{ID: "ab-fleet", Title: "Ablation: fleet convergence lag vs size, admission control on/off", Run: RunFleet},
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	return ids
}

// table is a small helper for aligned output.
type table struct {
	w *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{w: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) header(cols ...string) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) {
				fmt.Fprint(t.w, "-")
			} else {
				fmt.Fprintf(t.w, "%.4g", v)
			}
		default:
			fmt.Fprint(t.w, v)
		}
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { _ = t.w.Flush() }

func title(w io.Writer, s string) {
	fmt.Fprintf(w, "\n== %s ==\n", s)
}
