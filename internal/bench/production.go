package bench

import (
	"fmt"

	"megate/internal/flowsim"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// productionWorkload builds the §7 app-tagged workload over TWAN.
func productionWorkload(cfg *Config) (*topology.Topology, *traffic.Matrix) {
	topo := topology.Build("TWAN")
	perSite := 4
	if cfg.scale() >= 2 {
		perSite = 20
	}
	topology.AttachEndpointsExact(topo, perSite)
	m := traffic.Generate(topo, traffic.GenOptions{
		Seed: cfg.seed(), Apps: traffic.ProductionApps, DemandScale: 10,
	})
	return topo, m
}

// timeSensitiveApps are the five applications of Figure 15, in paper order
// (App 1..5).
var timeSensitiveApps = []string{
	"video-streaming", "live-streaming", "realtime-message",
	"financial-payment", "online-gaming",
}

// RunFig15 compares time-sensitive application latency: conventional
// hash-blended TE versus MegaTE.
func RunFig15(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 15 [production]: packet latency, conventional vs MegaTE")
	topo, m := productionWorkload(cfg)
	conv, err := flowsim.RunConventional(topo, m)
	if err != nil {
		return err
	}
	mega, err := flowsim.RunMegaTE(topo, m)
	if err != nil {
		return err
	}
	tb := newTable(w)
	tb.header("app", "conventional (ms)", "MegaTE (ms)", "reduction")
	for _, app := range timeSensitiveApps {
		c, g := conv[app], mega[app]
		if c == nil || g == nil {
			continue
		}
		tb.row(app, c.MeanLatencyMs, g.MeanLatencyMs,
			fmt.Sprintf("%.1f%%", flowsim.LatencyReduction(c, g)*100))
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: every time-sensitive app improves (paper: up to 51%)")
	return nil
}

// RunFig16 prints the monthly availability series for a class-1 and a
// class-3 application around the MegaTE deployment month.
func RunFig16(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 16 [production]: availability per month (deploy at month 6)")
	topo, m := productionWorkload(cfg)
	conv, err := flowsim.RunConventional(topo, m)
	if err != nil {
		return err
	}
	mega, err := flowsim.RunMegaTE(topo, m)
	if err != nil {
		return err
	}
	// SLA thresholds are rescaled to this repo's synthetic availability
	// model: link availabilities are per-link steady-state values without
	// fast restoration, so absolute path availability runs lower than the
	// paper's production SLAs (99.99%/99%). The *shape* is preserved: the
	// class-1 app hovers at (or dips below) its SLA before deployment and
	// clears it afterwards, while the class-3 app stays within its looser
	// SLA on cheap paths.
	apps := []struct {
		name string
		sla  float64
	}{
		{"online-gaming", 0.995}, // App 6: QoS class 1
		{"bulk-transfer", 0.99},  // App 7: QoS class 3
	}
	tb := newTable(w)
	header := []string{"app", "SLA"}
	for mth := 0; mth < 12; mth++ {
		header = append(header, fmt.Sprintf("m%d", mth))
	}
	tb.header(header...)
	for _, app := range apps {
		c, g := conv[app.name], mega[app.name]
		if c == nil || g == nil {
			continue
		}
		series := flowsim.MonthlyAvailability(c, g, 12, 6, cfg.seed())
		cells := []interface{}{app.name, fmt.Sprintf("%.4f", app.sla)}
		for _, v := range series {
			cells = append(cells, fmt.Sprintf("%.5f", v))
		}
		tb.row(cells...)
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: the class-1 app's availability steps up at deployment and")
	fmt.Fprintln(w, "stays above its SLA (paper: 99.995% average post-deployment)")
	return nil
}

// RunFig17 compares per-app carriage cost.
func RunFig17(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 17 [production]: cost per Gbps, conventional vs MegaTE")
	topo, m := productionWorkload(cfg)
	conv, err := flowsim.RunConventional(topo, m)
	if err != nil {
		return err
	}
	mega, err := flowsim.RunMegaTE(topo, m)
	if err != nil {
		return err
	}
	apps := []string{"online-gaming", "bulk-transfer"} // App 8 (QoS 1), App 9 (QoS 3)
	tb := newTable(w)
	tb.header("app", "class", "conventional ($/Gbps)", "MegaTE ($/Gbps)", "reduction")
	for _, app := range apps {
		c, g := conv[app], mega[app]
		if c == nil || g == nil {
			continue
		}
		tb.row(app, g.Class.String(), c.CostPerGbps, g.CostPerGbps,
			fmt.Sprintf("%.1f%%", flowsim.CostReduction(c, g)*100))
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: the bulk app's cost drops sharply (paper: 50%); the class-1 app")
	fmt.Fprintln(w, "pays premium-path prices by design")
	return nil
}
