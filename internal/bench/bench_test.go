package bench

import (
	"bytes"
	"strings"
	"testing"

	"megate/internal/topology"
)

// TestRegistryComplete checks every paper artifact has an experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig8", "tab2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17",
		"ab-fastssp", "ab-contraction", "ab-spread", "ab-qos", "ab-residual",
		"ab-hybrid", "ab-sitelp", "ab-converge", "ab-incremental", "ab-shardscale",
		"ab-megascale", "ab-fleet",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("registry[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, ok := Get("fig9"); !ok {
		t.Error("Get(fig9) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) should fail")
	}
}

func TestIncrementalMeasurement(t *testing.T) {
	rep, err := MeasureIncremental(&Config{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Intervals) < 2 {
		t.Fatalf("only %d intervals", len(rep.Intervals))
	}
	// Delta publication must write strictly fewer records than rewriting
	// the fleet every interval (wall-clock speedup is asserted only as
	// presence — timing is too machine-dependent for a hard bound here).
	if rep.WarmConfigs >= rep.ColdConfigs {
		t.Errorf("warm wrote %d configs, cold %d — delta publication ineffective",
			rep.WarmConfigs, rep.ColdConfigs)
	}
	if rep.MeanWarmMs <= 0 || rep.MeanColdMs <= 0 {
		t.Errorf("timings missing: cold %v warm %v", rep.MeanColdMs, rep.MeanWarmMs)
	}
	for i, iv := range rep.Intervals[1:] {
		if iv.Stage2Hits == 0 {
			t.Errorf("interval %d: no stage-2 cache hits despite 5%% churn", i+1)
		}
	}
}

func TestMegascaleMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second interval sweep")
	}
	rep, err := MeasureMegascale(&Config{Seed: 7, MegascaleFlows: []int{4000, 8000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Cold.ConfigsWritten == 0 {
			t.Errorf("%d flows: cold interval wrote no configs", pt.Flows)
		}
		if pt.Warm.ConfigsWritten >= pt.Cold.ConfigsWritten {
			t.Errorf("%d flows: warm wrote %d configs, cold %d — delta publication ineffective",
				pt.Flows, pt.Warm.ConfigsWritten, pt.Cold.ConfigsWritten)
		}
		if pt.Stage2CacheHits == 0 {
			t.Errorf("%d flows: no stage-2 cache hits on the warm interval", pt.Flows)
		}
		// The streamed publisher must land most final writes before the
		// sweep — that is the overlap the pipeline exists for.
		if pt.OverlapFraction <= 0.5 {
			t.Errorf("%d flows: publish overlap fraction %.2f, want > 0.5", pt.Flows, pt.OverlapFraction)
		}
		if pt.BatchFlushes == 0 {
			t.Errorf("%d flows: no batched shard flushes recorded", pt.Flows)
		}
		// Warm-interval allocation stays bounded: pooled scratch keeps the
		// steady state far below the cold interval's build-everything cost.
		if pt.Warm.AllocMB >= pt.Cold.AllocMB {
			t.Errorf("%d flows: warm interval allocated %.1f MB, cold %.1f MB",
				pt.Flows, pt.Warm.AllocMB, pt.Cold.AllocMB)
		}
	}
}

func TestFleetMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet storms")
	}
	rep, err := MeasureFleet(&Config{Seed: 7, FleetSizes: []int{2000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2 (admission on/off)", len(rep.Points))
	}
	for _, p := range rep.Points {
		if len(p.Violations) != 0 {
			t.Errorf("agents=%d admission=%v: %v", p.Agents, p.Admission, p.Violations)
		}
		if p.Wedged != 0 {
			t.Errorf("agents=%d admission=%v: %d agents wedged", p.Agents, p.Admission, p.Wedged)
		}
		if p.SnapshotsMax > 2 {
			t.Errorf("agents=%d admission=%v: max %d snapshots per agent; cold sync is not O(1)",
				p.Agents, p.Admission, p.SnapshotsMax)
		}
		if p.HealP99Ms <= 0 {
			t.Errorf("agents=%d admission=%v: herd-recovery p99 never measured", p.Agents, p.Admission)
		}
		if !p.Admission && (p.Busy != 0 || p.Shed != 0) {
			t.Errorf("control arm recorded busy=%d shed=%d with admission off", p.Busy, p.Shed)
		}
	}
}

func TestShardScaleMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second latency-injected benchmark")
	}
	rep, err := MeasureShardScale(&Config{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(rep.Points))
	}
	// The injected per-read latency dominates, so scaling must track the
	// shard count; the asserted floors here are looser than the report's
	// acceptance floors to keep the test robust on loaded machines.
	if rep.Scaling2x < 1.4 {
		t.Errorf("1->2 read scaling %.2fx, want >= 1.4x", rep.Scaling2x)
	}
	if rep.Scaling4x < 2.2 {
		t.Errorf("1->4 read scaling %.2fx, want >= 2.2x", rep.Scaling4x)
	}
	if len(rep.Growth) != 3 {
		t.Fatalf("got %d growth steps, want 3", len(rep.Growth))
	}
	total := 0
	for _, g := range rep.Growth {
		if g.MovedKeys <= 0 || g.MovedKeys >= g.TotalKeys {
			t.Errorf("growth %d->%d moved %d/%d keys; not a minimal move",
				g.FromNodes, g.ToNodes, g.MovedKeys, g.TotalKeys)
		}
		total += g.MovedKeys
	}
	// Minimal movement: growing 1->4 must not shuffle anywhere near the
	// naive rehash-everything-every-step bound of 3x the key count.
	if total >= 2*rep.Growth[0].TotalKeys {
		t.Errorf("growth pass moved %d keys total across %d; movement is not minimal",
			total, rep.Growth[0].TotalKeys)
	}
}

// runExperiment runs one experiment into a buffer at the smallest scale.
func runExperiment(t *testing.T, id string) string {
	t.Helper()
	exp, ok := Get(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	var buf bytes.Buffer
	if err := exp.Run(&Config{Out: &buf, Scale: 1, Seed: 7}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) < 50 {
		t.Fatalf("%s produced almost no output: %q", id, out)
	}
	return out
}

func TestFig8Output(t *testing.T) {
	out := runExperiment(t, "fig8")
	if !strings.Contains(out, "fitted-shape") {
		t.Error("missing fit columns")
	}
}

func TestTab2Output(t *testing.T) {
	out := runExperiment(t, "tab2")
	for _, name := range []string{"B4*", "Deltacom*", "Cogentco*", "TWAN"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing topology %s", name)
		}
	}
}

func TestFig13Output(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pressure test")
	}
	out := runExperiment(t, "fig13")
	if !strings.Contains(out, "heap-MB") {
		t.Error("missing measurement columns")
	}
}

func TestFig14Output(t *testing.T) {
	if testing.Short() {
		t.Skip("pressure-test calibration")
	}
	out := runExperiment(t, "fig14")
	if !strings.Contains(out, "1000000") {
		t.Error("missing the million-endpoint row")
	}
	if !strings.Contains(out, "bottomup-cores") {
		t.Error("missing bottom-up columns")
	}
}

func TestAblationSpreadOutput(t *testing.T) {
	out := runExperiment(t, "ab-spread")
	if !strings.Contains(out, "shards") {
		t.Error("missing shard columns")
	}
}

func TestAblationFastSSPOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("hundred-thousand-item solve")
	}
	out := runExperiment(t, "ab-fastssp")
	if !strings.Contains(out, "FastSSP fill") {
		t.Error("missing fill columns")
	}
}

func TestWorkloadBindsLoad(t *testing.T) {
	topo := topology.Build("B4*")
	topology.AttachEndpointsExact(topo, 50)
	m := workload(topo, 7, 1.2)
	if m.NumFlows() == 0 {
		t.Fatal("no flows")
	}
	if m.TotalDemandMbps() <= 0 {
		t.Fatal("no demand")
	}
	// The same load factor must give comparable total offered demand at a
	// different endpoint scale (the per-flow mean shrinks as flows grow).
	topo2 := topology.Build("B4*")
	topology.AttachEndpointsExact(topo2, 200)
	m2 := workload(topo2, 7, 1.2)
	ratio := m2.TotalDemandMbps() / m.TotalDemandMbps()
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("offered demand ratio %v across scales, want ~1", ratio)
	}
}

func TestPickFailLinksDistinct(t *testing.T) {
	topo := topology.Build("B4*")
	links := pickFailLinks(topo, 5, 3)
	if len(links) != 5 {
		t.Fatalf("picked %d links", len(links))
	}
	seen := map[topology.LinkID]bool{}
	for _, l := range links {
		if seen[l] {
			t.Fatal("duplicate link")
		}
		seen[l] = true
		rev, _ := topo.ReverseLink(l)
		if seen[rev] {
			t.Fatal("picked both directions of one physical link")
		}
	}
}

func TestFig2Output(t *testing.T) {
	out := runExperiment(t, "fig2")
	if !strings.Contains(out, "MegaTE") || !strings.Contains(out, "conventional") {
		t.Error("missing scheme rows")
	}
}

func TestFig15Output(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second production comparison")
	}
	out := runExperiment(t, "fig15")
	for _, app := range []string{"video-streaming", "online-gaming"} {
		if !strings.Contains(out, app) {
			t.Errorf("missing app %s", app)
		}
	}
	if !strings.Contains(out, "reduction") {
		t.Error("missing reduction column")
	}
}

func TestFig16Output(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second production comparison")
	}
	out := runExperiment(t, "fig16")
	if !strings.Contains(out, "m11") {
		t.Error("missing month columns")
	}
	if !strings.Contains(out, "SLA") {
		t.Error("missing SLA column")
	}
}

func TestFig17Output(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second production comparison")
	}
	out := runExperiment(t, "fig17")
	if !strings.Contains(out, "bulk-transfer") {
		t.Error("missing bulk app")
	}
}

func TestAblationHybridOutput(t *testing.T) {
	out := runExperiment(t, "ab-hybrid")
	if !strings.Contains(out, "persistent-conns") {
		t.Error("missing hybrid columns")
	}
}
