package bench

import (
	"fmt"
	"time"

	"megate/internal/controlplane"
)

// RunFig13 pressure-tests the top-down persistent-connection loop: CPU and
// memory versus connection count (the paper's Figure 13, measured on a
// 1-core/1-GB VM up to 6000 connections).
func RunFig13(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 13: persistent-connection pressure test")
	counts := []int{100, 500, 1000, 2000}
	if cfg.scale() >= 2 {
		counts = append(counts, 4000, 6000)
	}
	tb := newTable(w)
	tb.header("connections", "heap-MB", "goroutines", "cpu-% of one core", "heartbeats/s")
	window := 2 * time.Second
	for _, n := range counts {
		m, err := controlplane.PressureTest(n, 100*time.Millisecond, window)
		if err != nil {
			return err
		}
		tb.row(m.Connections,
			fmt.Sprintf("%.1f", float64(m.HeapBytes)/1e6),
			m.Goroutines,
			fmt.Sprintf("%.1f", m.CPUPercentOfCore()),
			fmt.Sprintf("%.0f", float64(m.Connections)/0.1))
		tb.flush()
	}
	fmt.Fprintln(w, "shape check: heap and CPU grow ~linearly with connections (paper: 90% CPU,")
	fmt.Fprintln(w, "750 MB at 6000 connections on the 1-core VM)")
	return nil
}

// RunFig14 extrapolates controller resources for the two control loops
// using the paper-anchored cost models plus a locally calibrated one.
func RunFig14(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 14: controller resources, top-down vs bottom-up")

	// Calibrate a local model from a small pressure test.
	meas, err := controlplane.PressureTest(500, 100*time.Millisecond, 1500*time.Millisecond)
	if err != nil {
		return err
	}
	local := controlplane.Calibrate(meas)

	tb := newTable(w)
	tb.header("endpoints",
		"topdown-cores(paper)", "topdown-GB(paper)",
		"topdown-cores(local-calib)", "topdown-GB(local-calib)",
		"bottomup-cores", "bottomup-GB", "db-shards(10s spread)")
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		paper := controlplane.PaperTopDownCost
		bu := controlplane.PaperBottomUpCost
		tb.row(n,
			fmt.Sprintf("%.3g", paper.CoresFor(n)),
			fmt.Sprintf("%.3g", paper.MemBytesFor(n)/1e9),
			fmt.Sprintf("%.3g", local.CoresFor(n)),
			fmt.Sprintf("%.3g", local.MemBytesFor(n)/1e9),
			fmt.Sprintf("%.3g", bu.ControllerCores),
			fmt.Sprintf("%.3g", bu.ControllerBytes/1e9),
			bu.ShardsFor(n, 10*time.Second))
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: top-down needs ~167 cores / 125 GB at 1M endpoints; bottom-up")
	fmt.Fprintln(w, "stays at 1 core / 1 GB with the database scaled by shards (2 at 1M endpoints)")
	return nil
}
