package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"megate/internal/baselines"
	"megate/internal/core"
	"megate/internal/flowsim"
	"megate/internal/stats"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// RunFig8 reproduces the endpoint-count CDF study: sample Weibull endpoint
// attachments at several scale parameters, fit the distribution back, and
// print CDF points. The paper's observation — endpoint counts per site vary
// over orders of magnitude — shows in the P5/P50/P95 spread.
func RunFig8(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 8: endpoints per site, empirical CDF and Weibull fit (TWAN)")
	tb := newTable(w)
	tb.header("scale-param m", "sites", "min", "p5", "p50", "p95", "max", "fitted-shape", "fitted-scale", "maxKS")
	for _, mean := range []float64{100, 1000, 10000} {
		topo := topology.Build("TWAN")
		topology.AttachEndpoints(topo, mean, 0.7, cfg.seed())
		counts := topo.EndpointCountsBySite()
		xs := make([]float64, len(counts))
		for i, c := range counts {
			xs[i] = float64(c)
		}
		cdf := stats.NewCDF(xs)
		fit, err := stats.FitWeibull(xs)
		if err != nil {
			return err
		}
		// Kolmogorov–Smirnov distance between empirical and fitted CDF.
		maxKS := 0.0
		for _, x := range xs {
			if d := math.Abs(cdf.At(x) - fit.CDFAt(x)); d > maxKS {
				maxKS = d
			}
		}
		tb.row(mean, len(counts),
			cdf.Quantile(0), cdf.Quantile(0.05), cdf.Quantile(0.5),
			cdf.Quantile(0.95), cdf.Quantile(1),
			fit.Shape, fit.Scale, maxKS)
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: p95/p5 spans orders of magnitude; Weibull KS distance stays small")
	return nil
}

// RunTab2 prints the Table 2 inventory. Endpoint counts reflect the paper's
// full scale at Scale >= 4 and a proportional reduction below.
func RunTab2(cfg *Config) error {
	w := cfg.out()
	title(w, "Table 2: network topologies")
	tb := newTable(w)
	tb.header("topology", "sites", "links(undirected)", "endpoints(paper)", "endpoints(this run)")
	paper := map[string]int{"B4*": 120000, "Deltacom*": 1130000, "Cogentco*": 1970000, "TWAN": 1000000}
	for _, spec := range topology.Specs {
		topo := topology.Build(spec.Name)
		perSite := endpointsPerSite(spec.Name, cfg.scale())
		n := topology.AttachEndpointsExact(topo, perSite)
		tb.row(spec.Name, topo.NumSites(), topo.NumLinks()/2, paper[spec.Name], n)
	}
	tb.flush()
	return nil
}

// endpointsPerSite maps a topology to the largest per-site endpoint count
// used in the sweeps, scaled by cfg.Scale (paper-sized at Scale >= 4).
func endpointsPerSite(name string, scale float64) int {
	base := map[string]int{"B4*": 2500, "Deltacom*": 2500, "Cogentco*": 2500, "TWAN": 2500}[name]
	n := int(float64(base) * scale)
	if n > 10000 {
		n = 10000
	}
	if n < 1 {
		n = 1
	}
	return n
}

// sweepPoint is one (topology, endpoint-count) cell of Figures 9 and 10.
type sweepPoint struct {
	topoName string
	perSite  int
}

// sweep returns the endpoint-scale sweep per topology, growing with Scale.
func sweep(scale float64) []sweepPoint {
	pts := []sweepPoint{
		{"B4*", 10}, {"B4*", 100}, {"B4*", 1000},
		{"Deltacom*", 1}, {"Deltacom*", 10}, {"Deltacom*", 50},
		{"Cogentco*", 1}, {"Cogentco*", 10},
		{"TWAN", 10}, {"TWAN", 100},
	}
	if scale >= 2 {
		pts = append(pts, sweepPoint{"B4*", 10000}, sweepPoint{"Deltacom*", 200},
			sweepPoint{"Cogentco*", 100}, sweepPoint{"TWAN", 1000})
	}
	if scale >= 4 {
		// Paper-scale: O(1M) endpoints.
		pts = append(pts, sweepPoint{"Deltacom*", 10000}, sweepPoint{"Cogentco*", 10000},
			sweepPoint{"TWAN", 10000})
	}
	return pts
}

// benchSchemes returns the §6 schemes with wall-time-motivated size caps:
// beyond the cap a scheme reports "impractical", standing in for the
// paper's out-of-memory failures.
func benchSchemes() []baselines.Scheme {
	return []baselines.Scheme{
		&baselines.MegaTE{},
		&baselines.LPAll{MaxFlows: 6000},
		&baselines.NCFlow{MaxFlows: 60000},
		&baselines.TEAL{MaxFlows: 60000},
	}
}

// workload builds the demand matrix for a sweep point: total offered load
// is pinned to a fraction of what the network can carry (aggregate link
// capacity divided by the measured mean path length), so the
// satisfied-demand regime stays comparable across endpoint scales (§6.1's
// "randomly select the traffic demands" resampling). The per-flow mean is
// capped at 2% of the median link capacity — endpoint flows are small
// relative to WAN links, which is what makes indivisible placement viable.
func workload(topo *topology.Topology, seed int64, loadFactor float64) *traffic.Matrix {
	totalCap := 0.0
	caps := make([]float64, 0, topo.NumLinks())
	for _, l := range topo.Links {
		totalCap += l.CapacityMbps
		caps = append(caps, l.CapacityMbps)
	}
	offered := loadFactor * totalCap / meanPathLen(topo, seed)
	nFlows := float64(topo.NumEndpoints()) // ~1 flow per endpoint
	mean := offered / math.Max(nFlows, 1)
	if cap2 := 0.02 * stats.Percentile(caps, 50); mean > cap2 {
		mean = cap2
	}
	return traffic.Generate(topo, traffic.GenOptions{Seed: seed, MeanDemandMbps: mean})
}

// calibratedWorkload scales the workload so that MegaTE satisfies
// approximately targetSat of it — the regime the paper evaluates in (Figure
// 10 sits at 88–97% satisfied). A few probe solves converge well enough for
// shape comparisons; the same matrix is then given to every scheme.
func calibratedWorkload(topo *topology.Topology, seed int64, targetSat float64) *traffic.Matrix {
	m := workload(topo, seed, 0.5)
	for iter := 0; iter < 3; iter++ {
		sol, err := (&baselines.MegaTE{}).Solve(topo, m)
		if err != nil {
			return m
		}
		s := sol.SatisfiedFraction()
		var factor float64
		switch {
		case s >= 0.999:
			// Unbound: grow until capacity bites.
			factor = 1.5
		case math.Abs(s-targetSat) < 0.02:
			return m
		default:
			factor = s / targetSat
		}
		m = m.Scale(factor)
	}
	return m
}

// meanPathLen estimates the mean shortest-path hop count over sampled site
// pairs.
func meanPathLen(topo *topology.Topology, seed int64) float64 {
	n := topo.NumSites()
	if n < 2 {
		return 1
	}
	r := stats.NewRand(seed)
	hops, samples := 0, 0
	for i := 0; i < 50; i++ {
		a := topology.SiteID(r.Intn(n))
		b := topology.SiteID(r.Intn(n))
		if a == b {
			continue
		}
		if links, _, ok := topo.ShortestPath(a, b, nil, nil); ok {
			hops += len(links)
			samples++
		}
	}
	if samples == 0 {
		return 1
	}
	est := float64(hops) / float64(samples)
	if est < 1 {
		est = 1
	}
	return est
}

// RunFig9 measures TE computation time per scheme across the endpoint
// sweep.
func RunFig9(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 9: TE computation time (seconds; '-' = impractical at this scale)")
	tb := newTable(w)
	tb.header("topology", "endpoints", "flows", "MegaTE", "LP-all", "NCFlow", "TEAL")
	for _, pt := range sweep(cfg.scale()) {
		topo := topology.Build(pt.topoName)
		topology.AttachEndpointsExact(topo, pt.perSite)
		m := workload(topo, cfg.seed(), 0.5)
		cells := []interface{}{pt.topoName, topo.NumEndpoints(), m.NumFlows()}
		for _, scheme := range benchSchemes() {
			sol, err := scheme.Solve(topo, m)
			if err != nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.3g", sol.Runtime.Seconds()))
		}
		tb.row(cells...)
		tb.flush()
	}
	fmt.Fprintln(w, "shape check: MegaTE reaches >=20x more endpoints at comparable runtime;")
	fmt.Fprintln(w, "LP-all/NCFlow/TEAL become impractical while MegaTE completes hyper-scale points")
	return nil
}

// RunFig10 measures satisfied demand across the same sweep at a binding
// load.
func RunFig10(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 10: satisfied demand fraction ('-' = impractical)")
	tb := newTable(w)
	tb.header("topology", "endpoints", "MegaTE", "LP-all", "NCFlow", "TEAL")
	for _, pt := range sweep(cfg.scale()) {
		topo := topology.Build(pt.topoName)
		topology.AttachEndpointsExact(topo, pt.perSite)
		m := calibratedWorkload(topo, cfg.seed(), 0.93)
		cells := []interface{}{pt.topoName, topo.NumEndpoints()}
		for _, scheme := range benchSchemes() {
			sol, err := scheme.Solve(topo, m)
			if err != nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.4f", sol.SatisfiedFraction()))
		}
		tb.row(cells...)
		tb.flush()
	}
	fmt.Fprintln(w, "shape check: MegaTE within a few percent of LP-all where LP-all runs,")
	fmt.Fprintln(w, "NCFlow/TEAL below, and MegaTE's satisfaction does not degrade with scale")
	return nil
}

// RunFig11 compares QoS-1 latency across schemes on Deltacom*. Like the
// paper, it examines *typical site pairs* rather than a network-wide mean,
// so the comparison is not confounded by which long-distance flows each
// scheme happens to satisfy: for each of the busiest class-1 site pairs it
// measures each scheme's demand-weighted class-1 latency on that pair's
// flows, then averages across pairs.
func RunFig11(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 11: QoS-1 packet latency on typical site pairs (Deltacom*)")
	topo := topology.Build("Deltacom*")
	topology.AttachEndpointsExact(topo, 10)
	m := calibratedWorkload(topo, cfg.seed(), 0.85)

	// MegaTE with the class-aware pipeline; baselines are class-blind.
	mega := &baselines.MegaTE{Options: core.Options{SplitQoS: true}}
	schemes := []baselines.Scheme{mega, &baselines.NCFlow{}, &baselines.TEAL{}}
	sols := make([]*baselines.Solution, len(schemes))
	for i, scheme := range schemes {
		sol, err := scheme.Solve(topo, m)
		if err != nil {
			return err
		}
		sols[i] = sol
	}

	// Rank site pairs by class-1 demand; keep pairs where every scheme
	// satisfied a majority of the class-1 traffic so latencies compare
	// like for like.
	type pairInfo struct {
		pair   traffic.SitePair
		demand float64
	}
	var pairs []pairInfo
	for _, p := range m.Pairs() {
		d := 0.0
		for _, idx := range m.FlowsFor(p) {
			if m.Flows[idx].Class == traffic.Class1 {
				d += m.Flows[idx].DemandMbps
			}
		}
		if d == 0 {
			continue
		}
		ok := true
		for _, sol := range sols {
			sat := 0.0
			for _, idx := range m.FlowsFor(p) {
				if m.Flows[idx].Class == traffic.Class1 {
					sat += m.Flows[idx].DemandMbps * sol.FlowFraction[idx]
				}
			}
			if sat < 0.5*d {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Figure 11 examines a *typical* pair in the sense of Figure 2: one
		// whose aggregated traffic spreads over tunnels of different
		// latency. Skip pairs the class-blind schemes served entirely on
		// their shortest tunnel — there is nothing to compare there.
		spills := false
		for _, sol := range sols[1:] {
			if blend, ok2 := pairBlendLatency(m, sol, p); ok2 {
				if minLat, ok3 := pairMinPlacedLatency(m, sol, p); ok3 && blend > 1.03*minLat {
					spills = true
					break
				}
			}
		}
		if spills {
			pairs = append(pairs, pairInfo{p, d})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].demand != pairs[b].demand {
			return pairs[a].demand > pairs[b].demand
		}
		if pairs[a].pair.Src != pairs[b].pair.Src {
			return pairs[a].pair.Src < pairs[b].pair.Src
		}
		return pairs[a].pair.Dst < pairs[b].pair.Dst
	})
	if len(pairs) > 10 {
		pairs = pairs[:10]
	}
	if len(pairs) == 0 {
		return fmt.Errorf("bench: no commonly satisfied class-1 pairs")
	}

	// Latency model per scheme's data plane: MegaTE pins each flow to one
	// tunnel (SR header), so a class-1 flow's latency is its own tunnel's.
	// The conventional schemes deploy *aggregated* per-pair tunnel splits
	// and routers hash flows across them, so every flow of a pair —
	// class 1 included — experiences the pair's allocation-weighted blend
	// (§2.1; this inability is what MegaTE fixes).
	tb := newTable(w)
	tb.header("scheme", "QoS1 latency (ms, busiest pairs)", "normalized to MegaTE")
	base := math.NaN()
	for i, scheme := range schemes {
		pinned := i == 0 // MegaTE
		num, den := 0.0, 0.0
		for _, pi := range pairs {
			blend, blendOK := pairBlendLatency(m, sols[i], pi.pair)
			for _, idx := range m.FlowsFor(pi.pair) {
				f := &m.Flows[idx]
				if f.Class != traffic.Class1 || sols[i].FlowFraction[idx] <= 0 {
					continue
				}
				wgt := f.DemandMbps * sols[i].FlowFraction[idx]
				lat := sols[i].FlowLatency[idx]
				if !pinned && blendOK {
					lat = blend
				}
				num += wgt * lat
				den += wgt
			}
		}
		lat := num / den
		if math.IsNaN(base) {
			base = lat
		}
		tb.row(scheme.Name(), lat, lat/base)
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: MegaTE's QoS-1 latency is lowest (paper: -25% vs NCFlow, -33% vs TEAL)")
	return nil
}

// pairMinPlacedLatency returns the lowest tunnel latency a scheme placed
// any of the pair's traffic on.
func pairMinPlacedLatency(m *traffic.Matrix, sol *baselines.Solution, p traffic.SitePair) (float64, bool) {
	min, ok := math.Inf(1), false
	for _, idx := range m.FlowsFor(p) {
		for _, pl := range sol.FlowPlacement[idx] {
			if pl.Tunnel.Weight < min {
				min, ok = pl.Tunnel.Weight, true
			}
		}
	}
	return min, ok
}

// pairBlendLatency returns the allocation-weighted mean tunnel latency of
// all traffic a scheme placed on the site pair — the latency a hashed flow
// of that pair experiences under an aggregated deployment.
func pairBlendLatency(m *traffic.Matrix, sol *baselines.Solution, p traffic.SitePair) (float64, bool) {
	num, den := 0.0, 0.0
	for _, idx := range m.FlowsFor(p) {
		for _, pl := range sol.FlowPlacement[idx] {
			num += pl.Mbps * pl.Tunnel.Weight
			den += pl.Mbps
		}
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// RunFig12 reproduces the failure study: satisfied demand with 2 and 5
// link failures at two endpoint scales of Deltacom*. NCFlow's recompute
// time is modelled at the paper's measured 100 s for the larger scale.
func RunFig12(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 12: satisfied demand under link failures (Deltacom*)")
	tb := newTable(w)
	tb.header("endpoints", "failures", "scheme", "effective-satisfied", "stranded", "recompute")
	for _, perSite := range []int{10, 50} {
		topo := topology.Build("Deltacom*")
		topology.AttachEndpointsExact(topo, perSite)
		m := calibratedWorkload(topo, cfg.seed(), 0.95)
		for _, nFail := range []int{2, 5} {
			links := pickFailLinks(topo, nFail, cfg.seed())
			for _, scheme := range []baselines.Scheme{&baselines.MegaTE{}, &baselines.NCFlow{}} {
				scen := flowsim.FailureScenario{FailLinks: links, TEInterval: 5 * time.Minute}
				if scheme.Name() == "NCFlow" {
					// The paper measures ~100 s NCFlow recompute at the
					// larger scale; our reimplementation is faster, so the
					// production-grade recompute time is modelled.
					scen.RecomputeOverride = time.Duration(20*perSite) * time.Second / 10
				}
				out, err := flowsim.RunFailure(topo, m, scheme, scen)
				if err != nil {
					return err
				}
				tb.row(topo.NumEndpoints(), nFail, scheme.Name(),
					out.EffectiveSatisfied, out.StrandedFraction, out.Recompute.Round(time.Millisecond).String())
			}
		}
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: the MegaTE-NCFlow gap widens with scale (paper: ~4% -> 8.2%)")
	return nil
}

// pickFailLinks selects n distinct high-usage directed links
// deterministically.
func pickFailLinks(topo *topology.Topology, n int, seed int64) []topology.LinkID {
	r := stats.NewRand(seed)
	var links []topology.LinkID
	seen := map[topology.LinkID]bool{}
	for len(links) < n && len(seen) < topo.NumLinks() {
		l := topology.LinkID(r.Intn(topo.NumLinks()))
		rev, _ := topo.ReverseLink(l)
		if seen[l] || seen[rev] {
			continue
		}
		seen[l] = true
		seen[rev] = true
		links = append(links, l)
	}
	return links
}
