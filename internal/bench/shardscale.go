package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"megate/internal/cluster"
	"megate/internal/faultnet"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// shardReadLatency is the injected per-read network latency between the
// polling side and every shard. The benchmark measures *architectural*
// scaling — how aggregate read throughput grows when independent shard
// pipelines absorb the same op stream — so the bottleneck must be the
// per-shard round trip, not this machine's core count: sleeps overlap
// across shard connections even on a single core, CPU-bound handlers do
// not.
const shardReadLatency = 2 * time.Millisecond

// ShardScalePoint is the measurement at one shard count.
type ShardScalePoint struct {
	Nodes     int     `json:"nodes"`
	Records   int     `json:"records"`
	ReadOps   int     `json:"read_ops"`
	ReadMs    float64 `json:"read_wall_ms"`
	ReadQPS   float64 `json:"read_qps"`
	PublishMs float64 `json:"publish_ms"`
}

// GrowthStep is one live-resharding step of the growth pass.
type GrowthStep struct {
	FromNodes int `json:"from_nodes"`
	ToNodes   int `json:"to_nodes"`
	MovedKeys int `json:"moved_keys"`
	TotalKeys int `json:"total_keys"`
}

// ShardScaleReport is the experiment's output, serialized to
// BENCH_cluster.json.
type ShardScaleReport struct {
	Points []ShardScalePoint `json:"points"`
	// Scaling2x and Scaling4x are read-QPS ratios against the single-node
	// baseline; the acceptance floors are 1.7x and 3x.
	Scaling2x float64      `json:"read_scaling_1_to_2"`
	Scaling4x float64      `json:"read_scaling_1_to_4"`
	Growth    []GrowthStep `json:"growth"`
}

// MeasureShardScale measures aggregate read QPS against 1, 2, and 4 shards
// under a fixed per-read latency, then runs the 1->2->4 growth pass
// recording how many keys each live resharding moved.
func MeasureShardScale(cfg *Config) (*ShardScaleReport, error) {
	records := int(120 * cfg.scale())
	totalOps := int(600 * cfg.scale())
	const publishRecords = 24
	rep := &ShardScaleReport{}
	reg := telemetry.NewRegistry()

	keys := make([]string, records)
	val := make([]byte, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("te/cfg/ins-%04d", i)
	}

	for _, nodes := range []int{1, 2, 4} {
		pt, err := measurePoint(cfg, reg, nodes, keys, val, totalOps, publishRecords)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, *pt)
	}
	rep.Scaling2x = rep.Points[1].ReadQPS / rep.Points[0].ReadQPS
	rep.Scaling4x = rep.Points[2].ReadQPS / rep.Points[0].ReadQPS

	growth, err := measureGrowth(cfg, reg, keys, val)
	if err != nil {
		return nil, err
	}
	rep.Growth = growth
	return rep, nil
}

// measurePoint loads one cluster of n shards and drives totalOps reads
// through latency-injected persistent connections, one worker per shard on
// that shard's own keys — the paper's poll pattern, where every endpoint
// touches only its home shard.
func measurePoint(cfg *Config, reg *telemetry.Registry, n int, keys []string, val []byte, totalOps, publishRecords int) (*ShardScalePoint, error) {
	fab := faultnet.New(cfg.seed())
	fab.SetFaults("bench", "*", faultnet.Faults{ReadLatency: shardReadLatency})
	peer := make(map[string]string)
	dialer := func(addr string, timeout time.Duration) (net.Conn, error) {
		return fab.Dial("bench", peer[addr], "tcp", addr, timeout)
	}

	loader := cluster.New(0, cfg.seed(), func(c *cluster.Client) { c.Metrics = reg })
	measured := cluster.New(0, cfg.seed(), func(c *cluster.Client) { c.Metrics = reg })
	defer measured.Close()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := kvstore.Serve(l, kvstore.NewStore(4), kvstore.WithMetrics(reg))
		defer srv.Close()
		name := fmt.Sprintf("db%d", i)
		peer[srv.Addr()] = name
		if err := loader.Join(name, &kvstore.Client{Addr: srv.Addr(), Timeout: 2 * time.Second, Metrics: reg}); err != nil {
			return nil, err
		}
		// One persistent connection per shard: the shard's service pipeline.
		if err := measured.Join(name, &kvstore.Client{Addr: srv.Addr(), Persistent: true, Timeout: 5 * time.Second, Dialer: dialer, Metrics: reg}); err != nil {
			return nil, err
		}
	}

	// Preload through the fault-free loader; both clients share ring
	// parameters, so ownership agrees.
	byNode := make(map[string][]string)
	for _, k := range keys {
		if err := loader.Put(k, val); err != nil {
			return nil, err
		}
		byNode[loader.Owner(k)] = append(byNode[loader.Owner(k)], k)
	}

	// Publish-path timing: a delta of publishRecords config writes plus the
	// epoch fan-out, routed through the measured (latency-bearing) client.
	pubStart := time.Now()
	for i := 0; i < publishRecords; i++ {
		if err := measured.Put(keys[i%len(keys)], val); err != nil {
			return nil, err
		}
	}
	if err := measured.Publish(1); err != nil {
		return nil, err
	}
	publishMs := float64(time.Since(pubStart).Microseconds()) / 1000

	// Read pass: totalOps point reads, split evenly across shards, each
	// worker cycling its home shard's keys.
	opsPer := totalOps / n
	nodeNames := measured.Nodes()
	errs := make([]error, len(nodeNames))
	var wg sync.WaitGroup
	start := time.Now()
	for i, name := range nodeNames {
		i, homed := i, byNode[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(homed) == 0 {
				errs[i] = fmt.Errorf("shard %d owns no keys", i)
				return
			}
			for op := 0; op < opsPer; op++ {
				if _, ok, err := measured.Get(homed[op%len(homed)]); err != nil || !ok {
					errs[i] = fmt.Errorf("read %s: ok=%v err=%v", homed[op%len(homed)], ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	return &ShardScalePoint{
		Nodes:     n,
		Records:   len(keys),
		ReadOps:   opsPer * n,
		ReadMs:    float64(elapsed.Microseconds()) / 1000,
		ReadQPS:   float64(opsPer*n) / elapsed.Seconds(),
		PublishMs: publishMs,
	}, nil
}

// measureGrowth loads a single shard and grows it 1->2->4 with live
// resharding, recording the moved-key counts (the minimal-movement
// fractions: ~1/2 then ~1/2 of what remains per added node).
func measureGrowth(cfg *Config, reg *telemetry.Registry, keys []string, val []byte) ([]GrowthStep, error) {
	cc := cluster.New(0, cfg.seed(), func(c *cluster.Client) { c.Metrics = reg })
	defer cc.Close()
	newShard := func(i int) (*kvstore.Client, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := kvstore.Serve(l, kvstore.NewStore(4), kvstore.WithMetrics(reg))
		// Servers stay up for the whole pass; Close on return via cc is not
		// needed — they die with the process-local test/benchmark run.
		_ = srv
		return &kvstore.Client{Addr: srv.Addr(), Timeout: 2 * time.Second, Metrics: reg}, nil
	}
	nc, err := newShard(0)
	if err != nil {
		return nil, err
	}
	if err := cc.Join("db0", nc); err != nil {
		return nil, err
	}
	for _, k := range keys {
		if err := cc.Put(k, val); err != nil {
			return nil, err
		}
	}
	var steps []GrowthStep
	for _, target := range []int{2, 4} {
		for len(cc.Nodes()) < target {
			i := len(cc.Nodes())
			nc, err := newShard(i)
			if err != nil {
				return nil, err
			}
			moved, err := cc.AddNode(fmt.Sprintf("db%d", i), nc)
			if err != nil {
				return nil, err
			}
			steps = append(steps, GrowthStep{FromNodes: i, ToNodes: i + 1, MovedKeys: moved, TotalKeys: len(keys)})
		}
	}
	return steps, nil
}

// RunShardScale runs the shard-scaling experiment, prints its table, and
// writes BENCH_cluster.json next to the working directory.
func RunShardScale(cfg *Config) error {
	rep, err := MeasureShardScale(cfg)
	if err != nil {
		return err
	}
	w := cfg.out()
	title(w, "Ablation: sharded TE-database read throughput vs shard count")
	tb := newTable(w)
	tb.header("nodes", "records", "read_ops", "read_ms", "read_qps", "publish_ms")
	for _, p := range rep.Points {
		tb.row(p.Nodes, p.Records, p.ReadOps, p.ReadMs, p.ReadQPS, p.PublishMs)
	}
	tb.flush()
	fmt.Fprintf(w, "read scaling: 1->2 nodes %.2fx, 1->4 nodes %.2fx (floors: 1.7x / 3x)\n",
		rep.Scaling2x, rep.Scaling4x)
	for _, g := range rep.Growth {
		fmt.Fprintf(w, "growth %d->%d nodes: moved %d/%d keys\n", g.FromNodes, g.ToNodes, g.MovedKeys, g.TotalKeys)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_cluster.json", append(data, '\n'), 0o644)
}
