package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/kvstore"
	"megate/internal/stats"
	"megate/internal/topology"
)

// IncrementalInterval is one TE interval of the churn experiment, measured
// for both loops over the same perturbed matrix.
type IncrementalInterval struct {
	Interval       int     `json:"interval"`
	ColdMs         float64 `json:"cold_ms"`
	WarmMs         float64 `json:"warm_ms"`
	ColdConfigs    int     `json:"cold_configs_written"`
	WarmConfigs    int     `json:"warm_configs_written"`
	Stage2Hits     int     `json:"stage2_cache_hits"`
	PerturbedFlows int     `json:"perturbed_flows"`
	// FastPathHitRate is the fraction of the warm loop's per-class stage-1
	// solves this interval that the certificate-gated fast path served
	// (interval 0 is always 0: the fast path has no state yet).
	FastPathHitRate float64 `json:"fast_path_hit_rate"`
	// OptimalityGap is the warm loop's certified relative duality gap for
	// the interval — an upper bound on the distance of the published stage-1
	// allocation from the exact-simplex optimum.
	OptimalityGap float64 `json:"optimality_gap"`
}

// IncrementalReport is the churn experiment's output, serialized to
// BENCH_incremental.json. The summary means skip interval 0 (both loops are
// cold there; the warm loop only has prior state from interval 1 on).
type IncrementalReport struct {
	Topology      string                `json:"topology"`
	Flows         int                   `json:"flows"`
	Intervals     []IncrementalInterval `json:"intervals"`
	MeanColdMs    float64               `json:"mean_cold_ms"`
	MeanWarmMs    float64               `json:"mean_warm_ms"`
	Speedup       float64               `json:"speedup"`
	ColdConfigs   int                   `json:"total_cold_configs_written"`
	WarmConfigs   int                   `json:"total_warm_configs_written"`
	ChurnFraction float64               `json:"churn_fraction"`
	// FastPathHitRate is the steady-state (intervals 1+) mean of the warm
	// loop's per-interval hit rates; MaxOptimalityGap bounds the certified
	// gap across all intervals, fast-path and exact alike.
	FastPathHitRate   float64 `json:"fast_path_hit_rate"`
	MeanOptimalityGap float64 `json:"mean_optimality_gap"`
	MaxOptimalityGap  float64 `json:"max_optimality_gap"`
}

// MeasureIncremental runs the churn experiment: a cold control loop (full
// re-solve and full config rewrite every interval) and a warm one
// (Options.Incremental plus delta publication) process the same demand
// sequence, where each interval perturbs ~5% of flow demands by up to ±20%.
// Both loops see identical matrices, so the comparison isolates the
// incremental machinery.
func MeasureIncremental(cfg *Config) (*IncrementalReport, error) {
	const topoName = "B4*"
	perSite := int(10 * cfg.scale())
	intervals := 8
	const churn = 0.05

	buildLoop := func(incremental bool) (*controlplane.Controller, *topology.Topology) {
		topo := topology.Build(topoName)
		topology.AttachEndpointsExact(topo, perSite)
		solver := core.NewSolver(topo, core.Options{
			Incremental:       incremental,
			FastPath:          incremental,
			FastPathTolerance: cfg.FastPathTol,
		})
		store := kvstore.NewStore(2)
		return controlplane.NewController(solver, controlplane.StoreAdapter{Store: store}), topo
	}
	coldCtrl, topo := buildLoop(false)
	warmCtrl, _ := buildLoop(true)

	m := workload(topo, cfg.seed(), 0.6)
	rep := &IncrementalReport{Topology: topoName, Flows: m.NumFlows(), ChurnFraction: churn}
	r := stats.NewRand(cfg.seed() + 1)

	for it := 0; it < intervals; it++ {
		perturbed := 0
		if it > 0 {
			for i := range m.Flows {
				if r.Float64() < churn {
					m.Flows[i].DemandMbps *= 0.8 + 0.4*r.Float64()
					perturbed++
				}
			}
		}

		start := time.Now()
		_, coldN, err := coldCtrl.RunInterval(m)
		if err != nil {
			return nil, fmt.Errorf("cold interval %d: %w", it, err)
		}
		coldMs := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		warmRes, warmN, err := warmCtrl.RunInterval(m)
		if err != nil {
			return nil, fmt.Errorf("warm interval %d: %w", it, err)
		}
		warmMs := float64(time.Since(start).Microseconds()) / 1000

		// The cold loop's delta tracker would also suppress rewrites of
		// unchanged records; charge it the full fleet write instead, the
		// behavior this PR replaces.
		coldStats := coldCtrl.LastStats()
		coldN = coldStats.Written + coldStats.Unchanged

		hitRate := 0.0
		if n := warmRes.FastPathHits + warmRes.FastPathFallbacks; n > 0 {
			hitRate = float64(warmRes.FastPathHits) / float64(n)
		}
		rep.Intervals = append(rep.Intervals, IncrementalInterval{
			Interval:        it,
			ColdMs:          coldMs,
			WarmMs:          warmMs,
			ColdConfigs:     coldN,
			WarmConfigs:     warmN,
			Stage2Hits:      warmRes.Stage2CacheHits,
			PerturbedFlows:  perturbed,
			FastPathHitRate: hitRate,
			OptimalityGap:   warmRes.OptimalityGap,
		})
		rep.ColdConfigs += coldN
		rep.WarmConfigs += warmN
		rep.MeanOptimalityGap += warmRes.OptimalityGap
		if warmRes.OptimalityGap > rep.MaxOptimalityGap {
			rep.MaxOptimalityGap = warmRes.OptimalityGap
		}
		if it > 0 {
			rep.MeanColdMs += coldMs
			rep.MeanWarmMs += warmMs
			rep.FastPathHitRate += hitRate
		}
	}
	rep.MeanOptimalityGap /= float64(intervals)
	if intervals > 1 {
		rep.MeanColdMs /= float64(intervals - 1)
		rep.MeanWarmMs /= float64(intervals - 1)
		rep.FastPathHitRate /= float64(intervals - 1)
	}
	if rep.MeanWarmMs > 0 {
		rep.Speedup = rep.MeanColdMs / rep.MeanWarmMs
	}
	return rep, nil
}

// RunIncremental prints the churn experiment table and writes
// BENCH_incremental.json next to the working directory.
func RunIncremental(cfg *Config) error {
	rep, err := MeasureIncremental(cfg)
	if err != nil {
		return err
	}
	w := cfg.out()
	title(w, "Ablation: incremental solving under 5% demand churn ("+rep.Topology+")")
	tb := newTable(w)
	tb.header("interval", "perturbed", "cold ms", "warm ms", "cold cfgs", "warm cfgs", "s2 hits", "fp hit", "gap")
	for _, iv := range rep.Intervals {
		tb.row(iv.Interval, iv.PerturbedFlows, iv.ColdMs, iv.WarmMs, iv.ColdConfigs, iv.WarmConfigs, iv.Stage2Hits,
			fmt.Sprintf("%.2f", iv.FastPathHitRate), fmt.Sprintf("%.2e", iv.OptimalityGap))
	}
	tb.flush()
	fmt.Fprintf(w, "mean (intervals 1+): cold %.2f ms, warm %.2f ms, speedup %.2fx; configs written %d vs %d\n",
		rep.MeanColdMs, rep.MeanWarmMs, rep.Speedup, rep.ColdConfigs, rep.WarmConfigs)
	fmt.Fprintf(w, "fast path: steady-state hit rate %.2f, certified gap mean %.2e max %.2e\n",
		rep.FastPathHitRate, rep.MeanOptimalityGap, rep.MaxOptimalityGap)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_incremental.json", append(data, '\n'), 0o644)
}
