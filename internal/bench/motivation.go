package bench

import (
	"fmt"

	"megate/internal/controlplane"
	"megate/internal/hoststack"
	"megate/internal/packet"
	"megate/internal/router"
	"megate/internal/stats"
	"megate/internal/topology"
)

// RunFig2 reproduces the motivation measurement of §2.1 (Figure 2): the
// packet latency between fixed instance pairs over a day of connections.
// Under conventional TE, each new connection's five tuple hashes onto a
// possibly different tunnel, so one instance pair observes several latency
// modes; under MegaTE, the SR header pins every connection of the pair to
// one tunnel. Packets are actually built by the host stack and forwarded by
// the router fabric.
func RunFig2(cfg *Config) error {
	w := cfg.out()
	title(w, "Figure 2: per-instance-pair packet latency, conventional ECMP vs MegaTE SR")

	topo := topology.Build("Deltacom*")
	topology.AttachEndpointsExact(topo, 2)
	plan, err := controlplane.NewIPPlan(topo)
	if err != nil {
		return err
	}
	fabric := router.New(topo, func(ip [4]byte) (topology.SiteID, bool) {
		s, ok := plan.SiteOf(ip)
		return topology.SiteID(s), ok
	})
	// Conventional TE hashes flows across the pair's pre-established
	// tunnels at the ingress router.
	fabric.UseTunnelHashing(topology.NewTunnelSet(topo, 4))
	host := hoststack.NewHost("h", 1500, plan.SiteOf)
	defer host.Close()

	// Four instance pairs across distant sites, as in the paper.
	r := stats.NewRand(cfg.seed())
	type pair struct {
		src, dst topology.EndpointID
		ins      string
	}
	var pairs []pair
	for len(pairs) < 4 {
		s := topology.SiteID(r.Intn(topo.NumSites()))
		d := topology.SiteID(r.Intn(topo.NumSites()))
		if s == d {
			continue
		}
		src := topo.EndpointsAt(s)[0]
		dst := topo.EndpointsAt(d)[0]
		pairs = append(pairs, pair{src, dst, topo.Endpoints[src].Instance})
	}

	tb := newTable(w)
	tb.header("pair", "scheme", "p5 (ms)", "p50 (ms)", "p95 (ms)", "distinct modes")
	ts := topology.NewTunnelSet(topo, 4)
	for pi, p := range pairs {
		srcIP, dstIP := plan.IPOf(p.src), plan.IPOf(p.dst)
		srcSite := topo.Endpoints[p.src].Site
		dstSite := topo.Endpoints[p.dst].Site

		// Conventional: 96 connections over the day, no SR — ECMP hashes
		// each onto a path.
		var convLat []float64
		for c := 0; c < 96; c++ {
			tuple := packet.FiveTuple{
				SrcIP: srcIP, DstIP: dstIP,
				Proto: packet.IPProtoUDP, SrcPort: uint16(20000 + c), DstPort: 443,
			}
			frames, err := host.Send(tuple, 1, srcIP, dstIP, []byte("probe"))
			if err != nil {
				return err
			}
			d, err := fabric.Deliver(frames[0], srcSite)
			if err != nil {
				return err
			}
			convLat = append(convLat, d.LatencyMs)
		}

		// MegaTE: the agent installed the pair's pinned tunnel; every
		// connection of the instance follows it.
		tns := ts.For(srcSite, dstSite)
		hops := make([]uint32, len(tns[0].Sites))
		for i, s := range tns[0].Sites {
			hops[i] = uint32(s)
		}
		host.InstallPath(p.ins, uint32(dstSite), hops)
		var megaLat []float64
		for c := 0; c < 96; c++ {
			tuple := packet.FiveTuple{
				SrcIP: srcIP, DstIP: dstIP,
				Proto: packet.IPProtoUDP, SrcPort: uint16(30000 + c), DstPort: 443,
			}
			pid := 1000 + pi*100 + c
			host.RunProcess(pid, p.ins)
			host.OpenConnection(pid, tuple)
			frames, err := host.Send(tuple, 1, srcIP, dstIP, []byte("probe"))
			if err != nil {
				return err
			}
			d, err := fabric.Deliver(frames[0], srcSite)
			if err != nil {
				return err
			}
			megaLat = append(megaLat, d.LatencyMs)
		}

		tb.row(fmt.Sprintf("#%d", pi+1), "conventional",
			stats.Percentile(convLat, 5), stats.Percentile(convLat, 50), stats.Percentile(convLat, 95),
			distinctModes(convLat))
		tb.row("", "MegaTE",
			stats.Percentile(megaLat, 5), stats.Percentile(megaLat, 50), stats.Percentile(megaLat, 95),
			distinctModes(megaLat))
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: conventional pairs cluster into multiple latency modes (the paper's")
	fmt.Fprintln(w, "42 ms vs 20 ms groups); MegaTE pins each pair to a single mode")
	return nil
}

// distinctModes counts distinct latency values (rounded to 0.1 ms).
func distinctModes(xs []float64) int {
	seen := map[int64]bool{}
	for _, x := range xs {
		seen[int64(x*10+0.5)] = true
	}
	return len(seen)
}
