package bench

import (
	"fmt"
	"time"

	"megate/internal/baselines"
	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/lp"
	"megate/internal/ssp"
	"megate/internal/stats"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// RunAblationFastSSP contrasts the three subset-sum solvers at growing item
// counts: the exact DP's pseudopolynomial cost versus FastSSP's
// size-independent DP plus greedy, and the quality each achieves.
func RunAblationFastSSP(cfg *Config) error {
	w := cfg.out()
	title(w, "Ablation: FastSSP vs exact DP vs sorted greedy")
	r := stats.NewRand(cfg.seed())
	tb := newTable(w)
	tb.header("items", "capacity", "DP time", "DP fill", "FastSSP time", "FastSSP fill", "greedy time", "greedy fill")
	sizes := []int{1000, 10000, 100000}
	if cfg.scale() >= 2 {
		sizes = append(sizes, 1000000)
	}
	for _, n := range sizes {
		// Integer-valued demands keep the unit-1 DP exact, so its fill is a
		// true optimum to compare FastSSP against.
		values := make([]float64, n)
		total := 0.0
		for i := range values {
			values[i] = float64(1 + r.Intn(20))
			total += values[i]
		}
		capacity := total * 0.6

		dpTime, dpFill := "-", "-"
		if n <= 10000 { // the DP is O(n * capacity) and explodes beyond this
			start := time.Now()
			sol := ssp.ExactDP(values, capacity, 1)
			dpTime = time.Since(start).Round(time.Microsecond).String()
			dpFill = fmt.Sprintf("%.4f", sol.Total/capacity)
		}

		start := time.Now()
		fast := (&ssp.FastSSP{EpsPrime: 0.1}).Solve(values, capacity)
		fastTime := time.Since(start).Round(time.Microsecond)

		start = time.Now()
		greedy := ssp.GreedyDescending(values, capacity)
		greedyTime := time.Since(start).Round(time.Microsecond)

		tb.row(n, fmt.Sprintf("%.0f", capacity),
			dpTime, dpFill,
			fastTime.String(), fmt.Sprintf("%.4f", fast.Total/capacity),
			greedyTime.String(), fmt.Sprintf("%.4f", greedy.Total/capacity))
		tb.flush()
	}
	fmt.Fprintln(w, "shape check: FastSSP stays near-optimal at a fraction of the DP's cost and")
	fmt.Fprintln(w, "keeps running where the DP is impractical")
	return nil
}

// RunAblationContraction isolates the contribution of the two-stage
// contraction: MegaTE versus the direct endpoint-granular LP on the same
// workloads.
func RunAblationContraction(cfg *Config) error {
	w := cfg.out()
	title(w, "Ablation: two-stage contraction vs direct endpoint LP (B4*)")
	fmt.Fprintln(w, "B4* has 132 site pairs regardless of endpoint count, so the contracted")
	fmt.Fprintln(w, "stage-one problem stays constant while the direct LP grows with flows.")
	tb := newTable(w)
	tb.header("endpoints", "MegaTE time", "MegaTE satisfied", "LP-all time", "LP-all satisfied")
	perSites := []int{50, 500, 2000}
	if cfg.scale() >= 2 {
		perSites = append(perSites, 10000)
	}
	for _, perSite := range perSites {
		topo := topology.Build("B4*")
		topology.AttachEndpointsExact(topo, perSite)
		m := calibratedWorkload(topo, cfg.seed(), 0.93)

		mega, err := (&baselines.MegaTE{}).Solve(topo, m)
		if err != nil {
			return err
		}
		lpTime, lpSat := "-", "-"
		if sol, err := (&baselines.LPAll{MaxFlows: 6000}).Solve(topo, m); err == nil {
			lpTime = sol.Runtime.Round(time.Millisecond).String()
			lpSat = fmt.Sprintf("%.4f", sol.SatisfiedFraction())
		}
		tb.row(topo.NumEndpoints(),
			mega.Runtime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", mega.SatisfiedFraction()),
			lpTime, lpSat)
		tb.flush()
	}
	fmt.Fprintln(w, "shape check: contraction keeps runtime flat while the direct LP grows out of reach")
	return nil
}

// RunAblationSpread quantifies query spreading: the TE database's peak
// query rate (and shard requirement) with and without spreading the
// endpoint polls over the window.
func RunAblationSpread(cfg *Config) error {
	w := cfg.out()
	title(w, "Ablation: endpoint query spreading vs database peak QPS")
	tb := newTable(w)
	tb.header("endpoints", "window", "peak QPS (spread)", "shards (spread)", "peak QPS (no spread, 1s burst)", "shards (no spread)")
	bu := controlplane.PaperBottomUpCost
	for _, n := range []int{10000, 100000, 1000000} {
		window := 10 * time.Second
		spreadQPS := controlplane.PeakQPS(n, window)
		burstQPS := controlplane.PeakQPS(n, time.Second)
		tb.row(n, window.String(),
			fmt.Sprintf("%.0f", spreadQPS), bu.ShardsFor(n, window),
			fmt.Sprintf("%.0f", burstQPS), bu.ShardsFor(n, time.Second))
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: spreading over the 10 s window divides the peak by 10x, keeping")
	fmt.Fprintln(w, "the production deployment at two shards for a million endpoints")
	return nil
}

// RunAblationQoS compares the sequential per-class pipeline (§4.1) with a
// single joint solve: runtime and class-1 latency.
func RunAblationQoS(cfg *Config) error {
	w := cfg.out()
	title(w, "Ablation: sequential per-class allocation vs single joint solve (Deltacom*)")
	topo := topology.Build("Deltacom*")
	topology.AttachEndpointsExact(topo, 10)
	m := calibratedWorkload(topo, cfg.seed(), 0.9)

	tb := newTable(w)
	tb.header("pipeline", "time", "satisfied", "QoS1 latency (ms)", "QoS1 satisfied")
	for _, split := range []bool{true, false} {
		scheme := &baselines.MegaTE{Options: core.Options{SplitQoS: split}}
		sol, err := scheme.Solve(topo, m)
		if err != nil {
			return err
		}
		label := "sequential per class"
		if !split {
			label = "joint single class"
		}
		// Class-1 satisfaction.
		sat1, tot1 := 0.0, 0.0
		for i := range m.Flows {
			if m.Flows[i].Class != traffic.Class1 {
				continue
			}
			tot1 += m.Flows[i].DemandMbps
			sat1 += m.Flows[i].DemandMbps * sol.FlowFraction[i]
		}
		tb.row(label, sol.Runtime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", sol.SatisfiedFraction()),
			baselines.MeanLatency(sol, m, traffic.Class1),
			fmt.Sprintf("%.4f", sat1/tot1))
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: the sequential pipeline protects class-1 satisfaction and latency")
	return nil
}

// RunAblationSiteLP compares the MaxSiteFlow solvers: the exact GUB
// simplex, the default (1−ε) Fleischer approximation, and ADMM — runtime
// and objective ratio on Deltacom-scale site problems, plus the effect on
// MegaTE's end-to-end satisfied demand.
func RunAblationSiteLP(cfg *Config) error {
	w := cfg.out()
	title(w, "Ablation: MaxSiteFlow solver (exact GUB simplex vs approximations)")
	topo := topology.Build("Deltacom*")
	topology.AttachEndpointsExact(topo, 10)
	m := calibratedWorkload(topo, cfg.seed(), 0.93)

	solvers := []struct {
		name string
		s    core.SiteSolver
	}{
		{"GUB simplex (exact)", &lp.GUBSimplex{}},
		{"Fleischer eps=0.05", &lp.FleischerMCF{Epsilon: 0.05}},
		{"Fleischer eps=0.1", &lp.FleischerMCF{Epsilon: 0.1}},
		{"ADMM (TEAL-like)", &lp.ADMM{}},
	}
	tb := newTable(w)
	tb.header("site solver", "MegaTE time", "satisfied", "vs exact")
	base := -1.0
	for _, sv := range solvers {
		scheme := &baselines.MegaTE{Options: core.Options{SiteSolver: sv.s}}
		sol, err := scheme.Solve(topo, m)
		if err != nil {
			return err
		}
		sat := sol.SatisfiedFraction()
		if base < 0 {
			base = sat
		}
		tb.row(sv.name, sol.Runtime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", sat), fmt.Sprintf("%.4f", sat/base))
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: the exact simplex buys several percent of end-to-end satisfied")
	fmt.Fprintln(w, "demand over the approximations (stage two amplifies stage-one placement error),")
	fmt.Fprintln(w, "which is why the default AutoMCF prefers it within its cost budget")
	return nil
}

// RunAblationHybrid evaluates the §8 hybrid synchronization: persistent
// connections for the heavy-traffic instances, eventual consistency for the
// rest — convergence speed and controller cost across coverage levels.
func RunAblationHybrid(cfg *Config) error {
	w := cfg.out()
	title(w, "Ablation: hybrid synchronization (§8 future work)")

	// Heavy-tailed per-instance volumes: a small part of the flows account
	// for most of the traffic (§8).
	r := stats.NewRand(cfg.seed())
	volumes := make(map[string]float64, 100000)
	for i := 0; i < 100000; i++ {
		volumes[fmt.Sprintf("ins-%d", i)] = stats.Weibull{Shape: 0.4, Scale: 10}.Sample(r)
	}

	window := 10 * time.Second
	tb := newTable(w)
	tb.header("coverage", "persistent-conns", "converged@0s", "converged@2s", "cores", "mem-GB", "db-shards")
	for _, cover := range []float64{0, 0.5, 0.8, 0.95, 1} {
		plan := controlplane.PlanHybrid(volumes, cover)
		cost := plan.Cost(controlplane.PaperTopDownCost, controlplane.PaperBottomUpCost, window)
		tb.row(fmt.Sprintf("%.0f%%", cover*100), len(plan.Persistent),
			fmt.Sprintf("%.3f", plan.ConvergedShare(0, window)),
			fmt.Sprintf("%.3f", plan.ConvergedShare(2*time.Second, window)),
			fmt.Sprintf("%.2f", cost.Cores),
			fmt.Sprintf("%.2f", cost.MemBytes/1e9),
			cost.DBShards)
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: covering ~80-95% of traffic needs persistent connections to only")
	fmt.Fprintln(w, "a tiny instance fraction, converging most traffic instantly at near-bottom-up cost")
	return nil
}

// RunAblationResidual measures the stage-two residual pass's contribution
// to satisfied demand.
func RunAblationResidual(cfg *Config) error {
	w := cfg.out()
	title(w, "Ablation: stage-two residual pass (work conservation)")
	topo := topology.Build("Deltacom*")
	topology.AttachEndpointsExact(topo, 10)
	m := calibratedWorkload(topo, cfg.seed(), 0.9)

	tb := newTable(w)
	tb.header("residual pass", "satisfied", "time")
	for _, disabled := range []bool{false, true} {
		scheme := &baselines.MegaTE{Options: core.Options{DisableResidualPass: disabled}}
		sol, err := scheme.Solve(topo, m)
		if err != nil {
			return err
		}
		label := "on"
		if disabled {
			label = "off"
		}
		tb.row(label, fmt.Sprintf("%.4f", sol.SatisfiedFraction()), sol.Runtime.Round(time.Millisecond).String())
	}
	tb.flush()
	fmt.Fprintln(w, "shape check: the pass recovers the budget-quantization loss of indivisible flows")
	return nil
}
