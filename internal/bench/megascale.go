package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"megate/internal/cluster"
	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/kvstore"
	"megate/internal/stats"
	"megate/internal/telemetry"
	"megate/internal/topology"
)

// megascaleBudget is the acceptance budget for one full TE interval at the
// top of the sweep: solve plus publication for a million instance flows must
// fit well inside the paper's minutes-long TE interval — 15 seconds here.
const megascaleBudget = 15 * time.Second

// megascaleShards is the in-process TE-database cluster the intervals
// publish into.
const megascaleShards = 4

// defaultMegascaleFlows is the flow-count sweep; Config.MegascaleFlows
// overrides it (the megascale-short CI lane runs a truncated sweep).
var defaultMegascaleFlows = []int{100_000, 300_000, 1_000_000}

// MegascaleStages breaks one streamed interval into its pipeline stages.
// PublishTailMs is the publication work left after SolveStream returned —
// the part the streaming publisher did NOT manage to overlap with the solve.
type MegascaleStages struct {
	SiteMergeMs    float64 `json:"sitemerge_ms"`
	MaxSiteFlowMs  float64 `json:"maxsiteflow_ms"`
	FastSSPMs      float64 `json:"fastssp_ms"`
	PublishTailMs  float64 `json:"publish_tail_ms"`
	TotalMs        float64 `json:"total_ms"`
	AllocMB        float64 `json:"alloc_mb"`
	Mallocs        uint64  `json:"mallocs"`
	ConfigsWritten int     `json:"configs_written"`
}

// MegascalePoint is the measurement at one flow count: a cold interval (all
// state built from scratch) and a warm one (pooled scratch, incremental
// stage-2 cache, delta publication) over a 5%-perturbed matrix.
type MegascalePoint struct {
	Flows     int             `json:"flows"`
	Endpoints int             `json:"endpoints"`
	Cold      MegascaleStages `json:"cold"`
	Warm      MegascaleStages `json:"warm"`
	// WarmMallocsPerFlow is the steady-state allocation rate of the whole
	// pipeline — the zero-alloc scratch shows up as this staying far below
	// one object per flow.
	WarmMallocsPerFlow float64 `json:"warm_mallocs_per_flow"`
	Stage2CacheHits    int     `json:"warm_stage2_cache_hits"`
	// OverlapFraction is the share of final record writes that the streaming
	// publisher landed while the solve was still running.
	OverlapFraction float64 `json:"publish_overlap_fraction"`
	BatchFlushes    uint64  `json:"shard_batch_flushes"`
	BatchMeanKeys   float64 `json:"shard_batch_mean_keys"`
	// WithinBudget gates the steady-state (warm) interval — the one the TE
	// cadence actually repeats — against the 15 s budget. The cold
	// bootstrap interval (first solve after a controller start, solve-bound
	// rather than pipeline-bound) is reported separately.
	WithinBudget     bool `json:"within_budget"`
	ColdWithinBudget bool `json:"cold_within_budget"`
}

// MegascaleReport is the experiment's output, serialized to
// BENCH_megascale.json.
type MegascaleReport struct {
	Topology      string           `json:"topology"`
	Shards        int              `json:"shards"`
	Workers       int              `json:"stage2_workers"`
	BudgetSeconds float64          `json:"interval_budget_seconds"`
	Points        []MegascalePoint `json:"points"`
}

// MeasureMegascale sweeps the streamed interval pipeline across flow counts
// on TWAN: Weibull endpoints attached to an exact target total, ~1 instance
// flow per endpoint, stage 2 streamed into a 4-shard in-process cluster via
// per-shard batched writes.
func MeasureMegascale(cfg *Config) (*MegascaleReport, error) {
	flowCounts := cfg.MegascaleFlows
	if len(flowCounts) == 0 {
		flowCounts = defaultMegascaleFlows
	}
	rep := &MegascaleReport{
		Topology:      "TWAN",
		Shards:        megascaleShards,
		Workers:       runtime.GOMAXPROCS(0),
		BudgetSeconds: megascaleBudget.Seconds(),
	}
	for _, n := range flowCounts {
		pt, err := measureMegascalePoint(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("megascale at %d flows: %w", n, err)
		}
		rep.Points = append(rep.Points, *pt)
	}
	return rep, nil
}

func measureMegascalePoint(cfg *Config, flows int) (*MegascalePoint, error) {
	topo := topology.Build("TWAN")
	endpoints := topology.AttachEndpointsTarget(topo, flows, 0.7, cfg.seed())
	m := workload(topo, cfg.seed()+int64(flows), 0.6)

	reg := telemetry.NewRegistry()
	cc := cluster.New(32, cfg.seed(), func(c *cluster.Client) { c.Metrics = reg })
	defer cc.Close()
	for i := 0; i < megascaleShards; i++ {
		if err := cc.Join(fmt.Sprintf("db%d", i), cluster.StoreNode{Store: kvstore.NewStore(8)}); err != nil {
			return nil, err
		}
	}
	solver := core.NewSolver(topo, core.Options{Incremental: true})
	ctrl := controlplane.NewController(solver, controlplane.ClusterAdapter{Client: cc})
	ctrl.Metrics = reg

	runOne := func() (MegascaleStages, *core.Result, error) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, _, err := ctrl.RunIntervalStreaming(m)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return MegascaleStages{}, nil, err
		}
		st := ctrl.LastStats()
		solve := res.SiteMergeTime + res.SiteLPTime + res.SSPTime
		tail := wall - solve
		if tail < 0 {
			tail = 0
		}
		return MegascaleStages{
			SiteMergeMs:    durMs(res.SiteMergeTime),
			MaxSiteFlowMs:  durMs(res.SiteLPTime),
			FastSSPMs:      durMs(res.SSPTime),
			PublishTailMs:  durMs(tail),
			TotalMs:        durMs(wall),
			AllocMB:        float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			Mallocs:        after.Mallocs - before.Mallocs,
			ConfigsWritten: st.Written,
		}, res, nil
	}

	cold, _, err := runOne()
	if err != nil {
		return nil, err
	}

	// Steady state: perturb ~5% of demands and run the warm interval.
	r := stats.NewRand(cfg.seed() + 9)
	for i := range m.Flows {
		if r.Float64() < 0.05 {
			m.Flows[i].DemandMbps *= 0.8 + 0.4*r.Float64()
		}
	}
	warm, warmRes, err := runOne()
	if err != nil {
		return nil, err
	}

	pt := &MegascalePoint{
		Flows:              m.NumFlows(),
		Endpoints:          endpoints,
		Cold:               cold,
		Warm:               warm,
		WarmMallocsPerFlow: float64(warm.Mallocs) / float64(m.NumFlows()),
		Stage2CacheHits:    warmRes.Stage2CacheHits,
		OverlapFraction:    reg.Gauge(controlplane.MetricPublishOverlapFrac).Value(),
		WithinBudget:       warm.TotalMs <= megascaleBudget.Seconds()*1000,
		ColdWithinBudget:   cold.TotalMs <= megascaleBudget.Seconds()*1000,
	}
	bh := reg.Histogram(cluster.MetricClusterBatchKeys, telemetry.WideCountBuckets)
	pt.BatchFlushes = bh.Count()
	if pt.BatchFlushes > 0 {
		pt.BatchMeanKeys = bh.Sum() / float64(pt.BatchFlushes)
	}
	return pt, nil
}

func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// RunMegascale prints the megascale interval sweep and writes
// BENCH_megascale.json next to the working directory.
func RunMegascale(cfg *Config) error {
	rep, err := MeasureMegascale(cfg)
	if err != nil {
		return err
	}
	w := cfg.out()
	title(w, fmt.Sprintf("Megascale interval pipeline (%s, %d-shard cluster, %d workers, budget %.0fs)",
		rep.Topology, rep.Shards, rep.Workers, rep.BudgetSeconds))
	tb := newTable(w)
	tb.header("flows", "phase", "sitemerge ms", "maxsiteflow ms", "fastssp ms", "publish tail ms", "total ms", "alloc MB", "cfgs")
	for _, pt := range rep.Points {
		tb.row(pt.Flows, "cold", pt.Cold.SiteMergeMs, pt.Cold.MaxSiteFlowMs, pt.Cold.FastSSPMs, pt.Cold.PublishTailMs, pt.Cold.TotalMs, pt.Cold.AllocMB, pt.Cold.ConfigsWritten)
		tb.row(pt.Flows, "warm", pt.Warm.SiteMergeMs, pt.Warm.MaxSiteFlowMs, pt.Warm.FastSSPMs, pt.Warm.PublishTailMs, pt.Warm.TotalMs, pt.Warm.AllocMB, pt.Warm.ConfigsWritten)
	}
	tb.flush()
	for _, pt := range rep.Points {
		fmt.Fprintf(w, "%d flows: %.3f warm mallocs/flow, %d stage-2 cache hits, overlap %.2f, %d shard flushes (mean %.1f keys), steady-state within budget: %v (cold: %v)\n",
			pt.Flows, pt.WarmMallocsPerFlow, pt.Stage2CacheHits, pt.OverlapFraction, pt.BatchFlushes, pt.BatchMeanKeys, pt.WithinBudget, pt.ColdWithinBudget)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_megascale.json", append(data, '\n'), 0o644)
}
