package kvstore

import (
	"time"

	"megate/internal/telemetry"
)

// Metric names exported by the kvstore layer. The server side measures the
// database as the paper's Figure 13 does (query load and latency under
// millions of pollers); the client side measures what an endpoint or the
// controller experiences, retries and failovers included.
const (
	MetricServerOps        = "megate_kvstore_server_ops_total"
	MetricServerOpSeconds  = "megate_kvstore_server_op_seconds"
	MetricServerValueBytes = "megate_kvstore_server_value_bytes"

	MetricClientOps       = "megate_kvstore_client_ops_total"
	MetricClientErrors    = "megate_kvstore_client_errors_total"
	MetricClientRetries   = "megate_kvstore_client_retries_total"
	MetricClientOpSeconds = "megate_kvstore_client_op_seconds"

	MetricReplicaFailovers  = "megate_kvstore_replica_failovers_total"
	MetricReplicaPromotions = "megate_kvstore_replica_promotions_total"

	// Admission-control and accept-side pressure signals (ISSUE 8): how many
	// requests the server shed with BUSY, how deep the wait queue sits, how
	// the delta journal is answering, and connection-level accept/reject
	// accounting including accept-loop backoff pauses.
	MetricServerShed          = "megate_kvstore_server_shed_total"
	MetricServerQueueDepth    = "megate_kvstore_server_queue_depth"
	MetricServerDeltaHits     = "megate_kvstore_server_delta_hits_total"
	MetricServerDeltaGaps     = "megate_kvstore_server_delta_gaps_total"
	MetricConnsAccepted       = "megate_kvstore_accepted_total"
	MetricConnsRejected       = "megate_kvstore_rejected_total"
	MetricServerAcceptBackoff = "megate_kvstore_accept_backoff_total"
)

// serverOps / clientOps are the op label values; "unknown" absorbs protocol
// garbage so a fuzzer cannot mint unbounded series.
var (
	serverOps = []string{"version", "get", "put", "del", "keys", "snap", "delta", "publish", "unknown"}
	// "mput" is PutBatch: one client op covering a whole pipelined batch
	// (the server still counts each PUT individually).
	clientOps = []string{"version", "get", "put", "mput", "del", "keys", "snap", "delta", "publish"}
)

// RegisterMetrics pre-registers the kvstore metric inventory in r so a
// scrape sees zero-valued series before the first operation. Instruments
// are get-or-create: servers and clients pointed at the same registry share
// these exact series.
func RegisterMetrics(r *telemetry.Registry) {
	newServerMetrics(r)
	newClientMetrics(r)
	newReplicaMetrics(r)
}

type serverMetrics struct {
	ops        map[string]*telemetry.Counter
	lat        map[string]*telemetry.Histogram
	valueBytes *telemetry.Histogram

	shed          *telemetry.Counter
	queueDepth    *telemetry.Gauge
	deltaHits     *telemetry.Counter
	deltaGaps     *telemetry.Counter
	accepted      *telemetry.Counter
	rejected      *telemetry.Counter
	acceptBackoff *telemetry.Counter
}

func newServerMetrics(r *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{
		ops:        make(map[string]*telemetry.Counter, len(serverOps)),
		lat:        make(map[string]*telemetry.Histogram, len(serverOps)),
		valueBytes: r.Histogram(MetricServerValueBytes, telemetry.SizeBuckets),

		shed:          r.Counter(MetricServerShed),
		queueDepth:    r.Gauge(MetricServerQueueDepth),
		deltaHits:     r.Counter(MetricServerDeltaHits),
		deltaGaps:     r.Counter(MetricServerDeltaGaps),
		accepted:      r.Counter(MetricConnsAccepted),
		rejected:      r.Counter(MetricConnsRejected),
		acceptBackoff: r.Counter(MetricServerAcceptBackoff),
	}
	for _, op := range serverOps {
		m.ops[op] = r.Counter(MetricServerOps, "op", op)
		m.lat[op] = r.Histogram(MetricServerOpSeconds, telemetry.TimeBuckets, "op", op)
	}
	return m
}

// observe records one handled command; ops outside the protocol fold into
// the "unknown" series.
func (m *serverMetrics) observe(op string, start time.Time) {
	c, ok := m.ops[op]
	if !ok {
		op = "unknown"
		c = m.ops[op]
	}
	c.Inc()
	m.lat[op].Observe(time.Since(start).Seconds())
}

type clientMetrics struct {
	ops     map[string]*telemetry.Counter
	errs    map[string]*telemetry.Counter
	lat     map[string]*telemetry.Histogram
	retries *telemetry.Counter
}

func newClientMetrics(r *telemetry.Registry) *clientMetrics {
	m := &clientMetrics{
		ops:     make(map[string]*telemetry.Counter, len(clientOps)),
		errs:    make(map[string]*telemetry.Counter, len(clientOps)),
		lat:     make(map[string]*telemetry.Histogram, len(clientOps)),
		retries: r.Counter(MetricClientRetries),
	}
	for _, op := range clientOps {
		m.ops[op] = r.Counter(MetricClientOps, "op", op)
		m.errs[op] = r.Counter(MetricClientErrors, "op", op)
		m.lat[op] = r.Histogram(MetricClientOpSeconds, telemetry.TimeBuckets, "op", op)
	}
	return m
}

// observe records one whole client operation (retry pauses included in the
// latency — that is what the caller waited).
func (m *clientMetrics) observe(op string, start time.Time, attempts int, err error) {
	m.ops[op].Inc()
	if attempts > 1 {
		m.retries.Add(uint64(attempts - 1))
	}
	if err != nil {
		m.errs[op].Inc()
	}
	m.lat[op].Observe(time.Since(start).Seconds())
}

type replicaMetrics struct {
	failovers  *telemetry.Counter
	promotions *telemetry.Counter
}

func newReplicaMetrics(r *telemetry.Registry) *replicaMetrics {
	return &replicaMetrics{
		failovers:  r.Counter(MetricReplicaFailovers),
		promotions: r.Counter(MetricReplicaPromotions),
	}
}
