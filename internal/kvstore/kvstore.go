// Package kvstore implements the TE database at the heart of MegaTE's
// bottom-up control loop (§3.2): a sharded in-memory key-value store with a
// monotone configuration version. The controller writes TE configurations
// and then publishes a new version; each endpoint polls the version with a
// cheap short connection and pulls the configurations it needs only when
// the version changed — eventual consistency instead of millions of
// persistent controller connections.
//
// The paper builds this on a customized Redis ("up to 160,000 concurrent
// queries per second using two shards", linearly scalable with shards);
// here it is a Go TCP server with the same structure: hash-sharded maps, a
// published version counter, and a line-oriented protocol.
package kvstore

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Store is the sharded in-memory database.
type Store struct {
	shards  []shard
	version atomic.Uint64
	queries atomic.Uint64
	// dlog, when enabled, journals every write for the snapshot+delta
	// synchronization protocol (delta.go). Nil until EnableDeltaLog.
	dlog atomic.Pointer[deltaLog]
}

type shard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewStore creates a store with the given shard count (minimum 1). The
// paper's production deployment uses two shards.
func NewStore(nShards int) *Store {
	if nShards < 1 {
		nShards = 1
	}
	s := &Store{shards: make([]shard, nShards)}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

func (s *Store) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Get returns the value for key. Every Get counts as one query for the
// load-measurement experiments.
func (s *Store) Get(key string) ([]byte, bool) {
	s.queries.Add(1)
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[key]
	return v, ok
}

// Put stores value under key. The write becomes visible immediately but is
// only *advertised* once the controller publishes a new version.
func (s *Store) Put(key string, value []byte) {
	sh := s.shardFor(key)
	cp := make([]byte, len(value))
	copy(cp, value)
	sh.mu.Lock()
	sh.m[key] = cp
	sh.mu.Unlock()
	if dl := s.dlog.Load(); dl != nil {
		dl.record(key, cp, false)
	}
}

// Delete removes key.
func (s *Store) Delete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
	if dl := s.dlog.Load(); dl != nil {
		dl.record(key, nil, true)
	}
}

// Version returns the currently published configuration version. Version
// polls also count as queries.
func (s *Store) Version() uint64 {
	s.queries.Add(1)
	return s.version.Load()
}

// Publish advertises version v. Versions must increase; stale publishes are
// ignored and the current version is returned.
func (s *Store) Publish(v uint64) uint64 {
	for {
		cur := s.version.Load()
		if v <= cur {
			return cur
		}
		if s.version.CompareAndSwap(cur, v) {
			if dl := s.dlog.Load(); dl != nil {
				dl.publishTo(v)
			}
			return v
		}
	}
}

// Bump atomically increments and returns the published version.
func (s *Store) Bump() uint64 {
	v := s.version.Add(1)
	if dl := s.dlog.Load(); dl != nil {
		dl.publishTo(v)
	}
	return v
}

// Queries returns the cumulative query count (gets + version polls).
func (s *Store) Queries() uint64 { return s.queries.Load() }

// ResetQueries zeroes the query counter and returns the previous value.
func (s *Store) ResetQueries() uint64 { return s.queries.Swap(0) }

// Keys returns all keys with the given prefix, across shards, in sorted
// order — callers fingerprint and diff key sets across intervals, so the
// listing must not leak map iteration order. Used by the controller to
// gather per-host flow reports.
func (s *Store) Keys(prefix string) []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			if strings.HasPrefix(k, prefix) {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of keys across shards.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}
