package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Server exposes a Store over a line-oriented TCP protocol:
//
//	VERSION\n                 -> VERSION <n>\n
//	GET <key>\n               -> VALUE <len>\n<bytes>\n | NONE\n
//	PUT <key> <len>\n<bytes>  -> OK\n
//	DEL <key>\n               -> OK\n
//	KEYS <prefix>\n           -> KEYS <n>\n followed by n key lines
//	PUBLISH <version>\n       -> OK <version>\n
//
// Connections may issue any number of commands; MegaTE endpoints typically
// issue one or two and hang up (the "short connection" poll of §3.2).
type Server struct {
	store *Store
	l     net.Listener

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// Serve starts serving the store on l until Close.
func Serve(l net.Listener, store *Store) *Server {
	s := &Server{store: store, l: l, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close stops the server and closes open connections. Closing twice is
// safe.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		_ = s.l.Close()
		// Snapshot under the lock, close outside it: a handler blocked on a
		// peer must not be able to stall every connection add/remove.
		s.mu.Lock()
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
		s.wg.Wait()
	})
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "VERSION":
			fmt.Fprintf(w, "VERSION %d\n", s.store.Version())
		case "GET":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: GET <key>\n")
				break
			}
			if v, ok := s.store.Get(fields[1]); ok {
				fmt.Fprintf(w, "VALUE %d\n", len(v))
				w.Write(v)
				w.WriteByte('\n')
			} else {
				fmt.Fprint(w, "NONE\n")
			}
		case "PUT":
			if len(fields) != 3 {
				fmt.Fprint(w, "ERR usage: PUT <key> <len>\n")
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 || n > 64<<20 {
				fmt.Fprint(w, "ERR bad length\n")
				break
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r, buf); err != nil {
				return
			}
			s.store.Put(fields[1], buf)
			fmt.Fprint(w, "OK\n")
		case "DEL":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: DEL <key>\n")
				break
			}
			s.store.Delete(fields[1])
			fmt.Fprint(w, "OK\n")
		case "KEYS":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: KEYS <prefix>\n")
				break
			}
			keys := s.store.Keys(fields[1]) // already sorted by the store
			fmt.Fprintf(w, "KEYS %d\n", len(keys))
			for _, k := range keys {
				fmt.Fprintln(w, k)
			}
		case "PUBLISH":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: PUBLISH <version>\n")
				break
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprint(w, "ERR bad version\n")
				break
			}
			fmt.Fprintf(w, "OK %d\n", s.store.Publish(v))
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client talks to a Server. Its zero-value mode dials a fresh connection
// per operation — the short-connection discipline the endpoints use so the
// database never holds millions of sockets.
type Client struct {
	Addr string
	// Persistent keeps one connection open across operations (used by the
	// top-down baseline and by throughput benchmarks).
	Persistent bool

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// ErrProtocol reports an unexpected server response.
var ErrProtocol = errors.New("kvstore: protocol error")

func (c *Client) dial() (net.Conn, *bufio.Reader, func(), error) {
	if c.Persistent {
		c.mu.Lock()
		if c.conn == nil {
			//lint:ignore lockcheck persistent mode serializes whole operations over the one connection; dialing under the lock is that design
			conn, err := net.Dial("tcp", c.Addr)
			if err != nil {
				c.mu.Unlock()
				return nil, nil, nil, err
			}
			c.conn = conn
			c.r = bufio.NewReader(conn)
		}
		conn, r := c.conn, c.r
		return conn, r, func() { c.mu.Unlock() }, nil
	}
	conn, err := net.Dial("tcp", c.Addr)
	if err != nil {
		return nil, nil, nil, err
	}
	return conn, bufio.NewReader(conn), func() { _ = conn.Close() }, nil
}

// resetPersistent drops a broken persistent connection.
func (c *Client) resetPersistent() {
	if c.Persistent && c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.r = nil
	}
}

// Close closes a persistent connection if one is open.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetPersistent()
}

// Version polls the published configuration version.
func (c *Client) Version() (uint64, error) {
	conn, r, release, err := c.dial()
	if err != nil {
		return 0, err
	}
	defer release()
	if _, err := fmt.Fprint(conn, "VERSION\n"); err != nil {
		c.resetPersistent()
		return 0, err
	}
	line, err := r.ReadString('\n')
	if err != nil {
		c.resetPersistent()
		return 0, err
	}
	var v uint64
	if _, err := fmt.Sscanf(line, "VERSION %d", &v); err != nil {
		return 0, fmt.Errorf("%w: %q", ErrProtocol, line)
	}
	return v, nil
}

// Get fetches key; ok is false when the key is absent.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	conn, r, release, err := c.dial()
	if err != nil {
		return nil, false, err
	}
	defer release()
	if _, err := fmt.Fprintf(conn, "GET %s\n", key); err != nil {
		c.resetPersistent()
		return nil, false, err
	}
	line, err := r.ReadString('\n')
	if err != nil {
		c.resetPersistent()
		return nil, false, err
	}
	if strings.TrimSpace(line) == "NONE" {
		return nil, false, nil
	}
	var n int
	if _, err := fmt.Sscanf(line, "VALUE %d", &n); err != nil {
		return nil, false, fmt.Errorf("%w: %q", ErrProtocol, line)
	}
	buf := make([]byte, n+1) // value plus trailing newline
	if _, err := io.ReadFull(r, buf); err != nil {
		c.resetPersistent()
		return nil, false, err
	}
	return buf[:n], true, nil
}

// Put stores value under key.
func (c *Client) Put(key string, value []byte) error {
	conn, r, release, err := c.dial()
	if err != nil {
		return err
	}
	defer release()
	if _, err := fmt.Fprintf(conn, "PUT %s %d\n", key, len(value)); err != nil {
		c.resetPersistent()
		return err
	}
	if _, err := conn.Write(value); err != nil {
		c.resetPersistent()
		return err
	}
	line, err := r.ReadString('\n')
	if err != nil {
		c.resetPersistent()
		return err
	}
	if strings.TrimSpace(line) != "OK" {
		return fmt.Errorf("%w: %q", ErrProtocol, line)
	}
	return nil
}

// Delete removes key; deleting an absent key is a no-op.
func (c *Client) Delete(key string) error {
	conn, r, release, err := c.dial()
	if err != nil {
		return err
	}
	defer release()
	if _, err := fmt.Fprintf(conn, "DEL %s\n", key); err != nil {
		c.resetPersistent()
		return err
	}
	line, err := r.ReadString('\n')
	if err != nil {
		c.resetPersistent()
		return err
	}
	if strings.TrimSpace(line) != "OK" {
		return fmt.Errorf("%w: %q", ErrProtocol, line)
	}
	return nil
}

// Keys lists keys with the given prefix.
func (c *Client) Keys(prefix string) ([]string, error) {
	conn, r, release, err := c.dial()
	if err != nil {
		return nil, err
	}
	defer release()
	if _, err := fmt.Fprintf(conn, "KEYS %s\n", prefix); err != nil {
		c.resetPersistent()
		return nil, err
	}
	line, err := r.ReadString('\n')
	if err != nil {
		c.resetPersistent()
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(line, "KEYS %d", &n); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrProtocol, line)
	}
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k, err := r.ReadString('\n')
		if err != nil {
			c.resetPersistent()
			return nil, err
		}
		keys = append(keys, strings.TrimSpace(k))
	}
	return keys, nil
}

// Publish advertises a new configuration version.
func (c *Client) Publish(v uint64) error {
	conn, r, release, err := c.dial()
	if err != nil {
		return err
	}
	defer release()
	if _, err := fmt.Fprintf(conn, "PUBLISH %d\n", v); err != nil {
		c.resetPersistent()
		return err
	}
	line, err := r.ReadString('\n')
	if err != nil {
		c.resetPersistent()
		return err
	}
	if !strings.HasPrefix(line, "OK") {
		return fmt.Errorf("%w: %q", ErrProtocol, line)
	}
	return nil
}
