package kvstore

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"megate/internal/telemetry"
)

// MaxValueLen caps a single stored value. The server rejects larger PUTs and
// the client rejects VALUE headers announcing more, so both ends agree on
// the largest frame that can legitimately cross the wire.
const MaxValueLen = 64 << 20

// MaxKeys caps how many keys one KEYS response may announce. The client
// rejects counts above it the same way Get rejects implausible value
// lengths; at one config record per instance it is comfortably above the
// paper's millions-of-endpoints scale split across shards.
const MaxKeys = 1 << 24

// AllKeysPrefix is the wire sentinel the client sends for an empty Keys
// prefix — the space-delimited command line cannot carry an empty field.
const AllKeysPrefix = "*"

// DefaultRetryAfter is the base server-suggested retry hint carried in BUSY
// responses when Admission.RetryAfter is zero.
const DefaultRetryAfter = 50 * time.Millisecond

// Admission bounds the server's concurrent request processing — the
// per-shard admission control that keeps a poll storm from collapsing the
// database. At most MaxInflight commands execute at once; up to MaxQueue
// further commands wait their turn; anything beyond is shed with an explicit
// BUSY response carrying a retry-after suggestion scaled by queue depth, so
// a herd re-spreads itself instead of hammering a saturated shard.
type Admission struct {
	// MaxInflight is the concurrent-command limit; values < 1 disable
	// admission control entirely.
	MaxInflight int
	// MaxQueue is how many commands may wait for an inflight slot before
	// the server starts shedding; values < 0 mean 0 (shed immediately when
	// saturated).
	MaxQueue int
	// RetryAfter is the base retry hint for BUSY responses; zero means
	// DefaultRetryAfter. The actual suggestion grows with queue depth.
	RetryAfter time.Duration
}

// Server exposes a Store over a line-oriented TCP protocol:
//
//	VERSION\n                  -> VERSION <n>\n
//	GET <key>\n                -> VALUE <len>\n<bytes>\n | NONE\n
//	PUT <key> <len>\n<bytes>   -> OK\n
//	DEL <key>\n                -> OK\n
//	KEYS <prefix>\n            -> KEYS <n>\n followed by n key lines
//	                              (prefix "*" enumerates every key)
//	SNAP <prefix>\n            -> SNAP <version> <n>\n followed by n records,
//	                              each "<key> <len>\n<bytes>\n"
//	DELTA <since> <prefix>\n   -> DELTA <version> <n>\n followed by n changes,
//	                              each "PUT <key> <len>\n<bytes>\n" or
//	                              "DEL <key>\n"; or GAP <version>\n when the
//	                              delta journal no longer reaches back to
//	                              <since> (client must SNAP instead)
//	PUBLISH <version>\n        -> OK <version>\n
//
// Any command may instead be answered with "BUSY <retry-ms>\n" when
// admission control sheds it; the request had no effect and should be
// retried no sooner than the suggested delay.
//
// Connections may issue any number of commands; MegaTE endpoints typically
// issue one or two and hang up (the "short connection" poll of §3.2).
type Server struct {
	store        *Store
	l            net.Listener
	idle         time.Duration
	mreg         *telemetry.Registry
	adm          Admission
	sem          chan struct{} // nil when admission control is off
	queued       atomic.Int64
	maxConns     int
	serviceDelay time.Duration

	mOnce sync.Once
	m     *serverMetrics

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// metrics lazily binds the server's instrument handles so handlers work
// even on a Server assembled without Serve (tests, fuzzing).
func (s *Server) metrics() *serverMetrics {
	s.mOnce.Do(func() {
		reg := s.mreg
		if reg == nil {
			reg = telemetry.Default
		}
		s.m = newServerMetrics(reg)
	})
	return s.m
}

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithIdleTimeout closes connections that stay silent between commands for
// longer than d. Zero (the default) disables the idle deadline; endpoints
// that poll and hang up are unaffected either way, but a leaked persistent
// connection can no longer pin a handler goroutine forever.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idle = d }
}

// WithMetrics routes the server's op counters and latency histograms into
// r instead of telemetry.Default (chaos runs and tests isolate themselves
// this way).
func WithMetrics(r *telemetry.Registry) ServerOption {
	return func(s *Server) { s.mreg = r }
}

// WithAdmission enables per-shard admission control and load shedding with
// the given bounds.
func WithAdmission(a Admission) ServerOption {
	return func(s *Server) { s.adm = a }
}

// WithMaxConns caps concurrently open connections; an accept beyond the cap
// is closed immediately and counted in the rejected-connections metric.
// Zero (the default) leaves connections unbounded.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) { s.maxConns = n }
}

// WithServiceDelay injects d of synthetic per-command service time, spent
// while the command holds its admission slot. An in-memory store serves in
// microseconds, which makes admission pressure nearly impossible to create
// reproducibly on loopback; chaos storms and benches use this to model the
// store service time of a database that is actually under load, so sheds
// become a structural property of offered load versus MaxInflight/d
// capacity instead of a scheduling accident.
func WithServiceDelay(d time.Duration) ServerOption {
	return func(s *Server) { s.serviceDelay = d }
}

// Serve starts serving the store on l until Close.
func Serve(l net.Listener, store *Store, opts ...ServerOption) *Server {
	s := &Server{store: store, l: l, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	for _, opt := range opts {
		opt(s)
	}
	if s.adm.MaxInflight > 0 {
		s.sem = make(chan struct{}, s.adm.MaxInflight)
		if s.adm.MaxQueue < 0 {
			s.adm.MaxQueue = 0
		}
	}
	s.metrics()
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// retryAfterMs computes the BUSY retry suggestion at queue depth q: the base
// hint scaled up linearly as the wait queue fills, so the deeper the
// overload the wider the herd re-spreads.
func (s *Server) retryAfterMs(q int64) int64 {
	base := s.adm.RetryAfter
	if base <= 0 {
		base = DefaultRetryAfter
	}
	den := int64(s.adm.MaxQueue)
	if den < 1 {
		den = 1
	}
	ms := (base + base*time.Duration(q)/time.Duration(den)).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// admitOrBusy gates one fully parsed command through the admission
// semaphore. A shed request gets its BUSY response written here and ok =
// false back; an admitted request must call release after the store op.
// Gating happens after request parsing (a shed PUT still consumed its value
// bytes) so the connection never desynchronizes.
func (s *Server) admitOrBusy(w *bufio.Writer, m *serverMetrics) (release func(), ok bool) {
	if s.sem == nil {
		s.serviceSleep()
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		s.serviceSleep()
		return func() { <-s.sem }, true
	default:
	}
	q := s.queued.Add(1)
	m.queueDepth.Set(float64(q))
	if q > int64(s.adm.MaxQueue) {
		m.queueDepth.Set(float64(s.queued.Add(-1)))
		m.shed.Inc()
		fmt.Fprintf(w, "BUSY %d\n", s.retryAfterMs(q))
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
		m.queueDepth.Set(float64(s.queued.Add(-1)))
		s.serviceSleep()
		return func() { <-s.sem }, true
	case <-s.done:
		// Shutting down: shed instead of executing so Close never waits on
		// a queued backlog.
		m.queueDepth.Set(float64(s.queued.Add(-1)))
		m.shed.Inc()
		fmt.Fprintf(w, "BUSY %d\n", s.retryAfterMs(q))
		return nil, false
	}
}

// serviceSleep spends the configured synthetic service time, cut short by
// shutdown so Close never waits out a sleeping backlog.
func (s *Server) serviceSleep() {
	if s.serviceDelay <= 0 {
		return
	}
	t := time.NewTimer(s.serviceDelay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.done:
	}
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close stops the server and closes open connections. Closing twice is
// safe.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		_ = s.l.Close()
		// Snapshot under the lock, close outside it: a handler blocked on a
		// peer must not be able to stall every connection add/remove.
		s.mu.Lock()
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
		s.wg.Wait()
	})
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	m := s.metrics()
	// Transient accept errors (EMFILE, ECONNABORTED) back off exponentially
	// instead of hot-spinning; a successful accept resets the pause. Every
	// pause is counted so an operator sees accept pressure instead of the
	// loop silently sleeping through it.
	backoff := 5 * time.Millisecond
	const maxBackoff = 250 * time.Millisecond
	for {
		conn, err := s.l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			m.acceptBackoff.Inc()
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 5 * time.Millisecond
		s.mu.Lock()
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.mu.Unlock()
			m.rejected.Inc()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		m.accepted.Inc()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	m := s.metrics()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if s.idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		op := strings.ToLower(fields[0])
		start := time.Now()
		switch strings.ToUpper(fields[0]) {
		case "VERSION":
			release, ok := s.admitOrBusy(w, m)
			if !ok {
				break
			}
			fmt.Fprintf(w, "VERSION %d\n", s.store.Version())
			release()
		case "GET":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: GET <key>\n")
				break
			}
			release, ok := s.admitOrBusy(w, m)
			if !ok {
				break
			}
			v, found := s.store.Get(fields[1])
			release()
			if found {
				m.valueBytes.Observe(float64(len(v)))
				fmt.Fprintf(w, "VALUE %d\n", len(v))
				w.Write(v)
				w.WriteByte('\n')
			} else {
				fmt.Fprint(w, "NONE\n")
			}
		case "PUT":
			if len(fields) != 3 {
				fmt.Fprint(w, "ERR usage: PUT <key> <len>\n")
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 || n > MaxValueLen {
				fmt.Fprint(w, "ERR bad length\n")
				break
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r, buf); err != nil {
				return
			}
			release, ok := s.admitOrBusy(w, m)
			if !ok {
				break
			}
			m.valueBytes.Observe(float64(n))
			s.store.Put(fields[1], buf)
			release()
			fmt.Fprint(w, "OK\n")
		case "DEL":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: DEL <key>\n")
				break
			}
			release, ok := s.admitOrBusy(w, m)
			if !ok {
				break
			}
			s.store.Delete(fields[1])
			release()
			fmt.Fprint(w, "OK\n")
		case "KEYS":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: KEYS <prefix>\n")
				break
			}
			prefix := fields[1]
			if prefix == AllKeysPrefix {
				prefix = ""
			}
			release, ok := s.admitOrBusy(w, m)
			if !ok {
				break
			}
			keys := s.store.Keys(prefix) // already sorted by the store
			release()
			fmt.Fprintf(w, "KEYS %d\n", len(keys))
			for _, k := range keys {
				fmt.Fprintln(w, k)
			}
		case "SNAP":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: SNAP <prefix>\n")
				break
			}
			prefix := fields[1]
			if prefix == AllKeysPrefix {
				prefix = ""
			}
			release, ok := s.admitOrBusy(w, m)
			if !ok {
				break
			}
			v, recs := s.store.SnapshotPrefix(prefix)
			release()
			keys := make([]string, 0, len(recs))
			for k := range recs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(w, "SNAP %d %d\n", v, len(keys))
			for _, k := range keys {
				m.valueBytes.Observe(float64(len(recs[k])))
				fmt.Fprintf(w, "%s %d\n", k, len(recs[k]))
				w.Write(recs[k])
				w.WriteByte('\n')
			}
		case "DELTA":
			if len(fields) != 3 {
				fmt.Fprint(w, "ERR usage: DELTA <since> <prefix>\n")
				break
			}
			since, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprint(w, "ERR bad version\n")
				break
			}
			prefix := fields[2]
			if prefix == AllKeysPrefix {
				prefix = ""
			}
			release, ok := s.admitOrBusy(w, m)
			if !ok {
				break
			}
			v, entries, covered := s.store.DeltaSince(since, prefix)
			release()
			if !covered {
				m.deltaGaps.Inc()
				fmt.Fprintf(w, "GAP %d\n", v)
				break
			}
			m.deltaHits.Inc()
			fmt.Fprintf(w, "DELTA %d %d\n", v, len(entries))
			for _, e := range entries {
				if e.Delete {
					fmt.Fprintf(w, "DEL %s\n", e.Key)
					continue
				}
				m.valueBytes.Observe(float64(len(e.Value)))
				fmt.Fprintf(w, "PUT %s %d\n", e.Key, len(e.Value))
				w.Write(e.Value)
				w.WriteByte('\n')
			}
		case "PUBLISH":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: PUBLISH <version>\n")
				break
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprint(w, "ERR bad version\n")
				break
			}
			release, ok := s.admitOrBusy(w, m)
			if !ok {
				break
			}
			fmt.Fprintf(w, "OK %d\n", s.store.Publish(v))
			release()
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		m.observe(op, start)
		if err := w.Flush(); err != nil {
			return
		}
	}
}
