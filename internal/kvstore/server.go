package kvstore

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"megate/internal/telemetry"
)

// MaxValueLen caps a single stored value. The server rejects larger PUTs and
// the client rejects VALUE headers announcing more, so both ends agree on
// the largest frame that can legitimately cross the wire.
const MaxValueLen = 64 << 20

// MaxKeys caps how many keys one KEYS response may announce. The client
// rejects counts above it the same way Get rejects implausible value
// lengths; at one config record per instance it is comfortably above the
// paper's millions-of-endpoints scale split across shards.
const MaxKeys = 1 << 24

// AllKeysPrefix is the wire sentinel the client sends for an empty Keys
// prefix — the space-delimited command line cannot carry an empty field.
const AllKeysPrefix = "*"

// Server exposes a Store over a line-oriented TCP protocol:
//
//	VERSION\n                 -> VERSION <n>\n
//	GET <key>\n               -> VALUE <len>\n<bytes>\n | NONE\n
//	PUT <key> <len>\n<bytes>  -> OK\n
//	DEL <key>\n               -> OK\n
//	KEYS <prefix>\n           -> KEYS <n>\n followed by n key lines
//	                             (prefix "*" enumerates every key)
//	PUBLISH <version>\n       -> OK <version>\n
//
// Connections may issue any number of commands; MegaTE endpoints typically
// issue one or two and hang up (the "short connection" poll of §3.2).
type Server struct {
	store *Store
	l     net.Listener
	idle  time.Duration
	mreg  *telemetry.Registry

	mOnce sync.Once
	m     *serverMetrics

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// metrics lazily binds the server's instrument handles so handlers work
// even on a Server assembled without Serve (tests, fuzzing).
func (s *Server) metrics() *serverMetrics {
	s.mOnce.Do(func() {
		reg := s.mreg
		if reg == nil {
			reg = telemetry.Default
		}
		s.m = newServerMetrics(reg)
	})
	return s.m
}

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithIdleTimeout closes connections that stay silent between commands for
// longer than d. Zero (the default) disables the idle deadline; endpoints
// that poll and hang up are unaffected either way, but a leaked persistent
// connection can no longer pin a handler goroutine forever.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idle = d }
}

// WithMetrics routes the server's op counters and latency histograms into
// r instead of telemetry.Default (chaos runs and tests isolate themselves
// this way).
func WithMetrics(r *telemetry.Registry) ServerOption {
	return func(s *Server) { s.mreg = r }
}

// Serve starts serving the store on l until Close.
func Serve(l net.Listener, store *Store, opts ...ServerOption) *Server {
	s := &Server{store: store, l: l, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	for _, opt := range opts {
		opt(s)
	}
	s.metrics()
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close stops the server and closes open connections. Closing twice is
// safe.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		_ = s.l.Close()
		// Snapshot under the lock, close outside it: a handler blocked on a
		// peer must not be able to stall every connection add/remove.
		s.mu.Lock()
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
		s.wg.Wait()
	})
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	// Transient accept errors (EMFILE, ECONNABORTED) back off exponentially
	// instead of hot-spinning; a successful accept resets the pause.
	backoff := 5 * time.Millisecond
	const maxBackoff = 250 * time.Millisecond
	for {
		conn, err := s.l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 5 * time.Millisecond
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	m := s.metrics()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if s.idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		op := strings.ToLower(fields[0])
		start := time.Now()
		switch strings.ToUpper(fields[0]) {
		case "VERSION":
			fmt.Fprintf(w, "VERSION %d\n", s.store.Version())
		case "GET":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: GET <key>\n")
				break
			}
			if v, ok := s.store.Get(fields[1]); ok {
				m.valueBytes.Observe(float64(len(v)))
				fmt.Fprintf(w, "VALUE %d\n", len(v))
				w.Write(v)
				w.WriteByte('\n')
			} else {
				fmt.Fprint(w, "NONE\n")
			}
		case "PUT":
			if len(fields) != 3 {
				fmt.Fprint(w, "ERR usage: PUT <key> <len>\n")
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 || n > MaxValueLen {
				fmt.Fprint(w, "ERR bad length\n")
				break
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r, buf); err != nil {
				return
			}
			m.valueBytes.Observe(float64(n))
			s.store.Put(fields[1], buf)
			fmt.Fprint(w, "OK\n")
		case "DEL":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: DEL <key>\n")
				break
			}
			s.store.Delete(fields[1])
			fmt.Fprint(w, "OK\n")
		case "KEYS":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: KEYS <prefix>\n")
				break
			}
			prefix := fields[1]
			if prefix == AllKeysPrefix {
				prefix = ""
			}
			keys := s.store.Keys(prefix) // already sorted by the store
			fmt.Fprintf(w, "KEYS %d\n", len(keys))
			for _, k := range keys {
				fmt.Fprintln(w, k)
			}
		case "PUBLISH":
			if len(fields) != 2 {
				fmt.Fprint(w, "ERR usage: PUBLISH <version>\n")
				break
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprint(w, "ERR bad version\n")
				break
			}
			fmt.Fprintf(w, "OK %d\n", s.store.Publish(v))
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		m.observe(op, start)
		if err := w.Flush(); err != nil {
			return
		}
	}
}
