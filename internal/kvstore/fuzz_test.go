package kvstore

import (
	"io"
	"net"
	"testing"
	"time"
)

// FuzzKVWireProtocol throws arbitrary byte streams at the server's
// line-oriented command loop over an in-memory connection. The properties
// under test: the handler never panics, never wedges (it terminates once
// the client closes), and leaves the store usable — the TE database must
// survive any endpoint, however broken.
func FuzzKVWireProtocol(f *testing.F) {
	f.Add([]byte("VERSION\n"))
	f.Add([]byte("GET te/cfg/i0\n"))
	f.Add([]byte("PUT te/cfg/i0 3\nabcGET te/cfg/i0\n"))
	f.Add([]byte("DEL te/cfg/i0\nKEYS te/\n"))
	f.Add([]byte("PUBLISH 7\nVERSION\n"))
	f.Add([]byte("PUT k -1\nPUT k 99999999999999\nput k 2\nhi"))
	f.Add([]byte("\x00\xff\x00\xff\n\n\nGET\nKEYS\nPUBLISH x\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		store := NewStore(2)
		cli, srv := net.Pipe()
		s := &Server{store: store, conns: map[net.Conn]struct{}{srv: {}}, done: make(chan struct{})}
		s.wg.Add(1)
		go s.handle(srv)

		// Drain server responses so the unbuffered pipe never backpressures
		// the handler; joined via drained before the store is inspected.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			_, _ = io.Copy(io.Discard, cli)
		}()

		// The deadline bounds the whole exchange: a wedged handler turns
		// into a fast test failure instead of a fuzzing-session hang.
		_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
		_, _ = cli.Write(data)
		_ = cli.Close()
		s.wg.Wait()
		<-drained

		// The store must remain usable after any session.
		store.Put("post/check", []byte("ok"))
		if v, ok := store.Get("post/check"); !ok || string(v) != "ok" {
			t.Fatalf("store unusable after fuzzed session: %q %v", v, ok)
		}
	})
}
