package kvstore

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// silentListener accepts connections and never responds, simulating a hung
// server.
func silentListener(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var conns sync.Map
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conns.Store(c, struct{}{})
			// Hold the connection open without ever writing.
			go func(c net.Conn) {
				<-done
				_ = c.Close()
			}(c)
		}
	}()
	return l.Addr().String(), func() { close(done); _ = l.Close() }
}

func TestClientTimeoutOnSilentServer(t *testing.T) {
	addr, stop := silentListener(t)
	defer stop()
	c := &Client{Addr: addr, Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Version()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Version against a silent server succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net.Error timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("Version blocked for %v; deadline did not bound the read", elapsed)
	}
}

// scriptedServer answers each accepted connection with a fixed response
// regardless of the request, for protocol-abuse tests.
func scriptedServer(t *testing.T, response string) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				buf := make([]byte, 256)
				if _, err := c.Read(buf); err != nil {
					return
				}
				if _, err := c.Write([]byte(response)); err != nil {
					return
				}
			}(c)
		}
	}()
	return l.Addr().String(), func() { _ = l.Close() }
}

func TestClientGetRejectsBadLength(t *testing.T) {
	for _, resp := range []string{
		"VALUE -5\n",
		"VALUE 99999999999999999999\n", // overflows int: Sscanf fails -> protocol error
		fmt.Sprintf("VALUE %d\n", MaxValueLen+1),
	} {
		t.Run(resp, func(t *testing.T) {
			addr, stop := scriptedServer(t, resp)
			defer stop()
			c := &Client{Addr: addr, Timeout: time.Second}
			_, _, err := c.Get("k")
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("Get with header %q: err = %v, want ErrProtocol", resp, err)
			}
		})
	}
}

func TestBackoffDelayBoundsAndReplay(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Seed: 3}
	for retry := 1; retry <= 8; retry++ {
		d := b.Delay(retry)
		step := b.Base << (retry - 1)
		if step > b.Max || step <= 0 {
			step = b.Max
		}
		if d < step/2 || d > step {
			t.Errorf("Delay(%d) = %v, want in [%v, %v]", retry, d, step/2, step)
		}
	}
	// Equal seeds replay the same jitter sequence.
	b1 := &Backoff{Base: time.Millisecond, Max: time.Second, Seed: 9}
	b2 := &Backoff{Base: time.Millisecond, Max: time.Second, Seed: 9}
	for retry := 1; retry <= 16; retry++ {
		if d1, d2 := b1.Delay(retry), b2.Delay(retry); d1 != d2 {
			t.Fatalf("seeded jitter diverged at retry %d: %v vs %v", retry, d1, d2)
		}
	}
}

func TestBackoffDoStopsOnProtocolError(t *testing.T) {
	b := &Backoff{Attempts: 5, Base: time.Millisecond}
	calls := 0
	err := b.Do(func() error {
		calls++
		return fmt.Errorf("%w: garbage", ErrProtocol)
	})
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("protocol error retried: %d calls, want 1", calls)
	}
}

func TestBackoffDoRetriesTransportError(t *testing.T) {
	b := &Backoff{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond}
	calls := 0
	err := b.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("connection refused")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestClientRetryRecoversFromDialFailure(t *testing.T) {
	store := NewStore(4)
	store.Put("k", []byte("v"))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, store)
	defer srv.Close()

	var dials atomic.Int64
	c := &Client{
		Addr:    srv.Addr(),
		Timeout: time.Second,
		Retry:   &Backoff{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond},
		Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
			if dials.Add(1) < 3 {
				return nil, errors.New("simulated dial failure")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after retries: v=%q ok=%v err=%v", v, ok, err)
	}
	if dials.Load() != 3 {
		t.Errorf("dials = %d, want 3", dials.Load())
	}
}

// startServers launches n kv servers over one shared-content workflow: the
// caller writes through a ReplicaClient so contents match.
func startServers(t *testing.T, n int) (addrs []string, servers []*Server) {
	t.Helper()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(l, NewStore(4))
		t.Cleanup(srv.Close)
		addrs = append(addrs, srv.Addr())
		servers = append(servers, srv)
	}
	return addrs, servers
}

func TestReplicaClientFailover(t *testing.T) {
	addrs, servers := startServers(t, 3)
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) { rc.Timeout = time.Second })
	defer rc.Close()

	if err := rc.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := rc.Publish(7); err != nil {
		t.Fatal(err)
	}

	// Kill the preferred replica: reads must fail over and still answer.
	servers[0].Close()
	v, err := rc.Version()
	if err != nil {
		t.Fatalf("Version after head replica death: %v", err)
	}
	if v != 7 {
		t.Errorf("Version = %d, want 7", v)
	}
	if rc.Failovers() == 0 {
		t.Error("failover not counted")
	}

	// The surviving replica is promoted: the next read skips the dead head
	// without a new failover.
	before := rc.Failovers()
	if _, ok, err := rc.Get("k"); err != nil || !ok {
		t.Fatalf("Get after failover: ok=%v err=%v", ok, err)
	}
	if rc.Failovers() != before {
		t.Errorf("promoted replica still scanning: failovers %d -> %d", before, rc.Failovers())
	}
}

func TestReplicaClientWriteFanout(t *testing.T) {
	addrs, _ := startServers(t, 3)
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) { rc.Timeout = time.Second })
	defer rc.Close()

	if err := rc.Put("te/cfg/i1", []byte("cfg")); err != nil {
		t.Fatal(err)
	}
	if err := rc.Publish(1); err != nil {
		t.Fatal(err)
	}
	// Every replica individually holds the value and the version.
	for _, addr := range addrs {
		c := &Client{Addr: addr, Timeout: time.Second}
		v, ok, err := c.Get("te/cfg/i1")
		if err != nil || !ok || string(v) != "cfg" {
			t.Errorf("replica %s: v=%q ok=%v err=%v", addr, v, ok, err)
		}
		ver, err := c.Version()
		if err != nil || ver != 1 {
			t.Errorf("replica %s: version=%d err=%v", addr, ver, err)
		}
	}
}

func TestReplicaClientWriteFailsOnPartialFanout(t *testing.T) {
	addrs, servers := startServers(t, 3)
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) { rc.Timeout = 100 * time.Millisecond })
	defer rc.Close()

	servers[2].Close()
	if err := rc.Put("k", []byte("v")); err == nil {
		t.Fatal("Put succeeded with a dead replica; partial fan-out must report failure")
	}
	// Reads still work through the survivors.
	if _, ok, err := rc.Get("k"); err != nil || !ok {
		t.Fatalf("Get through survivors: ok=%v err=%v", ok, err)
	}
}

func TestServerIdleTimeoutClosesConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, NewStore(4), WithIdleTimeout(50*time.Millisecond))
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// Stay silent past the idle deadline: the server must hang up.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection not closed by server")
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Errorf("server took %v to drop idle connection, want ~50ms", elapsed)
	}
}

// flakyListener fails every Accept with a transient error until drained,
// counting calls, to prove the accept loop backs off instead of spinning.
type flakyListener struct {
	inner   net.Listener
	fails   atomic.Int64
	maxFail int64
}

func (f *flakyListener) Accept() (net.Conn, error) {
	if n := f.fails.Add(1); n <= f.maxFail {
		return nil, errors.New("transient accept failure")
	}
	return f.inner.Accept()
}
func (f *flakyListener) Close() error   { return f.inner.Close() }
func (f *flakyListener) Addr() net.Addr { return f.inner.Addr() }

func TestAcceptLoopBacksOffOnTransientErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{inner: inner, maxFail: 3}
	store := NewStore(4)
	store.Put("k", []byte("v"))
	srv := Serve(fl, store)
	defer srv.Close()

	// The server must survive the transient errors and then serve normally.
	c := &Client{Addr: srv.Addr(), Timeout: 2 * time.Second,
		Retry: &Backoff{Attempts: 5, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after accept-loop recovery: v=%q ok=%v err=%v", v, ok, err)
	}
	// Backoff bound: with 5ms initial backoff doubling per failure, 3
	// failures take >= 5+10+20 = 35ms of sleeping, so a hot spin (thousands
	// of calls in that window) is impossible. Allow slack for the accepts
	// the client's retries trigger.
	if n := fl.fails.Load(); n > 20 {
		t.Errorf("accept called %d times; loop is spinning, not backing off", n)
	}
}
