package kvstore

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"megate/internal/telemetry"
)

// ReplicaClient spreads operations across an ordered list of replicated
// servers. Reads (Version, Get, Keys) go to the preferred replica and fail
// over down the list in order; writes (Put, Delete, Publish) fan out to
// every replica so the copies stay identical — the controller is the only
// writer, so last-writer-wins fan-out is a correct replication scheme here
// (the paper's sharded database runs replicated the same way).
//
// A read failover promotes the replica that answered to preferred, so a
// fleet polling through a dead head replica pays the scan once, not on
// every poll.
type ReplicaClient struct {
	// Timeout bounds each per-replica operation; zero means DefaultTimeout.
	Timeout time.Duration
	// Dialer overrides how replicas are reached (fault injection); nil uses
	// net.DialTimeout.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Retry, when set, re-runs a whole replica cycle (not a single replica)
	// after transport-level failure of every replica.
	Retry *Backoff
	// Metrics routes failover/promotion counters (and the per-replica
	// clients' op telemetry); nil uses telemetry.Default.
	Metrics *telemetry.Registry

	mu        sync.Mutex
	clients   []*Client
	preferred int
	failovers uint64
	m         *replicaMetrics
}

// NewReplicaClient builds a client over the ordered replica addresses.
func NewReplicaClient(addrs []string, opts ...func(*ReplicaClient)) *ReplicaClient {
	rc := &ReplicaClient{}
	for _, opt := range opts {
		opt(rc)
	}
	reg := rc.Metrics
	if reg == nil {
		reg = telemetry.Default
	}
	rc.m = newReplicaMetrics(reg)
	for _, a := range addrs {
		rc.clients = append(rc.clients, &Client{Addr: a, Timeout: rc.Timeout, Dialer: rc.Dialer, Metrics: rc.Metrics})
	}
	return rc
}

// Addrs returns the configured replica addresses in order.
func (rc *ReplicaClient) Addrs() []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	addrs := make([]string, len(rc.clients))
	for i, c := range rc.clients {
		addrs[i] = c.Addr
	}
	return addrs
}

// Failovers counts read operations that had to skip at least one replica.
func (rc *ReplicaClient) Failovers() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.failovers
}

// snapshot returns the replica list rotated so the preferred replica comes
// first. I/O happens on the snapshot, never under the mutex.
func (rc *ReplicaClient) snapshot() []*Client {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]*Client, 0, len(rc.clients))
	for i := 0; i < len(rc.clients); i++ {
		out = append(out, rc.clients[(rc.preferred+i)%len(rc.clients)])
	}
	return out
}

func (rc *ReplicaClient) promote(c *Client, skipped int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if skipped > 0 {
		rc.failovers++
		rc.m.failovers.Inc()
	}
	for i, cl := range rc.clients {
		if cl == c {
			if i != rc.preferred {
				rc.m.promotions.Inc()
			}
			rc.preferred = i
			return
		}
	}
}

// noteFailover counts a skip without moving the preference — the BUSY case,
// where the skipped replica is loaded, not dead.
func (rc *ReplicaClient) noteFailover() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.failovers++
	rc.m.failovers.Inc()
}

// read runs op against replicas in preference order until one succeeds. A
// protocol error from a replica does not stop the scan — a corrupt replica
// is exactly what failover exists for — but if every replica failed with a
// protocol error the joined result carries ErrProtocol so Backoff.Do does
// not retry a hopeless cycle.
//
// BUSY gets special treatment twice over. A replica that shed the request
// is loaded, not dead: the op fails over past it, but if every skipped
// replica was merely busy the success does NOT promote — a moment of
// overload must not permanently demote the primary that the whole fleet's
// locality assumptions hang off. And when every replica shed, the cycle
// reports a BusyError carrying the largest suggested pause so Backoff.Do
// honors the servers' own back-pressure signal.
func (rc *ReplicaClient) read(op func(c *Client) error) error {
	attempt := func() error {
		clients := rc.snapshot()
		if len(clients) == 0 {
			return errors.New("kvstore: replica client has no replicas")
		}
		var errs []error
		allProtocol := true
		allBusy := true
		nonBusySkipped := false
		var busyRetry time.Duration
		for i, c := range clients {
			err := op(c)
			if err == nil || errors.Is(err, ErrDeltaGap) {
				// A GAP is an authoritative answer (resync via snapshot), not
				// a replica failure — it ends the scan like a success.
				if i == 0 || nonBusySkipped {
					rc.promote(c, i)
				} else {
					rc.noteFailover()
				}
				return err
			}
			var be *BusyError
			if errors.As(err, &be) {
				if be.RetryAfter > busyRetry {
					busyRetry = be.RetryAfter
				}
				allProtocol = false
			} else {
				allBusy = false
				nonBusySkipped = true
				if !errors.Is(err, ErrProtocol) {
					allProtocol = false
				}
			}
			errs = append(errs, fmt.Errorf("%s: %w", c.Addr, err))
		}
		joined := errors.Join(errs...)
		if allBusy {
			return fmt.Errorf("kvstore: all replicas busy (%v): %w", joined, &BusyError{RetryAfter: busyRetry})
		}
		if allProtocol {
			return fmt.Errorf("kvstore: all replicas failed: %w", joined)
		}
		// %v-wrap so the transport-flavoured cycle stays retryable.
		return fmt.Errorf("kvstore: all replicas failed: %v", joined)
	}
	if rc.Retry == nil {
		return attempt()
	}
	return rc.Retry.Do(attempt)
}

// write runs op against every replica and succeeds only when all do: a
// partial fan-out reports failure so the caller (the controller's delta
// loop) re-publishes the record next interval, healing any divergence.
func (rc *ReplicaClient) write(op func(c *Client) error) error {
	attempt := func() error {
		clients := rc.snapshot()
		if len(clients) == 0 {
			return errors.New("kvstore: replica client has no replicas")
		}
		var errs []error
		allProtocol := true
		for _, c := range clients {
			if err := op(c); err != nil {
				if !errors.Is(err, ErrProtocol) {
					allProtocol = false
				}
				errs = append(errs, fmt.Errorf("%s: %w", c.Addr, err))
			}
		}
		if len(errs) == 0 {
			return nil
		}
		joined := errors.Join(errs...)
		if allProtocol && len(errs) == len(clients) {
			return fmt.Errorf("kvstore: replica write failed: %w", joined)
		}
		return fmt.Errorf("kvstore: replica write failed on %d/%d replicas: %v", len(errs), len(clients), joined)
	}
	if rc.Retry == nil {
		return attempt()
	}
	return rc.Retry.Do(attempt)
}

// Version polls the published configuration version from the first
// reachable replica.
func (rc *ReplicaClient) Version() (v uint64, err error) {
	err = rc.read(func(c *Client) error {
		var e error
		v, e = c.Version()
		return e
	})
	return v, err
}

// Get fetches key from the first reachable replica.
func (rc *ReplicaClient) Get(key string) (value []byte, ok bool, err error) {
	err = rc.read(func(c *Client) error {
		var e error
		value, ok, e = c.Get(key)
		return e
	})
	return value, ok, err
}

// Keys lists keys with the given prefix from the first reachable replica.
func (rc *ReplicaClient) Keys(prefix string) (keys []string, err error) {
	err = rc.read(func(c *Client) error {
		var e error
		keys, e = c.Keys(prefix)
		return e
	})
	return keys, err
}

// Snapshot fetches every record under prefix from the first reachable
// replica, with the version the snapshot was taken at.
func (rc *ReplicaClient) Snapshot(prefix string) (version uint64, records map[string][]byte, err error) {
	err = rc.read(func(c *Client) error {
		var e error
		version, records, e = c.Snapshot(prefix)
		return e
	})
	return version, records, err
}

// Delta fetches the compacted changes under prefix since the given version
// from the first reachable replica. ErrDeltaGap propagates — the caller
// resyncs with Snapshot.
func (rc *ReplicaClient) Delta(since uint64, prefix string) (version uint64, entries []DeltaEntry, err error) {
	err = rc.read(func(c *Client) error {
		var e error
		version, entries, e = c.Delta(since, prefix)
		return e
	})
	return version, entries, err
}

// Put stores value under key on every replica.
func (rc *ReplicaClient) Put(key string, value []byte) error {
	return rc.write(func(c *Client) error { return c.Put(key, value) })
}

// Delete removes key from every replica.
func (rc *ReplicaClient) Delete(key string) error {
	return rc.write(func(c *Client) error { return c.Delete(key) })
}

// Publish advertises a new configuration version on every replica.
func (rc *ReplicaClient) Publish(v uint64) error {
	return rc.write(func(c *Client) error { return c.Publish(v) })
}

// Close closes any persistent per-replica connections.
func (rc *ReplicaClient) Close() {
	rc.mu.Lock()
	clients := append([]*Client(nil), rc.clients...)
	rc.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
