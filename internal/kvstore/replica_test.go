package kvstore

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"megate/internal/telemetry"
)

// countingDialer wraps the real dialer, tallying dials per address and
// refusing connections to addresses marked dead — a fault injector that
// also records exactly which replica each read touched.
type countingDialer struct {
	mu       sync.Mutex
	dials    map[string]int
	dead     map[string]bool
	cutAfter map[string]int
}

func newCountingDialer() *countingDialer {
	return &countingDialer{dials: make(map[string]int), dead: make(map[string]bool), cutAfter: make(map[string]int)}
}

func (d *countingDialer) dial(addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	d.dials[addr]++
	dead := d.dead[addr]
	cut := d.cutAfter[addr]
	d.mu.Unlock()
	if dead {
		return nil, errors.New("countingDialer: replica marked dead")
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil || cut == 0 {
		return conn, err
	}
	return &cutConn{Conn: conn, left: cut}, nil
}

func (d *countingDialer) kill(addr string) {
	d.mu.Lock()
	d.dead[addr] = true
	d.mu.Unlock()
}

// cut makes connections to addr deliver at most n response bytes before
// failing — a replica blackholed mid-scan.
func (d *countingDialer) cut(addr string, n int) {
	d.mu.Lock()
	d.cutAfter[addr] = n
	d.mu.Unlock()
}

// cutConn blackholes the read side after a byte budget: the first reads
// deliver real server bytes, then the connection dies mid-response.
type cutConn struct {
	net.Conn
	left int
}

func (c *cutConn) Read(b []byte) (int, error) {
	if c.left <= 0 {
		_ = c.Conn.Close()
		return 0, errors.New("cutConn: link lost mid-scan")
	}
	if len(b) > c.left {
		b = b[:c.left]
	}
	n, err := c.Conn.Read(b)
	c.left -= n
	return n, err
}

func (d *countingDialer) count(addr string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials[addr]
}

// TestReplicaClientPromotionStickiness drives the §3.2 poll pattern through
// a dead head replica: the first read pays the failover scan once, the
// answering replica is promoted, and every subsequent read must dial the
// promoted replica first — the dead head is never re-probed and Failovers()
// stays at one across many polls.
func TestReplicaClientPromotionStickiness(t *testing.T) {
	addrs, _ := startServers(t, 3)
	dialer := newCountingDialer()
	reg := telemetry.NewRegistry()
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) {
		rc.Timeout = time.Second
		rc.Dialer = dialer.dial
		rc.Metrics = reg
	})
	defer rc.Close()

	if err := rc.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := rc.Publish(3); err != nil {
		t.Fatal(err)
	}
	headDials := dialer.count(addrs[0])

	// Head replica dies. The next read scans past it exactly once.
	dialer.kill(addrs[0])
	if v, err := rc.Version(); err != nil || v != 3 {
		t.Fatalf("Version through dead head: v=%d err=%v", v, err)
	}
	if got := dialer.count(addrs[0]); got != headDials+1 {
		t.Fatalf("head dials after failover = %d, want %d", got, headDials+1)
	}
	if got := rc.Failovers(); got != 1 {
		t.Fatalf("Failovers after one scan = %d, want 1", got)
	}

	// Polls after promotion hit the promoted replica first: replica 1 takes
	// every dial, the dead head takes none, and no new failovers accrue.
	headAfterScan := dialer.count(addrs[0])
	secondBefore := dialer.count(addrs[1])
	const polls = 5
	for i := 0; i < polls; i++ {
		if _, err := rc.Version(); err != nil {
			t.Fatalf("poll %d after promotion: %v", i, err)
		}
	}
	if got := dialer.count(addrs[0]); got != headAfterScan {
		t.Errorf("dead head re-dialed after promotion: dials %d -> %d", headAfterScan, got)
	}
	if got := dialer.count(addrs[1]); got != secondBefore+polls {
		t.Errorf("promoted replica dials = %d, want %d", got, secondBefore+polls)
	}
	if got := rc.Failovers(); got != 1 {
		t.Errorf("Failovers after %d post-promotion polls = %d, want 1 (scan counted once, not per poll)", polls, got)
	}
	if got := reg.Counter(MetricReplicaFailovers).Value(); got != 1 {
		t.Errorf("failover counter metric = %d, want 1", got)
	}
	if got := reg.Counter(MetricReplicaPromotions).Value(); got != 1 {
		t.Errorf("promotion counter metric = %d, want 1", got)
	}
}

// TestReplicaClientFailoversCountsScansNotReplicas pins the unit of the
// failover counter: a read that skips two dead replicas before finding the
// third counts one failover, not two.
func TestReplicaClientFailoversCountsScansNotReplicas(t *testing.T) {
	addrs, _ := startServers(t, 3)
	dialer := newCountingDialer()
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) {
		rc.Timeout = time.Second
		rc.Dialer = dialer.dial
		rc.Metrics = telemetry.NewRegistry()
	})
	defer rc.Close()
	if err := rc.Publish(1); err != nil {
		t.Fatal(err)
	}

	dialer.kill(addrs[0])
	dialer.kill(addrs[1])
	if _, err := rc.Version(); err != nil {
		t.Fatalf("Version through two dead replicas: %v", err)
	}
	if got := rc.Failovers(); got != 1 {
		t.Errorf("Failovers = %d, want 1 (one scan, regardless of replicas skipped)", got)
	}
}

// TestReplicaClientMetricsSharedWithChildClients checks the replica client
// threads its registry into the per-replica clients, so client op counters
// land in the caller's registry rather than telemetry.Default.
func TestReplicaClientMetricsSharedWithChildClients(t *testing.T) {
	addrs, _ := startServers(t, 2)
	reg := telemetry.NewRegistry()
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) {
		rc.Timeout = time.Second
		rc.Metrics = reg
	})
	defer rc.Close()
	if err := rc.Publish(5); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Version(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricClientOps, "op", "publish").Value(); got != 2 {
		t.Errorf("publish ops = %d, want 2 (write fan-out to both replicas)", got)
	}
	if got := reg.Counter(MetricClientOps, "op", "version").Value(); got != 1 {
		t.Errorf("version ops = %d, want 1", got)
	}
}

// TestReplicaClientKeysFailoverMidScan blackholes the head replica partway
// through a KEYS response stream: the truncated enumeration must not leak a
// partial key list — the scan fails over and the promoted replica's answer
// is byte-identical to the healthy-path result.
func TestReplicaClientKeysFailoverMidScan(t *testing.T) {
	addrs, _ := startServers(t, 3)
	dialer := newCountingDialer()
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) {
		rc.Timeout = time.Second
		rc.Dialer = dialer.dial
		rc.Metrics = telemetry.NewRegistry()
	})
	defer rc.Close()

	for i := 0; i < 8; i++ {
		if err := rc.Put(fmt.Sprintf("te/cfg/ins-%02d", i), []byte("cfg")); err != nil {
			t.Fatal(err)
		}
	}
	healthy, err := rc.Keys("te/cfg/")
	if err != nil {
		t.Fatal(err)
	}
	if len(healthy) != 8 {
		t.Fatalf("healthy-path Keys = %v", healthy)
	}

	// The head now dies 20 bytes into each response: past the KEYS header,
	// mid key-stream. The scan must treat the torn list as a replica failure,
	// not as a shorter answer.
	dialer.cut(addrs[0], 20)
	got, err := rc.Keys("te/cfg/")
	if err != nil {
		t.Fatalf("Keys through a mid-scan blackhole: %v", err)
	}
	if len(got) != len(healthy) {
		t.Fatalf("failover Keys = %v (%d keys), healthy path had %d", got, len(got), len(healthy))
	}
	for i := range got {
		if got[i] != healthy[i] {
			t.Fatalf("failover Keys diverged at %d: %q vs %q", i, got[i], healthy[i])
		}
	}
	if got := rc.Failovers(); got != 1 {
		t.Errorf("Failovers = %d, want 1", got)
	}

	// Promotion held: the next read goes straight to the promoted replica.
	before := dialer.count(addrs[1])
	if _, err := rc.Keys("te/cfg/"); err != nil {
		t.Fatal(err)
	}
	if got := dialer.count(addrs[1]); got != before+1 {
		t.Errorf("promoted replica dials = %d, want %d", got, before+1)
	}
}
