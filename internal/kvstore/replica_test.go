package kvstore

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"megate/internal/telemetry"
)

// countingDialer wraps the real dialer, tallying dials per address and
// refusing connections to addresses marked dead — a fault injector that
// also records exactly which replica each read touched.
type countingDialer struct {
	mu    sync.Mutex
	dials map[string]int
	dead  map[string]bool
}

func newCountingDialer() *countingDialer {
	return &countingDialer{dials: make(map[string]int), dead: make(map[string]bool)}
}

func (d *countingDialer) dial(addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	d.dials[addr]++
	dead := d.dead[addr]
	d.mu.Unlock()
	if dead {
		return nil, errors.New("countingDialer: replica marked dead")
	}
	return net.DialTimeout("tcp", addr, timeout)
}

func (d *countingDialer) kill(addr string) {
	d.mu.Lock()
	d.dead[addr] = true
	d.mu.Unlock()
}

func (d *countingDialer) count(addr string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials[addr]
}

// TestReplicaClientPromotionStickiness drives the §3.2 poll pattern through
// a dead head replica: the first read pays the failover scan once, the
// answering replica is promoted, and every subsequent read must dial the
// promoted replica first — the dead head is never re-probed and Failovers()
// stays at one across many polls.
func TestReplicaClientPromotionStickiness(t *testing.T) {
	addrs, _ := startServers(t, 3)
	dialer := newCountingDialer()
	reg := telemetry.NewRegistry()
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) {
		rc.Timeout = time.Second
		rc.Dialer = dialer.dial
		rc.Metrics = reg
	})
	defer rc.Close()

	if err := rc.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := rc.Publish(3); err != nil {
		t.Fatal(err)
	}
	headDials := dialer.count(addrs[0])

	// Head replica dies. The next read scans past it exactly once.
	dialer.kill(addrs[0])
	if v, err := rc.Version(); err != nil || v != 3 {
		t.Fatalf("Version through dead head: v=%d err=%v", v, err)
	}
	if got := dialer.count(addrs[0]); got != headDials+1 {
		t.Fatalf("head dials after failover = %d, want %d", got, headDials+1)
	}
	if got := rc.Failovers(); got != 1 {
		t.Fatalf("Failovers after one scan = %d, want 1", got)
	}

	// Polls after promotion hit the promoted replica first: replica 1 takes
	// every dial, the dead head takes none, and no new failovers accrue.
	headAfterScan := dialer.count(addrs[0])
	secondBefore := dialer.count(addrs[1])
	const polls = 5
	for i := 0; i < polls; i++ {
		if _, err := rc.Version(); err != nil {
			t.Fatalf("poll %d after promotion: %v", i, err)
		}
	}
	if got := dialer.count(addrs[0]); got != headAfterScan {
		t.Errorf("dead head re-dialed after promotion: dials %d -> %d", headAfterScan, got)
	}
	if got := dialer.count(addrs[1]); got != secondBefore+polls {
		t.Errorf("promoted replica dials = %d, want %d", got, secondBefore+polls)
	}
	if got := rc.Failovers(); got != 1 {
		t.Errorf("Failovers after %d post-promotion polls = %d, want 1 (scan counted once, not per poll)", polls, got)
	}
	if got := reg.Counter(MetricReplicaFailovers).Value(); got != 1 {
		t.Errorf("failover counter metric = %d, want 1", got)
	}
	if got := reg.Counter(MetricReplicaPromotions).Value(); got != 1 {
		t.Errorf("promotion counter metric = %d, want 1", got)
	}
}

// TestReplicaClientFailoversCountsScansNotReplicas pins the unit of the
// failover counter: a read that skips two dead replicas before finding the
// third counts one failover, not two.
func TestReplicaClientFailoversCountsScansNotReplicas(t *testing.T) {
	addrs, _ := startServers(t, 3)
	dialer := newCountingDialer()
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) {
		rc.Timeout = time.Second
		rc.Dialer = dialer.dial
		rc.Metrics = telemetry.NewRegistry()
	})
	defer rc.Close()
	if err := rc.Publish(1); err != nil {
		t.Fatal(err)
	}

	dialer.kill(addrs[0])
	dialer.kill(addrs[1])
	if _, err := rc.Version(); err != nil {
		t.Fatalf("Version through two dead replicas: %v", err)
	}
	if got := rc.Failovers(); got != 1 {
		t.Errorf("Failovers = %d, want 1 (one scan, regardless of replicas skipped)", got)
	}
}

// TestReplicaClientMetricsSharedWithChildClients checks the replica client
// threads its registry into the per-replica clients, so client op counters
// land in the caller's registry rather than telemetry.Default.
func TestReplicaClientMetricsSharedWithChildClients(t *testing.T) {
	addrs, _ := startServers(t, 2)
	reg := telemetry.NewRegistry()
	rc := NewReplicaClient(addrs, func(rc *ReplicaClient) {
		rc.Timeout = time.Second
		rc.Metrics = reg
	})
	defer rc.Close()
	if err := rc.Publish(5); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Version(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricClientOps, "op", "publish").Value(); got != 2 {
		t.Errorf("publish ops = %d, want 2 (write fan-out to both replicas)", got)
	}
	if got := reg.Counter(MetricClientOps, "op", "version").Value(); got != 1 {
		t.Errorf("version ops = %d, want 1", got)
	}
}
