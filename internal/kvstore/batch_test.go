package kvstore

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

func TestClientPutBatch(t *testing.T) {
	srv, store := newTestServer(t, 4)
	c := &Client{Addr: srv.Addr()}

	var keys []string
	var values [][]byte
	for i := 0; i < 200; i++ {
		keys = append(keys, fmt.Sprintf("te/cfg/batch/%03d", i))
		values = append(values, bytes.Repeat([]byte{byte(i)}, 1+i%64))
	}
	acked, err := c.PutBatch(keys, values)
	if err != nil {
		t.Fatal(err)
	}
	if acked != len(keys) {
		t.Fatalf("acked = %d, want %d", acked, len(keys))
	}
	for i, k := range keys {
		got, ok := store.Get(k)
		if !ok || !bytes.Equal(got, values[i]) {
			t.Fatalf("key %s: ok=%v, %d bytes", k, ok, len(got))
		}
	}
	// Writes never advertise themselves — version moves only on Publish,
	// the invariant the streaming publisher's overlap safety rests on.
	if v := store.Version(); v != 0 {
		t.Errorf("version = %d, want 0 before any Publish", v)
	}
}

func TestClientPutBatchEmptyAndMismatch(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	c := &Client{Addr: srv.Addr()}
	if acked, err := c.PutBatch(nil, nil); err != nil || acked != 0 {
		t.Fatalf("empty batch: acked=%d err=%v", acked, err)
	}
	if _, err := c.PutBatch([]string{"a"}, nil); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

// TestClientPutBatchPipelined pins the single-round-trip property: a batch
// against a real server must complete far faster than per-key round trips
// would under an artificially slow dialer. Rather than timing (flaky), we
// count connections: one batch = one dial.
func TestClientPutBatchPipelined(t *testing.T) {
	srv, _ := newTestServer(t, 2)
	dials := 0
	c := &Client{
		Addr:    srv.Addr(),
		Timeout: 5 * time.Second,
		Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
			dials++
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
	var keys []string
	var values [][]byte
	for i := 0; i < 500; i++ {
		keys = append(keys, fmt.Sprintf("k/%d", i))
		values = append(values, []byte("v"))
	}
	if _, err := c.PutBatch(keys, values); err != nil {
		t.Fatal(err)
	}
	if dials != 1 {
		t.Errorf("batch used %d connections, want 1", dials)
	}
}
