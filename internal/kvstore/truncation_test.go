package kvstore

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"megate/internal/faultnet"
)

// TestClientKeysRejectsBadCount mirrors the Get bound-check table: a KEYS
// header announcing a negative, overflowing, or above-cap count is a
// protocol error, never a read loop.
func TestClientKeysRejectsBadCount(t *testing.T) {
	for _, resp := range []string{
		"KEYS -1\n",
		"KEYS 99999999999999999999\n", // overflows int: Sscanf fails -> protocol error
		fmt.Sprintf("KEYS %d\n", MaxKeys+1),
	} {
		t.Run(resp, func(t *testing.T) {
			addr, stop := scriptedServer(t, resp)
			defer stop()
			c := &Client{Addr: addr, Timeout: time.Second}
			_, err := c.Keys("te/")
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("Keys with header %q: err = %v, want ErrProtocol", resp, err)
			}
		})
	}
}

// TestClientKeysEmptyPrefix pins the "*" wire sentinel: an empty prefix
// enumerates everything, while a literal "*" prefix stays a literal filter
// thanks to the client-side re-check.
func TestClientKeysEmptyPrefix(t *testing.T) {
	srv, store := newTestServer(t, 2)
	store.Put("te/cfg/a", []byte("1"))
	store.Put("other/b", []byte("2"))
	c := &Client{Addr: srv.Addr(), Timeout: time.Second}
	all, err := c.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0] != "other/b" || all[1] != "te/cfg/a" {
		t.Fatalf(`Keys("") = %v, want every key sorted`, all)
	}
	star, err := c.Keys("*")
	if err != nil {
		t.Fatal(err)
	}
	if len(star) != 0 {
		t.Fatalf(`Keys("*") = %v; the sentinel leaked as a wildcard`, star)
	}
}

// TestClientTruncatedResponses drives every response-line reader through a
// server that hangs up mid-line: the failure must classify as ErrTruncated —
// transport-flavored, so the retry schedule re-runs it — and never as
// ErrProtocol. A clean zero-byte close stays a bare transport error.
func TestClientTruncatedResponses(t *testing.T) {
	cases := []struct {
		name string
		resp string
		op   func(c *Client) error
	}{
		{"version", "VERSION 4", func(c *Client) error { _, err := c.Version(); return err }},
		{"get-header", "VALUE 1", func(c *Client) error { _, _, err := c.Get("k"); return err }},
		{"keys-tail", "KEYS 2\nte/a\nte/b", func(c *Client) error { _, err := c.Keys("te/"); return err }},
		{"expect-ok", "O", func(c *Client) error { return c.Delete("k") }},
		{"publish", "O", func(c *Client) error { return c.Publish(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr, stop := scriptedServer(t, tc.resp)
			defer stop()
			err := tc.op(&Client{Addr: addr, Timeout: time.Second})
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("err = %v, want ErrTruncated", err)
			}
			if errors.Is(err, ErrProtocol) {
				t.Fatalf("err = %v classified as ErrProtocol; a torn line must stay retryable", err)
			}
		})
	}

	// Zero bytes then close: a clean teardown, not a truncation.
	addr, stop := scriptedServer(t, "")
	defer stop()
	_, err := (&Client{Addr: addr, Timeout: time.Second}).Version()
	if err == nil || errors.Is(err, ErrTruncated) || errors.Is(err, ErrProtocol) {
		t.Fatalf("clean EOF classified as %v; want a bare transport error", err)
	}
}

// TestTornServerWriteRetries is the faultnet regression for the torn-frame
// path end to end: a fabric tearing the server's response writes must
// surface a retryable (non-protocol) error, and once the link heals a Retry
// client recovers without caller-visible failure.
func TestTornServerWriteRetries(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fab := faultnet.New(11)
	srv := Serve(fab.Listener("db", l), NewStore(1))
	defer srv.Close()
	fab.SetFaults("db", "*", faultnet.Faults{PartialWriteProb: 1})

	c := &Client{Addr: srv.Addr(), Timeout: time.Second}
	_, verr := c.Version()
	if verr == nil {
		t.Fatal("Version through a torn link succeeded")
	}
	if errors.Is(verr, ErrProtocol) {
		t.Fatalf("torn response classified as protocol error: %v; Backoff.Do would give up", verr)
	}

	fab.HealAll()
	rc := &Client{Addr: srv.Addr(), Timeout: time.Second, Retry: &Backoff{Attempts: 3, Base: time.Millisecond, Seed: 1}}
	if _, err := rc.Version(); err != nil {
		t.Fatalf("Version after heal: %v", err)
	}
}

// TestClientRetriesTruncatedResponse counts connections to prove the retry
// schedule actually re-runs a truncated operation.
func TestClientRetriesTruncatedResponse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var accepts atomic.Int64
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				buf := make([]byte, 64)
				if _, err := c.Read(buf); err != nil {
					return
				}
				_, _ = c.Write([]byte("VERSION 7")) // no terminator, then close
			}(c)
		}
	}()
	defer func() { _ = l.Close() }()

	c := &Client{Addr: l.Addr().String(), Timeout: time.Second,
		Retry: &Backoff{Attempts: 3, Base: time.Millisecond, Seed: 2}}
	if _, err := c.Version(); err == nil {
		t.Fatal("Version against an always-truncating server succeeded")
	}
	if got := accepts.Load(); got != 3 {
		t.Fatalf("server saw %d connections, want 3 (truncation must be retried)", got)
	}
}
