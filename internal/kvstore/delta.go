package kvstore

import (
	"sort"
	"strings"
	"sync"
)

// DeltaEntry is one record change in a snapshot-delta synchronization
// response: the key, its new value (nil when Delete is set — a tombstone),
// and the published version the change became visible under.
type DeltaEntry struct {
	Key     string
	Value   []byte
	Delete  bool
	Version uint64
}

// deltaLog is the server-side change journal behind the DELTA wire op. The
// controller's writes accumulate as pending (coalesced per key — within one
// interval only the final bytes matter) and are stamped with the version at
// the moment it is published, mirroring exactly when the fleet may first
// observe them. Retention is bounded by a stamped-entry capacity; once old
// entries are evicted the floor version rises and a DELTA reaching below it
// answers GAP, pushing the client to the snapshot path.
type deltaLog struct {
	mu      sync.Mutex
	cap     int
	floor   uint64 // versions <= floor are no longer fully covered
	entries []DeltaEntry
	pending map[string]DeltaEntry
}

func newDeltaLog(capacity int, floor uint64) *deltaLog {
	if capacity < 1 {
		capacity = 1
	}
	return &deltaLog{cap: capacity, floor: floor, pending: make(map[string]DeltaEntry)}
}

// record notes one store mutation awaiting the next publish.
func (d *deltaLog) record(key string, value []byte, del bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pending[key] = DeltaEntry{Key: key, Value: value, Delete: del}
}

// publishTo stamps every pending change with version v and appends it to
// the journal, evicting from the front past capacity. Pending keys are
// appended in sorted order so a fixed write set journals deterministically.
func (d *deltaLog) publishTo(v uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pending) == 0 {
		return
	}
	keys := make([]string, 0, len(d.pending))
	for k := range d.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := d.pending[k]
		e.Version = v
		d.entries = append(d.entries, e)
	}
	d.pending = make(map[string]DeltaEntry)
	if drop := len(d.entries) - d.cap; drop > 0 {
		if fv := d.entries[drop-1].Version; fv > d.floor {
			d.floor = fv
		}
		d.entries = append(d.entries[:0], d.entries[drop:]...)
	}
}

// since returns the per-key-compacted changes with version in (since, cur]
// under prefix, sorted by key, or ok=false when eviction has cut the journal
// above since — the caller must fall back to a snapshot.
func (d *deltaLog) since(since uint64, prefix string, cur uint64) ([]DeltaEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if since < d.floor {
		return nil, false
	}
	last := make(map[string]DeltaEntry)
	for _, e := range d.entries {
		if e.Version <= since || e.Version > cur {
			continue
		}
		if strings.HasPrefix(e.Key, prefix) {
			last[e.Key] = e
		}
	}
	if len(last) == 0 {
		return nil, true
	}
	out := make([]DeltaEntry, 0, len(last))
	keys := make([]string, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, last[k])
	}
	return out, true
}

// EnableDeltaLog attaches a change journal retaining up to capacity stamped
// entries, anchored at the currently published version: deltas reaching
// further back than the anchor (or than later evictions) answer as a gap.
// Call before the store starts taking writes that must be journaled.
func (s *Store) EnableDeltaLog(capacity int) {
	s.dlog.Store(newDeltaLog(capacity, s.version.Load()))
}

// SnapshotPrefix returns the published version and a copy of every record
// under prefix — the one-request cold-sync primitive behind the SNAP wire
// op. The version is read first: a write published mid-scan makes the
// snapshot carry newer bytes under an older version stamp, which the next
// delta poll simply re-fetches (eventual consistency never goes backward).
func (s *Store) SnapshotPrefix(prefix string) (uint64, map[string][]byte) {
	s.queries.Add(1)
	v := s.version.Load()
	out := make(map[string][]byte)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, val := range sh.m {
			if strings.HasPrefix(k, prefix) {
				cp := make([]byte, len(val))
				copy(cp, val)
				out[k] = cp
			}
		}
		sh.mu.RUnlock()
	}
	return v, out
}

// DeltaSince returns the current version and the compacted changes under
// prefix published after since. ok is false when the journal cannot answer —
// no journal enabled, or retention evicted entries newer than since — and
// the caller must snapshot instead.
func (s *Store) DeltaSince(since uint64, prefix string) (uint64, []DeltaEntry, bool) {
	s.queries.Add(1)
	cur := s.version.Load()
	dl := s.dlog.Load()
	if dl == nil {
		return cur, nil, false
	}
	entries, ok := dl.since(since, prefix, cur)
	return cur, entries, ok
}
