package kvstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"megate/internal/telemetry"
)

// DefaultTimeout bounds the dial and every subsequent read/write of one
// client operation when Client.Timeout is zero. The paper's endpoints issue
// sub-millisecond short-connection polls; two seconds is generous headroom
// that still guarantees a hung or partitioned database cannot wedge an
// agent forever (§3.2's tolerance argument assumes the poll *returns*).
const DefaultTimeout = 2 * time.Second

// ErrProtocol reports an unexpected server response.
var ErrProtocol = errors.New("kvstore: protocol error")

// ErrTruncated reports a response line cut off mid-way: bytes arrived but
// the connection ended before the terminating newline. It is deliberately
// NOT ErrProtocol — a torn line is a transport artifact (a crashed server,
// a dropped link, an injected partial write), so the Retry schedule re-runs
// the operation on a fresh connection, while a server that answered with
// well-terminated garbage still fails fast.
var ErrTruncated = errors.New("kvstore: truncated response")

// ErrBusy matches any BUSY response via errors.Is: admission control shed
// the request before it touched the store. Shed ≠ failed — the server is
// alive and suggesting when to come back, so BUSY is retryable (after the
// suggested pause) and must never be treated as a dead replica.
var ErrBusy = errors.New("kvstore: server busy")

// ErrDeltaGap reports a GAP response: the server's delta journal no longer
// reaches back to the client's last-seen version, so the client must resync
// with a full Snapshot. Like ErrProtocol it stops a Backoff schedule — the
// journal will not grow backward on retry.
var ErrDeltaGap = errors.New("kvstore: delta log gap, snapshot required")

// BusyError is the concrete BUSY response carrying the server-suggested
// retry pause. errors.Is(err, ErrBusy) matches it.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("kvstore: server busy, retry after %v", e.RetryAfter)
}

// Is makes every BusyError match the ErrBusy sentinel.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// busyCheck classifies a "BUSY <retry-ms>" response line. A malformed BUSY
// still yields a BusyError (with the default pause) — the server's intent to
// shed is unambiguous even when the hint is garbled.
func busyCheck(line string) error {
	if !strings.HasPrefix(line, "BUSY") {
		return nil
	}
	var ms int64
	if _, err := fmt.Sscanf(line, "BUSY %d", &ms); err != nil || ms < 0 {
		return &BusyError{RetryAfter: DefaultRetryAfter}
	}
	return &BusyError{RetryAfter: time.Duration(ms) * time.Millisecond}
}

// readLine reads one newline-terminated response line. A partial line —
// bytes followed by an error with no terminator — is classified as
// ErrTruncated; a clean zero-byte EOF passes through bare so connection
// teardown between operations keeps its usual transport flavor.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if len(line) > 0 {
			return line, fmt.Errorf("%w: partial line %q: %v", ErrTruncated, line, err)
		}
		return "", err
	}
	return line, nil
}

// Client talks to a Server. Its zero-value mode dials a fresh connection
// per operation — the short-connection discipline the endpoints use so the
// database never holds millions of sockets. Every operation carries a
// deadline: there is no unbounded blocking call on the poll path.
type Client struct {
	Addr string
	// Persistent keeps one connection open across operations (used by the
	// top-down baseline and by throughput benchmarks).
	Persistent bool
	// Timeout bounds the dial and each operation's reads and writes; zero
	// means DefaultTimeout.
	Timeout time.Duration
	// Dialer overrides how the client reaches the server (fault injection,
	// proxies, in-process transports); nil uses net.DialTimeout.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Retry, when set, re-runs operations that failed at the transport
	// level under its backoff schedule. Protocol errors are never retried:
	// a server speaking garbage will not improve on the next attempt.
	Retry *Backoff
	// Metrics routes the client's op counters, retry counts and latency
	// histograms; nil uses telemetry.Default.
	Metrics *telemetry.Registry

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader

	mOnce sync.Once
	m     *clientMetrics
}

// metrics lazily binds the client's instrument handles so the zero-value
// Client stays usable.
func (c *Client) metrics() *clientMetrics {
	c.mOnce.Do(func() {
		reg := c.Metrics
		if reg == nil {
			reg = telemetry.Default
		}
		c.m = newClientMetrics(reg)
	})
	return c.m
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Client) dialRaw() (net.Conn, error) {
	if c.Dialer != nil {
		return c.Dialer(c.Addr, c.timeout())
	}
	return net.DialTimeout("tcp", c.Addr, c.timeout())
}

func (c *Client) dial() (net.Conn, *bufio.Reader, func(), error) {
	if c.Persistent {
		c.mu.Lock()
		if c.conn == nil {
			conn, err := c.dialRaw()
			if err != nil {
				c.mu.Unlock()
				return nil, nil, nil, err
			}
			c.conn = conn
			c.r = bufio.NewReader(conn)
		}
		conn, r := c.conn, c.r
		return conn, r, func() { c.mu.Unlock() }, nil
	}
	conn, err := c.dialRaw()
	if err != nil {
		return nil, nil, nil, err
	}
	return conn, bufio.NewReader(conn), func() { _ = conn.Close() }, nil
}

// resetPersistent drops a broken persistent connection.
func (c *Client) resetPersistent() {
	if c.Persistent && c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.r = nil
	}
}

// Close closes a persistent connection if one is open.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetPersistent()
}

// do runs one operation over a fresh (or the persistent) connection with
// the deadline applied, retrying transport-level failures under the Retry
// schedule. op must consume exactly its response bytes; any failure drops a
// persistent connection so a desynced stream is never reused. opName labels
// the operation's telemetry series.
func (c *Client) do(opName string, op func(conn net.Conn, r *bufio.Reader) error) error {
	m := c.metrics()
	start := time.Now()
	attempts := 0
	attempt := func() error {
		attempts++
		conn, r, release, err := c.dial()
		if err != nil {
			return err
		}
		defer release()
		_ = conn.SetDeadline(time.Now().Add(c.timeout()))
		if err := op(conn, r); err != nil {
			c.resetPersistent()
			return err
		}
		return nil
	}
	var err error
	if c.Retry == nil {
		err = attempt()
	} else {
		err = c.Retry.Do(attempt)
	}
	m.observe(opName, start, attempts, err)
	return err
}

// Version polls the published configuration version.
func (c *Client) Version() (v uint64, err error) {
	err = c.do("version", func(conn net.Conn, r *bufio.Reader) error {
		if _, err := fmt.Fprint(conn, "VERSION\n"); err != nil {
			return err
		}
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if err := busyCheck(line); err != nil {
			return err
		}
		if _, err := fmt.Sscanf(line, "VERSION %d", &v); err != nil {
			return fmt.Errorf("%w: %q", ErrProtocol, line)
		}
		return nil
	})
	return v, err
}

// Get fetches key; ok is false when the key is absent.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	err = c.do("get", func(conn net.Conn, r *bufio.Reader) error {
		value, ok = nil, false
		if _, err := fmt.Fprintf(conn, "GET %s\n", key); err != nil {
			return err
		}
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if strings.TrimSpace(line) == "NONE" {
			return nil
		}
		if err := busyCheck(line); err != nil {
			return err
		}
		var n int
		if _, err := fmt.Sscanf(line, "VALUE %d", &n); err != nil {
			return fmt.Errorf("%w: %q", ErrProtocol, line)
		}
		// Bound-check before allocating: a malicious or corrupt server
		// announcing a negative or huge length must not drive make() into a
		// panic or an unbounded allocation. The server enforces the same cap
		// on PUT, so an honest value never exceeds it.
		if n < 0 || n > MaxValueLen {
			return fmt.Errorf("%w: implausible value length %d", ErrProtocol, n)
		}
		buf := make([]byte, n+1) // value plus trailing newline
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		value, ok = buf[:n], true
		return nil
	})
	return value, ok, err
}

// Put stores value under key.
func (c *Client) Put(key string, value []byte) error {
	return c.do("put", func(conn net.Conn, r *bufio.Reader) error {
		if _, err := fmt.Fprintf(conn, "PUT %s %d\n", key, len(value)); err != nil {
			return err
		}
		if _, err := conn.Write(value); err != nil {
			return err
		}
		return expectOK(r)
	})
}

// PutBatch stores all key/value pairs over one connection in one wire
// round-trip: every PUT command is written before the first response is
// read, exploiting the server's per-command flush to pipeline the batch.
// The batch is not atomic — on error a prefix of the pairs may have been
// stored; acked reports how many leading pairs were acknowledged. A retry
// schedule re-runs the whole batch (PUT is idempotent, so overlap is safe).
// The operation deadline covers the entire batch: callers stream very large
// key sets as multiple batches rather than raising the timeout.
func (c *Client) PutBatch(keys []string, values [][]byte) (acked int, err error) {
	if len(keys) != len(values) {
		return 0, fmt.Errorf("kvstore: PutBatch length mismatch: %d keys, %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return 0, nil
	}
	err = c.do("mput", func(conn net.Conn, r *bufio.Reader) error {
		acked = 0
		w := bufio.NewWriterSize(conn, 64<<10)
		for i, k := range keys {
			if _, err := fmt.Fprintf(w, "PUT %s %d\n", k, len(values[i])); err != nil {
				return err
			}
			if _, err := w.Write(values[i]); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		for range keys {
			if err := expectOK(r); err != nil {
				return err
			}
			acked++
		}
		return nil
	})
	return acked, err
}

// Delete removes key; deleting an absent key is a no-op.
func (c *Client) Delete(key string) error {
	return c.do("del", func(conn net.Conn, r *bufio.Reader) error {
		if _, err := fmt.Fprintf(conn, "DEL %s\n", key); err != nil {
			return err
		}
		return expectOK(r)
	})
}

// Keys lists keys with the given prefix. The empty prefix enumerates every
// key: it is sent as the wire sentinel "*" (a space-delimited protocol
// cannot carry an empty field) and the results are re-filtered client-side
// so the sentinel can never widen an enumeration.
func (c *Client) Keys(prefix string) (keys []string, err error) {
	err = c.do("keys", func(conn net.Conn, r *bufio.Reader) error {
		keys = nil
		wire := prefix
		if wire == "" {
			wire = AllKeysPrefix
		}
		if _, err := fmt.Fprintf(conn, "KEYS %s\n", wire); err != nil {
			return err
		}
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if err := busyCheck(line); err != nil {
			return err
		}
		var n int
		if _, err := fmt.Sscanf(line, "KEYS %d", &n); err != nil {
			return fmt.Errorf("%w: %q", ErrProtocol, line)
		}
		// Bound-check before trusting the count, mirroring Get's value-length
		// check: a corrupt server announcing a negative or absurd key count
		// must not drive the read loop into an unbounded accumulation. The
		// server never stores more than MaxKeys keys, so an honest response
		// cannot exceed it.
		if n < 0 || n > MaxKeys {
			return fmt.Errorf("%w: implausible key count %d", ErrProtocol, n)
		}
		for i := 0; i < n; i++ {
			k, err := readLine(r)
			if err != nil {
				return err
			}
			if k = strings.TrimSpace(k); strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
		return nil
	})
	return keys, err
}

// Snapshot fetches every record under prefix plus the version it was taken
// at, in one wire round-trip — the O(1)-requests cold-sync path that
// replaces a KEYS walk followed by GET-per-record. The empty prefix
// snapshots the whole store (sent as the "*" sentinel, re-filtered
// client-side like Keys).
func (c *Client) Snapshot(prefix string) (version uint64, records map[string][]byte, err error) {
	err = c.do("snap", func(conn net.Conn, r *bufio.Reader) error {
		version, records = 0, nil
		wire := prefix
		if wire == "" {
			wire = AllKeysPrefix
		}
		if _, err := fmt.Fprintf(conn, "SNAP %s\n", wire); err != nil {
			return err
		}
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if err := busyCheck(line); err != nil {
			return err
		}
		var n int
		if _, err := fmt.Sscanf(line, "SNAP %d %d", &version, &n); err != nil {
			return fmt.Errorf("%w: %q", ErrProtocol, line)
		}
		if n < 0 || n > MaxKeys {
			return fmt.Errorf("%w: implausible record count %d", ErrProtocol, n)
		}
		records = make(map[string][]byte, n)
		for i := 0; i < n; i++ {
			hdr, err := readLine(r)
			if err != nil {
				return err
			}
			fields := strings.Fields(strings.TrimSpace(hdr))
			if len(fields) != 2 {
				return fmt.Errorf("%w: snapshot record header %q", ErrProtocol, hdr)
			}
			vlen, err := strconv.Atoi(fields[1])
			if err != nil || vlen < 0 || vlen > MaxValueLen {
				return fmt.Errorf("%w: implausible value length in %q", ErrProtocol, hdr)
			}
			buf := make([]byte, vlen+1) // value plus trailing newline
			if _, err := io.ReadFull(r, buf); err != nil {
				return err
			}
			if strings.HasPrefix(fields[0], prefix) {
				records[fields[0]] = buf[:vlen]
			}
		}
		return nil
	})
	return version, records, err
}

// Delta fetches the per-key-compacted changes under prefix published after
// since, plus the version they bring the client up to. ErrDeltaGap means the
// server's journal no longer reaches back that far — resync with Snapshot.
// An empty entry list with version > since is a valid answer: nothing under
// the prefix changed, the caller just advances its cursor.
func (c *Client) Delta(since uint64, prefix string) (version uint64, entries []DeltaEntry, err error) {
	err = c.do("delta", func(conn net.Conn, r *bufio.Reader) error {
		version, entries = 0, nil
		wire := prefix
		if wire == "" {
			wire = AllKeysPrefix
		}
		if _, err := fmt.Fprintf(conn, "DELTA %d %s\n", since, wire); err != nil {
			return err
		}
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if err := busyCheck(line); err != nil {
			return err
		}
		if strings.HasPrefix(line, "GAP") {
			if _, err := fmt.Sscanf(line, "GAP %d", &version); err != nil {
				return fmt.Errorf("%w: %q", ErrProtocol, line)
			}
			return ErrDeltaGap
		}
		var n int
		if _, err := fmt.Sscanf(line, "DELTA %d %d", &version, &n); err != nil {
			return fmt.Errorf("%w: %q", ErrProtocol, line)
		}
		if n < 0 || n > MaxKeys {
			return fmt.Errorf("%w: implausible change count %d", ErrProtocol, n)
		}
		for i := 0; i < n; i++ {
			hdr, err := readLine(r)
			if err != nil {
				return err
			}
			fields := strings.Fields(strings.TrimSpace(hdr))
			switch {
			case len(fields) == 2 && fields[0] == "DEL":
				if strings.HasPrefix(fields[1], prefix) {
					entries = append(entries, DeltaEntry{Key: fields[1], Delete: true, Version: version})
				}
			case len(fields) == 3 && fields[0] == "PUT":
				vlen, err := strconv.Atoi(fields[2])
				if err != nil || vlen < 0 || vlen > MaxValueLen {
					return fmt.Errorf("%w: implausible value length in %q", ErrProtocol, hdr)
				}
				buf := make([]byte, vlen+1) // value plus trailing newline
				if _, err := io.ReadFull(r, buf); err != nil {
					return err
				}
				if strings.HasPrefix(fields[1], prefix) {
					entries = append(entries, DeltaEntry{Key: fields[1], Value: buf[:vlen], Version: version})
				}
			default:
				return fmt.Errorf("%w: delta change header %q", ErrProtocol, hdr)
			}
		}
		return nil
	})
	return version, entries, err
}

// Publish advertises a new configuration version.
func (c *Client) Publish(v uint64) error {
	return c.do("publish", func(conn net.Conn, r *bufio.Reader) error {
		if _, err := fmt.Fprintf(conn, "PUBLISH %d\n", v); err != nil {
			return err
		}
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if err := busyCheck(line); err != nil {
			return err
		}
		if !strings.HasPrefix(line, "OK") {
			return fmt.Errorf("%w: %q", ErrProtocol, line)
		}
		return nil
	})
}

// expectOK consumes one response line that must be exactly OK.
func expectOK(r *bufio.Reader) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	if err := busyCheck(line); err != nil {
		return err
	}
	if strings.TrimSpace(line) != "OK" {
		return fmt.Errorf("%w: %q", ErrProtocol, line)
	}
	return nil
}

// Backoff is a bounded exponential retry schedule with seeded jitter. The
// zero value retries nothing (one attempt); a typical agent-side schedule
// is {Attempts: 3, Base: 10 * time.Millisecond, Seed: slot} so a fleet
// whose database vanished does not re-dial in lockstep.
type Backoff struct {
	// Attempts is the total number of tries including the first; values
	// below 1 mean 1 (no retry).
	Attempts int
	// Base is the pause before the first retry; zero means 10ms. Each
	// further retry doubles it.
	Base time.Duration
	// Max caps a single pause; zero means 1s.
	Max time.Duration
	// Seed fixes the jitter stream: equal seeds replay equal delays, which
	// keeps chaos runs reproducible.
	Seed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// Delay returns the pause before retry number retry (1-based): the
// exponential step with half-jitter, so the delay lies in [d/2, d] for
// d = min(Base<<(retry-1), Max).
func (b *Backoff) Delay(retry int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := max
	if retry < 1 {
		retry = 1
	}
	if shift := retry - 1; shift < 20 {
		if stepped := base << shift; stepped < max {
			d = stepped
		}
	}
	b.mu.Lock()
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(b.Seed))
	}
	j := time.Duration(b.rng.Int63n(int64(d/2) + 1))
	b.mu.Unlock()
	return d/2 + j
}

// jitter returns a seeded random duration in [0, d].
func (b *Backoff) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	b.mu.Lock()
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(b.Seed))
	}
	j := time.Duration(b.rng.Int63n(int64(d) + 1))
	b.mu.Unlock()
	return j
}

// retryDelay picks the pause before retry number retry given the error that
// forced it: a BUSY response's server-suggested retry-after wins over the
// exponential step (never sooner than suggested, plus up to half again of
// de-correlating jitter so a shed herd does not return as a herd), anything
// else follows Delay's half-jittered exponential.
func (b *Backoff) retryDelay(retry int, err error) time.Duration {
	var be *BusyError
	if errors.As(err, &be) {
		r := be.RetryAfter
		if r <= 0 {
			r = DefaultRetryAfter
		}
		return r + b.jitter(r/2)
	}
	return b.Delay(retry)
}

// Do runs op, retrying transport failures under the schedule. A nil result,
// a protocol error or a delta gap stops the retries immediately; a BUSY
// failure waits the server-suggested retry-after instead of the exponential
// step.
func (b *Backoff) Do(op func() error) error {
	return b.DoContext(context.Background(), op)
}

// DoContext is Do with cancellation: a context that expires mid-pause (or
// between attempts) stops the schedule and reports the context's error
// joined with the last attempt's, so callers see both why the op failed and
// why the retries stopped.
func (b *Backoff) DoContext(ctx context.Context, op func() error) error {
	n := b.Attempts
	if n < 1 {
		n = 1
	}
	var err error
	for i := 0; i < n; i++ {
		if i > 0 {
			t := time.NewTimer(b.retryDelay(i, err))
			select {
			case <-ctx.Done():
				t.Stop()
				return errors.Join(ctx.Err(), err)
			case <-t.C:
			}
		}
		err = op()
		if err == nil || errors.Is(err, ErrProtocol) || errors.Is(err, ErrDeltaGap) {
			return err
		}
		if ctx.Err() != nil {
			return errors.Join(ctx.Err(), err)
		}
	}
	return err
}
