package kvstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"megate/internal/telemetry"
)

// newAdmissionServer starts a server with its own metrics registry and the
// given options; the caller saturates it through WithServiceDelay.
func newAdmissionServer(t *testing.T, opts ...ServerOption) (*Server, *Store, *telemetry.Registry) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	store := NewStore(2)
	srv := Serve(l, store, append([]ServerOption{WithMetrics(reg)}, opts...)...)
	t.Cleanup(srv.Close)
	return srv, store, reg
}

// saturate occupies the server's single admission slot: the holder client
// times out client-side almost immediately, but the server-side handler keeps
// sleeping in the synthetic service delay with the slot held, so every later
// request is deterministically shed until the delay elapses.
func saturate(t *testing.T, addr string) {
	t.Helper()
	holder := &Client{Addr: addr, Timeout: 50 * time.Millisecond}
	if _, err := holder.Version(); err == nil {
		t.Fatal("holder poll should have timed out client-side while the server serves it")
	}
}

func TestServerShedsBusyUnderSaturation(t *testing.T) {
	srv, _, reg := newAdmissionServer(t,
		WithAdmission(Admission{MaxInflight: 1, MaxQueue: 0, RetryAfter: 40 * time.Millisecond}),
		WithServiceDelay(2*time.Second))
	saturate(t, srv.Addr())

	probe := &Client{Addr: srv.Addr(), Timeout: time.Second}
	_, err := probe.Version()
	if err == nil {
		t.Fatal("probe succeeded against a saturated shard")
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BusyError", err)
	}
	// Queue depth 1 over a zero queue scales the base 40ms hint up.
	if be.RetryAfter < 40*time.Millisecond {
		t.Errorf("retry-after %v, want >= the configured 40ms base", be.RetryAfter)
	}
	if shed := reg.Counter(MetricServerShed).Value(); shed < 1 {
		t.Errorf("shed counter = %d, want >= 1", shed)
	}
}

// TestServerShedPutKeepsConnectionSynced pins the parse-before-gate contract:
// a shed PUT has already consumed its value bytes, so the same connection can
// retry the write after the suggested pause without desynchronizing.
func TestServerShedPutKeepsConnectionSynced(t *testing.T) {
	srv, store, _ := newAdmissionServer(t,
		WithAdmission(Admission{MaxInflight: 1, MaxQueue: 0, RetryAfter: 10 * time.Millisecond}),
		WithServiceDelay(300*time.Millisecond))
	saturate(t, srv.Addr())

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	put := func() string {
		t.Helper()
		if _, err := fmt.Fprint(conn, "PUT te/cfg/x 5\nhello"); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}
	if line := put(); !strings.HasPrefix(line, "BUSY") {
		t.Fatalf("first PUT answered %q, want BUSY while the slot is held", line)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		line := put()
		if line == "OK" {
			break
		}
		if !strings.HasPrefix(line, "BUSY") {
			t.Fatalf("retried PUT answered %q: shed PUT desynchronized the stream", line)
		}
		if time.Now().After(deadline) {
			t.Fatal("PUT never admitted after the holder released the slot")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v, ok := store.Get("te/cfg/x"); !ok || string(v) != "hello" {
		t.Fatalf("store has %q ok=%v after retried PUT", v, ok)
	}
}

func TestServerMaxConnsRejectsAndCounts(t *testing.T) {
	srv, _, reg := newAdmissionServer(t, WithMaxConns(1))

	// A round trip guarantees the first connection is registered server-side
	// before the over-cap dial arrives.
	held, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(held)
	if _, err := fmt.Fprint(held, "VERSION\n"); err != nil {
		t.Fatal(err)
	}
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("held conn round trip: %q, %v", line, err)
	}

	over := &Client{Addr: srv.Addr(), Timeout: time.Second}
	if _, err := over.Version(); err == nil {
		t.Fatal("over-cap connection served a request")
	}
	if got := reg.Counter(MetricConnsRejected).Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	if got := reg.Counter(MetricConnsAccepted).Value(); got != 1 {
		t.Errorf("accepted = %d, want 1", got)
	}

	// Releasing the held connection frees the slot: the cap bounds concurrent
	// connections, it does not blacklist clients.
	_ = held.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := over.Version(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection slot never freed after close")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := reg.Counter(MetricConnsAccepted).Value(); got < 2 {
		t.Errorf("accepted = %d after recovery, want >= 2", got)
	}
}

func TestBusyCheckMalformedHintStillSheds(t *testing.T) {
	for _, line := range []string{"BUSY\n", "BUSY nonsense\n", "BUSY -3\n"} {
		err := busyCheck(line)
		var be *BusyError
		if !errors.As(err, &be) {
			t.Fatalf("busyCheck(%q) = %v, want *BusyError", line, err)
		}
		if be.RetryAfter != DefaultRetryAfter {
			t.Errorf("busyCheck(%q) retry-after = %v, want default %v", line, be.RetryAfter, DefaultRetryAfter)
		}
	}
	if err := busyCheck("VERSION 3\n"); err != nil {
		t.Errorf("busyCheck(VERSION) = %v, want nil", err)
	}
}

// TestBackoffBusyHonorsRetryAfter asserts a BUSY failure waits at least the
// server-suggested pause even when the exponential schedule would retry far
// sooner.
func TestBackoffBusyHonorsRetryAfter(t *testing.T) {
	b := &Backoff{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond, Seed: 1}
	var stamps []time.Time
	err := b.Do(func() error {
		stamps = append(stamps, time.Now())
		if len(stamps) <= 2 {
			return &BusyError{RetryAfter: 60 * time.Millisecond}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 3 {
		t.Fatalf("attempts = %d, want 3", len(stamps))
	}
	for i := 1; i < len(stamps); i++ {
		if gap := stamps[i].Sub(stamps[i-1]); gap < 60*time.Millisecond {
			t.Errorf("retry %d came after %v, sooner than the suggested 60ms", i, gap)
		}
	}
}

func TestBackoffDoContextCanceledMidPause(t *testing.T) {
	sentinel := errors.New("transport down")
	b := &Backoff{Attempts: 5, Base: 400 * time.Millisecond, Max: time.Second, Seed: 2}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	attempts := 0
	start := time.Now()
	err := b.DoContext(ctx, func() error {
		attempts++
		return sentinel
	})
	elapsed := time.Since(start)
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1: cancellation must stop the schedule", attempts)
	}
	// The first pause alone is >= 200ms; cancellation at 50ms must cut it.
	if elapsed >= 200*time.Millisecond {
		t.Errorf("DoContext returned after %v, cancellation did not interrupt the pause", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the join", err)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the last attempt's error in the join", err)
	}
}

func TestBackoffDoContextCanceledBetweenAttempts(t *testing.T) {
	sentinel := errors.New("transport down")
	b := &Backoff{Attempts: 5, Base: time.Second, Seed: 3}
	ctx, cancel := context.WithCancel(context.Background())
	err := b.DoContext(ctx, func() error {
		cancel()
		return sentinel
	})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want canceled joined with the attempt error", err)
	}
}

// scriptedReplica is a minimal wire-level replica: every command line gets
// one fixed response, switchable at runtime between BUSY (overloaded) and a
// VERSION answer (healthy).
type scriptedReplica struct {
	l    net.Listener
	busy atomic.Bool
	// retryMs is the BUSY hint; version the healthy VERSION answer.
	retryMs int
	version uint64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newScriptedReplica(t *testing.T, retryMs int, version uint64, busy bool) *scriptedReplica {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedReplica{l: l, retryMs: retryMs, version: version, conns: make(map[net.Conn]struct{})}
	s.busy.Store(busy)
	go s.serve()
	t.Cleanup(s.close)
	return s
}

func (s *scriptedReplica) addr() string { return s.l.Addr().String() }

func (s *scriptedReplica) close() {
	_ = s.l.Close()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
}

func (s *scriptedReplica) serve() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			defer conn.Close()
			r := bufio.NewReader(conn)
			for {
				if _, err := r.ReadString('\n'); err != nil {
					return
				}
				var resp string
				if s.busy.Load() {
					resp = fmt.Sprintf("BUSY %d\n", s.retryMs)
				} else {
					resp = fmt.Sprintf("VERSION %d\n", s.version)
				}
				if _, err := fmt.Fprint(conn, resp); err != nil {
					return
				}
			}
		}()
	}
}

// TestReplicaBusyFailoverNoPromotion pins shed ≠ dead at the replica layer: a
// primary answering BUSY is failed over past for the one read, but it keeps
// its preferred position — a moment of overload must not permanently demote
// it — and it serves again the instant the overload clears.
func TestReplicaBusyFailoverNoPromotion(t *testing.T) {
	primary := newScriptedReplica(t, 25, 7, true)
	secondary := newScriptedReplica(t, 0, 3, false)

	reg := telemetry.NewRegistry()
	d := newCountingDialer()
	rc := NewReplicaClient([]string{primary.addr(), secondary.addr()}, func(rc *ReplicaClient) {
		rc.Metrics = reg
		rc.Dialer = d.dial
		rc.Timeout = time.Second
	})

	for i := 1; i <= 2; i++ {
		v, err := rc.Version()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if v != 3 {
			t.Fatalf("read %d: version = %d, want 3 from the secondary", i, v)
		}
		// The busy primary is still dialed first every read: no promotion
		// shuffled it out of the preference order.
		if got := d.count(primary.addr()); got != i {
			t.Fatalf("read %d: primary dialed %d times, want %d", i, got, i)
		}
	}
	if got := rc.Failovers(); got != 2 {
		t.Errorf("failovers = %d, want 2", got)
	}
	if got := reg.Counter(MetricReplicaPromotions).Value(); got != 0 {
		t.Errorf("promotions = %d, want 0: BUSY failover must not promote", got)
	}

	// Overload clears: the primary answers again with no promotion ceremony.
	primary.busy.Store(false)
	v, err := rc.Version()
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Errorf("post-heal version = %d, want 7 from the primary", v)
	}
	if got := reg.Counter(MetricReplicaPromotions).Value(); got != 0 {
		t.Errorf("promotions = %d after heal, want 0", got)
	}
}

// TestReplicaAllBusyReportsBusy asserts a fully shed cycle surfaces as a
// retryable BusyError carrying the largest server-suggested pause, so a
// Backoff honors the fleet-wide back-pressure signal.
func TestReplicaAllBusyReportsBusy(t *testing.T) {
	a := newScriptedReplica(t, 25, 1, true)
	b := newScriptedReplica(t, 70, 2, true)
	rc := NewReplicaClient([]string{a.addr(), b.addr()}, func(rc *ReplicaClient) {
		rc.Metrics = telemetry.NewRegistry()
		rc.Timeout = time.Second
	})

	_, err := rc.Version()
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BusyError", err)
	}
	if be.RetryAfter != 70*time.Millisecond {
		t.Errorf("retry-after = %v, want the largest suggestion 70ms", be.RetryAfter)
	}
}
