package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestClientSnapshotDeltaWire walks the snapshot+delta protocol end to end
// over real TCP: one SNAP brings the whole prefix, subsequent DELTAs carry
// only the compacted changes (tombstones included), and a cursor past the
// current version just advances.
func TestClientSnapshotDeltaWire(t *testing.T) {
	srv, store := newTestServer(t, 2)
	store.EnableDeltaLog(32)
	c := &Client{Addr: srv.Addr()}

	store.Put("te/cfg/a1", []byte("one"))
	store.Put("te/cfg/a2", []byte("two"))
	store.Put("other/b", []byte("noise"))
	store.Publish(1)

	v, recs, err := c.Snapshot("te/cfg/")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("snapshot version = %d, want 1", v)
	}
	if len(recs) != 2 || !bytes.Equal(recs["te/cfg/a1"], []byte("one")) || !bytes.Equal(recs["te/cfg/a2"], []byte("two")) {
		t.Fatalf("snapshot records = %v", recs)
	}

	store.Put("te/cfg/a1", []byte("one-v2"))
	store.Delete("te/cfg/a2")
	store.Put("other/b", []byte("more-noise"))
	store.Publish(2)

	v, entries, err := c.Delta(1, "te/cfg/")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("delta version = %d, want 2", v)
	}
	if len(entries) != 2 {
		t.Fatalf("delta entries = %+v, want PUT a1 + DEL a2", entries)
	}
	if entries[0].Key != "te/cfg/a1" || entries[0].Delete || !bytes.Equal(entries[0].Value, []byte("one-v2")) {
		t.Errorf("entry 0 = %+v, want PUT te/cfg/a1 one-v2", entries[0])
	}
	if entries[1].Key != "te/cfg/a2" || !entries[1].Delete {
		t.Errorf("entry 1 = %+v, want DEL te/cfg/a2", entries[1])
	}

	// A caught-up cursor is a valid answer: nothing to apply, cursor stays.
	v, entries, err = c.Delta(2, "te/cfg/")
	if err != nil || v != 2 || len(entries) != 0 {
		t.Fatalf("caught-up delta = v%d %d entries, %v", v, len(entries), err)
	}
}

// TestClientDeltaGapAfterTruncation drives the journal past its retention so
// a stale cursor answers GAP on the wire, which the client surfaces as the
// schedule-stopping ErrDeltaGap.
func TestClientDeltaGapAfterTruncation(t *testing.T) {
	srv, store := newTestServer(t, 2)
	store.EnableDeltaLog(4)
	c := &Client{Addr: srv.Addr()}

	store.Put("te/cfg/a", []byte("v1"))
	store.Publish(1)
	for i := 2; i <= 10; i++ {
		store.Put(fmt.Sprintf("te/cfg/churn-%d", i), []byte("x"))
		store.Publish(uint64(i))
	}

	_, _, err := c.Delta(1, "te/cfg/")
	if !errors.Is(err, ErrDeltaGap) {
		t.Fatalf("stale-cursor delta err = %v, want ErrDeltaGap", err)
	}
	// ErrDeltaGap stops a retry schedule: the journal will not grow backward.
	b := &Backoff{Attempts: 5, Base: 1}
	calls := 0
	err = b.Do(func() error {
		calls++
		_, _, err := c.Delta(1, "te/cfg/")
		return err
	})
	if !errors.Is(err, ErrDeltaGap) || calls != 1 {
		t.Fatalf("backoff retried a delta gap %d times (err %v); must stop at 1", calls, err)
	}

	// The snapshot fallback recovers the full state in one request.
	v, recs, err := c.Snapshot("te/cfg/")
	if err != nil || v != 10 {
		t.Fatalf("fallback snapshot = v%d, %v", v, err)
	}
	if len(recs) != 10 {
		t.Fatalf("fallback snapshot carries %d records, want 10", len(recs))
	}
}

// TestReplicaDeltaGapPropagates pins the replica scan's GAP handling: a GAP
// is an authoritative answer, not a replica failure, so the scan stops at the
// first replica instead of hunting for one with a longer journal.
func TestReplicaDeltaGapPropagates(t *testing.T) {
	srv, store := newTestServer(t, 2)
	store.EnableDeltaLog(2)
	store.Put("te/cfg/a", []byte("v1"))
	store.Publish(1)
	for i := 2; i <= 6; i++ {
		store.Put(fmt.Sprintf("te/cfg/churn-%d", i), []byte("x"))
		store.Publish(uint64(i))
	}
	srv2, store2 := newTestServer(t, 2)
	store2.EnableDeltaLog(64)

	rc := NewReplicaClient([]string{srv.Addr(), srv2.Addr()})
	_, _, err := rc.Delta(1, "te/cfg/")
	if !errors.Is(err, ErrDeltaGap) {
		t.Fatalf("replica delta err = %v, want ErrDeltaGap from the primary", err)
	}
}
