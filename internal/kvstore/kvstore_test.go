package kvstore

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore(2)
	if s.NumShards() != 2 {
		t.Error("shards")
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("get on empty store")
	}
	s.Put("a", []byte("hello"))
	if v, ok := s.Get("a"); !ok || string(v) != "hello" {
		t.Errorf("get = %q, %v", v, ok)
	}
	if s.Len() != 1 {
		t.Error("len")
	}
	s.Delete("a")
	if s.Len() != 0 {
		t.Error("delete")
	}
}

func TestStorePutCopies(t *testing.T) {
	s := NewStore(1)
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'x'
	if v, _ := s.Get("k"); string(v) != "abc" {
		t.Error("Put did not copy the value")
	}
}

func TestStoreVersionMonotone(t *testing.T) {
	s := NewStore(1)
	if s.Version() != 0 {
		t.Error("initial version")
	}
	if got := s.Publish(5); got != 5 {
		t.Errorf("publish = %d", got)
	}
	if got := s.Publish(3); got != 5 {
		t.Errorf("stale publish = %d, want 5 (ignored)", got)
	}
	if got := s.Bump(); got != 6 {
		t.Errorf("bump = %d", got)
	}
}

func TestStoreQueriesCounted(t *testing.T) {
	s := NewStore(1)
	s.Put("a", []byte("x"))
	s.Get("a")
	s.Get("b")
	s.Version()
	if q := s.Queries(); q != 3 {
		t.Errorf("queries = %d, want 3", q)
	}
	if q := s.ResetQueries(); q != 3 {
		t.Errorf("reset = %d", q)
	}
	if s.Queries() != 0 {
		t.Error("counter not reset")
	}
}

func TestStoreShardingDistributes(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	populated := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		if len(s.shards[i].m) > 0 {
			populated++
		}
		s.shards[i].mu.RUnlock()
	}
	if populated < 3 {
		t.Errorf("only %d of 4 shards populated", populated)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k-%d", i%32)
				s.Put(key, []byte{byte(g)})
				s.Get(key)
				s.Bump()
			}
		}(g)
	}
	wg.Wait()
	if s.Version() != 8*500 {
		t.Errorf("version = %d, want 4000", s.Version())
	}
}

func newTestServer(t *testing.T, shards int) (*Server, *Store) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(shards)
	srv := Serve(l, store)
	t.Cleanup(srv.Close)
	return srv, store
}

func TestServerClientRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, 2)
	c := &Client{Addr: srv.Addr()}

	v, err := c.Version()
	if err != nil || v != 0 {
		t.Fatalf("version = %d, %v", v, err)
	}
	if _, ok, err := c.Get("missing"); err != nil || ok {
		t.Fatalf("get missing = %v, %v", ok, err)
	}
	payload := bytes.Repeat([]byte("config"), 100)
	if err := c.Put("te/cfg/1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("te/cfg/1")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get = %v bytes, ok=%v, err=%v", len(got), ok, err)
	}
	if err := c.Publish(7); err != nil {
		t.Fatal(err)
	}
	v, err = c.Version()
	if err != nil || v != 7 {
		t.Fatalf("version after publish = %d, %v", v, err)
	}
}

func TestClientDelete(t *testing.T) {
	srv, store := newTestServer(t, 2)
	c := &Client{Addr: srv.Addr()}
	if err := c.Put("te/cfg/gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("te/cfg/gone"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("te/cfg/gone"); err != nil || ok {
		t.Fatalf("key survived delete: ok=%v err=%v", ok, err)
	}
	if _, ok := store.Get("te/cfg/gone"); ok {
		t.Error("store still holds deleted key")
	}
	// Deleting an absent key is a no-op, not an error.
	if err := c.Delete("never-existed"); err != nil {
		t.Fatal(err)
	}
}

func TestClientBinaryValues(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	c := &Client{Addr: srv.Addr()}
	payload := []byte{0, 1, 2, '\n', 255, '\n', 0}
	if err := c.Put("bin", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("bin")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("binary round trip failed: %v %v %v", got, ok, err)
	}
}

func TestClientPersistentMode(t *testing.T) {
	srv, store := newTestServer(t, 1)
	c := &Client{Addr: srv.Addr(), Persistent: true}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 10 {
		t.Errorf("store has %d keys", store.Len())
	}
	if _, err := c.Version(); err != nil {
		t.Fatal(err)
	}
}

func TestClientConcurrentShortConnections(t *testing.T) {
	srv, store := newTestServer(t, 2)
	store.Put("shared", []byte("x"))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &Client{Addr: srv.Addr()}
			for i := 0; i < 20; i++ {
				if _, err := c.Version(); err != nil {
					errs <- err
					return
				}
				if _, ok, err := c.Get("shared"); err != nil || !ok {
					errs <- fmt.Errorf("get: %v %v", ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// 16 goroutines * 20 iterations * 2 queries each.
	if q := store.Queries(); q != 640 {
		t.Errorf("queries = %d, want 640", q)
	}
}

func TestServerRejectsBadCommands(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "BOGUS\nGET\nPUT k notanumber\nPUBLISH x\nVERSION\n")
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	out := string(buf[:n])
	if !bytes.Contains([]byte(out), []byte("ERR")) {
		t.Errorf("server output lacked errors: %q", out)
	}
}

func TestServerCloseStopsClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(1)
	srv := Serve(l, store)
	c := &Client{Addr: srv.Addr()}
	if _, err := c.Version(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.Version(); err == nil {
		t.Error("client reached a closed server")
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore(2)
	s.Put("k", bytes.Repeat([]byte("x"), 256))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Get("k")
		}
	})
}

func BenchmarkServerShortConnectionQPS(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	store := NewStore(2)
	srv := Serve(l, store)
	defer srv.Close()
	c := &Client{Addr: srv.Addr()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Version(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerPersistentQPS(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	store := NewStore(2)
	srv := Serve(l, store)
	defer srv.Close()
	c := &Client{Addr: srv.Addr(), Persistent: true}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Version(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestServerPutOversizedLength(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "PUT k 99999999999\n")
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if !bytes.Contains(buf[:n], []byte("ERR")) {
		t.Errorf("oversized PUT accepted: %q", buf[:n])
	}
}

func TestClientAgainstClosedServer(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	addr := srv.Addr()
	srv.Close()
	c := &Client{Addr: addr}
	if _, err := c.Version(); err == nil {
		t.Error("Version against closed server should fail")
	}
	if _, _, err := c.Get("k"); err == nil {
		t.Error("Get against closed server should fail")
	}
	if err := c.Put("k", []byte("v")); err == nil {
		t.Error("Put against closed server should fail")
	}
	if err := c.Publish(1); err == nil {
		t.Error("Publish against closed server should fail")
	}
}

func TestPersistentClientRecoversAfterServerRestart(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	store := NewStore(1)
	srv := Serve(l, store)
	c := &Client{Addr: addr, Persistent: true}
	defer c.Close()
	if _, err := c.Version(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The broken connection must be dropped...
	if _, err := c.Version(); err == nil {
		t.Fatal("version against dead server should fail")
	}
	// ...and a restarted server reachable again through the same client.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := Serve(l2, store)
	defer srv2.Close()
	if _, err := c.Version(); err != nil {
		t.Errorf("persistent client did not recover: %v", err)
	}
}

func TestServerEmptyCommandLinesIgnored(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "\n\n  \nVERSION\n")
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil || !bytes.Contains(buf[:n], []byte("VERSION 0")) {
		t.Errorf("got %q, %v", buf[:n], err)
	}
}

func TestServerDoubleClose(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, NewStore(1))
	srv.Close()
	srv.Close() // must not panic
}

func TestStoreKeysPrefix(t *testing.T) {
	s := NewStore(4)
	s.Put("te/stats/h1", []byte("a"))
	s.Put("te/stats/h2", []byte("b"))
	s.Put("te/cfg/x", []byte("c"))
	keys := s.Keys("te/stats/")
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	for _, k := range keys {
		if k != "te/stats/h1" && k != "te/stats/h2" {
			t.Fatalf("unexpected key %q", k)
		}
	}
	if got := s.Keys("nope/"); len(got) != 0 {
		t.Errorf("keys = %v", got)
	}
}

func TestClientKeys(t *testing.T) {
	srv, store := newTestServer(t, 2)
	store.Put("te/stats/a", []byte("1"))
	store.Put("te/stats/b", []byte("2"))
	store.Put("other", []byte("3"))
	c := &Client{Addr: srv.Addr()}
	keys, err := c.Keys("te/stats/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "te/stats/a" || keys[1] != "te/stats/b" {
		t.Fatalf("keys = %v", keys)
	}
	empty, err := c.Keys("zzz")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty prefix: %v, %v", empty, err)
	}
}
