package lp

import "math"

// This file implements the acceptance certificate of the fast-path/slow-path
// solver split: a cheap, *sound* test that a candidate allocation — produced
// by drift reallocation or a fixed-budget ADMM sweep rather than the exact
// GUB simplex — is close enough to optimal to publish.
//
// The certificate is Lagrangian weak duality on the path MCF
//
//	max  Σ c_kt x_kt   s.t.  Σ_t x_kt <= D_k,  Σ L(t,e) x_kt <= cap_e,  x >= 0
//
// For ANY nonnegative link prices pi, setting the per-commodity price
//
//	mu_k(pi) = max(0, max_t (c_kt − Σ_{e∈t} pi_e))
//
// makes (pi, mu) dual feasible by construction, so
//
//	DualBound(pi) = Σ_k mu_k(pi) D_k + Σ_e pi_e cap_e >= OPT >= Objective(x)
//
// holds for every feasible x. The bound is valid for arbitrary pi — only its
// *tightness* depends on price quality — so the certificate can mix price
// vectors from different sources (the exact simplex's pi from the last slow
// solve, the ADMM scaled duals u rescaled out of utilization units, and the
// all-zero vector) and keep the smallest bound. A certificate can therefore
// reject a near-optimal allocation when every available price vector is
// stale, but it can never accept one whose true gap exceeds the measured
// gap: fallback is the only failure mode.

// Certificate is the optimality evidence attached to one stage-1 solve. Both
// the fast path (ADMM/drift) and the slow path (GUB simplex) emit the same
// shape, so consumers compare intervals without caring which solver ran.
type Certificate struct {
	// Primal is Objective(x) of the candidate allocation.
	Primal float64
	// Dual is the smallest Lagrangian dual bound over the supplied price
	// vectors (always >= the true optimum).
	Dual float64
	// Gap is the certified relative optimality gap,
	// (Dual − Primal) / max(Dual, 1): an upper bound on how far the
	// candidate is from optimal. Clamped at 0 against float debris.
	Gap float64
	// Feasible reports that x satisfies demand, capacity and nonnegativity
	// within certTol.
	Feasible bool
	// Accepted is Feasible && Gap <= the tolerance the check ran with.
	Accepted bool
}

// certTol is the feasibility slack the certificate check allows, matching
// the rounding debris the simplex and ADMM repair passes may leave.
const certTol = 1e-6

// DualBound returns the Lagrangian dual bound for the given nonnegative link
// prices (nil or short slices read as zero price; negative entries are
// treated as zero, keeping the bound valid for any input). With all-zero
// prices the bound degenerates to Σ_k D_k max_t c_kt — exact whenever
// capacity is slack and every commodity rides its best tunnel.
func DualBound(p *MCF, pi []float64) float64 {
	price := func(e int) float64 {
		if e < len(pi) && pi[e] > 0 {
			return pi[e]
		}
		return 0
	}
	bound := 0.0
	for e := range p.LinkCap {
		bound += price(e) * p.LinkCap[e]
	}
	for k := range p.Commodities {
		c := &p.Commodities[k]
		best := 0.0
		for t := range c.Tunnels {
			rc := 1 - p.Epsilon*c.Weights[t]
			for _, e := range c.Tunnels[t] {
				rc -= price(e)
			}
			if rc > best {
				best = rc
			}
		}
		bound += best * c.Demand
	}
	return bound
}

// EvaluateCertificate checks a candidate allocation against the tolerance:
// feasibility within certTol, and certified relative gap — computed with the
// tightest of the supplied price vectors (the zero vector is always
// included) — at most tol. A tol <= 0 defaults to 0.01 (1%).
func EvaluateCertificate(p *MCF, x Allocation, tol float64, prices ...[]float64) Certificate {
	if tol <= 0 {
		tol = 0.01
	}
	cert := Certificate{Primal: p.Objective(x)}
	cert.Dual = DualBound(p, nil)
	for _, pi := range prices {
		if pi == nil {
			continue
		}
		if b := DualBound(p, pi); b < cert.Dual {
			cert.Dual = b
		}
	}
	den := cert.Dual
	if den < 1 {
		den = 1
	}
	cert.Gap = (cert.Dual - cert.Primal) / den
	if cert.Gap < 0 {
		cert.Gap = 0 // primal past the bound: float debris, truly optimal
	}
	cert.Feasible = p.CheckFeasible(x, certTol) == nil
	cert.Accepted = cert.Feasible && cert.Gap <= tol
	return cert
}

// RescaleADMMDuals converts the ADMM consensus duals u — accumulated in link
// *utilization* units against the penalty rho and the mean-capacity
// normalization mc — into objective-unit link prices comparable to the GUB
// simplex's pi: pi_e = rho · mc · max(0, u_e) / cap_e. Links with zero
// capacity get a zero price (no tunnel may carry flow across them anyway —
// the feasibility check owns that invariant).
func RescaleADMMDuals(p *MCF, u []float64, rho float64) []float64 {
	mc := meanCap(p)
	pi := make([]float64, len(p.LinkCap))
	for e := range pi {
		if e < len(u) && u[e] > 0 && p.LinkCap[e] > 0 {
			pi[e] = rho * mc * u[e] / p.LinkCap[e]
		}
	}
	return pi
}

// CloneAllocation deep-copies an allocation; the fast path mutates its
// candidate in place while the previous interval's accepted allocation must
// survive for the next drift step.
func CloneAllocation(a Allocation) Allocation {
	if a == nil {
		return nil
	}
	c := make(Allocation, len(a))
	for k := range a {
		c[k] = append([]float64(nil), a[k]...)
	}
	return c
}

// ValidPrices reports whether a stored price vector is still usable for this
// problem: the right length is not required (DualBound zero-extends), but
// NaN/Inf entries would poison the bound.
func ValidPrices(pi []float64) bool {
	for _, v := range pi {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
