package lp

import (
	"errors"
	"fmt"
	"math"
)

// GUBSimplex is an exact primal simplex specialized to the generalized
// upper bound (GUB) structure of MaxSiteFlow (Dantzig & Van Slyke 1967):
//
//	max  Σ c_kt x_kt
//	s.t. Σ_t x_kt + s_k = D_k          (one GUB row per site pair k)
//	     Σ_kt a_ekt x_kt + u_e = cap_e  (one coupling row per link e)
//	     x, s, u >= 0
//
// A dense simplex would carry a (K+E)-row basis; with thousands of site
// pairs that is intractable. The GUB structure lets the basis be split into
// one "key" variable per pair plus an E×E *working basis* over the links
// only, so memory and per-iteration cost scale with the link count (a few
// hundred) rather than the pair count (tens of thousands). This makes the
// exact LP usable at scales where the dense Simplex cannot even allocate
// its tableau, which is how the paper's Gurobi runs are substituted here at
// medium scale (the (1−ε) FleischerMCF remains the default beyond that).
type GUBSimplex struct {
	// MaxIter bounds pivot count; 0 derives a generous default.
	MaxIter int
}

// ErrSingular reports a numerically singular working basis.
var ErrSingular = errors.New("lp: singular working basis")

// AutoMCF solves exactly with the GUB simplex up to ExactLimit commodities
// and falls back to the (1−ε) Fleischer approximation beyond — the default
// MaxSiteFlow engine: exact wherever exactness is affordable, scalable
// everywhere.
type AutoMCF struct {
	// ExactLimit is the largest commodity count solved exactly; default
	// 6000.
	ExactLimit int
	// Epsilon is the fallback approximation parameter; default 0.05.
	Epsilon float64
}

// autoMCFCostBudget caps the estimated exact pivot cost (commodities ×
// working basis², i.e. K·E²): roughly ten seconds of pivoting on one core.
const autoMCFCostBudget = 1.2e9

// SolveMCF implements the auto selection. Exact solving is used when both
// the commodity count and the estimated pivot cost (commodities × working
// basis², i.e. K·E²) are affordable; the pivot count grows with K and each
// pivot costs O(E²).
func (a *AutoMCF) SolveMCF(p *MCF) (Allocation, error) {
	alloc, _, err := a.SolveMCFBasis(p, nil)
	return alloc, err
}

// Numerical tolerances of the GUB simplex. All pivot-sized comparisons in
// this file and warmstart.go go through these three constants; do not
// scatter fresh literals.
const (
	// gubEps separates "zero" from "progress" in ratio tests, reduced
	// costs, and eta-update denominators.
	gubEps = 1e-9
	// gubPivotTol is the smallest |pivot| accepted when updating or
	// inverting W^{-1}; anything smaller is treated as singular and the
	// caller refactorizes.
	gubPivotTol = 1e-11
	// gubClampTol bounds the rounding debris a basis refresh may leave on
	// basic values: negatives within it are clamped to exactly 0, larger
	// ones are genuine infeasibility.
	gubClampTol = 1e-7
)

// gubVar describes one variable of the GUB-structured LP.
type gubVar struct {
	set   int   // GUB set (pair) index, or -1 for link slacks
	links []int // coupling-row indices with coefficient 1
	cost  float64
}

// gubState carries the solver's working data.
type gubState struct {
	vars []gubVar
	// members[k] lists variable indices of GUB set k (structural + slack).
	members [][]int
	demand  []float64 // D_k
	cap     []float64 // cap_e
	nLinks  int

	key    []int // key[k]: basic variable representing set k
	nonKey []int // nonKey[i]: variable occupying working-basis column i
	// where[v]: -1 nonbasic, -2 key, otherwise the working column index.
	where []int

	winv [][]float64 // W^{-1}, nLinks x nLinks
	y    []float64   // values of non-key basic variables
	xkey []float64   // values of key variables
	pi   []float64   // link duals
	mu   []float64   // GUB duals
}

// SolveMCF solves the path MCF exactly from a cold (slack) basis.
func (g *GUBSimplex) SolveMCF(p *MCF) (Allocation, error) {
	alloc, _, err := g.SolveMCFBasis(p, nil)
	return alloc, err
}

// maxIterFor derives the pivot budget for a problem.
func (g *GUBSimplex) maxIterFor(st *gubState) int {
	maxIter := g.MaxIter
	if maxIter == 0 {
		maxIter = 50 * (len(st.members) + st.nLinks)
		if maxIter < 2000 {
			maxIter = 2000
		}
	}
	return maxIter
}

// extractAllocation reads the final basic solution back into F_{k,t} form.
func (st *gubState) extractAllocation(p *MCF, colOf map[int][2]int) Allocation {
	alloc := p.NewAllocation()
	for v, loc := range st.where {
		val := 0.0
		switch {
		case loc == -2:
			val = st.xkey[st.vars[v].set]
		case loc >= 0:
			val = st.y[loc]
		default:
			continue
		}
		if val <= gubEps {
			continue
		}
		if kt, ok := colOf[v]; ok {
			alloc[kt[0]][kt[1]] = val
		}
	}
	return alloc
}

// buildGUB constructs the solver state from the MCF and returns a map from
// variable index to (commodity, tunnel).
func buildGUB(p *MCF) (*gubState, map[int][2]int) {
	st := &gubState{nLinks: len(p.LinkCap)}
	st.cap = append([]float64(nil), p.LinkCap...)
	colOf := make(map[int][2]int)

	for k := range p.Commodities {
		c := &p.Commodities[k]
		set := len(st.members)
		var mem []int
		for t, tun := range c.Tunnels {
			v := len(st.vars)
			st.vars = append(st.vars, gubVar{
				set:   set,
				links: append([]int(nil), tun...),
				cost:  1 - p.Epsilon*c.Weights[t],
			})
			colOf[v] = [2]int{k, t}
			mem = append(mem, v)
		}
		// GUB slack.
		v := len(st.vars)
		st.vars = append(st.vars, gubVar{set: set})
		mem = append(mem, v)
		st.members = append(st.members, mem)
		st.demand = append(st.demand, c.Demand)
	}
	// Link slacks.
	for e := 0; e < st.nLinks; e++ {
		st.vars = append(st.vars, gubVar{set: -1, links: []int{e}})
	}
	return st, colOf
}

// initCold installs the all-slack starting basis: GUB slacks as keys, link
// slacks as non-keys, W = I.
func (st *gubState) initCold() {
	nSets := len(st.members)
	E := st.nLinks

	st.key = make([]int, nSets)
	st.nonKey = make([]int, E)
	st.where = make([]int, len(st.vars))
	for v := range st.where {
		st.where[v] = -1
	}
	for k, mem := range st.members {
		slack := mem[len(mem)-1]
		st.key[k] = slack
		st.where[slack] = -2
	}
	firstLinkSlack := len(st.vars) - E
	for e := 0; e < E; e++ {
		st.nonKey[e] = firstLinkSlack + e
		st.where[firstLinkSlack+e] = e
	}
	st.winv = identity(E)
	st.y = make([]float64, E)
	st.xkey = make([]float64, nSets)
	st.pi = make([]float64, E)
	st.mu = make([]float64, nSets)
	st.refresh()
}

// iterate runs the GUB primal simplex to optimality from the current basis
// (cold or imported), which must be primal feasible.
func (st *gubState) iterate(maxIter int) error {
	degenerate := 0
	for iter := 0; iter < maxIter; iter++ {
		// Periodic refactorization bounds the numerical drift of the
		// rank-1 inverse updates.
		if iter > 0 && iter%512 == 0 {
			if err := st.refactorize(); err != nil {
				return err
			}
			st.refresh()
		}
		st.computeDuals()
		entering := st.price(degenerate >= 40)
		if entering < 0 {
			return nil // optimal
		}

		// Direction: alpha = W^{-1} (A_j - A_key(set(j))).
		alpha := st.applyWinv(st.columnRelKey(entering))
		kStar := st.vars[entering].set

		// g_k: rate of change of each key value per unit of entering flow.
		gk := make(map[int]float64)
		for i, v := range st.nonKey {
			if s := st.vars[v].set; s >= 0 && alpha[i] != 0 {
				gk[s] += alpha[i]
			}
		}
		if kStar >= 0 {
			gk[kStar]--
		}

		// Ratio test.
		theta := math.Inf(1)
		leaveCol, leaveKey := -1, -1
		for i := range alpha {
			if alpha[i] > gubEps {
				if r := st.y[i] / alpha[i]; r < theta-gubEps ||
					(r < theta+gubEps && (leaveCol < 0 || st.nonKey[i] < st.nonKey[leaveCol])) {
					theta = r
					leaveCol, leaveKey = i, -1
				}
			}
		}
		for k, rate := range gk {
			if rate < -gubEps {
				if r := st.xkey[k] / -rate; r < theta-gubEps ||
					(r < theta+gubEps && leaveCol < 0 && (leaveKey < 0 || st.key[k] < st.key[leaveKey])) {
					theta = r
					leaveCol, leaveKey = -1, k
				}
			}
		}
		if leaveCol < 0 && leaveKey < 0 {
			return fmt.Errorf("lp: gub: unbounded direction at iteration %d", iter)
		}
		if theta < gubEps {
			degenerate++
		} else {
			degenerate = 0
		}

		switch {
		case leaveCol >= 0:
			// A non-key basic leaves: standard working-basis pivot.
			leaving := st.nonKey[leaveCol]
			st.where[leaving] = -1
			st.nonKey[leaveCol] = entering
			st.where[entering] = leaveCol
			if err := st.pivotWinv(alpha, leaveCol); err != nil {
				if err = st.refactorize(); err != nil {
					return err
				}
			}
			st.refresh()
		case leaveKey >= 0:
			k := leaveKey
			oldKey := st.key[k]
			if k == kStar {
				// The entering variable becomes the set's new key. Every
				// non-key column of the set shifts by the same vector
				// (A_oldKey − A_enter): a rank-1 update of W.
				st.where[oldKey] = -1
				st.key[k] = entering
				st.where[entering] = -2
				if err := st.shiftSetColumns(k, oldKey); err != nil {
					if err = st.refactorize(); err != nil {
						return err
					}
				}
			} else {
				// Promote one of the set's non-key basics to key; the
				// entering variable takes its working column. Two rank-1
				// updates: the column replacement and the set shift.
				promote := -1
				for i, v := range st.nonKey {
					if st.vars[v].set == k {
						promote = i
						break
					}
				}
				if promote < 0 {
					return fmt.Errorf("lp: gub: key of set %d blocks with no replacement", k)
				}
				st.where[oldKey] = -1
				st.key[k] = st.nonKey[promote]
				st.where[st.nonKey[promote]] = -2
				st.nonKey[promote] = entering
				st.where[entering] = promote

				ok := false
				// Replace column `promote` with the entering variable's
				// column (relative to its own set's unchanged key).
				alphaNew := st.applyWinv(st.columnRelKey(entering))
				if math.Abs(alphaNew[promote]) > gubEps {
					if err := st.pivotWinv(alphaNew, promote); err == nil {
						// Shift the remaining set-k columns from the old key
						// to the promoted one.
						if err := st.shiftSetColumns(k, oldKey); err == nil {
							ok = true
						}
					}
				}
				if !ok {
					if err := st.refactorize(); err != nil {
						return err
					}
				}
			}
			st.refresh()
		}
	}
	return ErrIterLimit
}

// columnRelKey returns A_j - A_{key(set(j))} as a dense E-vector.
func (st *gubState) columnRelKey(v int) []float64 {
	col := make([]float64, st.nLinks)
	for _, e := range st.vars[v].links {
		col[e]++
	}
	if s := st.vars[v].set; s >= 0 {
		for _, e := range st.vars[st.key[s]].links {
			col[e]--
		}
	}
	return col
}

// refresh recomputes y (non-key values) and xkey from the current basis.
func (st *gubState) refresh() {
	beta := append([]float64(nil), st.cap...)
	for k, kv := range st.key {
		d := st.demand[k]
		if d == 0 {
			continue
		}
		for _, e := range st.vars[kv].links {
			beta[e] -= d
		}
	}
	st.y = st.applyWinv(beta)
	for i := range st.y {
		if st.y[i] < 0 && st.y[i] > -gubClampTol {
			st.y[i] = 0
		}
	}
	for k := range st.key {
		v := st.demand[k]
		for i, nk := range st.nonKey {
			if st.vars[nk].set == k {
				v -= st.y[i]
			}
		}
		if v < 0 && v > -gubClampTol {
			v = 0
		}
		st.xkey[k] = v
	}
}

// computeDuals solves pi' W = cTilde and mu_k = c_key - pi'A_key.
func (st *gubState) computeDuals() {
	E := st.nLinks
	for e := 0; e < E; e++ {
		st.pi[e] = 0
	}
	// pi = cTilde' W^{-1}: accumulate rows of W^{-1} weighted by cTilde.
	for i, v := range st.nonKey {
		ct := st.vars[v].cost
		if s := st.vars[v].set; s >= 0 {
			ct -= st.vars[st.key[s]].cost
		}
		if ct == 0 {
			continue
		}
		row := st.winv[i]
		for e := 0; e < E; e++ {
			st.pi[e] += ct * row[e]
		}
	}
	for k, kv := range st.key {
		mu := st.vars[kv].cost
		for _, e := range st.vars[kv].links {
			mu -= st.pi[e]
		}
		st.mu[k] = mu
	}
}

// price returns the entering variable (Dantzig rule, or Bland when asked),
// or -1 at optimality.
func (st *gubState) price(bland bool) int {
	best, bestD := -1, gubEps
	for v := range st.vars {
		if st.where[v] != -1 {
			continue
		}
		d := st.vars[v].cost
		for _, e := range st.vars[v].links {
			d -= st.pi[e]
		}
		if s := st.vars[v].set; s >= 0 {
			d -= st.mu[s]
		}
		if d > bestD {
			if bland {
				return v
			}
			best, bestD = v, d
		}
	}
	return best
}

// applyWinv returns W^{-1} b.
func (st *gubState) applyWinv(b []float64) []float64 {
	E := st.nLinks
	out := make([]float64, E)
	for i := 0; i < E; i++ {
		row := st.winv[i]
		s := 0.0
		for j := 0; j < E; j++ {
			s += row[j] * b[j]
		}
		out[i] = s
	}
	return out
}

// pivotWinv replaces working column `col` with the entering column whose
// transformed form is alpha, updating W^{-1} in place (eta update). A
// near-zero pivot returns ErrSingular; the caller refactorizes.
func (st *gubState) pivotWinv(alpha []float64, col int) error {
	pv := alpha[col]
	if math.Abs(pv) < gubPivotTol {
		return ErrSingular
	}
	E := st.nLinks
	prow := st.winv[col]
	for j := 0; j < E; j++ {
		prow[j] /= pv
	}
	for i := 0; i < E; i++ {
		if i == col {
			continue
		}
		f := alpha[i]
		if f == 0 {
			continue
		}
		row := st.winv[i]
		for j := 0; j < E; j++ {
			row[j] -= f * prow[j]
		}
	}
	return nil
}

// shiftSetColumns updates W^{-1} after set k's key changed from oldKey to
// the current st.key[k]: every non-key column of the set gains
// Δ = A_oldKey − A_newKey, a rank-1 update handled by Sherman–Morrison.
// A near-singular denominator returns an error so the caller can
// refactorize instead.
func (st *gubState) shiftSetColumns(k, oldKey int) error {
	E := st.nLinks
	// u: indicator of working columns belonging to set k.
	cols := make([]int, 0, 4)
	for i, v := range st.nonKey {
		if st.vars[v].set == k {
			cols = append(cols, i)
		}
	}
	if len(cols) == 0 {
		return nil // nothing references the key
	}
	// Δ = A_oldKey − A_newKey as dense vector.
	delta := make([]float64, E)
	for _, e := range st.vars[oldKey].links {
		delta[e]++
	}
	for _, e := range st.vars[st.key[k]].links {
		delta[e]--
	}
	wd := st.applyWinv(delta) // W^{-1} Δ
	// vT = uᵀ W^{-1}: sum of the rows of W^{-1} at the set's columns.
	vT := make([]float64, E)
	for _, i := range cols {
		row := st.winv[i]
		for j := 0; j < E; j++ {
			vT[j] += row[j]
		}
	}
	den := 1.0
	for _, i := range cols {
		den += wd[i]
	}
	if math.Abs(den) < gubEps {
		return ErrSingular
	}
	// W'^{-1} = W^{-1} − (W^{-1}Δ)(uᵀW^{-1}) / den.
	for i := 0; i < E; i++ {
		f := wd[i] / den
		if f == 0 {
			continue
		}
		row := st.winv[i]
		for j := 0; j < E; j++ {
			row[j] -= f * vT[j]
		}
	}
	return nil
}

// refactorize rebuilds W from the current basis and inverts it.
func (st *gubState) refactorize() error {
	E := st.nLinks
	w := make([][]float64, E)
	for i := range w {
		w[i] = make([]float64, E)
	}
	for i, v := range st.nonKey {
		col := st.columnRelKey(v)
		for e := 0; e < E; e++ {
			w[e][i] = col[e]
		}
	}
	inv, err := invert(w)
	if err != nil {
		return err
	}
	st.winv = inv
	return nil
}

func identity(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

// invert computes a dense inverse by Gauss-Jordan with partial pivoting.
func invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	// Augment [a | I] (copy a).
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, 2*n)
		copy(m[i], a[i])
		m[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		best, bestAbs := -1, gubPivotTol
		for r := col; r < n; r++ {
			if abs := math.Abs(m[r][col]); abs > bestAbs {
				best, bestAbs = r, abs
			}
		}
		if best < 0 {
			return nil, ErrSingular
		}
		m[col], m[best] = m[best], m[col]
		pv := m[col][col]
		for j := col; j < 2*n; j++ {
			m[col][j] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			if f == 0 {
				continue
			}
			for j := col; j < 2*n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = m[i][n:]
	}
	return out, nil
}
