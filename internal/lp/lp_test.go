package lp

import (
	"math"
	"testing"
	"testing/quick"

	"megate/internal/stats"
)

func TestSimplexTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum 36 at (2,6).
	s := &Simplex{}
	x, obj, err := s.Solve(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-36) > 1e-7 {
		t.Errorf("obj = %v, want 36", obj)
	}
	if math.Abs(x[0]-2) > 1e-7 || math.Abs(x[1]-6) > 1e-7 {
		t.Errorf("x = %v, want (2, 6)", x)
	}
}

func TestSimplexDetectsUnbounded(t *testing.T) {
	s := &Simplex{}
	// max x with only a constraint on y.
	_, _, err := s.Solve([]float64{1, 0}, [][]float64{{0, 1}}, []float64{5})
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSimplexRejectsNegativeRHS(t *testing.T) {
	s := &Simplex{}
	if _, _, err := s.Solve([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Fatal("want error for negative rhs")
	}
}

func TestSimplexRejectsRaggedRows(t *testing.T) {
	s := &Simplex{}
	if _, _, err := s.Solve([]float64{1, 2}, [][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("want error for ragged matrix")
	}
}

func TestSimplexZeroObjective(t *testing.T) {
	s := &Simplex{}
	x, obj, err := s.Solve([]float64{0, 0}, [][]float64{{1, 1}}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if obj != 0 || x[0] != 0 || x[1] != 0 {
		t.Errorf("x=%v obj=%v, want zeros", x, obj)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex at origin; must not cycle.
	s := &Simplex{}
	_, obj, err := s.Solve(
		[]float64{10, -57, -9, -24},
		[][]float64{
			{0.5, -5.5, -2.5, 9},
			{0.5, -1.5, -0.5, 1},
			{1, 0, 0, 0},
		},
		[]float64{0, 0, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-1) > 1e-6 {
		t.Errorf("obj = %v, want 1 (Beale's cycling example)", obj)
	}
}

// diamond builds a 2-commodity MCF over 4 links that forces sharing.
func diamond() *MCF {
	// Links: 0 (top, cap 10), 1 (bottom, cap 10), 2 (shared, cap 5),
	// 3 (private to commodity 1, cap 20).
	return &MCF{
		LinkCap: []float64{10, 10, 5, 20},
		Commodities: []Commodity{
			{
				Demand:  12,
				Tunnels: [][]int{{0}, {2}},
				Weights: []float64{1, 2},
			},
			{
				Demand:  8,
				Tunnels: [][]int{{1, 2}, {3}},
				Weights: []float64{1, 3},
			},
		},
		Epsilon: 0.001,
	}
}

func TestSimplexSolveMCFDiamond(t *testing.T) {
	p := diamond()
	s := &Simplex{}
	alloc, err := s.SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(alloc, 1e-7); err != nil {
		t.Fatal(err)
	}
	// Commodity 0 can carry 10 on link 0; the shared link 2 (cap 5) is
	// contested; commodity 1 has a private escape with cap 20, so the
	// optimum satisfies all of commodity 1 (8) and 10+min(5, ...)=15 total
	// from commodity 0 => total flow = 12 (demand-capped) + 8 = 20.
	if got := alloc.TotalFlow(); math.Abs(got-20) > 1e-6 {
		t.Errorf("total flow = %v, want 20", got)
	}
}

func TestMCFValidate(t *testing.T) {
	p := diamond()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Commodities[0].Tunnels[0] = []int{99}
	if err := p.Validate(); err == nil {
		t.Error("want error for out-of-range link")
	}
	p = diamond()
	p.Epsilon = 1 // 1*w=2 >= 1 for tunnel with weight 2
	if err := p.Validate(); err == nil {
		t.Error("want error for epsilon too large")
	}
	p = diamond()
	p.Commodities[0].Weights = p.Commodities[0].Weights[:1]
	if err := p.Validate(); err == nil {
		t.Error("want error for weight/tunnel mismatch")
	}
	p = diamond()
	p.LinkCap[0] = math.NaN()
	if err := p.Validate(); err == nil {
		t.Error("want error for NaN capacity")
	}
	p = diamond()
	p.Commodities[0].Demand = -1
	if err := p.Validate(); err == nil {
		t.Error("want error for negative demand")
	}
}

func TestCheckFeasibleCatchesViolations(t *testing.T) {
	p := diamond()
	a := p.NewAllocation()
	a[0][0] = 100 // over capacity and over demand
	if err := p.CheckFeasible(a, 1e-9); err == nil {
		t.Error("want infeasibility error")
	}
	a = p.NewAllocation()
	a[0][0] = -1
	if err := p.CheckFeasible(a, 1e-9); err == nil {
		t.Error("want negativity error")
	}
	if err := p.CheckFeasible(Allocation{}, 1e-9); err == nil {
		t.Error("want shape error")
	}
}

func TestFleischerDiamondNearOptimal(t *testing.T) {
	p := diamond()
	f := &FleischerMCF{Epsilon: 0.05}
	alloc, err := f.SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	if got := alloc.TotalFlow(); got < 20*0.97 {
		t.Errorf("total flow = %v, want >= %v", got, 20*0.97)
	}
}

func TestFleischerEmptyAndZeroDemand(t *testing.T) {
	p := &MCF{LinkCap: []float64{5}, Commodities: []Commodity{
		{Demand: 0, Tunnels: [][]int{{0}}, Weights: []float64{1}},
	}}
	f := &FleischerMCF{}
	alloc, err := f.SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalFlow() != 0 {
		t.Error("zero demand should carry zero flow")
	}
	empty := &MCF{}
	if _, err := f.SolveMCF(empty); err != nil {
		t.Fatal(err)
	}
}

func TestFleischerZeroCapacityLink(t *testing.T) {
	p := &MCF{
		LinkCap: []float64{0, 10},
		Commodities: []Commodity{
			{Demand: 5, Tunnels: [][]int{{0}, {1}}, Weights: []float64{1, 2}},
		},
	}
	f := &FleischerMCF{Epsilon: 0.05}
	alloc, err := f.SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0][0] != 0 {
		t.Error("flow over zero-capacity link")
	}
	if alloc[0][1] < 4.9 {
		t.Errorf("usable tunnel carries %v, want ~5", alloc[0][1])
	}
}

func TestFleischerPrefersShortTunnels(t *testing.T) {
	// Two parallel tunnels, both with ample capacity: the shift pass must
	// place all flow on the lighter tunnel.
	p := &MCF{
		LinkCap: []float64{100, 100},
		Commodities: []Commodity{
			{Demand: 10, Tunnels: [][]int{{0}, {1}}, Weights: []float64{1, 5}},
		},
		Epsilon: 0.01,
	}
	f := &FleischerMCF{Epsilon: 0.05}
	alloc, err := f.SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0][1] > 1e-9 {
		t.Errorf("heavy tunnel carries %v, want 0 after shift", alloc[0][1])
	}
	if math.Abs(alloc[0][0]-10) > 1e-6 {
		t.Errorf("light tunnel carries %v, want 10", alloc[0][0])
	}
}

// randomMCF builds a random feasible problem for cross-validation.
func randomMCF(seed int64, nLinks, nComms, maxTunnels int) *MCF {
	r := stats.NewRand(seed)
	p := &MCF{LinkCap: make([]float64, nLinks), Epsilon: 0.001}
	for e := range p.LinkCap {
		p.LinkCap[e] = 50 + r.Float64()*200
	}
	for k := 0; k < nComms; k++ {
		nt := 1 + r.Intn(maxTunnels)
		c := Commodity{Demand: 10 + r.Float64()*90}
		for t := 0; t < nt; t++ {
			hops := 1 + r.Intn(3)
			tun := make([]int, 0, hops)
			seen := map[int]bool{}
			for len(tun) < hops {
				e := r.Intn(nLinks)
				if !seen[e] {
					seen[e] = true
					tun = append(tun, e)
				}
			}
			c.Tunnels = append(c.Tunnels, tun)
			c.Weights = append(c.Weights, float64(hops)+r.Float64())
		}
		p.Commodities = append(p.Commodities, c)
	}
	return p
}

func TestFleischerMatchesSimplexOnRandomInstances(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := randomMCF(seed, 12, 10, 3)
		exact, err := (&Simplex{}).SolveMCF(p)
		if err != nil {
			t.Fatalf("seed %d simplex: %v", seed, err)
		}
		approx, err := (&FleischerMCF{Epsilon: 0.03}).SolveMCF(p)
		if err != nil {
			t.Fatalf("seed %d fleischer: %v", seed, err)
		}
		if err := p.CheckFeasible(approx, 1e-6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, got := exact.TotalFlow(), approx.TotalFlow()
		if got < 0.95*opt {
			t.Errorf("seed %d: fleischer %v < 95%% of optimum %v", seed, got, opt)
		}
		if got > opt*1.000001 {
			t.Errorf("seed %d: fleischer %v exceeds optimum %v (infeasible?)", seed, got, opt)
		}
	}
}

func TestADMMFeasibleAndReasonable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := randomMCF(seed, 12, 10, 3)
		exact, err := (&Simplex{}).SolveMCF(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := (&ADMM{Iterations: 80}).SolveMCF(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckFeasible(got, 1e-6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// TEAL-like: suboptimal but not terrible.
		if got.TotalFlow() < 0.6*exact.TotalFlow() {
			t.Errorf("seed %d: ADMM %v < 60%% of optimum %v", seed, got.TotalFlow(), exact.TotalFlow())
		}
	}
}

func TestADMMDiamond(t *testing.T) {
	p := diamond()
	got, err := (&ADMM{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(got, 1e-6); err != nil {
		t.Fatal(err)
	}
	if got.TotalFlow() < 14 {
		t.Errorf("ADMM flow %v too low (optimum 20)", got.TotalFlow())
	}
}

func TestProjectSimplexCap(t *testing.T) {
	v := []float64{3, 2, -1}
	projectSimplexCap(v, 4)
	sum := v[0] + v[1] + v[2]
	if sum > 4+1e-9 {
		t.Errorf("sum %v > cap", sum)
	}
	for _, x := range v {
		if x < 0 {
			t.Errorf("negative after projection: %v", v)
		}
	}
	// Under cap: unchanged.
	v2 := []float64{1, 1}
	projectSimplexCap(v2, 5)
	if v2[0] != 1 || v2[1] != 1 {
		t.Errorf("projection changed interior point: %v", v2)
	}
}

// Property: projection result always satisfies constraints and preserves
// points already inside.
func TestProjectSimplexCapProperty(t *testing.T) {
	f := func(raw []float64, capRaw float64) bool {
		cap_ := math.Abs(capRaw)
		if math.IsNaN(cap_) || math.IsInf(cap_, 0) || cap_ > 1e12 {
			return true
		}
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
			v = append(v, x)
		}
		if len(v) == 0 {
			return true
		}
		projectSimplexCap(v, cap_)
		sum := 0.0
		for _, x := range v {
			if x < -1e-9 {
				return false
			}
			sum += x
		}
		return sum <= cap_+1e-6*(1+cap_)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Fleischer allocations are always feasible on random problems.
func TestFleischerFeasibilityProperty(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		p := randomMCF(seed, 8, 15, 4)
		alloc, err := (&FleischerMCF{Epsilon: 0.1}).SolveMCF(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckFeasible(alloc, 1e-6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestObjectiveAndLinkLoads(t *testing.T) {
	p := diamond()
	a := p.NewAllocation()
	a[0][0] = 4 // tunnel over link 0, weight 1
	a[1][0] = 2 // tunnel over links 1,2
	loads := p.LinkLoads(a)
	want := []float64{4, 2, 2, 0}
	for e := range want {
		if loads[e] != want[e] {
			t.Errorf("load[%d] = %v, want %v", e, loads[e], want[e])
		}
	}
	obj := p.Objective(a)
	wantObj := 4*(1-0.001*1) + 2*(1-0.001*1)
	if math.Abs(obj-wantObj) > 1e-9 {
		t.Errorf("objective = %v, want %v", obj, wantObj)
	}
}

func TestFleischerDisabledPasses(t *testing.T) {
	p := diamond()
	f := &FleischerMCF{Epsilon: 0.1, DisableTopUp: true, DisableShift: true}
	alloc, err := f.SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	full, err := (&FleischerMCF{Epsilon: 0.1}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalFlow() < alloc.TotalFlow()-1e-9 {
		t.Error("refinement passes reduced total flow")
	}
}
