package lp

import (
	"testing"
	"time"
)

func TestGUBWideWorkingBasis(t *testing.T) {
	// TWAN-like: many links (wide working basis) and moderate commodities.
	p := randomMCF(11, 760, 900, 4)
	start := time.Now()
	gub, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	if err := p.CheckFeasible(gub, 1e-4); err != nil {
		t.Fatal(err)
	}
	fl, err := (&FleischerMCF{Epsilon: 0.03}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wide: gub obj=%.1f in %v; fleischer ratio=%.5f", p.Objective(gub), el, p.Objective(fl)/p.Objective(gub))
	if p.Objective(gub) < p.Objective(fl)-1e-6 {
		t.Error("gub below a feasible objective")
	}
}
