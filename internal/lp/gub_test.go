package lp

import (
	"math"
	"testing"

	"megate/internal/stats"
)

func TestGUBSimplexDiamond(t *testing.T) {
	p := diamond()
	alloc, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	if got := alloc.TotalFlow(); math.Abs(got-20) > 1e-6 {
		t.Errorf("total flow = %v, want 20", got)
	}
}

func TestGUBSimplexMatchesDenseSimplexObjective(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := randomMCF(seed, 10, 12, 4)
		exact, err := (&Simplex{}).SolveMCF(p)
		if err != nil {
			t.Fatalf("seed %d dense: %v", seed, err)
		}
		gub, err := (&GUBSimplex{}).SolveMCF(p)
		if err != nil {
			t.Fatalf("seed %d gub: %v", seed, err)
		}
		if err := p.CheckFeasible(gub, 1e-6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		od, og := p.Objective(exact), p.Objective(gub)
		if math.Abs(od-og) > 1e-6*(1+math.Abs(od)) {
			t.Errorf("seed %d: gub objective %v != dense %v", seed, og, od)
		}
	}
}

func TestGUBSimplexZeroAndEdgeCases(t *testing.T) {
	// Zero demand, zero-capacity links, tunnel-less commodity.
	p := &MCF{
		LinkCap: []float64{0, 50},
		Commodities: []Commodity{
			{Demand: 0, Tunnels: [][]int{{1}}, Weights: []float64{1}},
			{Demand: 10, Tunnels: [][]int{{0}, {1}}, Weights: []float64{1, 2}},
			{Demand: 5},
		},
		Epsilon: 0.01,
	}
	alloc, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[1][1]-10) > 1e-6 || alloc[1][0] != 0 {
		t.Errorf("alloc = %v, want all 10 on the open link", alloc[1])
	}
	if alloc.TotalFlow() != 10 {
		t.Errorf("total = %v", alloc.TotalFlow())
	}
	empty := &MCF{}
	if _, err := (&GUBSimplex{}).SolveMCF(empty); err != nil {
		t.Fatal(err)
	}
}

func TestGUBSimplexSharedBottleneckPrefersProfit(t *testing.T) {
	// Two commodities compete for one link; epsilon makes commodity 0's
	// tunnel more profitable (lower weight), so it wins the capacity.
	p := &MCF{
		LinkCap: []float64{10},
		Commodities: []Commodity{
			{Demand: 10, Tunnels: [][]int{{0}}, Weights: []float64{1}},
			{Demand: 10, Tunnels: [][]int{{0}}, Weights: []float64{9}},
		},
		Epsilon: 0.05,
	}
	alloc, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0][0]-10) > 1e-6 {
		t.Errorf("profitable commodity got %v, want 10", alloc[0][0])
	}
	if alloc[1][0] > 1e-6 {
		t.Errorf("unprofitable commodity got %v, want 0", alloc[1][0])
	}
}

func TestGUBSimplexMediumScale(t *testing.T) {
	// Hundreds of commodities over few links: the regime GUB exists for.
	// Validate optimality against the tight Fleischer bound (gub must be
	// >= any feasible solution's objective).
	p := randomMCF(99, 14, 400, 4)
	gub, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(gub, 1e-5); err != nil {
		t.Fatal(err)
	}
	approx, err := (&FleischerMCF{Epsilon: 0.03}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Objective(gub) < p.Objective(approx)-1e-6 {
		t.Errorf("gub objective %v below a feasible solution %v — not optimal",
			p.Objective(gub), p.Objective(approx))
	}
}

func TestGUBSimplexDegenerateDemands(t *testing.T) {
	// Many identical demands sharing identical tunnels: heavy degeneracy.
	r := stats.NewRand(3)
	p := &MCF{LinkCap: []float64{100, 100, 100}, Epsilon: 0.001}
	for k := 0; k < 60; k++ {
		p.Commodities = append(p.Commodities, Commodity{
			Demand:  5,
			Tunnels: [][]int{{0, 1}, {2}},
			Weights: []float64{1, 2},
		})
		_ = r
	}
	gub, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(gub, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Optimum: 100 over links 0-1 plus 100 over link 2 = 200 of 300 demand.
	if math.Abs(gub.TotalFlow()-200) > 1e-5 {
		t.Errorf("total = %v, want 200", gub.TotalFlow())
	}
}

func TestInvert(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	inv, err := invert(a)
	if err != nil {
		t.Fatal(err)
	}
	// a * inv == I.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s := 0.0
			for k := 0; k < 2; k++ {
				s += a[i][k] * inv[k][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-12 {
				t.Errorf("product[%d][%d] = %v", i, j, s)
			}
		}
	}
	if _, err := invert([][]float64{{1, 1}, {1, 1}}); err == nil {
		t.Error("want singular error")
	}
}

func BenchmarkGUBSimplexMedium(b *testing.B) {
	p := randomMCF(7, 16, 500, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&GUBSimplex{}).SolveMCF(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseSimplexMedium(b *testing.B) {
	p := randomMCF(7, 16, 120, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Simplex{}).SolveMCF(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAutoMCFPicksExactWhenAffordable(t *testing.T) {
	p := randomMCF(5, 10, 50, 3)
	auto, err := (&AutoMCF{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Objective(auto)-p.Objective(exact)) > 1e-9*(1+p.Objective(exact)) {
		t.Errorf("auto objective %v != exact %v", p.Objective(auto), p.Objective(exact))
	}
}

func TestAutoMCFFallsBackBeyondLimit(t *testing.T) {
	p := randomMCF(6, 10, 30, 3)
	auto, err := (&AutoMCF{ExactLimit: 5}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(auto, 1e-6); err != nil {
		t.Fatal(err)
	}
	// The approximation with top-up is near but below or equal the optimum.
	exact, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Objective(auto) > p.Objective(exact)+1e-6 {
		t.Error("approximate fallback beat the optimum (infeasible?)")
	}
}

func TestAutoMCFCostBudget(t *testing.T) {
	// Few commodities but an enormous link count: K*E^2 exceeds the
	// budget, so the approximation path must be taken (and succeed).
	p := &MCF{LinkCap: make([]float64, 40000)}
	for e := range p.LinkCap {
		p.LinkCap[e] = 100
	}
	p.Commodities = []Commodity{
		{Demand: 50, Tunnels: [][]int{{0, 1}, {2}}, Weights: []float64{1, 2}},
		{Demand: 50, Tunnels: [][]int{{3}, {4, 5}}, Weights: []float64{1, 2}},
	}
	alloc, err := (&AutoMCF{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	if alloc.TotalFlow() < 99 {
		t.Errorf("total = %v, want ~100", alloc.TotalFlow())
	}
}
