package lp

import (
	"errors"
	"math"
)

// Basis is a snapshot of a GUB simplex basis: the key variable per GUB set,
// the variables occupying the working-basis columns, and the working-basis
// inverse W^{-1}. Exported by SolveMCFBasis after a solve, it can seed the
// next interval's solve as long as the problem *shape* is unchanged — same
// commodity count, same tunnel count per commodity, same link count.
// Demands and capacities may differ arbitrarily; when the perturbation is
// small the previous optimal basis is at or near the new optimum and the
// warm solve finishes in a handful of pivots instead of thousands.
type Basis struct {
	// NumLinks and SetSizes fingerprint the problem shape the basis was
	// exported from (SetSizes[k] counts set k's variables: tunnels + slack).
	NumLinks int
	SetSizes []int
	// Key[k] is the basic variable representing GUB set k.
	Key []int
	// NonKey[i] is the variable occupying working-basis column i.
	NonKey []int
	// Winv is the working-basis inverse at export time. Reusing it makes a
	// warm re-solve on identical inputs bit-identical to the solve that
	// exported it; on perturbed inputs it is only a starting point and is
	// refactorized whenever feasibility or numerics demand it.
	Winv [][]float64
}

// ErrWarmStart reports that an imported basis could not be made primal
// feasible for the new problem; callers fall back to a cold start.
var ErrWarmStart = errors.New("lp: warm-start basis unusable")

// Clone returns a deep copy of the basis.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	c := &Basis{
		NumLinks: b.NumLinks,
		SetSizes: append([]int(nil), b.SetSizes...),
		Key:      append([]int(nil), b.Key...),
		NonKey:   append([]int(nil), b.NonKey...),
		Winv:     make([][]float64, len(b.Winv)),
	}
	for i, row := range b.Winv {
		c.Winv[i] = append([]float64(nil), row...)
	}
	return c
}

// SolveMCFBasis solves the path MCF exactly, seeding the simplex with the
// given basis when possible. A nil, shape-incompatible, singular, or
// irreparably infeasible warm basis degrades to a cold start; a warm start
// that goes numerically wrong mid-solve is also retried cold, so the result
// is never worse than SolveMCF. The returned basis snapshots the final
// state for the next interval.
func (g *GUBSimplex) SolveMCFBasis(p *MCF, warm *Basis) (Allocation, *Basis, error) {
	alloc, basis, _, err := g.SolveMCFBasisDual(p, warm)
	return alloc, basis, err
}

// SolveMCFBasisDual is SolveMCFBasis that additionally exports the optimal
// link duals pi — the per-link prices of the coupling rows at the final
// basis, clamped to >= 0 (tiny negatives are simplex rounding debris). They
// feed EvaluateCertificate, so the exact slow path emits the same
// certificate shape as the ADMM fast path, and the fast path can reuse the
// last exact solve's prices for a tight dual bound under drift.
func (g *GUBSimplex) SolveMCFBasisDual(p *MCF, warm *Basis) (Allocation, *Basis, []float64, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, nil, err
	}
	st, colOf := buildGUB(p)
	maxIter := g.maxIterFor(st)

	warmed := false
	if warm != nil {
		if err := st.importBasis(warm); err == nil {
			warmed = true
		}
	}
	if !warmed {
		st.initCold()
	}
	if err := st.iterate(maxIter); err != nil {
		if !warmed {
			return nil, nil, nil, err
		}
		// The inherited basis led the pivot sequence astray (singular
		// working basis, iteration limit): redo the interval cold.
		st, colOf = buildGUB(p)
		st.initCold()
		if err := st.iterate(maxIter); err != nil {
			return nil, nil, nil, err
		}
	}
	return st.extractAllocation(p, colOf), st.exportBasis(), st.exportLinkDuals(), nil
}

// exportLinkDuals snapshots pi with negative entries (numerically zero at
// optimality) clamped so the vector is valid certificate input.
func (st *gubState) exportLinkDuals() []float64 {
	pi := make([]float64, len(st.pi))
	for e, v := range st.pi {
		if v > 0 {
			pi[e] = v
		}
	}
	return pi
}

// exportBasis snapshots the current basis with deep copies.
func (st *gubState) exportBasis() *Basis {
	b := &Basis{
		NumLinks: st.nLinks,
		SetSizes: make([]int, len(st.members)),
		Key:      append([]int(nil), st.key...),
		NonKey:   append([]int(nil), st.nonKey...),
		Winv:     make([][]float64, len(st.winv)),
	}
	for k, mem := range st.members {
		b.SetSizes[k] = len(mem)
	}
	for i, row := range st.winv {
		b.Winv[i] = append([]float64(nil), row...)
	}
	return b
}

// importBasis installs a previously exported basis, verifying shape and
// internal consistency, then restores primal feasibility: first with the
// inherited W^{-1} as-is (bit-identical path for unchanged inputs), then
// after a refactorization, then via repair. Returns ErrWarmStart (or a
// numerical error) when the basis cannot seed this problem.
func (st *gubState) importBasis(b *Basis) error {
	if b == nil || b.NumLinks != st.nLinks ||
		len(b.SetSizes) != len(st.members) || len(b.Key) != len(st.members) ||
		len(b.NonKey) != st.nLinks || len(b.Winv) != st.nLinks {
		return ErrWarmStart
	}
	for k, mem := range st.members {
		if b.SetSizes[k] != len(mem) {
			return ErrWarmStart
		}
	}
	nVars := len(st.vars)
	st.key = append([]int(nil), b.Key...)
	st.nonKey = append([]int(nil), b.NonKey...)
	st.where = make([]int, nVars)
	for v := range st.where {
		st.where[v] = -1
	}
	for k, kv := range st.key {
		if kv < 0 || kv >= nVars || st.vars[kv].set != k || st.where[kv] != -1 {
			return ErrWarmStart
		}
		st.where[kv] = -2
	}
	for i, v := range st.nonKey {
		if v < 0 || v >= nVars || st.where[v] != -1 {
			return ErrWarmStart
		}
		st.where[v] = i
	}
	st.winv = make([][]float64, st.nLinks)
	for i := range st.winv {
		if len(b.Winv[i]) != st.nLinks {
			return ErrWarmStart
		}
		st.winv[i] = append([]float64(nil), b.Winv[i]...)
	}
	st.y = make([]float64, st.nLinks)
	st.xkey = make([]float64, len(st.members))
	st.pi = make([]float64, st.nLinks)
	st.mu = make([]float64, len(st.members))

	st.refresh()
	if st.primalFeasible() {
		return nil
	}
	// The inherited inverse may have drifted, or the perturbation moved the
	// vertex outside the feasible region: refactorize and re-check before
	// attempting structural repair.
	if err := st.refactorize(); err != nil {
		return err
	}
	st.refresh()
	if st.primalFeasible() {
		return nil
	}
	return st.repair()
}

// primalFeasible reports whether every basic value is nonnegative (refresh
// already clamps violations within its gubClampTol tolerance to zero).
func (st *gubState) primalFeasible() bool {
	for _, v := range st.y {
		if v < 0 {
			return false
		}
	}
	for _, v := range st.xkey {
		if v < 0 {
			return false
		}
	}
	return true
}

// repair restores primal feasibility after a perturbation pushed the
// inherited basis outside the feasible region, by retreating the offending
// basic variables toward the slack basis: a set whose key value went
// negative falls back to its GUB slack as key (demoting set members out of
// the working basis when the slack itself is negative), and a working
// column whose value went negative is handed to a nonbasic link slack.
// Each pass refactorizes and re-checks; unresolved infeasibility after the
// pass budget returns ErrWarmStart so the caller cold-starts instead.
func (st *gubState) repair() error {
	for pass := 0; pass < 3; pass++ {
		changed := false
		for k, mem := range st.members {
			if st.xkey[k] >= 0 {
				continue
			}
			slack := mem[len(mem)-1]
			if st.key[k] != slack {
				old := st.key[k]
				switch loc := st.where[slack]; {
				case loc == -1:
					st.where[old] = -1
					st.key[k] = slack
					st.where[slack] = -2
				case loc >= 0:
					// The slack is a non-key basic: swap roles with the key.
					st.key[k] = slack
					st.nonKey[loc] = old
					st.where[old] = loc
					st.where[slack] = -2
				}
				changed = true
				continue
			}
			// The slack already is the key and still negative: the set's
			// non-key basics overfill the shrunken demand; demote one.
			for i, v := range st.nonKey {
				if st.vars[v].set == k && st.replaceColumnWithLinkSlack(i) {
					changed = true
					break
				}
			}
		}
		for i := range st.y {
			if st.y[i] < 0 && st.replaceColumnWithLinkSlack(i) {
				changed = true
			}
		}
		if !changed {
			return ErrWarmStart
		}
		if err := st.refactorize(); err != nil {
			return err
		}
		st.refresh()
		if st.primalFeasible() {
			return nil
		}
	}
	return ErrWarmStart
}

// replaceColumnWithLinkSlack evicts the variable in working column i in
// favour of a currently nonbasic link slack, chosen to keep the working
// basis well conditioned (largest |W^{-1}[i][e]| pivot). Reports whether a
// replacement was made; the caller refactorizes afterwards.
func (st *gubState) replaceColumnWithLinkSlack(i int) bool {
	firstLinkSlack := len(st.vars) - st.nLinks
	best, bestAbs := -1, gubEps
	for e := 0; e < st.nLinks; e++ {
		if st.where[firstLinkSlack+e] != -1 {
			continue
		}
		if abs := math.Abs(st.winv[i][e]); abs > bestAbs {
			best, bestAbs = e, abs
		}
	}
	if best < 0 {
		return false
	}
	v := firstLinkSlack + best
	st.where[st.nonKey[i]] = -1
	st.nonKey[i] = v
	st.where[v] = i
	return true
}

// SolveMCFBasis implements warm-started auto selection: the exact path
// threads the basis through the GUB simplex, the Fleischer fallback ignores
// it and returns a nil basis (approximate solves are stateless).
func (a *AutoMCF) SolveMCFBasis(p *MCF, warm *Basis) (Allocation, *Basis, error) {
	alloc, basis, _, err := a.SolveMCFBasisDual(p, warm)
	return alloc, basis, err
}

// SolveMCFBasisDual is SolveMCFBasis that also exports the exact path's link
// duals; the Fleischer fallback has none and returns nil prices (a
// certificate evaluated without prices still holds, it is just looser).
func (a *AutoMCF) SolveMCFBasisDual(p *MCF, warm *Basis) (Allocation, *Basis, []float64, error) {
	limit := a.ExactLimit
	if limit == 0 {
		limit = 6000
	}
	k := float64(len(p.Commodities))
	e := float64(len(p.LinkCap))
	if len(p.Commodities) <= limit && k*e*e <= autoMCFCostBudget {
		alloc, basis, pi, err := (&GUBSimplex{}).SolveMCFBasisDual(p, warm)
		if err == nil {
			return alloc, basis, pi, nil
		}
		// Numerical trouble in the exact path: fall through to the robust
		// approximation rather than failing the TE interval.
	}
	eps := a.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	alloc, err := (&FleischerMCF{Epsilon: eps}).SolveMCF(p)
	return alloc, nil, nil, err
}
