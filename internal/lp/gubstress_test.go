package lp

import (
	"math"
	"testing"
	"time"
)

func TestGUBStress(t *testing.T) {
	// Larger random instances vs dense simplex.
	for seed := int64(100); seed < 110; seed++ {
		p := randomMCF(seed, 20, 60, 4)
		exact, err := (&Simplex{}).SolveMCF(p)
		if err != nil {
			t.Fatalf("seed %d dense: %v", seed, err)
		}
		gub, err := (&GUBSimplex{}).SolveMCF(p)
		if err != nil {
			t.Fatalf("seed %d gub: %v", seed, err)
		}
		if err := p.CheckFeasible(gub, 1e-5); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		od, og := p.Objective(exact), p.Objective(gub)
		if math.Abs(od-og) > 1e-5*(1+math.Abs(od)) {
			t.Errorf("seed %d: gub %v != dense %v", seed, og, od)
		}
	}
	// Big: 5000 commodities, 300 links — Deltacom-scale MaxSiteFlow.
	p := randomMCF(7, 300, 5000, 4)
	start := time.Now()
	gub, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	if err := p.CheckFeasible(gub, 1e-4); err != nil {
		t.Fatal(err)
	}
	fl, _ := (&FleischerMCF{Epsilon: 0.02}).SolveMCF(p)
	t.Logf("big: gub obj=%.1f in %v; fleischer(0.02) obj=%.1f; ratio=%.5f",
		p.Objective(gub), el, p.Objective(fl), p.Objective(fl)/p.Objective(gub))
	if p.Objective(gub) < p.Objective(fl)-1e-6 {
		t.Error("gub below a feasible objective")
	}
}
