package lp

import (
	"math"
	"sort"
)

// ADMM approximately solves the path-based MCF with a fixed budget of
// alternating-direction iterations, mirroring the structure of TEAL (Xu et
// al., SIGCOMM 2023): a cheap direct allocation stands in for the GNN
// forward pass, followed by ADMM refinement against link capacities. Like
// TEAL, it trades a few percent of optimality for a runtime that is a fixed
// number of sweeps independent of problem hardness.
type ADMM struct {
	// Iterations is the number of ADMM sweeps; default 50.
	Iterations int
	// Rho is the augmented-Lagrangian penalty; default 1.
	Rho float64
}

// options returns the iteration and penalty settings with zero and negative
// values clamped to the defaults: a negative Iterations would silently skip
// every sweep and a negative Rho would ascend the penalty instead of
// descending it.
func (a *ADMM) options() (iters int, rho float64) {
	iters = a.Iterations
	if iters <= 0 {
		iters = 50
	}
	rho = a.Rho
	if rho <= 0 {
		rho = 1
	}
	return iters, rho
}

// SolveMCF returns a feasible allocation.
func (a *ADMM) SolveMCF(p *MCF) (Allocation, error) {
	alloc, _, err := a.SolveMCFWarm(p, nil)
	return alloc, err
}

// SolveMCFWarm is SolveMCF seeded from a previous interval's allocation
// instead of the inverse-weight split: the fast-path entry point. prev must
// be shaped like the problem (same commodity count, same tunnel count per
// commodity) — anything else, including nil, falls back to the cold seed. The
// seed is clamped to the new demands and the ADMM sweeps then only have to
// absorb the inter-interval drift, so a fixed budget recovers near-optimal
// quality that a cold start would need many more sweeps for.
//
// The second return value is the final consensus duals rescaled into
// objective-unit link prices (see RescaleADMMDuals), ready to feed
// EvaluateCertificate.
func (a *ADMM) SolveMCFWarm(p *MCF, prev Allocation) (Allocation, []float64, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	iters, rho := a.options()

	nLinks := len(p.LinkCap)
	x := a.seed(p, prev)

	// Normalize working in units of link capacity to keep rho meaningful
	// across problems: work with utilization u_e = load_e / cap_e.
	z := make([]float64, nLinks) // consensus link utilization, clamped to <= 1
	u := make([]float64, nLinks) // scaled duals

	loadsOf := func(x Allocation) []float64 {
		util := make([]float64, nLinks)
		for k := range x {
			for t, f := range x[k] {
				if f == 0 {
					continue
				}
				for _, e := range p.Commodities[k].Tunnels[t] {
					if p.LinkCap[e] > 0 {
						util[e] += f / p.LinkCap[e]
					}
				}
			}
		}
		return util
	}

	mc := meanCap(p)
	for it := 0; it < iters; it++ {
		util := loadsOf(x)
		// z-update: clamp desired utilization into [0, 1].
		for e := 0; e < nLinks; e++ {
			z[e] = math.Min(1, math.Max(0, util[e]+u[e]))
		}
		// Dual update.
		for e := 0; e < nLinks; e++ {
			u[e] += util[e] - z[e]
		}
		// x-update (proximal Jacobi): each commodity independently reduces
		// its flow on tunnels whose links are over the consensus, and grows
		// on tunnels with slack, then projects back onto its demand simplex.
		for k := range x {
			c := &p.Commodities[k]
			for t := range x[k] {
				grad := -(1 - p.Epsilon*c.Weights[t]) // objective ascent direction
				for _, e := range c.Tunnels[t] {
					if p.LinkCap[e] > 0 {
						grad += rho * (util[e] - z[e] + u[e]) / p.LinkCap[e] * mc
					}
				}
				step := c.Demand * 0.25
				x[k][t] -= step * grad
			}
			projectSimplexCap(x[k], c.Demand)
		}
	}

	a.repair(p, x)
	// Work-conserving pass: refill each commodity's tunnels, cheapest first,
	// from capacity the blunt repair stranded. Unlike the exhaustive greedy
	// of FleischerMCF this is one local pass per commodity, but it does fall
	// through to more expensive tunnels when the cheapest has no headroom.
	a.topUpShortest(p, x)
	return x, RescaleADMMDuals(p, u, rho), nil
}

// topUpShortest pushes residual demand onto each commodity's tunnels in
// ascending weight order, subject to residual link capacity. Tunnels with no
// headroom are skipped rather than terminating the commodity: when the
// minimum-weight tunnel is saturated, the push falls through to the
// next-cheapest tunnel with slack, so repair-stranded capacity on alternate
// paths is actually refilled.
func (a *ADMM) topUpShortest(p *MCF, x Allocation) {
	loads := p.LinkLoads(x)
	resCap := make([]float64, len(p.LinkCap))
	for e := range resCap {
		resCap[e] = p.LinkCap[e] - loads[e]
	}
	var order []int
	for k := range p.Commodities {
		c := &p.Commodities[k]
		if len(c.Tunnels) == 0 {
			continue
		}
		carried := 0.0
		for _, f := range x[k] {
			carried += f
		}
		rd := c.Demand - carried
		if rd <= 0 {
			continue
		}
		order = sizedInts(order, len(c.Tunnels))
		for t := range order {
			order[t] = t
		}
		sort.Slice(order, func(i, j int) bool {
			ta, tb := order[i], order[j]
			if c.Weights[ta] < c.Weights[tb] {
				return true
			}
			if c.Weights[tb] < c.Weights[ta] {
				return false
			}
			return ta < tb
		})
		for _, t := range order {
			push := rd
			for _, e := range c.Tunnels[t] {
				if resCap[e] < push {
					push = resCap[e]
				}
			}
			if push <= 0 {
				continue
			}
			x[k][t] += push
			for _, e := range c.Tunnels[t] {
				resCap[e] -= push
			}
			rd -= push
			if rd <= 0 {
				break
			}
		}
	}
}

// sizedInts returns b with length exactly n, reallocating only when the
// capacity falls short.
func sizedInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// meanCap returns the mean positive link capacity, used to keep the ADMM
// penalty term scale-free across problems.
func meanCap(p *MCF) float64 {
	sum, n := 0.0, 0
	for _, c := range p.LinkCap {
		if c > 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// seed builds the starting allocation: a shape-compatible previous
// allocation clamped onto the new demand simplexes (the fast-path warm
// start), or the inverse-weight proportional split — the stand-in for TEAL's
// learned direct allocation — when prev is nil or shaped differently.
func (a *ADMM) seed(p *MCF, prev Allocation) Allocation {
	if warm := a.seedFrom(p, prev); warm != nil {
		return warm
	}
	x := p.NewAllocation()
	for k := range p.Commodities {
		c := &p.Commodities[k]
		if len(c.Tunnels) == 0 || c.Demand <= 0 {
			continue
		}
		total := 0.0
		for t := range c.Tunnels {
			total += 1 / (1 + c.Weights[t])
		}
		for t := range c.Tunnels {
			x[k][t] = c.Demand * (1 / (1 + c.Weights[t])) / total
		}
	}
	return x
}

// seedFrom copies prev into a fresh allocation for p, projecting each
// commodity onto its (possibly changed) demand simplex. Returns nil when
// prev cannot seed this problem — wrong commodity count, wrong tunnel count
// anywhere, or non-finite entries.
func (a *ADMM) seedFrom(p *MCF, prev Allocation) Allocation {
	if prev == nil || len(prev) != len(p.Commodities) {
		return nil
	}
	for k := range prev {
		if len(prev[k]) != len(p.Commodities[k].Tunnels) {
			return nil
		}
		for _, f := range prev[k] {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil
			}
		}
	}
	x := make(Allocation, len(prev))
	for k := range prev {
		x[k] = append([]float64(nil), prev[k]...)
		projectSimplexCap(x[k], p.Commodities[k].Demand)
	}
	return x
}

// projectSimplexCap projects v onto {x >= 0, sum x <= cap}.
func projectSimplexCap(v []float64, cap_ float64) {
	sum := 0.0
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
		sum += v[i]
	}
	if sum <= cap_ || sum == 0 {
		return
	}
	// Euclidean projection onto the simplex {x >= 0, sum x = cap}:
	// subtract a uniform shift theta, clamping at zero.
	vs := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(vs)))
	cum := 0.0
	theta := 0.0
	for i, val := range vs {
		cum += val
		cand := (cum - cap_) / float64(i+1)
		if i+1 == len(vs) || vs[i+1] <= cand {
			theta = cand
			break
		}
	}
	for i := range v {
		v[i] = math.Max(0, v[i]-theta)
	}
}

// repair removes any remaining capacity violation (ADMM with a fixed budget
// only converges approximately): tunnels crossing overloaded links are
// scaled down by the worst overload they traverse.
func (a *ADMM) repair(p *MCF, x Allocation) {
	loads := p.LinkLoads(x)
	ratio := make([]float64, len(loads))
	for e := range loads {
		ratio[e] = 1
		if p.LinkCap[e] > 0 && loads[e] > p.LinkCap[e] {
			ratio[e] = p.LinkCap[e] / loads[e]
		} else if p.LinkCap[e] == 0 && loads[e] > 0 {
			ratio[e] = 0
		}
	}
	for k := range x {
		for t := range x[k] {
			worst := 1.0
			for _, e := range p.Commodities[k].Tunnels[t] {
				if ratio[e] < worst {
					worst = ratio[e]
				}
			}
			x[k][t] *= worst
		}
	}
	// Numerical safety: clamp per-commodity sums.
	for k := range x {
		sum := 0.0
		for _, f := range x[k] {
			sum += f
		}
		if d := p.Commodities[k].Demand; sum > d && sum > 0 {
			for t := range x[k] {
				x[k][t] *= d / sum
			}
		}
	}
}
