package lp

import (
	"math"
	"sort"
)

// ADMM approximately solves the path-based MCF with a fixed budget of
// alternating-direction iterations, mirroring the structure of TEAL (Xu et
// al., SIGCOMM 2023): a cheap direct allocation stands in for the GNN
// forward pass, followed by ADMM refinement against link capacities. Like
// TEAL, it trades a few percent of optimality for a runtime that is a fixed
// number of sweeps independent of problem hardness.
type ADMM struct {
	// Iterations is the number of ADMM sweeps; default 50.
	Iterations int
	// Rho is the augmented-Lagrangian penalty; default 1.
	Rho float64
}

// SolveMCF returns a feasible allocation.
func (a *ADMM) SolveMCF(p *MCF) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	iters := a.Iterations
	if iters == 0 {
		iters = 50
	}
	rho := a.Rho
	if rho == 0 {
		rho = 1
	}

	nLinks := len(p.LinkCap)
	x := a.warmStart(p)

	// Normalize working in units of link capacity to keep rho meaningful
	// across problems: work with utilization u_e = load_e / cap_e.
	z := make([]float64, nLinks) // consensus link utilization, clamped to <= 1
	u := make([]float64, nLinks) // scaled duals

	loadsOf := func(x Allocation) []float64 {
		util := make([]float64, nLinks)
		for k := range x {
			for t, f := range x[k] {
				if f == 0 {
					continue
				}
				for _, e := range p.Commodities[k].Tunnels[t] {
					if p.LinkCap[e] > 0 {
						util[e] += f / p.LinkCap[e]
					}
				}
			}
		}
		return util
	}

	mc := meanCap(p)
	for it := 0; it < iters; it++ {
		util := loadsOf(x)
		// z-update: clamp desired utilization into [0, 1].
		for e := 0; e < nLinks; e++ {
			z[e] = math.Min(1, math.Max(0, util[e]+u[e]))
		}
		// Dual update.
		for e := 0; e < nLinks; e++ {
			u[e] += util[e] - z[e]
		}
		// x-update (proximal Jacobi): each commodity independently reduces
		// its flow on tunnels whose links are over the consensus, and grows
		// on tunnels with slack, then projects back onto its demand simplex.
		for k := range x {
			c := &p.Commodities[k]
			for t := range x[k] {
				grad := -(1 - p.Epsilon*c.Weights[t]) // objective ascent direction
				for _, e := range c.Tunnels[t] {
					if p.LinkCap[e] > 0 {
						grad += rho * (util[e] - z[e] + u[e]) / p.LinkCap[e] * mc
					}
				}
				step := c.Demand * 0.25
				x[k][t] -= step * grad
			}
			projectSimplexCap(x[k], c.Demand)
		}
	}

	a.repair(p, x)
	// Limited work-conserving pass: refill each commodity's shortest tunnel
	// from capacity the blunt repair stranded. Unlike the exhaustive greedy
	// of FleischerMCF, only one tunnel per commodity is considered — the
	// truncated-ADMM solution quality the TEAL baseline is meant to model.
	a.topUpShortest(p, x)
	return x, nil
}

// topUpShortest pushes residual demand onto each commodity's minimum-weight
// tunnel only, subject to residual link capacity.
func (a *ADMM) topUpShortest(p *MCF, x Allocation) {
	loads := p.LinkLoads(x)
	resCap := make([]float64, len(p.LinkCap))
	for e := range resCap {
		resCap[e] = p.LinkCap[e] - loads[e]
	}
	for k := range p.Commodities {
		c := &p.Commodities[k]
		if len(c.Tunnels) == 0 {
			continue
		}
		carried := 0.0
		for _, f := range x[k] {
			carried += f
		}
		rd := c.Demand - carried
		if rd <= 0 {
			continue
		}
		best := 0
		for t := 1; t < len(c.Tunnels); t++ {
			if c.Weights[t] < c.Weights[best] {
				best = t
			}
		}
		push := rd
		for _, e := range c.Tunnels[best] {
			if resCap[e] < push {
				push = resCap[e]
			}
		}
		if push <= 0 {
			continue
		}
		x[k][best] += push
		for _, e := range c.Tunnels[best] {
			resCap[e] -= push
		}
	}
}

// meanCap returns the mean positive link capacity, used to keep the ADMM
// penalty term scale-free across problems.
func meanCap(p *MCF) float64 {
	sum, n := 0.0, 0
	for _, c := range p.LinkCap {
		if c > 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// warmStart splits each demand across tunnels proportionally to inverse
// weight — the stand-in for TEAL's learned direct allocation.
func (a *ADMM) warmStart(p *MCF) Allocation {
	x := p.NewAllocation()
	for k := range p.Commodities {
		c := &p.Commodities[k]
		if len(c.Tunnels) == 0 || c.Demand <= 0 {
			continue
		}
		total := 0.0
		for t := range c.Tunnels {
			total += 1 / (1 + c.Weights[t])
		}
		for t := range c.Tunnels {
			x[k][t] = c.Demand * (1 / (1 + c.Weights[t])) / total
		}
	}
	return x
}

// projectSimplexCap projects v onto {x >= 0, sum x <= cap}.
func projectSimplexCap(v []float64, cap_ float64) {
	sum := 0.0
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
		sum += v[i]
	}
	if sum <= cap_ || sum == 0 {
		return
	}
	// Euclidean projection onto the simplex {x >= 0, sum x = cap}:
	// subtract a uniform shift theta, clamping at zero.
	vs := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(vs)))
	cum := 0.0
	theta := 0.0
	for i, val := range vs {
		cum += val
		cand := (cum - cap_) / float64(i+1)
		if i+1 == len(vs) || vs[i+1] <= cand {
			theta = cand
			break
		}
	}
	for i := range v {
		v[i] = math.Max(0, v[i]-theta)
	}
}

// repair removes any remaining capacity violation (ADMM with a fixed budget
// only converges approximately): tunnels crossing overloaded links are
// scaled down by the worst overload they traverse.
func (a *ADMM) repair(p *MCF, x Allocation) {
	loads := p.LinkLoads(x)
	ratio := make([]float64, len(loads))
	for e := range loads {
		ratio[e] = 1
		if p.LinkCap[e] > 0 && loads[e] > p.LinkCap[e] {
			ratio[e] = p.LinkCap[e] / loads[e]
		} else if p.LinkCap[e] == 0 && loads[e] > 0 {
			ratio[e] = 0
		}
	}
	for k := range x {
		for t := range x[k] {
			worst := 1.0
			for _, e := range p.Commodities[k].Tunnels[t] {
				if ratio[e] < worst {
					worst = ratio[e]
				}
			}
			x[k][t] *= worst
		}
	}
	// Numerical safety: clamp per-commodity sums.
	for k := range x {
		sum := 0.0
		for _, f := range x[k] {
			sum += f
		}
		if d := p.Commodities[k].Demand; sum > d && sum > 0 {
			for t := range x[k] {
				x[k][t] *= d / sum
			}
		}
	}
}
