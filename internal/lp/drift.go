package lp

import (
	"math"
	"sort"
)

// This file implements the between-full-solves drift handler of the
// fast-path solver: when demands move a little between TE intervals,
// incremental reallocation of only the drifted commodities — per
// "Near-optimal Online Traffic Engineering" — replaces a re-solve. The
// crucial property is bit-stability: a commodity whose demand did not move
// keeps its allocation row *bit-identical*, so downstream fingerprints (the
// stage-2 pair cache) keep hitting and publication deltas stay small.

// DriftResult summarizes one ReallocateDrift call.
type DriftResult struct {
	// Reallocated counts commodities whose row was rebuilt from scratch
	// because their demand moved beyond the threshold.
	Reallocated int
	// Trimmed counts commodities scaled down because their demand shrank
	// below the carried flow (any threshold — feasibility is not optional).
	Trimmed int
	// ToppedUp counts commodities that received extra flow for sub-threshold
	// demand growth.
	ToppedUp int
}

// ReallocateDrift adapts prev — a feasible allocation for the previous
// interval's problem — into a feasible allocation for p in place, touching
// only the commodities whose inputs moved:
//
//  1. rows whose carried flow exceeds the new demand are scaled down
//     (feasibility first, threshold or not);
//  2. rows whose relative demand change exceeds threshold are zeroed and
//     rebuilt greedily, cheapest tunnel first, against residual capacity;
//  3. capacity overloads (caps can shrink between intervals, e.g. the
//     residual capacity a lower QoS class sees) are repaired by scaling the
//     crossing tunnels;
//  4. a final top-up pushes any still-unserved demand — including
//     sub-threshold growth — onto tunnels with headroom, cheapest first,
//     without disturbing fully-served rows.
//
// prevDemand[k] is the demand commodity k had when prev was computed; a nil
// or short prevDemand treats every commodity with unserved demand as
// drifted. threshold <= 0 defaults to 0.05. The caller owns prev (pass a
// clone when the original must survive) and should certificate-check the
// result: ReallocateDrift promises feasibility, not optimality.
func ReallocateDrift(p *MCF, prev Allocation, prevDemand []float64, threshold float64) DriftResult {
	if threshold <= 0 {
		threshold = 0.05
	}
	res := DriftResult{}

	// Pass 1+2: demand-side adaptation, marking drifted rows.
	drifted := make([]bool, len(p.Commodities))
	for k := range p.Commodities {
		d := p.Commodities[k].Demand
		carried := 0.0
		for _, f := range prev[k] {
			carried += f
		}
		var prevD float64
		known := k < len(prevDemand)
		if known {
			prevD = prevDemand[k]
		}
		switch {
		case known && relChange(prevD, d) <= threshold:
			// Sub-threshold drift: keep the row, trimming only if the new
			// demand fell below what it carries.
			if carried > d {
				scaleRow(prev[k], d/carried)
				res.Trimmed++
			}
		default:
			drifted[k] = true
			for t := range prev[k] {
				prev[k][t] = 0
			}
			res.Reallocated++
		}
	}

	// Pass 3: capacity repair. Caps may have shrunk (lower QoS classes see
	// the residual of the classes above); scale every tunnel crossing an
	// overloaded link by the worst overload it traverses. Rows that cross no
	// overloaded link multiply by exactly 1 and are skipped, keeping them
	// bit-identical.
	loads := p.LinkLoads(prev)
	overloaded := false
	for e := range loads {
		if loads[e] > p.LinkCap[e]+certTol {
			overloaded = true
			break
		}
	}
	if overloaded {
		ratio := make([]float64, len(loads))
		for e := range loads {
			ratio[e] = 1
			if p.LinkCap[e] > 0 && loads[e] > p.LinkCap[e] {
				ratio[e] = p.LinkCap[e] / loads[e]
			} else if p.LinkCap[e] == 0 && loads[e] > 0 {
				ratio[e] = 0
			}
		}
		for k := range prev {
			worst := 1.0
			for t := range prev[k] {
				if prev[k][t] == 0 {
					continue
				}
				for _, e := range p.Commodities[k].Tunnels[t] {
					if ratio[e] < worst {
						worst = ratio[e]
					}
				}
			}
			if worst < 1 {
				scaleRow(prev[k], worst)
			}
		}
	}

	// Pass 4: refill. Drifted rows rebuild from zero; sub-threshold growth
	// tops up. Either way only rows with unserved demand are touched, in
	// deterministic (commodity, ascending tunnel weight) order.
	resCap := make([]float64, len(p.LinkCap))
	loads = p.LinkLoads(prev)
	for e := range resCap {
		resCap[e] = p.LinkCap[e] - loads[e]
	}
	var order []int
	for k := range p.Commodities {
		c := &p.Commodities[k]
		if len(c.Tunnels) == 0 {
			continue
		}
		carried := 0.0
		for _, f := range prev[k] {
			carried += f
		}
		rd := c.Demand - carried
		if rd <= certTol {
			continue
		}
		if !drifted[k] {
			res.ToppedUp++
		}
		order = sizedInts(order, len(c.Tunnels))
		for t := range order {
			order[t] = t
		}
		sort.Slice(order, func(i, j int) bool {
			ta, tb := order[i], order[j]
			if c.Weights[ta] < c.Weights[tb] {
				return true
			}
			if c.Weights[tb] < c.Weights[ta] {
				return false
			}
			return ta < tb
		})
		for _, t := range order {
			push := rd
			for _, e := range c.Tunnels[t] {
				if resCap[e] < push {
					push = resCap[e]
				}
			}
			if push <= 0 {
				continue
			}
			prev[k][t] += push
			for _, e := range c.Tunnels[t] {
				resCap[e] -= push
			}
			rd -= push
			if rd <= 0 {
				break
			}
		}
	}
	return res
}

// relChange returns |new−old| relative to the larger magnitude (0 when both
// are zero), symmetric so growth and shrinkage trip the threshold alike.
func relChange(old, new_ float64) float64 {
	den := math.Max(math.Abs(old), math.Abs(new_))
	if den == 0 {
		return 0
	}
	return math.Abs(new_-old) / den
}

// scaleRow multiplies every entry of the row by f.
func scaleRow(row []float64, f float64) {
	for t := range row {
		row[t] *= f
	}
}
