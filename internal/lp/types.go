// Package lp provides the linear-programming substrate MegaTE's control
// plane builds on. The paper solves MaxSiteFlow with Gurobi; offline and
// stdlib-only, this package substitutes:
//
//   - Simplex: an exact dense primal simplex for small and medium instances
//     (and for validating the approximate solvers in tests), and
//   - FleischerMCF: the Fleischer variant of the Garg–Könemann (1−ε)
//     approximation for path-restricted maximum multicommodity flow, which
//     scales to every topology in the evaluation, and
//   - ADMM: an alternating-direction solver with a fixed iteration budget,
//     standing in for TEAL's learning-accelerated allocator.
//
// All three consume the same path-based MCF description: commodities with a
// demand cap and a set of pre-established tunnels over capacitated links.
package lp

import (
	"fmt"
	"math"
	"sort"
)

// Commodity is one demand in a path-based multicommodity-flow problem: up to
// Demand units may be routed, split arbitrarily across Tunnels. In
// MaxSiteFlow a commodity is a site pair (k) with demand D_k.
type Commodity struct {
	Demand float64
	// Tunnels[t] lists the link indices tunnel t traverses.
	Tunnels [][]int
	// Weights[t] is the tunnel weight w_t (latency); the objective prefers
	// lower-weight tunnels via the epsilon term of Equation 2.
	Weights []float64
}

// MCF is a path-based maximum multicommodity flow problem over directed
// capacitated links.
type MCF struct {
	// LinkCap[e] is the capacity of link e; only links referenced by some
	// tunnel matter.
	LinkCap     []float64
	Commodities []Commodity
	// Epsilon is the shorter-path preference constant of objective (2). It
	// must be small enough that 1 - Epsilon*w_t stays positive for every
	// tunnel; Validate checks this. Zero means pure throughput
	// maximization.
	Epsilon float64
}

// Allocation holds per-commodity, per-tunnel flow: Alloc[k][t] = F_{k,t}.
type Allocation [][]float64

// NewAllocation returns a zero allocation shaped like the problem.
func (p *MCF) NewAllocation() Allocation {
	a := make(Allocation, len(p.Commodities))
	for k := range p.Commodities {
		a[k] = make([]float64, len(p.Commodities[k].Tunnels))
	}
	return a
}

// Validate checks the problem description.
func (p *MCF) Validate() error {
	for e, c := range p.LinkCap {
		if c < 0 || math.IsNaN(c) {
			return fmt.Errorf("lp: link %d has capacity %v", e, c)
		}
	}
	for k, c := range p.Commodities {
		if c.Demand < 0 || math.IsNaN(c.Demand) {
			return fmt.Errorf("lp: commodity %d has demand %v", k, c.Demand)
		}
		if len(c.Weights) != len(c.Tunnels) {
			return fmt.Errorf("lp: commodity %d has %d tunnels but %d weights", k, len(c.Tunnels), len(c.Weights))
		}
		for t, tun := range c.Tunnels {
			for _, e := range tun {
				if e < 0 || e >= len(p.LinkCap) {
					return fmt.Errorf("lp: commodity %d tunnel %d references link %d of %d", k, t, e, len(p.LinkCap))
				}
			}
			if p.Epsilon > 0 && 1-p.Epsilon*c.Weights[t] <= 0 {
				return fmt.Errorf("lp: commodity %d tunnel %d: epsilon*w = %v >= 1; decrease epsilon",
					k, t, p.Epsilon*c.Weights[t])
			}
		}
	}
	return nil
}

// TotalFlow sums the allocation.
func (a Allocation) TotalFlow() float64 {
	total := 0.0
	for k := range a {
		for _, f := range a[k] {
			total += f
		}
	}
	return total
}

// Objective evaluates Equation 2: total flow minus epsilon-weighted tunnel
// latency.
func (p *MCF) Objective(a Allocation) float64 {
	obj := 0.0
	for k := range a {
		for t, f := range a[k] {
			obj += f * (1 - p.Epsilon*p.Commodities[k].Weights[t])
		}
	}
	return obj
}

// LinkLoads returns the per-link load implied by the allocation.
func (p *MCF) LinkLoads(a Allocation) []float64 {
	loads := make([]float64, len(p.LinkCap))
	for k := range a {
		for t, f := range a[k] {
			if f == 0 {
				continue
			}
			for _, e := range p.Commodities[k].Tunnels[t] {
				loads[e] += f
			}
		}
	}
	return loads
}

// GreedyTopUp packs residual demand into residual capacity in place,
// visiting (commodity, tunnel) columns in ascending tunnel weight so short
// tunnels fill first. It never violates feasibility and is shared by the
// approximate solvers as a final work-conserving pass.
func (p *MCF) GreedyTopUp(alloc Allocation) {
	resCap := make([]float64, len(p.LinkCap))
	loads := p.LinkLoads(alloc)
	for e := range resCap {
		resCap[e] = p.LinkCap[e] - loads[e]
	}
	type col struct {
		k, t int
		w    float64
	}
	var cols []col
	for k := range p.Commodities {
		c := &p.Commodities[k]
		carried := 0.0
		for _, f := range alloc[k] {
			carried += f
		}
		if carried >= c.Demand {
			continue
		}
		for t := range c.Tunnels {
			cols = append(cols, col{k, t, c.Weights[t]})
		}
	}
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].w < cols[j].w {
			return true
		}
		if cols[i].w > cols[j].w {
			return false
		}
		if cols[i].k != cols[j].k {
			return cols[i].k < cols[j].k
		}
		return cols[i].t < cols[j].t
	})
	resDemand := make(map[int]float64)
	for _, c := range cols {
		if _, ok := resDemand[c.k]; !ok {
			carried := 0.0
			for _, f := range alloc[c.k] {
				carried += f
			}
			resDemand[c.k] = p.Commodities[c.k].Demand - carried
		}
	}
	for _, c := range cols {
		rd := resDemand[c.k]
		if rd <= 0 {
			continue
		}
		push := rd
		for _, e := range p.Commodities[c.k].Tunnels[c.t] {
			if resCap[e] < push {
				push = resCap[e]
			}
		}
		if push <= 0 {
			continue
		}
		alloc[c.k][c.t] += push
		resDemand[c.k] = rd - push
		for _, e := range p.Commodities[c.k].Tunnels[c.t] {
			resCap[e] -= push
		}
	}
}

// CheckFeasible verifies capacity (2b), demand (2a) and nonnegativity (2c)
// constraints within tol. It returns a descriptive error on the first
// violation.
func (p *MCF) CheckFeasible(a Allocation, tol float64) error {
	if len(a) != len(p.Commodities) {
		return fmt.Errorf("lp: allocation has %d commodities, problem has %d", len(a), len(p.Commodities))
	}
	for k := range a {
		sum := 0.0
		for t, f := range a[k] {
			if f < -tol || math.IsNaN(f) {
				return fmt.Errorf("lp: commodity %d tunnel %d flow %v is negative", k, t, f)
			}
			sum += f
		}
		if sum > p.Commodities[k].Demand+tol {
			return fmt.Errorf("lp: commodity %d carries %v > demand %v", k, sum, p.Commodities[k].Demand)
		}
	}
	loads := p.LinkLoads(a)
	for e, load := range loads {
		if load > p.LinkCap[e]+tol {
			return fmt.Errorf("lp: link %d carries %v > capacity %v", e, load, p.LinkCap[e])
		}
	}
	return nil
}
