package lp

import (
	"math"
	"sort"
)

// FleischerMCF approximately solves path-based maximum multicommodity flow
// using the Fleischer variant of the Garg–Könemann multiplicative-weights
// algorithm. It guarantees a (1−O(ε)) fraction of the optimum and always
// returns a feasible allocation. Per-commodity demand caps are encoded as
// virtual demand edges, the standard reduction.
//
// Two refinement passes follow the core algorithm:
//
//   - top-up: the (1−ε) scaling leaves slack capacity; a greedy pass pushes
//     residual demand over tunnels with residual capacity, shortest first;
//   - shift: flow moves from longer to shorter tunnels where capacity
//     allows, improving the −ε Σ w_t F_{k,t} term of objective (2) without
//     touching total throughput.
type FleischerMCF struct {
	// Epsilon is the approximation parameter. Values below 0.02 are clamped
	// to avoid length underflow; default 0.1.
	Epsilon float64
	// DisableTopUp and DisableShift turn off the refinement passes
	// (used by ablation benchmarks).
	DisableTopUp bool
	DisableShift bool
}

// SolveMCF computes a feasible, near-optimal allocation.
func (f *FleischerMCF) SolveMCF(p *MCF) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	eps := f.Epsilon
	if eps <= 0 {
		// Zero means "default"; a negative epsilon would invert the
		// multiplicative-weight lengths, so clamp it to the default too.
		eps = 0.1
	}
	if eps < 0.02 {
		eps = 0.02
	}

	nLinks := len(p.LinkCap)
	nComms := len(p.Commodities)
	// cap[e] for e < nLinks are real links; cap[nLinks+k] is commodity k's
	// demand edge.
	cap_ := make([]float64, nLinks+nComms)
	copy(cap_, p.LinkCap)
	for k := range p.Commodities {
		cap_[nLinks+k] = p.Commodities[k].Demand
	}

	// usable[k][t] means every link on the tunnel has positive capacity and
	// the commodity has positive demand.
	usable := make([][]bool, nComms)
	edgeCount := 0
	edgeSeen := make([]bool, nLinks)
	for k := range p.Commodities {
		c := &p.Commodities[k]
		usable[k] = make([]bool, len(c.Tunnels))
		if c.Demand <= 0 {
			continue
		}
		for t, tun := range c.Tunnels {
			ok := true
			for _, e := range tun {
				if cap_[e] <= 0 {
					ok = false
					break
				}
			}
			usable[k][t] = ok
			if ok {
				for _, e := range tun {
					if !edgeSeen[e] {
						edgeSeen[e] = true
						edgeCount++
					}
				}
			}
		}
		edgeCount++ // demand edge
	}
	if edgeCount == 0 {
		return p.NewAllocation(), nil
	}

	mEdges := float64(edgeCount)
	delta := (1 + eps) * math.Pow((1+eps)*mEdges, -1/eps)
	length := make([]float64, len(cap_))
	for e := range length {
		if cap_[e] > 0 {
			length[e] = delta / cap_[e]
		} else {
			length[e] = math.Inf(1)
		}
	}

	raw := p.NewAllocation()

	tunnelLen := func(k, t int) float64 {
		l := length[nLinks+k]
		for _, e := range p.Commodities[k].Tunnels[t] {
			l += length[e]
		}
		return l
	}
	minTunnel := func(k int) (int, float64) {
		best, bestLen := -1, math.Inf(1)
		c := &p.Commodities[k]
		for t := range c.Tunnels {
			if !usable[k][t] {
				continue
			}
			l := tunnelLen(k, t)
			//lint:ignore floatcmp bit-equal length tie-break: an epsilon would change which tunnel wins and with it the approximation's path choice
			if l < bestLen || (l == bestLen && best >= 0 && c.Weights[t] < c.Weights[best]) {
				best, bestLen = t, l
			}
		}
		return best, bestLen
	}

	// Fleischer phases: process commodities round-robin, pushing along a
	// commodity's shortest tunnel while its length stays below the phase
	// threshold alpha; alpha sweeps from delta to 1 by factors of (1+eps).
	for alpha := delta * (1 + eps); alpha < (1+eps)*(1+eps); alpha *= (1 + eps) {
		limit := math.Min(alpha, 1)
		for k := 0; k < nComms; k++ {
			if p.Commodities[k].Demand <= 0 {
				continue
			}
			for {
				t, l := minTunnel(k)
				if t < 0 || l >= limit {
					break
				}
				// Bottleneck over tunnel links plus the demand edge.
				push := cap_[nLinks+k]
				for _, e := range p.Commodities[k].Tunnels[t] {
					if cap_[e] < push {
						push = cap_[e]
					}
				}
				raw[k][t] += push
				length[nLinks+k] *= 1 + eps*push/cap_[nLinks+k]
				for _, e := range p.Commodities[k].Tunnels[t] {
					length[e] *= 1 + eps*push/cap_[e]
				}
			}
		}
		if limit >= 1 {
			break
		}
	}

	// Scale to feasibility: divide by log_{1+eps}(1/delta).
	scale := math.Log(1/delta) / math.Log(1+eps)
	alloc := p.NewAllocation()
	for k := range raw {
		for t := range raw[k] {
			alloc[k][t] = raw[k][t] / scale
		}
	}

	f.clampFeasible(p, alloc)
	if !f.DisableTopUp {
		f.topUp(p, alloc, usable)
	}
	if !f.DisableShift {
		f.shift(p, alloc, usable)
	}
	return alloc, nil
}

// clampFeasible removes any residual constraint violation from floating
// point by uniform downscaling against the worst overload.
func (f *FleischerMCF) clampFeasible(p *MCF, alloc Allocation) {
	worst := 1.0
	loads := p.LinkLoads(alloc)
	for e, load := range loads {
		if p.LinkCap[e] > 0 && load/p.LinkCap[e] > worst {
			worst = load / p.LinkCap[e]
		}
	}
	for k := range alloc {
		sum := 0.0
		for _, x := range alloc[k] {
			sum += x
		}
		if d := p.Commodities[k].Demand; d > 0 && sum/d > worst {
			worst = sum / d
		}
	}
	if worst > 1 {
		for k := range alloc {
			for t := range alloc[k] {
				alloc[k][t] /= worst
			}
		}
	}
}

// topUp greedily packs residual demand into residual capacity, visiting
// columns in ascending tunnel weight so short tunnels fill first.
func (f *FleischerMCF) topUp(p *MCF, alloc Allocation, usable [][]bool) {
	resCap := make([]float64, len(p.LinkCap))
	loads := p.LinkLoads(alloc)
	for e := range resCap {
		resCap[e] = p.LinkCap[e] - loads[e]
	}
	resDemand := make([]float64, len(p.Commodities))
	for k := range p.Commodities {
		sum := 0.0
		for _, x := range alloc[k] {
			sum += x
		}
		resDemand[k] = p.Commodities[k].Demand - sum
	}

	type col struct {
		k, t int
		w    float64
	}
	var cols []col
	for k := range p.Commodities {
		if resDemand[k] <= 0 {
			continue
		}
		for t := range p.Commodities[k].Tunnels {
			if usable[k][t] {
				cols = append(cols, col{k, t, p.Commodities[k].Weights[t]})
			}
		}
	}
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].w < cols[j].w {
			return true
		}
		if cols[i].w > cols[j].w {
			return false
		}
		if cols[i].k != cols[j].k {
			return cols[i].k < cols[j].k
		}
		return cols[i].t < cols[j].t
	})
	for _, c := range cols {
		if resDemand[c.k] <= 0 {
			continue
		}
		push := resDemand[c.k]
		for _, e := range p.Commodities[c.k].Tunnels[c.t] {
			if resCap[e] < push {
				push = resCap[e]
			}
		}
		if push <= 0 {
			continue
		}
		alloc[c.k][c.t] += push
		resDemand[c.k] -= push
		for _, e := range p.Commodities[c.k].Tunnels[c.t] {
			resCap[e] -= push
		}
	}
}

// shift moves allocated flow from longer tunnels to shorter ones when
// residual capacity allows, improving objective (2)'s latency term. Flow
// also consolidates across equal-weight tunnels (onto the earliest), which
// keeps per-tunnel budgets unfragmented for the indivisible endpoint flows
// of stage two.
func (f *FleischerMCF) shift(p *MCF, alloc Allocation, usable [][]bool) {
	resCap := make([]float64, len(p.LinkCap))
	loads := p.LinkLoads(alloc)
	for e := range resCap {
		resCap[e] = p.LinkCap[e] - loads[e]
	}
	for k := range p.Commodities {
		c := &p.Commodities[k]
		// Tunnel indices sorted by weight ascending.
		order := make([]int, len(c.Tunnels))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			wi, wj := c.Weights[order[i]], c.Weights[order[j]]
			if wi < wj {
				return true
			}
			if wi > wj {
				return false
			}
			return order[i] < order[j]
		})
		for i := 0; i < len(order); i++ {
			short := order[i]
			if !usable[k][short] {
				continue
			}
			for j := len(order) - 1; j > i; j-- {
				long := order[j]
				if alloc[k][long] <= 0 || c.Weights[long] < c.Weights[short] {
					continue
				}
				move := alloc[k][long]
				for _, e := range c.Tunnels[short] {
					if resCap[e] < move {
						move = resCap[e]
					}
				}
				if move <= 0 {
					continue
				}
				alloc[k][long] -= move
				alloc[k][short] += move
				for _, e := range c.Tunnels[short] {
					resCap[e] -= move
				}
				for _, e := range c.Tunnels[long] {
					resCap[e] += move
				}
			}
		}
	}
}
