package lp

import (
	"math"
	"testing"

	"megate/internal/stats"
)

func TestWarmStartIdenticalInputBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := randomMCF(seed, 12, 40, 4)
		cold, basis, err := (&GUBSimplex{}).SolveMCFBasis(p, nil)
		if err != nil {
			t.Fatalf("seed %d cold: %v", seed, err)
		}
		if basis == nil {
			t.Fatalf("seed %d: no basis exported", seed)
		}
		warm, basis2, err := (&GUBSimplex{}).SolveMCFBasis(p, basis)
		if err != nil {
			t.Fatalf("seed %d warm: %v", seed, err)
		}
		for k := range cold {
			for tt := range cold[k] {
				if cold[k][tt] != warm[k][tt] {
					t.Fatalf("seed %d: warm alloc[%d][%d] = %v != cold %v",
						seed, k, tt, warm[k][tt], cold[k][tt])
				}
			}
		}
		if basis2 == nil {
			t.Fatalf("seed %d: warm solve exported no basis", seed)
		}
	}
}

func TestWarmStartPerturbedStaysOptimal(t *testing.T) {
	// Property: after small demand/capacity perturbations the warm solve
	// must still land on an optimum — same objective as a cold solve of the
	// perturbed problem (both are exact), and feasible.
	r := stats.NewRand(7)
	for seed := int64(1); seed <= 15; seed++ {
		p := randomMCF(seed, 10, 30, 4)
		_, basis, err := (&GUBSimplex{}).SolveMCFBasis(p, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Perturb ~10% of demands and a few capacities by up to ±20%.
		for k := range p.Commodities {
			if r.Float64() < 0.1 {
				p.Commodities[k].Demand *= 0.8 + 0.4*r.Float64()
			}
		}
		for e := range p.LinkCap {
			if r.Float64() < 0.1 {
				p.LinkCap[e] *= 0.8 + 0.4*r.Float64()
			}
		}
		warm, _, err := (&GUBSimplex{}).SolveMCFBasis(p, basis)
		if err != nil {
			t.Fatalf("seed %d warm: %v", seed, err)
		}
		if err := p.CheckFeasible(warm, 1e-6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cold, err := (&GUBSimplex{}).SolveMCF(p)
		if err != nil {
			t.Fatalf("seed %d cold: %v", seed, err)
		}
		ow, oc := p.Objective(warm), p.Objective(cold)
		if math.Abs(ow-oc) > 1e-6*(1+math.Abs(oc)) {
			t.Errorf("seed %d: warm objective %v != cold %v", seed, ow, oc)
		}
	}
}

func TestWarmStartShapeMismatchFallsBackCold(t *testing.T) {
	p := randomMCF(3, 10, 20, 3)
	_, basis, err := (&GUBSimplex{}).SolveMCFBasis(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A different shape: more commodities. The stale basis must be ignored,
	// not crash or corrupt the solve.
	q := randomMCF(4, 10, 25, 3)
	alloc, _, err := (&GUBSimplex{}).SolveMCFBasis(q, basis)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.CheckFeasible(alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	cold, err := (&GUBSimplex{}).SolveMCF(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Objective(alloc)-q.Objective(cold)) > 1e-6*(1+q.Objective(cold)) {
		t.Errorf("objective %v != cold %v despite fallback", q.Objective(alloc), q.Objective(cold))
	}
}

func TestWarmStartLargePerturbationStillExact(t *testing.T) {
	// Violent perturbation: halve every capacity so the inherited vertex is
	// far outside the new feasible region and the repair path must engage
	// (or fall back cold). The result must still be optimal.
	p := randomMCF(11, 10, 40, 4)
	_, basis, err := (&GUBSimplex{}).SolveMCFBasis(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := range p.LinkCap {
		p.LinkCap[e] *= 0.5
	}
	warm, _, err := (&GUBSimplex{}).SolveMCFBasis(p, basis)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckFeasible(warm, 1e-6); err != nil {
		t.Fatal(err)
	}
	cold, err := (&GUBSimplex{}).SolveMCF(p)
	if err != nil {
		t.Fatal(err)
	}
	ow, oc := p.Objective(warm), p.Objective(cold)
	if math.Abs(ow-oc) > 1e-6*(1+math.Abs(oc)) {
		t.Errorf("warm objective %v != cold %v", ow, oc)
	}
}

func TestWarmStartBasisCloneIndependent(t *testing.T) {
	p := randomMCF(5, 8, 10, 3)
	_, basis, err := (&GUBSimplex{}).SolveMCFBasis(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := basis.Clone()
	c.Key[0] = -99
	c.Winv[0][0] = math.NaN()
	if basis.Key[0] == -99 || math.IsNaN(basis.Winv[0][0]) {
		t.Error("Clone shares memory with the original")
	}
	var nilBasis *Basis
	if nilBasis.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestAutoMCFBasisThreadsThroughExactPath(t *testing.T) {
	p := randomMCF(9, 10, 30, 3)
	a := &AutoMCF{}
	cold, basis, err := a.SolveMCFBasis(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if basis == nil {
		t.Fatal("exact path should export a basis")
	}
	warm, _, err := a.SolveMCFBasis(p, basis)
	if err != nil {
		t.Fatal(err)
	}
	for k := range cold {
		for tt := range cold[k] {
			if cold[k][tt] != warm[k][tt] {
				t.Fatalf("warm alloc differs at [%d][%d]", k, tt)
			}
		}
	}
	// Beyond the exact limit the approximation runs and no basis comes back.
	_, basis2, err := (&AutoMCF{ExactLimit: 5}).SolveMCFBasis(p, basis)
	if err != nil {
		t.Fatal(err)
	}
	if basis2 != nil {
		t.Error("approximate fallback should not export a basis")
	}
}

func BenchmarkGUBWarmVsColdUnchanged(b *testing.B) {
	p := randomMCF(7, 16, 500, 4)
	_, basis, err := (&GUBSimplex{}).SolveMCFBasis(p, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := (&GUBSimplex{}).SolveMCFBasis(p, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := (&GUBSimplex{}).SolveMCFBasis(p, basis); err != nil {
				b.Fatal(err)
			}
		}
	})
}
