package lp

import (
	"math"
	"testing"

	"megate/internal/stats"
)

// Zero-value and negative option structs must behave like the documented
// defaults instead of silently degenerating (0 ADMM iterations would skip
// every sweep; a negative Fleischer epsilon would invert the length
// function).
func TestZeroValueSolverDefaults(t *testing.T) {
	if iters, rho := (&ADMM{}).options(); iters != 50 || rho != 1 {
		t.Errorf("zero-value ADMM options = (%d, %v), want (50, 1)", iters, rho)
	}
	if iters, rho := (&ADMM{Iterations: -3, Rho: -2}).options(); iters != 50 || rho != 1 {
		t.Errorf("negative ADMM options = (%d, %v), want (50, 1)", iters, rho)
	}

	p := randomMCF(7, 12, 10, 3)
	for _, tc := range []struct {
		name   string
		solver interface {
			SolveMCF(*MCF) (Allocation, error)
		}
	}{
		{"ADMM zero", &ADMM{}},
		{"ADMM negative", &ADMM{Iterations: -5, Rho: -1}},
		{"Fleischer negative epsilon", &FleischerMCF{Epsilon: -0.5}},
	} {
		alloc, err := tc.solver.SolveMCF(p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := p.CheckFeasible(alloc, 1e-6); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if alloc.TotalFlow() <= 0 {
			t.Errorf("%s: zero flow on a feasible problem", tc.name)
		}
	}
}

// Regression: topUpShortest must fall through to the next-cheapest tunnel
// when the shortest one lacks headroom, instead of stranding residual demand.
func TestTopUpShortestFallsThrough(t *testing.T) {
	// Tunnel 0 (weight 1) rides link 0 with capacity 2; tunnel 1 (weight 2)
	// rides link 1 with plenty. Demand 10 must split 2 / 8.
	p := &MCF{
		LinkCap: []float64{2, 100},
		Commodities: []Commodity{{
			Demand:  10,
			Tunnels: [][]int{{0}, {1}},
			Weights: []float64{1, 2},
		}},
	}
	x := p.NewAllocation()
	(&ADMM{}).topUpShortest(p, x)
	if math.Abs(x[0][0]-2) > 1e-9 || math.Abs(x[0][1]-8) > 1e-9 {
		t.Errorf("partial headroom: got %v, want [2 8]", x[0])
	}

	// Shortest tunnel has NO headroom at all: everything must land on the
	// second-shortest.
	p.LinkCap[0] = 0
	x = p.NewAllocation()
	(&ADMM{}).topUpShortest(p, x)
	if math.Abs(x[0][0]) > 1e-9 || math.Abs(x[0][1]-10) > 1e-9 {
		t.Errorf("saturated shortest: got %v, want [0 10]", x[0])
	}
}

// Property: DualBound is a sound upper bound on the optimum for arbitrary
// nonnegative prices, and the GUB simplex's exported duals make it tight.
func TestDualBoundUpperBound(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := randomMCF(seed, 12, 10, 3)
		exact, _, pi, err := (&GUBSimplex{}).SolveMCFBasisDual(p, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt := p.Objective(exact)
		slack := 1e-6 * math.Max(opt, 1)
		if b := DualBound(p, nil); b < opt-slack {
			t.Errorf("seed %d: zero-price bound %v < optimum %v", seed, b, opt)
		}
		b := DualBound(p, pi)
		if b < opt-slack {
			t.Errorf("seed %d: GUB-price bound %v < optimum %v", seed, b, opt)
		}
		// Strong duality: the optimal duals close the gap.
		if gap := (b - opt) / math.Max(b, 1); gap > 1e-6 {
			t.Errorf("seed %d: GUB duals leave gap %v, want ~0", seed, gap)
		}
		cert := EvaluateCertificate(p, exact, 0.01, pi)
		if !cert.Accepted {
			t.Errorf("seed %d: exact solution not certificate-accepted: %+v", seed, cert)
		}
		// Garbage prices may loosen the bound but never break it.
		junk := make([]float64, len(p.LinkCap))
		r := stats.NewRand(seed)
		for e := range junk {
			junk[e] = r.Float64() * 2
		}
		if b := DualBound(p, junk); b < opt-slack {
			t.Errorf("seed %d: random-price bound %v < optimum %v", seed, b, opt)
		}
	}
}

// Property: a certificate-accepted fast-path allocation (drift reallocation,
// escalating to warm ADMM) is within the certified tolerance of the exact
// simplex objective on the perturbed problem.
func TestCertificateFastPathNearExact(t *testing.T) {
	const tol = 0.01
	accepted := 0
	for seed := int64(1); seed <= 8; seed++ {
		p := randomMCF(seed, 12, 10, 3)
		base, _, pi, err := (&GUBSimplex{}).SolveMCFBasisDual(p, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prevDemand := make([]float64, len(p.Commodities))
		for k := range p.Commodities {
			prevDemand[k] = p.Commodities[k].Demand
		}
		// Drift a few demands by up to ±3% — the steady-state churn regime.
		r := stats.NewRand(seed + 100)
		for k := range p.Commodities {
			if r.Float64() < 0.3 {
				p.Commodities[k].Demand *= 0.97 + 0.06*r.Float64()
			}
		}

		cand := CloneAllocation(base)
		ReallocateDrift(p, cand, prevDemand, 0.05)
		cert := EvaluateCertificate(p, cand, tol, pi)
		if !cert.Accepted {
			refined, admmPi, err := (&ADMM{}).SolveMCFWarm(p, cand)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			cand = refined
			cert = EvaluateCertificate(p, cand, tol, pi, admmPi)
		}
		if !cert.Accepted {
			continue // fallback: the slow path would run — soundness intact
		}
		accepted++
		if err := p.CheckFeasible(cand, 1e-6); err != nil {
			t.Errorf("seed %d: accepted allocation infeasible: %v", seed, err)
		}
		exact, err := (&Simplex{}).SolveMCF(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt := p.Objective(exact)
		if got := p.Objective(cand); got < opt-tol*math.Max(opt, 1)-1e-6 {
			t.Errorf("seed %d: accepted objective %v more than %v%% below optimum %v",
				seed, got, tol*100, opt)
		}
	}
	if accepted == 0 {
		t.Error("no seed accepted the fast path; certificate is uselessly loose")
	}
}

// Drift reallocation must leave sub-threshold rows bit-identical (the
// stage-2 pair cache depends on it) while rebuilding drifted ones.
func TestReallocateDriftBitStable(t *testing.T) {
	p := &MCF{
		LinkCap: []float64{100, 100},
		Commodities: []Commodity{
			{Demand: 30, Tunnels: [][]int{{0}}, Weights: []float64{1}},
			{Demand: 40, Tunnels: [][]int{{1}}, Weights: []float64{1}},
		},
	}
	prev := Allocation{{30}, {40}}
	prevDemand := []float64{30, 40}

	// Commodity 1 doubles (drifted); commodity 0 is untouched.
	p.Commodities[1].Demand = 80
	res := ReallocateDrift(p, prev, prevDemand, 0.05)
	if res.Reallocated != 1 {
		t.Errorf("Reallocated = %d, want 1", res.Reallocated)
	}
	if prev[0][0] != 30 {
		t.Errorf("undrifted row changed: %v", prev[0])
	}
	if math.Abs(prev[1][0]-80) > 1e-9 {
		t.Errorf("drifted row = %v, want [80]", prev[1])
	}
	if err := p.CheckFeasible(prev, 1e-9); err != nil {
		t.Error(err)
	}

	// A sub-threshold shrink below the carried flow must trim the row, not
	// rebuild it.
	p.Commodities[0].Demand = 29.5
	prevDemand = []float64{30, 80}
	res = ReallocateDrift(p, prev, prevDemand, 0.05)
	if res.Trimmed != 1 || res.Reallocated != 0 {
		t.Errorf("trim pass: %+v, want Trimmed=1 Reallocated=0", res)
	}
	if math.Abs(prev[0][0]-29.5) > 1e-9 {
		t.Errorf("trimmed row = %v, want [29.5]", prev[0])
	}
}

func TestValidPricesAndClone(t *testing.T) {
	if !ValidPrices(nil) || !ValidPrices([]float64{0, 1, 2}) {
		t.Error("valid prices rejected")
	}
	if ValidPrices([]float64{math.NaN()}) || ValidPrices([]float64{math.Inf(1)}) {
		t.Error("poisoned prices accepted")
	}
	a := Allocation{{1, 2}, {3}}
	c := CloneAllocation(a)
	c[0][0] = 99
	if a[0][0] != 1 {
		t.Error("CloneAllocation aliases the original")
	}
	if CloneAllocation(nil) != nil {
		t.Error("CloneAllocation(nil) != nil")
	}
}
