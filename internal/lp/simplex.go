package lp

import (
	"errors"
	"fmt"
	"math"
)

// Simplex solves max c·x subject to Ax <= b, x >= 0 with b >= 0 using the
// dense primal simplex method (slack-basis start, Dantzig pricing with a
// Bland fallback against cycling). It is exact up to floating point and
// intended for small and medium instances: unit tests, the LP-all baseline
// at small scale, and validation of the approximate large-scale solvers.
type Simplex struct {
	// MaxIter bounds pivot count; 0 means 20*(rows+cols).
	MaxIter int
}

// ErrUnbounded is returned when the LP has unbounded objective.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrIterLimit is returned when the pivot limit is exhausted.
var ErrIterLimit = errors.New("lp: iteration limit reached")

const pivotEps = 1e-9

// Solve returns the optimal x and objective value.
func (s *Simplex) Solve(c []float64, a [][]float64, b []float64) (x []float64, obj float64, err error) {
	m := len(a)
	n := len(c)
	for i := range a {
		if len(a[i]) != n {
			return nil, 0, fmt.Errorf("lp: row %d has %d entries, want %d", i, len(a[i]), n)
		}
		if b[i] < 0 {
			return nil, 0, fmt.Errorf("lp: rhs b[%d] = %v < 0 (slack start needs b >= 0)", i, b[i])
		}
	}

	// Tableau: m rows of [A | I | b], objective row last: [-c | 0 | 0].
	width := n + m + 1
	tab := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, width)
		copy(tab[i], a[i])
		tab[i][n+i] = 1
		tab[i][width-1] = b[i]
	}
	tab[m] = make([]float64, width)
	for j := 0; j < n; j++ {
		tab[m][j] = -c[j]
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	maxIter := s.MaxIter
	if maxIter == 0 {
		maxIter = 20 * (m + n)
		if maxIter < 1000 {
			maxIter = 1000
		}
	}

	degenerate := 0
	for iter := 0; iter < maxIter; iter++ {
		// Pricing: most negative reduced cost (Dantzig), Bland when
		// degeneracy persists.
		col := -1
		if degenerate < 30 {
			best := -pivotEps
			for j := 0; j < n+m; j++ {
				if tab[m][j] < best {
					best = tab[m][j]
					col = j
				}
			}
		} else {
			for j := 0; j < n+m; j++ {
				if tab[m][j] < -pivotEps {
					col = j
					break
				}
			}
		}
		if col == -1 {
			// Optimal.
			x = make([]float64, n)
			for i, bi := range basis {
				if bi < n {
					x[bi] = tab[i][width-1]
				}
			}
			return x, tab[m][width-1], nil
		}

		// Ratio test.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][col] > pivotEps {
				ratio := tab[i][width-1] / tab[i][col]
				if ratio < bestRatio-pivotEps ||
					(ratio < bestRatio+pivotEps && (row == -1 || basis[i] < basis[row])) {
					bestRatio = ratio
					row = i
				}
			}
		}
		if row == -1 {
			return nil, 0, ErrUnbounded
		}
		if bestRatio < pivotEps {
			degenerate++
		} else {
			degenerate = 0
		}

		pivot(tab, row, col)
		basis[row] = col
	}
	return nil, 0, ErrIterLimit
}

func pivot(tab [][]float64, row, col int) {
	width := len(tab[row])
	pv := tab[row][col]
	for j := 0; j < width; j++ {
		tab[row][j] /= pv
	}
	tab[row][col] = 1 // exact
	for i := range tab {
		if i == row {
			continue
		}
		factor := tab[i][col]
		if factor == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= factor * tab[row][j]
		}
		tab[i][col] = 0 // exact
	}
}

// SolveMCF solves the path-based MCF exactly by building the dense LP of
// Equation 2: one variable per (commodity, tunnel), one demand row per
// commodity, one capacity row per referenced link. Cost grows as
// O((K+E) * (K*T)) memory; use FleischerMCF beyond a few thousand columns.
func (s *Simplex) SolveMCF(p *MCF) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Column layout.
	type colID struct{ k, t int }
	var cols []colID
	for k := range p.Commodities {
		for t := range p.Commodities[k].Tunnels {
			cols = append(cols, colID{k, t})
		}
	}
	// Only links actually used need capacity rows.
	usedLink := make(map[int]int) // link -> row offset
	for k := range p.Commodities {
		for _, tun := range p.Commodities[k].Tunnels {
			for _, e := range tun {
				if _, ok := usedLink[e]; !ok {
					usedLink[e] = len(usedLink)
				}
			}
		}
	}

	n := len(cols)
	m := len(p.Commodities) + len(usedLink)
	c := make([]float64, n)
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for k := range p.Commodities {
		b[k] = p.Commodities[k].Demand
	}
	for e, off := range usedLink {
		b[len(p.Commodities)+off] = p.LinkCap[e]
	}
	for j, col := range cols {
		c[j] = 1 - p.Epsilon*p.Commodities[col.k].Weights[col.t]
		a[col.k][j] = 1
		for _, e := range p.Commodities[col.k].Tunnels[col.t] {
			a[len(p.Commodities)+usedLink[e]][j] += 1
		}
	}

	x, _, err := s.Solve(c, a, b)
	if err != nil {
		return nil, err
	}
	alloc := p.NewAllocation()
	for j, col := range cols {
		alloc[col.k][col.t] = x[j]
	}
	return alloc, nil
}
